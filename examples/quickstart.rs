//! Quickstart: the paper's algorithms on a small hand-built instance.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example builds a small independent-task instance whose processing
//! times and memory requirements are anti-correlated (the regime where the
//! bi-objective trade-off matters), runs SBO∆ for several values of ∆,
//! compares the achieved points with the exact Pareto front, and finishes
//! with RLS∆ on a small task graph.

use sws_core::prelude::*;
use sws_core::rls::{rls, RlsConfig};
use sws_core::sbo::{sbo, InnerAlgorithm, SboConfig};
use sws_dag::generators::gauss::gaussian_elimination;
use sws_dag::DagInstance;
use sws_exact::pareto_enum::pareto_front;

fn main() {
    // An instance with anti-correlated time and memory requirements: long
    // tasks are cheap to store, short tasks are expensive.
    let inst = Instance::from_ps(
        &[8.0, 6.0, 1.0, 1.0, 4.0, 2.0, 7.0, 3.0],
        &[1.0, 2.0, 7.0, 9.0, 3.0, 5.0, 1.5, 6.0],
        3,
    )
    .expect("valid instance");
    let lb = LowerBounds::of_instance(&inst);
    println!("Instance: n = {}, m = {}", inst.n(), inst.m());
    println!(
        "Graham lower bounds: Cmax ≥ {:.3}, Mmax ≥ {:.3}\n",
        lb.cmax, lb.mmax
    );

    // The exact bi-objective Pareto front (affordable at this size).
    let front = pareto_front(&inst);
    println!("Exact Pareto front ({} points):", front.len());
    for (pt, _) in front.iter() {
        println!("  {pt}");
    }
    println!();

    // SBO∆ trades the two objectives through the single parameter ∆.
    println!("SBO∆ with LPT inner schedules:");
    for &delta in &[0.25, 0.5, 1.0, 2.0, 4.0] {
        let result =
            sbo(&inst, &SboConfig::new(delta, InnerAlgorithm::Lpt)).expect("∆ > 0 is valid");
        let point = result.objective(&inst);
        let (gc, gm) = result.guarantee;
        println!(
            "  ∆ = {delta:<5} -> {point}   guarantee ({gc:.2}, {gm:.2}), {} task(s) routed to the memory schedule",
            result.memory_routed_count()
        );
    }
    println!();

    // RLS∆ handles precedence constraints: schedule a Gaussian-elimination
    // task graph under a memory cap of 3·LB.
    let dag = DagInstance::new(gaussian_elimination(5), 3).expect("valid DAG instance");
    let result = rls(&dag, &RlsConfig::new(3.0)).expect("∆ > 2 is valid");
    let point = ObjectivePoint::of_timed_tasks(dag.tasks(), &result.schedule);
    let (gc, gm) = result.guarantee;
    println!(
        "RLS∆ on a Gaussian-elimination DAG (n = {}, m = {}):",
        dag.n(),
        dag.m()
    );
    println!(
        "  memory lower bound LB = {:.3}, cap ∆·LB = {:.3}",
        result.lb, result.memory_cap
    );
    println!("  achieved {point}");
    println!(
        "  guarantee ({gc:.3}, {gm:.3}); marked processors: {} (bound {})",
        result.marked_count(),
        result.marked_bound()
    );
    println!();

    // The unified entry point: a `SolveRequest` names the instance, the
    // objective mode and the required guarantee; the portfolio picks the
    // cheapest backend that satisfies it. At n = 8, m = 3 the instance
    // sits just above the auto-exact threshold (3^8 > 2^12), so best
    // effort routes to the cheap heuristics and exactness must be asked
    // for explicitly — see docs/ALGORITHMS.md for the full policy.
    let portfolio = Portfolio::standard();
    println!("Portfolio routing for the same 8-task instance:");
    for (label, request) in [
        (
            "Cmax, best effort     ",
            SolveRequest::independent(&inst, ObjectiveMode::CmaxOnly),
        ),
        (
            "Cmax, exact           ",
            SolveRequest::independent(&inst, ObjectiveMode::CmaxOnly)
                .with_guarantee(Guarantee::Exact),
        ),
        (
            "bi-objective ∆ = 1    ",
            SolveRequest::independent(&inst, ObjectiveMode::BiObjective { delta: 1.0 }),
        ),
    ] {
        let solution = portfolio.solve(&request).expect("a backend qualifies");
        println!(
            "  {label} -> {:<18} {}   (achieved guarantee: {})",
            solution.stats.backend.label(),
            solution.point,
            solution.achieved.label()
        );
    }
    let dag_request = SolveRequest::precedence(&dag, ObjectiveMode::BiObjective { delta: 3.0 });
    let solution = portfolio.solve(&dag_request).expect("∆ > 2 is valid");
    println!(
        "  DAG, bi-objective ∆ = 3 -> {:<14} {}   (same schedule as rls(): {})",
        solution.stats.backend.label(),
        solution.point,
        solution.schedule == result.schedule
    );
}
