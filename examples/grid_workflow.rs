//! Grid-computing workflow scenario (the paper's scientific-computation
//! motivation: tasks store their results, users also want early results).
//!
//! Run with:
//! ```text
//! cargo run --release --example grid_workflow
//! ```
//!
//! Part 1 schedules a precedence-constrained workflow (a layered random
//! DAG standing in for a physics production pipeline) with RLS∆ and shows
//! how the makespan/memory trade-off moves with ∆. Part 2 schedules an
//! independent batch with the tri-objective algorithm of Section 5.2,
//! which additionally keeps the mean completion time low so early results
//! come back quickly.

use sws_core::pipeline::{evaluate_rls, evaluate_sbo};
use sws_core::prelude::*;
use sws_core::rls::{PriorityOrder, RlsConfig};
use sws_core::sbo::{InnerAlgorithm, SboConfig};
use sws_core::tri::corollary4_guarantee;
use sws_model::solve::{ObjectiveMode, SolveRequest};
use sws_workloads::dagsets::{dag_workload, DagFamily};
use sws_workloads::grid::grid_workload;
use sws_workloads::rng::seeded_rng;
use sws_workloads::TaskDistribution;

fn main() {
    // ----- Part 1: the workflow DAG -------------------------------------
    let mut rng = seeded_rng(77);
    let workflow = dag_workload(
        DagFamily::LayeredRandom,
        120,
        8,
        TaskDistribution::AntiCorrelated,
        &mut rng,
    );
    println!(
        "Workflow DAG: {} tasks, {} dependencies, {} processors, critical path {:.1}",
        workflow.n(),
        workflow.graph().edge_count(),
        workflow.m(),
        workflow.graph().critical_path_length()
    );
    println!("RLS∆ sweep (bottom-level priority):");
    println!(
        "  {:>6}  {:>10}  {:>10}  {:>12}  {:>12}",
        "∆", "Cmax", "Mmax", "Cmax ratio", "Mmax ratio"
    );
    for &delta in &[2.25, 2.5, 3.0, 4.0, 6.0, 10.0] {
        let config = RlsConfig::new(delta).with_order(PriorityOrder::BottomLevel);
        let (report, _) = evaluate_rls(&workflow, &config).expect("∆ > 2 is valid");
        println!(
            "  {:>6.2}  {:>10.1}  {:>10.1}  {:>12.3}  {:>12.3}",
            delta,
            report.point.cmax,
            report.point.mmax,
            report.ratio.cmax_ratio,
            report.ratio.mmax_ratio
        );
    }
    println!();

    // ----- Part 2: the independent analysis batch -----------------------
    let batch = grid_workload(16, &mut rng);
    let lb = LowerBounds::of_instance(&batch);
    println!(
        "Analysis batch: {} independent jobs on {} workers (ΣCi optimum = {:.1})",
        batch.n(),
        batch.m(),
        lb.sum_ci
    );

    // A plain bi-objective schedule ignores the mean completion time...
    let (sbo_report, _) =
        evaluate_sbo(&batch, &SboConfig::new(1.0, InnerAlgorithm::Lpt)).expect("valid parameters");
    println!(
        "  SBO∆=1 (LPT):        Cmax = {:.1}, Mmax = {:.1}, ΣCi = {:.1}",
        sbo_report.point.cmax,
        sbo_report.point.mmax,
        sbo_report.tri.map(|t| t.sum_ci).unwrap_or(0.0)
    );

    // ...while the tri-objective algorithm also guarantees ΣCi. The
    // requests go through the unified portfolio, which routes them to
    // the SPT-tie RLS∆ kernel backend.
    let portfolio = Portfolio::standard();
    for &delta in &[2.5, 4.0] {
        let req = SolveRequest::independent(&batch, ObjectiveMode::TriObjective { delta })
            .with_guarantee(Guarantee::PaperRatio);
        let solution = portfolio.solve(&req).expect("∆ > 2 is valid");
        let sum_ci = solution.sum_ci.expect("tri backends report ΣCi");
        let guarantee = corollary4_guarantee(delta, batch.m());
        println!(
            "  tri-RLS ∆={delta:<4}:      Cmax = {:.1}, Mmax = {:.1}, ΣCi = {:.1}  (ratios {:.3}, {:.3}, {:.3}; guarantees {:.2}, {:.2}, {:.2})",
            solution.point.cmax,
            solution.point.mmax,
            sum_ci,
            solution.cmax_over_lb(),
            solution.mmax_over_lb(),
            if lb.sum_ci > 0.0 { sum_ci / lb.sum_ci } else { 1.0 },
            guarantee.0,
            guarantee.1,
            guarantee.2,
        );
    }
}
