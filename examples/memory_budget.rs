//! The original industrial problem: minimize the makespan subject to a
//! hard per-processor memory budget (Section 7 of the paper).
//!
//! Run with:
//! ```text
//! cargo run -p sws-core --example memory_budget
//! ```
//!
//! Deciding whether *any* schedule fits the budget is NP-complete, so no
//! approximation algorithm exists for the constrained problem. The paper's
//! way out is the bi-objective machinery: derive (or binary-search) the
//! trade-off parameter from the budget. This example walks through both
//! the independent-task and the precedence-constrained procedures, and on
//! a small instance compares the heuristic with the exact constrained
//! optimum computed by exhaustive enumeration.

use sws_core::constrained::{
    solve_dag_with_memory_budget, solve_with_memory_budget, ConstrainedOutcome,
    DagConstrainedOutcome,
};
use sws_core::prelude::*;
use sws_core::sbo::InnerAlgorithm;
use sws_exact::pareto_enum::best_cmax_under_memory_budget;
use sws_workloads::dagsets::{dag_workload, DagFamily};
use sws_workloads::random::random_instance;
use sws_workloads::rng::seeded_rng;
use sws_workloads::TaskDistribution;

fn main() {
    // ----- Small instance: heuristic vs exact ---------------------------
    let mut rng = seeded_rng(4);
    let small = random_instance(10, 2, TaskDistribution::AntiCorrelated, &mut rng);
    let lb = LowerBounds::of_instance(&small);
    println!(
        "Small instance (n = 10, m = 2), memory lower bound LB = {:.1}:",
        lb.mmax
    );
    println!(
        "  {:>6}  {:>12}  {:>12}  {:>10}",
        "β", "heuristic", "exact OPT", "gap"
    );
    for beta in [1.1, 1.3, 1.6, 2.0] {
        let budget = beta * lb.mmax;
        let outcome = solve_with_memory_budget(&small, budget, InnerAlgorithm::Lpt)
            .expect("valid parameters");
        let exact = best_cmax_under_memory_budget(&small, budget);
        match (outcome, exact) {
            (ConstrainedOutcome::Feasible { point, .. }, Some(opt)) => println!(
                "  {beta:>6.2}  {:>12.2}  {:>12.2}  {:>9.1}%",
                point.cmax,
                opt,
                (point.cmax / opt - 1.0) * 100.0
            ),
            (ConstrainedOutcome::NotFound { .. }, Some(opt)) => {
                println!(
                    "  {beta:>6.2}  {:>12}  {opt:>12.2}  {:>10}",
                    "not found", "-"
                )
            }
            (_, None) => println!("  {beta:>6.2}  infeasible for every schedule"),
            (outcome, Some(_)) => println!("  {beta:>6.2}  unexpected outcome: {outcome:?}"),
        }
    }
    println!();

    // ----- Larger independent instance -----------------------------------
    let large = random_instance(200, 8, TaskDistribution::Bimodal, &mut rng);
    let lb = LowerBounds::of_instance(&large);
    println!(
        "Large independent instance (n = 200, m = 8), LB = {:.1}:",
        lb.mmax
    );
    for beta in [1.05, 1.25, 1.5, 2.0] {
        let budget = beta * lb.mmax;
        match solve_with_memory_budget(&large, budget, InnerAlgorithm::Lpt).unwrap() {
            ConstrainedOutcome::Feasible { point, delta, .. } => println!(
                "  β = {beta:.2}: feasible, Cmax = {:.1} ({:.3}× LB), using ∆ = {delta:.3}",
                point.cmax,
                point.cmax / lb.cmax
            ),
            ConstrainedOutcome::NotFound { best_mmax, .. } => println!(
                "  β = {beta:.2}: not found (closest memory reached {best_mmax:.1} > {budget:.1})"
            ),
            ConstrainedOutcome::ProvablyInfeasible { max_storage } => println!(
                "  β = {beta:.2}: provably infeasible (a single task needs {max_storage:.1})"
            ),
        }
    }
    println!();

    // ----- Precedence-constrained instance -------------------------------
    let dag = dag_workload(
        DagFamily::Lu,
        150,
        6,
        TaskDistribution::Uncorrelated,
        &mut rng,
    );
    let dag_lb = mmax_lower_bound(dag.tasks(), dag.m());
    println!(
        "LU-factorization DAG ({} tasks, {} processors), memory LB = {:.1}:",
        dag.n(),
        dag.m(),
        dag_lb
    );
    for beta in [1.5, 2.0, 2.5, 3.0, 4.0] {
        let budget = beta * dag_lb;
        match solve_dag_with_memory_budget(&dag, budget).unwrap() {
            DagConstrainedOutcome::Feasible { point, delta, makespan_guarantee, .. } => println!(
                "  β = {beta:.2}: RLS∆ with ∆ = {delta:.2} -> Cmax = {:.1}, Mmax = {:.1} ≤ {budget:.1}; proven Cmax ratio ≤ {makespan_guarantee:.3}",
                point.cmax, point.mmax
            ),
            DagConstrainedOutcome::NoGuarantee { delta } => println!(
                "  β = {beta:.2}: budget/LB = {delta:.2} ≤ 2 — RLS∆ cannot run, no guarantee possible (the \"hard to fit\" regime)"
            ),
            DagConstrainedOutcome::ProvablyInfeasible { max_storage } => println!(
                "  β = {beta:.2}: provably infeasible (a single task needs {max_storage:.1})"
            ),
        }
    }
}
