//! The original industrial problem: minimize the makespan subject to a
//! hard per-processor memory budget (Section 7 of the paper).
//!
//! Run with:
//! ```text
//! cargo run --release --example memory_budget
//! ```
//!
//! Deciding whether *any* schedule fits the budget is NP-complete, so no
//! approximation algorithm exists for the constrained problem. The paper's
//! way out is the bi-objective machinery: derive (or binary-search) the
//! trade-off parameter from the budget. This example drives everything
//! through the unified [`Portfolio`] layer: a `MemoryBudget` request
//! auto-routes to the exact enumerator on tiny instances and to the
//! Section 7 procedures everywhere else, and infeasibility comes back as
//! typed errors instead of ad-hoc enums.

use sws_core::prelude::*;
use sws_model::solve::{BackendId, ObjectiveMode, SolveRequest};
use sws_workloads::dagsets::{dag_workload, DagFamily};
use sws_workloads::random::random_instance;
use sws_workloads::rng::seeded_rng;
use sws_workloads::TaskDistribution;

fn main() {
    let portfolio = Portfolio::standard();

    // ----- Small instance: heuristic vs exact ---------------------------
    // Auto-selection routes this tiny instance straight to the exact
    // enumerator; pinning the constrained-search backend recovers the
    // Section 7 heuristic for comparison.
    let mut rng = seeded_rng(4);
    let small = random_instance(10, 2, TaskDistribution::AntiCorrelated, &mut rng);
    let heuristic = portfolio
        .backend(BackendId::ConstrainedSearch)
        .expect("registered");
    let lb = LowerBounds::of_instance(&small);
    println!(
        "Small instance (n = 10, m = 2), memory lower bound LB = {:.1}:",
        lb.mmax
    );
    println!(
        "  {:>6}  {:>12}  {:>12}  {:>10}",
        "β", "heuristic", "exact OPT", "gap"
    );
    for beta in [1.1, 1.3, 1.6, 2.0] {
        let budget = beta * lb.mmax;
        let req = SolveRequest::independent(&small, ObjectiveMode::MemoryBudget { budget });
        let auto = portfolio.solve(&req);
        if let Ok(exact) = &auto {
            assert_eq!(exact.stats.backend, BackendId::ExactParetoEnum);
        }
        match (heuristic.solve(&req), auto) {
            (Ok(h), Ok(exact)) => println!(
                "  {beta:>6.2}  {:>12.2}  {:>12.2}  {:>9.1}%",
                h.point.cmax,
                exact.point.cmax,
                (h.point.cmax / exact.point.cmax - 1.0) * 100.0
            ),
            (Err(_), Ok(exact)) => println!(
                "  {beta:>6.2}  {:>12}  {:>12.2}  {:>10}",
                "not found", exact.point.cmax, "-"
            ),
            (_, Err(_)) => println!("  {beta:>6.2}  infeasible for every schedule"),
        }
    }
    println!();

    // ----- Larger independent instance -----------------------------------
    let large = random_instance(200, 8, TaskDistribution::Bimodal, &mut rng);
    let lb = LowerBounds::of_instance(&large);
    println!(
        "Large independent instance (n = 200, m = 8), LB = {:.1}:",
        lb.mmax
    );
    for beta in [1.05, 1.25, 1.5, 2.0] {
        let budget = beta * lb.mmax;
        let req = SolveRequest::independent(&large, ObjectiveMode::MemoryBudget { budget });
        match portfolio.solve(&req) {
            Ok(solution) => println!(
                "  β = {beta:.2}: feasible via {}, Cmax = {:.1} ({:.3}× LB), {} SBO evaluations",
                solution.stats.backend,
                solution.point.cmax,
                solution.cmax_over_lb(),
                solution.stats.rounds
            ),
            Err(ModelError::BudgetNotMet { best_mmax, budget }) => println!(
                "  β = {beta:.2}: not found (closest memory reached {best_mmax:.1} > {budget:.1})"
            ),
            Err(ModelError::MemoryExceeded { used, .. }) => {
                println!("  β = {beta:.2}: provably infeasible (a single task needs {used:.1})")
            }
            Err(e) => println!("  β = {beta:.2}: {e}"),
        }
    }
    println!();

    // ----- Precedence-constrained instance -------------------------------
    let dag = dag_workload(
        DagFamily::Lu,
        150,
        6,
        TaskDistribution::Uncorrelated,
        &mut rng,
    );
    let dag_lb = mmax_lower_bound(dag.tasks(), dag.m());
    println!(
        "LU-factorization DAG ({} tasks, {} processors), memory LB = {:.1}:",
        dag.n(),
        dag.m(),
        dag_lb
    );
    for beta in [1.5, 2.0, 2.5, 3.0, 4.0] {
        let budget = beta * dag_lb;
        let req = SolveRequest::precedence(&dag, ObjectiveMode::MemoryBudget { budget });
        match portfolio.solve(&req) {
            Ok(solution) => {
                let (gc, delta) = solution
                    .ratio_bound
                    .expect("the DAG budget procedure proves a makespan factor");
                println!(
                    "  β = {beta:.2}: RLS∆ with ∆ = {delta:.2} -> Cmax = {:.1}, Mmax = {:.1} ≤ {budget:.1}; proven Cmax ratio ≤ {gc:.3}",
                    solution.point.cmax, solution.point.mmax
                );
            }
            Err(ModelError::BudgetNotMet { .. }) => println!(
                "  β = {beta:.2}: budget/LB = {beta:.2} ≤ 2 — RLS∆ cannot run, no guarantee possible (the \"hard to fit\" regime)"
            ),
            Err(ModelError::MemoryExceeded { used, .. }) => println!(
                "  β = {beta:.2}: provably infeasible (a single task needs {used:.1})"
            ),
            Err(e) => println!("  β = {beta:.2}: {e}"),
        }
    }
}
