//! Scheduling-as-a-service demo: mixed-tenant traffic through the
//! in-process service runtime.
//!
//! Run with:
//! ```text
//! cargo run --release --example service_demo
//! ```
//!
//! Four tenants with different admission policies share one service:
//!
//! * `pipeline` — a bulk tenant with a permissive Queue policy feeding
//!   DAG scheduling work (RLS∆ on layered task graphs);
//! * `premium` — an SLA tenant whose requests are always served at
//!   paper-ratio level or better, with policy-driven degradation when
//!   it demands guarantees no backend can prove at its instance sizes;
//! * `explorer` — a tenant probing exact answers under a work-estimate
//!   gate: affordable enumerations pass, expensive ones are refused;
//! * `urgent` — a low-volume tenant whose requests carry a high queue
//!   priority and a deadline.
//!
//! The demo submits a few hundred requests from all four tenants,
//! prints a sample of the admission verdicts, waits for every outcome
//! and ends with the per-tenant service statistics.

use std::sync::Arc;
use std::time::Duration;

use sws_model::policy::{AdmissionVerdict, OverflowPolicy, TenantPolicy};
use sws_model::solve::{Guarantee, ObjectiveMode};
use sws_service::{SchedulingService, ServiceError, ServiceRequest, Ticket};
use sws_workloads::dagsets::{dag_workload, DagFamily};
use sws_workloads::random::random_instance;
use sws_workloads::rng::{derive_seed, seeded_rng};
use sws_workloads::TaskDistribution;

fn main() {
    let service = SchedulingService::builder()
        .workers(2)
        .queue_capacity(2048)
        .tenant(
            "pipeline",
            TenantPolicy::unlimited().with_overflow(OverflowPolicy::Queue),
        )
        .tenant(
            "premium",
            TenantPolicy::unlimited()
                .with_guarantee_floor(Guarantee::PaperRatio)
                .with_overflow(OverflowPolicy::Degrade),
        )
        .tenant(
            "explorer",
            TenantPolicy::unlimited()
                .with_max_estimated_work(1e7)
                .with_overflow(OverflowPolicy::Reject),
        )
        .tenant(
            "urgent",
            TenantPolicy::unlimited().with_guarantee_floor(Guarantee::PaperRatio),
        )
        .build();
    let handle = service.handle();

    // The shared instance pool.
    let mut rng = seeded_rng(0xDE30);
    let dags: Vec<_> = [
        DagFamily::LayeredRandom,
        DagFamily::ForkJoin,
        DagFamily::GaussianElimination,
    ]
    .into_iter()
    .map(|family| {
        Arc::new(dag_workload(
            family,
            120,
            8,
            TaskDistribution::Uncorrelated,
            &mut rng,
        ))
    })
    .collect();
    let mids: Vec<_> = (0..4)
        .map(|k| {
            Arc::new(random_instance(
                50,
                4,
                TaskDistribution::AntiCorrelated,
                &mut seeded_rng(derive_seed(0xDE31, k)),
            ))
        })
        .collect();
    let tiny = Arc::new(random_instance(
        10,
        2,
        TaskDistribution::AntiCorrelated,
        &mut seeded_rng(0xDE32),
    ));
    let gate_buster = Arc::new(random_instance(
        18,
        3,
        TaskDistribution::Correlated,
        &mut seeded_rng(0xDE33),
    ));

    // Build the traffic: 64 rounds of four-tenant submissions.
    let mut tickets: Vec<(String, Ticket)> = Vec::new();
    let mut refusals = 0usize;
    let mut sampled = 0usize;
    for round in 0..64usize {
        let batch: Vec<ServiceRequest> = vec![
            ServiceRequest::dag(
                "pipeline",
                Arc::clone(&dags[round % dags.len()]),
                ObjectiveMode::BiObjective { delta: 3.0 },
            )
            .with_guarantee(Guarantee::PaperRatio),
            ServiceRequest::independent(
                "premium",
                Arc::clone(&mids[round % mids.len()]),
                ObjectiveMode::CmaxOnly,
            )
            // No backend proves Exact at n = 50: the Degrade policy
            // downgrades to the paper-ratio floor instead of refusing.
            .with_guarantee(if round % 4 == 0 {
                Guarantee::Exact
            } else {
                Guarantee::PaperRatio
            }),
            ServiceRequest::independent(
                "explorer",
                if round % 8 == 0 {
                    // 3^18 ≈ 3.9e8 estimated work: over the 1e7 gate,
                    // refused by policy.
                    Arc::clone(&gate_buster)
                } else {
                    // 2^10 = 1024: the exact answer is cheaper than the
                    // heuristics' ratio arguments.
                    Arc::clone(&tiny)
                },
                ObjectiveMode::CmaxOnly,
            )
            .with_guarantee(Guarantee::Exact),
            ServiceRequest::independent(
                "urgent",
                Arc::clone(&mids[(round + 1) % mids.len()]),
                ObjectiveMode::BiObjective { delta: 1.0 },
            )
            .with_priority(9)
            .with_deadline(Duration::from_secs(30)),
        ];
        for request in batch {
            let tenant = request.tenant.clone();
            match handle.submit(request) {
                Ok(ticket) => {
                    if sampled < 6 && round % 8 == 0 {
                        match ticket.verdict() {
                            AdmissionVerdict::Admitted { backend, cost } => println!(
                                "[admit]   {tenant:<9} → {backend} (estimated work {:.0}, {})",
                                cost.work,
                                cost.model.label()
                            ),
                            AdmissionVerdict::Degraded {
                                from,
                                to,
                                backend,
                                cost,
                            } => println!(
                                "[degrade] {tenant:<9} → {backend} ({} → {}, estimated work {:.0})",
                                from.label(),
                                to.label(),
                                cost.work
                            ),
                            AdmissionVerdict::Refused { .. } => unreachable!(),
                        }
                        sampled += 1;
                    }
                    tickets.push((tenant, ticket));
                }
                Err(ServiceError::Refused(reason)) => {
                    if refusals == 0 {
                        println!("[refuse]  {tenant:<9} → {reason}");
                    }
                    refusals += 1;
                }
                Err(err) => println!("[error]   {tenant:<9} → {err}"),
            }
        }
    }

    // Wait for every outcome.
    let mut completed = 0usize;
    let mut best_ratio: f64 = f64::INFINITY;
    let mut worst_ratio: f64 = 0.0;
    for (_tenant, ticket) in tickets {
        match ticket.wait() {
            Ok(solution) => {
                completed += 1;
                let ratio = solution.cmax_over_lb();
                best_ratio = best_ratio.min(ratio);
                worst_ratio = worst_ratio.max(ratio);
            }
            Err(err) => println!("[outcome] {err}"),
        }
    }
    println!(
        "\n{completed} requests completed ({refusals} refused at admission); \
         Cmax/LB across completions: best {best_ratio:.3}, worst {worst_ratio:.3}"
    );

    let stats = service.shutdown();
    println!(
        "\n{:<10} {:>8} {:>9} {:>8} {:>10} {:>7} {:>12} {:>12}",
        "tenant",
        "admitted",
        "degraded",
        "refused",
        "completed",
        "failed",
        "p50 latency",
        "p99 latency"
    );
    for scope in std::iter::once(&stats.global).chain(stats.tenants.iter()) {
        println!(
            "{:<10} {:>8} {:>9} {:>8} {:>10} {:>7} {:>12} {:>12}",
            scope.scope,
            scope.admitted,
            scope.degraded,
            scope.refused,
            scope.completed,
            scope.failed,
            scope
                .p50_latency
                .map_or("-".to_string(), |d| format!("{:.2?}", d)),
            scope
                .p99_latency
                .map_or("-".to_string(), |d| format!("{:.2?}", d)),
        );
    }
    assert_eq!(stats.global.in_flight, 0, "clean drain");
}
