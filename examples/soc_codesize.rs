//! Multi-System-on-Chip code-size scenario (the paper's embedded-systems
//! motivation).
//!
//! Run with:
//! ```text
//! cargo run -p sws-core --example soc_codesize
//! ```
//!
//! Every SoC processor stores the instruction code of the tasks mapped to
//! it, so the cumulative memory per processor is the binary footprint.
//! The example generates a SoC-like workload (many small kernels, a few
//! large ones), asks for a schedule whose per-processor code size stays
//! below a hardware budget, and shows how the Section 7 procedure derives
//! the RLS∆/SBO∆ parameter from that budget.

use sws_core::constrained::{solve_with_memory_budget, ConstrainedOutcome};
use sws_core::prelude::*;
use sws_core::sbo::InnerAlgorithm;
use sws_simulator::gantt::GanttOptions;
use sws_simulator::render_gantt;
use sws_workloads::rng::seeded_rng;
use sws_workloads::soc::soc_workload;

fn main() {
    let processors = 4;
    let mut rng = seeded_rng(2008);
    let inst = soc_workload(processors, &mut rng);
    let lb = LowerBounds::of_instance(&inst);
    println!(
        "SoC workload: {} kernels on {} processors, total code size {:.1} KiB",
        inst.n(),
        inst.m(),
        inst.total_storage()
    );
    println!(
        "Per-processor code-size lower bound LB = {:.1} KiB, makespan lower bound {:.1}\n",
        lb.mmax, lb.cmax
    );

    // Sweep hardware budgets from barely-above-LB to comfortable.
    for beta in [1.05, 1.2, 1.5, 2.0, 3.0] {
        let budget = beta * lb.mmax;
        let outcome =
            solve_with_memory_budget(&inst, budget, InnerAlgorithm::Lpt).expect("valid parameters");
        match outcome {
            ConstrainedOutcome::Feasible {
                point,
                delta,
                evaluations,
                ..
            } => {
                println!(
                    "budget {budget:7.1} KiB (β = {beta:.2}) -> feasible: Cmax = {:.1} ({:.3}× the lower bound), ∆ = {delta:.3}, {evaluations} evaluations",
                    point.cmax,
                    point.cmax / lb.cmax
                );
            }
            ConstrainedOutcome::NotFound { best_mmax, .. } => {
                println!(
                    "budget {budget:7.1} KiB (β = {beta:.2}) -> no schedule found (best code size reached {best_mmax:.1} KiB)"
                );
            }
            ConstrainedOutcome::ProvablyInfeasible { max_storage } => {
                println!(
                    "budget {budget:7.1} KiB (β = {beta:.2}) -> provably infeasible: one kernel alone needs {max_storage:.1} KiB"
                );
            }
        }
    }
    println!();

    // Show the schedule obtained for the tightest comfortable budget.
    let budget = 1.5 * lb.mmax;
    if let ConstrainedOutcome::Feasible {
        assignment, point, ..
    } = solve_with_memory_budget(&inst, budget, InnerAlgorithm::Lpt).expect("valid parameters")
    {
        println!(
            "Schedule for budget {:.1} KiB — achieved (Cmax = {:.1}, code size = {:.1} KiB):",
            budget, point.cmax, point.mmax
        );
        let timed = assignment.into_timed(inst.tasks());
        let gantt = render_gantt(
            inst.tasks(),
            &timed,
            &GanttOptions {
                width: 76,
                totals: true,
            },
        );
        println!("{gantt}");
    }
}
