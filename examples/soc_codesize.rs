//! Multi-System-on-Chip code-size scenario (the paper's embedded-systems
//! motivation).
//!
//! Run with:
//! ```text
//! cargo run --release --example soc_codesize
//! ```
//!
//! Every SoC processor stores the instruction code of the tasks mapped to
//! it, so the cumulative memory per processor is the binary footprint.
//! The example generates a SoC-like workload (many small kernels, a few
//! large ones), asks for a schedule whose per-processor code size stays
//! below a hardware budget, and lets the unified [`Portfolio`] route the
//! `MemoryBudget` requests to the Section 7 procedure.

use sws_core::prelude::*;
use sws_model::solve::{ObjectiveMode, SolveRequest};
use sws_simulator::gantt::GanttOptions;
use sws_simulator::render_gantt;
use sws_workloads::rng::seeded_rng;
use sws_workloads::soc::soc_workload;

fn main() {
    let processors = 4;
    let mut rng = seeded_rng(2008);
    let inst = soc_workload(processors, &mut rng);
    let lb = LowerBounds::of_instance(&inst);
    println!(
        "SoC workload: {} kernels on {} processors, total code size {:.1} KiB",
        inst.n(),
        inst.m(),
        inst.total_storage()
    );
    println!(
        "Per-processor code-size lower bound LB = {:.1} KiB, makespan lower bound {:.1}\n",
        lb.mmax, lb.cmax
    );

    // Sweep hardware budgets from barely-above-LB to comfortable. Each
    // budget is one `MemoryBudget` request; the portfolio routes it to
    // the Section 7 binary search at this size.
    let portfolio = Portfolio::standard();
    for beta in [1.05, 1.2, 1.5, 2.0, 3.0] {
        let budget = beta * lb.mmax;
        let req = SolveRequest::independent(&inst, ObjectiveMode::MemoryBudget { budget });
        match portfolio.solve(&req) {
            Ok(solution) => {
                println!(
                    "budget {budget:7.1} KiB (β = {beta:.2}) -> feasible via {}: Cmax = {:.1} ({:.3}× the lower bound), {} evaluations",
                    solution.stats.backend,
                    solution.point.cmax,
                    solution.cmax_over_lb(),
                    solution.stats.rounds
                );
            }
            Err(ModelError::BudgetNotMet { best_mmax, .. }) => {
                println!(
                    "budget {budget:7.1} KiB (β = {beta:.2}) -> no schedule found (best code size reached {best_mmax:.1} KiB)"
                );
            }
            Err(ModelError::MemoryExceeded { used, .. }) => {
                println!(
                    "budget {budget:7.1} KiB (β = {beta:.2}) -> provably infeasible: one kernel alone needs {used:.1} KiB"
                );
            }
            Err(e) => println!("budget {budget:7.1} KiB (β = {beta:.2}) -> {e}"),
        }
    }
    println!();

    // Show the schedule obtained for the tightest comfortable budget —
    // the unified `Solution` already carries a timed schedule.
    let budget = 1.5 * lb.mmax;
    let req = SolveRequest::independent(&inst, ObjectiveMode::MemoryBudget { budget });
    if let Ok(solution) = portfolio.solve(&req) {
        println!(
            "Schedule for budget {:.1} KiB — achieved (Cmax = {:.1}, code size = {:.1} KiB):",
            budget, solution.point.cmax, solution.point.mmax
        );
        let gantt = render_gantt(
            inst.tasks(),
            &solution.schedule,
            &GanttOptions {
                width: 76,
                totals: true,
            },
        );
        println!("{gantt}");
    }
}
