//! Trade-off exploration: approximate Pareto fronts from the ∆ sweep and
//! the uniform-machine extension.
//!
//! Run with:
//! ```text
//! cargo run --release --example tradeoff_explorer
//! ```
//!
//! The paper argues for absolute approximation ("the ∆ parameter tunes
//! the algorithm") rather than Pareto-set approximation. This example
//! shows what a practitioner gets by sweeping ∆: an approximate
//! trade-off curve for an independent-task batch (compared against the
//! exact Pareto front on a small instance) and for a task-graph
//! workload, and finally a glimpse of the uniform-machine extension.

use sws_core::prelude::*;
use sws_core::rls::RlsConfig;
use sws_core::sbo::InnerAlgorithm;
use sws_exact::pareto_enum::pareto_front;
use sws_workloads::dagsets::{dag_workload, DagFamily};
use sws_workloads::random::random_instance;
use sws_workloads::rng::seeded_rng;
use sws_workloads::TaskDistribution;

fn main() {
    let mut rng = seeded_rng(2024);

    // ----- Small instance: the sweep vs the exact front -----------------
    let small = random_instance(12, 3, TaskDistribution::AntiCorrelated, &mut rng);
    let exact = pareto_front(&small);
    println!(
        "Exact Pareto front of a 12-task instance ({} points):",
        exact.len()
    );
    for (pt, _) in exact.iter() {
        println!("  exact   {pt}");
    }
    let curve = sbo_sweep(&small, InnerAlgorithm::Lpt, 0.125, 8.0, 17).expect("valid sweep");
    println!(
        "SBO∆ sweep (17 values of ∆) keeps {} non-dominated points:",
        curve.len()
    );
    for p in &curve {
        println!("  ∆ = {:<8.3} {}", p.delta, p.point);
    }
    println!();

    // ----- Large independent batch ---------------------------------------
    let batch = random_instance(300, 8, TaskDistribution::AntiCorrelated, &mut rng);
    let curve = sbo_sweep(&batch, InnerAlgorithm::Lpt, 0.125, 8.0, 13).expect("valid sweep");
    let lb = LowerBounds::of_instance(&batch);
    println!("Trade-off curve for a 300-task batch on 8 processors (ratios to the lower bounds):");
    for p in &curve {
        println!(
            "  ∆ = {:<8.3} Cmax/LB = {:.3}   Mmax/LB = {:.3}",
            p.delta,
            p.point.cmax / lb.cmax,
            p.point.mmax / lb.mmax
        );
    }
    println!();

    // ----- DAG workload ---------------------------------------------------
    let dag = dag_workload(
        DagFamily::GaussianElimination,
        150,
        6,
        TaskDistribution::Bimodal,
        &mut rng,
    );
    let curve = rls_sweep(&dag, &RlsConfig::new(3.0), 2.05, 12.0, 10).expect("valid sweep");
    println!(
        "RLS∆ trade-off curve for a Gaussian-elimination DAG ({} tasks, 6 processors):",
        dag.n()
    );
    for p in &curve {
        println!("  ∆ = {:<8.3} {}", p.delta, p.point);
    }
    println!();

    // ----- Uniform machines (extension beyond the paper) -------------------
    let machines = UniformMachines::new(vec![4.0, 2.0, 1.0, 1.0]).unwrap();
    let inst = random_instance(80, 4, TaskDistribution::Uncorrelated, &mut rng);
    let result = uniform_rls_lpt(&inst, &machines, 3.0).expect("valid parameters");
    println!("Uniform-machine extension (speeds 4:2:1:1, ∆ = 3):");
    println!(
        "  Cmax = {:.1} ({:.3}× the uniform lower bound), Mmax = {:.1} ({:.3}× LB ≤ ∆)",
        result.point.cmax,
        result.cmax_ratio(),
        result.point.mmax,
        result.mmax_ratio()
    );
    // The ratios above are reported through the shared bound vocabulary,
    // so heterogeneous runs carry the same provenance tags as the
    // identical-machine backends.
    println!(
        "  lower-bound provenance: {} (Cmax ≥ {:.1}, Mmax ≥ {:.1})",
        result.stats.bounds.source.label(),
        result.stats.bounds.cmax,
        result.stats.bounds.mmax
    );
}
