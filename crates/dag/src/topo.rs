//! Topological ordering and cycle detection (Kahn's algorithm).

use sws_model::error::ModelError;

use crate::graph::TaskGraph;

/// Computes a topological order of the task graph using Kahn's algorithm.
/// Among ready tasks the one with the smallest index is emitted first, so
/// the order is deterministic.
///
/// Returns [`ModelError::CyclicPrecedence`] if the graph has a cycle.
pub fn topological_order(graph: &TaskGraph) -> Result<Vec<usize>, ModelError> {
    let n = graph.n();
    let mut in_deg: Vec<usize> = (0..n).map(|i| graph.in_degree(i)).collect();
    // A binary heap would give O(e log n); a sorted ready list kept as a
    // BinaryHeap of Reverse(index) keeps determinism with small overhead.
    let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&i| in_deg[i] == 0)
        .map(std::cmp::Reverse)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(std::cmp::Reverse(u)) = ready.pop() {
        order.push(u);
        for &v in graph.succs(u) {
            in_deg[v] -= 1;
            if in_deg[v] == 0 {
                ready.push(std::cmp::Reverse(v));
            }
        }
    }
    if order.len() != n {
        return Err(ModelError::CyclicPrecedence);
    }
    Ok(order)
}

/// Whether the graph is acyclic.
pub fn is_acyclic(graph: &TaskGraph) -> bool {
    topological_order(graph).is_ok()
}

/// Verifies that `order` is a valid topological order of `graph`: it is a
/// permutation of `0..n` and every edge goes forward.
pub fn is_topological_order(graph: &TaskGraph, order: &[usize]) -> bool {
    let n = graph.n();
    if order.len() != n {
        return false;
    }
    let mut pos = vec![usize::MAX; n];
    for (rank, &v) in order.iter().enumerate() {
        if v >= n || pos[v] != usize::MAX {
            return false;
        }
        pos[v] = rank;
    }
    graph.edges().all(|(u, v)| pos[u] < pos[v])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskGraph;

    #[test]
    fn chain_is_ordered_front_to_back() {
        let mut g = TaskGraph::unit(4);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        g.add_edge(2, 3).unwrap();
        let order = topological_order(&g).unwrap();
        assert_eq!(order, vec![0, 1, 2, 3]);
        assert!(is_topological_order(&g, &order));
    }

    #[test]
    fn cycle_is_detected() {
        let mut g = TaskGraph::unit(3);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        g.add_edge(2, 0).unwrap();
        assert!(matches!(
            topological_order(&g),
            Err(ModelError::CyclicPrecedence)
        ));
        assert!(!is_acyclic(&g));
    }

    #[test]
    fn independent_tasks_come_out_in_index_order() {
        let g = TaskGraph::unit(5);
        assert_eq!(topological_order(&g).unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn order_respects_every_edge_of_a_diamond() {
        let mut g = TaskGraph::unit(4);
        // Reverse-looking indices: 3 -> 1, 3 -> 2, 1 -> 0, 2 -> 0.
        g.add_edge(3, 1).unwrap();
        g.add_edge(3, 2).unwrap();
        g.add_edge(1, 0).unwrap();
        g.add_edge(2, 0).unwrap();
        let order = topological_order(&g).unwrap();
        assert!(is_topological_order(&g, &order));
        assert_eq!(order[0], 3);
        assert_eq!(order[3], 0);
    }

    #[test]
    fn validator_rejects_bad_orders() {
        let mut g = TaskGraph::unit(3);
        g.add_edge(0, 1).unwrap();
        assert!(!is_topological_order(&g, &[1, 0, 2]));
        assert!(!is_topological_order(&g, &[0, 1]));
        assert!(!is_topological_order(&g, &[0, 0, 1]));
        assert!(!is_topological_order(&g, &[0, 1, 5]));
    }

    #[test]
    fn empty_graph_has_empty_order() {
        let g = TaskGraph::unit(0);
        assert_eq!(topological_order(&g).unwrap(), Vec::<usize>::new());
        assert!(is_acyclic(&g));
    }
}
