//! The task-graph adjacency structure and DAG instances.

use serde::{Deserialize, Serialize};

use sws_model::error::ModelError;
use sws_model::task::{Task, TaskSet};

/// A directed task graph: tasks (with processing time and storage
/// requirement) plus precedence edges `u → v` meaning "v cannot start
/// before u completes".
///
/// The structure stores both predecessor and successor adjacency lists so
/// the list scheduler can query readiness in O(in-degree).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskGraph {
    tasks: TaskSet,
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
    edge_count: usize,
}

impl TaskGraph {
    /// Creates a graph with the given tasks and no edges.
    pub fn new(tasks: TaskSet) -> Self {
        let n = tasks.len();
        TaskGraph {
            tasks,
            preds: vec![Vec::new(); n],
            succs: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Creates a graph of `n` unit tasks (`p = s = 1`) and no edges;
    /// convenient for structural tests.
    pub fn unit(n: usize) -> Self {
        let tasks = TaskSet::new(vec![Task::new_unchecked(1.0, 1.0); n])
            .expect("unit tasks are always valid");
        TaskGraph::new(tasks)
    }

    /// Builds a graph from tasks and an edge list.
    pub fn from_edges(tasks: TaskSet, edges: &[(usize, usize)]) -> Result<Self, ModelError> {
        let mut g = TaskGraph::new(tasks);
        for &(u, v) in edges {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Number of tasks.
    #[inline]
    pub fn n(&self) -> usize {
        self.tasks.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The task set.
    #[inline]
    pub fn tasks(&self) -> &TaskSet {
        &self.tasks
    }

    /// Task by index.
    #[inline]
    pub fn task(&self, i: usize) -> Task {
        self.tasks.get(i)
    }

    /// Predecessors of task `i`.
    #[inline]
    pub fn preds(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }

    /// Successors of task `i`.
    #[inline]
    pub fn succs(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// The full predecessor lists, in the shape expected by
    /// `sws_model::validate::validate_timed`.
    #[inline]
    pub fn all_preds(&self) -> &[Vec<usize>] {
        &self.preds
    }

    /// Adds the precedence edge `u → v`. Self-loops are rejected; parallel
    /// edges are ignored (idempotent).
    pub fn add_edge(&mut self, u: usize, v: usize) -> Result<(), ModelError> {
        let n = self.n();
        if u >= n {
            return Err(ModelError::ProcessorOutOfRange {
                task: u,
                proc: u,
                m: n,
            });
        }
        if v >= n {
            return Err(ModelError::ProcessorOutOfRange {
                task: v,
                proc: v,
                m: n,
            });
        }
        if u == v {
            return Err(ModelError::CyclicPrecedence);
        }
        if self.succs[u].contains(&v) {
            return Ok(());
        }
        self.succs[u].push(v);
        self.preds[v].push(u);
        self.edge_count += 1;
        Ok(())
    }

    /// Iterates over every edge `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.succs
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (u, v)))
    }

    /// Tasks with no predecessors.
    pub fn sources(&self) -> Vec<usize> {
        (0..self.n())
            .filter(|&i| self.preds[i].is_empty())
            .collect()
    }

    /// Tasks with no successors.
    pub fn sinks(&self) -> Vec<usize> {
        (0..self.n())
            .filter(|&i| self.succs[i].is_empty())
            .collect()
    }

    /// In-degree of task `i`.
    #[inline]
    pub fn in_degree(&self, i: usize) -> usize {
        self.preds[i].len()
    }

    /// Out-degree of task `i`.
    #[inline]
    pub fn out_degree(&self, i: usize) -> usize {
        self.succs[i].len()
    }

    /// Whether the graph has no edges at all (independent tasks).
    pub fn is_independent(&self) -> bool {
        self.edge_count == 0
    }

    /// A topological order of the tasks, or an error if the graph has a
    /// cycle (delegates to [`crate::topo::topological_order`]).
    pub fn topological_order(&self) -> Result<Vec<usize>, ModelError> {
        crate::topo::topological_order(self)
    }

    /// Length of the critical path (delegates to
    /// [`crate::levels::critical_path`]); `0.0` for an empty graph.
    pub fn critical_path_length(&self) -> f64 {
        crate::levels::critical_path(self)
    }

    /// Flattens the graph into the kernel-friendly CSR form
    /// ([`crate::csr::CsrDag`]). Build it once per instance and share it
    /// across runs — the flat mirror is immutable.
    pub fn csr(&self) -> crate::csr::CsrDag {
        crate::csr::CsrDag::from_graph(self)
    }

    /// Returns a copy of the graph with new task costs but the same
    /// structure. `f(i)` provides the task for node `i`.
    pub fn with_costs<F: FnMut(usize) -> Task>(&self, f: F) -> TaskGraph {
        let tasks: Vec<Task> = (0..self.n()).map(f).collect();
        let tasks = TaskSet::new(tasks).expect("cost function produced invalid task");
        TaskGraph {
            tasks,
            preds: self.preds.clone(),
            succs: self.succs.clone(),
            edge_count: self.edge_count,
        }
    }

    /// The transitive reduction is not needed by the algorithms, but the
    /// generators occasionally produce redundant edges; this removes any
    /// edge `u → v` for which a longer path `u ⇝ v` exists. Runs in
    /// O(n·(n+e)) which is fine for generator-sized graphs.
    pub fn transitive_reduction(&self) -> TaskGraph {
        let order = self
            .topological_order()
            .expect("transitive reduction requires an acyclic graph");
        let n = self.n();
        // reach[u] = set of vertices reachable from u via paths of length >= 2
        // computed bottom-up in reverse topological order.
        let mut reach: Vec<Vec<bool>> = vec![vec![false; n]; n];
        for &u in order.iter().rev() {
            for &v in &self.succs[u] {
                // everything reachable from v is reachable from u via >= 2 hops
                let (ru, rv) = {
                    // split borrow
                    let (a, b) = if u < v {
                        let (l, r) = reach.split_at_mut(v);
                        (&mut l[u], &r[0])
                    } else {
                        let (l, r) = reach.split_at_mut(u);
                        (&mut r[0], &l[v])
                    };
                    (a, b)
                };
                for w in 0..n {
                    if rv[w] {
                        ru[w] = true;
                    }
                }
                ru[v] = true;
            }
        }
        // An edge u -> v is redundant if some other successor w of u reaches v.
        let mut reduced = TaskGraph::new(self.tasks.clone());
        for u in 0..n {
            for &v in &self.succs[u] {
                let redundant = self.succs[u].iter().any(|&w| w != v && reach[w][v]);
                if !redundant {
                    reduced
                        .add_edge(u, v)
                        .expect("edge indices already validated");
                }
            }
        }
        reduced
    }
}

/// A precedence-constrained instance: a task graph plus the number of
/// identical processors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagInstance {
    graph: TaskGraph,
    m: usize,
    /// The critical-path length, computed once at construction (the
    /// cycle check already produces the topological order it needs).
    /// Serving paths report the `Cmax ≥ |CP|` bound on every solve, so
    /// this must not cost a graph traversal per request.
    critical_path: f64,
    /// The critical-path-aware Graham makespan lower bound
    /// `max(|CP|, max_i p_i, Σp_i/m)`, cached for the same reason.
    cmax_lb: f64,
    /// The Graham memory lower bound `max(max_i s_i, Σs_i/m)` — the
    /// `LB` whose `∆·LB` cap RLS∆ enforces — cached for the same
    /// reason.
    mmax_lb: f64,
}

impl DagInstance {
    /// Builds an instance; fails when `m = 0` or the graph is cyclic.
    pub fn new(graph: TaskGraph, m: usize) -> Result<Self, ModelError> {
        if m == 0 {
            return Err(ModelError::NoProcessors);
        }
        let order = crate::topo::topological_order(&graph)?;
        let critical_path = crate::levels::bottom_levels_with_order(&graph, &order)
            .into_iter()
            .fold(0.0, f64::max);
        let tasks = graph.tasks();
        let (cmax_lb, mmax_lb) = if tasks.is_empty() {
            (0.0, 0.0)
        } else {
            (
                sws_model::bounds::cmax_lower_bound_prec(tasks, m, critical_path),
                sws_model::bounds::mmax_lower_bound(tasks, m),
            )
        };
        Ok(DagInstance {
            graph,
            m,
            critical_path,
            cmax_lb,
            mmax_lb,
        })
    }

    /// The critical-path length of the instance's graph, cached at
    /// construction. Equal to `self.graph().critical_path_length()`
    /// without the per-call traversal.
    #[inline]
    pub fn critical_path_length(&self) -> f64 {
        self.critical_path
    }

    /// The critical-path-aware Graham makespan lower bound, cached at
    /// construction. Equal to
    /// `cmax_lower_bound_prec(tasks, m, critical_path)` (`0` for an
    /// empty task set).
    #[inline]
    pub fn cmax_lower_bound(&self) -> f64 {
        self.cmax_lb
    }

    /// The Graham memory lower bound `LB`, cached at construction.
    /// Equal to `mmax_lower_bound(tasks, m)` (`0` for an empty task
    /// set) — the value RLS∆ derives its `∆·LB` cap from.
    #[inline]
    pub fn mmax_lower_bound(&self) -> f64 {
        self.mmax_lb
    }

    /// Number of tasks.
    #[inline]
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// Number of processors.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// The task graph.
    #[inline]
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }

    /// The task set.
    #[inline]
    pub fn tasks(&self) -> &TaskSet {
        self.graph.tasks()
    }

    /// The independent-task relaxation of this instance (same tasks and
    /// processors, precedence dropped) — used by lower bounds and by the
    /// SBO∆ comparison baselines.
    pub fn relaxation(&self) -> sws_model::Instance {
        sws_model::Instance::new(self.graph.tasks().clone(), self.m)
            .expect("m > 0 checked at construction")
    }

    /// Returns a copy with a different processor count.
    pub fn with_processors(&self, m: usize) -> Result<DagInstance, ModelError> {
        DagInstance::new(self.graph.clone(), m)
    }

    /// Flattens the instance's graph into the kernel-friendly CSR form
    /// (see [`TaskGraph::csr`]).
    pub fn csr(&self) -> crate::csr::CsrDag {
        self.graph.csr()
    }
}

/// The solver-layer view of a precedence-constrained instance: lets a
/// [`DagInstance`] travel inside `sws_model::solve::SolveRequest`.
/// DAG-aware backends recover the concrete type through `as_any` and
/// reuse the instance's CSR mirror without rebuilding the graph.
impl sws_model::solve::PrecedenceInstance for DagInstance {
    fn tasks(&self) -> &TaskSet {
        self.graph.tasks()
    }

    fn m(&self) -> usize {
        self.m
    }

    fn preds(&self) -> &[Vec<usize>] {
        self.graph.all_preds()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> TaskGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut g = TaskGraph::unit(4);
        g.add_edge(0, 1).unwrap();
        g.add_edge(0, 2).unwrap();
        g.add_edge(1, 3).unwrap();
        g.add_edge(2, 3).unwrap();
        g
    }

    #[test]
    fn adjacency_lists_are_consistent() {
        let g = diamond();
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.succs(0), &[1, 2]);
        assert_eq!(g.preds(3), &[1, 2]);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.sources(), vec![0]);
        assert_eq!(g.sinks(), vec![3]);
    }

    #[test]
    fn parallel_edges_are_idempotent() {
        let mut g = TaskGraph::unit(2);
        g.add_edge(0, 1).unwrap();
        g.add_edge(0, 1).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_loops_and_out_of_range_edges_are_rejected() {
        let mut g = TaskGraph::unit(2);
        assert!(g.add_edge(0, 0).is_err());
        assert!(g.add_edge(0, 5).is_err());
        assert!(g.add_edge(7, 1).is_err());
    }

    #[test]
    fn edges_iterator_lists_every_edge_once() {
        let g = diamond();
        let mut edges: Vec<(usize, usize)> = g.edges().collect();
        edges.sort();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn with_costs_preserves_structure() {
        let g = diamond();
        let g2 = g.with_costs(|i| Task::new_unchecked(i as f64 + 1.0, 2.0));
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(g2.task(2).p, 3.0);
        assert_eq!(g2.task(2).s, 2.0);
    }

    #[test]
    fn transitive_reduction_removes_shortcut_edges() {
        // 0 -> 1 -> 2 plus the redundant shortcut 0 -> 2.
        let mut g = TaskGraph::unit(3);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        g.add_edge(0, 2).unwrap();
        let r = g.transitive_reduction();
        let mut edges: Vec<(usize, usize)> = r.edges().collect();
        edges.sort();
        assert_eq!(edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn transitive_reduction_keeps_diamond_intact() {
        let g = diamond();
        let r = g.transitive_reduction();
        assert_eq!(r.edge_count(), 4);
    }

    #[test]
    fn dag_instance_rejects_zero_processors_and_cycles() {
        let g = diamond();
        assert!(DagInstance::new(g.clone(), 0).is_err());
        assert!(DagInstance::new(g, 2).is_ok());
    }

    #[test]
    fn relaxation_drops_precedence_but_keeps_tasks() {
        let inst = DagInstance::new(diamond(), 3).unwrap();
        let relaxed = inst.relaxation();
        assert_eq!(relaxed.n(), 4);
        assert_eq!(relaxed.m(), 3);
    }

    #[test]
    fn from_edges_builds_the_same_graph_as_incremental_insertion() {
        let a = diamond();
        let b =
            TaskGraph::from_edges(a.tasks().clone(), &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_graph_is_independent() {
        let g = TaskGraph::unit(5);
        assert!(g.is_independent());
        assert_eq!(g.sources().len(), 5);
        assert_eq!(g.sinks().len(), 5);
    }
}
