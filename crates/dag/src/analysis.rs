//! Structural statistics of task graphs, used in experiment logs.

use serde::{Deserialize, Serialize};

use crate::graph::TaskGraph;
use crate::levels::{critical_path, depth, top_levels};

/// Summary statistics of a task graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of tasks.
    pub n: usize,
    /// Number of precedence edges.
    pub edges: usize,
    /// Number of source tasks (no predecessors).
    pub sources: usize,
    /// Number of sink tasks (no successors).
    pub sinks: usize,
    /// Depth: number of tasks on the longest chain.
    pub depth: usize,
    /// Width: the largest number of tasks sharing the same "level index"
    /// (an upper bound estimate of available parallelism).
    pub width: usize,
    /// Critical path length (longest chain of processing times).
    pub critical_path: f64,
    /// Total work `Σ p_i`.
    pub total_work: f64,
    /// Total storage `Σ s_i`.
    pub total_storage: f64,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Average parallelism `Σ p_i / critical_path` (∞ mapped to total work
    /// when the critical path is zero, i.e. the empty graph).
    pub average_parallelism: f64,
}

impl GraphStats {
    /// Computes the statistics of an acyclic task graph.
    pub fn of(graph: &TaskGraph) -> GraphStats {
        let n = graph.n();
        let cp = critical_path(graph);
        let total_work = graph.tasks().total_work();
        let width = level_width(graph);
        GraphStats {
            n,
            edges: graph.edge_count(),
            sources: graph.sources().len(),
            sinks: graph.sinks().len(),
            depth: depth(graph),
            width,
            critical_path: cp,
            total_work,
            total_storage: graph.tasks().total_storage(),
            max_in_degree: (0..n).map(|i| graph.in_degree(i)).max().unwrap_or(0),
            max_out_degree: (0..n).map(|i| graph.out_degree(i)).max().unwrap_or(0),
            average_parallelism: if cp > 0.0 {
                total_work / cp
            } else {
                total_work
            },
        }
    }
}

/// Width estimate: tasks are bucketed by their depth index (number of
/// tasks on the longest chain ending at them) and the largest bucket size
/// is returned. This is the usual "level width" of layered scheduling
/// literature; it upper-bounds the parallelism exploitable level by level.
pub fn level_width(graph: &TaskGraph) -> usize {
    let n = graph.n();
    if n == 0 {
        return 0;
    }
    let order = graph
        .topological_order()
        .expect("width requires an acyclic graph");
    let mut level = vec![0usize; n];
    for &u in &order {
        for &v in graph.succs(u) {
            level[v] = level[v].max(level[u] + 1);
        }
    }
    let max_level = level.iter().copied().max().unwrap_or(0);
    let mut counts = vec![0usize; max_level + 1];
    for &l in &level {
        counts[l] += 1;
    }
    counts.into_iter().max().unwrap_or(0)
}

/// Per-level grouping of tasks (tasks bucketed by longest-chain depth);
/// exposed for the layered generators' tests and the Gantt annotations.
pub fn levels_by_depth(graph: &TaskGraph) -> Vec<Vec<usize>> {
    let n = graph.n();
    if n == 0 {
        return Vec::new();
    }
    let order = graph
        .topological_order()
        .expect("levels require an acyclic graph");
    let mut level = vec![0usize; n];
    for &u in &order {
        for &v in graph.succs(u) {
            level[v] = level[v].max(level[u] + 1);
        }
    }
    let max_level = level.iter().copied().max().unwrap_or(0);
    let mut buckets = vec![Vec::new(); max_level + 1];
    for (i, &l) in level.iter().enumerate() {
        buckets[l].push(i);
    }
    buckets
}

/// Checks the structural sanity of a generated graph: acyclic, level
/// widths and the earliest-start profile consistent. Used by property
/// tests over all generators.
pub fn structurally_sound(graph: &TaskGraph) -> bool {
    if graph.topological_order().is_err() {
        return false;
    }
    let top = top_levels(graph);
    // Every successor must start no earlier than its predecessor's end.
    graph
        .edges()
        .all(|(u, v)| top[v] + 1e-9 >= top[u] + graph.task(u).p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskGraph;

    fn diamond() -> TaskGraph {
        let mut g = TaskGraph::unit(4);
        g.add_edge(0, 1).unwrap();
        g.add_edge(0, 2).unwrap();
        g.add_edge(1, 3).unwrap();
        g.add_edge(2, 3).unwrap();
        g
    }

    #[test]
    fn stats_of_a_diamond() {
        let st = GraphStats::of(&diamond());
        assert_eq!(st.n, 4);
        assert_eq!(st.edges, 4);
        assert_eq!(st.sources, 1);
        assert_eq!(st.sinks, 1);
        assert_eq!(st.depth, 3);
        assert_eq!(st.width, 2);
        assert_eq!(st.critical_path, 3.0);
        assert_eq!(st.max_in_degree, 2);
        assert_eq!(st.max_out_degree, 2);
        assert!((st.average_parallelism - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn width_of_independent_tasks_is_n() {
        let g = TaskGraph::unit(7);
        assert_eq!(level_width(&g), 7);
        assert_eq!(GraphStats::of(&g).depth, 1);
    }

    #[test]
    fn levels_by_depth_partition_all_tasks() {
        let g = diamond();
        let levels = levels_by_depth(&g);
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0], vec![0]);
        assert_eq!(levels[1], vec![1, 2]);
        assert_eq!(levels[2], vec![3]);
        let total: usize = levels.iter().map(|l| l.len()).sum();
        assert_eq!(total, g.n());
    }

    #[test]
    fn soundness_check_accepts_valid_graphs() {
        assert!(structurally_sound(&diamond()));
        assert!(structurally_sound(&TaskGraph::unit(3)));
    }

    #[test]
    fn empty_graph_stats_are_zero() {
        let st = GraphStats::of(&TaskGraph::unit(0));
        assert_eq!(st.n, 0);
        assert_eq!(st.width, 0);
        assert_eq!(st.depth, 0);
        assert_eq!(st.critical_path, 0.0);
    }
}
