//! Top/bottom levels and the critical-path lower bound.
//!
//! The critical path (the longest chain of processing times) is the `|CP|`
//! lower bound used in the proof of Lemma 5 of the paper: no schedule can
//! finish before the longest chain has executed sequentially.

use crate::graph::TaskGraph;

/// Top level of each task: the length of the longest path *ending just
/// before* the task, i.e. the earliest possible start time on an infinite
/// number of processors. Sources have top level 0.
pub fn top_levels(graph: &TaskGraph) -> Vec<f64> {
    let order = graph
        .topological_order()
        .expect("top levels require an acyclic graph");
    let mut top = vec![0.0f64; graph.n()];
    for &u in &order {
        let end_u = top[u] + graph.task(u).p;
        for &v in graph.succs(u) {
            if end_u > top[v] {
                top[v] = end_u;
            }
        }
    }
    top
}

/// Bottom level of each task: the length of the longest path *starting at*
/// the task, including the task's own processing time. This is the classic
/// priority used by critical-path list scheduling (HLF).
pub fn bottom_levels(graph: &TaskGraph) -> Vec<f64> {
    let order = graph
        .topological_order()
        .expect("bottom levels require an acyclic graph");
    bottom_levels_with_order(graph, &order)
}

/// [`bottom_levels`] over an already-computed topological order — lets
/// callers that validated acyclicity (and therefore hold an order)
/// avoid a second graph traversal.
pub fn bottom_levels_with_order(graph: &TaskGraph, order: &[usize]) -> Vec<f64> {
    let mut bottom = vec![0.0f64; graph.n()];
    for &u in order.iter().rev() {
        let best_succ = graph
            .succs(u)
            .iter()
            .map(|&v| bottom[v])
            .fold(0.0f64, f64::max);
        bottom[u] = graph.task(u).p + best_succ;
    }
    bottom
}

/// Length of the critical path: the longest chain of processing times in
/// the graph, `max_i bottom_level(i)`. Returns `0.0` for an empty graph.
pub fn critical_path(graph: &TaskGraph) -> f64 {
    bottom_levels(graph).into_iter().fold(0.0, f64::max)
}

/// The tasks of one longest path, from a source to a sink. Useful for
/// reporting which chain limits the makespan. Returns an empty vector for
/// an empty graph.
pub fn critical_path_tasks(graph: &TaskGraph) -> Vec<usize> {
    if graph.n() == 0 {
        return Vec::new();
    }
    let bottom = bottom_levels(graph);
    // Start from the task with the largest bottom level.
    let mut current = (0..graph.n())
        .max_by(|&a, &b| sws_model::numeric::total_cmp(bottom[a], bottom[b]))
        .expect("non-empty graph");
    // Walk down to a source first? bottom levels start at any task; the
    // maximum is always attained at some source of the longest chain, so
    // `current` already starts the chain.
    let mut path = vec![current];
    loop {
        // Follow the successor whose bottom level equals ours minus our p.
        let expected = bottom[current] - graph.task(current).p;
        if expected <= 0.0 && graph.succs(current).is_empty() {
            break;
        }
        let next = graph
            .succs(current)
            .iter()
            .copied()
            .find(|&v| sws_model::numeric::approx_eq(bottom[v], expected));
        match next {
            Some(v) => {
                path.push(v);
                current = v;
            }
            None => break,
        }
    }
    path
}

/// Depth of the graph: number of tasks on the longest chain counted by
/// cardinality (not by processing time).
pub fn depth(graph: &TaskGraph) -> usize {
    let order = match graph.topological_order() {
        Ok(o) => o,
        Err(_) => return 0,
    };
    let mut d = vec![1usize; graph.n()];
    let mut best = if graph.n() == 0 { 0 } else { 1 };
    for &u in &order {
        for &v in graph.succs(u) {
            if d[u] + 1 > d[v] {
                d[v] = d[u] + 1;
                best = best.max(d[v]);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskGraph;
    use sws_model::task::{Task, TaskSet};

    fn weighted_diamond() -> TaskGraph {
        // 0 (p=1) -> 1 (p=2) -> 3 (p=1)
        //        \-> 2 (p=5) -/
        let tasks = TaskSet::new(vec![
            Task::new_unchecked(1.0, 1.0),
            Task::new_unchecked(2.0, 1.0),
            Task::new_unchecked(5.0, 1.0),
            Task::new_unchecked(1.0, 1.0),
        ])
        .unwrap();
        TaskGraph::from_edges(tasks, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn top_levels_are_earliest_starts() {
        let g = weighted_diamond();
        let top = top_levels(&g);
        assert_eq!(top[0], 0.0);
        assert_eq!(top[1], 1.0);
        assert_eq!(top[2], 1.0);
        assert_eq!(top[3], 6.0); // via the long branch 0 -> 2
    }

    #[test]
    fn bottom_levels_include_own_processing_time() {
        let g = weighted_diamond();
        let bottom = bottom_levels(&g);
        assert_eq!(bottom[3], 1.0);
        assert_eq!(bottom[1], 3.0);
        assert_eq!(bottom[2], 6.0);
        assert_eq!(bottom[0], 7.0);
    }

    #[test]
    fn critical_path_is_the_longest_chain() {
        let g = weighted_diamond();
        assert_eq!(critical_path(&g), 7.0);
        let path = critical_path_tasks(&g);
        assert_eq!(path, vec![0, 2, 3]);
    }

    #[test]
    fn independent_tasks_critical_path_is_longest_task() {
        let tasks = TaskSet::from_ps(&[1.0, 4.0, 2.0], &[1.0; 3]).unwrap();
        let g = TaskGraph::new(tasks);
        assert_eq!(critical_path(&g), 4.0);
        assert_eq!(depth(&g), 1);
    }

    #[test]
    fn depth_counts_tasks_not_time() {
        let g = weighted_diamond();
        assert_eq!(depth(&g), 3);
        let mut chain = TaskGraph::unit(5);
        for i in 0..4 {
            chain.add_edge(i, i + 1).unwrap();
        }
        assert_eq!(depth(&chain), 5);
    }

    #[test]
    fn empty_graph_levels_are_empty() {
        let g = TaskGraph::unit(0);
        assert!(top_levels(&g).is_empty());
        assert_eq!(critical_path(&g), 0.0);
        assert!(critical_path_tasks(&g).is_empty());
        assert_eq!(depth(&g), 0);
    }

    #[test]
    fn critical_path_matches_lower_bound_usage() {
        // The critical path is a valid lower bound: any single chain's
        // total processing time is <= critical_path.
        let g = weighted_diamond();
        let cp = critical_path(&g);
        // chain 0 -> 1 -> 3 has length 4 <= 7
        assert!(4.0 <= cp);
    }
}
