//! Instance deltas: the mutation vocabulary of the incremental
//! replanning engine.
//!
//! Everything below PR 10 solves a *frozen* DAG. Online workloads are
//! not frozen: tasks arrive, tasks finish, cost estimates get revised.
//! A [`CsrDelta`] names one such event in terms of the flat
//! [`CsrDag`](crate::CsrDag) mirror the scheduling kernel actually
//! consumes, so a mutation can be applied **in place** — no graph
//! rebuild, no re-flattening — and the kernel's checkpoint/replay
//! machinery can resume from the first affected round instead of
//! re-solving from scratch.
//!
//! The delta layer keeps every `CsrDag` invariant intact:
//!
//! * **Adjacency**: an arrival appends its predecessor list to the pred
//!   CSR (a pure append) and splices itself onto the *end* of each
//!   predecessor's successor list in one `O(n + E)` pass — the same
//!   position a [`TaskGraph`](crate::TaskGraph) built with the edge
//!   appended last would produce, so a replan and a from-scratch solve
//!   of the mutated instance see identical edge orders.
//! * **Quantized cost keys**: new cost values go through
//!   [`KeyTable::rank_or_append`](crate::KeyTable::rank_or_append) —
//!   reuse an existing rank, or append when the value is a new maximum
//!   (no existing rank shifts). A value that would land *between*
//!   existing ranks drops the whole instance to the saturated
//!   exact-`f64` mode instead (`cost_keys = None`), mirroring the
//!   construction-time refusal: quantization stays total or absent,
//!   never lossy, so the bit-identity contract between the quantized
//!   and saturated paths survives every mutation.
//!
//! `CompleteTask` deliberately mutates nothing: completion pins a task
//! against future `Recost`/re-planning (enforced by the engines that
//! track completion), but the already-scheduled instance is unchanged —
//! which is exactly why completion events replay zero rounds.

use crate::csr::CsrDag;
use sws_model::error::ModelError;

/// One mutation of a live instance, in CSR vocabulary.
///
/// Validation happens in [`CsrDag::apply_delta`]; the enum itself is a
/// plain value so event generators (`sws_workloads`) and services can
/// build streams of them without holding the instance.
#[derive(Debug, Clone, PartialEq)]
pub enum CsrDelta {
    /// A new task arrives. It takes the next index (`n`), its
    /// predecessors must already exist, and its costs must be finite
    /// and non-negative (the same domain the task constructors accept).
    AddTask {
        /// Indices of the tasks this one depends on (no duplicates).
        preds: Vec<u32>,
        /// Processing time of the new task.
        p: f64,
        /// Storage requirement of the new task.
        s: f64,
    },
    /// A task finished executing. Structurally a no-op — the schedule
    /// of the instance is unchanged — but it pins the task: engines
    /// refuse later `Recost`s of a completed task, and completed
    /// prefixes anchor the replay machinery.
    CompleteTask {
        /// The finished task.
        task: u32,
    },
    /// A cost re-estimate for an existing task. `None` keeps the
    /// current value.
    Recost {
        /// The re-estimated task.
        task: u32,
        /// New processing time, when it changed.
        p: Option<f64>,
        /// New storage requirement, when it changed.
        s: Option<f64>,
    },
}

impl CsrDelta {
    /// Validates the delta against an instance of `n` tasks, without
    /// applying it.
    pub fn validate(&self, n: usize) -> Result<(), ModelError> {
        let check_p = |task: usize, v: f64| {
            if v.is_finite() && v >= 0.0 {
                Ok(())
            } else {
                Err(ModelError::InvalidProcessingTime { task, value: v })
            }
        };
        let check_s = |task: usize, v: f64| {
            if v.is_finite() && v >= 0.0 {
                Ok(())
            } else {
                Err(ModelError::InvalidStorage { task, value: v })
            }
        };
        match self {
            CsrDelta::AddTask { preds, p, s } => {
                check_p(n, *p)?;
                check_s(n, *s)?;
                for (k, &u) in preds.iter().enumerate() {
                    if u as usize >= n {
                        return Err(ModelError::PrecedenceViolation {
                            pred: u as usize,
                            task: n,
                        });
                    }
                    // Duplicate predecessor edges would double-count in
                    // the kernel's readiness bookkeeping; arrivals are
                    // small, so the quadratic scan beats allocating.
                    if preds[..k].contains(&u) {
                        return Err(ModelError::PrecedenceViolation {
                            pred: u as usize,
                            task: n,
                        });
                    }
                }
                Ok(())
            }
            CsrDelta::CompleteTask { task } | CsrDelta::Recost { task, .. } => {
                let t = *task as usize;
                if t >= n {
                    return Err(ModelError::IncompleteAssignment {
                        expected: n,
                        got: t,
                    });
                }
                if let CsrDelta::Recost { p, s, .. } = self {
                    if let Some(v) = p {
                        check_p(t, *v)?;
                    }
                    if let Some(v) = s {
                        check_s(t, *v)?;
                    }
                }
                Ok(())
            }
        }
    }
}

impl CsrDag {
    /// Applies a delta **in place**, maintaining every CSR invariant
    /// (see the module docs). Arrivals cost `O(n + E)` for the
    /// successor-list splice; recosts cost `O(log k)` for the key-table
    /// maintenance; completions cost nothing.
    ///
    /// On error the instance is unchanged.
    pub fn apply_delta(&mut self, delta: &CsrDelta) -> Result<(), ModelError> {
        delta.validate(self.n())?;
        match delta {
            CsrDelta::CompleteTask { .. } => Ok(()),
            CsrDelta::Recost { task, p, s } => {
                self.recost(*task as usize, *p, *s);
                Ok(())
            }
            CsrDelta::AddTask { preds, p, s } => {
                self.add_task(preds, *p, *s);
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaskGraph;
    use sws_model::task::TaskSet;

    fn diamond_graph() -> TaskGraph {
        let tasks = TaskSet::from_ps(&[1.0, 2.0, 3.0, 4.0], &[4.0, 3.0, 2.0, 1.0]).unwrap();
        TaskGraph::from_edges(tasks, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    /// The mutated CSR must match a CSR built from the equivalently
    /// mutated graph — adjacency, costs and edge order all identical.
    #[test]
    fn arrival_matches_rebuilt_graph() {
        let g = diamond_graph();
        let mut csr = g.csr();
        csr.apply_delta(&CsrDelta::AddTask {
            preds: vec![1, 3],
            p: 5.0,
            s: 0.5,
        })
        .unwrap();

        let mut tasks: Vec<_> = g.tasks().as_slice().to_vec();
        tasks.push(sws_model::task::Task::new(5.0, 0.5).unwrap());
        let g2 = TaskGraph::from_edges(
            TaskSet::new(tasks).unwrap(),
            &[(0, 1), (0, 2), (1, 3), (2, 3), (1, 4), (3, 4)],
        )
        .unwrap();
        let rebuilt = g2.csr();

        assert_eq!(csr.n(), rebuilt.n());
        assert_eq!(csr.edge_count(), rebuilt.edge_count());
        for i in 0..csr.n() {
            assert_eq!(csr.preds(i), rebuilt.preds(i), "preds of {i}");
            assert_eq!(csr.succs(i), rebuilt.succs(i), "succs of {i}");
            assert_eq!(csr.p(i).to_bits(), rebuilt.p(i).to_bits());
            assert_eq!(csr.s(i).to_bits(), rebuilt.s(i).to_bits());
        }
    }

    #[test]
    fn recost_with_existing_and_new_max_values_stays_quantized() {
        let mut csr = diamond_graph().csr();
        assert!(csr.cost_keys().is_some());
        // 3.0 is already tabled; 99.0 is a new maximum: both keep ranks.
        csr.apply_delta(&CsrDelta::Recost {
            task: 0,
            p: Some(3.0),
            s: Some(99.0),
        })
        .unwrap();
        assert!(csr.cost_keys().is_some());
        let table = csr.cost_keys().unwrap();
        let pr = csr.p_ranks().unwrap();
        let sr = csr.s_ranks().unwrap();
        assert_eq!(table.value_of(pr[0]).to_bits(), 3.0f64.to_bits());
        assert_eq!(table.value_of(sr[0]).to_bits(), 99.0f64.to_bits());
    }

    #[test]
    fn rank_breaking_recost_saturates_instead_of_renumbering() {
        let mut csr = diamond_graph().csr();
        assert!(csr.cost_keys().is_some());
        // 2.5 falls between tabled values: quantization must refuse.
        csr.apply_delta(&CsrDelta::Recost {
            task: 1,
            p: Some(2.5),
            s: None,
        })
        .unwrap();
        assert!(csr.cost_keys().is_none());
        assert!(csr.p_ranks().is_none());
        assert_eq!(csr.p(1), 2.5);
    }

    #[test]
    fn negative_zero_storage_is_normalized_like_construction() {
        let mut csr = diamond_graph().csr();
        csr.apply_delta(&CsrDelta::AddTask {
            preds: vec![],
            p: 1.0,
            s: -0.0,
        })
        .unwrap();
        // -0.0 is not in the table, but +0.0 normalization makes it a
        // candidate: it is *below* every tabled value, so it saturates
        // (not a new maximum) — and the stored value is preserved.
        assert!(csr.cost_keys().is_none());
        assert_eq!(csr.s(4).to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn invalid_deltas_leave_the_instance_untouched() {
        let mut csr = diamond_graph().csr();
        let before = csr.clone();
        assert!(csr
            .apply_delta(&CsrDelta::AddTask {
                preds: vec![9],
                p: 1.0,
                s: 1.0
            })
            .is_err());
        assert!(csr
            .apply_delta(&CsrDelta::AddTask {
                preds: vec![0, 0],
                p: 1.0,
                s: 1.0
            })
            .is_err());
        assert!(csr
            .apply_delta(&CsrDelta::Recost {
                task: 0,
                p: Some(f64::NAN),
                s: None
            })
            .is_err());
        assert!(csr
            .apply_delta(&CsrDelta::Recost {
                task: 7,
                p: None,
                s: None
            })
            .is_err());
        assert_eq!(csr, before);
    }

    #[test]
    fn complete_task_is_a_structural_noop() {
        let mut csr = diamond_graph().csr();
        let before = csr.clone();
        csr.apply_delta(&CsrDelta::CompleteTask { task: 2 })
            .unwrap();
        assert_eq!(csr, before);
    }
}
