//! In-trees (reductions) and out-trees (broadcasts).

use crate::graph::TaskGraph;

/// Number of nodes of a complete `arity`-ary tree with `depth` levels
/// (depth 1 = a single root).
fn tree_size(depth: usize, arity: usize) -> usize {
    if arity == 1 {
        return depth;
    }
    // (arity^depth - 1) / (arity - 1)
    let mut total = 0usize;
    let mut level = 1usize;
    for _ in 0..depth {
        total += level;
        level *= arity;
    }
    total
}

/// A complete out-tree (broadcast): the root at index 0 precedes its
/// children, which precede their children, etc. `depth` levels, branching
/// factor `arity`.
pub fn out_tree(depth: usize, arity: usize) -> TaskGraph {
    assert!(depth >= 1, "tree needs at least one level");
    assert!(arity >= 1, "tree needs arity >= 1");
    let n = tree_size(depth, arity);
    let mut g = TaskGraph::unit(n);
    // Nodes are numbered level by level; node i's children are
    // arity*i + 1 .. arity*i + arity (heap numbering).
    for i in 0..n {
        for c in 1..=arity {
            let child = arity * i + c;
            if child < n {
                g.add_edge(i, child).expect("valid index");
            }
        }
    }
    g
}

/// A complete in-tree (reduction): leaves precede internal nodes, the root
/// (index 0) is the sink. Same shape as [`out_tree`] with every edge
/// reversed.
pub fn in_tree(depth: usize, arity: usize) -> TaskGraph {
    assert!(depth >= 1, "tree needs at least one level");
    assert!(arity >= 1, "tree needs arity >= 1");
    let n = tree_size(depth, arity);
    let mut g = TaskGraph::unit(n);
    for i in 0..n {
        for c in 1..=arity {
            let child = arity * i + c;
            if child < n {
                g.add_edge(child, i).expect("valid index");
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::GraphStats;

    #[test]
    fn binary_out_tree_shape() {
        let g = out_tree(3, 2);
        let st = GraphStats::of(&g);
        assert_eq!(st.n, 7);
        assert_eq!(st.edges, 6);
        assert_eq!(st.sources, 1);
        assert_eq!(st.sinks, 4);
        assert_eq!(st.depth, 3);
        assert_eq!(st.critical_path, 3.0);
        assert_eq!(st.max_out_degree, 2);
        assert_eq!(st.max_in_degree, 1);
    }

    #[test]
    fn binary_in_tree_is_the_reverse() {
        let g = in_tree(3, 2);
        let st = GraphStats::of(&g);
        assert_eq!(st.n, 7);
        assert_eq!(st.sources, 4);
        assert_eq!(st.sinks, 1);
        assert_eq!(st.max_in_degree, 2);
        assert_eq!(st.max_out_degree, 1);
        assert_eq!(g.sinks(), vec![0]);
    }

    #[test]
    fn unary_tree_is_a_chain() {
        let g = out_tree(5, 1);
        assert_eq!(g.n(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.critical_path_length(), 5.0);
    }

    #[test]
    fn ternary_tree_size() {
        let g = out_tree(3, 3);
        assert_eq!(g.n(), 1 + 3 + 9);
    }

    #[test]
    #[should_panic]
    fn zero_depth_is_rejected() {
        let _ = out_tree(0, 2);
    }
}
