//! Gaussian-elimination task graph.
//!
//! The classical task graph of (dense, unblocked) Gaussian elimination on
//! a `k × k` system, a standard benchmark DAG in the multiprocessor
//! scheduling literature and representative of the "large physics
//! applications" the paper's introduction motivates.
//!
//! For each elimination step `j = 0 .. k−2`:
//!
//! * a *pivot* task `P_j` normalizes row `j`,
//! * update tasks `U_{j,i}` (for `i = j+1 .. k−1`) eliminate column `j`
//!   from row `i`.
//!
//! Dependencies: `P_j → U_{j,i}`, `U_{j,j+1} → P_{j+1}` and
//! `U_{j,i} → U_{j+1,i}` for `i > j+1`.
//!
//! Costs model the shrinking active sub-matrix: at step `j` the active row
//! length is `k − j`, so both pivot and update tasks have processing time
//! proportional to `k − j` and storage proportional to the row they keep
//! resident (`k − j` entries).

// The index tables below are built and wired positionally; range loops are
// the clearest way to express the block indices.
#![allow(clippy::needless_range_loop)]

use sws_model::task::Task;

use crate::graph::TaskGraph;

/// Builds the Gaussian-elimination task graph for a `k × k` system
/// (`k ≥ 2`). Task count is `(k−1) + (k−1)k/2`.
pub fn gaussian_elimination(k: usize) -> TaskGraph {
    assert!(k >= 2, "Gaussian elimination needs k >= 2");
    // Index layout: for each step j, the pivot P_j then the updates
    // U_{j, j+1} .. U_{j, k-1}.
    let steps = k - 1;
    let mut pivot_idx = vec![0usize; steps];
    let mut update_idx = vec![vec![0usize; k]; steps]; // update_idx[j][i]
    let mut tasks: Vec<Task> = Vec::new();
    for j in 0..steps {
        let active = (k - j) as f64;
        pivot_idx[j] = tasks.len();
        tasks.push(Task::new_unchecked(active, active));
        for i in (j + 1)..k {
            update_idx[j][i] = tasks.len();
            tasks.push(Task::new_unchecked(active, active));
        }
    }
    let tasks = sws_model::task::TaskSet::new(tasks).expect("costs are positive");
    let mut g = TaskGraph::new(tasks);
    for j in 0..steps {
        for i in (j + 1)..k {
            g.add_edge(pivot_idx[j], update_idx[j][i])
                .expect("valid index");
        }
        if j + 1 < steps {
            // The update of the next pivot row enables the next pivot.
            g.add_edge(update_idx[j][j + 1], pivot_idx[j + 1])
                .expect("valid index");
            for i in (j + 2)..k {
                g.add_edge(update_idx[j][i], update_idx[j + 1][i])
                    .expect("valid index");
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::GraphStats;

    #[test]
    fn task_count_matches_closed_form() {
        for k in 2..8 {
            let g = gaussian_elimination(k);
            let expected = (k - 1) + (k - 1) * k / 2;
            assert_eq!(g.n(), expected, "k = {k}");
            assert!(g.topological_order().is_ok());
        }
    }

    #[test]
    fn smallest_instance_is_a_fork() {
        // k = 2: P_0 -> U_{0,1}.
        let g = gaussian_elimination(2);
        assert_eq!(g.n(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn structure_has_single_source_and_sink_chain_shape() {
        let g = gaussian_elimination(5);
        let st = GraphStats::of(&g);
        assert_eq!(st.sources, 1); // only P_0 has no predecessor
        assert!(st.depth >= 2 * (5 - 1) - 1);
        // Critical path follows the pivot chain: lengths 5 + 5 + 4 + 4 + 3 + 3 + 2.
        assert!(st.critical_path >= 2.0 * (3 + 4 + 5) as f64 - 5.0);
    }

    #[test]
    fn costs_shrink_with_the_active_submatrix() {
        let g = gaussian_elimination(4);
        // First task is P_0 with cost k = 4; last task is the step-2 update
        // with cost 2.
        assert_eq!(g.task(0).p, 4.0);
        assert_eq!(g.task(g.n() - 1).p, 2.0);
    }

    #[test]
    #[should_panic]
    fn k1_is_rejected() {
        let _ = gaussian_elimination(1);
    }
}
