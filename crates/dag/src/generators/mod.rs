//! Synthetic task-graph generators.
//!
//! Every generator returns a [`crate::graph::TaskGraph`] whose structure
//! follows a classical parallel-application pattern; tasks carry unit
//! costs (`p = s = 1`) unless the generator has a natural cost model
//! (Gaussian elimination, LU, FFT scale their task costs with the block
//! they operate on). Randomized cost assignment for the evaluation
//! harness lives in `sws-workloads`, which combines these topologies with
//! (p, s) distributions via [`crate::graph::TaskGraph::with_costs`].
//!
//! | Generator | Pattern | Paper motivation |
//! |-----------|---------|------------------|
//! | [`chain`] | single dependence chain | worst case for parallelism, critical-path = total work |
//! | [`independent`] | no edges | the Section 3 independent-task model |
//! | [`forkjoin`] | repeated fork–join stages | embedded streaming pipelines |
//! | [`tree`] | in-/out-trees | reductions / broadcasts |
//! | [`diamond`] | 2-D stencil grid | wavefront computations |
//! | [`gauss`] | Gaussian elimination | the "large physics applications" of the introduction |
//! | [`lu`] | blocked LU factorization | scientific computing workloads |
//! | [`fft`] | FFT butterfly | SoC signal-processing codes |
//! | [`layered`] | random layered DAG | synthetic application mixes |
//! | [`erdos`] | ordered Erdős–Rényi DAG | unstructured task graphs |

pub mod chain;
pub mod diamond;
pub mod erdos;
pub mod fft;
pub mod forkjoin;
pub mod gauss;
pub mod independent;
pub mod layered;
pub mod lu;
pub mod tree;

#[cfg(test)]
mod generator_properties {
    use crate::analysis::structurally_sound;
    use crate::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Every generator must produce an acyclic, structurally sound graph.
    #[test]
    fn all_generators_produce_sound_dags() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let graphs = vec![
            ("chain", chain(12)),
            ("independent", independent(9)),
            ("fork_join", fork_join(3, 4)),
            ("in_tree", in_tree(3, 2)),
            ("out_tree", out_tree(3, 3)),
            ("diamond", diamond_grid(4, 5)),
            ("gauss", gaussian_elimination(5)),
            ("lu", lu_factorization(4)),
            ("fft", fft_butterfly(3)),
            ("layered", layered_random(40, 5, 0.3, &mut rng)),
            ("erdos", layered_erdos(30, 0.1, &mut rng)),
        ];
        for (name, g) in graphs {
            assert!(g.n() > 0, "{name} produced an empty graph");
            assert!(
                g.topological_order().is_ok(),
                "{name} produced a cyclic graph"
            );
            assert!(structurally_sound(&g), "{name} is structurally unsound");
        }
    }
}
