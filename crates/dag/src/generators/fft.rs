//! FFT butterfly task graph.
//!
//! The radix-2 FFT over `2^levels` points, a standard DAG benchmark for
//! embedded signal-processing codes (the multi-SoC motivation of the
//! paper). The graph has `levels + 1` ranks of `2^levels` tasks each; the
//! task at rank `l+1`, position `i` depends on the rank-`l` tasks at
//! positions `i` and `i XOR 2^l`.
//!
//! Costs: every butterfly performs the same constant amount of work
//! (`p = 1`); storage models the pair of in-flight complex buffers
//! (`s = 2`), while rank-0 "load" tasks keep a single buffer (`s = 1`).

use sws_model::task::{Task, TaskSet};

use crate::graph::TaskGraph;

/// Builds the FFT butterfly task graph with `levels ≥ 1` butterfly ranks
/// (`2^levels` points, `(levels + 1) · 2^levels` tasks).
pub fn fft_butterfly(levels: usize) -> TaskGraph {
    assert!(levels >= 1, "FFT needs at least one butterfly level");
    assert!(levels < 20, "FFT size would be unreasonably large");
    let points = 1usize << levels;
    let n = (levels + 1) * points;
    let idx = |rank: usize, pos: usize| rank * points + pos;

    let mut tasks = Vec::with_capacity(n);
    for rank in 0..=levels {
        for _ in 0..points {
            let s = if rank == 0 { 1.0 } else { 2.0 };
            tasks.push(Task::new_unchecked(1.0, s));
        }
    }
    let mut g = TaskGraph::new(TaskSet::new(tasks).expect("costs are positive"));
    for rank in 0..levels {
        let stride = 1usize << rank;
        for pos in 0..points {
            let partner = pos ^ stride;
            g.add_edge(idx(rank, pos), idx(rank + 1, pos))
                .expect("valid index");
            g.add_edge(idx(rank, partner), idx(rank + 1, pos))
                .expect("valid index");
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::GraphStats;

    #[test]
    fn dimensions_match_the_radix2_structure() {
        for levels in 1..5 {
            let g = fft_butterfly(levels);
            let points = 1usize << levels;
            assert_eq!(g.n(), (levels + 1) * points);
            // Every non-input task has exactly 2 predecessors.
            assert_eq!(g.edge_count(), 2 * levels * points);
            assert!(g.topological_order().is_ok());
        }
    }

    #[test]
    fn three_level_fft_stats() {
        let g = fft_butterfly(3);
        let st = GraphStats::of(&g);
        assert_eq!(st.n, 32);
        assert_eq!(st.sources, 8);
        assert_eq!(st.sinks, 8);
        assert_eq!(st.depth, 4);
        assert_eq!(st.width, 8);
        assert_eq!(st.critical_path, 4.0);
        assert_eq!(st.max_in_degree, 2);
        assert_eq!(st.max_out_degree, 2);
    }

    #[test]
    fn input_tasks_use_less_storage() {
        let g = fft_butterfly(2);
        assert_eq!(g.task(0).s, 1.0);
        assert_eq!(g.task(g.n() - 1).s, 2.0);
    }

    #[test]
    #[should_panic]
    fn zero_levels_is_rejected() {
        let _ = fft_butterfly(0);
    }
}
