//! Independent tasks (no precedence) as a degenerate task graph.

use crate::graph::TaskGraph;

/// `n` independent unit tasks — the Section 3 model expressed as a task
/// graph with no edges, so the DAG algorithms (RLS∆) can be run on
/// independent-task instances and compared with SBO∆.
pub fn independent(n: usize) -> TaskGraph {
    TaskGraph::unit(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_graph_has_no_edges() {
        let g = independent(6);
        assert_eq!(g.n(), 6);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_independent());
        assert_eq!(g.critical_path_length(), 1.0);
    }

    #[test]
    fn zero_tasks_is_fine() {
        assert_eq!(independent(0).n(), 0);
    }
}
