//! Random layered DAGs.

use rand::Rng;

use crate::graph::TaskGraph;

/// A random layered DAG with `n` unit tasks split into `layers` layers of
/// (roughly) equal size. Each task in layer `l ≥ 1` receives an edge from
/// every task of layer `l − 1` independently with probability
/// `edge_prob`, and at least one such edge (so every non-first-layer task
/// has a predecessor and the depth really is `layers`).
///
/// This is the synthetic application model most commonly used in DAG
/// scheduling evaluations; layer widths bound the exploitable parallelism.
pub fn layered_random<R: Rng + ?Sized>(
    n: usize,
    layers: usize,
    edge_prob: f64,
    rng: &mut R,
) -> TaskGraph {
    assert!(layers >= 1, "need at least one layer");
    assert!(n >= layers, "need at least one task per layer");
    assert!(
        (0.0..=1.0).contains(&edge_prob),
        "edge probability must be in [0, 1]"
    );
    let mut g = TaskGraph::unit(n);
    // Distribute tasks over layers as evenly as possible.
    let base = n / layers;
    let extra = n % layers;
    let mut layer_of: Vec<Vec<usize>> = Vec::with_capacity(layers);
    let mut next = 0usize;
    for l in 0..layers {
        let size = base + usize::from(l < extra);
        layer_of.push((next..next + size).collect());
        next += size;
    }
    for l in 1..layers {
        for &v in &layer_of[l] {
            let mut got_pred = false;
            for &u in &layer_of[l - 1] {
                if rng.gen_bool(edge_prob) {
                    g.add_edge(u, v).expect("valid index");
                    got_pred = true;
                }
            }
            if !got_pred {
                let pick = layer_of[l - 1][rng.gen_range(0..layer_of[l - 1].len())];
                g.add_edge(pick, v).expect("valid index");
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{levels_by_depth, GraphStats};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn layer_count_equals_depth() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = layered_random(50, 5, 0.25, &mut rng);
        let st = GraphStats::of(&g);
        assert_eq!(st.n, 50);
        assert_eq!(st.depth, 5);
        assert!(g.topological_order().is_ok());
    }

    #[test]
    fn every_non_first_layer_task_has_a_predecessor() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = layered_random(30, 3, 0.0, &mut rng);
        // With probability 0 the generator falls back to exactly one random
        // predecessor per task.
        let levels = levels_by_depth(&g);
        assert_eq!(levels.len(), 3);
        for level in levels.iter().skip(1) {
            for &v in level {
                assert!(g.in_degree(v) >= 1);
            }
        }
    }

    #[test]
    fn full_probability_yields_complete_bipartite_layers() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = layered_random(9, 3, 1.0, &mut rng);
        // 3 layers of 3 tasks: 2 * 3 * 3 = 18 edges.
        assert_eq!(g.edge_count(), 18);
    }

    #[test]
    fn generation_is_reproducible_for_a_fixed_seed() {
        let g1 = layered_random(40, 4, 0.3, &mut ChaCha8Rng::seed_from_u64(9));
        let g2 = layered_random(40, 4, 0.3, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(g1, g2);
    }

    #[test]
    #[should_panic]
    fn more_layers_than_tasks_is_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let _ = layered_random(3, 5, 0.5, &mut rng);
    }
}
