//! Blocked (right-looking) LU-factorization task graph.
//!
//! For a matrix partitioned into `b × b` blocks, elimination step
//! `k = 0 .. b−1` produces:
//!
//! * `DIAG(k)` — factor the diagonal block `A[k][k]`,
//! * `LSOLVE(k, i)` for `i > k` — triangular solve of the column panel,
//! * `USOLVE(k, j)` for `j > k` — triangular solve of the row panel,
//! * `UPDATE(k, i, j)` for `i, j > k` — trailing-matrix GEMM update.
//!
//! Dependencies: `DIAG(k) → LSOLVE(k,·), USOLVE(k,·)`;
//! `LSOLVE(k,i), USOLVE(k,j) → UPDATE(k,i,j)`;
//! `UPDATE(k,i,j) → DIAG(k+1)` if `i = j = k+1`,
//! `→ LSOLVE(k+1,i)` if `j = k+1`, `→ USOLVE(k+1,j)` if `i = k+1`,
//! and `→ UPDATE(k+1,i,j)` otherwise.
//!
//! Costs (per block of side `nb`, normalized to `nb = 1`): `DIAG` ≈ 1/3,
//! `SOLVE` ≈ 1/2, `UPDATE` ≈ 1 flop units; storage is one block for the
//! panels and two blocks for updates (the block plus the incoming panel).

// The index tables below are built and wired positionally; range loops are
// the clearest way to express the block indices.
#![allow(clippy::needless_range_loop)]

use sws_model::task::{Task, TaskSet};

use crate::graph::TaskGraph;

/// Builds the blocked LU task graph for `b` block rows/columns (`b ≥ 1`).
pub fn lu_factorization(b: usize) -> TaskGraph {
    assert!(b >= 1, "LU needs at least one block");
    // Index maps. usize::MAX marks "absent".
    const ABSENT: usize = usize::MAX;
    let mut diag = vec![ABSENT; b];
    let mut lsolve = vec![vec![ABSENT; b]; b]; // lsolve[k][i]
    let mut usolve = vec![vec![ABSENT; b]; b]; // usolve[k][j]
    let mut update = vec![vec![vec![ABSENT; b]; b]; b]; // update[k][i][j]
    let mut tasks: Vec<Task> = Vec::new();

    for k in 0..b {
        diag[k] = tasks.len();
        tasks.push(Task::new_unchecked(1.0 / 3.0, 1.0));
        for i in (k + 1)..b {
            lsolve[k][i] = tasks.len();
            tasks.push(Task::new_unchecked(0.5, 1.0));
        }
        for j in (k + 1)..b {
            usolve[k][j] = tasks.len();
            tasks.push(Task::new_unchecked(0.5, 1.0));
        }
        for i in (k + 1)..b {
            for j in (k + 1)..b {
                update[k][i][j] = tasks.len();
                tasks.push(Task::new_unchecked(1.0, 2.0));
            }
        }
    }

    let mut g = TaskGraph::new(TaskSet::new(tasks).expect("costs are positive"));
    for k in 0..b {
        for i in (k + 1)..b {
            g.add_edge(diag[k], lsolve[k][i]).expect("valid index");
            g.add_edge(diag[k], usolve[k][i]).expect("valid index");
        }
        for i in (k + 1)..b {
            for j in (k + 1)..b {
                g.add_edge(lsolve[k][i], update[k][i][j])
                    .expect("valid index");
                g.add_edge(usolve[k][j], update[k][i][j])
                    .expect("valid index");
                // Route the updated block to the consumer at step k + 1.
                if k + 1 < b {
                    let target = if i == k + 1 && j == k + 1 {
                        diag[k + 1]
                    } else if j == k + 1 {
                        lsolve[k + 1][i]
                    } else if i == k + 1 {
                        usolve[k + 1][j]
                    } else {
                        update[k + 1][i][j]
                    };
                    g.add_edge(update[k][i][j], target).expect("valid index");
                }
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::GraphStats;

    fn expected_task_count(b: usize) -> usize {
        // Σ_k 1 + 2(b-1-k) + (b-1-k)^2 = Σ_{r=0}^{b-1} (r + 1)^2 where r = b-1-k
        (1..=b).map(|r| r * r).sum()
    }

    #[test]
    fn task_count_matches_closed_form() {
        for b in 1..6 {
            let g = lu_factorization(b);
            assert_eq!(g.n(), expected_task_count(b), "b = {b}");
            assert!(g.topological_order().is_ok());
        }
    }

    #[test]
    fn single_block_is_one_task() {
        let g = lu_factorization(1);
        assert_eq!(g.n(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn two_blocks_have_the_classic_five_task_shape() {
        // DIAG(0), LSOLVE(0,1), USOLVE(0,1), UPDATE(0,1,1), DIAG(1).
        let g = lu_factorization(2);
        assert_eq!(g.n(), 5);
        let st = GraphStats::of(&g);
        assert_eq!(st.sources, 1);
        assert_eq!(st.sinks, 1);
        assert_eq!(st.depth, 4);
    }

    #[test]
    fn critical_path_grows_with_block_count() {
        let cp3 = lu_factorization(3).critical_path_length();
        let cp5 = lu_factorization(5).critical_path_length();
        assert!(cp5 > cp3);
    }

    #[test]
    fn update_tasks_carry_more_storage_than_panels() {
        let g = lu_factorization(3);
        let max_s = g.tasks().max_storage();
        assert_eq!(max_s, 2.0);
    }
}
