//! 2-D stencil / wavefront ("diamond") dependency grids.

use crate::graph::TaskGraph;

/// A `rows × cols` wavefront grid: task `(i, j)` depends on `(i−1, j)` and
/// `(i, j−1)`. This is the dependency pattern of dynamic-programming
/// sweeps and stencil wavefronts; the critical path is `rows + cols − 1`.
pub fn diamond_grid(rows: usize, cols: usize) -> TaskGraph {
    assert!(rows >= 1 && cols >= 1, "grid needs at least one cell");
    let idx = |i: usize, j: usize| i * cols + j;
    let mut g = TaskGraph::unit(rows * cols);
    for i in 0..rows {
        for j in 0..cols {
            if i + 1 < rows {
                g.add_edge(idx(i, j), idx(i + 1, j)).expect("valid index");
            }
            if j + 1 < cols {
                g.add_edge(idx(i, j), idx(i, j + 1)).expect("valid index");
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::GraphStats;

    #[test]
    fn square_grid_shape() {
        let g = diamond_grid(3, 3);
        let st = GraphStats::of(&g);
        assert_eq!(st.n, 9);
        // Edges: 2 * rows * cols - rows - cols = 18 - 6 = 12.
        assert_eq!(st.edges, 12);
        assert_eq!(st.sources, 1);
        assert_eq!(st.sinks, 1);
        assert_eq!(st.depth, 5); // i + j ranges 0..=4
        assert_eq!(st.critical_path, 5.0);
        assert_eq!(st.width, 3); // the anti-diagonal
    }

    #[test]
    fn single_row_is_a_chain() {
        let g = diamond_grid(1, 6);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.critical_path_length(), 6.0);
    }

    #[test]
    fn rectangular_grid_critical_path() {
        let g = diamond_grid(2, 5);
        assert_eq!(g.critical_path_length(), 6.0);
        assert_eq!(g.n(), 10);
    }

    #[test]
    #[should_panic]
    fn empty_grid_is_rejected() {
        let _ = diamond_grid(0, 3);
    }
}
