//! Repeated fork–join stages.

use crate::graph::TaskGraph;

/// A fork–join graph with `stages` stages of `width` parallel unit tasks
/// each, separated by single synchronization tasks:
///
/// ```text
/// fork₀ → {w parallel tasks} → join₀/fork₁ → {w parallel tasks} → … → join_last
/// ```
///
/// Total task count is `stages * width + stages + 1`.
pub fn fork_join(stages: usize, width: usize) -> TaskGraph {
    assert!(stages >= 1, "fork_join needs at least one stage");
    assert!(width >= 1, "fork_join needs width >= 1");
    let n = stages * width + stages + 1;
    let mut g = TaskGraph::unit(n);
    // Node layout: sync nodes are 0, width+1, 2(width+1), ...; stage s's
    // parallel tasks are the `width` indices following sync node s.
    let sync = |s: usize| s * (width + 1);
    for s in 0..stages {
        let fork = sync(s);
        let join = sync(s + 1);
        for w in 0..width {
            let task = fork + 1 + w;
            g.add_edge(fork, task).expect("valid index");
            g.add_edge(task, join).expect("valid index");
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::GraphStats;

    #[test]
    fn single_stage_fork_join() {
        let g = fork_join(1, 3);
        let st = GraphStats::of(&g);
        assert_eq!(st.n, 5);
        assert_eq!(st.edges, 6);
        assert_eq!(st.sources, 1);
        assert_eq!(st.sinks, 1);
        assert_eq!(st.depth, 3);
        assert_eq!(st.width, 3);
        assert_eq!(st.critical_path, 3.0);
    }

    #[test]
    fn multi_stage_dimensions() {
        let g = fork_join(3, 4);
        let st = GraphStats::of(&g);
        assert_eq!(st.n, 3 * 4 + 3 + 1);
        // Each stage contributes 2*width edges.
        assert_eq!(st.edges, 3 * 8);
        // Depth: sync, task, sync, task, sync, task, sync = 2*stages + 1.
        assert_eq!(st.depth, 7);
        assert_eq!(st.critical_path, 7.0);
    }

    #[test]
    #[should_panic]
    fn zero_width_is_rejected() {
        let _ = fork_join(2, 0);
    }

    #[test]
    #[should_panic]
    fn zero_stages_is_rejected() {
        let _ = fork_join(0, 2);
    }
}
