//! Ordered Erdős–Rényi random DAGs.

use rand::Rng;

use crate::graph::TaskGraph;

/// A random DAG over `n` unit tasks where each ordered pair `(i, j)` with
/// `i < j` carries an edge independently with probability `edge_prob`.
/// The "layered" in the name refers to the implicit topological layering
/// induced by the vertex order — the construction can never create a
/// cycle because edges always go from a lower to a higher index.
///
/// This family produces unstructured task graphs whose density is easy to
/// sweep; with `edge_prob = 0` it degenerates to independent tasks and
/// with `edge_prob = 1` to a total order (a chain with shortcuts).
pub fn layered_erdos<R: Rng + ?Sized>(n: usize, edge_prob: f64, rng: &mut R) -> TaskGraph {
    assert!(
        (0.0..=1.0).contains(&edge_prob),
        "edge probability must be in [0, 1]"
    );
    let mut g = TaskGraph::unit(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(edge_prob) {
                g.add_edge(i, j).expect("valid index");
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn zero_probability_gives_independent_tasks() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = layered_erdos(20, 0.0, &mut rng);
        assert!(g.is_independent());
    }

    #[test]
    fn full_probability_gives_a_total_order() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = layered_erdos(10, 1.0, &mut rng);
        assert_eq!(g.edge_count(), 10 * 9 / 2);
        assert_eq!(g.critical_path_length(), 10.0);
    }

    #[test]
    fn intermediate_probability_is_acyclic_and_moderately_dense() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = layered_erdos(60, 0.08, &mut rng);
        assert!(g.topological_order().is_ok());
        assert!(g.edge_count() > 0);
        assert!(g.edge_count() < 60 * 59 / 2);
    }

    #[test]
    fn reproducible_for_a_fixed_seed() {
        let g1 = layered_erdos(25, 0.2, &mut ChaCha8Rng::seed_from_u64(5));
        let g2 = layered_erdos(25, 0.2, &mut ChaCha8Rng::seed_from_u64(5));
        assert_eq!(g1, g2);
    }
}
