//! Single dependence chain and related degenerate topologies.

use crate::graph::TaskGraph;

/// A chain of `n` unit tasks `0 → 1 → … → n−1`. The critical path equals
/// the total work, so no parallel schedule can beat sequential execution —
/// the worst case for the `|CP|` term of Lemma 5.
pub fn chain(n: usize) -> TaskGraph {
    let mut g = TaskGraph::unit(n);
    for i in 1..n {
        g.add_edge(i - 1, i)
            .expect("indices are in range by construction");
    }
    g
}

/// `k` disjoint chains of `len` unit tasks each: an embarrassingly
/// parallel workload at the chain granularity (useful to stress the memory
/// constraint while keeping the makespan structure trivial).
pub fn parallel_chains(k: usize, len: usize) -> TaskGraph {
    let mut g = TaskGraph::unit(k * len);
    for c in 0..k {
        for i in 1..len {
            g.add_edge(c * len + i - 1, c * len + i)
                .expect("indices are in range by construction");
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::GraphStats;

    #[test]
    fn chain_structure() {
        let g = chain(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.critical_path_length(), 5.0);
        assert_eq!(g.sources(), vec![0]);
        assert_eq!(g.sinks(), vec![4]);
    }

    #[test]
    fn chain_of_one_has_no_edges() {
        let g = chain(1);
        assert_eq!(g.n(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn parallel_chains_structure() {
        let g = parallel_chains(3, 4);
        let st = GraphStats::of(&g);
        assert_eq!(st.n, 12);
        assert_eq!(st.edges, 9);
        assert_eq!(st.sources, 3);
        assert_eq!(st.sinks, 3);
        assert_eq!(st.depth, 4);
        assert_eq!(st.width, 3);
        assert_eq!(st.critical_path, 4.0);
    }

    #[test]
    fn empty_chain_is_allowed() {
        let g = chain(0);
        assert_eq!(g.n(), 0);
    }
}
