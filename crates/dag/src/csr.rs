//! Flat CSR (compressed sparse row) representation of a task graph.
//!
//! The pointer-rich [`crate::TaskGraph`] (`Vec<Vec<usize>>` adjacency,
//! tasks behind a `TaskSet`) is convenient to build and mutate, but the
//! scheduling kernel walks adjacency lists and task costs on every round
//! of its hot loop, where the per-list heap indirection and the
//! interleaved `(p, s)` pairs cost real cache misses. [`CsrDag`] is the
//! read-only flat mirror the kernel borrows instead:
//!
//! * both directions of the adjacency as classic CSR — an `offsets`
//!   array of `n + 1` entries plus a single contiguous `edges` array —
//!   with `u32` indices (half the memory traffic of `usize` on 64-bit
//!   targets);
//! * the task costs as structure-of-arrays `f64` slices (`proc_time`,
//!   `mem_size`), so passes that only touch storage requirements (the
//!   admissibility probes) or only processing times (placement) stream
//!   one array instead of striding over pairs.
//!
//! A `CsrDag` is built **once per instance** ([`TaskGraph::csr`] /
//! [`crate::DagInstance::csr`]) and shared by every run over that
//! instance; the edge order within each list is preserved exactly, so a
//! kernel run over the CSR form visits neighbours in the same order as
//! one over the nested-`Vec` form.

use crate::graph::TaskGraph;
use crate::keys::KeyTable;
use sws_model::validate::CsrPreds;

/// Flat, read-only mirror of a [`TaskGraph`]: CSR adjacency in both
/// directions plus structure-of-arrays task costs.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrDag {
    n: usize,
    /// `pred_edges[pred_offsets[i]..pred_offsets[i+1]]` = predecessors of `i`.
    pred_offsets: Vec<u32>,
    pred_edges: Vec<u32>,
    /// `succ_edges[succ_offsets[i]..succ_offsets[i+1]]` = successors of `i`.
    succ_offsets: Vec<u32>,
    succ_edges: Vec<u32>,
    /// Processing time `p_i` per task.
    proc_time: Vec<f64>,
    /// Storage requirement `s_i` per task.
    mem_size: Vec<f64>,
    /// Order-preserving rank table over the pooled distinct cost values
    /// (`p` and `s` together); `None` when the instance has more
    /// distinct values than fit in `u32` ranks — consumers then fall
    /// back to the `f64` comparators.
    cost_keys: Option<KeyTable>,
    /// `p_rank[i]` = `cost_keys.rank_of(p_i)`; empty when saturated.
    p_rank: Vec<u32>,
    /// `s_rank[i]` = `cost_keys.rank_of(s_i)`; empty when saturated.
    s_rank: Vec<u32>,
}

impl CsrDag {
    /// Flattens a [`TaskGraph`] into CSR form. Edge order within each
    /// adjacency list is preserved.
    pub fn from_graph(graph: &TaskGraph) -> Self {
        Self::from_graph_with_key_limit(graph, KeyTable::DEFAULT_LIMIT)
    }

    /// [`CsrDag::from_graph`] with an explicit distinct-cost-value limit
    /// for the quantization table — tests lower it to exercise the
    /// saturated (`cost_keys = None`) fallback without 2³² floats.
    pub fn from_graph_with_key_limit(graph: &TaskGraph, key_limit: usize) -> Self {
        let n = graph.n();
        assert!(
            n < u32::MAX as usize && graph.edge_count() <= u32::MAX as usize,
            "CSR representation uses u32 indices"
        );
        let mut pred_offsets = Vec::with_capacity(n + 1);
        let mut succ_offsets = Vec::with_capacity(n + 1);
        let mut pred_edges = Vec::with_capacity(graph.edge_count());
        let mut succ_edges = Vec::with_capacity(graph.edge_count());
        let mut proc_time = Vec::with_capacity(n);
        let mut mem_size = Vec::with_capacity(n);
        pred_offsets.push(0);
        succ_offsets.push(0);
        for i in 0..n {
            pred_edges.extend(graph.preds(i).iter().map(|&u| u as u32));
            succ_edges.extend(graph.succs(i).iter().map(|&v| v as u32));
            pred_offsets.push(pred_edges.len() as u32);
            succ_offsets.push(succ_edges.len() as u32);
            let t = graph.task(i);
            proc_time.push(t.p);
            mem_size.push(t.s);
        }
        let cost_keys =
            KeyTable::build_with_limit(proc_time.iter().chain(mem_size.iter()).copied(), key_limit);
        let (p_rank, s_rank) = match &cost_keys {
            Some(table) => {
                let rank = |v: f64| {
                    table
                        .rank_of(v)
                        .expect("the table was built over exactly these values")
                };
                (
                    proc_time.iter().map(|&p| rank(p)).collect(),
                    mem_size.iter().map(|&s| rank(s)).collect(),
                )
            }
            None => (Vec::new(), Vec::new()),
        };
        CsrDag {
            n,
            pred_offsets,
            pred_edges,
            succ_offsets,
            succ_edges,
            proc_time,
            mem_size,
            cost_keys,
            p_rank,
            s_rank,
        }
    }

    /// Number of tasks.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.succ_edges.len()
    }

    /// Predecessors of task `i`.
    #[inline]
    pub fn preds(&self, i: usize) -> &[u32] {
        &self.pred_edges[self.pred_offsets[i] as usize..self.pred_offsets[i + 1] as usize]
    }

    /// Successors of task `i`.
    #[inline]
    pub fn succs(&self, i: usize) -> &[u32] {
        &self.succ_edges[self.succ_offsets[i] as usize..self.succ_offsets[i + 1] as usize]
    }

    /// In-degree of task `i`.
    #[inline]
    pub fn in_degree(&self, i: usize) -> usize {
        (self.pred_offsets[i + 1] - self.pred_offsets[i]) as usize
    }

    /// Out-degree of task `i`.
    #[inline]
    pub fn out_degree(&self, i: usize) -> usize {
        (self.succ_offsets[i + 1] - self.succ_offsets[i]) as usize
    }

    /// Processing time `p_i`.
    #[inline]
    pub fn p(&self, i: usize) -> f64 {
        self.proc_time[i]
    }

    /// Storage requirement `s_i`.
    #[inline]
    pub fn s(&self, i: usize) -> f64 {
        self.mem_size[i]
    }

    /// All processing times, indexed by task.
    #[inline]
    pub fn proc_times(&self) -> &[f64] {
        &self.proc_time
    }

    /// All storage requirements, indexed by task.
    #[inline]
    pub fn mem_sizes(&self) -> &[f64] {
        &self.mem_size
    }

    /// The quantization table over the instance's distinct cost values,
    /// or `None` when the instance saturated it (more distinct values
    /// than `u32` ranks — impossible below 2³² tasks in practice, but
    /// the fallback is kept honest by tests with a lowered limit).
    #[inline]
    pub fn cost_keys(&self) -> Option<&KeyTable> {
        self.cost_keys.as_ref()
    }

    /// Per-task `u32` ranks of the processing times (`rank order` =
    /// `f64 order`), or `None` when the table is saturated.
    #[inline]
    pub fn p_ranks(&self) -> Option<&[u32]> {
        self.cost_keys.as_ref().map(|_| self.p_rank.as_slice())
    }

    /// Per-task `u32` ranks of the storage requirements, or `None` when
    /// the table is saturated.
    #[inline]
    pub fn s_ranks(&self) -> Option<&[u32]> {
        self.cost_keys.as_ref().map(|_| self.s_rank.as_slice())
    }

    /// The predecessor lists as the borrowed CSR view accepted by
    /// [`sws_model::validate::validate_timed_preds`] — validation without
    /// materializing nested `Vec<Vec<usize>>` lists.
    #[inline]
    pub fn pred_lists(&self) -> CsrPreds<'_> {
        CsrPreds::new(&self.pred_offsets, &self.pred_edges)
    }

    /// Drops to the saturated exact-`f64` mode: the quantization table
    /// is discarded whole rather than renumbered (lossy re-bucketing is
    /// forbidden — see [`crate::keys`]). Consumers fall back to the
    /// `f64` comparators, which produce bit-identical schedules.
    fn saturate_keys(&mut self) {
        self.cost_keys = None;
        self.p_rank = Vec::new();
        self.s_rank = Vec::new();
    }

    /// Re-ranks one mutated cost value through
    /// [`KeyTable::rank_or_append`], saturating when the value breaks
    /// the existing rank order. `write` stores the fresh rank (assign
    /// for recosts, push for arrivals).
    fn requantize(&mut self, v: f64, write: impl FnOnce(&mut Self, u32)) {
        let Some(table) = &mut self.cost_keys else {
            return;
        };
        match table.rank_or_append(v) {
            Some(r) => write(self, r),
            None => self.saturate_keys(),
        }
    }

    /// In-place `Recost` (see [`crate::delta::CsrDelta`]): rewrites the
    /// cost arrays and maintains the quantized ranks. The key table may
    /// keep the superseded value — a superset table ranks every live
    /// value correctly, so nothing is rebuilt.
    pub(crate) fn recost(&mut self, i: usize, p: Option<f64>, s: Option<f64>) {
        if let Some(v) = p {
            self.proc_time[i] = v;
            self.requantize(v, |d, r| d.p_rank[i] = r);
        }
        if let Some(v) = s {
            self.mem_size[i] = v;
            self.requantize(v, |d, r| d.s_rank[i] = r);
        }
    }

    /// In-place `AddTask` (see [`crate::delta::CsrDelta`]): the new
    /// task takes index `n`, its predecessor list is appended to the
    /// pred CSR, and each predecessor's successor list gains the new
    /// task at its end in one `O(n + E)` splice — exactly where a
    /// from-scratch build with the edges appended last would put it.
    pub(crate) fn add_task(&mut self, preds: &[u32], p: f64, s: f64) {
        let j = self.n;
        assert!(
            j + 1 < u32::MAX as usize && self.pred_edges.len() + preds.len() <= u32::MAX as usize,
            "CSR representation uses u32 indices"
        );
        self.pred_edges.extend_from_slice(preds);
        self.pred_offsets.push(self.pred_edges.len() as u32);

        let mut is_pred = vec![false; j];
        for &u in preds {
            is_pred[u as usize] = true;
        }
        let mut succ_offsets = Vec::with_capacity(j + 2);
        let mut succ_edges = Vec::with_capacity(self.succ_edges.len() + preds.len());
        succ_offsets.push(0u32);
        for (i, &was_pred) in is_pred.iter().enumerate() {
            succ_edges.extend_from_slice(
                &self.succ_edges[self.succ_offsets[i] as usize..self.succ_offsets[i + 1] as usize],
            );
            if was_pred {
                succ_edges.push(j as u32);
            }
            succ_offsets.push(succ_edges.len() as u32);
        }
        succ_offsets.push(succ_edges.len() as u32); // the arrival has no successors yet
        self.succ_offsets = succ_offsets;
        self.succ_edges = succ_edges;

        self.proc_time.push(p);
        self.mem_size.push(s);
        self.n = j + 1;
        self.requantize(p, |d, r| d.p_rank.push(r));
        self.requantize(s, |d, r| d.s_rank.push(r));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_model::task::{Task, TaskSet};

    fn diamond() -> TaskGraph {
        let tasks = TaskSet::new(
            (0..4)
                .map(|i| Task::new_unchecked(1.0 + i as f64, 2.0 * i as f64))
                .collect(),
        )
        .unwrap();
        TaskGraph::from_edges(tasks, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn csr_mirrors_the_nested_adjacency_exactly() {
        let g = diamond();
        let csr = CsrDag::from_graph(&g);
        assert_eq!(csr.n(), g.n());
        assert_eq!(csr.edge_count(), g.edge_count());
        for i in 0..g.n() {
            let preds: Vec<usize> = csr.preds(i).iter().map(|&u| u as usize).collect();
            let succs: Vec<usize> = csr.succs(i).iter().map(|&v| v as usize).collect();
            assert_eq!(preds, g.preds(i), "preds of {i}");
            assert_eq!(succs, g.succs(i), "succs of {i}");
            assert_eq!(csr.in_degree(i), g.in_degree(i));
            assert_eq!(csr.out_degree(i), g.out_degree(i));
            assert_eq!(csr.p(i), g.task(i).p);
            assert_eq!(csr.s(i), g.task(i).s);
        }
    }

    #[test]
    fn empty_graph_flattens_to_empty_csr() {
        let g = TaskGraph::new(TaskSet::from_ps(&[], &[]).unwrap());
        let csr = CsrDag::from_graph(&g);
        assert_eq!(csr.n(), 0);
        assert_eq!(csr.edge_count(), 0);
    }

    #[test]
    fn cost_ranks_mirror_the_f64_order() {
        let g = diamond();
        let csr = CsrDag::from_graph(&g);
        let table = csr.cost_keys().expect("tiny instance never saturates");
        let p_rank = csr.p_ranks().unwrap();
        let s_rank = csr.s_ranks().unwrap();
        for i in 0..g.n() {
            assert_eq!(table.value_of(p_rank[i]), csr.p(i));
            assert_eq!(table.value_of(s_rank[i]), csr.s(i));
            for j in 0..g.n() {
                assert_eq!(p_rank[i] < p_rank[j], csr.p(i) < csr.p(j));
                assert_eq!(s_rank[i] < s_rank[j], csr.s(i) < csr.s(j));
            }
        }
    }

    #[test]
    fn saturated_key_limit_disables_quantization_only() {
        let g = diamond();
        let full = CsrDag::from_graph(&g);
        let capped = CsrDag::from_graph_with_key_limit(&g, 2);
        assert!(capped.cost_keys().is_none());
        assert!(capped.p_ranks().is_none());
        assert!(capped.s_ranks().is_none());
        // The structural mirror is untouched by the refusal.
        for i in 0..g.n() {
            assert_eq!(capped.preds(i), full.preds(i));
            assert_eq!(capped.succs(i), full.succs(i));
            assert_eq!(capped.p(i), full.p(i));
            assert_eq!(capped.s(i), full.s(i));
        }
    }

    #[test]
    fn pred_lists_view_iterates_like_the_nested_lists() {
        let g = diamond();
        let csr = CsrDag::from_graph(&g);
        let view = csr.pred_lists();
        use sws_model::validate::PredecessorLists;
        assert_eq!(view.len(), g.n());
        for i in 0..g.n() {
            let via_view: Vec<usize> = view.preds_of(i).collect();
            assert_eq!(via_view, g.preds(i));
        }
    }
}
