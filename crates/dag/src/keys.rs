//! Order-preserving u32 quantization of instance cost values.
//!
//! The scheduling kernel keys its heaps on `f64` cost data. For *static*
//! per-task costs (`p_i`, `s_i`) the full 64-bit width is wasted: an
//! instance has at most `2n` distinct cost values, so ranking the
//! distinct values once at [`crate::CsrDag`] construction yields `u32`
//! keys whose integer order equals the `f64` order — half the key width,
//! twice the keys per cache line, and integer comparisons in every sort
//! that consumes them (the priority constructors, the kernel's
//! rank-keyed ready structures).
//!
//! A [`KeyTable`] is a sorted table of the distinct values. Internally
//! each value is stored as its *monotone bit pattern* — the classic
//! sign-fold of the IEEE-754 representation under which unsigned integer
//! order coincides with numeric order for every non-NaN `f64` — so
//! building the table is an integer sort and rank lookups are integer
//! binary searches. `-0.0` is normalized to `+0.0` before encoding, so
//! the two zeros share one rank exactly like they share one numeric
//! value.
//!
//! Quantization is total or absent: if an instance has more distinct
//! values than the table's limit (`u32::MAX` by default; tests lower it
//! to exercise the path), construction *refuses* and the consumers fall
//! back to the `f64` comparators. There is no lossy bucketing — a lossy
//! table could reorder near-equal costs and break the bit-identity
//! contract the differential suite enforces.

/// Order-preserving rank table over a set of `f64` cost values.
///
/// Ranks are dense: the smallest distinct value has rank 0, the largest
/// has rank `len() - 1`, and for any two tabled values
/// `rank(a) < rank(b) ⇔ a < b`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyTable {
    /// Distinct values as sorted monotone bit patterns ([`order_key`]).
    keys: Vec<u64>,
}

/// Monotone bit pattern of a non-NaN `f64`: flips the sign bit of
/// non-negative values and all bits of negative ones, so unsigned
/// integer order equals numeric order (`-0.0` is normalized to `+0.0`
/// first, collapsing the two zeros onto one pattern).
#[inline]
fn order_key(v: f64) -> u64 {
    debug_assert!(!v.is_nan(), "cost values are never NaN");
    let bits = (v + 0.0).to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Inverse of [`order_key`].
#[inline]
fn key_value(k: u64) -> f64 {
    if k >> 63 == 1 {
        f64::from_bits(k & !(1 << 63))
    } else {
        f64::from_bits(!k)
    }
}

impl KeyTable {
    /// Maximum number of distinct values a table will hold: every rank
    /// must fit in a `u32`.
    pub const DEFAULT_LIMIT: usize = u32::MAX as usize;

    /// Builds a table over the given cost values (duplicates welcome),
    /// refusing with `None` when they hold more than
    /// [`KeyTable::DEFAULT_LIMIT`] distinct values.
    pub fn build<I: IntoIterator<Item = f64>>(costs: I) -> Option<Self> {
        Self::build_with_limit(costs, Self::DEFAULT_LIMIT)
    }

    /// [`KeyTable::build`] with an explicit distinct-value limit, so the
    /// refusal path is testable without materializing 2³² floats. The
    /// effective limit never exceeds [`KeyTable::DEFAULT_LIMIT`].
    pub fn build_with_limit<I: IntoIterator<Item = f64>>(costs: I, limit: usize) -> Option<Self> {
        let mut keys: Vec<u64> = costs.into_iter().map(order_key).collect();
        keys.sort_unstable();
        keys.dedup();
        if keys.len() > limit.min(Self::DEFAULT_LIMIT) {
            return None;
        }
        Some(KeyTable { keys })
    }

    /// Number of distinct values in the table.
    #[inline]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the table is empty (built over no values).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Rank of a tabled value: `None` when `v` was not among the values
    /// the table was built over.
    #[inline]
    pub fn rank_of(&self, v: f64) -> Option<u32> {
        self.keys
            .binary_search(&order_key(v))
            .ok()
            .map(|i| i as u32)
    }

    /// The value holding `rank` (inverse of [`KeyTable::rank_of`]).
    #[inline]
    pub fn value_of(&self, rank: u32) -> f64 {
        key_value(self.keys[rank as usize])
    }

    /// Rank of `v`, **appending** it when it is strictly larger than
    /// every tabled value — the one mutation that preserves every
    /// existing rank (the new value takes rank `len()`, nothing shifts).
    ///
    /// Returns `None` when `v` is untabled and not a new maximum (or the
    /// table is full): inserting it would renumber the ranks above it,
    /// so the caller must drop to the exact-`f64` fallback instead.
    /// This is the incremental-delta counterpart of
    /// [`KeyTable::build`] — never lossy, total or absent.
    pub fn rank_or_append(&mut self, v: f64) -> Option<u32> {
        let k = order_key(v);
        match self.keys.binary_search(&k) {
            Ok(i) => Some(i as u32),
            Err(i) if i == self.keys.len() && self.keys.len() < Self::DEFAULT_LIMIT => {
                self.keys.push(k);
                Some(i as u32)
            }
            Err(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_dense_and_order_preserving() {
        let t = KeyTable::build([3.0, 1.0, 2.0, 1.0, 3.0]).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.rank_of(1.0), Some(0));
        assert_eq!(t.rank_of(2.0), Some(1));
        assert_eq!(t.rank_of(3.0), Some(2));
        assert_eq!(t.rank_of(2.5), None);
        assert_eq!(t.value_of(1), 2.0);
    }

    #[test]
    fn zeros_collapse_and_negatives_order_below() {
        let t = KeyTable::build([0.0, -0.0, -1.5, 2.0]).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.rank_of(-1.5), Some(0));
        assert_eq!(t.rank_of(0.0), Some(1));
        assert_eq!(t.rank_of(-0.0), Some(1));
        assert_eq!(t.rank_of(2.0), Some(2));
        assert_eq!(t.value_of(1), 0.0);
    }

    #[test]
    fn limit_refusal_and_boundary() {
        assert!(KeyTable::build_with_limit([1.0, 2.0, 3.0], 2).is_none());
        let t = KeyTable::build_with_limit([1.0, 2.0, 3.0], 3).unwrap();
        assert_eq!(t.len(), 3);
        // Duplicates don't count against the limit.
        assert!(KeyTable::build_with_limit([1.0; 100], 1).is_some());
    }

    #[test]
    fn subnormals_and_extremes_keep_their_order() {
        let vals = [
            f64::MIN_POSITIVE / 4.0, // subnormal
            f64::MIN_POSITIVE,
            1e-300,
            1.0,
            1e300,
            f64::MAX,
        ];
        let t = KeyTable::build(vals.iter().copied()).unwrap();
        for w in vals.windows(2) {
            assert!(t.rank_of(w[0]).unwrap() < t.rank_of(w[1]).unwrap(), "{w:?}");
        }
        for v in vals {
            assert_eq!(t.value_of(t.rank_of(v).unwrap()), v);
        }
    }

    #[test]
    fn empty_table_answers_nothing() {
        let t = KeyTable::build(std::iter::empty()).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.rank_of(0.0), None);
    }
}
