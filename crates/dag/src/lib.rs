//! # sws-dag
//!
//! Task-graph (DAG) substrate for the precedence-constrained problem
//! `P | p_j, s_j, prec | Cmax, Mmax` studied in Section 5 of
//! *Scheduling with Storage Constraints* (Saule, Dutot, Mounié, IPDPS'08).
//!
//! The crate is self-contained (no external graph library):
//!
//! * [`graph`] — the [`TaskGraph`] adjacency structure and
//!   [`DagInstance`] (graph + processor count),
//! * [`topo`] — topological ordering and cycle detection,
//! * [`levels`] — top/bottom levels and the critical-path lower bound,
//! * [`analysis`] — structural statistics (depth, width, degrees),
//! * [`generators`] — synthetic task-graph families used by the
//!   evaluation harness (layered random graphs, fork–join, trees,
//!   diamond/stencil grids, Gaussian elimination, LU, FFT butterflies,
//!   chains and independent sets).
//!
//! # Example
//!
//! ```
//! use sws_dag::prelude::*;
//! use sws_model::task::{Task, TaskSet};
//!
//! // A small fork-join: 0 -> {1,2} -> 3.
//! let tasks = TaskSet::new(vec![Task::new_unchecked(1.0, 1.0); 4]).unwrap();
//! let mut g = TaskGraph::new(tasks);
//! g.add_edge(0, 1).unwrap();
//! g.add_edge(0, 2).unwrap();
//! g.add_edge(1, 3).unwrap();
//! g.add_edge(2, 3).unwrap();
//! assert!(g.topological_order().is_ok());
//! assert_eq!(g.critical_path_length(), 3.0);
//! ```

#![forbid(unsafe_code)]

pub mod analysis;
pub mod csr;
pub mod delta;
pub mod generators;
pub mod graph;
pub mod keys;
pub mod levels;
pub mod topo;

pub use csr::CsrDag;
pub use delta::CsrDelta;
pub use graph::{DagInstance, TaskGraph};
pub use keys::KeyTable;

/// Frequently used items.
pub mod prelude {
    pub use crate::analysis::GraphStats;
    pub use crate::csr::CsrDag;
    pub use crate::generators::{
        chain::chain,
        diamond::diamond_grid,
        erdos::layered_erdos,
        fft::fft_butterfly,
        forkjoin::fork_join,
        gauss::gaussian_elimination,
        independent::independent,
        layered::layered_random,
        lu::lu_factorization,
        tree::{in_tree, out_tree},
    };
    pub use crate::graph::{DagInstance, TaskGraph};
    pub use crate::levels::{bottom_levels, critical_path, top_levels};
    pub use crate::topo::{is_acyclic, topological_order};
}
