//! Property-based tests of the task-graph substrate: every generator
//! yields a structurally sound acyclic graph, topological orders are
//! valid, and the level/critical-path computations are mutually
//! consistent.

use proptest::prelude::*;

use sws_dag::analysis::{level_width, levels_by_depth, structurally_sound, GraphStats};
use sws_dag::generators::chain::{chain, parallel_chains};
use sws_dag::generators::diamond::diamond_grid;
use sws_dag::generators::erdos::layered_erdos;
use sws_dag::generators::fft::fft_butterfly;
use sws_dag::generators::forkjoin::fork_join;
use sws_dag::generators::gauss::gaussian_elimination;
use sws_dag::generators::independent::independent;
use sws_dag::generators::layered::layered_random;
use sws_dag::generators::lu::lu_factorization;
use sws_dag::generators::tree::{in_tree, out_tree};
use sws_dag::levels::{bottom_levels, critical_path, critical_path_tasks, depth, top_levels};
use sws_dag::topo::{is_acyclic, is_topological_order, topological_order};
use sws_dag::TaskGraph;

/// Checks the invariants every generated graph must satisfy.
fn check_graph(graph: &TaskGraph) {
    assert!(is_acyclic(graph), "generator produced a cycle");
    assert!(
        structurally_sound(graph),
        "pred/succ adjacency is inconsistent"
    );
    let order = topological_order(graph).expect("acyclic graphs have a topological order");
    assert_eq!(order.len(), graph.n());
    assert!(is_topological_order(graph, &order));

    // Level consistency: the critical path equals both the maximum
    // bottom level and the maximum top level + the sink's own cost.
    let top = top_levels(graph);
    let bottom = bottom_levels(graph);
    let cp = critical_path(graph);
    let max_bottom = bottom.iter().cloned().fold(0.0, f64::max);
    assert!(
        (cp - max_bottom).abs() < 1e-9,
        "critical path {cp} != max bottom level {max_bottom}"
    );
    let max_total = (0..graph.n())
        .map(|i| top[i] + graph.task(i).p)
        .fold(0.0f64, f64::max);
    assert!((cp - max_total).abs() < 1e-9);
    assert!((cp - graph.critical_path_length()).abs() < 1e-9);

    // Every edge respects the level ordering.
    for (u, v) in graph.edges() {
        assert!(
            top[v] + 1e-12 >= top[u] + graph.task(u).p,
            "edge ({u},{v}) breaks top levels"
        );
        assert!(
            bottom[u] + 1e-12 >= bottom[v] + graph.task(u).p,
            "edge ({u},{v}) breaks bottom levels"
        );
    }

    // The critical-path task list is a chain whose total cost is the
    // critical path length.
    let cp_tasks = critical_path_tasks(graph);
    let cp_cost: f64 = cp_tasks.iter().map(|&i| graph.task(i).p).sum();
    assert!((cp_cost - cp).abs() < 1e-9);

    // Depth-based levels partition the node set and bound the width.
    let levels = levels_by_depth(graph);
    let total: usize = levels.iter().map(|l| l.len()).sum();
    assert_eq!(total, graph.n());
    assert_eq!(levels.len(), depth(graph));
    assert_eq!(
        level_width(graph),
        levels.iter().map(|l| l.len()).max().unwrap_or(0)
    );

    // Graph statistics agree with direct counts.
    let stats = GraphStats::of(graph);
    let _ = stats; // constructing them must not panic; field names vary
}

#[test]
fn structured_generators_are_sound() {
    check_graph(&chain(1));
    check_graph(&chain(17));
    check_graph(&parallel_chains(4, 6));
    check_graph(&independent(9));
    check_graph(&fork_join(3, 5));
    check_graph(&diamond_grid(5, 7));
    check_graph(&out_tree(4, 2));
    check_graph(&in_tree(3, 3));
    check_graph(&gaussian_elimination(6));
    check_graph(&lu_factorization(4));
    check_graph(&fft_butterfly(4));
}

#[test]
fn chain_critical_path_is_its_length() {
    let g = chain(12);
    assert_eq!(g.n(), 12);
    assert!((critical_path(&g) - 12.0).abs() < 1e-12);
    assert_eq!(depth(&g), 12);
    assert_eq!(level_width(&g), 1);
}

#[test]
fn independent_graph_has_unit_depth() {
    let g = independent(20);
    assert_eq!(g.edge_count(), 0);
    assert_eq!(depth(&g), 1);
    assert_eq!(level_width(&g), 20);
    assert!(g.is_independent());
}

#[test]
fn fork_join_counts_match_the_construction() {
    // Each stage: 1 fork + width parallel tasks, plus a final join.
    let g = fork_join(3, 4);
    assert!(g.n() >= 3 * 5);
    assert!(!g.sources().is_empty());
    assert!(!g.sinks().is_empty());
}

#[test]
fn transitive_reduction_preserves_reachability_structure() {
    // A triangle 0->1, 1->2, 0->2: the reduction drops the redundant 0->2.
    let tasks = sws_model::task::TaskSet::from_ps(&[1.0; 3], &[1.0; 3]).unwrap();
    let g = TaskGraph::from_edges(tasks, &[(0, 1), (1, 2), (0, 2)]).unwrap();
    let reduced = g.transitive_reduction();
    assert_eq!(reduced.edge_count(), 2);
    assert!((critical_path(&reduced) - critical_path(&g)).abs() < 1e-12);
}

#[test]
fn cycles_are_rejected() {
    let tasks = sws_model::task::TaskSet::from_ps(&[1.0; 3], &[1.0; 3]).unwrap();
    let mut g = TaskGraph::from_edges(tasks, &[(0, 1), (1, 2)]).unwrap();
    // Adding the closing edge either fails immediately or is caught by the
    // acyclicity check / topological sort.
    let closed = g.add_edge(2, 0);
    if closed.is_ok() {
        assert!(!is_acyclic(&g));
        assert!(topological_order(&g).is_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random layered DAGs are sound for any admissible parameter choice.
    #[test]
    fn layered_random_is_sound(
        n in 1usize..80,
        layer_divisor in 1usize..8,
        edge_prob in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let layers = (n / layer_divisor).clamp(1, n);
        let mut rng = rand_seed(seed);
        let g = layered_random(n, layers, edge_prob, &mut rng);
        prop_assert_eq!(g.n(), n);
        check_graph(&g);
        prop_assert!(depth(&g) <= layers.max(1));
    }

    /// Ordered Erdős–Rényi DAGs are sound for any edge probability.
    #[test]
    fn layered_erdos_is_sound(
        n in 1usize..60,
        edge_prob in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let mut rng = rand_seed(seed);
        let g = layered_erdos(n, edge_prob, &mut rng);
        prop_assert_eq!(g.n(), n);
        check_graph(&g);
    }

    /// Structured families scale with their parameters and stay sound.
    #[test]
    fn structured_families_scale(k in 2usize..9) {
        check_graph(&gaussian_elimination(k));
        check_graph(&lu_factorization(k.min(6)));
        check_graph(&fft_butterfly(k.min(6)));
        check_graph(&diamond_grid(k, k));
        check_graph(&out_tree(k.min(6), 2));
    }

    /// `with_costs` preserves the structure while replacing the costs.
    #[test]
    fn with_costs_preserves_structure(k in 2usize..8, cost in 0.5f64..10.0) {
        let g = gaussian_elimination(k);
        let relabelled = g.with_costs(|_| sws_model::task::Task { p: cost, s: cost * 2.0 });
        prop_assert_eq!(relabelled.n(), g.n());
        prop_assert_eq!(relabelled.edge_count(), g.edge_count());
        check_graph(&relabelled);
        for i in 0..relabelled.n() {
            prop_assert!((relabelled.task(i).p - cost).abs() < 1e-12);
            prop_assert!((relabelled.task(i).s - 2.0 * cost).abs() < 1e-12);
        }
    }
}

fn rand_seed(seed: u64) -> impl rand::Rng {
    use rand::SeedableRng;
    rand_chacha::ChaCha8Rng::seed_from_u64(seed)
}
