//! Property-based tests of the cost-key quantization table
//! ([`sws_dag::KeyTable`]): on adversarial cost sets — duplicates,
//! signed zeros, subnormals, wildly mixed magnitudes — the dense `u32`
//! ranks must order exactly like the `f64` values, round-trip back to
//! the exact bit pattern, and the distinct-count limit must refuse at
//! precisely the documented boundary.

use proptest::collection::vec;
use proptest::prelude::*;

use sws_dag::KeyTable;

/// Maps a selector into an adversarial cost palette. Small moduli make
/// duplicates frequent; the branches cover signed zeros, subnormals
/// (the smallest positive bit patterns), numbers ~1e-300 and ~1e300
/// apart, and negatives, all in one set.
fn adversarial_cost(sel: u64) -> f64 {
    match sel % 8 {
        0 => (sel % 5) as f64,
        1 => -((sel % 5) as f64),
        2 => {
            if sel.is_multiple_of(2) {
                0.0
            } else {
                -0.0
            }
        }
        // Subnormals: the very bottom of the positive f64 range.
        3 => f64::from_bits(sel % 7 + 1),
        4 => 1e-300 * ((sel % 9) as f64 + 1.0),
        5 => 1e300 * ((sel % 9) as f64 + 1.0),
        6 => f64::MAX - (sel % 3) as f64 * 1e292,
        _ => ((sel % 11) as f64 - 5.0) * 1e-9,
    }
}

/// Number of distinct values in `costs`, with `-0.0` collapsed into
/// `0.0` the same way the table does it.
fn distinct_count(costs: &[f64]) -> usize {
    let mut bits: Vec<u64> = costs.iter().map(|&v| (v + 0.0).to_bits()).collect();
    bits.sort_unstable();
    bits.dedup();
    bits.len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rank order ≡ f64 order, pair for pair, and ranks round-trip to
    /// the exact (zero-collapsed) bit pattern.
    #[test]
    fn ranks_order_exactly_like_the_floats(
        sels in vec(0u64..10_000, 1..120),
    ) {
        let costs: Vec<f64> = sels.iter().map(|&s| adversarial_cost(s)).collect();
        let table = KeyTable::build(costs.iter().copied())
            .expect("well under the default distinct limit");
        for &a in &costs {
            let ra = table.rank_of(a).expect("every built cost has a rank");
            prop_assert_eq!(table.value_of(ra).to_bits(), (a + 0.0).to_bits());
            for &b in &costs {
                let rb = table.rank_of(b).expect("every built cost has a rank");
                // a < b ⇔ rank(a) < rank(b); equality (including
                // 0.0 == -0.0) ⇔ equal ranks.
                prop_assert_eq!(a < b, ra < rb);
                prop_assert_eq!(a == b, ra == rb);
            }
        }
    }

    /// The distinct-count limit refuses at exactly the boundary: the
    /// table builds at `distinct` and refuses at `distinct − 1` —
    /// no lossy bucketing, total-or-absent.
    #[test]
    fn limit_refusal_sits_on_the_distinct_count(
        sels in vec(0u64..10_000, 2..120),
    ) {
        let costs: Vec<f64> = sels.iter().map(|&s| adversarial_cost(s)).collect();
        let distinct = distinct_count(&costs);
        prop_assert!(KeyTable::build_with_limit(costs.iter().copied(), distinct).is_some());
        prop_assert!(KeyTable::build_with_limit(costs.iter().copied(), distinct - 1).is_none());
    }

    /// Unknown values never get a rank; known values always do, even
    /// from a saturating mixture probed through a fresh table.
    #[test]
    fn rank_of_is_total_on_the_build_set_and_absent_off_it(
        sels in vec(0u64..10_000, 1..80),
        probe in 0u64..10_000,
    ) {
        let costs: Vec<f64> = sels.iter().map(|&s| adversarial_cost(s)).collect();
        let table = KeyTable::build(costs.iter().copied()).unwrap();
        let v = adversarial_cost(probe);
        let known = costs.contains(&v);
        prop_assert_eq!(table.rank_of(v).is_some(), known);
    }
}
