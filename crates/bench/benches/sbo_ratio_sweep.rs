//! Experiment E1 bench: SBO∆ over random independent-task workloads,
//! comparing the inner single-objective schedulers and sweeping ∆.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use sws_core::sbo::{sbo, InnerAlgorithm, SboConfig};
use sws_workloads::random::random_instance;
use sws_workloads::rng::seeded_rng;
use sws_workloads::TaskDistribution;

fn bench_sbo(c: &mut Criterion) {
    let mut group = c.benchmark_group("sbo_ratio_sweep");

    // Core E1 cell: SBO with LPT inner algorithms over growing instances.
    for &n in &[50usize, 200, 1_000] {
        let inst = random_instance(
            n,
            8,
            TaskDistribution::AntiCorrelated,
            &mut seeded_rng(100 + n as u64),
        );
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("sbo_lpt_m8", n), &inst, |b, inst| {
            let cfg = SboConfig::new(1.0, InnerAlgorithm::Lpt);
            b.iter(|| black_box(sbo(black_box(inst), &cfg).unwrap()))
        });
    }

    // Inner-algorithm comparison at a fixed size.
    let inst = random_instance(100, 4, TaskDistribution::Uncorrelated, &mut seeded_rng(7));
    for inner in [
        InnerAlgorithm::Graham,
        InnerAlgorithm::Lpt,
        InnerAlgorithm::Multifit,
    ] {
        group.bench_with_input(
            BenchmarkId::new("inner", inner.label()),
            &inner,
            |b, &inner| {
                let cfg = SboConfig::new(1.0, inner);
                b.iter(|| black_box(sbo(black_box(&inst), &cfg).unwrap()))
            },
        );
    }
    // The PTAS inner algorithm on a smaller instance (it is polynomial but
    // far heavier than the list schedulers).
    let small = random_instance(30, 3, TaskDistribution::Uncorrelated, &mut seeded_rng(8));
    group.bench_function("inner/ptas_eps0.25_n30", |b| {
        let cfg = SboConfig::corollary1(1.0, 0.25);
        b.iter(|| black_box(sbo(black_box(&small), &cfg).unwrap()))
    });

    // ∆ sweep: the routing threshold changes, the cost should not.
    for &delta in &[0.25f64, 1.0, 4.0] {
        group.bench_with_input(
            BenchmarkId::new("delta", delta.to_string()),
            &delta,
            |b, &d| {
                let cfg = SboConfig::new(d, InnerAlgorithm::Lpt);
                b.iter(|| black_box(sbo(black_box(&inst), &cfg).unwrap()))
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_sbo);
criterion_main!(benches);
