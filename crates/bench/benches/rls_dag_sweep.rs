//! Experiment E2 bench: RLS∆ over the DAG workload families, sweeping the
//! memory degradation factor ∆ and the number of processors, and comparing
//! against the unrestricted Graham DAG list scheduler baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use sws_core::rls::{rls, PriorityOrder, RlsConfig};
use sws_listsched::dag_list_schedule;
use sws_listsched::priority::hlf_priority;
use sws_workloads::dagsets::{dag_workload, DagFamily};
use sws_workloads::rng::seeded_rng;
use sws_workloads::TaskDistribution;

fn bench_rls(c: &mut Criterion) {
    let mut group = c.benchmark_group("rls_dag_sweep");
    group.sample_size(20);

    // Family sweep at a fixed size.
    for family in DagFamily::all() {
        let inst = dag_workload(
            family,
            150,
            4,
            TaskDistribution::Uncorrelated,
            &mut seeded_rng(42),
        );
        group.throughput(Throughput::Elements(inst.n() as u64));
        group.bench_with_input(
            BenchmarkId::new("family", family.label()),
            &inst,
            |b, inst| {
                let cfg = RlsConfig::new(3.0).with_order(PriorityOrder::BottomLevel);
                b.iter(|| black_box(rls(black_box(inst), &cfg).unwrap()))
            },
        );
    }

    // ∆ sweep on a layered random DAG.
    let inst = dag_workload(
        DagFamily::LayeredRandom,
        200,
        8,
        TaskDistribution::Bimodal,
        &mut seeded_rng(1),
    );
    for &delta in &[2.25f64, 3.0, 6.0] {
        group.bench_with_input(
            BenchmarkId::new("delta", delta.to_string()),
            &delta,
            |b, &d| {
                let cfg = RlsConfig::new(d);
                b.iter(|| black_box(rls(black_box(&inst), &cfg).unwrap()))
            },
        );
    }

    // Baseline: the unrestricted Graham DAG list scheduler on the same
    // instance — the cost of the memory restriction is the difference.
    group.bench_function("baseline_graham_dag_list", |b| {
        let priority = hlf_priority(inst.graph());
        b.iter(|| black_box(dag_list_schedule(black_box(&inst), &priority)))
    });

    group.finish();
}

criterion_group!(benches, bench_rls);
criterion_main!(benches);
