//! Incremental delta-replan engine vs from-scratch-per-event: the perf
//! story of the warm-start-across-mutations rework, measured.
//!
//! One group, `replan_vs_from_scratch`, on the online-serving stream
//! shape (`DeltaStreamConfig::arrivals_and_completions`, 500 events):
//!
//! * `replan` rows — a `ReplanEngine` session opened once (one cold
//!   solve, amortized over the stream) and then `apply`ing every delta:
//!   completions answer from the cached run, arrivals replay only from
//!   their first-affected round;
//! * `from_scratch` rows — the differential oracle's cost model: the
//!   same deltas applied to a mutable CSR with one full
//!   `solve_from_scratch` per event through a reused
//!   `KernelWorkspace`.
//!
//! Both sides produce bit-identical solutions for every prefix
//! (`tests/differential_replan.rs`), so the row ratio is pure
//! amortization — the acceptance target of the rework is a ≥ 5× median
//! ratio on the `500ev_2500x8` rows.
//!
//! Regenerate the committed baseline with:
//!
//! ```text
//! SWS_BENCH_JSON=$(pwd)/BENCH_replan.json cargo bench --bench replan
//! ```
//!
//! CI runs the bench in **quick mode** (`SWS_BENCH_QUICK=1`): the
//! `from_scratch` rows (one full kernel run per event) are skipped and
//! the `replan` rows take extra samples — their medians feed the same
//! 20% `bench_compare` regression gate as the kernel rows, via
//! `--filter /replan/`. Every `replan` row keeps its full-size stream
//! and its id, so quick-mode medians are directly comparable, row for
//! row, to the committed `BENCH_replan.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use sws_core::replan::{solve_from_scratch, ReplanEngine};
use sws_dag::{CsrDag, CsrDelta};
use sws_listsched::KernelWorkspace;
use sws_workloads::dagsets::{dag_workload, DagFamily};
use sws_workloads::deltas::{delta_stream, DeltaStreamConfig};
use sws_workloads::rng::seeded_rng;
use sws_workloads::TaskDistribution;

/// Quick mode (CI): drop the slow from-scratch oracle rows, keep every
/// replan row at full size so medians stay comparable to the committed
/// JSON.
fn quick() -> bool {
    std::env::var("SWS_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

const EVENTS: usize = 500;

fn workload(n: usize, m: usize) -> (CsrDag, Vec<CsrDelta>) {
    let csr = dag_workload(
        DagFamily::LayeredRandom,
        n,
        m,
        TaskDistribution::Uncorrelated,
        &mut seeded_rng(0x9E91A),
    )
    .csr();
    let stream = delta_stream(
        csr.n(),
        EVENTS,
        &DeltaStreamConfig::arrivals_and_completions(),
        &mut seeded_rng(0xE7E27),
    );
    (csr, stream)
}

fn bench_replan(c: &mut Criterion) {
    let mut group = c.benchmark_group("replan_vs_from_scratch");

    for &(n, m) in &[(500usize, 8usize), (2_500, 8)] {
        let (csr, stream) = workload(n, m);
        let label = format!("{EVENTS}ev_{n}x{m}");

        // One iteration = open the session (one cold solve, amortized
        // over the stream) + serve all 500 events warm.
        group.sample_size(if quick() { 20 } else { 10 });
        group.throughput(Throughput::Elements(EVENTS as u64));
        group.bench_with_input(
            BenchmarkId::new("replan", &label),
            &(&csr, &stream),
            |b, (csr, stream)| {
                b.iter(|| {
                    let mut engine = ReplanEngine::open((*csr).clone(), m, None).unwrap();
                    for delta in stream.iter() {
                        black_box(engine.apply(black_box(delta)).unwrap());
                    }
                    engine.events()
                })
            },
        );

        // The oracle's cost model: one full kernel solve per event
        // through a reused workspace (~n rounds each), what a server
        // without the replan layer would pay. Skipped in quick mode.
        if !quick() {
            group.sample_size(10);
            group.bench_with_input(
                BenchmarkId::new("from_scratch", &label),
                &(&csr, &stream),
                |b, (csr, stream)| {
                    b.iter(|| {
                        let mut live = (*csr).clone();
                        let mut ws = KernelWorkspace::with_capacity(live.n() + EVENTS, m);
                        let mut solved = 0u64;
                        for delta in stream.iter() {
                            if !matches!(delta, CsrDelta::CompleteTask { .. }) {
                                live.apply_delta(delta).unwrap();
                            }
                            black_box(solve_from_scratch(&live, m, None, &mut ws).unwrap());
                            solved += 1;
                        }
                        solved
                    })
                },
            );
        }
    }

    group.finish();
}

criterion_group!(benches, bench_replan);
criterion_main!(benches);
