//! Experiment E4 bench: the Section 7 constrained-problem procedure —
//! binary search on ∆ over SBO for independent tasks and the direct
//! ∆ = M/LB derivation with RLS∆ for DAGs — across memory budgets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sws_core::constrained::{solve_dag_with_memory_budget, solve_with_memory_budget};
use sws_core::sbo::InnerAlgorithm;
use sws_model::bounds::mmax_lower_bound;
use sws_workloads::dagsets::{dag_workload, DagFamily};
use sws_workloads::random::random_instance;
use sws_workloads::rng::seeded_rng;
use sws_workloads::TaskDistribution;

fn bench_constrained(c: &mut Criterion) {
    let mut group = c.benchmark_group("constrained_budget");
    group.sample_size(20);

    let inst = random_instance(
        100,
        4,
        TaskDistribution::AntiCorrelated,
        &mut seeded_rng(44),
    );
    let lb = mmax_lower_bound(inst.tasks(), inst.m());
    for &beta in &[1.2f64, 2.0, 4.0] {
        group.bench_with_input(
            BenchmarkId::new("independent_beta", beta.to_string()),
            &beta,
            |b, &beta| {
                b.iter(|| {
                    black_box(
                        solve_with_memory_budget(black_box(&inst), beta * lb, InnerAlgorithm::Lpt)
                            .unwrap(),
                    )
                })
            },
        );
    }

    let dag = dag_workload(
        DagFamily::GaussianElimination,
        150,
        4,
        TaskDistribution::Uncorrelated,
        &mut seeded_rng(45),
    );
    let dag_lb = mmax_lower_bound(dag.tasks(), dag.m());
    for &beta in &[2.5f64, 3.0, 4.0] {
        group.bench_with_input(
            BenchmarkId::new("dag_beta", beta.to_string()),
            &beta,
            |b, &beta| {
                b.iter(|| {
                    black_box(solve_dag_with_memory_budget(black_box(&dag), beta * dag_lb).unwrap())
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_constrained);
criterion_main!(benches);
