//! Experiment E5 bench: runtime scaling of the algorithms with the number
//! of tasks and processors — originally backing the paper's `O(n²m)`
//! complexity claim for RLS∆ (that cost now lives in the retained naive
//! oracle) and the list-scheduler-dominated cost of SBO∆.
//!
//! The `scaling_kernel_vs_naive` group tracks the event-driven kernel
//! against the `naive::*` oracles on the same instances; the fuller
//! comparison (including the 10k×32 acceptance point and sweep thread
//! scaling) lives in `benches/kernel_vs_naive.rs`, whose output is
//! committed as `BENCH_kernel.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use sws_core::rls::{rls, RlsConfig};
use sws_core::sbo::{sbo, InnerAlgorithm, SboConfig};
use sws_ptas::ptas_cmax;
use sws_workloads::dagsets::{dag_workload, DagFamily};
use sws_workloads::random::random_instance;
use sws_workloads::rng::seeded_rng;
use sws_workloads::TaskDistribution;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);

    // SBO/LPT scaling in n.
    for &n in &[100usize, 1_000, 5_000] {
        let inst = random_instance(
            n,
            16,
            TaskDistribution::Uncorrelated,
            &mut seeded_rng(n as u64),
        );
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("sbo_lpt_n", n), &inst, |b, inst| {
            let cfg = SboConfig::new(1.0, InnerAlgorithm::Lpt);
            b.iter(|| black_box(sbo(black_box(inst), &cfg).unwrap()))
        });
    }

    // RLS scaling in n (quadratic) on layered DAGs.
    for &n in &[100usize, 250, 500, 1_000] {
        let inst = dag_workload(
            DagFamily::LayeredRandom,
            n,
            8,
            TaskDistribution::Uncorrelated,
            &mut seeded_rng(1_000 + n as u64),
        );
        group.throughput(Throughput::Elements(inst.n() as u64));
        group.bench_with_input(BenchmarkId::new("rls_n", n), &inst, |b, inst| {
            let cfg = RlsConfig::new(3.0);
            b.iter(|| black_box(rls(black_box(inst), &cfg).unwrap()))
        });
    }

    // RLS scaling in m at fixed n.
    for &m in &[2usize, 8, 32] {
        let inst = dag_workload(
            DagFamily::LayeredRandom,
            300,
            m,
            TaskDistribution::Uncorrelated,
            &mut seeded_rng(2_000 + m as u64),
        );
        group.bench_with_input(BenchmarkId::new("rls_m", m), &inst, |b, inst| {
            let cfg = RlsConfig::new(3.0);
            b.iter(|| black_box(rls(black_box(inst), &cfg).unwrap()))
        });
    }

    // PTAS scaling in 1/ε at fixed size (the hidden constant of
    // Corollary 1).
    let small = random_instance(25, 3, TaskDistribution::Uncorrelated, &mut seeded_rng(3));
    for &eps in &[0.5f64, 0.25, 0.15] {
        group.bench_with_input(
            BenchmarkId::new("ptas_eps", eps.to_string()),
            &eps,
            |b, &eps| b.iter(|| black_box(ptas_cmax(black_box(&small), eps))),
        );
    }

    group.finish();
}

fn bench_kernel_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_kernel_vs_naive");
    group.sample_size(10);

    for &n in &[250usize, 500, 1_000] {
        let inst = dag_workload(
            DagFamily::LayeredRandom,
            n,
            8,
            TaskDistribution::Uncorrelated,
            &mut seeded_rng(4_000 + n as u64),
        );
        group.throughput(Throughput::Elements(inst.n() as u64));
        let cfg = RlsConfig::new(3.0);
        group.bench_with_input(BenchmarkId::new("rls_kernel", n), &inst, |b, inst| {
            b.iter(|| black_box(rls(black_box(inst), &cfg).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("rls_naive", n), &inst, |b, inst| {
            b.iter(|| black_box(sws_core::rls::naive::rls(black_box(inst), &cfg).unwrap()))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_scaling, bench_kernel_vs_naive);
criterion_main!(benches);
