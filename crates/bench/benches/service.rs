//! Service throughput and latency: requests per second through the
//! `sws_service` queue-fed runtime, measured against the same fleet
//! shape as the batch baseline so queueing overhead is directly
//! visible.
//!
//! Each benchmark pre-builds a fleet of layered-random DAG instances
//! (shared behind `Arc`s) and a running service with one worker — the
//! single-core configuration the committed `BENCH_batch.json` numbers
//! use — then measures one `run_all` pass: submit every request through
//! admission, wait for every completion. The measured work therefore
//! includes admission planning (backend selection + cost estimate),
//! queue traffic, per-request completion channels and the solve itself.
//!
//! Ids:
//!
//! * `service_throughput/serve_rls/<count>x<n>x<m>` — RLS∆ (∆ = 3)
//!   request streams over DAGs, the service-side analogue of
//!   `batch_throughput/rls_many`; `schedules/sec = elements /
//!   (median_ns / 1e9)` must stay within 10% of the batch baseline
//!   (queueing overhead bounded — see docs/PERFORMANCE.md);
//! * `service_latency/round_trip/<n>x<m>` — one request's full
//!   submit→wait round trip on an idle service (the per-request floor);
//! * `service_fairness/flood_p99/<tenant>` — per-tenant p99 latency
//!   (nanoseconds, read off the `ServiceStats` histograms) from one
//!   flood run where the `flood` tenant bursts at 10× the `victim`
//!   tenant's volume ahead of it. Not a timed closure: the rows are
//!   reported via the shim's `report_duration`, so they ride in the
//!   same JSON artifact. The deficit-round-robin queue keeps the victim
//!   row far below the flood row; the `victim` row is the regression
//!   signal.
//!
//! Regenerate the committed baseline with:
//!
//! ```text
//! SWS_BENCH_JSON=$(pwd)/BENCH_service.json cargo bench --bench service
//! ```
//!
//! CI runs quick mode (`SWS_BENCH_QUICK=1`): smaller fleet, fewer
//! samples, fleet shape encoded in the ids (comparable across pushes,
//! not to the committed full-size rows).

use criterion::{
    criterion_group, criterion_main, report_duration, BenchmarkId, Criterion, Throughput,
};
use std::hint::black_box;
use std::sync::Arc;

use sws_dag::DagInstance;
use sws_model::policy::{OverflowPolicy, TenantPolicy};
use sws_model::solve::{Guarantee, ObjectiveMode};
use sws_service::{SchedulingService, ServiceRequest, Ticket};
use sws_workloads::dagsets::{dag_workload, DagFamily};
use sws_workloads::random::random_instance;
use sws_workloads::rng::{derive_seed, seeded_rng};
use sws_workloads::TaskDistribution;

/// Quick mode shrinks fleet sizes and sample counts for CI.
fn quick() -> bool {
    std::env::var("SWS_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// The same fleet construction as the batch throughput bench (same
/// seeds, same families), shared behind `Arc`s for the service.
fn fleet(count: usize, n: usize, m: usize, seed: u64) -> Vec<Arc<DagInstance>> {
    (0..count)
        .map(|k| {
            Arc::new(dag_workload(
                DagFamily::LayeredRandom,
                n,
                m,
                TaskDistribution::Uncorrelated,
                &mut seeded_rng(derive_seed(seed, k as u64)),
            ))
        })
        .collect()
}

/// A single-worker service with one unlimited tenant — the single-core
/// serving configuration.
fn single_worker_service(capacity: usize) -> SchedulingService {
    SchedulingService::builder()
        .workers(1)
        .queue_capacity(capacity)
        .tenant(
            "bench",
            TenantPolicy::unlimited().with_overflow(OverflowPolicy::Queue),
        )
        .build()
}

fn bench_service(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(if quick() { 3 } else { 10 });

    let shapes: &[(usize, usize, usize)] = if quick() {
        &[(64, 250, 8)]
    } else {
        &[(512, 250, 8), (128, 1_000, 8)]
    };

    for &(count, n, m) in shapes {
        // Same seed family as batch_throughput so the scheduled
        // instances are identical.
        let instances = fleet(count, n, m, 0xBA7C + n as u64);
        group.throughput(Throughput::Elements(count as u64));
        let service = single_worker_service(count.max(16));
        group.bench_with_input(
            BenchmarkId::new("serve_rls", format!("{count}x{n}x{m}")),
            &instances,
            |b, instances| {
                b.iter(|| {
                    let requests: Vec<ServiceRequest> = instances
                        .iter()
                        .map(|inst| {
                            ServiceRequest::dag(
                                "bench",
                                Arc::clone(inst),
                                ObjectiveMode::BiObjective { delta: 3.0 },
                            )
                            .with_guarantee(Guarantee::PaperRatio)
                        })
                        .collect();
                    let outcomes = service.run_all(requests);
                    assert!(outcomes.iter().all(Result::is_ok));
                    black_box(outcomes)
                })
            },
        );
        drop(service);
    }
    group.finish();

    // Per-request round-trip latency on an idle service: submit one
    // request, wait for it — the floor every queued request pays on
    // top of its position in line.
    let mut group = c.benchmark_group("service_latency");
    group.sample_size(if quick() { 5 } else { 20 });
    let (n, m) = (250usize, 8usize);
    let inst = fleet(1, n, m, 0x5E41).pop().unwrap();
    let service = single_worker_service(16);
    let handle = service.handle();
    group.throughput(Throughput::Elements(1));
    group.bench_with_input(
        BenchmarkId::new("round_trip", format!("{n}x{m}")),
        &inst,
        |b, inst| {
            b.iter(|| {
                let ticket = handle
                    .submit(
                        ServiceRequest::dag(
                            "bench",
                            Arc::clone(inst),
                            ObjectiveMode::BiObjective { delta: 3.0 },
                        )
                        .with_guarantee(Guarantee::PaperRatio),
                    )
                    .expect("admissible");
                black_box(ticket.wait().expect("servable"))
            })
        },
    );
    group.finish();
}

/// Per-tenant p99 under flood: one run, two reported rows. A `flood`
/// tenant bursts 10× the `victim` tenant's volume into a single-worker
/// service *before* the victim submits; the deficit-round-robin queue
/// still alternates lanes, so the victim's p99 tracks its own share of
/// the drain while the flood's tail rides the whole backlog. The rows
/// are the JSON-artifact form of the `service_stress` fairness
/// assertion — compare `victim` across pushes to catch fairness
/// regressions without re-deriving a wall-clock bound.
fn bench_fairness(_c: &mut Criterion) {
    let victims = if quick() { 8 } else { 32 };
    let flood_n = 10 * victims;

    let service = SchedulingService::builder()
        .workers(1)
        .queue_capacity(flood_n + victims + 8)
        .tenant("victim", TenantPolicy::unlimited())
        .tenant(
            "flood",
            TenantPolicy::unlimited().with_overflow(OverflowPolicy::Queue),
        )
        .build();
    let handle = service.handle();

    // One shared flat instance: uniform work units, so the rotation
    // alternates one-for-one between the lanes.
    let inst = Arc::new(random_instance(
        16,
        2,
        TaskDistribution::Uncorrelated,
        &mut seeded_rng(derive_seed(0xFA14, 99)),
    ));
    let mk = |tenant: &str| {
        ServiceRequest::independent(tenant, Arc::clone(&inst), ObjectiveMode::CmaxOnly)
    };

    let flood_tickets: Vec<Ticket> = (0..flood_n)
        .map(|_| handle.submit(mk("flood")).expect("flood burst queues"))
        .collect();
    let victim_tickets: Vec<Ticket> = (0..victims)
        .map(|_| handle.submit(mk("victim")).expect("victim submits admit"))
        .collect();
    for ticket in victim_tickets.into_iter().chain(flood_tickets) {
        ticket.wait().expect("flood-run requests complete");
    }

    let stats = service.shutdown();
    for tenant in ["victim", "flood"] {
        let p99 = stats
            .tenant(tenant)
            .and_then(|scope| scope.p99_latency)
            .expect("flood run populates both histograms");
        report_duration(&format!("service_fairness/flood_p99/{tenant}"), p99);
    }
}

criterion_group!(benches, bench_service, bench_fairness);
criterion_main!(benches);
