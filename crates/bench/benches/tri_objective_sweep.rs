//! Experiment E3 bench: the tri-objective SPT-ordered RLS∆ on independent
//! tasks, compared against the plain SPT schedule (optimal for `ΣC_i`,
//! oblivious to memory) as the baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use sws_core::tri::tri_objective_rls;
use sws_listsched::spt::spt_schedule;
use sws_workloads::random::random_instance;
use sws_workloads::rng::seeded_rng;
use sws_workloads::TaskDistribution;

fn bench_tri(c: &mut Criterion) {
    let mut group = c.benchmark_group("tri_objective_sweep");

    for &n in &[50usize, 200, 500] {
        let inst = random_instance(
            n,
            4,
            TaskDistribution::AntiCorrelated,
            &mut seeded_rng(300 + n as u64),
        );
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("tri_rls_delta3", n), &inst, |b, inst| {
            b.iter(|| black_box(tri_objective_rls(black_box(inst), 3.0).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("baseline_spt", n), &inst, |b, inst| {
            b.iter(|| black_box(spt_schedule(black_box(inst))))
        });
    }

    let inst = random_instance(100, 8, TaskDistribution::Bimodal, &mut seeded_rng(9));
    for &delta in &[2.25f64, 3.0, 6.0] {
        group.bench_with_input(
            BenchmarkId::new("delta", delta.to_string()),
            &delta,
            |b, &d| b.iter(|| black_box(tri_objective_rls(black_box(&inst), d).unwrap())),
        );
    }

    group.finish();
}

criterion_group!(benches, bench_tri);
criterion_main!(benches);
