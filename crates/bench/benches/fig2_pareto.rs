//! Figure 2 regeneration bench: Pareto-front enumeration of the Section
//! 4.3 adversarial instance across the admissible `ε` range, plus the full
//! figure pipeline with Gantt rendering.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sws_bench::figures::figure2;
use sws_exact::pareto_enum::pareto_front;
use sws_workloads::lemma3_instance;

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_pareto");

    group.bench_function("figure2_pipeline", |b| {
        b.iter(|| black_box(figure2(black_box(0.25))))
    });

    for &eps in &[0.1f64, 0.25, 0.45] {
        let inst = lemma3_instance(eps);
        group.bench_with_input(
            BenchmarkId::new("front_lemma3_instance", format!("eps{eps}")),
            &inst,
            |b, inst| b.iter(|| black_box(pareto_front(black_box(inst)))),
        );
    }

    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
