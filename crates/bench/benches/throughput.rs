//! Batch serving throughput: schedules per second through
//! `sws_core::batch::BatchScheduler` — the multi-instance entry point of
//! the allocation-free kernel core.
//!
//! Each benchmark pre-builds a fleet of layered-random instances and
//! measures one `run_many` pass over the whole fleet (per-worker
//! workspaces, per-instance CSR + rank preparation included — that is
//! the real serving cost). The `throughput_elements` field of the JSON
//! records the fleet size, so `schedules/sec = elements /
//! (median_ns / 1e9)`.
//!
//! Ids:
//!
//! * `batch_throughput/rls_many/<count>x<n>x<m>` — RLS∆ (∆ = 3) batches;
//! * `batch_throughput/rls_requests/<count>x<n>x<m>` — the same fleet
//!   served as portfolio `SolveRequest`s through
//!   `BatchScheduler::run_requests` (per-item selection, cost stamping,
//!   `Solution` packaging): the request-serving baseline the
//!   `sws_service` bench (`BENCH_service.json`) compares against —
//!   the delta to `rls_many` is the portfolio-vocabulary cost, the
//!   delta from here to `service_throughput/serve_rls` is the queue;
//! * `batch_throughput/dag_list_many/<count>x<n>x<m>` — unrestricted DAG
//!   list scheduling batches;
//! * `batch_throughput/rls_steady/<n>x<m>` — steady-state single-instance
//!   serving (`RlsEngine::run_detached`, CSR/rank/workspace amortized):
//!   the per-schedule floor the batch path approaches as instance reuse
//!   grows.
//!
//! Regenerate the committed baseline with:
//!
//! ```text
//! SWS_BENCH_JSON=$(pwd)/BENCH_batch.json cargo bench --bench throughput
//! ```
//!
//! CI runs the bench in **quick mode** (`SWS_BENCH_QUICK=1`): smaller
//! fleets and fewer samples, with the fleet shape encoded in the ids —
//! quick-mode results are therefore comparable to other quick-mode
//! artifacts across pushes (not to the committed full-size
//! `BENCH_batch.json` rows), which is what makes throughput drift
//! visible without a long bench job.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use sws_core::batch::{BatchScheduler, BatchSpec};
use sws_core::portfolio::Portfolio;
use sws_core::rls::{PriorityOrder, RlsEngine};
use sws_dag::DagInstance;
use sws_model::solve::{Guarantee, ObjectiveMode, SolveRequest};
use sws_workloads::dagsets::{dag_workload, DagFamily};
use sws_workloads::rng::{derive_seed, seeded_rng};
use sws_workloads::TaskDistribution;

/// Quick mode shrinks fleet sizes and sample counts for CI.
fn quick() -> bool {
    std::env::var("SWS_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn fleet(count: usize, n: usize, m: usize, seed: u64) -> Vec<DagInstance> {
    (0..count)
        .map(|k| {
            dag_workload(
                DagFamily::LayeredRandom,
                n,
                m,
                TaskDistribution::Uncorrelated,
                &mut seeded_rng(derive_seed(seed, k as u64)),
            )
        })
        .collect()
}

fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_throughput");
    group.sample_size(if quick() { 3 } else { 10 });

    let shapes: &[(usize, usize, usize)] = if quick() {
        &[(64, 250, 8)]
    } else {
        &[(512, 250, 8), (128, 1_000, 8), (32, 2_500, 16)]
    };

    for &(count, n, m) in shapes {
        let instances = fleet(count, n, m, 0xBA7C + n as u64);
        let total: u64 = instances.len() as u64;
        group.throughput(Throughput::Elements(total));
        let scheduler = BatchScheduler::new();
        group.bench_with_input(
            BenchmarkId::new("rls_many", format!("{count}x{n}x{m}")),
            &instances,
            |b, instances| {
                let spec = BatchSpec::rls(3.0, PriorityOrder::Index);
                b.iter(|| black_box(scheduler.run_many(instances, &spec).unwrap()))
            },
        );
        let portfolio = Portfolio::standard();
        group.bench_with_input(
            BenchmarkId::new("rls_requests", format!("{count}x{n}x{m}")),
            &instances,
            |b, instances| {
                let items: Vec<SolveRequest> = instances
                    .iter()
                    .map(|inst| {
                        SolveRequest::precedence(inst, ObjectiveMode::BiObjective { delta: 3.0 })
                            .with_guarantee(Guarantee::PaperRatio)
                    })
                    .collect();
                b.iter(|| black_box(scheduler.run_requests(&portfolio, &items).unwrap()))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("dag_list_many", format!("{count}x{n}x{m}")),
            &instances,
            |b, instances| {
                let spec = BatchSpec::dag_list(PriorityOrder::BottomLevel);
                b.iter(|| black_box(scheduler.run_many(instances, &spec).unwrap()))
            },
        );
    }

    // Steady-state single-instance serving: everything per-instance is
    // amortized away, each iteration is one full kernel run through
    // reused buffers. This is the per-schedule floor of the batch path.
    let (n, m) = if quick() { (1_000, 8) } else { (10_000, 32) };
    let inst = fleet(1, n, m, 0x5EED).pop().unwrap();
    group.throughput(Throughput::Elements(1));
    let mut engine = RlsEngine::new(&inst, PriorityOrder::Index);
    group.bench_with_input(
        BenchmarkId::new("rls_steady", format!("{n}x{m}")),
        &inst,
        |b, _inst| b.iter(|| black_box(engine.run_detached(3.0).unwrap())),
    );

    group.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
