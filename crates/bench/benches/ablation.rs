//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * the tie-breaking priority order inside RLS∆ (the paper allows "an
//!   arbitrary total ordering"; we compare the orders shipped),
//! * the single-objective scheduler plugged into SBO∆ (list scheduler vs
//!   LPT vs MULTIFIT vs the PTAS),
//! * the granularity of the ∆ sweep used to build approximate Pareto
//!   fronts, and
//! * the uniform-machine extension against the identical-machine base
//!   case.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sws_core::heterogeneous::{uniform_rls_lpt, UniformMachines};
use sws_core::pareto_sweep::{rls_sweep, sbo_sweep};
use sws_core::rls::{rls, PriorityOrder, RlsConfig};
use sws_core::sbo::{sbo, InnerAlgorithm, SboConfig};
use sws_workloads::dagsets::{dag_workload, DagFamily};
use sws_workloads::random::random_instance;
use sws_workloads::rng::seeded_rng;
use sws_workloads::TaskDistribution;

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(20);

    // (a) RLS tie-breaking order.
    let dag = dag_workload(
        DagFamily::LayeredRandom,
        200,
        8,
        TaskDistribution::AntiCorrelated,
        &mut seeded_rng(60),
    );
    for order in PriorityOrder::all() {
        group.bench_with_input(
            BenchmarkId::new("rls_order", order.label()),
            &order,
            |b, &order| {
                let cfg = RlsConfig::new(3.0).with_order(order);
                b.iter(|| black_box(rls(black_box(&dag), &cfg).unwrap()))
            },
        );
    }

    // (b) SBO inner algorithm.
    let inst = random_instance(
        150,
        8,
        TaskDistribution::AntiCorrelated,
        &mut seeded_rng(61),
    );
    for inner in [
        InnerAlgorithm::Graham,
        InnerAlgorithm::Lpt,
        InnerAlgorithm::Multifit,
    ] {
        group.bench_with_input(
            BenchmarkId::new("sbo_inner", inner.label()),
            &inner,
            |b, &inner| {
                let cfg = SboConfig::new(1.0, inner);
                b.iter(|| black_box(sbo(black_box(&inst), &cfg).unwrap()))
            },
        );
    }
    let small = random_instance(30, 4, TaskDistribution::AntiCorrelated, &mut seeded_rng(62));
    group.bench_function("sbo_inner/ptas_n30", |b| {
        let cfg = SboConfig::corollary1(1.0, 0.25);
        b.iter(|| black_box(sbo(black_box(&small), &cfg).unwrap()))
    });

    // (c) ∆-sweep granularity for approximate Pareto fronts.
    for &samples in &[5usize, 9, 17] {
        group.bench_with_input(
            BenchmarkId::new("sbo_sweep_samples", samples),
            &samples,
            |b, &samples| {
                b.iter(|| {
                    black_box(
                        sbo_sweep(black_box(&inst), InnerAlgorithm::Lpt, 0.125, 8.0, samples)
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.bench_function("rls_sweep_samples/8", |b| {
        b.iter(|| {
            black_box(rls_sweep(black_box(&dag), &RlsConfig::new(3.0), 2.1, 10.0, 8).unwrap())
        })
    });

    // (d) Identical vs uniform machines (extension).
    let identical = UniformMachines::identical(8).unwrap();
    let skewed = UniformMachines::new(vec![4.0, 2.0, 2.0, 1.0, 1.0, 1.0, 0.5, 0.5]).unwrap();
    group.bench_function("uniform_rls/identical", |b| {
        b.iter(|| black_box(uniform_rls_lpt(black_box(&inst), &identical, 3.0).unwrap()))
    });
    group.bench_function("uniform_rls/skewed", |b| {
        b.iter(|| black_box(uniform_rls_lpt(black_box(&inst), &skewed, 3.0).unwrap()))
    });

    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
