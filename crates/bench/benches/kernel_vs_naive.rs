//! Event-driven kernel vs. naive `O(n²·m)` oracle: the perf story of the
//! scheduling-kernel rework, measured.
//!
//! Groups:
//!
//! * `rls_kernel_vs_naive` — RLS∆ on layered DAGs, growing `n` at `m = 8`
//!   plus the acceptance point `n = 10 000, m = 32`. Since the
//!   allocation-free rework the `kernel` rows measure the **CSR +
//!   workspace-reuse serving path** (`RlsEngine::run_detached`: CSR
//!   mirror, priority rank and kernel workspace built once, every
//!   iteration a full from-scratch run through the reused buffers) —
//!   the steady-state cost of one schedule in a sweep or batch;
//! * `dag_list_kernel_vs_naive` — unrestricted DAG list scheduling,
//!   same serving-path convention (`dag_list_schedule_csr`);
//! * `sweep_scaling` — the parallelized `rls_sweep` at 1 thread vs. all
//!   cores (the ∆ grid fans out across the rayon pool; one chunk runs
//!   inline without dispatch).
//!
//! Regenerate the committed baseline with:
//!
//! ```text
//! SWS_BENCH_JSON=$(pwd)/BENCH_kernel.json cargo bench --bench kernel_vs_naive
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use sws_core::pareto_sweep::rls_sweep;
use sws_core::rls::{naive, PriorityOrder, RlsConfig, RlsEngine};
use sws_dag::DagInstance;
use sws_listsched::priority::hlf_priority;
use sws_listsched::{dag_list_schedule_csr, naive as listsched_naive, KernelWorkspace};
use sws_workloads::dagsets::{dag_workload, DagFamily};
use sws_workloads::rng::seeded_rng;
use sws_workloads::TaskDistribution;

fn layered(n: usize, m: usize, seed: u64) -> DagInstance {
    dag_workload(
        DagFamily::LayeredRandom,
        n,
        m,
        TaskDistribution::Uncorrelated,
        &mut seeded_rng(seed),
    )
}

fn bench_rls(c: &mut Criterion) {
    let mut group = c.benchmark_group("rls_kernel_vs_naive");
    group.sample_size(10);

    for &n in &[250usize, 1_000, 2_500] {
        let inst = layered(n, 8, 0xBE5C + n as u64);
        group.throughput(Throughput::Elements(inst.n() as u64));
        let cfg = RlsConfig::new(3.0);
        let mut engine = RlsEngine::new(&inst, PriorityOrder::Index);
        group.bench_with_input(BenchmarkId::new("kernel", n), &inst, |b, _inst| {
            b.iter(|| black_box(engine.run_detached(3.0).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &inst, |b, inst| {
            b.iter(|| black_box(naive::rls(black_box(inst), &cfg).unwrap()))
        });
    }

    // The acceptance point of the rework: 10k tasks on 32 processors.
    let big = layered(10_000, 32, 0xB16);
    group.throughput(Throughput::Elements(big.n() as u64));
    let cfg = RlsConfig::new(3.0);
    let mut engine = RlsEngine::new(&big, PriorityOrder::Index);
    group.bench_with_input(BenchmarkId::new("kernel", "10000x32"), &big, |b, _inst| {
        b.iter(|| black_box(engine.run_detached(3.0).unwrap()))
    });
    // The naive oracle needs tens of seconds per run at this size — keep
    // the sample count minimal; the point is the ratio, not the variance.
    group.sample_size(2);
    group.bench_with_input(BenchmarkId::new("naive", "10000x32"), &big, |b, inst| {
        b.iter(|| black_box(naive::rls(black_box(inst), &cfg).unwrap()))
    });

    group.finish();
}

fn bench_dag_list(c: &mut Criterion) {
    let mut group = c.benchmark_group("dag_list_kernel_vs_naive");
    group.sample_size(10);

    for &n in &[500usize, 2_000, 5_000] {
        let inst = layered(n, 8, 0xDA6 + n as u64);
        let rank = hlf_priority(inst.graph());
        let csr = inst.csr();
        let mut ws = KernelWorkspace::with_capacity(inst.n(), inst.m());
        group.throughput(Throughput::Elements(inst.n() as u64));
        group.bench_with_input(BenchmarkId::new("kernel", n), &inst, |b, inst| {
            b.iter(|| black_box(dag_list_schedule_csr(&csr, inst.m(), &rank, &mut ws)))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &inst, |b, inst| {
            b.iter(|| black_box(listsched_naive::dag_list_schedule(black_box(inst), &rank)))
        });
    }

    group.finish();
}

fn bench_sweep_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_scaling");
    group.sample_size(10);

    let inst = layered(1_500, 8, 0x5EEE);
    let cfg = RlsConfig::new(3.0);
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    // SWS_RAYON_THREADS is the shim's RAYON_NUM_THREADS: read per sweep,
    // so flipping it between benchmarks measures thread scaling. On a
    // single-core machine the two measurements coincide by construction;
    // the serial one then doubles as a no-overhead regression check.
    std::env::set_var("SWS_RAYON_THREADS", "1");
    group.bench_with_input(
        BenchmarkId::new("rls_sweep_32deltas", "serial-1-thread"),
        &inst,
        |b, inst| b.iter(|| black_box(rls_sweep(black_box(inst), &cfg, 2.1, 16.0, 32).unwrap())),
    );
    std::env::set_var("SWS_RAYON_THREADS", cores.to_string());
    group.bench_with_input(
        BenchmarkId::new("rls_sweep_32deltas", format!("parallel-{cores}-threads")),
        &inst,
        |b, inst| b.iter(|| black_box(rls_sweep(black_box(inst), &cfg, 2.1, 16.0, 32).unwrap())),
    );
    std::env::remove_var("SWS_RAYON_THREADS");

    group.finish();
}

criterion_group!(benches, bench_rls, bench_dag_list, bench_sweep_scaling);
criterion_main!(benches);
