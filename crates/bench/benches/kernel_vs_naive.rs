//! Event-driven kernel vs. naive `O(n²·m)` oracle: the perf story of the
//! scheduling-kernel rework, measured.
//!
//! Groups:
//!
//! * `rls_kernel_vs_naive` — RLS∆ on layered DAGs, growing `n` at `m = 8`
//!   plus the acceptance point `n = 10 000, m = 32`. Since the
//!   allocation-free rework the `kernel` rows measure the **CSR +
//!   workspace-reuse serving path** (`RlsEngine::run_detached`: CSR
//!   mirror, priority rank and kernel workspace built once, every
//!   iteration a full from-scratch run through the reused buffers) —
//!   the steady-state cost of one schedule in a sweep or batch;
//! * `dag_list_kernel_vs_naive` — unrestricted DAG list scheduling,
//!   same serving-path convention (`dag_list_schedule_csr`);
//! * `sweep_scaling` — the parallelized `rls_sweep` at 1 thread vs. all
//!   cores (the ∆ grid fans out across the rayon pool; one chunk runs
//!   inline without dispatch);
//! * `proc_heap` — the heap-ops microbench behind the 4-ary rework:
//!   a kernel-shaped `min → set_load → sift` loop on the shipped 4-ary
//!   [`ProcHeap`] vs. a bench-local replica of the old binary layout,
//!   at `m = 32` and `m = 512`.
//!
//! Regenerate the committed baseline with:
//!
//! ```text
//! SWS_BENCH_JSON=$(pwd)/BENCH_kernel.json cargo bench --bench kernel_vs_naive
//! ```
//!
//! CI runs the bench in **quick mode** (`SWS_BENCH_QUICK=1`): the
//! `O(n²·m)` naive oracle rows and the sweep-scaling group are skipped,
//! and the cheap `kernel` rows take extra samples (their medians feed a
//! 20% regression gate, so small-row noise matters more than runtime).
//! Every `kernel` row keeps its full-size instance and its id —
//! quick-mode medians are therefore
//! directly comparable, row for row, to the committed
//! `BENCH_kernel.json` (modulo machine speed; the CI gate allows 20%).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use sws_core::pareto_sweep::rls_sweep;
use sws_core::rls::{naive, PriorityOrder, RlsConfig, RlsEngine};
use sws_dag::DagInstance;
use sws_listsched::kernel::ProcHeap;
use sws_listsched::priority::hlf_priority;
use sws_listsched::{dag_list_schedule_csr, naive as listsched_naive, KernelWorkspace};
use sws_workloads::dagsets::{dag_workload, DagFamily};
use sws_workloads::rng::seeded_rng;
use sws_workloads::TaskDistribution;

/// Quick mode (CI): drop the slow oracle/sweep rows, keep every kernel
/// row at full size so medians stay comparable to the committed JSON.
fn quick() -> bool {
    std::env::var("SWS_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn layered(n: usize, m: usize, seed: u64) -> DagInstance {
    dag_workload(
        DagFamily::LayeredRandom,
        n,
        m,
        TaskDistribution::Uncorrelated,
        &mut seeded_rng(seed),
    )
}

fn bench_rls(c: &mut Criterion) {
    let mut group = c.benchmark_group("rls_kernel_vs_naive");
    group.sample_size(if quick() { 15 } else { 10 });

    for &n in &[250usize, 1_000, 2_500] {
        let inst = layered(n, 8, 0xBE5C + n as u64);
        group.throughput(Throughput::Elements(inst.n() as u64));
        let cfg = RlsConfig::new(3.0);
        let mut engine = RlsEngine::new(&inst, PriorityOrder::Index);
        group.bench_with_input(BenchmarkId::new("kernel", n), &inst, |b, _inst| {
            b.iter(|| black_box(engine.run_detached(3.0).unwrap()))
        });
        if !quick() {
            group.bench_with_input(BenchmarkId::new("naive", n), &inst, |b, inst| {
                b.iter(|| black_box(naive::rls(black_box(inst), &cfg).unwrap()))
            });
        }
    }

    // The acceptance point of the rework: 10k tasks on 32 processors.
    let big = layered(10_000, 32, 0xB16);
    group.throughput(Throughput::Elements(big.n() as u64));
    let cfg = RlsConfig::new(3.0);
    let mut engine = RlsEngine::new(&big, PriorityOrder::Index);
    group.bench_with_input(BenchmarkId::new("kernel", "10000x32"), &big, |b, _inst| {
        b.iter(|| black_box(engine.run_detached(3.0).unwrap()))
    });
    // The naive oracle needs tens of seconds per run at this size — keep
    // the sample count minimal; the point is the ratio, not the variance.
    if !quick() {
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("naive", "10000x32"), &big, |b, inst| {
            b.iter(|| black_box(naive::rls(black_box(inst), &cfg).unwrap()))
        });
    }

    group.finish();
}

fn bench_dag_list(c: &mut Criterion) {
    let mut group = c.benchmark_group("dag_list_kernel_vs_naive");
    group.sample_size(if quick() { 15 } else { 10 });

    for &n in &[500usize, 2_000, 5_000] {
        let inst = layered(n, 8, 0xDA6 + n as u64);
        let rank = hlf_priority(inst.graph());
        let csr = inst.csr();
        let mut ws = KernelWorkspace::with_capacity(inst.n(), inst.m());
        group.throughput(Throughput::Elements(inst.n() as u64));
        group.bench_with_input(BenchmarkId::new("kernel", n), &inst, |b, inst| {
            b.iter(|| black_box(dag_list_schedule_csr(&csr, inst.m(), &rank, &mut ws)))
        });
        if !quick() {
            group.bench_with_input(BenchmarkId::new("naive", n), &inst, |b, inst| {
                b.iter(|| black_box(listsched_naive::dag_list_schedule(black_box(inst), &rank)))
            });
        }
    }

    group.finish();
}

fn bench_sweep_scaling(c: &mut Criterion) {
    if quick() {
        return;
    }
    let mut group = c.benchmark_group("sweep_scaling");
    group.sample_size(10);

    let inst = layered(1_500, 8, 0x5EEE);
    let cfg = RlsConfig::new(3.0);
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    // SWS_RAYON_THREADS is the shim's RAYON_NUM_THREADS: read per sweep,
    // so flipping it between benchmarks measures thread scaling. On a
    // single-core machine the two measurements coincide by construction;
    // the serial one then doubles as a no-overhead regression check.
    std::env::set_var("SWS_RAYON_THREADS", "1");
    group.bench_with_input(
        BenchmarkId::new("rls_sweep_32deltas", "serial-1-thread"),
        &inst,
        |b, inst| b.iter(|| black_box(rls_sweep(black_box(inst), &cfg, 2.1, 16.0, 32).unwrap())),
    );
    std::env::set_var("SWS_RAYON_THREADS", cores.to_string());
    // Pluralize the id correctly: `parallel-1-thread`, `parallel-8-threads`.
    let plural = if cores == 1 { "" } else { "s" };
    group.bench_with_input(
        BenchmarkId::new(
            "rls_sweep_32deltas",
            format!("parallel-{cores}-thread{plural}"),
        ),
        &inst,
        |b, inst| b.iter(|| black_box(rls_sweep(black_box(inst), &cfg, 2.1, 16.0, 32).unwrap())),
    );
    std::env::remove_var("SWS_RAYON_THREADS");

    group.finish();
}

/// Bench-local replica of the pre-rework **binary** indexed heap: packed
/// `(load bits, processor)` keys in `Vec<(u64, u32)>`, children of `i`
/// at `2i+1`/`2i+2`. Kept here (not in the library) purely as the
/// microbench baseline for the 4-ary layout.
struct BinaryProcHeap {
    key: Vec<(u64, u32)>,
    pos: Vec<u32>,
    load: Vec<f64>,
}

impl BinaryProcHeap {
    fn new(m: usize) -> Self {
        BinaryProcHeap {
            key: (0..m).map(|q| (0u64, q as u32)).collect(),
            pos: (0..m as u32).collect(),
            load: vec![0.0; m],
        }
    }

    #[inline]
    fn min(&self) -> usize {
        self.key[0].1 as usize
    }

    fn set_load(&mut self, q: usize, new_load: f64) {
        self.load[q] = new_load;
        let mut at = self.pos[q] as usize;
        self.key[at] = ((new_load + 0.0).to_bits(), q as u32);
        loop {
            let l = 2 * at + 1;
            if l >= self.key.len() {
                return;
            }
            let r = l + 1;
            let best = if r < self.key.len() && self.key[r] < self.key[l] {
                r
            } else {
                l
            };
            if self.key[at] <= self.key[best] {
                return;
            }
            self.key.swap(at, best);
            self.pos[self.key[at].1 as usize] = at as u32;
            self.pos[self.key[best].1 as usize] = best as u32;
            at = best;
        }
    }
}

/// The kernel-shaped heap loop: pop the least-loaded processor, raise
/// its load by the next task weight, sift. One iteration = `rounds`
/// such placements from a zeroed heap.
fn bench_proc_heap(c: &mut Criterion) {
    let mut group = c.benchmark_group("proc_heap");
    group.sample_size(if quick() { 10 } else { 20 });

    // Deterministic pseudo-random weights (the SplitMix64 stream behind
    // `derive_seed`): enough spread to make sift depths realistic.
    let rounds = 10_000usize;
    let weights: Vec<f64> = (0..rounds)
        .map(|i| 0.5 + (sws_workloads::rng::derive_seed(0x4EAF, i as u64) % 1_000) as f64 / 100.0)
        .collect();

    for &m in &[32usize, 512] {
        group.throughput(Throughput::Elements(rounds as u64));
        group.bench_with_input(BenchmarkId::new("sift/binary", m), &m, |b, &m| {
            b.iter(|| {
                let mut heap = BinaryProcHeap::new(m);
                for &w in &weights {
                    let q = heap.min();
                    heap.set_load(q, heap.load[q] + w);
                }
                black_box(heap.min())
            })
        });
        group.bench_with_input(BenchmarkId::new("sift/4ary", m), &m, |b, &m| {
            b.iter(|| {
                let mut heap = ProcHeap::new(m);
                for &w in &weights {
                    let q = heap.min();
                    heap.set_load(q, heap.load(q) + w);
                }
                black_box(heap.min())
            })
        });
    }

    group.finish();
}

criterion_group!(
    benches,
    bench_rls,
    bench_dag_list,
    bench_sweep_scaling,
    bench_proc_heap
);
criterion_main!(benches);
