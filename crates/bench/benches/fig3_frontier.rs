//! Figure 3 regeneration bench: generating the Lemma 2 impossibility
//! staircases, the SBO trade-off curve and checking claimed ratio pairs
//! against the impossibility domain.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sws_bench::figures::figure3;
use sws_core::bounds::{impossibility_frontier, sbo_tradeoff_curve, violates_impossibility};

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_frontier");

    group.bench_function("figure3_pipeline_m6_k64", |b| {
        b.iter(|| black_box(figure3(black_box(6), black_box(64), 0.125, 8.0)))
    });

    for &k in &[16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("frontier_m4", k), &k, |b, &k| {
            b.iter(|| black_box(impossibility_frontier(black_box(4), k)))
        });
    }

    group.bench_function("sbo_curve_65_samples", |b| {
        b.iter(|| black_box(sbo_tradeoff_curve(0.125, 8.0, 65)))
    });

    group.bench_function("violation_check_inside", |b| {
        b.iter(|| {
            black_box(violates_impossibility(
                black_box(1.3),
                black_box(1.3),
                6,
                64,
            ))
        })
    });
    group.bench_function("violation_check_outside", |b| {
        b.iter(|| {
            black_box(violates_impossibility(
                black_box(2.1),
                black_box(2.1),
                6,
                64,
            ))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
