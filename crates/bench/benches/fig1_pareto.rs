//! Figure 1 regeneration bench: exhaustive Pareto-front enumeration of the
//! Section 4.1 adversarial instance and of slightly larger variants, plus
//! the full figure pipeline (front + Gantt rendering).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sws_bench::figures::figure1;
use sws_exact::pareto_enum::pareto_front;
use sws_workloads::{lemma1_instance, lemma2_instance};

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_pareto");

    group.bench_function("figure1_pipeline", |b| {
        b.iter(|| black_box(figure1(black_box(1e-3))))
    });

    group.bench_function("front_lemma1_instance", |b| {
        let inst = lemma1_instance(1e-3);
        b.iter(|| black_box(pareto_front(black_box(&inst))))
    });

    // Larger adversarial instances stress the exhaustive enumerator that
    // the figure relies on (the Lemma 2 family generalizes Figure 1).
    for &(m, k) in &[(2usize, 3usize), (2, 5), (3, 3)] {
        let inst = lemma2_instance(m, k, 1e-3);
        group.bench_with_input(
            BenchmarkId::new("front_lemma2_instance", format!("m{m}_k{k}_n{}", inst.n())),
            &inst,
            |b, inst| b.iter(|| black_box(pareto_front(black_box(inst)))),
        );
    }

    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
