//! Warm-started incremental ∆-sweeps vs the from-scratch serial loops:
//! the perf story of the checkpoint/resume rework, measured.
//!
//! Groups:
//!
//! * `rls_sweep_warm_vs_cold` — the acceptance point of the rework, a
//!   1000-point RLS∆ front on a layered DAG (n = 2 500, m = 8), plus a
//!   smaller 100-point front; `cold` runs the retained from-scratch
//!   oracle (`rls_sweep_cold`, one full kernel run per grid point),
//!   `warm` the checkpoint/resume chains (`rls_sweep`). Outputs are
//!   bit-identical (tests/differential_sweep.rs), so the ratio is pure
//!   amortization.
//! * `sbo_sweep_warm_vs_cold` — 1000-point SBO∆ front on independent
//!   tasks (n = 2 000, m = 8): the engine computes the two inner LPT
//!   schedules once instead of once per grid point.
//!
//! Regenerate the committed baseline with:
//!
//! ```text
//! SWS_BENCH_JSON=$(pwd)/BENCH_sweep.json cargo bench --bench sweep_warm_vs_cold
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sws_core::pareto_sweep::{rls_sweep, rls_sweep_cold, sbo_sweep, sbo_sweep_cold};
use sws_core::rls::RlsConfig;
use sws_core::sbo::InnerAlgorithm;
use sws_dag::DagInstance;
use sws_workloads::dagsets::{dag_workload, DagFamily};
use sws_workloads::random::random_instance;
use sws_workloads::rng::seeded_rng;
use sws_workloads::TaskDistribution;

fn layered(n: usize, m: usize, seed: u64) -> DagInstance {
    dag_workload(
        DagFamily::LayeredRandom,
        n,
        m,
        TaskDistribution::Uncorrelated,
        &mut seeded_rng(seed),
    )
}

fn bench_rls_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("rls_sweep_warm_vs_cold");

    let inst = layered(2_500, 8, 0x5AFE);
    let cfg = RlsConfig::new(3.0);

    group.sample_size(10);
    for &samples in &[100usize, 1_000] {
        group.bench_with_input(
            BenchmarkId::new("warm", format!("{samples}pts_2500x8")),
            &inst,
            |b, inst| {
                b.iter(|| black_box(rls_sweep(black_box(inst), &cfg, 2.1, 16.0, samples).unwrap()))
            },
        );
    }
    // The cold oracle costs one full kernel run per grid point (~0.5 s
    // per iteration at 1 000 points); few samples suffice — the measured
    // quantity is an order-of-magnitude ratio.
    group.sample_size(5);
    for &samples in &[100usize, 1_000] {
        group.bench_with_input(
            BenchmarkId::new("cold", format!("{samples}pts_2500x8")),
            &inst,
            |b, inst| {
                b.iter(|| {
                    black_box(rls_sweep_cold(black_box(inst), &cfg, 2.1, 16.0, samples).unwrap())
                })
            },
        );
    }

    group.finish();
}

fn bench_sbo_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sbo_sweep_warm_vs_cold");

    let inst = random_instance(
        2_000,
        8,
        TaskDistribution::AntiCorrelated,
        &mut seeded_rng(0x5B0),
    );

    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("warm", "1000pts_2000x8"),
        &inst,
        |b, inst| {
            b.iter(|| {
                black_box(
                    sbo_sweep(black_box(inst), InnerAlgorithm::Lpt, 0.125, 8.0, 1_000).unwrap(),
                )
            })
        },
    );
    group.sample_size(5);
    group.bench_with_input(
        BenchmarkId::new("cold", "1000pts_2000x8"),
        &inst,
        |b, inst| {
            b.iter(|| {
                black_box(
                    sbo_sweep_cold(black_box(inst), InnerAlgorithm::Lpt, 0.125, 8.0, 1_000)
                        .unwrap(),
                )
            })
        },
    );

    group.finish();
}

criterion_group!(benches, bench_rls_sweep, bench_sbo_sweep);
criterion_main!(benches);
