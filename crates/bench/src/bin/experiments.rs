//! Runs the measured-ratio experiments E1–E5 and prints their tables.
//!
//! ```text
//! cargo run -p sws-bench --release --bin experiments -- [e1|e1c|e2|e3|e4|e5|all] [--smoke] [--out DIR]
//! ```
//!
//! `--smoke` switches every experiment to its reduced grid (used by CI and
//! the integration tests); `e1c` runs the Corollary 1 (PTAS-based) variant
//! of E1. Without arguments every experiment runs on its full grid and CSV
//! files are written under `results/`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use sws_bench::{e1_sbo, e2_rls, e3_tri, e4_constrained, e5_scaling};
use sws_bench::{render_table, write_csv, Table};

struct Args {
    which: Vec<String>,
    smoke: bool,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut which = Vec::new();
    let mut smoke = false;
    let mut out = Some(PathBuf::from("results"));
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "e1" | "e1c" | "e2" | "e3" | "e4" | "e5" | "all" => which.push(arg),
            "--smoke" => smoke = true,
            "--out" => {
                let dir = args.next().ok_or("--out requires a directory argument")?;
                out = Some(PathBuf::from(dir));
            }
            "--no-csv" => out = None,
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if which.is_empty() {
        which.push("all".to_string());
    }
    Ok(Args { which, smoke, out })
}

fn wants(args: &Args, id: &str) -> bool {
    args.which.iter().any(|w| w == id || w == "all")
}

fn emit(table: &Table, out: &Option<PathBuf>) {
    print!("{}", render_table(table));
    if let Some(dir) = out {
        match write_csv(table, dir) {
            Ok(path) => println!("(csv written to {})\n", path.display()),
            Err(err) => eprintln!("warning: could not write CSV: {err}"),
        }
    } else {
        println!();
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: experiments [e1|e1c|e2|e3|e4|e5|all] [--smoke] [--out DIR] [--no-csv]"
            );
            return ExitCode::FAILURE;
        }
    };
    let mut all_within = true;

    if wants(&args, "e1") {
        let cfg = if args.smoke {
            e1_sbo::E1Config::smoke()
        } else {
            e1_sbo::E1Config::default()
        };
        println!(
            "Running E1 (SBO ratio sweep, {} cells)…",
            grid_size_e1(&cfg)
        );
        let rows = e1_sbo::run(&cfg);
        all_within &= rows.iter().all(|r| r.within_guarantee);
        emit(&e1_sbo::to_table(&rows), &args.out);
    }

    if wants(&args, "e1c") {
        let mut cfg = e1_sbo::E1Config::corollary1(0.2);
        if args.smoke {
            cfg.task_counts = vec![15];
            cfg.processor_counts = vec![2];
            cfg.replications = 1;
        }
        println!("Running E1c (Corollary 1, PTAS inner algorithms)…");
        let rows = e1_sbo::run(&cfg);
        all_within &= rows.iter().all(|r| r.within_guarantee);
        let mut table = e1_sbo::to_table(&rows);
        table.title = "E1c SBO with PTAS inner algorithms".to_string();
        emit(&table, &args.out);
    }

    if wants(&args, "e2") {
        let cfg = if args.smoke {
            e2_rls::E2Config::smoke()
        } else {
            e2_rls::E2Config::default()
        };
        println!("Running E2 (RLS DAG sweep)…");
        let rows = e2_rls::run(&cfg);
        all_within &= rows.iter().all(|r| r.within_guarantee);
        emit(&e2_rls::to_table(&rows), &args.out);
    }

    if wants(&args, "e3") {
        let cfg = if args.smoke {
            e3_tri::E3Config::smoke()
        } else {
            e3_tri::E3Config::default()
        };
        println!("Running E3 (tri-objective sweep)…");
        let rows = e3_tri::run(&cfg);
        all_within &= rows.iter().all(|r| r.within_guarantee);
        emit(&e3_tri::to_table(&rows), &args.out);
    }

    if wants(&args, "e4") {
        let cfg = if args.smoke {
            e4_constrained::E4Config::smoke()
        } else {
            e4_constrained::E4Config::default()
        };
        println!("Running E4 (constrained memory budgets)…");
        let results = e4_constrained::run(&cfg);
        emit(
            &e4_constrained::independent_table(&results.independent),
            &args.out,
        );
        emit(&e4_constrained::dag_table(&results.dag), &args.out);
    }

    if wants(&args, "e5") {
        let cfg = if args.smoke {
            e5_scaling::E5Config::smoke()
        } else {
            e5_scaling::E5Config::default()
        };
        println!("Running E5 (runtime scaling)…");
        let rows = e5_scaling::run(&cfg);
        emit(&e5_scaling::to_table(&rows), &args.out);
    }

    println!(
        "All proven guarantees respected across the measured grids: {}",
        if all_within { "yes" } else { "NO" }
    );
    if all_within {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn grid_size_e1(cfg: &e1_sbo::E1Config) -> usize {
    cfg.distributions.len()
        * cfg.inners.len()
        * cfg.task_counts.len()
        * cfg.processor_counts.len()
        * cfg.deltas.len()
}
