//! `bench_compare` — the CI regression gate for kernel benchmarks.
//!
//! Compares a freshly generated bench JSON (the criterion shim's
//! `SWS_BENCH_JSON` format) against a committed baseline and fails —
//! exit code 1 — when any matching row's median regressed by more than
//! the threshold:
//!
//! ```text
//! bench_compare <fresh.json> <baseline.json> \
//!     [--filter /kernel/] [--threshold-pct 20] [--report out.txt]
//! ```
//!
//! Only rows whose id contains the filter substring (default
//! `/kernel/`, i.e. the kernel serving-path rows, not the naive-oracle
//! or sweep rows) participate. Rows present in only one file are
//! reported but never fail the gate: quick mode intentionally skips the
//! slow rows, and new rows have no baseline yet. The human-readable
//! comparison table goes to stdout and, with `--report`, to a file CI
//! uploads as an artifact.
//!
//! The parser handles exactly the shim's writer output (one record per
//! line, fixed key order) — it is a deliberate non-goal to parse
//! general JSON here, since both inputs come from the same writer.

use std::process::ExitCode;

/// One bench row: id and median (the compared statistic).
struct Row {
    id: String,
    median_ns: u64,
}

/// Extracts the string value of `"key": "..."` from a record line.
fn str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extracts the integer value of `"key": N` from a record line.
fn int_field(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Parses the shim's JSON array: one `{...}` record per line.
fn parse_records(text: &str) -> Vec<Row> {
    text.lines()
        .filter_map(|line| {
            let line = line.trim().trim_end_matches(',');
            if !line.starts_with('{') {
                return None;
            }
            Some(Row {
                id: str_field(line, "id")?,
                median_ns: int_field(line, "median_ns")?,
            })
        })
        .collect()
}

fn load(path: &str) -> Result<Vec<Row>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let rows = parse_records(&text);
    if rows.is_empty() {
        return Err(format!("{path}: no bench records found"));
    }
    Ok(rows)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut filter = "/kernel/".to_string();
    let mut threshold_pct = 20.0f64;
    let mut report_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--filter" => filter = it.next().expect("--filter needs a value").clone(),
            "--threshold-pct" => {
                threshold_pct = it
                    .next()
                    .expect("--threshold-pct needs a value")
                    .parse()
                    .expect("--threshold-pct must be a number")
            }
            "--report" => report_path = it.next().cloned(),
            _ => positional.push(a.clone()),
        }
    }
    if positional.len() != 2 {
        eprintln!(
            "usage: bench_compare <fresh.json> <baseline.json> \
             [--filter SUBSTR] [--threshold-pct N] [--report FILE]"
        );
        return ExitCode::from(2);
    }

    let (fresh, baseline) = match (load(&positional[0]), load(&positional[1])) {
        (Ok(f), Ok(b)) => (f, b),
        (f, b) => {
            for e in [f.err(), b.err()].into_iter().flatten() {
                eprintln!("bench_compare: {e}");
            }
            return ExitCode::from(2);
        }
    };

    let mut out = String::new();
    out.push_str(&format!(
        "bench_compare: rows matching {:?}, gate at +{threshold_pct:.0}% median\n\n",
        filter
    ));
    out.push_str(&format!(
        "{:<45} {:>12} {:>12} {:>8}  verdict\n",
        "id", "base ns", "fresh ns", "delta"
    ));

    let mut regressions = 0usize;
    for row in fresh.iter().filter(|r| r.id.contains(&filter)) {
        match baseline.iter().find(|b| b.id == row.id) {
            Some(base) => {
                let delta_pct =
                    (row.median_ns as f64 - base.median_ns as f64) / base.median_ns as f64 * 100.0;
                let verdict = if delta_pct > threshold_pct {
                    regressions += 1;
                    "REGRESSED"
                } else {
                    "ok"
                };
                out.push_str(&format!(
                    "{:<45} {:>12} {:>12} {:>+7.1}%  {}\n",
                    row.id, base.median_ns, row.median_ns, delta_pct, verdict
                ));
            }
            None => {
                out.push_str(&format!(
                    "{:<45} {:>12} {:>12} {:>8}  new (no baseline)\n",
                    row.id, "-", row.median_ns, "-"
                ));
            }
        }
    }
    for base in baseline.iter().filter(|b| b.id.contains(&filter)) {
        if !fresh.iter().any(|r| r.id == base.id) {
            out.push_str(&format!(
                "{:<45} {:>12} {:>12} {:>8}  missing from fresh run\n",
                base.id, base.median_ns, "-", "-"
            ));
        }
    }

    out.push_str(&format!(
        "\n{} row(s) over the +{threshold_pct:.0}% gate\n",
        regressions
    ));
    print!("{out}");
    if let Some(path) = report_path {
        if let Err(e) = std::fs::write(&path, &out) {
            eprintln!("bench_compare: could not write report {path}: {e}");
        }
    }
    if regressions > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"[
  {"id": "g/kernel/10", "samples": 10, "min_ns": 1, "median_ns": 100, "mean_ns": 2, "throughput_elements": 10},
  {"id": "g/naive/10", "samples": 10, "min_ns": 1, "median_ns": 900, "mean_ns": 2, "throughput_elements": null}
]"#;

    #[test]
    fn parses_the_shim_writer_format() {
        let rows = parse_records(SAMPLE);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].id, "g/kernel/10");
        assert_eq!(rows[0].median_ns, 100);
        assert_eq!(rows[1].median_ns, 900);
    }
}
