//! Regenerates the paper's three figures as ASCII tables, Gantt charts and
//! CSV files.
//!
//! ```text
//! cargo run -p sws-bench --release --bin figures -- [fig1|fig2|fig3|all] [--out DIR]
//! ```
//!
//! Without arguments every figure is regenerated and CSV files are written
//! under `results/`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use sws_bench::figures::{figure1, figure2, figure3, sbo_reference_deltas};
use sws_bench::{render_table, write_csv};

struct Args {
    which: String,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut which = "all".to_string();
    let mut out = Some(PathBuf::from("results"));
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "fig1" | "fig2" | "fig3" | "all" => which = arg,
            "--out" => {
                let dir = args.next().ok_or("--out requires a directory argument")?;
                out = Some(PathBuf::from(dir));
            }
            "--no-csv" => out = None,
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(Args { which, out })
}

fn emit(table: &sws_bench::Table, out: &Option<PathBuf>) {
    print!("{}", render_table(table));
    if let Some(dir) = out {
        match write_csv(table, dir) {
            Ok(path) => println!("(csv written to {})\n", path.display()),
            Err(err) => eprintln!("warning: could not write CSV: {err}"),
        }
    } else {
        println!();
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("usage: figures [fig1|fig2|fig3|all] [--out DIR] [--no-csv]");
            return ExitCode::FAILURE;
        }
    };

    if args.which == "fig1" || args.which == "all" {
        let fig = figure1(1e-3);
        println!(
            "Reproducing Figure 1 (Section 4.1 instance, eps = {}):\n",
            fig.eps
        );
        emit(&fig.table(), &args.out);
        for (i, entry) in fig.entries.iter().enumerate() {
            println!(
                "Pareto schedule P{i} (Cmax = {:.3}, Mmax = {:.3}):",
                entry.cmax, entry.mmax
            );
            println!("{}", entry.gantt);
        }
        println!(
            "matches the paper's stated points: {}\n",
            if fig.matches_paper(1e-9) { "yes" } else { "NO" }
        );
    }

    if args.which == "fig2" || args.which == "all" {
        let fig = figure2(0.25);
        println!(
            "Reproducing Figure 2 (Section 4.3 instance, eps = {}):\n",
            fig.eps
        );
        emit(&fig.table(), &args.out);
        for (i, entry) in fig.entries.iter().enumerate() {
            println!(
                "Pareto schedule P{i} (Cmax = {:.3}, Mmax = {:.3}):",
                entry.cmax, entry.mmax
            );
            println!("{}", entry.gantt);
        }
        println!(
            "matches the paper's stated points: {}\n",
            if fig.matches_paper(1e-9) { "yes" } else { "NO" }
        );
    }

    if args.which == "fig3" || args.which == "all" {
        let fig = figure3(6, 64, 0.125, 8.0);
        println!("Reproducing Figure 3 (impossibility domain, m = 2..6, SBO curve):\n");
        println!("{}", fig.ascii_plot(72, 24, 4.5, 3.5));
        for &delta in &sbo_reference_deltas() {
            println!(
                "  SBO guarantee at ∆ = {delta}: ({:.3}, {:.3})",
                1.0 + delta,
                1.0 + 1.0 / delta
            );
        }
        println!(
            "SBO curve stays outside the impossibility domain: {}",
            if fig.sbo_curve_outside_domain(6, 64) {
                "yes"
            } else {
                "NO"
            }
        );
        emit(&fig.table(), &args.out);
    }

    ExitCode::SUCCESS
}
