//! Regeneration of the paper's three figures.
//!
//! * **Figure 1** — the two Pareto-optimal schedules of the Section 4.1
//!   instance (`p = [1, ½, ½]`, `s = [ε, 1, 1]`, two processors), with
//!   objective points `(1, 2)` and `(3/2, 1 + ε)`;
//! * **Figure 2** — the three Pareto-optimal schedules of the Section 4.3
//!   instance (`p = [1, ε, 1 − ε]`, `s = [ε, 1, 1 − ε]`), with points
//!   `(1, 2 − ε)`, `(1 + ε, 1 + ε)` and `(2 − ε, 1)`;
//! * **Figure 3** — the impossibility domain in ratio space: the Lemma 2
//!   staircases for `m = 2..6`, the Lemma 3 point `(3/2, 3/2)` and the
//!   dashed SBO∆ trade-off curve `(1 + ∆, 1 + 1/∆)`.
//!
//! Figures 1 and 2 are regenerated *from scratch*: the exhaustive
//! bi-objective enumerator of `sws-exact` recomputes the Pareto fronts of
//! the adversarial instances and the simulator renders each front
//! schedule as an ASCII Gantt chart.

use serde::Serialize;

use sws_core::prelude::*;
use sws_exact::pareto_enum::pareto_front;
use sws_simulator::gantt::GanttOptions;
use sws_simulator::render_gantt;
use sws_workloads::{lemma1_instance, lemma3_instance};

use crate::table::{fmt4, Table};

/// One Pareto-front entry of Figure 1 or Figure 2: the objective point,
/// the expected value from the paper and the ASCII Gantt rendering.
#[derive(Debug, Clone, Serialize)]
pub struct FrontEntry {
    /// Achieved makespan.
    pub cmax: f64,
    /// Achieved maximum memory.
    pub mmax: f64,
    /// The paper's stated value for this point.
    pub expected: (f64, f64),
    /// ASCII Gantt chart of the schedule achieving the point.
    #[serde(skip)]
    pub gantt: String,
}

/// The regenerated data of Figure 1 or Figure 2.
#[derive(Debug, Clone)]
pub struct ParetoFigure {
    /// Which paper figure this reproduces (1 or 2).
    pub figure: u8,
    /// The `ε` used to instantiate the adversarial instance.
    pub eps: f64,
    /// The Pareto-front entries, sorted by increasing makespan.
    pub entries: Vec<FrontEntry>,
}

impl ParetoFigure {
    /// True when every recomputed point matches the paper's value within
    /// `tol`.
    pub fn matches_paper(&self, tol: f64) -> bool {
        self.entries
            .iter()
            .all(|e| (e.cmax - e.expected.0).abs() <= tol && (e.mmax - e.expected.1).abs() <= tol)
    }

    /// The objective points as a table for the binaries.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!("Figure {} Pareto front (eps={})", self.figure, self.eps),
            &["point", "Cmax", "Mmax", "paper Cmax", "paper Mmax"],
        );
        for (i, e) in self.entries.iter().enumerate() {
            t.push_row(vec![
                format!("P{i}"),
                fmt4(e.cmax),
                fmt4(e.mmax),
                fmt4(e.expected.0),
                fmt4(e.expected.1),
            ]);
        }
        t
    }
}

/// Regenerates Figure 1: the Pareto front of the first adversarial
/// instance, with Gantt charts.
pub fn figure1(eps: f64) -> ParetoFigure {
    let inst = lemma1_instance(eps);
    let expected = vec![(1.0, 2.0), (1.5, 1.0 + eps)];
    pareto_figure(1, eps, &inst, &expected)
}

/// Regenerates Figure 2: the Pareto front of the second adversarial
/// instance, with Gantt charts.
pub fn figure2(eps: f64) -> ParetoFigure {
    let inst = lemma3_instance(eps);
    let expected = vec![(1.0, 2.0 - eps), (1.0 + eps, 1.0 + eps), (2.0 - eps, 1.0)];
    pareto_figure(2, eps, &inst, &expected)
}

fn pareto_figure(figure: u8, eps: f64, inst: &Instance, expected: &[(f64, f64)]) -> ParetoFigure {
    let front = pareto_front(inst);
    let mut entries: Vec<FrontEntry> = front
        .into_sorted()
        .into_iter()
        .map(|(pt, asg)| {
            let timed = asg.into_timed(inst.tasks());
            let gantt = render_gantt(inst.tasks(), &timed, &GanttOptions::default());
            FrontEntry {
                cmax: pt.cmax,
                mmax: pt.mmax,
                expected: (0.0, 0.0),
                gantt,
            }
        })
        .collect();
    entries.sort_by(|a, b| sws_model::numeric::total_cmp(a.cmax, b.cmax));
    // Attach the paper's expected values positionally (both lists are
    // sorted by makespan).
    for (entry, &exp) in entries.iter_mut().zip(expected) {
        entry.expected = exp;
    }
    ParetoFigure {
        figure,
        eps,
        entries,
    }
}

/// One series of Figure 3.
#[derive(Debug, Clone, Serialize)]
pub struct Figure3Series {
    /// Series label (`"lemma2 m=3"`, `"lemma3"`, `"sbo"`).
    pub label: String,
    /// `(Cmax ratio, Mmax ratio)` samples.
    pub points: Vec<(f64, f64)>,
}

/// The regenerated data of Figure 3: one staircase per processor count,
/// the Lemma 3 point and the SBO∆ trade-off curve.
#[derive(Debug, Clone)]
pub struct Figure3 {
    /// All series, in plotting order.
    pub series: Vec<Figure3Series>,
}

/// Regenerates Figure 3 with Lemma 2 staircases for `m ∈ [2, max_m]` and
/// granularity `k`, and the SBO curve sampled over `∆ ∈ [delta_min,
/// delta_max]`.
pub fn figure3(max_m: usize, k: usize, delta_min: f64, delta_max: f64) -> Figure3 {
    let mut series = Vec::new();
    for m in 2..=max_m.max(2) {
        series.push(Figure3Series {
            label: format!("lemma2 m={m}"),
            points: impossibility_frontier(m, k),
        });
    }
    series.push(Figure3Series {
        label: "lemma3".to_string(),
        points: vec![lemma3_point()],
    });
    series.push(Figure3Series {
        label: "sbo".to_string(),
        points: sbo_tradeoff_curve(delta_min, delta_max, 65),
    });
    Figure3 { series }
}

impl Figure3 {
    /// Flattens every series into one long table (label, x, y).
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 3 impossibility domain and SBO trade-off",
            &["series", "cmax_ratio", "mmax_ratio"],
        );
        for s in &self.series {
            for &(x, y) in &s.points {
                t.push_row(vec![s.label.clone(), fmt4(x), fmt4(y)]);
            }
        }
        t
    }

    /// A coarse ASCII scatter plot of the figure (ratio space
    /// `[1, x_max] × [1, y_max]`), good enough to eyeball the domain shape
    /// in a terminal.
    pub fn ascii_plot(&self, cols: usize, rows: usize, x_max: f64, y_max: f64) -> String {
        assert!(cols >= 10 && rows >= 5, "plot needs a reasonable canvas");
        let mut canvas = vec![vec![' '; cols]; rows];
        for (si, s) in self.series.iter().enumerate() {
            let glyph = match s.label.as_str() {
                "sbo" => '*',
                "lemma3" => 'O',
                _ => char::from(b'2' + (si as u8 % 5)),
            };
            for &(x, y) in &s.points {
                if x > x_max || y > y_max || x < 1.0 || y < 1.0 {
                    continue;
                }
                let cx = ((x - 1.0) / (x_max - 1.0) * (cols - 1) as f64).round() as usize;
                let cy = ((y - 1.0) / (y_max - 1.0) * (rows - 1) as f64).round() as usize;
                canvas[rows - 1 - cy][cx] = glyph;
            }
        }
        let mut out = String::new();
        out.push_str(&format!(
            "Mmax ratio 1..{y_max:.1} (vertical), Cmax ratio 1..{x_max:.1} (horizontal)\n",
        ));
        for row in canvas {
            out.push('|');
            out.extend(row);
            out.push('\n');
        }
        out.push('+');
        out.push_str(&"-".repeat(cols));
        out.push('\n');
        out
    }

    /// Verifies that the SBO curve never enters the impossibility domain
    /// spanned by the staircases (the paper's Figure 3 shows the dashed
    /// curve outside the shaded region).
    pub fn sbo_curve_outside_domain(&self, max_m: usize, k: usize) -> bool {
        self.series
            .iter()
            .find(|s| s.label == "sbo")
            .map(|s| {
                s.points
                    .iter()
                    .all(|&(x, y)| !violates_impossibility(x, y, max_m, k))
            })
            .unwrap_or(true)
    }

    /// Summary of Figure 3's series for experiment logs: label and number
    /// of points.
    pub fn summary(&self) -> Vec<(String, usize)> {
        self.series
            .iter()
            .map(|s| (s.label.clone(), s.points.len()))
            .collect()
    }
}

/// The ∆ parameters the figures binary quotes alongside the SBO curve,
/// matching the paper's observation that the curve comes closest to the
/// impossibility domain around `∆ = 1` (the `(2, 2)` point).
pub fn sbo_reference_deltas() -> [f64; 5] {
    [0.25, 0.5, 1.0, 2.0, 4.0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_reproduces_the_paper_points() {
        let fig = figure1(1e-3);
        assert_eq!(fig.entries.len(), 2);
        assert!(fig.matches_paper(1e-9), "{:?}", fig.table());
        assert!(fig.entries[0].gantt.contains("t0"));
    }

    #[test]
    fn figure2_reproduces_the_paper_points() {
        let fig = figure2(0.25);
        assert_eq!(fig.entries.len(), 3);
        assert!(fig.matches_paper(1e-9));
        // The middle point is (1 + ε, 1 + ε).
        assert!((fig.entries[1].cmax - 1.25).abs() < 1e-9);
        assert!((fig.entries[1].mmax - 1.25).abs() < 1e-9);
    }

    #[test]
    fn figure2_middle_point_disappears_for_eps_above_one_half() {
        // The paper remarks the (1+ε, 1+ε) point is Pareto optimal only
        // for ε < 1/2; the instance constructor enforces that domain.
        assert!(std::panic::catch_unwind(|| figure2(0.7)).is_err());
    }

    #[test]
    fn figure3_contains_the_expected_series() {
        let fig = figure3(6, 16, 0.25, 4.0);
        let labels: Vec<String> = fig.summary().iter().map(|(l, _)| l.clone()).collect();
        assert!(labels.contains(&"lemma2 m=2".to_string()));
        assert!(labels.contains(&"lemma2 m=6".to_string()));
        assert!(labels.contains(&"lemma3".to_string()));
        assert!(labels.contains(&"sbo".to_string()));
        assert!(fig.sbo_curve_outside_domain(6, 16));
        assert_eq!(fig.table().header.len(), 3);
    }

    #[test]
    fn figure3_ascii_plot_has_the_requested_size() {
        let fig = figure3(3, 8, 0.5, 2.0);
        let plot = fig.ascii_plot(40, 12, 4.0, 4.0);
        let lines: Vec<&str> = plot.lines().collect();
        // 1 header + 12 canvas rows + 1 axis line.
        assert_eq!(lines.len(), 14);
        assert!(lines[1].len() >= 41);
        assert!(plot.contains('*'), "SBO curve must appear in the plot");
    }

    #[test]
    fn figure_tables_round_trip_to_csv() {
        let t = figure1(1e-3).table();
        let csv = t.to_csv();
        assert!(csv.lines().count() == 3);
        assert!(csv.starts_with("point,Cmax"));
    }
}
