//! Experiment E2 — empirical check of Corollaries 2–3 and Lemma 4:
//! achieved ratios of RLS∆ on precedence-constrained workloads as a
//! function of `∆`, `m` and the DAG family, plus the marked-processor
//! accounting against the `⌊m/(∆−1)⌋` bound.
//!
//! The makespan reference is the precedence-aware Graham lower bound
//! `max(Σp_i/m, critical path, max_i p_i)` and the memory reference is
//! `LB = max(max_i s_i, Σs_i/m)` — both are lower bounds on the optimum,
//! so achieved ratios are upper bounds on the true approximation ratios
//! and must stay below the proven guarantees.

use rayon::prelude::*;
use serde::Serialize;

use sws_core::pipeline::evaluate_rls_result;
use sws_core::rls::{PriorityOrder, RlsEngine};
use sws_workloads::dagsets::{dag_workload, DagFamily};
use sws_workloads::rng::{derive_seed, seeded_rng};
use sws_workloads::TaskDistribution;

use crate::table::{fmt2, fmt4, Table};
use crate::BASE_SEED;

/// Parameter grid of experiment E2.
#[derive(Debug, Clone)]
pub struct E2Config {
    /// DAG families to sweep.
    pub families: Vec<DagFamily>,
    /// Approximate task counts.
    pub task_counts: Vec<usize>,
    /// Processor counts.
    pub processor_counts: Vec<usize>,
    /// ∆ values (all > 2).
    pub deltas: Vec<f64>,
    /// Task-cost distribution for the random families.
    pub distribution: TaskDistribution,
    /// Tie-breaking order.
    pub order: PriorityOrder,
    /// Independent replications per cell.
    pub replications: usize,
}

impl Default for E2Config {
    fn default() -> Self {
        E2Config {
            families: DagFamily::all().to_vec(),
            task_counts: vec![100, 400],
            processor_counts: vec![2, 4, 8, 16],
            deltas: vec![2.25, 2.5, 3.0, 4.0, 6.0],
            distribution: TaskDistribution::Uncorrelated,
            order: PriorityOrder::BottomLevel,
            replications: 3,
        }
    }
}

impl E2Config {
    /// A small grid for tests and smoke runs.
    pub fn smoke() -> Self {
        E2Config {
            families: vec![DagFamily::LayeredRandom, DagFamily::GaussianElimination],
            task_counts: vec![60],
            processor_counts: vec![2, 4],
            deltas: vec![2.5, 4.0],
            distribution: TaskDistribution::AntiCorrelated,
            order: PriorityOrder::BottomLevel,
            replications: 2,
        }
    }
}

/// One averaged cell of experiment E2.
#[derive(Debug, Clone, Serialize)]
pub struct E2Row {
    /// DAG family label.
    pub family: String,
    /// Approximate number of tasks requested.
    pub n_target: usize,
    /// Actual number of tasks of the generated instance (first replication).
    pub n_actual: usize,
    /// Number of processors.
    pub m: usize,
    /// The memory degradation parameter ∆.
    pub delta: f64,
    /// Mean achieved `Cmax` ratio (vs the precedence-aware lower bound).
    pub cmax_ratio: f64,
    /// Mean achieved `Mmax` ratio (vs the Graham memory bound).
    pub mmax_ratio: f64,
    /// Worst achieved `Cmax` ratio.
    pub worst_cmax_ratio: f64,
    /// The proven guarantee on `Cmax` (Corollary 3).
    pub guarantee_cmax: f64,
    /// Mean number of marked processors.
    pub marked_mean: f64,
    /// The Lemma 4 bound `⌊m/(∆−1)⌋`.
    pub marked_bound: usize,
    /// True when every replication respected both guarantees and the
    /// marked-processor bound.
    pub within_guarantee: bool,
}

/// Runs experiment E2 over the configured grid. Cells — one per
/// `(family, n, m)` — are independent (each derives its own seeds), so
/// they fan out across all cores; within a cell each replication's
/// instance walks the whole ∆ grid as **one warm-started
/// [`RlsEngine`] chain** instead of re-running the kernel from scratch
/// per ∆ (the configured grids are ascending, so the chain warm-starts
/// every step). The flattened row order and every reported number match
/// the old per-∆ serial loops.
pub fn run(config: &E2Config) -> Vec<E2Row> {
    let mut cells = Vec::new();
    for &family in &config.families {
        for &n in &config.task_counts {
            for &m in &config.processor_counts {
                cells.push((family, n, m));
            }
        }
    }
    let per_cell: Vec<Vec<E2Row>> = cells
        .into_par_iter()
        .map(|(family, n, m)| run_cell(config, family, n, m))
        .collect();
    per_cell.into_iter().flatten().collect()
}

/// Per-∆ accumulator of one cell.
#[derive(Clone)]
struct DeltaAccumulator {
    cmax_ratios: Vec<f64>,
    mmax_ratios: Vec<f64>,
    marked_counts: Vec<f64>,
    within: bool,
    guarantee_cmax: f64,
    marked_bound: usize,
}

fn run_cell(config: &E2Config, family: DagFamily, n: usize, m: usize) -> Vec<E2Row> {
    let mut accs = vec![
        DeltaAccumulator {
            cmax_ratios: Vec::new(),
            mmax_ratios: Vec::new(),
            marked_counts: Vec::new(),
            within: true,
            guarantee_cmax: 0.0,
            marked_bound: 0,
        };
        config.deltas.len()
    ];
    let mut n_actual = 0usize;
    for rep in 0..config.replications {
        let seed = derive_seed(BASE_SEED ^ 0xE2, (n * 100 + m * 10 + rep) as u64);
        let inst = dag_workload(family, n, m, config.distribution, &mut seeded_rng(seed));
        if rep == 0 {
            n_actual = inst.n();
        }
        let mut engine = RlsEngine::new(&inst, config.order);
        for (acc, &delta) in accs.iter_mut().zip(&config.deltas) {
            let result = engine.run(delta).expect("∆ > 2 by construction");
            let (report, result) =
                evaluate_rls_result(&inst, result).expect("∆ > 2 by construction");
            acc.cmax_ratios.push(report.ratio.cmax_ratio);
            acc.mmax_ratios.push(report.ratio.mmax_ratio);
            acc.marked_counts.push(result.marked_count() as f64);
            acc.marked_bound = result.marked_bound();
            acc.guarantee_cmax = report.ratio.guarantee.map(|(gc, _)| gc).unwrap_or(0.0);
            acc.within &=
                report.within_guarantee() && result.marked_count() <= result.marked_bound();
        }
    }
    accs.into_iter()
        .zip(&config.deltas)
        .map(|(acc, &delta)| E2Row {
            family: family.label().to_string(),
            n_target: n,
            n_actual,
            m,
            delta,
            cmax_ratio: mean(&acc.cmax_ratios),
            mmax_ratio: mean(&acc.mmax_ratios),
            worst_cmax_ratio: acc.cmax_ratios.iter().cloned().fold(0.0, f64::max),
            guarantee_cmax: acc.guarantee_cmax,
            marked_mean: mean(&acc.marked_counts),
            marked_bound: acc.marked_bound,
            within_guarantee: acc.within,
        })
        .collect()
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Renders E2 rows as a table.
pub fn to_table(rows: &[E2Row]) -> Table {
    let mut t = Table::new(
        "E2 RLS DAG sweep",
        &[
            "family",
            "n_target",
            "n",
            "m",
            "delta",
            "cmax_ratio",
            "mmax_ratio",
            "worst_cmax",
            "guar_cmax",
            "marked_mean",
            "marked_bound",
            "within",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.family.clone(),
            r.n_target.to_string(),
            r.n_actual.to_string(),
            r.m.to_string(),
            fmt2(r.delta),
            fmt4(r.cmax_ratio),
            fmt4(r.mmax_ratio),
            fmt4(r.worst_cmax_ratio),
            fmt4(r.guarantee_cmax),
            fmt2(r.marked_mean),
            r.marked_bound.to_string(),
            r.within_guarantee.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_respects_all_bounds() {
        let rows = run(&E2Config::smoke());
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.within_guarantee, "guarantee or Lemma 4 violated: {r:?}");
            assert!(r.cmax_ratio >= 1.0 - 1e-9);
            assert!(
                r.mmax_ratio <= r.delta + 1e-9,
                "memory ratio above ∆: {r:?}"
            );
            assert!(r.marked_mean <= r.marked_bound as f64 + 1e-9);
        }
    }

    #[test]
    fn guarantee_tightens_as_delta_grows() {
        let rows = run(&E2Config::smoke());
        let tight: Vec<&E2Row> = rows.iter().filter(|r| r.delta == 2.5).collect();
        let loose: Vec<&E2Row> = rows.iter().filter(|r| r.delta == 4.0).collect();
        for (t, l) in tight.iter().zip(&loose) {
            assert!(
                t.guarantee_cmax > l.guarantee_cmax,
                "Cmax guarantee must improve as ∆ grows (more memory slack)"
            );
        }
    }

    #[test]
    fn table_round_trips() {
        let rows = run(&E2Config::smoke());
        let t = to_table(&rows);
        assert_eq!(t.len(), rows.len());
        assert!(t.to_csv().starts_with("family,"));
    }
}
