//! ASCII-table and CSV rendering shared by the experiment binaries.
//!
//! Every experiment produces a [`Table`]: a header row plus data rows of
//! strings. The binaries print the ASCII rendering to stdout and, when an
//! output directory is given, also write the same rows as a CSV file so
//! EXPERIMENTS.md can reference machine-readable artifacts.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A rectangular table of already-formatted cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table title, used as the CSV file stem and printed above the table.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows; every row must have `header.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (panics when the arity does not match the header).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row arity {} does not match header arity {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table rendered as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&csv_line(&self.header));
        for row in &self.rows {
            out.push_str(&csv_line(row));
        }
        out
    }
}

fn csv_line(cells: &[String]) -> String {
    let escaped: Vec<String> = cells
        .iter()
        .map(|c| {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        })
        .collect();
    format!("{}\n", escaped.join(","))
}

/// Renders the table with aligned columns, a title line and a separator.
pub fn render_table(table: &Table) -> String {
    let mut widths: Vec<usize> = table.header.iter().map(|h| h.len()).collect();
    for row in &table.rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== {} ==", table.title);
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let _ = writeln!(out, "{}", fmt_row(&table.header, &widths));
    let _ = writeln!(
        out,
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in &table.rows {
        let _ = writeln!(out, "{}", fmt_row(row, &widths));
    }
    out
}

/// Writes the table as `<dir>/<slug(title)>.csv`, creating the directory
/// when needed, and returns the path written.
pub fn write_csv(table: &Table, dir: &Path) -> io::Result<std::path::PathBuf> {
    fs::create_dir_all(dir)?;
    let stem: String = table
        .title
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect();
    let path = dir.join(format!("{stem}.csv"));
    fs::write(&path, table.to_csv())?;
    Ok(path)
}

/// Formats a float with four decimals, the convention of every table.
pub fn fmt4(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a float with two decimals (parameters such as ∆ or β).
pub fn fmt2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Sample", &["a", "bb", "ccc"]);
        t.push_row(vec!["1".into(), "2".into(), "3".into()]);
        t.push_row(vec!["x,y".into(), "long cell".into(), "z\"q\"".into()]);
        t
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,bb,ccc");
        assert_eq!(lines[2], "\"x,y\",long cell,\"z\"\"q\"\"\"");
    }

    #[test]
    fn render_aligns_columns() {
        let text = render_table(&sample());
        assert!(text.contains("== Sample =="));
        // The widest cell of column 2 is "long cell" (9 chars); the header
        // row must be padded accordingly.
        let header_line = text.lines().nth(1).unwrap();
        assert!(header_line.contains("bb       "));
    }

    #[test]
    fn arity_mismatch_is_a_programming_error() {
        let mut t = Table::new("t", &["a", "b"]);
        assert!(std::panic::catch_unwind(move || t.push_row(vec!["1".into()])).is_err());
    }

    #[test]
    fn csv_files_land_in_the_requested_directory() {
        let dir = std::env::temp_dir().join("sws_bench_table_test");
        let path = write_csv(&sample(), &dir).unwrap();
        assert!(path.ends_with("sample.csv"));
        let content = fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("a,bb,ccc"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn float_formatting_helpers() {
        assert_eq!(fmt4(1.0 / 3.0), "0.3333");
        assert_eq!(fmt2(2.5), "2.50");
    }

    #[test]
    fn len_and_is_empty() {
        let t = Table::new("empty", &["a"]);
        assert!(t.is_empty());
        assert_eq!(sample().len(), 2);
    }
}
