//! Experiment E3 — empirical check of Corollary 4: the tri-objective
//! `(Cmax, Mmax, ΣC_i)` ratios of RLS∆ with SPT tie-breaking on
//! independent tasks.
//!
//! The `ΣC_i` reference is exact (SPT list scheduling is optimal for
//! `P ∥ ΣC_i`), so that column is a true approximation-ratio measurement;
//! the `Cmax` and `Mmax` references are the Graham lower bounds.

use rayon::prelude::*;
use serde::Serialize;

use sws_core::portfolio::Portfolio;
use sws_core::tri::corollary4_guarantee;
use sws_listsched::KernelWorkspace;
use sws_model::bounds::LowerBounds;
use sws_model::objectives::TriObjectivePoint;
use sws_model::ratio::{Reference, TriRatioReport};
use sws_model::solve::{Guarantee, ObjectiveMode, SolveRequest};
use sws_workloads::random::random_instance;
use sws_workloads::rng::{derive_seed, seeded_rng};
use sws_workloads::TaskDistribution;

use crate::table::{fmt2, fmt4, Table};
use crate::BASE_SEED;

/// Parameter grid of experiment E3.
#[derive(Debug, Clone)]
pub struct E3Config {
    /// Task counts.
    pub task_counts: Vec<usize>,
    /// Processor counts.
    pub processor_counts: Vec<usize>,
    /// ∆ values (all > 2).
    pub deltas: Vec<f64>,
    /// `(p, s)` joint distributions.
    pub distributions: Vec<TaskDistribution>,
    /// Independent replications per cell.
    pub replications: usize,
}

impl Default for E3Config {
    fn default() -> Self {
        E3Config {
            task_counts: vec![20, 50, 100],
            processor_counts: vec![2, 4, 8],
            deltas: vec![2.25, 3.0, 4.0, 6.0],
            distributions: TaskDistribution::all().to_vec(),
            replications: 3,
        }
    }
}

impl E3Config {
    /// A small grid for tests and smoke runs.
    pub fn smoke() -> Self {
        E3Config {
            task_counts: vec![25],
            processor_counts: vec![2, 4],
            deltas: vec![2.5, 4.0],
            distributions: vec![TaskDistribution::Bimodal],
            replications: 2,
        }
    }
}

/// One averaged cell of experiment E3.
#[derive(Debug, Clone, Serialize)]
pub struct E3Row {
    /// Distribution label.
    pub distribution: String,
    /// Number of tasks.
    pub n: usize,
    /// Number of processors.
    pub m: usize,
    /// The parameter ∆.
    pub delta: f64,
    /// Mean achieved `Cmax` ratio (vs the Graham lower bound).
    pub cmax_ratio: f64,
    /// Mean achieved `Mmax` ratio (vs the Graham memory bound).
    pub mmax_ratio: f64,
    /// Mean achieved `ΣC_i` ratio (vs the exact SPT optimum).
    pub sum_ci_ratio: f64,
    /// Worst achieved `ΣC_i` ratio.
    pub worst_sum_ci_ratio: f64,
    /// The Corollary 4 guarantee on `(Cmax, Mmax, ΣC_i)`.
    pub guarantee: (f64, f64, f64),
    /// True when every replication respected all three guarantees.
    pub within_guarantee: bool,
}

/// Runs experiment E3 over the configured grid.
pub fn run(config: &E3Config) -> Vec<E3Row> {
    let mut cells = Vec::new();
    for &distribution in &config.distributions {
        for &n in &config.task_counts {
            for &m in &config.processor_counts {
                if m >= n {
                    continue;
                }
                for &delta in &config.deltas {
                    cells.push((distribution, n, m, delta));
                }
            }
        }
    }
    // Independent cells fan out across all cores; row order matches the
    // serial nested loops.
    cells
        .into_par_iter()
        .map(|(distribution, n, m, delta)| run_cell(distribution, n, m, delta, config.replications))
        .collect()
}

fn run_cell(
    distribution: TaskDistribution,
    n: usize,
    m: usize,
    delta: f64,
    replications: usize,
) -> E3Row {
    // One portfolio and one reusable kernel workspace per cell: the
    // tri-objective requests route to the SPT-tie RLS∆ kernel backend,
    // which draws its per-run buffers from `ws` across replications.
    let portfolio = Portfolio::standard();
    let mut ws = KernelWorkspace::new();
    let mut rc = Vec::new();
    let mut rm = Vec::new();
    let mut rs = Vec::new();
    let mut within = true;
    let guarantee = corollary4_guarantee(delta, m);
    for rep in 0..replications {
        let seed = derive_seed(BASE_SEED ^ 0xE3, (n * 100 + m * 10 + rep) as u64);
        let inst = random_instance(n, m, distribution, &mut seeded_rng(seed));
        let req = SolveRequest::independent(&inst, ObjectiveMode::TriObjective { delta })
            .with_guarantee(Guarantee::PaperRatio);
        let solution = portfolio
            .solve_in(&req, &mut ws)
            .expect("∆ > 2 by construction");
        let point = TriObjectivePoint::new(
            solution.point.cmax,
            solution.point.mmax,
            solution.sum_ci.expect("tri-objective backends report ΣC_i"),
        );
        let lb = LowerBounds::of_instance(&inst);
        let report = TriRatioReport::new(
            point,
            TriObjectivePoint::new(lb.cmax, lb.mmax, lb.sum_ci),
            Reference::LowerBound,
            Some(guarantee),
        );
        rc.push(report.ratios.0);
        rm.push(report.ratios.1);
        rs.push(report.ratios.2);
        within &= report.within_guarantee();
    }
    E3Row {
        distribution: distribution.label().to_string(),
        n,
        m,
        delta,
        cmax_ratio: mean(&rc),
        mmax_ratio: mean(&rm),
        sum_ci_ratio: mean(&rs),
        worst_sum_ci_ratio: rs.iter().cloned().fold(0.0, f64::max),
        guarantee,
        within_guarantee: within,
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Renders E3 rows as a table.
pub fn to_table(rows: &[E3Row]) -> Table {
    let mut t = Table::new(
        "E3 tri-objective sweep",
        &[
            "distribution",
            "n",
            "m",
            "delta",
            "cmax_ratio",
            "mmax_ratio",
            "sum_ci_ratio",
            "worst_sum_ci",
            "guar_cmax",
            "guar_mmax",
            "guar_sum_ci",
            "within",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.distribution.clone(),
            r.n.to_string(),
            r.m.to_string(),
            fmt2(r.delta),
            fmt4(r.cmax_ratio),
            fmt4(r.mmax_ratio),
            fmt4(r.sum_ci_ratio),
            fmt4(r.worst_sum_ci_ratio),
            fmt4(r.guarantee.0),
            fmt4(r.guarantee.1),
            fmt4(r.guarantee.2),
            r.within_guarantee.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_respects_all_three_guarantees() {
        let rows = run(&E3Config::smoke());
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.within_guarantee, "Corollary 4 violated: {r:?}");
            assert!(r.sum_ci_ratio >= 1.0 - 1e-9, "ΣCi ratio below 1: {r:?}");
            assert!(r.mmax_ratio <= r.delta + 1e-9);
        }
    }

    #[test]
    fn sum_ci_stays_close_to_optimal_in_practice() {
        // The guarantee is 2 + 1/(∆−2) but SPT-ordered list scheduling is
        // near-optimal on ΣCi in practice; the measured mean should be
        // well inside the bound.
        let rows = run(&E3Config::smoke());
        for r in &rows {
            assert!(
                r.sum_ci_ratio < r.guarantee.2 * 0.9,
                "measured ΣCi ratio suspiciously close to the bound: {r:?}"
            );
        }
    }

    #[test]
    fn table_round_trips() {
        let rows = run(&E3Config::smoke());
        let t = to_table(&rows);
        assert_eq!(t.len(), rows.len());
        assert_eq!(t.header.len(), 12);
    }
}
