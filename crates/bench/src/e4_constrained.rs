//! Experiment E4 — the Section 7 procedure for the original industrial
//! problem: minimize `Cmax` subject to `Mmax ≤ M`.
//!
//! The budget is expressed as `M = β·LB` where `LB` is the Graham memory
//! lower bound. For independent tasks the SBO-based binary search is used;
//! for DAGs the `∆ = M/LB` derivation feeds RLS∆. Each row records whether
//! a feasible schedule was found, the achieved makespan relative to the
//! (unconstrained) Graham bound, and — on instances small enough for the
//! exhaustive solver — the gap to the true constrained optimum.

use serde::Serialize;

use sws_core::portfolio::Portfolio;
use sws_model::bounds::{cmax_lower_bound, mmax_lower_bound};
use sws_model::solve::{BackendId, Guarantee, ObjectiveMode, SolveRequest};
use sws_workloads::dagsets::{dag_workload, DagFamily};
use sws_workloads::random::random_instance;
use sws_workloads::rng::{derive_seed, seeded_rng};
use sws_workloads::TaskDistribution;

use crate::table::{fmt2, fmt4, Table};
use crate::BASE_SEED;

/// Parameter grid of experiment E4.
#[derive(Debug, Clone)]
pub struct E4Config {
    /// Budget multipliers `β` (budget = `β·LB`).
    pub betas: Vec<f64>,
    /// Independent-task sizes `(n, m)`.
    pub independent_sizes: Vec<(usize, usize)>,
    /// DAG workloads `(family, target n, m)`.
    pub dag_cases: Vec<(DagFamily, usize, usize)>,
    /// `(p, s)` distribution for the independent workloads.
    pub distribution: TaskDistribution,
    /// Independent replications per cell.
    pub replications: usize,
    /// Instances with at most this many tasks also get the exact
    /// constrained optimum as a comparison column.
    pub exact_up_to: usize,
}

impl Default for E4Config {
    fn default() -> Self {
        E4Config {
            betas: vec![1.05, 1.2, 1.5, 2.0, 3.0, 4.0],
            independent_sizes: vec![(10, 2), (20, 4), (50, 4), (100, 8)],
            dag_cases: vec![
                (DagFamily::LayeredRandom, 100, 4),
                (DagFamily::GaussianElimination, 100, 4),
                (DagFamily::ForkJoin, 100, 8),
            ],
            distribution: TaskDistribution::AntiCorrelated,
            replications: 3,
            exact_up_to: 12,
        }
    }
}

impl E4Config {
    /// A small grid for tests and smoke runs.
    pub fn smoke() -> Self {
        E4Config {
            betas: vec![1.2, 2.0],
            independent_sizes: vec![(10, 2), (24, 3)],
            dag_cases: vec![(DagFamily::LayeredRandom, 40, 3)],
            distribution: TaskDistribution::AntiCorrelated,
            replications: 2,
            exact_up_to: 10,
        }
    }
}

/// One averaged cell of the independent-task half of experiment E4.
#[derive(Debug, Clone, Serialize)]
pub struct E4IndependentRow {
    /// Number of tasks.
    pub n: usize,
    /// Number of processors.
    pub m: usize,
    /// Budget multiplier `β`.
    pub beta: f64,
    /// Fraction of replications for which a feasible schedule was found.
    pub success_rate: f64,
    /// Mean achieved `Cmax / cmax_lower_bound` among the successes.
    pub cmax_over_lb: f64,
    /// Mean achieved `Cmax / exact constrained optimum` among successes on
    /// instances small enough for exhaustive search (0 when unavailable).
    pub cmax_over_opt: f64,
    /// Mean number of SBO evaluations spent by the binary search.
    pub evaluations: f64,
}

/// One averaged cell of the DAG half of experiment E4.
#[derive(Debug, Clone, Serialize)]
pub struct E4DagRow {
    /// DAG family label.
    pub family: String,
    /// Approximate number of tasks.
    pub n_target: usize,
    /// Number of processors.
    pub m: usize,
    /// Budget multiplier `β`.
    pub beta: f64,
    /// Fraction of replications where RLS∆ could run (`β > 2`) and met the
    /// budget.
    pub success_rate: f64,
    /// Mean achieved `Cmax` over the precedence-aware lower bound among
    /// the successes.
    pub cmax_over_lb: f64,
    /// Mean proven makespan guarantee `2 + 1/(∆−2) − (∆−1)/(m(∆−2))`.
    pub makespan_guarantee: f64,
}

/// The two result tables of experiment E4.
#[derive(Debug, Clone)]
pub struct E4Results {
    /// Independent-task rows.
    pub independent: Vec<E4IndependentRow>,
    /// DAG rows.
    pub dag: Vec<E4DagRow>,
}

/// Runs experiment E4 over the configured grid.
pub fn run(config: &E4Config) -> E4Results {
    E4Results {
        independent: run_independent(config),
        dag: run_dag(config),
    }
}

fn run_independent(config: &E4Config) -> Vec<E4IndependentRow> {
    // The experiment measures the Section 7 heuristic itself, so its
    // runs pin the constrained-search backend (auto-selection would
    // route the tiny instances to the exact enumerator); the exact
    // comparison column *is* auto-selection, with an `Exact` guarantee.
    let portfolio = Portfolio::standard();
    let heuristic = portfolio
        .backend(BackendId::ConstrainedSearch)
        .expect("registered in the standard portfolio");
    let mut rows = Vec::new();
    for &(n, m) in &config.independent_sizes {
        for &beta in &config.betas {
            let mut successes = 0usize;
            let mut cmax_over_lb = Vec::new();
            let mut cmax_over_opt = Vec::new();
            let mut evaluations = Vec::new();
            for rep in 0..config.replications {
                let seed = derive_seed(BASE_SEED ^ 0xE4, (n * 100 + m * 10 + rep) as u64);
                let inst = random_instance(n, m, config.distribution, &mut seeded_rng(seed));
                let lb_m = mmax_lower_bound(inst.tasks(), m);
                let lb_c = cmax_lower_bound(inst.tasks(), m);
                let budget = beta * lb_m;
                let req = SolveRequest::independent(&inst, ObjectiveMode::MemoryBudget { budget });
                if let Ok(solution) = heuristic.solve(&req) {
                    successes += 1;
                    cmax_over_lb.push(solution.point.cmax / lb_c);
                    evaluations.push(solution.stats.rounds as f64);
                    if n <= config.exact_up_to {
                        if let Ok(exact) = portfolio.solve(&req.with_guarantee(Guarantee::Exact)) {
                            cmax_over_opt.push(solution.point.cmax / exact.point.cmax);
                        }
                    }
                }
            }
            rows.push(E4IndependentRow {
                n,
                m,
                beta,
                success_rate: successes as f64 / config.replications as f64,
                cmax_over_lb: mean(&cmax_over_lb),
                cmax_over_opt: mean(&cmax_over_opt),
                evaluations: mean(&evaluations),
            });
        }
    }
    rows
}

fn run_dag(config: &E4Config) -> Vec<E4DagRow> {
    let portfolio = Portfolio::standard();
    let mut rows = Vec::new();
    for &(family, n, m) in &config.dag_cases {
        for &beta in &config.betas {
            let mut successes = 0usize;
            let mut cmax_over_lb = Vec::new();
            let mut guarantees = Vec::new();
            for rep in 0..config.replications {
                let seed = derive_seed(BASE_SEED ^ 0xE4D, (n * 100 + m * 10 + rep) as u64);
                let inst = dag_workload(family, n, m, config.distribution, &mut seeded_rng(seed));
                let lb_m = mmax_lower_bound(inst.tasks(), m);
                let budget = beta * lb_m;
                let req = SolveRequest::precedence(&inst, ObjectiveMode::MemoryBudget { budget });
                // DAG budget requests auto-route to the Section 7
                // procedure; the solution reports the critical-path
                // lower bound through the shared provenance, so the
                // ratio column needs no private re-derivation.
                if let Ok(solution) = portfolio.solve(&req) {
                    successes += 1;
                    cmax_over_lb.push(solution.cmax_over_lb());
                    guarantees.push(
                        solution
                            .ratio_bound
                            .map(|(gc, _)| gc)
                            .expect("the DAG budget procedure proves a makespan factor"),
                    );
                }
            }
            rows.push(E4DagRow {
                family: family.label().to_string(),
                n_target: n,
                m,
                beta,
                success_rate: successes as f64 / config.replications as f64,
                cmax_over_lb: mean(&cmax_over_lb),
                makespan_guarantee: mean(&guarantees),
            });
        }
    }
    rows
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Renders the independent-task half of E4 as a table.
pub fn independent_table(rows: &[E4IndependentRow]) -> Table {
    let mut t = Table::new(
        "E4 constrained problem independent tasks",
        &[
            "n",
            "m",
            "beta",
            "success_rate",
            "cmax_over_lb",
            "cmax_over_opt",
            "evaluations",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.n.to_string(),
            r.m.to_string(),
            fmt2(r.beta),
            fmt2(r.success_rate),
            fmt4(r.cmax_over_lb),
            fmt4(r.cmax_over_opt),
            fmt2(r.evaluations),
        ]);
    }
    t
}

/// Renders the DAG half of E4 as a table.
pub fn dag_table(rows: &[E4DagRow]) -> Table {
    let mut t = Table::new(
        "E4 constrained problem DAGs",
        &[
            "family",
            "n_target",
            "m",
            "beta",
            "success_rate",
            "cmax_over_lb",
            "guar_cmax",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.family.clone(),
            r.n_target.to_string(),
            r.m.to_string(),
            fmt2(r.beta),
            fmt2(r.success_rate),
            fmt4(r.cmax_over_lb),
            fmt4(r.makespan_guarantee),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_produces_both_tables() {
        let results = run(&E4Config::smoke());
        assert!(!results.independent.is_empty());
        assert!(!results.dag.is_empty());
        assert_eq!(
            independent_table(&results.independent).len(),
            results.independent.len()
        );
        assert_eq!(dag_table(&results.dag).len(), results.dag.len());
    }

    #[test]
    fn generous_budgets_always_succeed() {
        let results = run(&E4Config::smoke());
        for r in results.independent.iter().filter(|r| r.beta >= 2.0) {
            assert_eq!(
                r.success_rate, 1.0,
                "β = {} should always be feasible: {r:?}",
                r.beta
            );
            assert!(r.cmax_over_lb >= 1.0 - 1e-9);
        }
        for r in &results.dag {
            // β > 2 means ∆ > 2, so RLS runs and meets the budget; at or
            // below 2 the procedure declines (NoGuarantee).
            if r.beta > 2.0 {
                assert_eq!(r.success_rate, 1.0, "{r:?}");
            } else {
                assert_eq!(r.success_rate, 0.0, "{r:?}");
            }
        }
    }

    #[test]
    fn dag_budgets_at_or_below_two_lb_never_claim_a_guarantee() {
        let mut cfg = E4Config::smoke();
        cfg.betas = vec![1.0, 1.5, 2.0];
        let results = run(&cfg);
        for r in &results.dag {
            assert_eq!(r.success_rate, 0.0, "β ≤ 2 cannot use RLS: {r:?}");
        }
    }

    #[test]
    fn heuristic_never_beats_the_exact_constrained_optimum() {
        let results = run(&E4Config::smoke());
        for r in results.independent.iter().filter(|r| r.cmax_over_opt > 0.0) {
            assert!(
                r.cmax_over_opt >= 1.0 - 1e-9,
                "heuristic beat the exhaustive optimum: {r:?}"
            );
        }
    }
}
