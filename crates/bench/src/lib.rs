//! # sws-bench — experiment and figure regeneration harness
//!
//! The paper's evaluation is analytic: it contains three figures (the two
//! Pareto-front illustrations of Section 4 and the impossibility-domain
//! plot of Figure 3) and no tables. This crate regenerates each figure and
//! complements them with the measured-ratio experiments E1–E5 listed in
//! DESIGN.md, which exercise every algorithm the way an experimental
//! section would:
//!
//! * [`figures`] — Figure 1, Figure 2 and Figure 3 data (Pareto fronts of
//!   the adversarial instances, impossibility staircases, SBO∆ trade-off
//!   curve) plus ASCII Gantt renderings;
//! * [`e1_sbo`] — achieved ratios of SBO∆ over random workloads (checks
//!   Properties 1–2 and Corollary 1);
//! * [`e2_rls`] — achieved ratios of RLS∆ over DAG workloads and the
//!   Lemma 4 marked-processor accounting (checks Corollaries 2–3);
//! * [`e3_tri`] — the tri-objective extension on independent tasks
//!   (checks Corollary 4);
//! * [`e4_constrained`] — the Section 7 procedure for the original
//!   memory-budget problem;
//! * [`e5_scaling`] — wall-clock scaling measurements backing the
//!   `O(n²m)` complexity claim;
//! * [`table`] — ASCII-table and CSV rendering shared by the binaries.
//!
//! Two binaries drive the harness: `figures` regenerates the paper's
//! figures and `experiments` runs E1–E5, both printing ASCII tables and
//! optionally writing CSV files. One Criterion bench per experiment lives
//! under `benches/`.

#![forbid(unsafe_code)]

pub mod e1_sbo;
pub mod e2_rls;
pub mod e3_tri;
pub mod e4_constrained;
pub mod e5_scaling;
pub mod figures;
pub mod table;

pub use table::{render_table, write_csv, Table};

/// Base seed shared by every experiment so entire runs are reproducible.
pub const BASE_SEED: u64 = 0x5753_2008;
