//! Experiment E5 — runtime scaling measurements backing the complexity
//! claims: RLS∆ is `O(n²m)` and SBO∆ is dominated by its inner
//! single-objective schedulers (`O(n log n)` for LPT, polynomial for the
//! PTAS).
//!
//! Wall-clock measurements are inherently noisy; the Criterion bench
//! `scaling` produces the statistically sound numbers, while this module
//! offers a quick `std::time::Instant` sweep for the `experiments` binary
//! and asserts only very coarse monotonicity properties in tests.

use std::time::Instant;

use serde::Serialize;

use sws_core::portfolio::Portfolio;
use sws_model::solve::{ObjectiveMode, SolveRequest};
use sws_workloads::dagsets::{dag_workload, DagFamily};
use sws_workloads::random::random_instance;
use sws_workloads::rng::{derive_seed, seeded_rng};
use sws_workloads::TaskDistribution;

use crate::table::{fmt2, Table};
use crate::BASE_SEED;

/// Parameter grid of experiment E5.
#[derive(Debug, Clone)]
pub struct E5Config {
    /// Task counts for the SBO (independent tasks) sweep.
    pub sbo_task_counts: Vec<usize>,
    /// Task counts for the RLS (DAG) sweep.
    pub rls_task_counts: Vec<usize>,
    /// Processor counts.
    pub processor_counts: Vec<usize>,
    /// Repetitions per measurement (the minimum is reported).
    pub repetitions: usize,
}

impl Default for E5Config {
    fn default() -> Self {
        E5Config {
            sbo_task_counts: vec![100, 1_000, 5_000, 10_000],
            rls_task_counts: vec![100, 250, 500, 1_000, 2_000],
            processor_counts: vec![4, 16, 64],
            repetitions: 3,
        }
    }
}

impl E5Config {
    /// A small grid for tests and smoke runs.
    pub fn smoke() -> Self {
        E5Config {
            sbo_task_counts: vec![50, 200],
            rls_task_counts: vec![50, 150],
            processor_counts: vec![4],
            repetitions: 1,
        }
    }
}

/// One timing measurement.
#[derive(Debug, Clone, Serialize)]
pub struct E5Row {
    /// Algorithm label (`"sbo/lpt"`, `"rls"`).
    pub algorithm: String,
    /// Number of tasks.
    pub n: usize,
    /// Number of processors.
    pub m: usize,
    /// Best-of-`repetitions` wall-clock time in milliseconds.
    pub millis: f64,
}

/// Runs the wall-clock sweep.
///
/// Both series go through [`Portfolio::solve`] — the timings therefore
/// include backend selection, which doubles as a regression check that
/// the unified layer stays one-time-resolution cheap. At these sizes
/// the bi-objective requests route to SBO∆/LPT (independent) and kernel
/// RLS∆ (DAGs), exactly the algorithms the row labels name.
pub fn run(config: &E5Config) -> Vec<E5Row> {
    let portfolio = Portfolio::standard();
    let mut rows = Vec::new();
    for &m in &config.processor_counts {
        for &n in &config.sbo_task_counts {
            let seed = derive_seed(BASE_SEED ^ 0xE5, (n + m) as u64);
            let inst = random_instance(n, m, TaskDistribution::Uncorrelated, &mut seeded_rng(seed));
            let req = SolveRequest::independent(&inst, ObjectiveMode::BiObjective { delta: 1.0 });
            let millis = best_of(config.repetitions, || {
                let _ = portfolio.solve(&req).unwrap();
            });
            rows.push(E5Row {
                algorithm: "sbo/lpt".to_string(),
                n,
                m,
                millis,
            });
        }
        for &n in &config.rls_task_counts {
            let seed = derive_seed(BASE_SEED ^ 0xE5A, (n + m) as u64);
            let inst = dag_workload(
                DagFamily::LayeredRandom,
                n,
                m,
                TaskDistribution::Uncorrelated,
                &mut seeded_rng(seed),
            );
            let req = SolveRequest::precedence(&inst, ObjectiveMode::BiObjective { delta: 3.0 });
            let millis = best_of(config.repetitions, || {
                let _ = portfolio.solve(&req).unwrap();
            });
            rows.push(E5Row {
                algorithm: "rls".to_string(),
                n: inst.n(),
                m,
                millis,
            });
        }
    }
    rows
}

fn best_of(repetitions: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repetitions.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Renders E5 rows as a table.
pub fn to_table(rows: &[E5Row]) -> Table {
    let mut t = Table::new("E5 runtime scaling", &["algorithm", "n", "m", "millis"]);
    for r in rows {
        t.push_row(vec![
            r.algorithm.clone(),
            r.n.to_string(),
            r.m.to_string(),
            fmt2(r.millis),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_measures_every_cell() {
        let cfg = E5Config::smoke();
        let rows = run(&cfg);
        let expected =
            cfg.processor_counts.len() * (cfg.sbo_task_counts.len() + cfg.rls_task_counts.len());
        assert_eq!(rows.len(), expected);
        for r in &rows {
            assert!(r.millis >= 0.0);
            assert!(r.n > 0);
        }
        assert_eq!(to_table(&rows).len(), rows.len());
    }

    #[test]
    fn measurements_are_finite_and_labelled() {
        let rows = run(&E5Config::smoke());
        assert!(rows.iter().any(|r| r.algorithm == "sbo/lpt"));
        assert!(rows.iter().any(|r| r.algorithm == "rls"));
        assert!(rows.iter().all(|r| r.millis.is_finite()));
    }
}
