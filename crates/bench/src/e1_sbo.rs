//! Experiment E1 — empirical check of Properties 1–2 and Corollary 1:
//! achieved `(Cmax/C*, Mmax/M*)` ratios of SBO∆ as a function of `∆`, the
//! inner algorithm, the `(p, s)` correlation and the instance size.
//!
//! For small instances the reference is the exact per-objective optimum
//! (branch and bound); for larger ones the Graham lower bounds are used,
//! so the reported ratios are then upper bounds on the true ones. Every
//! row also records the proven guarantee and whether it was respected.

use rayon::prelude::*;
use serde::Serialize;

use sws_core::pipeline::evaluate_sbo_result;
use sws_core::sbo::{InnerAlgorithm, SboEngine};
use sws_model::ratio::Reference;
use sws_workloads::random::random_instance;
use sws_workloads::rng::{derive_seed, seeded_rng};
use sws_workloads::TaskDistribution;

use crate::table::{fmt2, fmt4, Table};
use crate::BASE_SEED;

/// Parameter grid of experiment E1.
#[derive(Debug, Clone)]
pub struct E1Config {
    /// Task counts to sweep.
    pub task_counts: Vec<usize>,
    /// Processor counts to sweep.
    pub processor_counts: Vec<usize>,
    /// ∆ values to sweep.
    pub deltas: Vec<f64>,
    /// Inner single-objective schedulers to compare.
    pub inners: Vec<InnerAlgorithm>,
    /// `(p, s)` joint distributions.
    pub distributions: Vec<TaskDistribution>,
    /// Independent replications per cell.
    pub replications: usize,
}

impl Default for E1Config {
    fn default() -> Self {
        E1Config {
            task_counts: vec![20, 50, 100, 200],
            processor_counts: vec![2, 4, 8, 16],
            deltas: vec![0.25, 0.5, 1.0, 2.0, 4.0],
            inners: vec![InnerAlgorithm::Graham, InnerAlgorithm::Lpt],
            distributions: TaskDistribution::all().to_vec(),
            replications: 3,
        }
    }
}

impl E1Config {
    /// A small grid for tests and smoke runs.
    pub fn smoke() -> Self {
        E1Config {
            task_counts: vec![12, 30],
            processor_counts: vec![2, 4],
            deltas: vec![0.5, 1.0, 2.0],
            inners: vec![InnerAlgorithm::Lpt],
            distributions: vec![TaskDistribution::AntiCorrelated],
            replications: 2,
        }
    }

    /// The Corollary 1 variant: PTAS inner algorithms on a reduced grid
    /// (the PTAS is polynomial but markedly slower).
    pub fn corollary1(eps: f64) -> Self {
        E1Config {
            task_counts: vec![20, 40],
            processor_counts: vec![2, 4],
            deltas: vec![0.5, 1.0, 2.0],
            inners: vec![InnerAlgorithm::Ptas { eps }],
            distributions: vec![
                TaskDistribution::Uncorrelated,
                TaskDistribution::AntiCorrelated,
            ],
            replications: 2,
        }
    }
}

/// One averaged cell of experiment E1.
#[derive(Debug, Clone, Serialize)]
pub struct E1Row {
    /// Distribution label.
    pub distribution: String,
    /// Inner algorithm label.
    pub inner: String,
    /// Number of tasks.
    pub n: usize,
    /// Number of processors.
    pub m: usize,
    /// The SBO parameter ∆.
    pub delta: f64,
    /// Mean achieved `Cmax` ratio over the replications.
    pub cmax_ratio: f64,
    /// Mean achieved `Mmax` ratio over the replications.
    pub mmax_ratio: f64,
    /// Worst (largest) achieved `Cmax` ratio.
    pub worst_cmax_ratio: f64,
    /// Worst (largest) achieved `Mmax` ratio.
    pub worst_mmax_ratio: f64,
    /// The proven guarantee on `Cmax`.
    pub guarantee_cmax: f64,
    /// The proven guarantee on `Mmax`.
    pub guarantee_mmax: f64,
    /// Fraction of replications whose reference was the exact optimum.
    pub exact_reference_fraction: f64,
    /// True when every replication respected the guarantee.
    pub within_guarantee: bool,
}

/// Runs experiment E1 over the configured grid. Cells — one per
/// `(distribution, inner, n, m)` — are independent (each derives its own
/// seeds), so they fan out across all cores; within a cell all ∆ values
/// share one [`SboEngine`] per replication, so the two inner schedules
/// are computed once instead of once per ∆ (with the PTAS inner
/// algorithm that is essentially the entire cost). The flattened row
/// order and every reported number match the old per-∆ serial loops.
pub fn run(config: &E1Config) -> Vec<E1Row> {
    let mut cells = Vec::new();
    for &distribution in &config.distributions {
        for &inner in &config.inners {
            for &n in &config.task_counts {
                for &m in &config.processor_counts {
                    if m >= n {
                        continue;
                    }
                    cells.push((distribution, inner, n, m));
                }
            }
        }
    }
    let per_cell: Vec<Vec<E1Row>> = cells
        .into_par_iter()
        .map(|(distribution, inner, n, m)| {
            run_cell(
                distribution,
                inner,
                n,
                m,
                &config.deltas,
                config.replications,
            )
        })
        .collect();
    per_cell.into_iter().flatten().collect()
}

/// Per-∆ accumulator of one cell.
#[derive(Clone)]
struct DeltaAccumulator {
    cmax_ratios: Vec<f64>,
    mmax_ratios: Vec<f64>,
    exact: usize,
    within: bool,
    guarantee: (f64, f64),
}

fn run_cell(
    distribution: TaskDistribution,
    inner: InnerAlgorithm,
    n: usize,
    m: usize,
    deltas: &[f64],
    replications: usize,
) -> Vec<E1Row> {
    let mut accs = vec![
        DeltaAccumulator {
            cmax_ratios: Vec::with_capacity(replications),
            mmax_ratios: Vec::with_capacity(replications),
            exact: 0,
            within: true,
            guarantee: (0.0, 0.0),
        };
        deltas.len()
    ];
    for rep in 0..replications {
        let seed = derive_seed(BASE_SEED, (n * 1000 + m * 10 + rep) as u64);
        let inst = random_instance(n, m, distribution, &mut seeded_rng(seed));
        let engine = SboEngine::new(&inst, inner).expect("grid parameters are valid");
        for (acc, &delta) in accs.iter_mut().zip(deltas) {
            let result = engine.run(delta).expect("grid parameters are valid");
            let (report, _) =
                evaluate_sbo_result(&inst, result).expect("grid parameters are valid");
            acc.cmax_ratios.push(report.ratio.cmax_ratio);
            acc.mmax_ratios.push(report.ratio.mmax_ratio);
            if report.ratio.reference_kind == Reference::Optimum {
                acc.exact += 1;
                // Against the exact optimum the guarantee is a hard bound.
                acc.within &= report.within_guarantee();
            }
            acc.guarantee = report.ratio.guarantee.unwrap_or(acc.guarantee);
        }
    }
    accs.into_iter()
        .zip(deltas)
        .map(|(acc, &delta)| E1Row {
            distribution: distribution.label().to_string(),
            inner: inner.label().to_string(),
            n,
            m,
            delta,
            cmax_ratio: mean(&acc.cmax_ratios),
            mmax_ratio: mean(&acc.mmax_ratios),
            worst_cmax_ratio: max(&acc.cmax_ratios),
            worst_mmax_ratio: max(&acc.mmax_ratios),
            guarantee_cmax: acc.guarantee.0,
            guarantee_mmax: acc.guarantee.1,
            exact_reference_fraction: acc.exact as f64 / replications as f64,
            within_guarantee: acc.within,
        })
        .collect()
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

fn max(xs: &[f64]) -> f64 {
    xs.iter().cloned().fold(0.0, f64::max)
}

/// Renders E1 rows as a table.
pub fn to_table(rows: &[E1Row]) -> Table {
    let mut t = Table::new(
        "E1 SBO ratio sweep",
        &[
            "distribution",
            "inner",
            "n",
            "m",
            "delta",
            "cmax_ratio",
            "mmax_ratio",
            "worst_cmax",
            "worst_mmax",
            "guar_cmax",
            "guar_mmax",
            "exact_ref",
            "within",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.distribution.clone(),
            r.inner.clone(),
            r.n.to_string(),
            r.m.to_string(),
            fmt2(r.delta),
            fmt4(r.cmax_ratio),
            fmt4(r.mmax_ratio),
            fmt4(r.worst_cmax_ratio),
            fmt4(r.worst_mmax_ratio),
            fmt4(r.guarantee_cmax),
            fmt4(r.guarantee_mmax),
            fmt2(r.exact_reference_fraction),
            r.within_guarantee.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_produces_consistent_rows() {
        let rows = run(&E1Config::smoke());
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.cmax_ratio >= 1.0 - 1e-9, "ratio below 1: {r:?}");
            assert!(r.mmax_ratio >= 1.0 - 1e-9, "ratio below 1: {r:?}");
            assert!(r.worst_cmax_ratio + 1e-12 >= r.cmax_ratio);
            assert!(r.within_guarantee, "guarantee violated: {r:?}");
            // The trade-off structure: the guarantee pair follows
            // (1+∆)ρ / (1+1/∆)ρ.
            assert!(r.guarantee_cmax > 1.0 && r.guarantee_mmax > 1.0);
        }
    }

    #[test]
    fn larger_delta_trades_memory_for_makespan_in_the_guarantee() {
        let rows = run(&E1Config::smoke());
        let small: Vec<&E1Row> = rows.iter().filter(|r| r.delta == 0.5).collect();
        let large: Vec<&E1Row> = rows.iter().filter(|r| r.delta == 2.0).collect();
        assert_eq!(small.len(), large.len());
        for (s, l) in small.iter().zip(&large) {
            assert!(l.guarantee_cmax > s.guarantee_cmax);
            assert!(l.guarantee_mmax < s.guarantee_mmax);
        }
    }

    #[test]
    fn table_has_one_row_per_cell() {
        let rows = run(&E1Config::smoke());
        let t = to_table(&rows);
        assert_eq!(t.len(), rows.len());
        assert_eq!(t.header.len(), 13);
    }

    #[test]
    fn corollary1_grid_uses_the_ptas() {
        let mut cfg = E1Config::corollary1(0.3);
        // Shrink further so the test stays fast.
        cfg.task_counts = vec![12];
        cfg.processor_counts = vec![2];
        cfg.deltas = vec![1.0];
        cfg.replications = 1;
        let rows = run(&cfg);
        assert!(rows.iter().all(|r| r.inner == "ptas"));
        assert!(rows.iter().all(|r| r.within_guarantee));
    }
}
