//! The discrete-event replay engine.

use sws_model::error::ModelError;
use sws_model::schedule::TimedSchedule;
use sws_model::task::TaskSet;

use crate::event::{Event, EventKind};
use crate::memory::MemoryProfile;
use crate::trace::Trace;

/// Aggregate result of replaying a schedule.
#[derive(Debug, Clone)]
pub struct SimulationReport {
    /// Completion time of the last task.
    pub makespan: f64,
    /// Largest per-processor cumulative memory observed.
    pub peak_memory: f64,
    /// Sum of completion times.
    pub sum_completion: f64,
    /// Per-processor busy time.
    pub busy: Vec<f64>,
    /// Per-processor cumulative memory at the end of the run.
    pub final_memory: Vec<f64>,
    /// Average processor utilization (busy time / makespan), 1.0 for an
    /// empty schedule.
    pub utilization: f64,
    /// The ordered event trace.
    pub trace: Trace,
    /// Per-processor memory-over-time profiles.
    pub memory_profile: MemoryProfile,
}

/// The replay engine. Stateless — all state lives inside `replay`.
#[derive(Debug, Default, Clone, Copy)]
pub struct SimulationEngine;

impl SimulationEngine {
    /// Creates an engine.
    pub fn new() -> Self {
        SimulationEngine
    }

    /// Replays a timed schedule on the cumulative-memory multiprocessor
    /// model, verifying along the way that
    ///
    /// * the schedule covers exactly `tasks.len()` tasks on `m`
    ///   processors,
    /// * no two tasks overlap on a processor,
    /// * every precedence constraint in `preds` is respected,
    /// * if `memory_capacity` is given, no processor ever exceeds it.
    ///
    /// Returns the full [`SimulationReport`] on success and the first
    /// violation as a [`ModelError`] otherwise.
    pub fn replay(
        &self,
        tasks: &TaskSet,
        m: usize,
        schedule: &TimedSchedule,
        preds: &[Vec<usize>],
        memory_capacity: Option<f64>,
    ) -> Result<SimulationReport, ModelError> {
        if schedule.n() != tasks.len() {
            return Err(ModelError::IncompleteAssignment {
                expected: tasks.len(),
                got: schedule.n(),
            });
        }
        if schedule.m() != m {
            return Err(ModelError::ProcessorOutOfRange {
                task: 0,
                proc: schedule.m().saturating_sub(1),
                m,
            });
        }
        if preds.len() != tasks.len() {
            return Err(ModelError::LengthMismatch {
                left: tasks.len(),
                right: preds.len(),
            });
        }

        // Build the event list.
        let mut events = Vec::with_capacity(2 * tasks.len());
        for i in 0..tasks.len() {
            let start = schedule.start(i);
            let proc = schedule.proc_of(i);
            events.push(Event::start(start, i, proc));
            events.push(Event::finish(start + tasks.get(i).p, i, proc));
        }
        events.sort();

        let slack = |t: f64| 1e-9 * t.abs().max(1.0);

        let mut busy_until = vec![f64::NEG_INFINITY; m];
        let mut running_task: Vec<Option<usize>> = vec![None; m];
        let mut finished = vec![false; tasks.len()];
        let mut finish_time = vec![0.0f64; tasks.len()];
        let mut memory = MemoryProfile::new(m);
        let mut busy = vec![0.0f64; m];
        let mut trace = Trace::new();

        // The loop is panic-free by the validation prologue (task
        // indices come from `0..tasks.len()`, processors from the
        // schedule whose `m` was just checked), but every access still
        // routes through `.get`: the simulator is the differential
        // oracle, and an oracle that aborts instead of returning a
        // typed violation reports nothing. An out-of-range predecessor
        // index in `preds` is thus diagnosed as the precedence
        // violation it is, not as a crash.
        for ev in &events {
            let q = ev.proc;
            match ev.kind {
                EventKind::Start => {
                    // The processor must be idle.
                    if let Some(&Some(other)) = running_task.get(q) {
                        return Err(ModelError::Overlap {
                            proc: q,
                            first: other,
                            second: ev.task,
                        });
                    }
                    if busy_until
                        .get(q)
                        .is_some_and(|&b| ev.time + slack(ev.time) < b)
                    {
                        // A previous task on q finishes after this start.
                        return Err(ModelError::Overlap {
                            proc: q,
                            first: ev.task,
                            second: ev.task,
                        });
                    }
                    // All predecessors must have finished.
                    for &p in preds.get(ev.task).map(Vec::as_slice).unwrap_or_default() {
                        let done = finished.get(p).copied().unwrap_or(false);
                        let ct = finish_time.get(p).copied().unwrap_or(f64::INFINITY);
                        if !done || ct > ev.time + slack(ev.time) {
                            return Err(ModelError::PrecedenceViolation {
                                pred: p,
                                task: ev.task,
                            });
                        }
                    }
                    // Claim the processor and account the (cumulative) memory.
                    if let Some(slot) = running_task.get_mut(q) {
                        *slot = Some(ev.task);
                    }
                    memory.allocate(q, ev.time, tasks.get(ev.task).s);
                    if let Some(cap) = memory_capacity {
                        if memory.current(q) > cap + 1e-9 * cap.abs().max(1.0) {
                            return Err(ModelError::MemoryExceeded {
                                proc: q,
                                used: memory.current(q),
                                capacity: cap,
                            });
                        }
                    }
                    trace.push(*ev);
                }
                EventKind::Finish => {
                    if let Some(slot) = running_task.get_mut(q) {
                        if *slot == Some(ev.task) {
                            *slot = None;
                        }
                    }
                    if let Some(b) = busy_until.get_mut(q) {
                        *b = b.max(ev.time);
                    }
                    if let Some(f) = finished.get_mut(ev.task) {
                        *f = true;
                    }
                    if let Some(ct) = finish_time.get_mut(ev.task) {
                        *ct = ev.time;
                    }
                    if let Some(b) = busy.get_mut(q) {
                        *b += tasks.get(ev.task).p;
                    }
                    trace.push(*ev);
                }
            }
        }

        let makespan = finish_time.iter().copied().fold(0.0, f64::max);
        let sum_completion = sws_model::numeric::kahan_sum(finish_time.iter().copied());
        let final_memory = memory.final_levels();
        let peak_memory = memory.peak();
        let utilization = if makespan > 0.0 {
            busy.iter().sum::<f64>() / (m as f64 * makespan)
        } else {
            1.0
        };

        Ok(SimulationReport {
            makespan,
            peak_memory,
            sum_completion,
            busy,
            final_memory,
            utilization,
            trace,
            memory_profile: memory,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_model::schedule::TimedSchedule;

    fn tasks() -> TaskSet {
        TaskSet::from_ps(&[2.0, 1.0, 3.0], &[1.0, 2.0, 4.0]).unwrap()
    }

    #[test]
    fn replays_a_valid_schedule_and_reports_objectives() {
        let ts = tasks();
        // P0: task 0 [0,2) then task 1 [2,3); P1: task 2 [0,3).
        let sched = TimedSchedule::new(vec![0, 0, 1], vec![0.0, 2.0, 0.0], 2).unwrap();
        let rep = SimulationEngine::new()
            .replay(&ts, 2, &sched, &[vec![], vec![], vec![]], None)
            .unwrap();
        assert!((rep.makespan - 3.0).abs() < 1e-12);
        assert!((rep.sum_completion - (2.0 + 3.0 + 3.0)).abs() < 1e-12);
        assert!((rep.peak_memory - 4.0).abs() < 1e-12);
        assert!((rep.final_memory[0] - 3.0).abs() < 1e-12);
        assert!((rep.busy[0] - 3.0).abs() < 1e-12);
        assert!((rep.utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn detects_overlaps() {
        let ts = tasks();
        let sched = TimedSchedule::new(vec![0, 0, 1], vec![0.0, 1.0, 0.0], 2).unwrap();
        let err = SimulationEngine::new()
            .replay(&ts, 2, &sched, &[vec![], vec![], vec![]], None)
            .unwrap_err();
        assert!(matches!(err, ModelError::Overlap { proc: 0, .. }));
    }

    #[test]
    fn detects_precedence_violations() {
        let ts = tasks();
        // 0 -> 1 but task 1 starts at 1.0 < C_0 = 2.0.
        let sched = TimedSchedule::new(vec![0, 1, 1], vec![0.0, 1.0, 4.0], 2).unwrap();
        let err = SimulationEngine::new()
            .replay(&ts, 2, &sched, &[vec![], vec![0], vec![]], None)
            .unwrap_err();
        assert_eq!(err, ModelError::PrecedenceViolation { pred: 0, task: 1 });
    }

    #[test]
    fn enforces_a_memory_capacity() {
        let ts = tasks();
        let sched = TimedSchedule::new(vec![0, 0, 0], vec![0.0, 2.0, 3.0], 1).unwrap();
        // Cumulative memory on P0 reaches 7.
        let ok =
            SimulationEngine::new().replay(&ts, 1, &sched, &[vec![], vec![], vec![]], Some(7.0));
        assert!(ok.is_ok());
        let err = SimulationEngine::new()
            .replay(&ts, 1, &sched, &[vec![], vec![], vec![]], Some(6.0))
            .unwrap_err();
        assert!(matches!(err, ModelError::MemoryExceeded { proc: 0, .. }));
    }

    #[test]
    fn back_to_back_tasks_at_identical_times_are_legal() {
        let ts = TaskSet::from_ps(&[1.0, 1.0], &[1.0, 1.0]).unwrap();
        let sched = TimedSchedule::new(vec![0, 0], vec![0.0, 1.0], 1).unwrap();
        let rep = SimulationEngine::new()
            .replay(&ts, 1, &sched, &[vec![], vec![]], None)
            .unwrap();
        assert!((rep.makespan - 2.0).abs() < 1e-12);
    }

    #[test]
    fn report_matches_model_objective_evaluation() {
        let ts = tasks();
        let sched = TimedSchedule::new(vec![0, 1, 1], vec![0.0, 0.0, 1.0], 2).unwrap();
        let rep = SimulationEngine::new()
            .replay(&ts, 2, &sched, &[vec![], vec![], vec![]], None)
            .unwrap();
        assert!((rep.makespan - sched.cmax(&ts)).abs() < 1e-12);
        let mmax = sws_model::objectives::mmax_of_timed(&ts, &sched);
        assert!((rep.peak_memory - mmax).abs() < 1e-12);
        assert!((rep.sum_completion - sched.sum_completion(&ts)).abs() < 1e-12);
    }

    #[test]
    fn wrong_task_count_is_rejected() {
        let ts = tasks();
        let sched = TimedSchedule::new(vec![0, 0], vec![0.0, 2.0], 2).unwrap();
        assert!(SimulationEngine::new()
            .replay(&ts, 2, &sched, &[vec![], vec![], vec![]], None)
            .is_err());
    }

    #[test]
    fn empty_schedule_has_full_utilization_and_zero_makespan() {
        let ts = TaskSet::from_ps(&[], &[]).unwrap();
        let sched = TimedSchedule::new(vec![], vec![], 3).unwrap();
        let rep = SimulationEngine::new()
            .replay(&ts, 3, &sched, &[], None)
            .unwrap();
        assert_eq!(rep.makespan, 0.0);
        assert_eq!(rep.utilization, 1.0);
    }
}
