//! ASCII Gantt charts with memory annotations.
//!
//! Figures 1 and 2 of the paper draw schedules as Gantt charts where the
//! rectangle length is the processing time and a label gives the task's
//! memory consumption. This module renders the same picture in plain text
//! so the figure-regeneration binary can print it.

use sws_model::schedule::TimedSchedule;
use sws_model::task::TaskSet;

/// Rendering options.
#[derive(Debug, Clone, Copy)]
pub struct GanttOptions {
    /// Total character width of the time axis.
    pub width: usize,
    /// Whether to append per-processor totals (busy time and memory).
    pub totals: bool,
}

impl Default for GanttOptions {
    fn default() -> Self {
        GanttOptions {
            width: 60,
            totals: true,
        }
    }
}

/// Renders a timed schedule as an ASCII Gantt chart. Every processor gets
/// one lane; each task is drawn as `[ t<id>:s=<mem> ]` scaled to its
/// processing time; idle periods are drawn with dots.
pub fn render_gantt(tasks: &TaskSet, schedule: &TimedSchedule, opts: &GanttOptions) -> String {
    let m = schedule.m();
    let makespan = schedule.cmax(tasks).max(1e-12);
    let scale = opts.width as f64 / makespan;
    let mut out = String::new();
    out.push_str(&format!(
        "time axis: 0 .. {makespan:.3} ({} chars)\n",
        opts.width
    ));
    for q in 0..m {
        let mut lane = String::new();
        let mut cursor = 0usize;
        let mut mem_total = 0.0;
        let mut busy_total = 0.0;
        // Tasks of this processor ordered by start time.
        let mut lane_tasks: Vec<usize> = (0..schedule.n())
            .filter(|&i| schedule.proc_of(i) == q)
            .collect();
        lane_tasks
            .sort_by(|&a, &b| sws_model::numeric::total_cmp(schedule.start(a), schedule.start(b)));
        for i in lane_tasks {
            let t = tasks.get(i);
            mem_total += t.s;
            busy_total += t.p;
            let start_col = (schedule.start(i) * scale).round() as usize;
            let end_col = ((schedule.start(i) + t.p) * scale).round() as usize;
            while cursor < start_col {
                lane.push('.');
                cursor += 1;
            }
            let label = format!("t{i}:s={:.2}", t.s);
            let body_len = end_col.saturating_sub(start_col).max(label.len() + 2);
            let mut body = String::with_capacity(body_len);
            body.push('[');
            body.push_str(&label);
            while body.len() + 1 < body_len {
                body.push(' ');
            }
            body.push(']');
            lane.push_str(&body);
            cursor += body.len();
        }
        if opts.totals {
            out.push_str(&format!(
                "P{q:<2} |{lane}|  busy = {busy_total:.3}, mem = {mem_total:.3}\n"
            ));
        } else {
            out.push_str(&format!("P{q:<2} |{lane}|\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_model::schedule::Assignment;

    fn figure1_setup() -> (TaskSet, TimedSchedule) {
        // The first Pareto-optimal schedule of Figure 1: task 0 alone on
        // P0, tasks 1 and 2 on P1.
        let tasks = TaskSet::from_ps(&[1.0, 0.5, 0.5], &[0.001, 1.0, 1.0]).unwrap();
        let asg = Assignment::new(vec![0, 1, 1], 2).unwrap();
        let sched = asg.into_timed(&tasks);
        (tasks, sched)
    }

    #[test]
    fn renders_one_lane_per_processor() {
        let (tasks, sched) = figure1_setup();
        let text = render_gantt(&tasks, &sched, &GanttOptions::default());
        assert_eq!(text.lines().count(), 3); // header + 2 lanes
        assert!(text.contains("P0"));
        assert!(text.contains("P1"));
    }

    #[test]
    fn labels_contain_task_ids_and_memory() {
        let (tasks, sched) = figure1_setup();
        let text = render_gantt(&tasks, &sched, &GanttOptions::default());
        assert!(text.contains("t0:s=0.00"));
        assert!(text.contains("t1:s=1.00"));
        assert!(text.contains("t2:s=1.00"));
    }

    #[test]
    fn totals_report_busy_time_and_memory() {
        let (tasks, sched) = figure1_setup();
        let text = render_gantt(&tasks, &sched, &GanttOptions::default());
        assert!(text.contains("busy = 1.000, mem = 0.001"));
        assert!(text.contains("busy = 1.000, mem = 2.000"));
    }

    #[test]
    fn totals_can_be_disabled() {
        let (tasks, sched) = figure1_setup();
        let text = render_gantt(
            &tasks,
            &sched,
            &GanttOptions {
                width: 40,
                totals: false,
            },
        );
        assert!(!text.contains("busy ="));
    }

    #[test]
    fn empty_schedule_renders_without_panicking() {
        let tasks = TaskSet::from_ps(&[], &[]).unwrap();
        let sched = TimedSchedule::new(vec![], vec![], 2).unwrap();
        let text = render_gantt(&tasks, &sched, &GanttOptions::default());
        assert!(text.contains("P0"));
        assert!(text.contains("P1"));
    }
}
