//! One-call helpers to simulate schedules produced by the algorithms.

use sws_dag::DagInstance;
use sws_model::error::ModelError;
use sws_model::schedule::{Assignment, TimedSchedule};
use sws_model::Instance;

use crate::engine::{SimulationEngine, SimulationReport};

/// Simulates an assignment of independent tasks (each processor runs its
/// tasks back to back in index order).
pub fn simulate_assignment(
    inst: &Instance,
    asg: &Assignment,
    memory_capacity: Option<f64>,
) -> Result<SimulationReport, ModelError> {
    let timed = asg.into_timed(inst.tasks());
    let preds: Vec<Vec<usize>> = vec![Vec::new(); inst.n()];
    SimulationEngine::new().replay(inst.tasks(), inst.m(), &timed, &preds, memory_capacity)
}

/// Simulates an arbitrary timed schedule of independent tasks.
pub fn simulate_timed(
    inst: &Instance,
    schedule: &TimedSchedule,
    memory_capacity: Option<f64>,
) -> Result<SimulationReport, ModelError> {
    let preds: Vec<Vec<usize>> = vec![Vec::new(); inst.n()];
    SimulationEngine::new().replay(inst.tasks(), inst.m(), schedule, &preds, memory_capacity)
}

/// Simulates a timed schedule of a precedence-constrained instance,
/// verifying the precedence constraints along the way.
pub fn simulate_dag_schedule(
    inst: &DagInstance,
    schedule: &TimedSchedule,
    memory_capacity: Option<f64>,
) -> Result<SimulationReport, ModelError> {
    SimulationEngine::new().replay(
        inst.tasks(),
        inst.m(),
        schedule,
        inst.graph().all_preds(),
        memory_capacity,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_dag::prelude::*;
    use sws_listsched::priority::hlf_priority;
    use sws_listsched::{dag_list_schedule, graham_cmax, spt_schedule};

    #[test]
    fn graham_schedules_replay_cleanly() {
        let inst = Instance::from_ps(
            &[3.0, 1.0, 4.0, 1.0, 5.0, 9.0],
            &[2.0, 7.0, 1.0, 8.0, 2.0, 8.0],
            3,
        )
        .unwrap();
        let asg = graham_cmax(&inst);
        let rep = simulate_assignment(&inst, &asg, None).unwrap();
        let expected = sws_model::objectives::cmax_of_assignment(inst.tasks(), &asg);
        assert!((rep.makespan - expected).abs() < 1e-9);
        let expected_mem = sws_model::objectives::mmax_of_assignment(inst.tasks(), &asg);
        assert!((rep.peak_memory - expected_mem).abs() < 1e-9);
    }

    #[test]
    fn spt_schedules_replay_and_report_sum_completion() {
        let inst = Instance::from_ps(&[4.0, 2.0, 7.0, 1.0], &[1.0; 4], 2).unwrap();
        let sched = spt_schedule(&inst);
        let rep = simulate_timed(&inst, &sched, None).unwrap();
        assert!((rep.sum_completion - sched.sum_completion(inst.tasks())).abs() < 1e-9);
    }

    #[test]
    fn dag_list_schedules_replay_with_precedence_checking() {
        let dag = DagInstance::new(gaussian_elimination(5), 3).unwrap();
        let sched = dag_list_schedule(&dag, &hlf_priority(dag.graph()));
        let rep = simulate_dag_schedule(&dag, &sched, None).unwrap();
        assert!((rep.makespan - sched.cmax(dag.tasks())).abs() < 1e-9);
        assert!(rep.utilization > 0.0 && rep.utilization <= 1.0 + 1e-12);
    }

    #[test]
    fn capacity_violations_are_reported_through_the_same_path() {
        let inst = Instance::from_ps(&[1.0, 1.0], &[5.0, 5.0], 1).unwrap();
        let asg = Assignment::new(vec![0, 0], 1).unwrap();
        assert!(simulate_assignment(&inst, &asg, Some(12.0)).is_ok());
        assert!(simulate_assignment(&inst, &asg, Some(9.0)).is_err());
    }

    #[test]
    fn peak_concurrency_never_exceeds_processor_count() {
        let dag = DagInstance::new(fft_butterfly(3), 4).unwrap();
        let sched = dag_list_schedule(&dag, &hlf_priority(dag.graph()));
        let rep = simulate_dag_schedule(&dag, &sched, None).unwrap();
        assert!(rep.trace.peak_concurrency() <= 4);
    }
}
