//! # sws-simulator
//!
//! Discrete-event multiprocessor execution simulator.
//!
//! The paper's model is `m` identical processors with *cumulative* memory
//! occupation (code or results stay resident for the whole run). This
//! crate replays schedules on that model, independently from the
//! algorithms that produced them:
//!
//! * [`event`] — time-ordered simulation events,
//! * [`engine`] — the discrete-event engine: verifies that every task
//!   starts on a free processor after all of its predecessors, and
//!   accumulates busy/idle statistics,
//! * [`memory`] — per-processor cumulative memory profiles over time,
//! * [`trace`] — the event trace and utilization summaries,
//! * [`gantt`] — ASCII Gantt charts with memory annotations (the visual
//!   style of Figures 1 and 2 of the paper),
//! * [`replay`] — one-call helpers to simulate assignments and DAG
//!   schedules and cross-check the objective values.
//!
//! The simulator is the "testbed" of this reproduction: every experiment
//! validates its schedules here rather than trusting the algorithms'
//! internal bookkeeping.

#![forbid(unsafe_code)]

pub mod engine;
pub mod event;
pub mod gantt;
pub mod memory;
pub mod replay;
pub mod trace;

pub use engine::{SimulationEngine, SimulationReport};
pub use gantt::render_gantt;
pub use replay::{simulate_assignment, simulate_dag_schedule, simulate_timed};
