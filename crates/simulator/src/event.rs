//! Time-ordered simulation events.

use std::cmp::Ordering;

use serde::{Deserialize, Serialize};

/// What happens at an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A task starts executing on a processor.
    Start,
    /// A task finishes executing on a processor.
    Finish,
}

/// One simulation event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Simulation time of the event.
    pub time: f64,
    /// Task concerned.
    pub task: usize,
    /// Processor concerned.
    pub proc: usize,
    /// Start or finish.
    pub kind: EventKind,
}

impl Event {
    /// Creates a start event.
    pub fn start(time: f64, task: usize, proc: usize) -> Self {
        Event {
            time,
            task,
            proc,
            kind: EventKind::Start,
        }
    }

    /// Creates a finish event.
    pub fn finish(time: f64, task: usize, proc: usize) -> Self {
        Event {
            time,
            task,
            proc,
            kind: EventKind::Finish,
        }
    }
}

impl Eq for Event {}

impl Ord for Event {
    /// Events are ordered by time; at equal times finishes are processed
    /// before starts (so a processor freed at `t` can host a task starting
    /// at `t`), and ties after that break by task index for determinism.
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .partial_cmp(&other.time)
            .expect("event times are finite")
            .then_with(|| kind_rank(self.kind).cmp(&kind_rank(other.kind)))
            .then_with(|| self.task.cmp(&other.task))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

fn kind_rank(kind: EventKind) -> u8 {
    match kind {
        EventKind::Finish => 0,
        EventKind::Start => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_sort_by_time() {
        let mut events = [
            Event::start(2.0, 0, 0),
            Event::finish(1.0, 1, 0),
            Event::start(0.5, 2, 1),
        ];
        events.sort();
        assert_eq!(events[0].task, 2);
        assert_eq!(events[1].task, 1);
        assert_eq!(events[2].task, 0);
    }

    #[test]
    fn finish_precedes_start_at_the_same_time() {
        let mut events = [Event::start(1.0, 0, 0), Event::finish(1.0, 1, 0)];
        events.sort();
        assert_eq!(events[0].kind, EventKind::Finish);
        assert_eq!(events[1].kind, EventKind::Start);
    }

    #[test]
    fn equal_time_and_kind_break_ties_by_task() {
        let mut events = [Event::start(1.0, 5, 0), Event::start(1.0, 3, 1)];
        events.sort();
        assert_eq!(events[0].task, 3);
    }
}
