//! Time-ordered simulation events.

use std::cmp::Ordering;

use serde::{Deserialize, Serialize};
use sws_model::numeric::order_all;

/// What happens at an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A task starts executing on a processor.
    Start,
    /// A task finishes executing on a processor.
    Finish,
}

/// One simulation event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Simulation time of the event. Events built by the replay engine
    /// inherit finiteness from `TimedSchedule::new`'s validation (and
    /// task times are validated at `TaskSet` construction), so on the
    /// engine path this is always finite; the [`Ord`] impl still
    /// tolerates arbitrary bits because deserialized traces bypass that
    /// validation.
    pub time: f64,
    /// Task concerned.
    pub task: usize,
    /// Processor concerned.
    pub proc: usize,
    /// Start or finish.
    pub kind: EventKind,
}

impl Event {
    /// Creates a start event.
    pub fn start(time: f64, task: usize, proc: usize) -> Self {
        Event {
            time,
            task,
            proc,
            kind: EventKind::Start,
        }
    }

    /// Creates a finish event.
    pub fn finish(time: f64, task: usize, proc: usize) -> Self {
        Event {
            time,
            task,
            proc,
            kind: EventKind::Finish,
        }
    }
}

impl Eq for Event {}

impl Ord for Event {
    /// Events are ordered by time; at equal times finishes are processed
    /// before starts (so a processor freed at `t` can host a task starting
    /// at `t`), and ties after that break by task index for determinism.
    ///
    /// Times compare under the IEEE-754 total order
    /// ([`sws_model::numeric::order_all`]): `Ord`'s contract must hold
    /// for *any* bits a deserialized trace can carry, and a panic here
    /// would fire from inside a sort or `BinaryHeap` sift mid-replay.
    /// A NaN time therefore sorts (deterministically, after `+∞`)
    /// instead of aborting; schedule validation, not the event queue,
    /// is where non-finite times are diagnosed.
    fn cmp(&self, other: &Self) -> Ordering {
        order_all(self.time, other.time)
            .then_with(|| kind_rank(self.kind).cmp(&kind_rank(other.kind)))
            .then_with(|| self.task.cmp(&other.task))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

fn kind_rank(kind: EventKind) -> u8 {
    match kind {
        EventKind::Finish => 0,
        EventKind::Start => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_sort_by_time() {
        let mut events = [
            Event::start(2.0, 0, 0),
            Event::finish(1.0, 1, 0),
            Event::start(0.5, 2, 1),
        ];
        events.sort();
        assert_eq!(events[0].task, 2);
        assert_eq!(events[1].task, 1);
        assert_eq!(events[2].task, 0);
    }

    #[test]
    fn finish_precedes_start_at_the_same_time() {
        let mut events = [Event::start(1.0, 0, 0), Event::finish(1.0, 1, 0)];
        events.sort();
        assert_eq!(events[0].kind, EventKind::Finish);
        assert_eq!(events[1].kind, EventKind::Start);
    }

    #[test]
    fn equal_time_and_kind_break_ties_by_task() {
        let mut events = [Event::start(1.0, 5, 0), Event::start(1.0, 3, 1)];
        events.sort();
        assert_eq!(events[0].task, 3);
    }

    #[test]
    fn non_finite_times_sort_instead_of_panicking() {
        // A corrupted trace must not abort mid-sort: NaN lands last
        // (above +∞ under the IEEE total order), deterministically.
        let mut events = [
            Event::start(f64::NAN, 0, 0),
            Event::start(1.0, 1, 0),
            Event::finish(f64::INFINITY, 2, 0),
            Event::start(-0.0, 3, 0),
            Event::finish(0.0, 4, 0),
        ];
        events.sort();
        let order: Vec<usize> = events.iter().map(|e| e.task).collect();
        // -0.0 strictly precedes +0.0 under totalOrder, so task 3's
        // start beats task 4's finish despite the kind rank.
        assert_eq!(order, vec![3, 4, 1, 2, 0]);
        // The comparison is a total order even among NaNs.
        let a = Event::start(f64::NAN, 0, 0);
        let b = Event::start(f64::NAN, 1, 0);
        assert_eq!(a.cmp(&b), Ordering::Less);
        assert_eq!(b.cmp(&a), Ordering::Greater);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }
}
