//! Event traces and utilization summaries.

use serde::{Deserialize, Serialize};

use crate::event::{Event, EventKind};

/// A chronological record of the simulation events.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<Event>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event (events are pushed in simulation order).
    pub fn push(&mut self, ev: Event) {
        self.events.push(ev);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All events, in simulation order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events concerning one processor, in simulation order. Borrows —
    /// the differential replan oracle walks per-processor slices of
    /// every replayed schedule, so the filter must not allocate;
    /// `.collect()` at the call site where a `Vec` is wanted.
    // sws-lint: hot-path
    pub fn for_processor(&self, proc: usize) -> impl Iterator<Item = Event> + '_ {
        self.events.iter().copied().filter(move |e| e.proc == proc)
    }

    /// Events concerning one task (its start and finish), in simulation
    /// order. Borrows, like [`Trace::for_processor`].
    pub fn for_task(&self, task: usize) -> impl Iterator<Item = Event> + '_ {
        self.events.iter().copied().filter(move |e| e.task == task)
    }
    // sws-lint: end-hot-path

    /// The number of tasks running at a given time (start inclusive,
    /// finish exclusive).
    pub fn concurrency_at(&self, time: f64) -> usize {
        let mut running = 0usize;
        for ev in &self.events {
            if ev.time > time + 1e-12 {
                continue;
            }
            match ev.kind {
                EventKind::Start => running += 1,
                EventKind::Finish => running = running.saturating_sub(1),
            }
        }
        running
    }

    /// Maximum number of simultaneously running tasks over the whole run.
    pub fn peak_concurrency(&self) -> usize {
        let mut sorted = self.events.clone();
        sorted.sort();
        let mut running = 0usize;
        let mut peak = 0usize;
        for ev in sorted {
            match ev.kind {
                EventKind::Start => {
                    running += 1;
                    peak = peak.max(running);
                }
                EventKind::Finish => running = running.saturating_sub(1),
            }
        }
        peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        t.push(Event::start(0.0, 0, 0));
        t.push(Event::start(0.0, 1, 1));
        t.push(Event::finish(1.0, 1, 1));
        t.push(Event::start(1.0, 2, 1));
        t.push(Event::finish(2.0, 0, 0));
        t.push(Event::finish(3.0, 2, 1));
        t
    }

    #[test]
    fn filters_by_processor_and_task() {
        let t = sample_trace();
        assert_eq!(t.len(), 6);
        assert_eq!(t.for_processor(0).count(), 2);
        assert_eq!(t.for_processor(1).count(), 4);
        assert_eq!(t.for_task(2).count(), 2);
        // The iterators preserve simulation order.
        let times: Vec<f64> = t.for_processor(1).map(|e| e.time).collect();
        assert_eq!(times, vec![0.0, 1.0, 1.0, 3.0]);
    }

    #[test]
    fn peak_concurrency_counts_parallel_tasks() {
        let t = sample_trace();
        assert_eq!(t.peak_concurrency(), 2);
        assert_eq!(Trace::new().peak_concurrency(), 0);
    }

    #[test]
    fn concurrency_at_start_and_middle() {
        let t = sample_trace();
        assert_eq!(t.concurrency_at(0.5), 2);
        assert_eq!(t.concurrency_at(2.5), 1);
    }
}
