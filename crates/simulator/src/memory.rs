//! Per-processor cumulative memory profiles.
//!
//! In the paper's model memory is *cumulative*: code (or results) loaded
//! for a task stays resident on the processor for the rest of the run, so
//! each processor's occupancy is a non-decreasing step function of time.

use serde::{Deserialize, Serialize};

/// The memory occupancy of every processor over time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryProfile {
    /// For each processor, the `(time, new_level)` steps in chronological
    /// order of allocation.
    steps: Vec<Vec<(f64, f64)>>,
    current: Vec<f64>,
}

impl MemoryProfile {
    /// An empty profile for `m` processors.
    pub fn new(m: usize) -> Self {
        MemoryProfile {
            steps: vec![Vec::new(); m],
            current: vec![0.0; m],
        }
    }

    /// Number of processors tracked.
    pub fn processors(&self) -> usize {
        self.current.len()
    }

    /// Records that `amount` memory units become resident on processor
    /// `proc` at `time`. Out-of-range processors are ignored (the
    /// profile sits inside the non-panicking replay oracle; the replay
    /// engine validates processor ranges before it allocates).
    pub fn allocate(&mut self, proc: usize, time: f64, amount: f64) {
        let Some(level) = self.current.get_mut(proc) else {
            return;
        };
        *level += amount;
        let level = *level;
        if let Some(steps) = self.steps.get_mut(proc) {
            steps.push((time, level));
        }
    }

    /// Current occupancy of a processor (`0.0` for an out-of-range
    /// processor — an untracked processor holds nothing).
    pub fn current(&self, proc: usize) -> f64 {
        self.current.get(proc).copied().unwrap_or(0.0)
    }

    /// Final occupancy of every processor.
    pub fn final_levels(&self) -> Vec<f64> {
        self.current.clone()
    }

    /// The largest occupancy reached by any processor (equal to the final
    /// level because occupancy never decreases).
    pub fn peak(&self) -> f64 {
        self.current.iter().copied().fold(0.0, f64::max)
    }

    /// Occupancy of `proc` at an arbitrary `time` (the level of the last
    /// step at or before `time`).
    pub fn level_at(&self, proc: usize, time: f64) -> f64 {
        let mut level = 0.0;
        for &(t, l) in self.steps(proc) {
            if t <= time + 1e-12 {
                level = l;
            } else {
                break;
            }
        }
        level
    }

    /// The raw steps of a processor, `(time, level)` in chronological
    /// order (empty for an out-of-range processor).
    pub fn steps(&self, proc: usize) -> &[(f64, f64)] {
        self.steps.get(proc).map_or(&[], Vec::as_slice)
    }

    /// Samples all processors at `samples` evenly spaced instants in
    /// `[0, horizon]` — convenient for plotting occupancy curves.
    pub fn sample(&self, horizon: f64, samples: usize) -> Vec<Vec<f64>> {
        assert!(samples >= 2, "need at least two samples");
        (0..self.processors())
            .map(|q| {
                (0..samples)
                    .map(|k| {
                        let t = horizon * k as f64 / (samples - 1) as f64;
                        self.level_at(q, t)
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_accumulates_and_never_decreases() {
        let mut p = MemoryProfile::new(2);
        p.allocate(0, 0.0, 2.0);
        p.allocate(0, 1.5, 3.0);
        p.allocate(1, 0.5, 1.0);
        assert_eq!(p.current(0), 5.0);
        assert_eq!(p.current(1), 1.0);
        assert_eq!(p.peak(), 5.0);
        assert_eq!(p.final_levels(), vec![5.0, 1.0]);
        let steps = p.steps(0);
        assert!(steps.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn level_at_interpolates_as_a_step_function() {
        let mut p = MemoryProfile::new(1);
        p.allocate(0, 1.0, 4.0);
        p.allocate(0, 3.0, 2.0);
        assert_eq!(p.level_at(0, 0.5), 0.0);
        assert_eq!(p.level_at(0, 1.0), 4.0);
        assert_eq!(p.level_at(0, 2.9), 4.0);
        assert_eq!(p.level_at(0, 3.0), 6.0);
        assert_eq!(p.level_at(0, 100.0), 6.0);
    }

    #[test]
    fn sampling_produces_one_series_per_processor() {
        let mut p = MemoryProfile::new(2);
        p.allocate(0, 0.0, 1.0);
        p.allocate(1, 2.0, 5.0);
        let series = p.sample(4.0, 5);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0], vec![1.0, 1.0, 1.0, 1.0, 1.0]);
        assert_eq!(series[1], vec![0.0, 0.0, 5.0, 5.0, 5.0]);
    }

    #[test]
    fn empty_profile_is_all_zero() {
        let p = MemoryProfile::new(3);
        assert_eq!(p.peak(), 0.0);
        assert_eq!(p.level_at(2, 10.0), 0.0);
    }
}
