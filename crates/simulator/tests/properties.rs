//! Property-based tests of the discrete-event simulator: replaying a
//! valid schedule reproduces the analytic objectives; corrupting a valid
//! schedule (overlap, precedence violation, missing memory) is detected;
//! traces and memory profiles are internally consistent.

use proptest::collection::vec;
use proptest::prelude::*;

use sws_dag::DagInstance;
use sws_listsched::dag_list_schedule;
use sws_listsched::priority::hlf_priority;
use sws_model::objectives::{cmax_of_timed, mmax_of_timed, sum_completion, ObjectivePoint};
use sws_model::schedule::{Assignment, TimedSchedule};
use sws_model::Instance;
use sws_simulator::gantt::GanttOptions;
use sws_simulator::{render_gantt, simulate_assignment, simulate_dag_schedule, simulate_timed};

fn instance_and_assignment(
    max_n: usize,
    max_m: usize,
) -> impl Strategy<Value = (Instance, Assignment)> {
    (1usize..=max_m, 1usize..=max_n).prop_flat_map(move |(m, n)| {
        (
            vec(0.1f64..30.0, n),
            vec(0.1f64..30.0, n),
            vec(0usize..m, n),
            Just(m),
        )
            .prop_map(|(p, s, procs, m)| {
                let inst = Instance::from_ps(&p, &s, m).expect("valid draws");
                let asg = Assignment::new(procs, m).expect("procs < m");
                (inst, asg)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Replaying a back-to-back assignment reproduces the analytic
    /// objectives, conserves busy time, and produces exactly two events
    /// per task.
    #[test]
    fn replay_agrees_with_analytic_evaluation((inst, asg) in instance_and_assignment(30, 5)) {
        let report = simulate_assignment(&inst, &asg, None).unwrap();
        let point = ObjectivePoint::of_assignment(&inst, &asg);
        prop_assert!((report.makespan - point.cmax).abs() < 1e-9);
        prop_assert!((report.peak_memory - point.mmax).abs() < 1e-9);
        prop_assert!((report.busy.iter().sum::<f64>() - inst.total_work()).abs() < 1e-9);
        prop_assert_eq!(report.trace.len(), 2 * inst.n());
        prop_assert!(report.trace.peak_concurrency() <= inst.m());
        // Final memory levels equal the per-processor storage sums.
        let mems = asg.memory(inst.tasks());
        for (a, b) in report.final_memory.iter().zip(&mems) {
            prop_assert!((a - b).abs() < 1e-9);
        }
        // Utilization is the busy fraction of m × makespan.
        if report.makespan > 0.0 {
            let expected = inst.total_work() / (inst.m() as f64 * report.makespan);
            prop_assert!((report.utilization - expected).abs() < 1e-6);
        }
    }

    /// An arbitrary timed schedule (tasks spread out with explicit gaps)
    /// replays cleanly and the simulator's ΣCi matches the analytic value.
    #[test]
    fn spread_out_timed_schedules_replay((inst, asg) in instance_and_assignment(20, 4), gap in 0.0f64..5.0) {
        // Build a timed schedule with an extra `gap` between consecutive
        // tasks of a processor: still overlap-free, just idle time.
        let mut clock = vec![0.0f64; inst.m()];
        let mut start = vec![0.0f64; inst.n()];
        for (i, st) in start.iter_mut().enumerate() {
            let q = asg.proc_of(i);
            *st = clock[q];
            clock[q] += inst.p(i) + gap;
        }
        let sched = TimedSchedule::new(asg.as_slice().to_vec(), start, inst.m()).unwrap();
        let report = simulate_timed(&inst, &sched, None).unwrap();
        prop_assert!((report.makespan - cmax_of_timed(inst.tasks(), &sched)).abs() < 1e-9);
        prop_assert!((report.peak_memory - mmax_of_timed(inst.tasks(), &sched)).abs() < 1e-9);
        prop_assert!((report.sum_completion - sum_completion(inst.tasks(), &sched)).abs() < 1e-9);
        // Peak memory never exceeds the final total of the heaviest
        // processor (memory is cumulative and never released).
        let max_final = report.final_memory.iter().cloned().fold(0.0, f64::max);
        prop_assert!((report.peak_memory - max_final).abs() < 1e-9);
    }

    /// A memory capacity below the peak is rejected; at or above the peak
    /// it is accepted.
    #[test]
    fn capacity_checks_are_sharp((inst, asg) in instance_and_assignment(20, 4)) {
        let point = ObjectivePoint::of_assignment(&inst, &asg);
        prop_assert!(simulate_assignment(&inst, &asg, Some(point.mmax + 1e-6)).is_ok());
        if point.mmax > 1e-6 {
            prop_assert!(simulate_assignment(&inst, &asg, Some(point.mmax * 0.9)).is_err());
        }
    }

    /// Corrupting a valid schedule is detected: shifting one task to start
    /// in the middle of another task on the same processor is an overlap.
    #[test]
    fn overlaps_are_detected((inst, asg) in instance_and_assignment(12, 3)) {
        // Need a processor with at least two tasks.
        let per = asg.tasks_per_processor();
        if let Some(lane) = per.iter().find(|lane| lane.len() >= 2) {
            let timed = asg.into_timed(inst.tasks());
            let first = lane[0];
            let second = lane[1];
            let mut start: Vec<f64> = (0..inst.n()).map(|i| timed.start(i)).collect();
            // Start the second task halfway through the first one.
            start[second] = timed.start(first) + inst.p(first) * 0.5;
            let corrupted = TimedSchedule::new(
                (0..inst.n()).map(|i| timed.proc_of(i)).collect(),
                start,
                inst.m(),
            ).unwrap();
            prop_assert!(simulate_timed(&inst, &corrupted, None).is_err());
        }
    }

    /// Gantt rendering mentions every task exactly once per schedule and
    /// scales with the requested width.
    #[test]
    fn gantt_rendering_is_complete((inst, asg) in instance_and_assignment(15, 3), width in 30usize..100) {
        let timed = asg.into_timed(inst.tasks());
        let text = render_gantt(inst.tasks(), &timed, &GanttOptions { width, totals: true });
        for i in 0..inst.n() {
            prop_assert_eq!(text.matches(&format!("t{i}:")).count(), 1);
        }
        prop_assert!(text.lines().count() >= inst.m());
    }
}

#[test]
fn dag_replay_checks_precedence_and_reports_concurrency() {
    use sws_dag::generators::forkjoin::fork_join;
    let graph = fork_join(2, 6).with_costs(|i| sws_model::task::Task {
        p: 1.0 + (i % 3) as f64,
        s: 1.0,
    });
    let inst = DagInstance::new(graph, 3).unwrap();
    let sched = dag_list_schedule(&inst, &hlf_priority(inst.graph()));
    let report = simulate_dag_schedule(&inst, &sched, None).unwrap();
    assert!((report.makespan - sched.cmax(inst.tasks())).abs() < 1e-9);
    assert!(report.trace.peak_concurrency() <= 3);
    // Starting the join before its predecessors is rejected.
    let sink = inst.graph().sinks()[0];
    let mut start: Vec<f64> = (0..inst.n()).map(|i| sched.start(i)).collect();
    start[sink] = 0.0;
    let corrupted = TimedSchedule::new(
        (0..inst.n()).map(|i| sched.proc_of(i)).collect(),
        start,
        inst.m(),
    )
    .unwrap();
    assert!(simulate_dag_schedule(&inst, &corrupted, None).is_err());
}

#[test]
fn memory_profile_steps_are_monotone_in_time() {
    let inst = Instance::from_ps(&[1.0, 1.0, 1.0, 1.0], &[1.0, 2.0, 3.0, 4.0], 2).unwrap();
    let asg = Assignment::new(vec![0, 1, 0, 1], 2).unwrap();
    let report = simulate_assignment(&inst, &asg, None).unwrap();
    for q in 0..2 {
        let steps = report.memory_profile.steps(q);
        for w in steps.windows(2) {
            assert!(w[1].0 >= w[0].0, "time must be non-decreasing");
            assert!(w[1].1 >= w[0].1, "cumulative memory never shrinks");
        }
    }
    assert!((report.memory_profile.peak() - report.peak_memory).abs() < 1e-9);
}
