//! Property-based tests of the exact solvers: the branch-and-bound
//! optimum agrees with an independent exhaustive search, the two-machine
//! DP agrees with both, and the Pareto-front enumerator produces exactly
//! the set of non-dominated objective vectors.

use proptest::collection::vec;
use proptest::prelude::*;

use sws_exact::branch_bound::{optimal_cmax, optimal_mmax, optimal_partition, optimal_point};
use sws_exact::dp::{optimal_two_machine_int, optimal_two_machine_scaled};
use sws_exact::pareto_enum::{best_cmax_under_memory_budget, pareto_front};
use sws_model::objectives::{cmax_of_assignment, ObjectivePoint};
use sws_model::validate::validate_assignment;
use sws_model::Instance;

/// Plain exhaustive search over all m^n assignments, the independent
/// reference the faster solvers are checked against.
fn exhaustive_cmax(weights: &[f64], m: usize) -> f64 {
    let n = weights.len();
    let mut best = f64::INFINITY;
    let states = (m as u64).pow(n as u32);
    for code in 0..states {
        let mut c = code;
        let mut loads = vec![0.0; m];
        for &w in weights {
            loads[(c % m as u64) as usize] += w;
            c /= m as u64;
        }
        best = best.min(loads.into_iter().fold(0.0, f64::max));
    }
    best
}

/// Exhaustive bi-objective Pareto front (no symmetry breaking, no
/// pruning), used to validate the smarter enumerator.
fn exhaustive_front(inst: &Instance) -> Vec<ObjectivePoint> {
    let n = inst.n();
    let m = inst.m();
    let states = (m as u64).pow(n as u32);
    let mut points = Vec::new();
    for code in 0..states {
        let mut c = code;
        let mut loads = vec![0.0; m];
        let mut mems = vec![0.0; m];
        for i in 0..n {
            let q = (c % m as u64) as usize;
            loads[q] += inst.p(i);
            mems[q] += inst.s(i);
            c /= m as u64;
        }
        points.push(ObjectivePoint::new(
            loads.into_iter().fold(0.0, f64::max),
            mems.into_iter().fold(0.0, f64::max),
        ));
    }
    // Keep only the non-dominated ones.
    let mut front: Vec<ObjectivePoint> = Vec::new();
    for p in &points {
        let dominated = points.iter().any(|q| {
            (q.cmax < p.cmax - 1e-9 && q.mmax <= p.mmax + 1e-9)
                || (q.cmax <= p.cmax + 1e-9 && q.mmax < p.mmax - 1e-9)
        });
        if !dominated
            && !front
                .iter()
                .any(|q| (q.cmax - p.cmax).abs() < 1e-9 && (q.mmax - p.mmax).abs() < 1e-9)
        {
            front.push(*p);
        }
    }
    front.sort_by(|a, b| sws_model::numeric::total_cmp(a.cmax, b.cmax));
    front
}

fn tiny_instance() -> impl Strategy<Value = Instance> {
    (2usize..=3, 2usize..=7).prop_flat_map(|(m, n)| {
        (vec(0.5f64..10.0, n), vec(0.5f64..10.0, n), Just(m))
            .prop_map(|(p, s, m)| Instance::from_ps(&p, &s, m).expect("valid draws"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Branch and bound matches the plain exhaustive optimum and returns a
    /// witness partition achieving it.
    #[test]
    fn branch_and_bound_matches_exhaustive_search(inst in tiny_instance()) {
        let weights: Vec<f64> = (0..inst.n()).map(|i| inst.p(i)).collect();
        let reference = exhaustive_cmax(&weights, inst.m());
        let via_bb = optimal_cmax(&inst);
        prop_assert!((via_bb - reference).abs() < 1e-9);
        let (value, witness) = optimal_partition(&weights, inst.m());
        prop_assert!((value - reference).abs() < 1e-9);
        validate_assignment(&inst, &witness, None).unwrap();
        prop_assert!((cmax_of_assignment(inst.tasks(), &witness) - value).abs() < 1e-9);
        // The memory optimum is the makespan optimum of the swapped instance.
        prop_assert!((optimal_mmax(&inst) - optimal_cmax(&inst.swapped())).abs() < 1e-9);
    }

    /// The two-machine subset-sum DP agrees with branch and bound for
    /// integer weights.
    #[test]
    fn two_machine_dp_matches_branch_and_bound(
        weights in vec(1u64..40, 2..12),
    ) {
        let float: Vec<f64> = weights.iter().map(|&w| w as f64).collect();
        let inst = Instance::from_ps(&float, &vec![1.0; float.len()], 2).unwrap();
        let dp = optimal_two_machine_int(&weights);
        prop_assert!((dp as f64 - optimal_cmax(&inst)).abs() < 1e-9);
        // The scaled variant at unit quantum agrees exactly on integers.
        let scaled = optimal_two_machine_scaled(&float, 1.0);
        prop_assert!((scaled - dp as f64).abs() < 1e-9);
    }

    /// The Pareto enumerator returns exactly the non-dominated set, each
    /// tagged with an assignment achieving its point, and its extremes are
    /// the single-objective optima.
    #[test]
    fn pareto_enumerator_matches_the_exhaustive_front(inst in tiny_instance()) {
        let front = pareto_front(&inst);
        let reference = exhaustive_front(&inst);
        let mut points = front.points();
        points.sort_by(|a, b| sws_model::numeric::total_cmp(a.cmax, b.cmax));
        prop_assert_eq!(points.len(), reference.len(),
            "front sizes differ: {:?} vs {:?}", points, reference);
        for (a, b) in points.iter().zip(&reference) {
            prop_assert!((a.cmax - b.cmax).abs() < 1e-9);
            prop_assert!((a.mmax - b.mmax).abs() < 1e-9);
        }
        for (pt, asg) in front.iter() {
            validate_assignment(&inst, asg, None).unwrap();
            let achieved = ObjectivePoint::of_assignment(&inst, asg);
            prop_assert!((achieved.cmax - pt.cmax).abs() < 1e-9);
            prop_assert!((achieved.mmax - pt.mmax).abs() < 1e-9);
        }
        let opt = optimal_point(&inst);
        prop_assert!((front.best_cmax().unwrap().0.cmax - opt.cmax).abs() < 1e-9);
        prop_assert!((front.best_mmax().unwrap().0.mmax - opt.mmax).abs() < 1e-9);
    }

    /// The budget query walks the front correctly: it is monotone in the
    /// budget, infeasible below the smallest front memory, and equal to the
    /// unconstrained optimum for huge budgets.
    #[test]
    fn budget_queries_are_monotone_and_consistent(inst in tiny_instance()) {
        let front = pareto_front(&inst);
        let min_mem = front.best_mmax().unwrap().0.mmax;
        let max_mem = front.best_cmax().unwrap().0.mmax;
        prop_assert!(best_cmax_under_memory_budget(&inst, min_mem * 0.99 - 1e-6).is_none());
        let unconstrained = best_cmax_under_memory_budget(&inst, max_mem + 1.0).unwrap();
        prop_assert!((unconstrained - optimal_cmax(&inst)).abs() < 1e-9);
        let mut last = f64::INFINITY;
        let mut budget = min_mem;
        while budget <= max_mem + 1e-9 {
            if let Some(best) = best_cmax_under_memory_budget(&inst, budget + 1e-9) {
                prop_assert!(best <= last + 1e-9);
                last = best;
            }
            budget += (max_mem - min_mem).max(1.0) / 4.0;
        }
    }
}

#[test]
fn known_partition_instances() {
    // Classic PARTITION-style instance: perfectly splittable.
    let inst = Instance::from_ps(&[3.0, 1.0, 1.0, 2.0, 2.0, 1.0], &[1.0; 6], 2).unwrap();
    assert!((optimal_cmax(&inst) - 5.0).abs() < 1e-9);
    // Not splittable: 3 jobs of 2 on 2 machines.
    let odd = Instance::from_ps(&[2.0, 2.0, 2.0], &[1.0; 3], 2).unwrap();
    assert!((optimal_cmax(&odd) - 4.0).abs() < 1e-9);
    // Integer DP on the same data.
    assert_eq!(optimal_two_machine_int(&[2, 2, 2]), 4);
    assert_eq!(optimal_two_machine_int(&[3, 1, 1, 2, 2, 1]), 5);
}
