//! Optimal single-objective partitioning by branch and bound.
//!
//! Minimizes the maximum per-machine sum of a weight vector over all
//! assignments to `m` identical machines — i.e. the exact optimum of
//! `P ∥ Cmax` (weights `p_i`) or, by the symmetry of Section 2.1, of the
//! memory objective (weights `s_i`).

use sws_model::cancel::CancelProbe;
use sws_model::error::ModelError;
use sws_model::objectives::ObjectivePoint;
use sws_model::schedule::Assignment;
use sws_model::Instance;

/// Search-tree nodes between cancellation-probe polls: node expansion is
/// a handful of float operations, so polling every 256 nodes bounds
/// cancellation latency tightly at negligible overhead.
const PROBE_NODE_STRIDE: u64 = 256;

/// Exact minimum of the maximum per-machine total weight, together with an
/// optimal assignment.
pub fn optimal_partition(weights: &[f64], m: usize) -> (f64, Assignment) {
    optimal_partition_probed(weights, m, &CancelProbe::never())
        .expect("an unarmed probe cannot interrupt the search")
}

/// [`optimal_partition`] with a cooperative cancellation probe, polled
/// every [`PROBE_NODE_STRIDE`] search-tree nodes. A tripped probe stops
/// the branch and bound with `ModelError::Interrupted`.
pub fn optimal_partition_probed(
    weights: &[f64],
    m: usize,
    probe: &CancelProbe,
) -> Result<(f64, Assignment), ModelError> {
    assert!(m > 0, "need at least one machine");
    let n = weights.len();
    if n == 0 {
        return Ok((0.0, Assignment::zeroed(0, m).expect("m > 0")));
    }

    // Sort tasks by decreasing weight: large items first dramatically
    // improves pruning.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| sws_model::numeric::total_cmp(weights[b], weights[a]));

    // Initial upper bound: LPT.
    let lpt = sws_listsched::list_schedule(weights, m, &order);
    let best_value = {
        let mut loads = vec![0.0; m];
        for (i, &w) in weights.iter().enumerate() {
            loads[lpt.proc_of(i)] += w;
        }
        loads.iter().copied().fold(0.0, f64::max)
    };
    let best_assignment = lpt;

    let total: f64 = weights.iter().sum();
    let lower = (total / m as f64).max(weights.iter().copied().fold(0.0, f64::max));
    if best_value <= lower + 1e-12 {
        return Ok((best_value, best_assignment));
    }

    let mut loads = vec![0.0f64; m];
    let mut current = vec![0usize; n];
    // Suffix sums of the sorted weights for a simple look-ahead bound.
    let mut suffix = vec![0.0f64; n + 1];
    for k in (0..n).rev() {
        suffix[k] = suffix[k + 1] + weights[order[k]];
    }

    /// The depth-first search's shared state: inputs, incumbent, and the
    /// cancellation bookkeeping.
    struct Search<'a> {
        order: &'a [usize],
        weights: &'a [f64],
        suffix: &'a [f64],
        m: usize,
        lower: f64,
        probe: &'a CancelProbe,
        nodes: u64,
        best_value: f64,
        best_assignment: Assignment,
    }

    impl Search<'_> {
        fn dfs(
            &mut self,
            k: usize,
            loads: &mut [f64],
            current: &mut [usize],
        ) -> Result<(), ModelError> {
            self.nodes += 1;
            if self.nodes.is_multiple_of(PROBE_NODE_STRIDE) {
                self.probe.poll()?;
            }
            if self.best_value <= self.lower + 1e-12 {
                return Ok(()); // cannot improve any further
            }
            if k == self.order.len() {
                let value = loads.iter().copied().fold(0.0, f64::max);
                if value < self.best_value - 1e-12 {
                    self.best_value = value;
                    let mut asg = Assignment::zeroed(self.order.len(), self.m).expect("m > 0");
                    for (i, &q) in current.iter().enumerate() {
                        asg.assign(i, q).expect("q < m");
                    }
                    self.best_assignment = asg;
                }
                return Ok(());
            }
            // Look-ahead bound: even spreading the remaining work perfectly
            // cannot beat the current best if the current max already does,
            // nor if (already placed + remaining)/m exceeds it.
            let placed: f64 = loads.iter().sum();
            let ideal = ((placed + self.suffix[k]) / self.m as f64)
                .max(loads.iter().copied().fold(0.0, f64::max));
            if ideal >= self.best_value - 1e-12 {
                return Ok(());
            }
            let task = self.order[k];
            let mut tried_empty = false;
            for q in 0..self.m {
                // Symmetry breaking: trying more than one currently empty
                // machine only permutes machine names.
                if loads[q] == 0.0 {
                    if tried_empty {
                        continue;
                    }
                    tried_empty = true;
                }
                if loads[q] + self.weights[task] >= self.best_value - 1e-12 {
                    continue;
                }
                loads[q] += self.weights[task];
                current[task] = q;
                self.dfs(k + 1, loads, current)?;
                loads[q] -= self.weights[task];
            }
            Ok(())
        }
    }

    let mut search = Search {
        order: &order,
        weights,
        suffix: &suffix,
        m,
        lower,
        probe,
        nodes: 0,
        best_value,
        best_assignment,
    };
    search.dfs(0, &mut loads, &mut current)?;
    Ok((search.best_value, search.best_assignment))
}

/// Exact optimal makespan `C*max` of an independent-task instance.
pub fn optimal_cmax(inst: &Instance) -> f64 {
    let weights: Vec<f64> = (0..inst.n()).map(|i| inst.p(i)).collect();
    optimal_partition(&weights, inst.m()).0
}

/// Exact optimal memory consumption `M*max` of an independent-task
/// instance.
pub fn optimal_mmax(inst: &Instance) -> f64 {
    let weights: Vec<f64> = (0..inst.n()).map(|i| inst.s(i)).collect();
    optimal_partition(&weights, inst.m()).0
}

/// [`optimal_mmax`] with a cooperative cancellation probe.
pub fn optimal_mmax_probed(inst: &Instance, probe: &CancelProbe) -> Result<f64, ModelError> {
    let weights: Vec<f64> = (0..inst.n()).map(|i| inst.s(i)).collect();
    optimal_partition_probed(&weights, inst.m(), probe).map(|(v, _)| v)
}

/// The "ideal" reference point `(C*max, M*max)` where each objective is
/// optimized independently — exactly the reference used by the paper's
/// approximation ratios.
pub fn optimal_point(inst: &Instance) -> ObjectivePoint {
    ObjectivePoint::new(optimal_cmax(inst), optimal_mmax(inst))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_partition_is_found() {
        let (v, asg) = optimal_partition(&[6.0, 4.0, 5.0, 5.0], 2);
        assert!((v - 10.0).abs() < 1e-9);
        let mut loads = [0.0f64; 2];
        for (i, &w) in [6.0f64, 4.0, 5.0, 5.0].iter().enumerate() {
            loads[asg.proc_of(i)] += w;
        }
        assert!((loads[0] - 10.0).abs() < 1e-9);
        assert!((loads[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn beats_lpt_on_the_classic_counterexample() {
        // LPT on {7, 7, 6, 6, 5, 4, 4, 4, 4, 4, 4, 4} / 4 machines is
        // suboptimal; the optimum is 15 (total 59 is not divisible... use
        // the standard 3-machine example instead).
        // Weights {5,5,4,4,3,3,3} on 3 machines: total 27, OPT = 9.
        let (v, _) = optimal_partition(&[5.0, 5.0, 4.0, 4.0, 3.0, 3.0, 3.0], 3);
        assert!((v - 9.0).abs() < 1e-9);
    }

    #[test]
    fn single_machine_total_and_many_machines_max() {
        let (v1, _) = optimal_partition(&[1.0, 2.0, 3.0], 1);
        assert!((v1 - 6.0).abs() < 1e-9);
        let (v5, _) = optimal_partition(&[1.0, 2.0, 3.0], 5);
        assert!((v5 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn optimum_matches_paper_first_instance() {
        // Section 4.1: p = [1, 1/2, 1/2], s = [eps, 1, 1], m = 2 has
        // C*max = 1 and M*max = 1 + eps.
        let eps = 0.01;
        let inst = Instance::from_ps(&[1.0, 0.5, 0.5], &[eps, 1.0, 1.0], 2).unwrap();
        let pt = optimal_point(&inst);
        assert!((pt.cmax - 1.0).abs() < 1e-9);
        assert!((pt.mmax - (1.0 + eps)).abs() < 1e-9);
    }

    #[test]
    fn optimum_matches_paper_second_instance() {
        // Section 4.3: p = [1, eps, 1 - eps], s = [eps, 1, 1 - eps] has
        // C*max = M*max = 1.
        let eps = 0.25;
        let inst = Instance::from_ps(&[1.0, eps, 1.0 - eps], &[eps, 1.0, 1.0 - eps], 2).unwrap();
        let pt = optimal_point(&inst);
        assert!((pt.cmax - 1.0).abs() < 1e-9);
        assert!((pt.mmax - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_instance_has_zero_optimum() {
        let (v, asg) = optimal_partition(&[], 3);
        assert_eq!(v, 0.0);
        assert_eq!(asg.n(), 0);
    }

    #[test]
    fn optimum_is_never_above_lpt_and_never_below_the_lower_bound() {
        let weights = [7.0, 3.0, 9.0, 2.0, 5.0, 6.0, 4.0, 8.0, 1.0, 2.5];
        for m in 1..=4 {
            let (v, _) = optimal_partition(&weights, m);
            let total: f64 = weights.iter().sum();
            let lb = (total / m as f64).max(9.0);
            assert!(v + 1e-9 >= lb);
            let order: Vec<usize> = {
                let mut o: Vec<usize> = (0..weights.len()).collect();
                o.sort_by(|&a, &b| sws_model::numeric::total_cmp(weights[b], weights[a]));
                o
            };
            let lpt = sws_listsched::list_schedule(&weights, m, &order);
            let mut loads = vec![0.0; m];
            for (i, &w) in weights.iter().enumerate() {
                loads[lpt.proc_of(i)] += w;
            }
            let lpt_val = loads.iter().copied().fold(0.0, f64::max);
            assert!(v <= lpt_val + 1e-9);
        }
    }
}
