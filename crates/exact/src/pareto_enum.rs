//! Exhaustive enumeration of the bi-objective Pareto front.
//!
//! Enumerates every assignment of the instance's tasks to its processors
//! (with first-use symmetry breaking so permuting identical machines is
//! not re-explored) and maintains the Pareto front of `(Cmax, Mmax)`
//! points. This is the tool used to regenerate the paper's Figures 1
//! and 2 and to compute true Pareto fronts for the ratio experiments on
//! small instances.

use sws_model::cancel::CancelProbe;
use sws_model::error::ModelError;
use sws_model::objectives::ObjectivePoint;
use sws_model::pareto::ParetoFront;
use sws_model::schedule::Assignment;
use sws_model::Instance;

/// Practical size guard: `m^n` explodes quickly; the enumerator refuses
/// clearly hopeless inputs instead of hanging.
const MAX_STATES: f64 = 5e7;

/// Enumeration nodes between cancellation-probe polls.
const PROBE_NODE_STRIDE: u64 = 256;

/// Enumerates every assignment (up to machine renaming) and returns the
/// Pareto front of objective points, each tagged with one assignment that
/// achieves it.
///
/// # Panics
/// Panics when `m^n` exceeds an internal safety limit (~5·10⁷ states).
pub fn pareto_front(inst: &Instance) -> ParetoFront<Assignment> {
    pareto_front_probed(inst, &CancelProbe::never())
        .expect("an unarmed probe cannot interrupt the enumeration")
}

/// [`pareto_front`] with a cooperative cancellation probe, polled every
/// [`PROBE_NODE_STRIDE`] enumeration nodes. A tripped probe stops the
/// enumeration with `ModelError::Interrupted`.
///
/// # Panics
/// Panics when `m^n` exceeds an internal safety limit (~5·10⁷ states).
pub fn pareto_front_probed(
    inst: &Instance,
    probe: &CancelProbe,
) -> Result<ParetoFront<Assignment>, ModelError> {
    let n = inst.n();
    let m = inst.m();
    let states = (m as f64).powi(n as i32);
    assert!(
        states <= MAX_STATES,
        "exhaustive enumeration would need {states:.2e} states; reduce n or m"
    );

    let mut front: ParetoFront<Assignment> = ParetoFront::new();
    if n == 0 {
        let asg = Assignment::zeroed(0, m).expect("m > 0");
        front.offer(ObjectivePoint::new(0.0, 0.0), asg);
        return Ok(front);
    }

    let mut current = vec![0usize; n];
    let mut loads = vec![0.0f64; m];
    let mut mems = vec![0.0f64; m];

    /// The enumeration's shared state: buffers, the front under
    /// construction, and the cancellation bookkeeping.
    struct Enumeration<'a> {
        inst: &'a Instance,
        probe: &'a CancelProbe,
        nodes: u64,
        front: ParetoFront<Assignment>,
    }

    impl Enumeration<'_> {
        fn recurse(
            &mut self,
            k: usize,
            used: usize,
            current: &mut [usize],
            loads: &mut [f64],
            mems: &mut [f64],
        ) -> Result<(), ModelError> {
            self.nodes += 1;
            if self.nodes.is_multiple_of(PROBE_NODE_STRIDE) {
                self.probe.poll()?;
            }
            let n = self.inst.n();
            let m = self.inst.m();
            if k == n {
                let point = ObjectivePoint::new(
                    loads.iter().copied().fold(0.0, f64::max),
                    mems.iter().copied().fold(0.0, f64::max),
                );
                if !self.front.covers(&point) {
                    let mut asg = Assignment::zeroed(n, m).expect("m > 0");
                    for (i, &q) in current.iter().enumerate() {
                        asg.assign(i, q).expect("q < m");
                    }
                    self.front.offer(point, asg);
                }
                return Ok(());
            }
            // Symmetry breaking: the next task may go to any machine already
            // used, or to exactly one fresh machine (machine index `used`).
            let limit = (used + 1).min(m);
            for q in 0..limit {
                current[k] = q;
                loads[q] += self.inst.p(k);
                mems[q] += self.inst.s(k);
                self.recurse(k + 1, used.max(q + 1), current, loads, mems)?;
                loads[q] -= self.inst.p(k);
                mems[q] -= self.inst.s(k);
            }
            Ok(())
        }
    }

    let mut enumeration = Enumeration {
        inst,
        probe,
        nodes: 0,
        front,
    };
    enumeration.recurse(0, 0, &mut current, &mut loads, &mut mems)?;
    Ok(enumeration.front)
}

/// The best makespan achievable when the memory consumption is constrained
/// to stay at or below `budget` — computed from the exhaustive front.
/// Returns `None` when no schedule satisfies the budget (which cannot
/// happen for `budget ≥ Σ s_i`).
pub fn best_cmax_under_memory_budget(inst: &Instance, budget: f64) -> Option<f64> {
    best_assignment_under_memory_budget(inst, budget).map(|(pt, _)| pt.cmax)
}

/// Like [`best_cmax_under_memory_budget`], but also returns an assignment
/// achieving the constrained optimum — the witness the portfolio layer's
/// exact backend hands back as a schedule.
pub fn best_assignment_under_memory_budget(
    inst: &Instance,
    budget: f64,
) -> Option<(ObjectivePoint, Assignment)> {
    best_in_front(&pareto_front(inst), budget)
}

/// The budget query over an **already-computed** front: the point
/// minimizing `Cmax` among those with `Mmax ≤ budget` (one shared
/// tolerance and tie-break for every caller that holds the front —
/// callers needing several queries enumerate once and ask many times).
pub fn best_in_front(
    front: &ParetoFront<Assignment>,
    budget: f64,
) -> Option<(ObjectivePoint, Assignment)> {
    front
        .iter()
        .filter(|(pt, _)| pt.mmax <= budget + 1e-12)
        .min_by(|(a, _), (b, _)| sws_model::numeric::total_cmp(a.cmax, b.cmax))
        .map(|(pt, asg)| (*pt, asg.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_model::numeric::approx_eq;

    #[test]
    fn reproduces_the_two_pareto_points_of_figure_1() {
        // Section 4.1: p = [1, 1/2, 1/2], s = [eps, 1, 1], m = 2.
        let eps = 0.001;
        let inst = Instance::from_ps(&[1.0, 0.5, 0.5], &[eps, 1.0, 1.0], 2).unwrap();
        let front = pareto_front(&inst);
        let points = front.points();
        assert_eq!(points.len(), 2);
        assert!(approx_eq(points[0].cmax, 1.0) && approx_eq(points[0].mmax, 2.0));
        assert!(approx_eq(points[1].cmax, 1.5) && approx_eq(points[1].mmax, 1.0 + eps));
    }

    #[test]
    fn reproduces_the_three_pareto_points_of_figure_2() {
        // Section 4.3: p = [1, eps, 1 - eps], s = [eps, 1, 1 - eps], m = 2.
        let eps = 0.25;
        let inst = Instance::from_ps(&[1.0, eps, 1.0 - eps], &[eps, 1.0, 1.0 - eps], 2).unwrap();
        let front = pareto_front(&inst);
        let points = front.points();
        assert_eq!(points.len(), 3);
        // (1, 2 - eps), (1 + eps, 1 + eps), (2 - eps, 1).
        assert!(approx_eq(points[0].cmax, 1.0) && approx_eq(points[0].mmax, 2.0 - eps));
        assert!(approx_eq(points[1].cmax, 1.0 + eps) && approx_eq(points[1].mmax, 1.0 + eps));
        assert!(approx_eq(points[2].cmax, 2.0 - eps) && approx_eq(points[2].mmax, 1.0));
    }

    #[test]
    fn front_extremes_match_the_single_objective_optima() {
        let inst =
            Instance::from_ps(&[3.0, 1.0, 4.0, 1.0, 5.0], &[2.0, 7.0, 1.0, 8.0, 2.0], 2).unwrap();
        let front = pareto_front(&inst);
        let best_c = front.best_cmax().unwrap().0.cmax;
        let best_m = front.best_mmax().unwrap().0.mmax;
        assert!(approx_eq(best_c, crate::branch_bound::optimal_cmax(&inst)));
        assert!(approx_eq(best_m, crate::branch_bound::optimal_mmax(&inst)));
    }

    #[test]
    fn every_front_assignment_achieves_its_point() {
        let inst = Instance::from_ps(&[2.0, 1.0, 3.0, 1.5], &[1.0, 2.0, 1.0, 2.5], 2).unwrap();
        let front = pareto_front(&inst);
        for (pt, asg) in front.iter() {
            let actual = ObjectivePoint::of_assignment(&inst, asg);
            assert!(approx_eq(actual.cmax, pt.cmax));
            assert!(approx_eq(actual.mmax, pt.mmax));
        }
    }

    #[test]
    fn memory_budget_query_interpolates_the_front() {
        let eps = 0.001;
        let inst = Instance::from_ps(&[1.0, 0.5, 0.5], &[eps, 1.0, 1.0], 2).unwrap();
        // Loose budget: the makespan-optimal point (1, 2) qualifies.
        assert!(approx_eq(
            best_cmax_under_memory_budget(&inst, 2.5).unwrap(),
            1.0
        ));
        // Tight budget: only the (3/2, 1 + eps) point qualifies.
        assert!(approx_eq(
            best_cmax_under_memory_budget(&inst, 1.5).unwrap(),
            1.5
        ));
        // Infeasible budget: nothing fits below the max task size.
        assert!(best_cmax_under_memory_budget(&inst, 0.5).is_none());
    }

    #[test]
    fn empty_instance_has_a_single_zero_point() {
        let inst = Instance::from_ps(&[], &[], 2).unwrap();
        let front = pareto_front(&inst);
        assert_eq!(front.len(), 1);
        assert_eq!(front.points()[0], ObjectivePoint::new(0.0, 0.0));
    }

    #[test]
    #[should_panic]
    fn unreasonably_large_enumerations_are_refused() {
        let inst = Instance::from_ps(&[1.0; 40], &[1.0; 40], 8).unwrap();
        let _ = pareto_front(&inst);
    }
}
