//! Plain brute-force enumeration, kept deliberately naive.
//!
//! The branch-and-bound solver and the symmetry-breaking Pareto
//! enumerator are the tools the experiments actually use; this module is
//! their *independent cross-check*: it enumerates every one of the `m^n`
//! assignments with no pruning and no symmetry breaking, so any
//! disagreement points at a bug in the cleverer code, not in the
//! reference. It is only usable for very small instances and is mainly
//! exercised by property tests.

use sws_model::objectives::ObjectivePoint;
use sws_model::pareto::ParetoFront;
use sws_model::schedule::Assignment;
use sws_model::Instance;

/// Hard cap on `m^n` so an accidental call on a big instance fails fast
/// instead of hanging.
const MAX_STATES: u64 = 4_000_000;

fn state_count(inst: &Instance) -> u64 {
    (inst.m() as u64)
        .checked_pow(inst.n() as u32)
        .unwrap_or(u64::MAX)
}

/// Visits every assignment of the instance (all `m^n` of them) and calls
/// `visit` with the assignment's objective point.
///
/// # Panics
/// Panics when `m^n` exceeds the internal safety cap (~4·10⁶ states).
pub fn for_each_assignment<F: FnMut(&Assignment, ObjectivePoint)>(inst: &Instance, mut visit: F) {
    let states = state_count(inst);
    assert!(states <= MAX_STATES, "brute force would enumerate {states} states; use sws-exact::branch_bound or pareto_enum instead");
    let n = inst.n();
    let m = inst.m() as u64;
    for code in 0..states {
        let mut c = code;
        let mut asg = Assignment::zeroed(n, inst.m()).expect("m > 0");
        for i in 0..n {
            asg.assign(i, (c % m) as usize).expect("in range");
            c /= m;
        }
        let point = ObjectivePoint::of_assignment(inst, &asg);
        visit(&asg, point);
    }
}

/// Brute-force optimal makespan.
pub fn brute_optimal_cmax(inst: &Instance) -> f64 {
    let mut best = if inst.n() == 0 { 0.0 } else { f64::INFINITY };
    for_each_assignment(inst, |_, point| best = best.min(point.cmax));
    best
}

/// Brute-force optimal memory consumption.
pub fn brute_optimal_mmax(inst: &Instance) -> f64 {
    let mut best = if inst.n() == 0 { 0.0 } else { f64::INFINITY };
    for_each_assignment(inst, |_, point| best = best.min(point.mmax));
    best
}

/// Brute-force Pareto front (no symmetry breaking; same result as
/// [`crate::pareto_enum::pareto_front`], much slower).
pub fn brute_pareto_front(inst: &Instance) -> ParetoFront<Assignment> {
    let mut front: ParetoFront<Assignment> = ParetoFront::new();
    if inst.n() == 0 {
        front.offer(
            ObjectivePoint::new(0.0, 0.0),
            Assignment::zeroed(0, inst.m()).expect("m > 0"),
        );
        return front;
    }
    for_each_assignment(inst, |asg, point| {
        if !front.covers(&point) {
            front.offer(point, asg.clone());
        }
    });
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch_bound::{optimal_cmax, optimal_mmax};
    use crate::pareto_enum::pareto_front;
    use sws_model::numeric::approx_eq;

    fn instance() -> Instance {
        Instance::from_ps(&[3.0, 1.0, 4.0, 1.5, 2.5], &[2.0, 5.0, 1.0, 4.0, 3.0], 2).unwrap()
    }

    #[test]
    fn brute_force_agrees_with_branch_and_bound() {
        let inst = instance();
        assert!(approx_eq(brute_optimal_cmax(&inst), optimal_cmax(&inst)));
        assert!(approx_eq(brute_optimal_mmax(&inst), optimal_mmax(&inst)));
    }

    #[test]
    fn brute_force_front_agrees_with_the_symmetry_breaking_enumerator() {
        let inst = instance();
        let mut a = brute_pareto_front(&inst).points();
        let mut b = pareto_front(&inst).points();
        let key = |p: &ObjectivePoint| (p.cmax, p.mmax);
        a.sort_by(|x, y| key(x).partial_cmp(&key(y)).unwrap());
        b.sort_by(|x, y| key(x).partial_cmp(&key(y)).unwrap());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!(approx_eq(x.cmax, y.cmax) && approx_eq(x.mmax, y.mmax));
        }
    }

    #[test]
    fn visits_exactly_m_to_the_n_assignments() {
        let inst = Instance::from_ps(&[1.0, 2.0, 3.0], &[1.0; 3], 2).unwrap();
        let mut count = 0usize;
        for_each_assignment(&inst, |_, _| count += 1);
        assert_eq!(count, 8);
    }

    #[test]
    fn empty_instance_has_a_single_zero_point() {
        let inst = Instance::from_ps(&[], &[], 3).unwrap();
        let front = brute_pareto_front(&inst);
        assert_eq!(front.len(), 1);
        assert_eq!(brute_optimal_cmax(&inst), 0.0);
    }

    #[test]
    #[should_panic]
    fn oversized_instances_are_refused() {
        let inst = Instance::from_ps(&[1.0; 30], &[1.0; 30], 4).unwrap();
        let _ = brute_optimal_cmax(&inst);
    }
}
