//! Two-machine subset-sum dynamic program.
//!
//! For `m = 2` the minimum makespan equals `total − best`, where `best` is
//! the largest achievable subset sum not exceeding `total / 2`. With
//! integer (or integer-scalable) weights this is a pseudo-polynomial exact
//! solver that cross-checks the branch and bound on a different code path.

/// Exact minimum of the maximum machine load on two machines, for integer
/// weights.
pub fn optimal_two_machine_int(weights: &[u64]) -> u64 {
    let total: u64 = weights.iter().sum();
    let half = total / 2;
    let mut reachable = vec![false; half as usize + 1];
    reachable[0] = true;
    for &w in weights {
        if w > half {
            continue;
        }
        let w = w as usize;
        for s in (w..=half as usize).rev() {
            if reachable[s - w] {
                reachable[s] = true;
            }
        }
    }
    let best = (0..=half as usize)
        .rev()
        .find(|&s| reachable[s])
        .unwrap_or(0) as u64;
    total - best
}

/// Exact minimum of the maximum machine load on two machines for float
/// weights that are (close to) multiples of `quantum`. Weights are scaled
/// by `1 / quantum`, rounded to the nearest integer, solved exactly and
/// scaled back.
pub fn optimal_two_machine_scaled(weights: &[f64], quantum: f64) -> f64 {
    assert!(quantum > 0.0, "quantum must be positive");
    let ints: Vec<u64> = weights
        .iter()
        .map(|&w| (w / quantum).round().max(0.0) as u64)
        .collect();
    optimal_two_machine_int(&ints) as f64 * quantum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch_bound::optimal_partition;

    #[test]
    fn perfect_split() {
        assert_eq!(optimal_two_machine_int(&[6, 4, 5, 5]), 10);
    }

    #[test]
    fn odd_total_leaves_an_imbalance() {
        // total = 11 -> best split 6 / 5.
        assert_eq!(optimal_two_machine_int(&[3, 3, 5]), 6);
    }

    #[test]
    fn single_huge_item_dominates() {
        assert_eq!(optimal_two_machine_int(&[100, 1, 1, 1]), 100);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(optimal_two_machine_int(&[]), 0);
    }

    #[test]
    fn agrees_with_branch_and_bound_on_a_suite_of_instances() {
        let suites: Vec<Vec<u64>> = vec![
            vec![7, 3, 9, 2, 5, 6, 4, 8, 1, 2],
            vec![10, 10, 10, 9, 1],
            vec![1; 13],
            vec![2, 3, 5, 7, 11, 13, 17],
        ];
        for weights in suites {
            let floats: Vec<f64> = weights.iter().map(|&w| w as f64).collect();
            let (bb, _) = optimal_partition(&floats, 2);
            let dp = optimal_two_machine_int(&weights);
            assert!(
                (bb - dp as f64).abs() < 1e-9,
                "mismatch on {weights:?}: bb = {bb}, dp = {dp}"
            );
        }
    }

    #[test]
    fn scaled_variant_handles_fractional_weights() {
        let v = optimal_two_machine_scaled(&[0.6, 0.4, 0.5, 0.5], 0.1);
        assert!((v - 1.0).abs() < 1e-9);
    }
}
