//! # sws-exact
//!
//! Exact solvers for small instances of `P | p_j, s_j | Cmax, Mmax`, used
//! by the reproduction to
//!
//! * measure the true approximation ratios of SBO∆, RLS∆ and the
//!   baselines (experiments E1–E4 of DESIGN.md), and
//! * regenerate the Pareto-optimal schedules of the paper's adversarial
//!   instances (Figures 1 and 2).
//!
//! Modules:
//!
//! * [`branch_bound`] — optimal single-objective partitioning (minimum
//!   `Cmax`, and by symmetry minimum `Mmax`) by depth-first branch and
//!   bound with symmetry breaking,
//! * [`dp`] — a subset-sum dynamic program for the two-machine case, used
//!   to cross-check the branch and bound,
//! * [`pareto_enum`] — exhaustive enumeration of the bi-objective Pareto
//!   front over all assignments (with processor-symmetry pruning).
//!
//! All solvers are exponential in the worst case and intended for
//! instances of roughly `n ≤ 16`; they assert nothing about larger inputs
//! but become slow.

#![forbid(unsafe_code)]

pub mod branch_bound;
pub mod brute;
pub mod dp;
pub mod pareto_enum;

pub use branch_bound::{
    optimal_cmax, optimal_mmax, optimal_mmax_probed, optimal_partition, optimal_partition_probed,
    optimal_point,
};
pub use brute::{brute_optimal_cmax, brute_pareto_front};
pub use pareto_enum::{
    best_assignment_under_memory_budget, best_in_front, pareto_front, pareto_front_probed,
};
