//! # sws-listsched
//!
//! Classical single-objective schedulers used as building blocks and
//! baselines by the reproduction of *Scheduling with Storage Constraints*:
//!
//! * [`graham`] — Graham list scheduling for independent tasks
//!   (the `2 − 1/m`-approximation of `P ∥ Cmax` recalled in Section 3.1),
//!   generic over the minimized weight so the same code schedules for
//!   `Cmax` (weight `p_i`) or `Mmax` (weight `s_i`);
//! * [`lpt`] — Longest Processing Time first (`4/3 − 1/(3m)`);
//! * [`spt`] — Shortest Processing Time first, optimal for `P ∥ ΣC_i`
//!   (used by the Section 5.2 tri-objective extension);
//! * [`multifit`] — the MULTIFIT coordination of FFD bin packing and
//!   binary search, a stronger `Cmax` heuristic used as an extra baseline;
//! * [`dag_list`] — Graham list scheduling under precedence constraints
//!   (the algorithm RLS∆ restricts);
//! * [`priority`] — priority orders for the DAG list scheduler
//!   (bottom level / HLF, SPT, LPT, topological);
//! * [`kernel`] — the **event-driven scheduling kernel** every list
//!   scheduler (including RLS∆ in `sws-core`) runs on: heap-based ready
//!   queues fed by completion events, an indexed min-heap over processor
//!   loads with a pluggable admissibility predicate, and incremental
//!   Lemma-4 marking — `O((n + E)·log n + n·log m)` (when admission
//!   rejections are rare; see `kernel`'s module docs) instead of the
//!   naive `O(n²·m)`;
//! * [`naive`] — the original quadratic implementations, retained as
//!   differential-testing oracles for the kernel.

#![forbid(unsafe_code)]

pub mod dag_list;
pub mod graham;
pub mod kernel;
pub mod lpt;
pub mod multifit;
pub mod naive;
pub mod priority;
pub mod spt;

pub use dag_list::{dag_list_schedule, dag_list_schedule_csr};
pub use graham::{graham_cmax, graham_mmax, list_schedule, list_schedule_with};
pub use kernel::{
    event_driven_schedule, event_driven_schedule_csr, Admission, CheckpointedRun, CostShift,
    KernelOutcome, KernelWorkspace, MemoryCapAdmission, ProcHeap, ReplanDelta, ReplanRun,
    Unrestricted, PROBE_STRIDE,
};
pub use lpt::{lpt_cmax, lpt_mmax};
pub use multifit::multifit_cmax;
pub use spt::{spt_order, spt_schedule};
