//! Longest Processing Time first (LPT).
//!
//! LPT is Graham list scheduling with the tasks considered in decreasing
//! weight order; its approximation ratio for `P ∥ Cmax` improves to
//! `4/3 − 1/(3m)`. It is the natural "reasonable effort" inner algorithm
//! for SBO∆ when the full PTAS is too slow.

use sws_model::schedule::Assignment;
use sws_model::Instance;

use crate::graham::list_schedule;

/// Indices of the tasks sorted by decreasing weight (ties by index).
pub fn lpt_order(weights: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| sws_model::numeric::total_cmp(weights[b], weights[a]).then(a.cmp(&b)));
    order
}

/// LPT scheduling for the makespan objective.
/// Guarantee: `Cmax ≤ (4/3 − 1/(3m))·C*max`.
pub fn lpt_cmax(inst: &Instance) -> Assignment {
    let weights: Vec<f64> = (0..inst.n()).map(|i| inst.p(i)).collect();
    let order = lpt_order(&weights);
    list_schedule(&weights, inst.m(), &order)
}

/// LPT scheduling for the memory objective (sorts by decreasing `s_i`).
/// Guarantee: `Mmax ≤ (4/3 − 1/(3m))·M*max`.
pub fn lpt_mmax(inst: &Instance) -> Assignment {
    let weights: Vec<f64> = (0..inst.n()).map(|i| inst.s(i)).collect();
    let order = lpt_order(&weights);
    list_schedule(&weights, inst.m(), &order)
}

/// The LPT guarantee `4/3 − 1/(3m)`.
pub fn lpt_guarantee(m: usize) -> f64 {
    4.0 / 3.0 - 1.0 / (3.0 * m as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_model::bounds::{cmax_lower_bound, mmax_lower_bound};
    use sws_model::objectives::{cmax_of_assignment, mmax_of_assignment};
    use sws_model::validate::validate_assignment;

    #[test]
    fn order_is_decreasing() {
        let order = lpt_order(&[1.0, 5.0, 3.0, 5.0]);
        assert_eq!(order, vec![1, 3, 2, 0]);
    }

    #[test]
    fn lpt_beats_plain_list_scheduling_on_the_anomaly_instance() {
        let m = 4usize;
        let mut p = vec![1.0; m * (m - 1)];
        p.push(m as f64);
        let s = vec![1.0; p.len()];
        let inst = Instance::from_ps(&p, &s, m).unwrap();
        let asg = lpt_cmax(&inst);
        let cmax = cmax_of_assignment(inst.tasks(), &asg);
        // LPT places the long task first and achieves the optimum m.
        assert!((cmax - m as f64).abs() < 1e-9);
    }

    #[test]
    fn within_the_lpt_bound_on_random_style_instance() {
        let inst = Instance::from_ps(&[7.0, 9.0, 2.0, 4.0, 6.0, 1.0, 8.0, 5.0, 3.0], &[1.0; 9], 3)
            .unwrap();
        let asg = lpt_cmax(&inst);
        assert!(validate_assignment(&inst, &asg, None).is_ok());
        let cmax = cmax_of_assignment(inst.tasks(), &asg);
        let lb = cmax_lower_bound(inst.tasks(), inst.m());
        assert!(cmax <= lpt_guarantee(inst.m()) * lb + 1e-9);
    }

    #[test]
    fn memory_variant_sorts_by_storage() {
        let inst = Instance::from_ps(&[1.0, 1.0, 1.0, 1.0], &[10.0, 1.0, 9.0, 2.0], 2).unwrap();
        let asg = lpt_mmax(&inst);
        let mmax = mmax_of_assignment(inst.tasks(), &asg);
        // Perfect split: {10, 1} and {9, 2} -> 11.
        assert!((mmax - 11.0).abs() < 1e-9);
        let lb = mmax_lower_bound(inst.tasks(), inst.m());
        assert!(mmax <= lpt_guarantee(2) * lb + 1e-9);
    }

    #[test]
    fn guarantee_formula() {
        assert!((lpt_guarantee(1) - 1.0).abs() < 1e-12);
        assert!((lpt_guarantee(2) - (4.0 / 3.0 - 1.0 / 6.0)).abs() < 1e-12);
    }
}
