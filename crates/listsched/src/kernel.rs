//! Event-driven list-scheduling kernel.
//!
//! Every list scheduler in this repository — Graham scheduling of
//! independent tasks, DAG list scheduling, and the paper's RLS∆
//! (Algorithm 2) — shares one selection rule: among the *ready* tasks,
//! repeatedly schedule the one that can start the soonest on the least
//! loaded *admissible* processor, breaking approximate start-time ties by
//! a priority rank. The naive implementations rescan every unscheduled
//! task and every processor each round, which costs `O(n²·m)`; this
//! module computes the same schedules event-drivenly in
//! `O((n + E)·log n + n·log m)` when the admissibility predicate accepts
//! the least loaded processor (always true for plain Graham, and true
//! for RLS∆ except while a memory-saturated processor sits at the load
//! minimum — rounds where that happens re-probe the rejected runnable
//! prefix, degrading towards the naive cost in the worst case but
//! staying negligible on every measured workload; see
//! docs/PERFORMANCE.md):
//!
//! * a **ready-task structure** fed by predecessor-completion events
//!   (tasks enter when their last predecessor is scheduled) split into a
//!   rank-keyed *runnable* heap (ready time ≤ current minimum load, so
//!   the earliest start is the minimum load itself) and a ready-time
//!   keyed *pending* heap;
//! * an **indexed min-heap over processor loads** ([`ProcHeap`]) whose
//!   ordered traversal ([`ProcHeap::probe`]) finds the least loaded
//!   processor satisfying a pluggable **admissibility predicate**
//!   ([`Admission`]) — plain Graham ([`Unrestricted`]) and RLS∆'s
//!   `memsize[q] + s_i ≤ ∆·LB` filter ([`MemoryCapAdmission`]) are the
//!   same kernel with different predicates;
//! * **incremental Lemma-4 bookkeeping**: the processors skipped by the
//!   winning probe are exactly the "marked" processors of the paper's
//!   analysis, so marking costs `O(#skipped)` instead of a per-candidate
//!   `O(m)` sweep;
//! * **checkpoint/resume for ∆-sweeps** ([`CheckpointedRun`]): a
//!   memory-capped run records per-round rejection thresholds and
//!   periodic snapshots of the resumable [`EngineState`], so a later run
//!   at a larger cap replays only from the first round whose
//!   admissibility verdict changes (and costs nothing when none does) —
//!   the warm-start backbone of the incremental Pareto sweeps in
//!   `sws_core::pareto_sweep`.
//!
//! Tie-breaking uses the same shared comparator
//! ([`sws_model::numeric::better_candidate`]) as the retained naive
//! oracles (`crate::naive`, `sws_core::rls::naive`), so kernel and naive
//! paths select identical tasks wherever the comparator's tolerance-based
//! tie relation is transitive — which the differential test-suite checks
//! schedule-for-schedule across every generator family. The one
//! intentional difference is that the kernel marks processors only for
//! the *selected* candidate's probe (the paper's semantics), while the
//! naive oracle conservatively marks while evaluating every candidate;
//! the kernel's marked set is therefore a subset of the oracle's and
//! still satisfies the Lemma 4 bound.

use std::cell::Cell;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::sync::Arc;

use sws_dag::DagInstance;
use sws_model::error::ModelError;
use sws_model::numeric::{approx_le, better_candidate, total_cmp};
use sws_model::schedule::TimedSchedule;

use crate::priority::PriorityRank;

/// Total-ordered wrapper for finite `f64` heap keys.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Key(f64);

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        total_cmp(self.0, other.0)
    }
}

/// Indexed binary min-heap over processor loads, ordered by
/// `(load, processor index)` so ties resolve towards the lowest index —
/// the same tie-break as the naive `argmin` scans.
///
/// Loads only ever increase (a placement raises one processor's load to
/// the placed task's completion time), so the heap needs only
/// `sift_down`.
#[derive(Debug, Clone)]
pub struct ProcHeap {
    /// `heap[pos]` = processor id.
    heap: Vec<usize>,
    /// `pos[q]` = position of processor `q` in `heap`.
    pos: Vec<usize>,
    /// Current load of each processor.
    load: Vec<f64>,
}

impl ProcHeap {
    /// A heap of `m` processors, all with zero load.
    pub fn new(m: usize) -> Self {
        assert!(m >= 1, "need at least one processor");
        ProcHeap {
            heap: (0..m).collect(),
            pos: (0..m).collect(),
            load: vec![0.0; m],
        }
    }

    /// Number of processors.
    #[inline]
    pub fn m(&self) -> usize {
        self.load.len()
    }

    /// The least loaded processor (lowest index among ties).
    #[inline]
    pub fn min(&self) -> usize {
        self.heap[0]
    }

    /// Load of processor `q`.
    #[inline]
    pub fn load(&self, q: usize) -> f64 {
        self.load[q]
    }

    /// All loads, indexed by processor.
    #[inline]
    pub fn loads(&self) -> &[f64] {
        &self.load
    }

    /// `(load, index)` comparison between two processors.
    #[inline]
    fn less(&self, a: usize, b: usize) -> bool {
        match total_cmp(self.load[a], self.load[b]) {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => a < b,
        }
    }

    /// Raises the load of processor `q` (placements never lower a load).
    pub fn set_load(&mut self, q: usize, new_load: f64) {
        debug_assert!(
            new_load >= self.load[q],
            "loads are monotone non-decreasing"
        );
        self.load[q] = new_load;
        self.sift_down(self.pos[q]);
    }

    fn sift_down(&mut self, mut at: usize) {
        loop {
            let left = 2 * at + 1;
            if left >= self.heap.len() {
                return;
            }
            let right = left + 1;
            let mut smallest = at;
            if self.less(self.heap[left], self.heap[smallest]) {
                smallest = left;
            }
            if right < self.heap.len() && self.less(self.heap[right], self.heap[smallest]) {
                smallest = right;
            }
            if smallest == at {
                return;
            }
            self.heap.swap(at, smallest);
            self.pos[self.heap[at]] = at;
            self.pos[self.heap[smallest]] = smallest;
            at = smallest;
        }
    }

    /// Visits processors in increasing `(load, index)` order until `admit`
    /// accepts one; returns the accepted processor together with the
    /// processors skipped on the way (all rejected, all with a key no
    /// larger than the accepted one). `None` when every processor is
    /// rejected.
    ///
    /// The traversal expands the heap lazily, so accepting the first
    /// probe — the overwhelmingly common case — costs `O(1)`.
    pub fn probe<F: FnMut(usize) -> bool>(&self, mut admit: F) -> Option<(usize, Vec<usize>)> {
        let mut skipped = Vec::new();
        // Frontier of heap positions whose parents were all visited; the
        // next processor in sorted order is always the frontier minimum.
        // Linear scans are fine: the frontier holds ≤ 2·skips + 1 entries
        // and skips are zero in the unrestricted use and rare in the
        // RLS∆ use (a skip needs a memory-saturated processor below the
        // chosen one's load; unlike marking, skips can recur across
        // rounds, but each costs only the probe that discovers it).
        let mut frontier: Vec<usize> = vec![0];
        while !frontier.is_empty() {
            let mut best = 0;
            for fi in 1..frontier.len() {
                if self.less(self.heap[frontier[fi]], self.heap[frontier[best]]) {
                    best = fi;
                }
            }
            let pos = frontier.swap_remove(best);
            let q = self.heap[pos];
            if admit(q) {
                return Some((q, skipped));
            }
            skipped.push(q);
            for child in [2 * pos + 1, 2 * pos + 2] {
                if child < self.heap.len() {
                    frontier.push(child);
                }
            }
        }
        None
    }
}

/// Pluggable admissibility predicate deciding which processors may
/// receive a task.
pub trait Admission {
    /// May a task with storage requirement `s` be placed on processor `q`?
    fn admits(&self, q: usize, s: f64) -> bool;

    /// Records the placement of a task with storage requirement `s` on
    /// processor `q`.
    fn commit(&mut self, q: usize, s: f64);

    /// The error reported when no processor admits a task with storage
    /// requirement `s`.
    fn rejection_error(&self, s: f64) -> ModelError {
        ModelError::MemoryExceeded {
            proc: 0,
            used: s,
            capacity: f64::INFINITY,
        }
    }
}

/// Plain Graham list scheduling: every processor is always admissible.
#[derive(Debug, Clone, Copy, Default)]
pub struct Unrestricted;

impl Admission for Unrestricted {
    #[inline]
    fn admits(&self, _q: usize, _s: f64) -> bool {
        true
    }

    #[inline]
    fn commit(&mut self, _q: usize, _s: f64) {}
}

/// RLS∆'s restriction: processor `q` admits a task of storage `s` iff
/// `memsize[q] + s ≤ cap` (with the shared tolerance), where
/// `cap = ∆·LB`.
#[derive(Debug, Clone)]
pub struct MemoryCapAdmission {
    memsize: Vec<f64>,
    cap: f64,
}

impl MemoryCapAdmission {
    /// A fresh restriction over `m` processors with memory cap `cap`.
    pub fn new(m: usize, cap: f64) -> Self {
        MemoryCapAdmission {
            memsize: vec![0.0; m],
            cap,
        }
    }

    /// Per-processor memory committed so far.
    pub fn memsize(&self) -> &[f64] {
        &self.memsize
    }

    /// The enforced cap `∆·LB`.
    pub fn cap(&self) -> f64 {
        self.cap
    }
}

impl Admission for MemoryCapAdmission {
    #[inline]
    fn admits(&self, q: usize, s: f64) -> bool {
        approx_le(self.memsize[q] + s, self.cap)
    }

    #[inline]
    fn commit(&mut self, q: usize, s: f64) {
        self.memsize[q] += s;
    }

    fn rejection_error(&self, s: f64) -> ModelError {
        ModelError::MemoryExceeded {
            proc: 0,
            used: self.memsize.iter().cloned().fold(0.0, f64::max) + s,
            capacity: self.cap,
        }
    }
}

/// The kernel's output: the schedule plus the Lemma-4 "marked processor"
/// bookkeeping (processors skipped by a winning probe while strictly less
/// loaded than the chosen processor).
#[derive(Debug, Clone)]
pub struct KernelOutcome {
    /// The produced schedule `(π, σ)`.
    pub schedule: TimedSchedule,
    /// Which processors were marked during the run.
    pub marked: Vec<bool>,
}

/// One selection candidate of the current round.
#[derive(Debug, Clone)]
struct Candidate {
    /// Earliest start `max(ready time, load of chosen processor)`.
    key: f64,
    /// Tie-break rank.
    rank: usize,
    /// Task index.
    task: usize,
    /// Chosen processor.
    proc: usize,
    /// Processors skipped by the probe (inadmissible, no more loaded).
    skipped: Vec<usize>,
}

/// Resumable mid-run state of the event-driven scheduler: the ready
/// structures, the indexed processor-load heap, the incremental Lemma-4
/// marked-processor bookkeeping, and the partial schedule built so far.
///
/// The scheduling loop is fully deterministic given a state and an
/// admissibility predicate, so a cloned `EngineState` replayed with the
/// same verdicts reproduces the original run bit for bit — the property
/// the ∆-sweep checkpoint/resume machinery ([`CheckpointedRun`]) is
/// built on.
#[derive(Debug, Clone)]
pub struct EngineState {
    procs: ProcHeap,
    marked: Vec<bool>,
    completion: Vec<f64>,
    /// Maximum completion time over scheduled predecessors, maintained
    /// incrementally as predecessors are placed.
    pred_ready: Vec<f64>,
    remaining_preds: Vec<usize>,
    proc_of: Vec<usize>,
    start: Vec<f64>,
    /// Ready tasks whose ready time exceeds the current minimum load,
    /// keyed by (ready time, rank, task).
    pending: BinaryHeap<Reverse<(Key, usize, usize)>>,
    /// Ready tasks whose ready time is (approximately) at or below the
    /// minimum load — their earliest start is the minimum load itself, so
    /// only the rank orders them. Keyed by (rank, task).
    runnable: BinaryHeap<Reverse<(usize, usize)>>,
    /// Number of placements made so far.
    round: usize,
    // Scratch buffers, empty between rounds (kept here so the hot loop
    // reuses their allocations).
    popped_runnable: Vec<(usize, usize)>,
    popped_pending: Vec<(f64, usize, usize)>,
    cands: Vec<Candidate>,
}

impl EngineState {
    /// The initial state: no placements, all source tasks ready at 0.
    /// Crate-private: the state is only drivable through
    /// [`event_driven_schedule`] and [`CheckpointedRun`].
    pub(crate) fn new(inst: &DagInstance, rank: &PriorityRank) -> Self {
        let graph = inst.graph();
        let n = graph.n();
        let m = inst.m();
        assert_eq!(rank.len(), n, "priority rank must cover every task");
        let remaining_preds: Vec<usize> = (0..n).map(|i| graph.in_degree(i)).collect();
        let mut pending = BinaryHeap::new();
        for i in 0..n {
            if remaining_preds[i] == 0 {
                pending.push(Reverse((Key(0.0), rank[i], i)));
            }
        }
        EngineState {
            procs: ProcHeap::new(m),
            marked: vec![false; m],
            completion: vec![0.0; n],
            pred_ready: vec![0.0; n],
            remaining_preds,
            proc_of: vec![0; n],
            start: vec![0.0; n],
            pending,
            runnable: BinaryHeap::new(),
            round: 0,
            popped_runnable: Vec::new(),
            popped_pending: Vec::new(),
            cands: Vec::new(),
        }
    }

    /// Executes one placement round. Precondition: `rounds_done() < n`.
    fn step<A: Admission>(
        &mut self,
        inst: &DagInstance,
        rank: &PriorityRank,
        admission: &mut A,
    ) -> Result<(), ModelError> {
        let graph = inst.graph();
        let tasks = graph.tasks();

        let q1 = self.procs.min();
        let l1 = self.procs.load(q1);

        // Migration: the minimum load only grows, so once a ready time is
        // (approximately) at or below it the task is runnable forever.
        while let Some(&Reverse((Key(ready), rk, i))) = self.pending.peek() {
            if !approx_le(ready, l1) {
                break;
            }
            self.pending.pop();
            self.runnable.push(Reverse((rk, i)));
        }

        self.cands.clear();
        self.popped_runnable.clear();
        self.popped_pending.clear();

        // Runnable scan: in rank order, stop at the first task admissible
        // on the least loaded processor — no later-rank runnable task can
        // beat it (its key is minimal and its rank smaller). Earlier-rank
        // tasks rejected on q1 stay candidates with their own probe.
        while let Some(Reverse((rk, i))) = self.runnable.pop() {
            self.popped_runnable.push((rk, i));
            let s_i = tasks.get(i).s;
            if admission.admits(q1, s_i) {
                self.cands.push(Candidate {
                    key: self.pred_ready[i].max(l1),
                    rank: rk,
                    task: i,
                    proc: q1,
                    skipped: Vec::new(),
                });
                break;
            }
            match self.procs.probe(|q| admission.admits(q, s_i)) {
                Some((j, skipped)) => self.cands.push(Candidate {
                    key: self.pred_ready[i].max(self.procs.load(j)),
                    rank: rk,
                    task: i,
                    proc: j,
                    skipped,
                }),
                None => return Err(admission.rejection_error(s_i)),
            }
        }

        // Pending scan: a pending task can only win while its ready time
        // is approximately at or below the best candidate key (its start
        // is at least its ready time).
        let mut best_key = self
            .cands
            .iter()
            .map(|c| c.key)
            .fold(f64::INFINITY, f64::min);
        while let Some(&Reverse((Key(ready), rk, i))) = self.pending.peek() {
            if !approx_le(ready, best_key) {
                break;
            }
            self.pending.pop();
            self.popped_pending.push((ready, rk, i));
            let s_i = tasks.get(i).s;
            match self.procs.probe(|q| admission.admits(q, s_i)) {
                Some((j, skipped)) => {
                    let key = ready.max(self.procs.load(j));
                    best_key = best_key.min(key);
                    self.cands.push(Candidate {
                        key,
                        rank: rk,
                        task: i,
                        proc: j,
                        skipped,
                    });
                }
                None => return Err(admission.rejection_error(s_i)),
            }
        }

        // Selection: fold with the shared comparator in task-index order,
        // mirroring the naive oracle's scan.
        assert!(
            !self.cands.is_empty(),
            "an acyclic graph always has a ready task while tasks remain"
        );
        self.cands.sort_unstable_by_key(|c| c.task);
        let mut w = 0;
        for ci in 1..self.cands.len() {
            if better_candidate(
                self.cands[ci].key,
                self.cands[ci].rank,
                self.cands[w].key,
                self.cands[w].rank,
            ) {
                w = ci;
            }
        }
        let winner = self.cands.swap_remove(w);

        // Restore the candidates that lost.
        for &(rk, i) in &self.popped_runnable {
            if i != winner.task {
                self.runnable.push(Reverse((rk, i)));
            }
        }
        for &(ready, rk, i) in &self.popped_pending {
            if i != winner.task {
                self.pending.push(Reverse((Key(ready), rk, i)));
            }
        }

        // Lemma-4 bookkeeping: the winning probe skipped exactly the
        // processors that were less loaded than the chosen one but
        // inadmissible ("marked" in the paper's analysis). Skipped
        // processors with a load equal to the chosen one are not marked,
        // matching the naive oracle's strict comparison.
        let i = winner.task;
        let j = winner.proc;
        let chosen_load = self.procs.load(j);
        for &q in &winner.skipped {
            if self.procs.load(q) < chosen_load {
                self.marked[q] = true;
            }
        }

        // Placement.
        let task = tasks.get(i);
        self.proc_of[i] = j;
        self.start[i] = winner.key;
        self.completion[i] = winner.key + task.p;
        self.procs.set_load(j, self.completion[i]);
        admission.commit(j, task.s);

        // Completion event: feed successors whose last predecessor was
        // just scheduled into the ready structure.
        for &v in graph.succs(i) {
            if self.completion[i] > self.pred_ready[v] {
                self.pred_ready[v] = self.completion[i];
            }
            self.remaining_preds[v] -= 1;
            if self.remaining_preds[v] == 0 {
                self.pending
                    .push(Reverse((Key(self.pred_ready[v]), rank[v], v)));
            }
        }

        self.round += 1;
        Ok(())
    }

    /// Consumes a completed state (every round executed) into the
    /// kernel's outcome.
    fn finish(self, m: usize) -> Result<KernelOutcome, ModelError> {
        let schedule = TimedSchedule::new(self.proc_of, self.start, m)?;
        Ok(KernelOutcome {
            schedule,
            marked: self.marked,
        })
    }

    /// Empties the scratch buffers. They are semantically dead between
    /// rounds (every round clears them before use), but they still hold
    /// the previous round's leftovers — snapshots clear them first so a
    /// checkpoint never retains that dead weight.
    fn clear_scratch(&mut self) {
        self.popped_runnable.clear();
        self.popped_pending.clear();
        self.cands.clear();
    }
}

/// Event-driven list scheduling of a precedence-constrained instance.
///
/// `rank` gives the tie-break rank of every task (lower = preferred);
/// `admission` decides which processors may receive each task. With
/// [`Unrestricted`] this computes Graham DAG list scheduling; with
/// [`MemoryCapAdmission`] it computes the paper's RLS∆.
pub fn event_driven_schedule<A: Admission>(
    inst: &DagInstance,
    rank: &PriorityRank,
    admission: &mut A,
) -> Result<KernelOutcome, ModelError> {
    let n = inst.graph().n();
    let mut state = EngineState::new(inst, rank);
    while state.round < n {
        state.step(inst, rank, admission)?;
    }
    state.finish(inst.m())
}

/// [`MemoryCapAdmission`] wrapper that additionally records, per round,
/// the smallest inadmissible `memsize[q] + s` value probed. Interior
/// mutability because [`Admission::admits`] takes `&self` (heap probes
/// borrow the predicate immutably).
struct RecordingCapAdmission {
    inner: MemoryCapAdmission,
    round_reject_min: Cell<f64>,
}

impl RecordingCapAdmission {
    fn new(memsize: Vec<f64>, cap: f64) -> Self {
        RecordingCapAdmission {
            inner: MemoryCapAdmission { memsize, cap },
            round_reject_min: Cell::new(f64::INFINITY),
        }
    }

    /// The smallest value rejected since the last call (∞ when none),
    /// resetting the recorder for the next round.
    fn take_round_min(&self) -> f64 {
        self.round_reject_min.replace(f64::INFINITY)
    }
}

impl Admission for RecordingCapAdmission {
    #[inline]
    fn admits(&self, q: usize, s: f64) -> bool {
        // Delegate the verdict so it can never drift from the predicate
        // the plain (cold) runs use — the warm/cold bit-identity contract
        // depends on the two computing exactly the same answer.
        if self.inner.admits(q, s) {
            true
        } else {
            let v = self.inner.memsize[q] + s;
            if v < self.round_reject_min.get() {
                self.round_reject_min.set(v);
            }
            false
        }
    }

    #[inline]
    fn commit(&mut self, q: usize, s: f64) {
        self.inner.commit(q, s);
    }

    fn rejection_error(&self, s: f64) -> ModelError {
        self.inner.rejection_error(s)
    }
}

/// Interval between state snapshots of a [`CheckpointedRun`]: bounded
/// below so tiny instances don't snapshot every round, and proportional
/// to `n` so a run never stores more than ~33 snapshots (`O(n)` memory
/// per snapshot).
fn checkpoint_stride(n: usize) -> usize {
    (n / 32).max(32)
}

/// One snapshot of a checkpointed run: the engine state plus the
/// per-processor memory committed so far, taken *before* round `round`.
#[derive(Debug)]
struct Checkpoint {
    round: usize,
    state: EngineState,
    memsize: Vec<f64>,
}

/// A completed memory-capped kernel run that can be **warm-resumed at a
/// larger cap**: the checkpoint/resume backbone of the incremental
/// ∆-sweeps (`sws_core::pareto_sweep`).
///
/// During the run, every admissibility rejection records the value
/// `memsize[q] + s` that was refused; `reject_min[r]` keeps the smallest
/// such value of round `r`. Because [`sws_model::numeric::approx_le`] is
/// monotone in both arguments over non-negative operands, a run at a cap
/// `cap' ≥ cap` executes **identically** up to the first round whose
/// smallest rejected value becomes admissible under `cap'` — accepted
/// probes stay accepted (the cap only grew) and rejected probes stay
/// rejected (their values all exceed the round's recorded minimum). The
/// resume therefore restores the latest snapshot at or before that first
/// diverging round and re-runs only from there; when no round diverges
/// the previous outcome is returned as-is, and when the divergence
/// prefix is shorter than the snapshot stride the restore degenerates to
/// the initial state — a full recompute.
///
/// Snapshots and the rejection thresholds are shared (`Arc`) between the
/// runs of a chain, so the no-divergence fast path costs `O(n)` (cloning
/// the outcome), not `O(n²/stride)`.
///
/// The run is **bound to its instance and priority rank at
/// construction** — a resume always replays against exactly the inputs
/// the checkpoints were recorded under, so there is no way to mix the
/// snapshots of one instance with the tasks of another.
#[derive(Debug, Clone)]
pub struct CheckpointedRun<'a> {
    inst: &'a DagInstance,
    rank: Arc<PriorityRank>,
    cap: f64,
    /// `reject_min[r]`: smallest inadmissible `memsize[q] + s` probed in
    /// round `r` (∞ when round `r` rejected nothing).
    reject_min: Arc<Vec<f64>>,
    /// Snapshots at rounds `0, stride, 2·stride, …` (ascending).
    checkpoints: Vec<Arc<Checkpoint>>,
    outcome: KernelOutcome,
    /// Rounds actually executed to produce this run (`n` for a cold run,
    /// `0` when a resume reused the previous outcome wholesale).
    replayed: usize,
}

impl<'a> CheckpointedRun<'a> {
    /// A from-scratch run with memory cap `cap`, recording rejection
    /// thresholds and periodic snapshots for later warm resumes.
    pub fn cold(
        inst: &'a DagInstance,
        rank: Arc<PriorityRank>,
        cap: f64,
    ) -> Result<Self, ModelError> {
        let state = EngineState::new(inst, &rank);
        let admission = RecordingCapAdmission::new(vec![0.0; inst.m()], cap);
        Self::drive(inst, rank, cap, state, admission, Vec::new(), Vec::new())
    }

    /// Runs `state` to completion, snapshotting every
    /// [`checkpoint_stride`] rounds and extending `reject_min` (which
    /// must already cover the rounds before `state.round`).
    fn drive(
        inst: &'a DagInstance,
        rank: Arc<PriorityRank>,
        cap: f64,
        mut state: EngineState,
        mut admission: RecordingCapAdmission,
        mut reject_min: Vec<f64>,
        mut checkpoints: Vec<Arc<Checkpoint>>,
    ) -> Result<Self, ModelError> {
        let n = inst.graph().n();
        let stride = checkpoint_stride(n);
        let first = state.round;
        debug_assert_eq!(reject_min.len(), first);
        while state.round < n {
            if state.round.is_multiple_of(stride) {
                state.clear_scratch();
                checkpoints.push(Arc::new(Checkpoint {
                    round: state.round,
                    state: state.clone(),
                    memsize: admission.inner.memsize.clone(),
                }));
            }
            state.step(inst, &rank, &mut admission)?;
            reject_min.push(admission.take_round_min());
        }
        let outcome = state.finish(inst.m())?;
        Ok(CheckpointedRun {
            inst,
            rank,
            cap,
            reject_min: Arc::new(reject_min),
            checkpoints,
            outcome,
            replayed: n - first,
        })
    }

    /// Warm-starts a run at `new_cap` against the instance and rank this
    /// run was built from, reusing the longest prefix whose admissibility
    /// verdicts are unchanged. Requires `new_cap ≥ cap` for the warm path
    /// (the verdict monotonicity the divergence test relies on); a
    /// smaller cap falls back to a cold run. The produced schedule is
    /// bit-identical to a cold run at `new_cap`.
    pub fn resume(&self, new_cap: f64) -> Result<Self, ModelError> {
        if new_cap < self.cap {
            return Self::cold(self.inst, Arc::clone(&self.rank), new_cap);
        }
        let n = self.inst.graph().n();
        // First round in which a previously rejected probe would now be
        // admitted; every earlier round replays verbatim.
        let divergence = self
            .reject_min
            .iter()
            // The ∞ sentinel means "no rejection that round"; it must not
            // hit the tolerant comparison (whose slack is infinite there).
            .position(|&v| v.is_finite() && approx_le(v, new_cap))
            .unwrap_or(n);
        if divergence >= n {
            return Ok(CheckpointedRun {
                inst: self.inst,
                rank: Arc::clone(&self.rank),
                cap: new_cap,
                reject_min: Arc::clone(&self.reject_min),
                checkpoints: self.checkpoints.clone(),
                outcome: self.outcome.clone(),
                replayed: 0,
            });
        }
        let ci = self
            .checkpoints
            .iter()
            .rposition(|c| c.round <= divergence)
            .expect("a non-empty run always snapshots round 0");
        let ck = &self.checkpoints[ci];
        let state = ck.state.clone();
        let admission = RecordingCapAdmission::new(ck.memsize.clone(), new_cap);
        // The replay re-records the snapshot at the restored round, so
        // keep only the strictly earlier ones (still valid: the prefix of
        // the new run is identical).
        let reject_min = self.reject_min[..ck.round].to_vec();
        let checkpoints = self.checkpoints[..ci].to_vec();
        Self::drive(
            self.inst,
            Arc::clone(&self.rank),
            new_cap,
            state,
            admission,
            reject_min,
            checkpoints,
        )
    }

    /// The memory cap this run enforced.
    #[inline]
    pub fn cap(&self) -> f64 {
        self.cap
    }

    /// The produced schedule and Lemma-4 bookkeeping.
    #[inline]
    pub fn outcome(&self) -> &KernelOutcome {
        &self.outcome
    }

    /// Rounds actually executed to produce this run: `n` for a cold run,
    /// `0` when a resume found no diverging round, and the length of the
    /// replayed suffix otherwise. Exposed for tests and sweep telemetry.
    #[inline]
    pub fn replayed_rounds(&self) -> usize {
        self.replayed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priority::{hlf_priority, index_priority};
    use sws_dag::prelude::*;
    use sws_model::validate::validate_timed;

    #[test]
    fn proc_heap_orders_by_load_then_index() {
        let mut h = ProcHeap::new(4);
        assert_eq!(h.min(), 0);
        h.set_load(0, 3.0);
        assert_eq!(h.min(), 1);
        h.set_load(1, 3.0);
        h.set_load(2, 1.0);
        assert_eq!(h.min(), 3);
        h.set_load(3, 2.0);
        assert_eq!(h.min(), 2);
        h.set_load(2, 3.0);
        // All at 3.0 except q3 at 2.0.
        assert_eq!(h.min(), 3);
        h.set_load(3, 3.0);
        // Full tie: lowest index wins.
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn probe_skips_inadmissible_processors_in_load_order() {
        let mut h = ProcHeap::new(4);
        h.set_load(0, 1.0);
        h.set_load(1, 2.0);
        h.set_load(2, 3.0);
        h.set_load(3, 4.0);
        let (q, skipped) = h.probe(|q| q >= 2).unwrap();
        assert_eq!(q, 2);
        assert_eq!(skipped, vec![0, 1]);
        assert!(h.probe(|_| false).is_none());
        let (q, skipped) = h.probe(|_| true).unwrap();
        assert_eq!(q, 0);
        assert!(skipped.is_empty());
    }

    #[test]
    fn kernel_schedules_a_chain_sequentially() {
        let inst = DagInstance::new(chain(5), 3).unwrap();
        let out = event_driven_schedule(&inst, &index_priority(5), &mut Unrestricted).unwrap();
        assert!((out.schedule.cmax(inst.tasks()) - 5.0).abs() < 1e-9);
        assert!(out.marked.iter().all(|&b| !b));
    }

    #[test]
    fn kernel_respects_precedence_on_structured_graphs() {
        for g in [
            gaussian_elimination(5),
            fft_butterfly(3),
            diamond_grid(4, 4),
        ] {
            let inst = DagInstance::new(g, 3).unwrap();
            let rank = hlf_priority(inst.graph());
            let out = event_driven_schedule(&inst, &rank, &mut Unrestricted).unwrap();
            validate_timed(
                inst.tasks(),
                inst.m(),
                &out.schedule,
                inst.graph().all_preds(),
                None,
            )
            .unwrap();
        }
    }

    #[test]
    fn memory_cap_admission_enforces_the_cap() {
        let mut adm = MemoryCapAdmission::new(2, 3.0);
        assert!(adm.admits(0, 3.0));
        adm.commit(0, 2.0);
        assert!(!adm.admits(0, 1.5));
        assert!(adm.admits(1, 1.5));
        match adm.rejection_error(5.0) {
            ModelError::MemoryExceeded { capacity, .. } => assert_eq!(capacity, 3.0),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn kernel_with_cap_never_exceeds_it() {
        let g = fork_join(2, 6).with_costs(|i| sws_model::task::Task {
            p: 1.0 + (i % 3) as f64,
            s: 1.0 + (i % 4) as f64,
        });
        let inst = DagInstance::new(g, 3).unwrap();
        let total_s: f64 = (0..inst.n()).map(|i| inst.tasks().get(i).s).sum();
        let cap = 2.25 * (total_s / 3.0).max(4.0);
        let mut adm = MemoryCapAdmission::new(3, cap);
        let out = event_driven_schedule(&inst, &index_priority(inst.n()), &mut adm).unwrap();
        let mem = out.schedule.memory(inst.tasks());
        assert!(mem.iter().all(|&x| x <= cap + 1e-9));
    }

    #[test]
    fn empty_instance_yields_empty_schedule() {
        let tasks = sws_model::task::TaskSet::from_ps(&[], &[]).unwrap();
        let inst = DagInstance::new(sws_dag::TaskGraph::new(tasks), 2).unwrap();
        let out = event_driven_schedule(&inst, &index_priority(0), &mut Unrestricted).unwrap();
        assert_eq!(out.schedule.n(), 0);
    }

    fn capped_instance() -> (DagInstance, f64) {
        let g = fork_join(3, 9).with_costs(|i| sws_model::task::Task {
            p: 1.0 + (i % 5) as f64,
            s: 1.0 + (i % 3) as f64,
        });
        let inst = DagInstance::new(g, 4).unwrap();
        let total_s: f64 = (0..inst.n()).map(|i| inst.tasks().get(i).s).sum();
        let lb = (total_s / 4.0).max(3.0);
        (inst, lb)
    }

    #[test]
    fn checkpointed_cold_run_matches_the_plain_kernel() {
        let (inst, lb) = capped_instance();
        let rank = Arc::new(index_priority(inst.n()));
        for &delta in &[2.25, 3.0, 8.0] {
            let cap = delta * lb;
            let run = CheckpointedRun::cold(&inst, Arc::clone(&rank), cap).unwrap();
            let mut adm = MemoryCapAdmission::new(inst.m(), cap);
            let direct = event_driven_schedule(&inst, &rank, &mut adm).unwrap();
            assert_eq!(run.outcome().schedule, direct.schedule, "∆={delta}");
            assert_eq!(run.outcome().marked, direct.marked);
            assert_eq!(run.replayed_rounds(), inst.n());
        }
    }

    #[test]
    fn resume_at_a_larger_cap_is_bit_identical_to_a_cold_run() {
        let (inst, lb) = capped_instance();
        let rank = Arc::new(index_priority(inst.n()));
        let mut chain = CheckpointedRun::cold(&inst, Arc::clone(&rank), 2.25 * lb).unwrap();
        for &delta in &[2.5, 2.75, 3.5, 6.0, 100.0] {
            let cap = delta * lb;
            chain = chain.resume(cap).unwrap();
            let cold = CheckpointedRun::cold(&inst, Arc::clone(&rank), cap).unwrap();
            assert_eq!(
                chain.outcome().schedule,
                cold.outcome().schedule,
                "∆={delta}"
            );
            assert_eq!(chain.outcome().marked, cold.outcome().marked, "∆={delta}");
            assert!(chain.replayed_rounds() <= inst.n());
        }
    }

    #[test]
    fn resume_without_divergence_replays_nothing() {
        let (inst, lb) = capped_instance();
        let rank = Arc::new(index_priority(inst.n()));
        // A huge cap never rejects, so any still-larger cap diverges
        // nowhere and the resume reuses the previous outcome wholesale.
        let run = CheckpointedRun::cold(&inst, rank, 1e6 * lb).unwrap();
        let next = run.resume(2e6 * lb).unwrap();
        assert_eq!(next.replayed_rounds(), 0);
        assert_eq!(next.outcome().schedule, run.outcome().schedule);
    }

    #[test]
    fn resume_at_a_smaller_cap_falls_back_to_a_cold_run() {
        let (inst, lb) = capped_instance();
        let rank = Arc::new(index_priority(inst.n()));
        let run = CheckpointedRun::cold(&inst, Arc::clone(&rank), 4.0 * lb).unwrap();
        let back = run.resume(2.25 * lb).unwrap();
        let cold = CheckpointedRun::cold(&inst, rank, 2.25 * lb).unwrap();
        assert_eq!(back.outcome().schedule, cold.outcome().schedule);
        assert_eq!(back.replayed_rounds(), inst.n());
    }
}
