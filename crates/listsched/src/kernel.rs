//! Event-driven list-scheduling kernel.
//!
//! Every list scheduler in this repository — Graham scheduling of
//! independent tasks, DAG list scheduling, and the paper's RLS∆
//! (Algorithm 2) — shares one selection rule: among the *ready* tasks,
//! repeatedly schedule the one that can start the soonest on the least
//! loaded *admissible* processor, breaking approximate start-time ties by
//! a priority rank. The naive implementations rescan every unscheduled
//! task and every processor each round, which costs `O(n²·m)`; this
//! module computes the same schedules event-drivenly in
//! `O((n + E)·log n + n·log m)` when the admissibility predicate accepts
//! the least loaded processor (always true for plain Graham, and true
//! for RLS∆ except while a memory-saturated processor sits at the load
//! minimum — rounds where that happens re-probe the rejected runnable
//! prefix, degrading towards the naive cost in the worst case but
//! staying negligible on every measured workload; see
//! docs/PERFORMANCE.md):
//!
//! * a **ready-task structure** fed by predecessor-completion events
//!   (tasks enter when their last predecessor is scheduled) split into a
//!   rank-slot *runnable* bitmap (ready time ≤ current minimum load, so
//!   the earliest start is the minimum load itself and only the
//!   quantized priority slot orders the task — one bit per task in a
//!   three-level hierarchical bitmap) and a ready-time keyed 4-ary
//!   *pending* heap;
//! * an **indexed 4-ary min-heap over processor loads** ([`ProcHeap`]) whose
//!   ordered traversal ([`ProcHeap::probe`]) finds the least loaded
//!   processor satisfying a pluggable **admissibility predicate**
//!   ([`Admission`]) — plain Graham ([`Unrestricted`]) and RLS∆'s
//!   `memsize[q] + s_i ≤ ∆·LB` filter ([`MemoryCapAdmission`]) are the
//!   same kernel with different predicates;
//! * **incremental Lemma-4 bookkeeping**: the processors skipped by the
//!   winning probe are exactly the "marked" processors of the paper's
//!   analysis, so marking costs `O(#skipped)` instead of a per-candidate
//!   `O(m)` sweep;
//! * **checkpoint/resume for ∆-sweeps** ([`CheckpointedRun`]): a
//!   memory-capped run records per-round rejection thresholds and
//!   periodic snapshots of the resumable [`EngineState`], so a later run
//!   at a larger cap replays only from the first round whose
//!   admissibility verdict changes (and costs nothing when none does) —
//!   the warm-start backbone of the incremental Pareto sweeps in
//!   `sws_core::pareto_sweep`.
//!
//! # Memory story (allocation-free steady state)
//!
//! Since the allocation rework the kernel is split along the memory
//! axis too:
//!
//! * the **instance** is borrowed as a flat [`sws_dag::CsrDag`] — CSR
//!   adjacency with `u32` indices in both directions plus
//!   structure-of-arrays `f64` cost vectors — built **once per
//!   instance** and shared by every run over it (the nested-`Vec`
//!   [`sws_dag::TaskGraph`] stays the build/mutate API and converts via
//!   `TaskGraph::csr()`);
//! * every **per-run buffer** (the ready heaps, the processor-load
//!   heap, the completion/ready/placement arrays, the per-round scratch
//!   and the probe frontier) lives in a reusable [`KernelWorkspace`]
//!   whose initialization clears without freeing, so repeated runs
//!   through one workspace — a ∆-sweep chain, a batch of instances —
//!   allocate nothing in steady state beyond the returned
//!   [`KernelOutcome`] itself.
//!
//! [`event_driven_schedule_csr`] is the workspace-reuse entry point;
//! [`event_driven_schedule`] remains the one-shot convenience wrapper
//! (it builds the CSR form and a fresh workspace per call). Both produce
//! bit-identical schedules — `tests/differential_kernel.rs` enforces
//! this across every generator family × priority order × m, and a
//! proptest interleaves instances of different sizes through one
//! workspace to prove reuse cannot leak state between runs.
//!
//! Tie-breaking uses the same shared comparator
//! ([`sws_model::numeric::better_candidate`]) as the retained naive
//! oracles (`crate::naive`, `sws_core::rls::naive`), so kernel and naive
//! paths select identical tasks wherever the comparator's tolerance-based
//! tie relation is transitive — which the differential test-suite checks
//! schedule-for-schedule across every generator family. The one
//! intentional difference is that the kernel marks processors only for
//! the *selected* candidate's probe (the paper's semantics), while the
//! naive oracle conservatively marks while evaluating every candidate;
//! the kernel's marked set is therefore a subset of the oracle's and
//! still satisfies the Lemma 4 bound.

use std::cell::Cell;
use std::ops::Range;
use std::sync::Arc;

use sws_dag::{CsrDag, DagInstance};
use sws_model::cancel::CancelProbe;
use sws_model::error::ModelError;
use sws_model::numeric::{approx_le, better_candidate, finite_ge, strictly_lt};
use sws_model::schedule::TimedSchedule;

use crate::priority::PriorityRank;

/// Heap key for a non-negative finite time value: the IEEE-754 bit
/// pattern, whose unsigned integer order coincides with the numeric
/// order on non-negative floats (`+ 0.0` normalizes a possible `-0.0`).
/// Every time the kernel keys a heap on — ready times, start times,
/// loads — is a sum/max of validated non-negative task data, so the
/// integer comparison is exact *and* cheaper than `f64` ordering in the
/// sift paths.
#[inline]
fn time_key(t: f64) -> u64 {
    debug_assert!(finite_ge(t, 0.0), "time keys are non-negative finite");
    (t + 0.0).to_bits()
}

/// Packs a `(rank, task)` pair into one `u64` whose integer order is the
/// lexicographic pair order — one comparison per heap sift level instead
/// of two.
#[inline]
fn rank_task(rank: u32, task: u32) -> u64 {
    ((rank as u64) << 32) | task as u64
}

/// Task index of a [`rank_task`] pack.
#[inline]
fn task_of(pack: u64) -> u32 {
    pack as u32
}

/// Rank of a [`rank_task`] pack.
#[inline]
fn rank_of(pack: u64) -> u32 {
    (pack >> 32) as u32
}

/// Indexed **4-ary** min-heap over processor loads, ordered by
/// `(load, processor index)` so ties resolve towards the lowest index —
/// the same tie-break as the naive `argmin` scans.
///
/// Loads only ever increase (a placement raises one processor's load to
/// the placed task's completion time), so the heap needs only
/// `sift_down`. The layout is structure-of-arrays: one contiguous `key`
/// stripe of packed `(load bits << 32) | processor` integers (loads are
/// non-negative, so the bit pattern orders like the value — see
/// [`time_key`] — and the pack makes every sift comparison a *single*
/// integer compare with the index tie-break built in), plus the `pos`
/// index and the `f64` `load` array serving only by-processor lookups.
/// The 4-ary fanout puts all children of a node in one 64-byte stripe
/// (4 × 16-byte keys), and the min-of-children is a branchless select
/// tournament on the integer keys, so the once-per-round `set_load`
/// sift touches `log₄ m` predictable cache lines instead of `log₂ m`
/// scattered ones.
#[derive(Debug)]
pub struct ProcHeap {
    /// `key[pos]` = `(load bits << 32) | processor id`, min-heap ordered
    /// with 4-ary fanout (children of `i` are `4i+1 ..= 4i+4`).
    key: Vec<u128>,
    /// `pos[q]` = position of processor `q` in `key`.
    pos: Vec<u32>,
    /// Current load of each processor (kept in sync with the packed
    /// keys; serves the by-processor `load()` lookups).
    load: Vec<f64>,
}

/// Packs `(load, processor)` into one integer whose unsigned order is
/// the lexicographic pair order.
#[inline]
fn proc_key(load: f64, q: u32) -> u128 {
    ((time_key(load) as u128) << 32) | q as u128
}

/// Processor id of a [`proc_key`] pack.
#[inline]
fn proc_of_key(k: u128) -> usize {
    k as u32 as usize
}

impl Clone for ProcHeap {
    fn clone(&self) -> Self {
        ProcHeap {
            key: self.key.clone(),
            pos: self.pos.clone(),
            load: self.load.clone(),
        }
    }

    /// Buffer-reusing clone: checkpoint restores go through this so a
    /// resume does not re-allocate the heap arrays.
    fn clone_from(&mut self, source: &Self) {
        self.key.clone_from(&source.key);
        self.pos.clone_from(&source.pos);
        self.load.clone_from(&source.load);
    }
}

impl ProcHeap {
    /// A heap of `m` processors, all with zero load.
    pub fn new(m: usize) -> Self {
        let mut h = ProcHeap {
            key: Vec::new(),
            pos: Vec::new(),
            load: Vec::new(),
        };
        h.reset(m);
        h
    }

    /// An empty heap (no processors); [`ProcHeap::reset`] gives it a
    /// size. Used by workspaces that are constructed before the first
    /// instance is known.
    pub(crate) fn empty() -> Self {
        ProcHeap {
            key: Vec::new(),
            pos: Vec::new(),
            load: Vec::new(),
        }
    }

    /// Re-initializes to `m` processors of zero load, reusing the
    /// existing buffers (no allocation when the capacity suffices).
    pub fn reset(&mut self, m: usize) {
        assert!(m >= 1, "need at least one processor");
        assert!(m <= u32::MAX as usize, "processor ids fit in u32");
        self.key.clear();
        self.key.extend((0..m).map(|q| q as u128));
        self.pos.clear();
        self.pos.extend(0..m as u32);
        self.load.clear();
        self.load.resize(m, 0.0);
    }

    /// Number of processors.
    #[inline]
    pub fn m(&self) -> usize {
        self.load.len()
    }

    /// The least loaded processor (lowest index among ties).
    #[inline]
    pub fn min(&self) -> usize {
        proc_of_key(self.key[0])
    }

    /// The minimum load itself (the load of [`ProcHeap::min`]).
    #[inline]
    pub fn min_load(&self) -> f64 {
        f64::from_bits((self.key[0] >> 32) as u64)
    }

    /// Load of processor `q`.
    #[inline]
    pub fn load(&self, q: usize) -> f64 {
        self.load[q]
    }

    /// All loads, indexed by processor.
    #[inline]
    pub fn loads(&self) -> &[f64] {
        &self.load
    }

    // sws-lint: hot-path
    /// Raises the load of processor `q` (placements never lower a load).
    pub fn set_load(&mut self, q: usize, new_load: f64) {
        debug_assert!(
            new_load >= self.load[q],
            "loads are monotone non-decreasing"
        );
        self.load[q] = new_load;
        let at = self.pos[q] as usize;
        self.key[at] = proc_key(new_load, q as u32);
        self.sift_down(at);
    }

    /// Position of the smallest child of the (full, 4-child) node whose
    /// first child sits at `first`: a branchless select tournament — two
    /// leaf minima, then their minimum — with no data-dependent branch
    /// for the integer comparator to mispredict.
    #[inline]
    fn min_child4(&self, first: usize) -> usize {
        let a = if self.key[first + 1] < self.key[first] {
            first + 1
        } else {
            first
        };
        let b = if self.key[first + 3] < self.key[first + 2] {
            first + 3
        } else {
            first + 2
        };
        if self.key[b] < self.key[a] {
            b
        } else {
            a
        }
    }

    fn sift_down(&mut self, mut at: usize) {
        loop {
            let first = 4 * at + 1;
            if first >= self.key.len() {
                return;
            }
            // Full nodes (the common case on every non-last level) take
            // the branchless tournament; the at-most-one ragged node at
            // the end falls back to a short scan.
            let best = if first + 4 <= self.key.len() {
                self.min_child4(first)
            } else {
                let mut b = first;
                for c in first + 1..self.key.len() {
                    if self.key[c] < self.key[b] {
                        b = c;
                    }
                }
                b
            };
            if self.key[at] <= self.key[best] {
                return;
            }
            self.key.swap(at, best);
            self.pos[proc_of_key(self.key[at])] = at as u32;
            self.pos[proc_of_key(self.key[best])] = best as u32;
            at = best;
        }
    }
    // sws-lint: end-hot-path

    /// Visits processors in increasing `(load, index)` order until `admit`
    /// accepts one; returns the accepted processor together with the
    /// processors skipped on the way (all rejected, all with a key no
    /// larger than the accepted one). `None` when every processor is
    /// rejected. Allocating convenience wrapper over
    /// [`ProcHeap::probe_with`].
    pub fn probe<F: FnMut(usize) -> bool>(&self, admit: F) -> Option<(usize, Vec<usize>)> {
        let mut frontier = Vec::new();
        let mut skipped = Vec::new();
        self.probe_with(admit, &mut frontier, &mut skipped)
            .map(|q| (q, skipped))
    }

    // sws-lint: hot-path
    /// Allocation-free probe: the traversal frontier lives in `frontier`
    /// (cleared on entry) and skipped processors are **appended** to
    /// `skipped` (the caller records the starting length), so the hot
    /// loop reuses two workspace buffers instead of allocating two
    /// vectors per probe.
    ///
    /// The traversal expands the heap lazily, so accepting the first
    /// probe — the overwhelmingly common case — costs `O(1)`. The visit
    /// order depends only on the key order, not the heap shape, so the
    /// 4-ary layout reports the same skipped sets as the old binary one.
    pub fn probe_with<F: FnMut(usize) -> bool>(
        &self,
        mut admit: F,
        frontier: &mut Vec<usize>,
        skipped: &mut Vec<usize>,
    ) -> Option<usize> {
        // Frontier of heap positions whose parents were all visited; the
        // next processor in sorted order is always the frontier minimum.
        // Linear scans are fine: the frontier holds ≤ 4·skips + 1 entries
        // and skips are zero in the unrestricted use and rare in the
        // RLS∆ use (a skip needs a memory-saturated processor below the
        // chosen one's load; unlike marking, skips can recur across
        // rounds, but each costs only the probe that discovers it).
        frontier.clear();
        frontier.push(0);
        while !frontier.is_empty() {
            let mut best = 0;
            for fi in 1..frontier.len() {
                if self.key[frontier[fi]] < self.key[frontier[best]] {
                    best = fi;
                }
            }
            let pos = frontier.swap_remove(best);
            let q = proc_of_key(self.key[pos]);
            if admit(q) {
                return Some(q);
            }
            skipped.push(q);
            let first = 4 * pos + 1;
            for child in first..(first + 4).min(self.key.len()) {
                frontier.push(child);
            }
        }
        None
    }
    // sws-lint: end-hot-path
}

/// Packs a pending-heap entry: ready time above, `(rank, task)` pack
/// below, so unsigned `u128` order is the lexicographic
/// `(ready, rank, task)` order — the exact pop order of the old
/// `BinaryHeap<Reverse<(u64, u64)>>`, in a single compare per sift
/// level.
#[inline]
fn pend_key(ready: f64, pack: u64) -> u128 {
    ((time_key(ready) as u128) << 64) | pack as u128
}

/// Ready time of a [`pend_key`] entry.
#[inline]
fn pend_ready(k: u128) -> f64 {
    f64::from_bits((k >> 64) as u64)
}

/// `(rank, task)` pack of a [`pend_key`] entry.
#[inline]
fn pend_pack(k: u128) -> u64 {
    k as u64
}

/// 4-ary implicit min-heap of [`pend_key`] entries — the *pending* side
/// of the ready structure (tasks whose ready time still exceeds the
/// minimum load). Entries are unique (the pack carries the task id), so
/// the pop sequence is determined by the key order alone and swapping
/// the binary `std` heap for this layout changes nothing observable;
/// what changes is the constant: half the levels, one integer compare
/// per level, and all four children of a node in two adjacent cache
/// lines.
#[derive(Debug, Default)]
struct PendingHeap {
    heap: Vec<u128>,
}

impl Clone for PendingHeap {
    fn clone(&self) -> Self {
        PendingHeap {
            heap: self.heap.clone(),
        }
    }

    /// Buffer-reusing clone for checkpoint restores.
    fn clone_from(&mut self, source: &Self) {
        self.heap.clone_from(&source.heap);
    }
}

impl PendingHeap {
    fn clear(&mut self) {
        self.heap.clear();
    }

    fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    // sws-lint: hot-path
    #[inline]
    fn peek(&self) -> Option<u128> {
        self.heap.first().copied()
    }

    fn push(&mut self, k: u128) {
        self.heap.push(k);
        // Sift up, hole-style: the new key is moved once, parents slide
        // down past it.
        let mut at = self.heap.len() - 1;
        while at > 0 {
            let parent = (at - 1) / 4;
            if self.heap[parent] <= k {
                break;
            }
            self.heap[at] = self.heap[parent];
            at = parent;
        }
        self.heap[at] = k;
    }

    fn pop(&mut self) -> Option<u128> {
        let top = self.heap.first().copied()?;
        let last = self.heap.pop().expect("non-empty: peeked above");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.sift_down(0);
        }
        Some(top)
    }

    fn sift_down(&mut self, mut at: usize) {
        loop {
            let first = 4 * at + 1;
            if first >= self.heap.len() {
                return;
            }
            let best = if first + 4 <= self.heap.len() {
                // Branchless select tournament over the full 4-child
                // stripe (see [`ProcHeap::min_child4`]).
                let a = if self.heap[first + 1] < self.heap[first] {
                    first + 1
                } else {
                    first
                };
                let b = if self.heap[first + 3] < self.heap[first + 2] {
                    first + 3
                } else {
                    first + 2
                };
                if self.heap[b] < self.heap[a] {
                    b
                } else {
                    a
                }
            } else {
                let mut b = first;
                for c in first + 1..self.heap.len() {
                    if self.heap[c] < self.heap[b] {
                        b = c;
                    }
                }
                b
            };
            if self.heap[at] <= self.heap[best] {
                return;
            }
            self.heap.swap(at, best);
            at = best;
        }
    }
    // sws-lint: end-hot-path
}

/// Hierarchical bitmap over priority *slots* — the *runnable* side of
/// the ready structure, and the payoff of quantizing the ready-queue
/// keys all the way down: once a task's key is its dense rank in the
/// canonical `(rank, task)` order, the "heap" holding runnable tasks
/// collapses to one bit per slot. Three `u64` levels (each summarizing
/// 64 words of the one below) give `O(1)` insert, remove and find-min —
/// a handful of L1 lines for `n = 10⁴` (≈1.3 KB) where the old binary
/// heap sifted 8-byte packs across `log₂ n ≈ 13` scattered lines.
#[derive(Debug, Default)]
struct RankBitmap {
    /// Bit `s` of `l0[s / 64]` = slot `s` present.
    l0: Vec<u64>,
    /// Bit `w` of `l1[w / 64]` = word `l0[w]` non-zero.
    l1: Vec<u64>,
    /// Bit `w` of `l2[w / 64]` = word `l1[w]` non-zero.
    l2: Vec<u64>,
}

impl Clone for RankBitmap {
    fn clone(&self) -> Self {
        RankBitmap {
            l0: self.l0.clone(),
            l1: self.l1.clone(),
            l2: self.l2.clone(),
        }
    }

    /// Buffer-reusing clone for checkpoint restores.
    fn clone_from(&mut self, source: &Self) {
        self.l0.clone_from(&source.l0);
        self.l1.clone_from(&source.l1);
        self.l2.clone_from(&source.l2);
    }
}

/// Words needed to hold `n` bits.
#[inline]
fn bitmap_words(n: usize) -> usize {
    n.div_ceil(64)
}

impl RankBitmap {
    /// Clears and re-sizes for slots `0..n`, reusing the buffers.
    fn reset(&mut self, n: usize) {
        let w0 = bitmap_words(n);
        let w1 = bitmap_words(w0);
        let w2 = bitmap_words(w1);
        self.l0.clear();
        self.l0.resize(w0, 0);
        self.l1.clear();
        self.l1.resize(w1, 0);
        self.l2.clear();
        self.l2.resize(w2, 0);
    }

    fn reserve(&mut self, n: usize) {
        self.l0.reserve(bitmap_words(n));
    }

    /// Extends the slot space to `0..n` **without clearing**: appended
    /// words are zero, so every present bit and all three summary
    /// levels stay valid verbatim. Used when a replay adapts a restored
    /// state to an instance that grew by an arrival.
    fn grow(&mut self, n: usize) {
        let w0 = bitmap_words(n);
        let w1 = bitmap_words(w0);
        let w2 = bitmap_words(w1);
        if self.l0.len() < w0 {
            self.l0.resize(w0, 0);
        }
        if self.l1.len() < w1 {
            self.l1.resize(w1, 0);
        }
        if self.l2.len() < w2 {
            self.l2.resize(w2, 0);
        }
    }

    // sws-lint: hot-path
    /// Marks slot `s` present. Unconditional ORs on all three levels —
    /// no branches, three L1 lines.
    #[inline]
    fn insert(&mut self, s: u32) {
        let s = s as usize;
        let w0 = s >> 6;
        let w1 = w0 >> 6;
        self.l0[w0] |= 1 << (s & 63);
        self.l1[w1] |= 1 << (w0 & 63);
        self.l2[w1 >> 6] |= 1 << (w1 & 63);
    }

    /// Clears slot `s`; summary bits clear only when a word empties.
    #[inline]
    fn remove(&mut self, s: u32) {
        let s = s as usize;
        let w0 = s >> 6;
        self.l0[w0] &= !(1 << (s & 63));
        if self.l0[w0] == 0 {
            let w1 = w0 >> 6;
            self.l1[w1] &= !(1 << (w0 & 63));
            if self.l1[w1] == 0 {
                self.l2[w1 >> 6] &= !(1 << (w1 & 63));
            }
        }
    }

    /// The smallest present slot: first set bit, found by descending the
    /// summary levels (the top level is a single word up to
    /// `n = 64³ = 262 144`; larger instances scan it linearly).
    #[inline]
    fn min(&self) -> Option<u32> {
        let w2i = self.l2.iter().position(|&w| w != 0)?;
        let w1i = (w2i << 6) | self.l2[w2i].trailing_zeros() as usize;
        let w0i = (w1i << 6) | self.l1[w1i].trailing_zeros() as usize;
        Some(((w0i << 6) | self.l0[w0i].trailing_zeros() as usize) as u32)
    }

    /// Pops the smallest present slot.
    #[inline]
    fn pop_min(&mut self) -> Option<u32> {
        let s = self.min()?;
        self.remove(s);
        Some(s)
    }
    // sws-lint: end-hot-path
}

/// Pluggable admissibility predicate deciding which processors may
/// receive a task.
pub trait Admission {
    /// May a task with storage requirement `s` be placed on processor `q`?
    fn admits(&self, q: usize, s: f64) -> bool;

    /// Records the placement of a task with storage requirement `s` on
    /// processor `q`.
    fn commit(&mut self, q: usize, s: f64);

    /// The error reported when no processor admits a task with storage
    /// requirement `s`.
    fn rejection_error(&self, s: f64) -> ModelError {
        ModelError::MemoryExceeded {
            proc: 0,
            used: s,
            capacity: f64::INFINITY,
        }
    }
}

/// Plain Graham list scheduling: every processor is always admissible.
#[derive(Debug, Clone, Copy, Default)]
pub struct Unrestricted;

impl Admission for Unrestricted {
    #[inline]
    fn admits(&self, _q: usize, _s: f64) -> bool {
        true
    }

    #[inline]
    fn commit(&mut self, _q: usize, _s: f64) {}
}

/// RLS∆'s restriction: processor `q` admits a task of storage `s` iff
/// `memsize[q] + s ≤ cap` (with the shared tolerance), where
/// `cap = ∆·LB`.
#[derive(Debug, Clone)]
pub struct MemoryCapAdmission {
    memsize: Vec<f64>,
    cap: f64,
}

impl MemoryCapAdmission {
    /// A fresh restriction over `m` processors with memory cap `cap`.
    pub fn new(m: usize, cap: f64) -> Self {
        MemoryCapAdmission {
            memsize: vec![0.0; m],
            cap,
        }
    }

    /// Re-initializes for a new run over `m` processors with cap `cap`,
    /// reusing the committed-memory buffer (no allocation when the
    /// capacity suffices) — the per-run reset of the batch and sweep
    /// serving paths.
    pub fn reset(&mut self, m: usize, cap: f64) {
        self.memsize.clear();
        self.memsize.resize(m, 0.0);
        self.cap = cap;
    }

    /// Per-processor memory committed so far.
    pub fn memsize(&self) -> &[f64] {
        &self.memsize
    }

    /// The enforced cap `∆·LB`.
    pub fn cap(&self) -> f64 {
        self.cap
    }
}

impl Admission for MemoryCapAdmission {
    #[inline]
    fn admits(&self, q: usize, s: f64) -> bool {
        approx_le(self.memsize[q] + s, self.cap)
    }

    #[inline]
    fn commit(&mut self, q: usize, s: f64) {
        self.memsize[q] += s;
    }

    fn rejection_error(&self, s: f64) -> ModelError {
        ModelError::MemoryExceeded {
            proc: 0,
            used: self.memsize.iter().cloned().fold(0.0, f64::max) + s,
            capacity: self.cap,
        }
    }
}

/// The kernel's output: the schedule plus the Lemma-4 "marked processor"
/// bookkeeping (processors skipped by a winning probe while strictly less
/// loaded than the chosen processor).
#[derive(Debug, Clone)]
pub struct KernelOutcome {
    /// The produced schedule `(π, σ)`.
    pub schedule: TimedSchedule,
    /// Which processors were marked during the run.
    pub marked: Vec<bool>,
}

/// One selection candidate of the current round. Skipped processors are
/// recorded as a range into the round's shared `ProbeScratch::skipped`
/// buffer rather than a per-candidate vector.
#[derive(Debug, Clone)]
struct Candidate {
    /// Earliest start `max(ready time, load of chosen processor)`.
    key: f64,
    /// Tie-break rank.
    rank: u32,
    /// Task index.
    task: u32,
    /// Chosen processor.
    proc: u32,
    /// Processors skipped by the probe (inadmissible, no more loaded),
    /// as a range into the round's shared skipped buffer.
    skipped: Range<u32>,
}

/// Selection buffers of a *contested* round (more than one candidate in
/// play): the popped ready entries that may need restoring and the
/// candidate list the comparator folds over.
#[derive(Debug, Default)]
struct SelectScratch {
    /// Runnable tasks popped this round, `(slot, task)`.
    popped_runnable: Vec<(u32, u32)>,
    /// Pending entries popped this round (their full keys, so losers are
    /// re-pushed bit-exactly).
    popped_pending: Vec<u128>,
    /// Selection candidates of the round.
    cands: Vec<Candidate>,
}

/// Probe buffers, touched only when an *inadmissible* processor sits at
/// the load minimum (the memory-capped paths' rare case).
#[derive(Debug, Default)]
struct ProbeScratch {
    /// Probe traversal frontier ([`ProcHeap::probe_with`]).
    frontier: Vec<usize>,
    /// Processors skipped by this round's probes, shared across
    /// candidates (each candidate holds a range).
    skipped: Vec<usize>,
}

/// Per-round scratch of the scheduling loop: logically dead between
/// rounds, excluded from checkpoint snapshots, and owned by the
/// [`KernelWorkspace`] so its allocations are reused across rounds *and*
/// across runs.
///
/// The layout is split along the round-shape axis: the uncontested fast
/// path (one admissible top candidate, no competition — the
/// overwhelmingly common round) touches only the leading `newly_ready`
/// buffer header, one cache line; the contested-round selection buffers
/// and, behind those, the probe buffers only reachable through an
/// inadmissible load minimum, sit in separate structs so the fast path
/// never pulls their lines.
#[derive(Debug, Default)]
struct StepScratch {
    /// Batched-frontier staging of [`EngineState::place`]: tasks whose
    /// last predecessor the current placement was. The only scratch the
    /// fast path touches.
    newly_ready: Vec<u32>,
    /// Contested rounds only.
    sel: SelectScratch,
    /// Contested rounds with inadmissible load minima only.
    probe: ProbeScratch,
}

impl StepScratch {
    fn clear(&mut self) {
        self.newly_ready.clear();
        self.sel.popped_runnable.clear();
        self.sel.popped_pending.clear();
        self.sel.cands.clear();
        self.probe.frontier.clear();
        self.probe.skipped.clear();
    }
}

/// Per-task readiness bookkeeping, fused so a successor update touches
/// one cache line instead of two parallel arrays.
#[derive(Debug, Clone, Copy)]
struct PredState {
    /// Maximum completion time over scheduled predecessors, maintained
    /// incrementally as predecessors are placed.
    ready: f64,
    /// Predecessors not yet scheduled.
    remaining: u32,
}

/// Resumable mid-run state of the event-driven scheduler: the ready
/// structures, the indexed processor-load heap, the incremental Lemma-4
/// marked-processor bookkeeping, and the partial schedule built so far.
///
/// The scheduling loop is fully deterministic given a state and an
/// admissibility predicate, so a cloned `EngineState` replayed with the
/// same verdicts reproduces the original run bit for bit — the property
/// the ∆-sweep checkpoint/resume machinery ([`CheckpointedRun`]) is
/// built on.
///
/// Task and rank indices are stored as `u32` (the CSR layer guarantees
/// `n < u32::MAX`), which halves the ready structures' memory traffic.
///
/// # Slots
///
/// The runnable structure is a [`RankBitmap`] indexed by **slot**: the
/// task's position in the canonical ascending `(rank, task)` order —
/// exactly the pop order of the [`rank_task`]-packed heap it replaces.
/// When the priority rank is a permutation of `0..n` (every built-in
/// constructor), `slot == rank` and the slot tables are a copy and a
/// scatter; degenerate ranks (duplicates, `u32::MAX` sentinels) fall
/// back to sorting the packs once per run. Either way the bitmap pops
/// tasks in the identical sequence, so schedules are bit-identical.
#[derive(Debug)]
pub struct EngineState {
    procs: ProcHeap,
    marked: Vec<bool>,
    /// Readiness of every task (incremental predecessor bookkeeping).
    preds: Vec<PredState>,
    proc_of: Vec<u32>,
    start: Vec<f64>,
    /// Ready tasks whose ready time exceeds the current minimum load,
    /// keyed by the packed `(ready, rank, task)` [`pend_key`].
    pending: PendingHeap,
    /// Ready tasks whose ready time is (approximately) at or below the
    /// minimum load — their earliest start is the minimum load itself, so
    /// only the `(rank, task)` order ranks them: one bit per slot.
    runnable: RankBitmap,
    /// `slot_of_task[i]` = position of task `i` in the canonical
    /// `(rank, task)` order (run-constant after `init`).
    slot_of_task: Vec<u32>,
    /// Inverse of `slot_of_task` (run-constant after `init`).
    task_of_slot: Vec<u32>,
    /// Number of placements made so far.
    round: usize,
}

impl Clone for EngineState {
    fn clone(&self) -> Self {
        EngineState {
            procs: self.procs.clone(),
            marked: self.marked.clone(),
            preds: self.preds.clone(),
            proc_of: self.proc_of.clone(),
            start: self.start.clone(),
            pending: self.pending.clone(),
            runnable: self.runnable.clone(),
            slot_of_task: self.slot_of_task.clone(),
            task_of_slot: self.task_of_slot.clone(),
            round: self.round,
        }
    }

    /// Buffer-reusing clone: restoring a checkpoint into a workspace
    /// goes through this, so a warm resume re-fills the existing
    /// allocations instead of replacing them.
    fn clone_from(&mut self, source: &Self) {
        self.procs.clone_from(&source.procs);
        self.marked.clone_from(&source.marked);
        self.preds.clone_from(&source.preds);
        self.proc_of.clone_from(&source.proc_of);
        self.start.clone_from(&source.start);
        self.pending.clone_from(&source.pending);
        self.runnable.clone_from(&source.runnable);
        self.slot_of_task.clone_from(&source.slot_of_task);
        self.task_of_slot.clone_from(&source.task_of_slot);
        self.round = source.round;
    }
}

/// Sets `v`'s length to `n` without zeroing a reused prefix: every
/// element is overwritten before it is read (placement arrays are
/// written when their task is placed, and read only after all `n`
/// rounds), so carrying stale values from the previous run is safe and
/// saves the O(n) clear on every warm re-init.
fn resize_for_overwrite<T: Copy>(v: &mut Vec<T>, n: usize, fill: T) {
    if v.len() >= n {
        v.truncate(n);
    } else {
        v.resize(n, fill);
    }
}

impl EngineState {
    /// A state with no buffers; [`EngineState::init`] sizes it for an
    /// instance.
    fn empty() -> Self {
        EngineState {
            procs: ProcHeap::empty(),
            marked: Vec::new(),
            preds: Vec::new(),
            proc_of: Vec::new(),
            start: Vec::new(),
            pending: PendingHeap::default(),
            runnable: RankBitmap::default(),
            slot_of_task: Vec::new(),
            task_of_slot: Vec::new(),
            round: 0,
        }
    }

    /// Builds the slot tables for this run's priority rank (see the
    /// [`EngineState`] slot docs): `slot_of_task` is the rank itself
    /// when the rank is a permutation of `0..n`, detected in one scatter
    /// pass; otherwise the `(rank, task)` packs are sorted once.
    fn build_slots(&mut self, rank: &PriorityRank, n: usize) {
        resize_for_overwrite(&mut self.slot_of_task, n, 0);
        resize_for_overwrite(&mut self.task_of_slot, n, 0);
        // Scatter the inverse, using u32::MAX as the "slot still free"
        // marker (task ids are < n < u32::MAX, so the marker is safe).
        self.task_of_slot.iter_mut().for_each(|t| *t = u32::MAX);
        let mut is_permutation = true;
        for (i, &r) in rank.iter().enumerate() {
            if (r as usize) < n && self.task_of_slot[r as usize] == u32::MAX {
                self.task_of_slot[r as usize] = i as u32;
            } else {
                is_permutation = false;
                break;
            }
        }
        if is_permutation {
            self.slot_of_task.copy_from_slice(rank);
            return;
        }
        // Degenerate rank (duplicates or out-of-range sentinels): sort
        // the packs to materialize the canonical order. Cold per-run
        // cost on a path no built-in priority constructor takes.
        let mut packs: Vec<u64> = (0..n).map(|i| rank_task(rank[i], i as u32)).collect();
        packs.sort_unstable();
        for (slot, &pk) in packs.iter().enumerate() {
            self.task_of_slot[slot] = task_of(pk);
            self.slot_of_task[task_of(pk) as usize] = slot as u32;
        }
    }

    /// Re-initializes for a run over `csr` on `m` processors, reusing
    /// every buffer: no placements yet, all source tasks ready at 0.
    /// The pending heap is reserved to `n` up front, so the cold first
    /// run grows its buffers exactly once and behaves like the reuse
    /// path afterwards.
    fn init(&mut self, csr: &CsrDag, m: usize, rank: &PriorityRank) {
        let n = csr.n();
        assert_eq!(rank.len(), n, "priority rank must cover every task");
        self.procs.reset(m);
        self.marked.clear();
        self.marked.resize(m, false);
        self.preds.clear();
        self.preds.extend((0..n).map(|i| PredState {
            ready: 0.0,
            remaining: csr.in_degree(i) as u32,
        }));
        resize_for_overwrite(&mut self.proc_of, n, 0);
        resize_for_overwrite(&mut self.start, n, 0.0);
        self.pending.clear();
        self.pending.reserve(n);
        self.build_slots(rank, n);
        self.runnable.reset(n);
        // Source tasks are ready at 0 = the initial minimum load, so the
        // first round's migration would move every one of them to the
        // runnable structure; set their bits directly (equivalent, no
        // pending round trip).
        for (i, ps) in self.preds.iter().enumerate() {
            if ps.remaining == 0 {
                self.runnable.insert(self.slot_of_task[i]);
            }
        }
        self.round = 0;
    }

    // sws-lint: hot-path
    /// Executes one placement round, reporting the winning task and its
    /// start key (the replay machinery records them per round; plain
    /// runs discard them). Precondition: `rounds_done() < n`.
    fn step<A: Admission>(
        &mut self,
        csr: &CsrDag,
        rank: &PriorityRank,
        admission: &mut A,
        scratch: &mut StepScratch,
    ) -> Result<(u32, f64), ModelError> {
        let q1 = self.procs.min();
        let l1 = self.procs.min_load();

        // Migration: the minimum load only grows, so once a ready time is
        // (approximately) at or below it the task is runnable forever.
        while let Some(k) = self.pending.peek() {
            if !approx_le(pend_ready(k), l1) {
                break;
            }
            self.pending.pop();
            self.runnable
                .insert(self.slot_of_task[task_of(pend_pack(k)) as usize]);
        }

        // Fast check for the dominant round shape: the best-ranked
        // runnable task is admissible on the least loaded processor and
        // no pending task's ready time reaches its start key, so the
        // full scan below would produce exactly this single candidate
        // (and the winning probe skips no processors). Equivalent by
        // construction — the runnable scan would break at this task,
        // and the pending scan's entry condition is the one tested here.
        // When a pending task *does* compete, the admissible top is
        // handed to the general path as its first candidate (the scan
        // below would stop there anyway).
        let mut admissible_top: Option<(u32, u32, f64)> = None;
        if let Some(slot) = self.runnable.min() {
            let i = self.task_of_slot[slot as usize];
            let s_i = csr.s(i as usize);
            if admission.admits(q1, s_i) {
                let key = self.preds[i as usize].ready.max(l1);
                // When the key is the minimum load itself, the migration
                // loop above already established that no pending ready
                // time reaches it (tolerantly) — skip the re-check.
                let contested = match self.pending.peek() {
                    Some(k) => key > l1 && approx_le(pend_ready(k), key),
                    None => false,
                };
                if !contested {
                    self.runnable.remove(slot);
                    self.place(csr, rank, admission, i as usize, q1, key, scratch);
                    return Ok((i, key));
                }
                admissible_top = Some((slot, i, key));
            }
        }

        scratch.sel.cands.clear();
        scratch.sel.popped_runnable.clear();
        scratch.sel.popped_pending.clear();
        scratch.probe.skipped.clear();

        // Runnable scan: in slot (= rank, task) order, stop at the first
        // task admissible on the least loaded processor — no later-slot
        // runnable task can beat it (its key is minimal and its rank
        // smaller or index-tied). Earlier-slot tasks rejected on q1 stay
        // candidates with their own probe.
        if let Some((slot, i, key)) = admissible_top {
            // The scan would pop exactly this task and break.
            self.runnable.remove(slot);
            scratch.sel.popped_runnable.push((slot, i));
            scratch.sel.cands.push(Candidate {
                key,
                rank: rank[i as usize],
                task: i,
                proc: q1 as u32,
                skipped: 0..0,
            });
        } else {
            while let Some(slot) = self.runnable.pop_min() {
                let i = self.task_of_slot[slot as usize];
                scratch.sel.popped_runnable.push((slot, i));
                let s_i = csr.s(i as usize);
                if admission.admits(q1, s_i) {
                    scratch.sel.cands.push(Candidate {
                        key: self.preds[i as usize].ready.max(l1),
                        rank: rank[i as usize],
                        task: i,
                        proc: q1 as u32,
                        skipped: 0..0,
                    });
                    break;
                }
                let sk_start = scratch.probe.skipped.len() as u32;
                match self.procs.probe_with(
                    |q| admission.admits(q, s_i),
                    &mut scratch.probe.frontier,
                    &mut scratch.probe.skipped,
                ) {
                    Some(j) => scratch.sel.cands.push(Candidate {
                        key: self.preds[i as usize].ready.max(self.procs.load(j)),
                        rank: rank[i as usize],
                        task: i,
                        proc: j as u32,
                        skipped: sk_start..scratch.probe.skipped.len() as u32,
                    }),
                    None => return Err(admission.rejection_error(s_i)),
                }
            }
        }

        // Pending scan: a pending task can only win while its ready time
        // is approximately at or below the best candidate key (its start
        // is at least its ready time).
        let mut best_key = scratch
            .sel
            .cands
            .iter()
            .map(|c| c.key)
            .fold(f64::INFINITY, f64::min);
        while let Some(k) = self.pending.peek() {
            let ready = pend_ready(k);
            if !approx_le(ready, best_key) {
                break;
            }
            let pack = pend_pack(k);
            let (rk, i) = (rank_of(pack), task_of(pack));
            self.pending.pop();
            scratch.sel.popped_pending.push(k);
            let s_i = csr.s(i as usize);
            // The probe visits the least loaded processor first, so an
            // accept on q1 — the overwhelmingly common case — needs no
            // frontier machinery at all.
            if admission.admits(q1, s_i) {
                let key = ready.max(l1);
                best_key = best_key.min(key);
                scratch.sel.cands.push(Candidate {
                    key,
                    rank: rk,
                    task: i,
                    proc: q1 as u32,
                    skipped: 0..0,
                });
                continue;
            }
            let sk_start = scratch.probe.skipped.len() as u32;
            match self.procs.probe_with(
                |q| admission.admits(q, s_i),
                &mut scratch.probe.frontier,
                &mut scratch.probe.skipped,
            ) {
                Some(j) => {
                    let key = ready.max(self.procs.load(j));
                    best_key = best_key.min(key);
                    scratch.sel.cands.push(Candidate {
                        key,
                        rank: rk,
                        task: i,
                        proc: j as u32,
                        skipped: sk_start..scratch.probe.skipped.len() as u32,
                    });
                }
                None => return Err(admission.rejection_error(s_i)),
            }
        }

        // Selection: fold with the shared comparator in task-index order,
        // mirroring the naive oracle's scan. A single candidate — the
        // common case — wins outright.
        assert!(
            !scratch.sel.cands.is_empty(),
            "an acyclic graph always has a ready task while tasks remain"
        );
        let winner = if scratch.sel.cands.len() == 1 {
            scratch.sel.cands.pop().expect("len checked above")
        } else {
            scratch.sel.cands.sort_unstable_by_key(|c| c.task);
            let mut w = 0;
            for ci in 1..scratch.sel.cands.len() {
                if better_candidate(
                    scratch.sel.cands[ci].key,
                    scratch.sel.cands[ci].rank as usize,
                    scratch.sel.cands[w].key,
                    scratch.sel.cands[w].rank as usize,
                ) {
                    w = ci;
                }
            }
            scratch.sel.cands.swap_remove(w)
        };

        // Restore the candidates that lost.
        for pi in 0..scratch.sel.popped_runnable.len() {
            let (slot, i) = scratch.sel.popped_runnable[pi];
            if i != winner.task {
                self.runnable.insert(slot);
            }
        }
        for pi in 0..scratch.sel.popped_pending.len() {
            let k = scratch.sel.popped_pending[pi];
            if task_of(pend_pack(k)) != winner.task {
                self.pending.push(k);
            }
        }

        // Lemma-4 bookkeeping: the winning probe skipped exactly the
        // processors that were less loaded than the chosen one but
        // inadmissible ("marked" in the paper's analysis). Skipped
        // processors with a load equal to the chosen one are not marked,
        // matching the naive oracle's strict comparison.
        let i = winner.task as usize;
        let j = winner.proc as usize;
        let chosen_load = self.procs.load(j);
        for &q in &scratch.probe.skipped[winner.skipped.start as usize..winner.skipped.end as usize]
        {
            if self.procs.load(q) < chosen_load {
                self.marked[q] = true;
            }
        }

        let key = winner.key;
        self.place(csr, rank, admission, i, j, key, scratch);
        Ok((i as u32, key))
    }

    /// Places task `i` on processor `j` starting at `key` and fires its
    /// completion event (shared tail of the fast and general selection
    /// paths).
    ///
    /// The completion event is a **batched frontier update**: one
    /// sequential pass over the CSR successor slice performs the
    /// readiness decrements and stages the tasks whose last predecessor
    /// this was in `scratch.newly_ready`; the ready-structure insertions
    /// then run as a single bulk pass. Splitting the passes keeps the
    /// decrement loop a pure array walk (no heap/bitmap lines
    /// interleaved into its stride) and lets the pushes batch against
    /// one post-placement `min_load` read.
    #[allow(clippy::too_many_arguments)]
    fn place<A: Admission>(
        &mut self,
        csr: &CsrDag,
        rank: &PriorityRank,
        admission: &mut A,
        i: usize,
        j: usize,
        key: f64,
        scratch: &mut StepScratch,
    ) {
        self.proc_of[i] = j as u32;
        self.start[i] = key;
        let completion = key + csr.p(i);
        self.procs.set_load(j, completion);
        admission.commit(j, csr.s(i));

        scratch.newly_ready.clear();
        for &v in csr.succs(i) {
            let v = v as usize;
            let ps = &mut self.preds[v];
            // Branchless max: completion and ready are non-negative and
            // never NaN, so `f64::max` matches the conditional update.
            ps.ready = ps.ready.max(completion);
            ps.remaining -= 1;
            if ps.remaining == 0 {
                scratch.newly_ready.push(v as u32);
            }
        }

        // Bulk insertion pass. A successor whose ready time is already
        // (approximately) at or below the current minimum load goes
        // straight to the runnable bitmap: the minimum load never
        // decreases and `approx_le` is monotone in its second argument,
        // so the next round's migration would move it there anyway —
        // skipping the pending round trip halves the structure traffic
        // on wide ready fronts.
        let l_min = self.procs.min_load();
        for ni in 0..scratch.newly_ready.len() {
            let v = scratch.newly_ready[ni] as usize;
            let ready = self.preds[v].ready;
            if approx_le(ready, l_min) {
                self.runnable.insert(self.slot_of_task[v]);
            } else {
                self.pending
                    .push(pend_key(ready, rank_task(rank[v], v as u32)));
            }
        }

        self.round += 1;
    }
    // sws-lint: end-hot-path

    /// Copies a completed state (every round executed) into the kernel's
    /// outcome. Borrows instead of consuming so the state's buffers stay
    /// in the workspace for the next run. The schedule's invariants hold
    /// by construction (processors come from the heap, starts from
    /// non-negative keys), so the unchecked constructor skips the
    /// re-validation passes.
    fn finish(&self, m: usize) -> Result<KernelOutcome, ModelError> {
        let proc_of: Vec<usize> = self.proc_of.iter().map(|&q| q as usize).collect();
        let schedule = TimedSchedule::new_unchecked(proc_of, self.start.clone(), m);
        Ok(KernelOutcome {
            schedule,
            marked: self.marked.clone(),
        })
    }
}

/// Reusable per-run buffers of the scheduling kernel: the resumable
/// [`EngineState`] plus the per-round scratch. Construct once (per
/// thread / per rayon worker), thread `&mut` through any number of runs
/// — each run re-initializes the buffers without freeing them, so
/// steady-state scheduling performs no heap allocation beyond the
/// returned [`KernelOutcome`].
///
/// Reuse is **stateless across runs by construction**: every buffer is
/// fully re-initialized from the instance at the start of a run
/// ([`EngineState::init`]), which the differential suite and a
/// dedicated interleaving proptest verify bit-for-bit.
#[derive(Debug)]
pub struct KernelWorkspace {
    state: EngineState,
    scratch: StepScratch,
    probe: CancelProbe,
}

impl Default for KernelWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl KernelWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        KernelWorkspace {
            state: EngineState::empty(),
            scratch: StepScratch::default(),
            probe: CancelProbe::never(),
        }
    }

    /// Arms a cooperative cancellation/deadline probe: runs through this
    /// workspace poll it every [`PROBE_STRIDE`] rounds and stop with
    /// `ModelError::Interrupted` once it trips. The workspace stays
    /// reusable after an interrupted run.
    pub fn set_probe(&mut self, probe: CancelProbe) {
        self.probe = probe;
    }

    /// Disarms the probe (the default).
    pub fn clear_probe(&mut self) {
        self.probe = CancelProbe::never();
    }

    /// The currently armed probe (never-tripping by default). Backends
    /// that run outside the kernel loop (PTAS, exact enumeration) read
    /// it here so one workspace carries the signal to every backend.
    pub fn probe(&self) -> &CancelProbe {
        &self.probe
    }

    /// A workspace pre-sized for instances of up to `n` tasks on up to
    /// `m` processors, so even the first run allocates up front instead
    /// of growing mid-run.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        let mut ws = Self::new();
        ws.state.marked.reserve(m);
        ws.state.preds.reserve(n);
        ws.state.proc_of.reserve(n);
        ws.state.start.reserve(n);
        ws.state.pending.reserve(n);
        ws.state.runnable.reserve(n);
        ws.state.slot_of_task.reserve(n);
        ws.state.task_of_slot.reserve(n);
        ws.state.procs.key.reserve(m);
        ws.state.procs.pos.reserve(m);
        ws.state.procs.load.reserve(m);
        ws
    }
}

/// Event-driven list scheduling of a precedence-constrained instance.
///
/// `rank` gives the tie-break rank of every task (lower = preferred);
/// `admission` decides which processors may receive each task. With
/// [`Unrestricted`] this computes Graham DAG list scheduling; with
/// [`MemoryCapAdmission`] it computes the paper's RLS∆.
///
/// One-shot convenience wrapper: builds the CSR mirror and a fresh
/// workspace per call. Throughput callers (sweeps, batches) should
/// build the [`CsrDag`] once per instance and reuse a
/// [`KernelWorkspace`] through [`event_driven_schedule_csr`].
pub fn event_driven_schedule<A: Admission>(
    inst: &DagInstance,
    rank: &PriorityRank,
    admission: &mut A,
) -> Result<KernelOutcome, ModelError> {
    let csr = inst.csr();
    let mut ws = KernelWorkspace::with_capacity(inst.n(), inst.m());
    event_driven_schedule_csr(&csr, inst.m(), rank, admission, &mut ws)
}

/// [`event_driven_schedule`] over the flat CSR instance form with an
/// explicit reusable workspace — the allocation-free serving path.
/// Produces bit-identical output to the wrapper.
pub fn event_driven_schedule_csr<A: Admission>(
    csr: &CsrDag,
    m: usize,
    rank: &PriorityRank,
    admission: &mut A,
    ws: &mut KernelWorkspace,
) -> Result<KernelOutcome, ModelError> {
    let n = csr.n();
    ws.state.init(csr, m, rank);
    ws.scratch.clear();
    while ws.state.round < n {
        if ws.state.round.is_multiple_of(PROBE_STRIDE) {
            ws.probe.poll()?;
        }
        ws.state.step(csr, rank, admission, &mut ws.scratch)?;
    }
    ws.state.finish(m)
}

/// Rounds between cancellation-probe polls: cancellation latency is
/// bounded by this many rounds, while an unarmed poll every 64 rounds
/// stays far below the cost of a single scheduling round.
pub const PROBE_STRIDE: usize = 64;

/// [`MemoryCapAdmission`] wrapper that additionally records, per round,
/// the smallest inadmissible `memsize[q] + s` value probed. Interior
/// mutability because [`Admission::admits`] takes `&self` (heap probes
/// borrow the predicate immutably).
#[derive(Debug)]
struct RecordingCapAdmission {
    inner: MemoryCapAdmission,
    round_reject_min: Cell<f64>,
}

impl RecordingCapAdmission {
    fn new(memsize: Vec<f64>, cap: f64) -> Self {
        RecordingCapAdmission {
            inner: MemoryCapAdmission { memsize, cap },
            round_reject_min: Cell::new(f64::INFINITY),
        }
    }

    /// The smallest value rejected since the last call (∞ when none),
    /// resetting the recorder for the next round.
    fn take_round_min(&self) -> f64 {
        self.round_reject_min.replace(f64::INFINITY)
    }
}

impl Admission for RecordingCapAdmission {
    #[inline]
    fn admits(&self, q: usize, s: f64) -> bool {
        // Delegate the verdict so it can never drift from the predicate
        // the plain (cold) runs use — the warm/cold bit-identity contract
        // depends on the two computing exactly the same answer.
        if self.inner.admits(q, s) {
            true
        } else {
            let v = self.inner.memsize[q] + s;
            if v < self.round_reject_min.get() {
                self.round_reject_min.set(v);
            }
            false
        }
    }

    #[inline]
    fn commit(&mut self, q: usize, s: f64) {
        self.inner.commit(q, s);
    }

    fn rejection_error(&self, s: f64) -> ModelError {
        self.inner.rejection_error(s)
    }
}

/// Interval between state snapshots of a [`CheckpointedRun`]: bounded
/// below so tiny instances don't snapshot every round, and proportional
/// to `n` so a run never stores more than ~33 snapshots (`O(n)` memory
/// per snapshot).
fn checkpoint_stride(n: usize) -> usize {
    (n / 32).max(32)
}

/// One snapshot of a checkpointed run: the engine state plus the
/// per-processor memory committed so far, taken *before* round `round`.
#[derive(Debug)]
struct Checkpoint {
    round: usize,
    state: EngineState,
    memsize: Vec<f64>,
}

/// A completed memory-capped kernel run that can be **warm-resumed at a
/// larger cap**: the checkpoint/resume backbone of the incremental
/// ∆-sweeps (`sws_core::pareto_sweep`).
///
/// During the run, every admissibility rejection records the value
/// `memsize[q] + s` that was refused; `reject_min[r]` keeps the smallest
/// such value of round `r`. Because [`sws_model::numeric::approx_le`] is
/// monotone in both arguments over non-negative operands, a run at a cap
/// `cap' ≥ cap` executes **identically** up to the first round whose
/// smallest rejected value becomes admissible under `cap'` — accepted
/// probes stay accepted (the cap only grew) and rejected probes stay
/// rejected (their values all exceed the round's recorded minimum). The
/// resume therefore restores the latest snapshot at or before that first
/// diverging round and re-runs only from there; when no round diverges
/// the previous outcome is returned as-is, and when the divergence
/// prefix is shorter than the snapshot stride the restore degenerates to
/// the initial state — a full recompute.
///
/// Snapshots, the rejection thresholds, the priority rank and the CSR
/// instance mirror are shared (`Arc`) between the runs of a chain, so
/// the no-divergence fast path costs `O(n)` (cloning the outcome), not
/// `O(n²/stride)`, and the instance is flattened exactly once per chain.
///
/// The run is **bound to its instance and priority rank at
/// construction** — a resume always replays against exactly the inputs
/// the checkpoints were recorded under, so there is no way to mix the
/// snapshots of one instance with the tasks of another.
#[derive(Debug, Clone)]
pub struct CheckpointedRun<'a> {
    inst: &'a DagInstance,
    csr: Arc<CsrDag>,
    rank: Arc<PriorityRank>,
    cap: f64,
    /// `reject_min[r]`: smallest inadmissible `memsize[q] + s` probed in
    /// round `r` (∞ when round `r` rejected nothing).
    reject_min: Arc<Vec<f64>>,
    /// Snapshots at rounds `0, stride, 2·stride, …` (ascending).
    checkpoints: Vec<Arc<Checkpoint>>,
    outcome: KernelOutcome,
    /// Rounds actually executed to produce this run (`n` for a cold run,
    /// `0` when a resume reused the previous outcome wholesale).
    replayed: usize,
}

impl<'a> CheckpointedRun<'a> {
    /// A from-scratch run with memory cap `cap`, recording rejection
    /// thresholds and periodic snapshots for later warm resumes.
    /// One-shot wrapper over [`CheckpointedRun::cold_in`] (fresh CSR
    /// mirror and workspace).
    pub fn cold(
        inst: &'a DagInstance,
        rank: Arc<PriorityRank>,
        cap: f64,
    ) -> Result<Self, ModelError> {
        let mut ws = KernelWorkspace::with_capacity(inst.n(), inst.m());
        Self::cold_in(inst, Arc::new(inst.csr()), rank, cap, &mut ws)
    }

    /// [`CheckpointedRun::cold`] with an explicit shared CSR mirror and
    /// reusable workspace — the sweep-engine path, where one chain runs
    /// many caps over one instance.
    pub fn cold_in(
        inst: &'a DagInstance,
        csr: Arc<CsrDag>,
        rank: Arc<PriorityRank>,
        cap: f64,
        ws: &mut KernelWorkspace,
    ) -> Result<Self, ModelError> {
        assert_eq!(csr.n(), inst.n(), "CSR mirror must match the instance");
        ws.state.init(&csr, inst.m(), &rank);
        let admission = RecordingCapAdmission::new(vec![0.0; inst.m()], cap);
        Self::drive(inst, csr, rank, cap, admission, Vec::new(), Vec::new(), ws)
    }

    /// Runs the workspace's state to completion, snapshotting every
    /// [`checkpoint_stride`] rounds and extending `reject_min` (which
    /// must already cover the rounds before `state.round`).
    #[allow(clippy::too_many_arguments)]
    fn drive(
        inst: &'a DagInstance,
        csr: Arc<CsrDag>,
        rank: Arc<PriorityRank>,
        cap: f64,
        mut admission: RecordingCapAdmission,
        mut reject_min: Vec<f64>,
        mut checkpoints: Vec<Arc<Checkpoint>>,
        ws: &mut KernelWorkspace,
    ) -> Result<Self, ModelError> {
        let n = csr.n();
        let stride = checkpoint_stride(n);
        let first = ws.state.round;
        debug_assert_eq!(reject_min.len(), first);
        ws.scratch.clear();
        while ws.state.round < n {
            if ws.state.round.is_multiple_of(PROBE_STRIDE) {
                ws.probe.poll()?;
            }
            if ws.state.round.is_multiple_of(stride) {
                checkpoints.push(Arc::new(Checkpoint {
                    round: ws.state.round,
                    state: ws.state.clone(),
                    memsize: admission.inner.memsize.clone(),
                }));
            }
            ws.state
                .step(&csr, &rank, &mut admission, &mut ws.scratch)?;
            reject_min.push(admission.take_round_min());
        }
        let outcome = ws.state.finish(inst.m())?;
        Ok(CheckpointedRun {
            inst,
            csr,
            rank,
            cap,
            reject_min: Arc::new(reject_min),
            checkpoints,
            outcome,
            replayed: n - first,
        })
    }

    /// Warm-starts a run at `new_cap` against the instance and rank this
    /// run was built from, reusing the longest prefix whose admissibility
    /// verdicts are unchanged. One-shot wrapper over
    /// [`CheckpointedRun::resume_in`] (fresh workspace).
    pub fn resume(&self, new_cap: f64) -> Result<Self, ModelError> {
        let mut ws = KernelWorkspace::new();
        self.resume_in(new_cap, &mut ws)
    }

    /// [`CheckpointedRun::resume`] with an explicit reusable workspace.
    /// Requires `new_cap ≥ cap` for the warm path (the verdict
    /// monotonicity the divergence test relies on); a smaller cap falls
    /// back to a cold run. The produced schedule is bit-identical to a
    /// cold run at `new_cap`.
    pub fn resume_in(&self, new_cap: f64, ws: &mut KernelWorkspace) -> Result<Self, ModelError> {
        if new_cap < self.cap {
            return Self::cold_in(
                self.inst,
                Arc::clone(&self.csr),
                Arc::clone(&self.rank),
                new_cap,
                ws,
            );
        }
        let n = self.csr.n();
        // First round in which a previously rejected probe would now be
        // admitted; every earlier round replays verbatim.
        let divergence = self
            .reject_min
            .iter()
            // The ∞ sentinel means "no rejection that round"; it must not
            // hit the tolerant comparison (whose slack is infinite there).
            .position(|&v| v.is_finite() && approx_le(v, new_cap))
            .unwrap_or(n);
        if divergence >= n {
            return Ok(CheckpointedRun {
                inst: self.inst,
                csr: Arc::clone(&self.csr),
                rank: Arc::clone(&self.rank),
                cap: new_cap,
                reject_min: Arc::clone(&self.reject_min),
                checkpoints: self.checkpoints.clone(),
                outcome: self.outcome.clone(),
                replayed: 0,
            });
        }
        let ci = self
            .checkpoints
            .iter()
            .rposition(|c| c.round <= divergence)
            .expect("a non-empty run always snapshots round 0");
        let ck = &self.checkpoints[ci];
        // Restore into the workspace's buffers (clone_from reuses their
        // allocations) instead of cloning a fresh state.
        ws.state.clone_from(&ck.state);
        let admission = RecordingCapAdmission::new(ck.memsize.clone(), new_cap);
        // The replay re-records the snapshot at the restored round, so
        // keep only the strictly earlier ones (still valid: the prefix of
        // the new run is identical).
        let reject_min = self.reject_min[..ck.round].to_vec();
        let checkpoints = self.checkpoints[..ci].to_vec();
        Self::drive(
            self.inst,
            Arc::clone(&self.csr),
            Arc::clone(&self.rank),
            new_cap,
            admission,
            reject_min,
            checkpoints,
            ws,
        )
    }

    /// The shared CSR mirror of the bound instance.
    #[inline]
    pub fn csr(&self) -> &Arc<CsrDag> {
        &self.csr
    }

    /// The memory cap this run enforced.
    #[inline]
    pub fn cap(&self) -> f64 {
        self.cap
    }

    /// The produced schedule and Lemma-4 bookkeeping.
    #[inline]
    pub fn outcome(&self) -> &KernelOutcome {
        &self.outcome
    }

    /// Rounds actually executed to produce this run: `n` for a cold run,
    /// `0` when a resume found no diverging round, and the length of the
    /// replayed suffix otherwise. Exposed for tests and sweep telemetry.
    #[inline]
    pub fn replayed_rounds(&self) -> usize {
        self.replayed
    }
}

/// Admission policy of a replanning session, fixed when the session
/// opens: `None` caps nothing (Graham list scheduling), `Some(cap)`
/// enforces the paper's memory cap through the recording wrapper so the
/// per-round rejection thresholds keep feeding the first-affected-round
/// analysis. A concrete enum (not a generic) so [`ReplanRun`] is a
/// nameable type the engine layer can store.
#[derive(Debug)]
enum ReplanAdmission {
    Open(Unrestricted),
    Capped(RecordingCapAdmission),
}

impl ReplanAdmission {
    /// Fresh admission state for a session with the given fixed cap.
    fn fresh(cap: Option<f64>, m: usize) -> Self {
        match cap {
            None => ReplanAdmission::Open(Unrestricted),
            Some(c) => ReplanAdmission::Capped(RecordingCapAdmission::new(vec![0.0; m], c)),
        }
    }

    /// Admission state restored from a checkpoint's committed-memory
    /// snapshot (empty for open sessions).
    fn restored(cap: Option<f64>, memsize: Vec<f64>) -> Self {
        match cap {
            None => ReplanAdmission::Open(Unrestricted),
            Some(c) => ReplanAdmission::Capped(RecordingCapAdmission::new(memsize, c)),
        }
    }

    /// See [`RecordingCapAdmission::take_round_min`]; open sessions
    /// reject nothing, so every round records ∞.
    fn take_round_min(&self) -> f64 {
        match self {
            ReplanAdmission::Open(_) => f64::INFINITY,
            ReplanAdmission::Capped(a) => a.take_round_min(),
        }
    }

    /// The committed-memory vector to store in a checkpoint (empty for
    /// open sessions, which have no admission state to restore).
    fn memsize_snapshot(&self) -> Vec<f64> {
        match self {
            ReplanAdmission::Open(_) => Vec::new(),
            ReplanAdmission::Capped(a) => a.inner.memsize.clone(),
        }
    }
}

impl Admission for ReplanAdmission {
    #[inline]
    fn admits(&self, q: usize, s: f64) -> bool {
        match self {
            ReplanAdmission::Open(a) => a.admits(q, s),
            ReplanAdmission::Capped(a) => a.admits(q, s),
        }
    }

    #[inline]
    fn commit(&mut self, q: usize, s: f64) {
        match self {
            ReplanAdmission::Open(a) => a.commit(q, s),
            ReplanAdmission::Capped(a) => a.commit(q, s),
        }
    }

    fn rejection_error(&self, s: f64) -> ModelError {
        match self {
            ReplanAdmission::Open(a) => a.rejection_error(s),
            ReplanAdmission::Capped(a) => a.rejection_error(s),
        }
    }
}

/// Direction of a re-estimated storage requirement relative to the
/// value the previous run was computed under. The kernel only sees the
/// *mutated* CSR, so the engine layer (which reads the old value before
/// applying the delta) must tell it the direction — it decides how far
/// back a capped session has to replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostShift {
    /// Numerically unchanged (a `-0.0 ↔ 0.0` rewrite counts: admission
    /// arithmetic cannot distinguish the two zeros).
    Unchanged,
    /// Strictly smaller than before: admission verdicts can only flip
    /// from rejected to admitted.
    Lowered,
    /// Strictly larger than before: admission verdicts can only flip
    /// from admitted to rejected.
    Raised,
}

/// A kernel-level description of one already-applied instance mutation,
/// built by the engine layer from a [`CsrDelta`](sws_dag::CsrDelta)
/// while applying it. Completions are absent by design: they mutate
/// neither the instance nor the schedule, so the engine answers them
/// from the cached run without entering the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplanDelta {
    /// Task `n - 1` of the (mutated) instance is a new arrival.
    Arrival,
    /// An existing task's costs were re-estimated.
    Recost {
        /// The re-estimated task.
        task: u32,
        /// Whether the processing time changed.
        p_changed: bool,
        /// How the storage requirement moved.
        s_shift: CostShift,
    },
}

/// A completed kernel run that can be **warm-resumed across instance
/// deltas** — the generalization of [`CheckpointedRun`] from "same
/// instance, new cap" to arrivals and cost re-estimates against a
/// mutated [`CsrDag`].
///
/// Beyond the cap-resume machinery (periodic [`EngineState`] snapshots,
/// per-round rejection thresholds), a replan run records the per-round
/// **placement frontier**: which task each round placed, at what start
/// key, and what the minimum processor load was when the round began.
/// From those records the first round a delta can affect is computable
/// without re-running anything:
///
/// * A task's costs are invisible to the kernel before its *ready
///   round* `r₀` (the round after its last predecessor placed): a task
///   outside the ready structures is never probed and never a
///   candidate, so every earlier round replays verbatim.
/// * Its processing time is read exactly once, at its placement round:
///   a pure `p` re-estimate replays from there.
/// * In an **open** (uncapped) session an arrival `j` can change a
///   round `t ≥ r₀` only by *winning* it, and — holding the worst
///   possible tie-break rank, `n - 1` — only by a strictly earlier
///   start: its key is at least `max(ρ, min_load[t])` (`ρ` = its
///   ready time), so the first affected round is the first `t` with
///   `strictly_lt(max(ρ, min_load[t]), winner_key[t])`. Losing
///   candidates leave no trace (marking is winner-only), which is what
///   makes the test exact rather than heuristic.
/// * In a **capped** session a changed storage requirement can flip
///   admission verdicts in any round that probed the task, which the
///   records cannot rule out past `r₀` — except for a *lowered*
///   requirement, where verdicts only flip rejected→admitted, so
///   rounds whose recorded rejection threshold is ∞ (nothing rejected)
///   are untouched and the replay starts at the first finite one.
///
/// Degeneration is graceful by construction: when the first affected
/// round is early (a source arrival, a recost of a root task), the
/// restore lands on the round-0 snapshot and the "replay" is a full
/// re-run — never worse than from-scratch by more than the snapshot
/// overhead.
///
/// The run is bound to the priority rank it was recorded under; a
/// replan whose rank disagrees (or re-ranks the arrival anywhere but
/// last) falls back to a cold run against the mutated instance. Either
/// way the produced schedule is **bit-identical** to a from-scratch
/// solve of the mutated instance, which the differential suite
/// enforces.
#[derive(Debug, Clone)]
pub struct ReplanRun {
    m: usize,
    /// Fixed session cap: `None` = unrestricted (Graham), `Some` = the
    /// paper's memory cap. Sessions never change it — machines don't
    /// grow RAM mid-run; cap *sweeps* are [`CheckpointedRun`]'s job.
    cap: Option<f64>,
    rank: Arc<PriorityRank>,
    /// `placed[r]`: the task round `r` placed.
    placed: Vec<u32>,
    /// `place_round[i]`: the round that placed task `i` (inverse of
    /// `placed`).
    place_round: Vec<u32>,
    /// `winner_key[r]`: start key of round `r`'s winner.
    winner_key: Vec<f64>,
    /// `min_load[r]`: minimum processor load when round `r` began.
    min_load: Vec<f64>,
    /// `reject_min[r]`: smallest inadmissible `memsize[q] + s` probed in
    /// round `r` (∞ when nothing was rejected; always ∞ when open).
    reject_min: Vec<f64>,
    /// Snapshots at stride boundaries (ascending rounds).
    checkpoints: Vec<Arc<Checkpoint>>,
    outcome: KernelOutcome,
    /// Rounds actually executed to produce this run.
    replayed: usize,
}

impl ReplanRun {
    /// A from-scratch run over `csr` on `m` processors under the
    /// session's fixed `cap`, recording the replay bookkeeping.
    pub fn cold(
        csr: &CsrDag,
        m: usize,
        rank: Arc<PriorityRank>,
        cap: Option<f64>,
        ws: &mut KernelWorkspace,
    ) -> Result<Self, ModelError> {
        ws.state.init(csr, m, &rank);
        let admission = ReplanAdmission::fresh(cap, m);
        Self::drive(csr, m, rank, cap, admission, Records::default(), ws)
    }

    /// Warm-starts against the **already mutated** `csr`, replaying
    /// only from the first round `delta` can affect (see the type
    /// docs). `rank` is the priority rank of the mutated instance; when
    /// it disagrees with the recorded rank the run falls back to
    /// [`ReplanRun::cold`]. Bit-identical to a cold run either way.
    pub fn replan(
        &self,
        csr: &CsrDag,
        rank: Arc<PriorityRank>,
        delta: ReplanDelta,
        ws: &mut KernelWorkspace,
    ) -> Result<Self, ModelError> {
        let n = csr.n();
        let n_old = self.placed.len();
        match delta {
            ReplanDelta::Arrival => {
                assert_eq!(n, n_old + 1, "arrival replan against an un-mutated CSR");
                let j = n - 1;
                if !self.rank_extends(&rank, n) || self.checkpoints.is_empty() {
                    return Self::cold(csr, self.m, rank, self.cap, ws);
                }
                let (rho, r0) = self.ready_info(csr, j);
                let first = if self.cap.is_some() {
                    // A capped probe of `j` can reject (even terminally)
                    // in any round that scans it; the records cannot
                    // rule that out, so replay its whole ready span.
                    r0
                } else {
                    self.first_beaten_round(r0, n_old, rho).unwrap_or(n_old)
                };
                self.resume_from(csr, rank, first, ws)
            }
            ReplanDelta::Recost {
                task,
                p_changed,
                s_shift,
            } => {
                assert_eq!(n, n_old, "recost replan changed the task count");
                if !self.rank_matches(&rank) || self.checkpoints.is_empty() {
                    return Self::cold(csr, self.m, rank, self.cap, ws);
                }
                let i = task as usize;
                let pr = self.place_round[i] as usize;
                let mut first = if p_changed { pr } else { usize::MAX };
                if self.cap.is_some() {
                    match s_shift {
                        CostShift::Unchanged => {}
                        // Rejected→admitted flips need a rejection to
                        // flip: rounds with an ∞ threshold replay
                        // verbatim.
                        CostShift::Lowered => {
                            let (_, r0) = self.ready_info(csr, i);
                            let t = (r0..pr)
                                .find(|&t| self.reject_min[t].is_finite())
                                .unwrap_or(pr);
                            first = first.min(t);
                        }
                        CostShift::Raised => {
                            let (_, r0) = self.ready_info(csr, i);
                            first = first.min(r0);
                        }
                    }
                }
                if first >= n {
                    // The schedule cannot change (an uncapped storage
                    // re-estimate, or no change at all): reuse it.
                    return Ok(self.reuse());
                }
                self.resume_from(csr, rank, first, ws)
            }
        }
    }

    /// This run with zero replayed rounds — the answer when a delta
    /// provably cannot change the schedule (also used by the replan
    /// engine in `sws-core` when answering completion events from the
    /// cached run).
    pub fn reuse(&self) -> Self {
        let mut run = self.clone();
        run.replayed = 0;
        run
    }

    /// Ready time `ρ` (max predecessor completion) and ready round `r₀`
    /// (first round the task is visible to scans) of `task` under this
    /// run's schedule.
    fn ready_info(&self, csr: &CsrDag, task: usize) -> (f64, usize) {
        let mut rho = 0.0f64;
        let mut r0 = 0usize;
        for &u in csr.preds(task) {
            let u = u as usize;
            rho = rho.max(self.outcome.schedule.start(u) + csr.p(u));
            r0 = r0.max(self.place_round[u] as usize + 1);
        }
        (rho, r0)
    }

    /// First round in `from..until` an open-session candidate with
    /// ready time `rho` (and a worse tie-break rank than every recorded
    /// task) would have *won*: its start key is at least
    /// `max(rho, min_load[t])`, and with the worst rank only a strictly
    /// earlier start beats the recorded winner.
    fn first_beaten_round(&self, from: usize, until: usize, rho: f64) -> Option<usize> {
        (from..until).find(|&t| strictly_lt(rho.max(self.min_load[t]), self.winner_key[t]))
    }

    /// Whether `rank` is exactly the recorded rank (recost replans keep
    /// the task set, so the whole rank must agree).
    fn rank_matches(&self, rank: &Arc<PriorityRank>) -> bool {
        Arc::ptr_eq(rank, &self.rank) || rank[..] == self.rank[..]
    }

    /// Whether `rank` extends the recorded rank by ranking the arrival
    /// last — the one extension under which every recorded slot (and
    /// thus every record) keeps its meaning.
    fn rank_extends(&self, rank: &PriorityRank, n: usize) -> bool {
        rank.len() == n && rank[n - 1] as usize == n - 1 && rank[..n - 1] == self.rank[..]
    }

    /// Restores the latest snapshot at or before `first` and replays to
    /// completion against the mutated `csr`, splicing in every task the
    /// snapshot predates.
    fn resume_from(
        &self,
        csr: &CsrDag,
        rank: Arc<PriorityRank>,
        first: usize,
        ws: &mut KernelWorkspace,
    ) -> Result<Self, ModelError> {
        let ci = self
            .checkpoints
            .iter()
            .rposition(|c| c.round <= first)
            .expect("a non-empty run always snapshots round 0");
        let ck = &self.checkpoints[ci];
        ws.state.clone_from(&ck.state);
        let admission = ReplanAdmission::restored(self.cap, ck.memsize.clone());
        self.adapt_new_tasks(csr, &rank, ck.round, ws);
        // The replay re-records from the restored round; keep only the
        // records strictly before it (identical by construction).
        let records = Records {
            placed: self.placed[..ck.round].to_vec(),
            winner_key: self.winner_key[..ck.round].to_vec(),
            min_load: self.min_load[..ck.round].to_vec(),
            reject_min: self.reject_min[..ck.round].to_vec(),
            checkpoints: self.checkpoints[..ci].to_vec(),
        };
        Self::drive(csr, self.m, rank, self.cap, admission, records, ws)
    }

    /// Splices every task the restored snapshot predates into the
    /// state. A snapshot taken before round `at` can be older than
    /// several arrivals — earlier replans keep the snapshots before
    /// their restore point, and those snapshots keep their pre-arrival
    /// task count — so all of `state.n .. csr.n()` is (re-)spliced, in
    /// index order.
    ///
    /// For each spliced task: predecessors the restored prefix already
    /// placed contribute their completions to its ready time; the rest
    /// will find it on their successor lists during the replay (the CSR
    /// is mutated in place) and decrement it like any other frontier
    /// task. A kept snapshot always predates the splice point of every
    /// task it is missing (`ck.round < place_round[t]`, because each
    /// arrival's replay restored at or before its ready round), so a
    /// missing predecessor is never read for its start time — it is
    /// counted as outstanding instead. A task ready at restore time
    /// enters the ready structures exactly where a from-scratch run's
    /// migration would put it: runnable iff its ready time is
    /// (approximately) at or below the minimum load, pending otherwise.
    ///
    /// Every spliced task owns its own slot (`rank[t] == t`, pinned by
    /// the rank guards of the arrival replans), so the snapshot's slot
    /// tables extend without renumbering.
    fn adapt_new_tasks(
        &self,
        csr: &CsrDag,
        rank: &PriorityRank,
        at: usize,
        ws: &mut KernelWorkspace,
    ) {
        let n = csr.n();
        let state = &mut ws.state;
        if state.preds.len() >= n {
            return;
        }
        state.runnable.grow(n);
        // `rank[t]` is read once at the tail of a mostly-stateful body;
        // an enumerate over `rank` would obscure the splice semantics.
        #[allow(clippy::needless_range_loop)]
        for t in state.preds.len()..n {
            let mut ready = 0.0f64;
            let mut remaining = 0u32;
            for &u in csr.preds(t) {
                let u = u as usize;
                if u < self.place_round.len() && (self.place_round[u] as usize) < at {
                    ready = ready.max(state.start[u] + csr.p(u));
                } else {
                    remaining += 1;
                }
            }
            state.preds.push(PredState { ready, remaining });
            state.proc_of.push(0);
            state.start.push(0.0);
            state.slot_of_task.push(t as u32);
            state.task_of_slot.push(t as u32);
            if remaining == 0 {
                if approx_le(ready, state.procs.min_load()) {
                    state.runnable.insert(t as u32);
                } else {
                    state
                        .pending
                        .push(pend_key(ready, rank_task(rank[t], t as u32)));
                }
            }
        }
    }

    /// Runs the workspace's state to completion, snapshotting every
    /// [`checkpoint_stride`] rounds and extending the per-round records
    /// (which must already cover the rounds before `state.round`).
    fn drive(
        csr: &CsrDag,
        m: usize,
        rank: Arc<PriorityRank>,
        cap: Option<f64>,
        mut admission: ReplanAdmission,
        records: Records,
        ws: &mut KernelWorkspace,
    ) -> Result<Self, ModelError> {
        let Records {
            mut placed,
            mut winner_key,
            mut min_load,
            mut reject_min,
            mut checkpoints,
        } = records;
        let n = csr.n();
        let stride = checkpoint_stride(n);
        let first = ws.state.round;
        debug_assert_eq!(placed.len(), first);
        ws.scratch.clear();
        while ws.state.round < n {
            if ws.state.round.is_multiple_of(PROBE_STRIDE) {
                ws.probe.poll()?;
            }
            if ws.state.round.is_multiple_of(stride) {
                checkpoints.push(Arc::new(Checkpoint {
                    round: ws.state.round,
                    state: ws.state.clone(),
                    memsize: admission.memsize_snapshot(),
                }));
            }
            min_load.push(ws.state.procs.min_load());
            let (task, key) = ws.state.step(csr, &rank, &mut admission, &mut ws.scratch)?;
            placed.push(task);
            winner_key.push(key);
            reject_min.push(admission.take_round_min());
        }
        let outcome = ws.state.finish(m)?;
        let mut place_round = vec![0u32; n];
        for (r, &t) in placed.iter().enumerate() {
            place_round[t as usize] = r as u32;
        }
        Ok(ReplanRun {
            m,
            cap,
            rank,
            placed,
            place_round,
            winner_key,
            min_load,
            reject_min,
            checkpoints,
            outcome,
            replayed: n - first,
        })
    }

    /// The session's fixed memory cap (`None` = unrestricted).
    #[inline]
    pub fn cap(&self) -> Option<f64> {
        self.cap
    }

    /// Number of tasks this run scheduled.
    #[inline]
    pub fn n(&self) -> usize {
        self.placed.len()
    }

    /// The produced schedule and Lemma-4 bookkeeping.
    #[inline]
    pub fn outcome(&self) -> &KernelOutcome {
        &self.outcome
    }

    /// The priority rank the run was recorded under.
    #[inline]
    pub fn rank(&self) -> &Arc<PriorityRank> {
        &self.rank
    }

    /// Rounds actually executed to produce this run: `n` for a cold
    /// run, `0` for a provable no-op, the replayed suffix length
    /// otherwise. The engine layer's incremental-work costing reads
    /// this.
    #[inline]
    pub fn replayed_rounds(&self) -> usize {
        self.replayed
    }
}

/// The per-round record vectors of a [`ReplanRun`], bundled so the
/// drive loop's signature stays readable.
#[derive(Debug, Default)]
struct Records {
    placed: Vec<u32>,
    winner_key: Vec<f64>,
    min_load: Vec<f64>,
    reject_min: Vec<f64>,
    checkpoints: Vec<Arc<Checkpoint>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priority::{hlf_priority, index_priority};
    use sws_dag::prelude::*;
    use sws_model::validate::{validate_timed, validate_timed_preds};

    #[test]
    fn proc_heap_orders_by_load_then_index() {
        let mut h = ProcHeap::new(4);
        assert_eq!(h.min(), 0);
        h.set_load(0, 3.0);
        assert_eq!(h.min(), 1);
        h.set_load(1, 3.0);
        h.set_load(2, 1.0);
        assert_eq!(h.min(), 3);
        h.set_load(3, 2.0);
        assert_eq!(h.min(), 2);
        h.set_load(2, 3.0);
        // All at 3.0 except q3 at 2.0.
        assert_eq!(h.min(), 3);
        h.set_load(3, 3.0);
        // Full tie: lowest index wins.
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn proc_heap_reset_restores_the_initial_ordering() {
        let mut h = ProcHeap::new(3);
        h.set_load(0, 5.0);
        h.set_load(1, 2.0);
        h.reset(3);
        assert_eq!(h.min(), 0);
        assert!(h.loads().iter().all(|&l| l == 0.0));
        // Resizing down and up through reset works too.
        h.reset(1);
        assert_eq!(h.m(), 1);
        h.reset(5);
        assert_eq!(h.m(), 5);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn probe_skips_inadmissible_processors_in_load_order() {
        let mut h = ProcHeap::new(4);
        h.set_load(0, 1.0);
        h.set_load(1, 2.0);
        h.set_load(2, 3.0);
        h.set_load(3, 4.0);
        let (q, skipped) = h.probe(|q| q >= 2).unwrap();
        assert_eq!(q, 2);
        assert_eq!(skipped, vec![0, 1]);
        assert!(h.probe(|_| false).is_none());
        let (q, skipped) = h.probe(|_| true).unwrap();
        assert_eq!(q, 0);
        assert!(skipped.is_empty());
    }

    #[test]
    fn probe_with_appends_to_the_shared_skipped_buffer() {
        let mut h = ProcHeap::new(4);
        h.set_load(0, 1.0);
        h.set_load(1, 2.0);
        h.set_load(2, 3.0);
        h.set_load(3, 4.0);
        let mut frontier = Vec::new();
        let mut skipped = vec![99usize]; // pre-existing content must survive
        let q = h
            .probe_with(|q| q >= 2, &mut frontier, &mut skipped)
            .unwrap();
        assert_eq!(q, 2);
        assert_eq!(skipped, vec![99, 0, 1]);
    }

    #[test]
    fn kernel_schedules_a_chain_sequentially() {
        let inst = DagInstance::new(chain(5), 3).unwrap();
        let out = event_driven_schedule(&inst, &index_priority(5), &mut Unrestricted).unwrap();
        assert!((out.schedule.cmax(inst.tasks()) - 5.0).abs() < 1e-9);
        assert!(out.marked.iter().all(|&b| !b));
    }

    #[test]
    fn kernel_respects_precedence_on_structured_graphs() {
        for g in [
            gaussian_elimination(5),
            fft_butterfly(3),
            diamond_grid(4, 4),
        ] {
            let inst = DagInstance::new(g, 3).unwrap();
            let rank = hlf_priority(inst.graph());
            let out = event_driven_schedule(&inst, &rank, &mut Unrestricted).unwrap();
            validate_timed(
                inst.tasks(),
                inst.m(),
                &out.schedule,
                inst.graph().all_preds(),
                None,
            )
            .unwrap();
            // The CSR predecessor view validates the same schedule
            // without materializing nested lists.
            validate_timed_preds(
                inst.tasks(),
                inst.m(),
                &out.schedule,
                inst.csr().pred_lists(),
                None,
            )
            .unwrap();
        }
    }

    #[test]
    fn csr_entry_point_matches_the_wrapper_bit_for_bit() {
        for g in [gaussian_elimination(6), diamond_grid(5, 5)] {
            let inst = DagInstance::new(g, 3).unwrap();
            let rank = hlf_priority(inst.graph());
            let via_wrapper = event_driven_schedule(&inst, &rank, &mut Unrestricted).unwrap();
            let csr = inst.csr();
            let mut ws = KernelWorkspace::new();
            let via_csr =
                event_driven_schedule_csr(&csr, inst.m(), &rank, &mut Unrestricted, &mut ws)
                    .unwrap();
            assert_eq!(via_wrapper.schedule, via_csr.schedule);
            assert_eq!(via_wrapper.marked, via_csr.marked);
        }
    }

    #[test]
    fn workspace_reuse_across_different_instances_is_stateless() {
        // Run a big instance, then a small one, then the big one again
        // through one workspace: results must equal fresh-workspace runs.
        let big = DagInstance::new(gaussian_elimination(7), 5).unwrap();
        let small = DagInstance::new(chain(3), 2).unwrap();
        let mut ws = KernelWorkspace::new();
        let runs = [&big, &small, &big, &small];
        for inst in runs {
            let rank = index_priority(inst.n());
            let csr = inst.csr();
            let reused =
                event_driven_schedule_csr(&csr, inst.m(), &rank, &mut Unrestricted, &mut ws)
                    .unwrap();
            let fresh = event_driven_schedule(inst, &rank, &mut Unrestricted).unwrap();
            assert_eq!(reused.schedule, fresh.schedule);
            assert_eq!(reused.marked, fresh.marked);
        }
    }

    #[test]
    fn memory_cap_admission_enforces_the_cap() {
        let mut adm = MemoryCapAdmission::new(2, 3.0);
        assert!(adm.admits(0, 3.0));
        adm.commit(0, 2.0);
        assert!(!adm.admits(0, 1.5));
        assert!(adm.admits(1, 1.5));
        match adm.rejection_error(5.0) {
            ModelError::MemoryExceeded { capacity, .. } => assert_eq!(capacity, 3.0),
            other => panic!("unexpected error {other:?}"),
        }
        // Reset restores a pristine predicate (possibly resized).
        adm.reset(3, 7.0);
        assert_eq!(adm.memsize(), &[0.0, 0.0, 0.0]);
        assert_eq!(adm.cap(), 7.0);
        assert!(adm.admits(0, 7.0));
    }

    #[test]
    fn kernel_with_cap_never_exceeds_it() {
        let g = fork_join(2, 6).with_costs(|i| sws_model::task::Task {
            p: 1.0 + (i % 3) as f64,
            s: 1.0 + (i % 4) as f64,
        });
        let inst = DagInstance::new(g, 3).unwrap();
        let total_s: f64 = (0..inst.n()).map(|i| inst.tasks().get(i).s).sum();
        let cap = 2.25 * (total_s / 3.0).max(4.0);
        let mut adm = MemoryCapAdmission::new(3, cap);
        let out = event_driven_schedule(&inst, &index_priority(inst.n()), &mut adm).unwrap();
        let mem = out.schedule.memory(inst.tasks());
        assert!(mem.iter().all(|&x| x <= cap + 1e-9));
    }

    #[test]
    fn empty_instance_yields_empty_schedule() {
        let tasks = sws_model::task::TaskSet::from_ps(&[], &[]).unwrap();
        let inst = DagInstance::new(sws_dag::TaskGraph::new(tasks), 2).unwrap();
        let out = event_driven_schedule(&inst, &index_priority(0), &mut Unrestricted).unwrap();
        assert_eq!(out.schedule.n(), 0);
    }

    fn capped_instance() -> (DagInstance, f64) {
        let g = fork_join(3, 9).with_costs(|i| sws_model::task::Task {
            p: 1.0 + (i % 5) as f64,
            s: 1.0 + (i % 3) as f64,
        });
        let inst = DagInstance::new(g, 4).unwrap();
        let total_s: f64 = (0..inst.n()).map(|i| inst.tasks().get(i).s).sum();
        let lb = (total_s / 4.0).max(3.0);
        (inst, lb)
    }

    #[test]
    fn checkpointed_cold_run_matches_the_plain_kernel() {
        let (inst, lb) = capped_instance();
        let rank = Arc::new(index_priority(inst.n()));
        for &delta in &[2.25, 3.0, 8.0] {
            let cap = delta * lb;
            let run = CheckpointedRun::cold(&inst, Arc::clone(&rank), cap).unwrap();
            let mut adm = MemoryCapAdmission::new(inst.m(), cap);
            let direct = event_driven_schedule(&inst, &rank, &mut adm).unwrap();
            assert_eq!(run.outcome().schedule, direct.schedule, "∆={delta}");
            assert_eq!(run.outcome().marked, direct.marked);
            assert_eq!(run.replayed_rounds(), inst.n());
        }
    }

    #[test]
    fn resume_at_a_larger_cap_is_bit_identical_to_a_cold_run() {
        let (inst, lb) = capped_instance();
        let rank = Arc::new(index_priority(inst.n()));
        let mut chain = CheckpointedRun::cold(&inst, Arc::clone(&rank), 2.25 * lb).unwrap();
        for &delta in &[2.5, 2.75, 3.5, 6.0, 100.0] {
            let cap = delta * lb;
            chain = chain.resume(cap).unwrap();
            let cold = CheckpointedRun::cold(&inst, Arc::clone(&rank), cap).unwrap();
            assert_eq!(
                chain.outcome().schedule,
                cold.outcome().schedule,
                "∆={delta}"
            );
            assert_eq!(chain.outcome().marked, cold.outcome().marked, "∆={delta}");
            assert!(chain.replayed_rounds() <= inst.n());
        }
    }

    #[test]
    fn resume_through_a_shared_workspace_matches_fresh_workspaces() {
        let (inst, lb) = capped_instance();
        let rank = Arc::new(index_priority(inst.n()));
        let csr = Arc::new(inst.csr());
        let mut ws = KernelWorkspace::new();
        let mut chain = CheckpointedRun::cold_in(
            &inst,
            Arc::clone(&csr),
            Arc::clone(&rank),
            2.25 * lb,
            &mut ws,
        )
        .unwrap();
        for &delta in &[2.5, 3.5, 6.0] {
            let cap = delta * lb;
            chain = chain.resume_in(cap, &mut ws).unwrap();
            let cold = CheckpointedRun::cold(&inst, Arc::clone(&rank), cap).unwrap();
            assert_eq!(
                chain.outcome().schedule,
                cold.outcome().schedule,
                "∆={delta}"
            );
            assert_eq!(chain.outcome().marked, cold.outcome().marked, "∆={delta}");
        }
    }

    #[test]
    fn resume_without_divergence_replays_nothing() {
        let (inst, lb) = capped_instance();
        let rank = Arc::new(index_priority(inst.n()));
        // A huge cap never rejects, so any still-larger cap diverges
        // nowhere and the resume reuses the previous outcome wholesale.
        let run = CheckpointedRun::cold(&inst, rank, 1e6 * lb).unwrap();
        let next = run.resume(2e6 * lb).unwrap();
        assert_eq!(next.replayed_rounds(), 0);
        assert_eq!(next.outcome().schedule, run.outcome().schedule);
    }

    #[test]
    fn resume_at_a_smaller_cap_falls_back_to_a_cold_run() {
        let (inst, lb) = capped_instance();
        let rank = Arc::new(index_priority(inst.n()));
        let run = CheckpointedRun::cold(&inst, Arc::clone(&rank), 4.0 * lb).unwrap();
        let back = run.resume(2.25 * lb).unwrap();
        let cold = CheckpointedRun::cold(&inst, rank, 2.25 * lb).unwrap();
        assert_eq!(back.outcome().schedule, cold.outcome().schedule);
        assert_eq!(back.replayed_rounds(), inst.n());
    }

    // --- ReplanRun: warm-starting across instance deltas -------------

    /// Tiny deterministic generator for the replan streams (the heavier
    /// proptest differential suite lives in the workspace-level tests).
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        fn below(&mut self, bound: u64) -> u64 {
            self.next() % bound.max(1)
        }

        fn cost(&mut self) -> f64 {
            1.0 + (self.below(1000) as f64) / 16.0
        }
    }

    fn replan_base() -> sws_dag::CsrDag {
        use sws_workloads::{dagsets, TaskDistribution};
        let inst = dagsets::dag_workload(
            dagsets::DagFamily::LayeredRandom,
            120,
            4,
            TaskDistribution::Uncorrelated,
            &mut sws_workloads::seeded_rng(0x5EED),
        );
        inst.csr()
    }

    /// Asserts a replan result is bit-identical to a cold run of the
    /// mutated instance (start times compared by bit pattern).
    fn assert_matches_cold(warm: &ReplanRun, csr: &CsrDag, m: usize, cap: Option<f64>, what: &str) {
        let mut ws = KernelWorkspace::new();
        let rank = Arc::new(index_priority(csr.n()));
        let cold = ReplanRun::cold(csr, m, rank, cap, &mut ws).unwrap();
        assert_eq!(warm.outcome().schedule, cold.outcome().schedule, "{what}");
        assert_eq!(warm.outcome().marked, cold.outcome().marked, "{what}");
        for i in 0..csr.n() {
            assert_eq!(
                warm.outcome().schedule.start(i).to_bits(),
                cold.outcome().schedule.start(i).to_bits(),
                "{what}: start of task {i}"
            );
        }
    }

    #[test]
    fn replan_arrival_stream_is_bit_identical_to_cold() {
        let mut csr = replan_base();
        let m = 4;
        let mut ws = KernelWorkspace::new();
        let mut run =
            ReplanRun::cold(&csr, m, Arc::new(index_priority(csr.n())), None, &mut ws).unwrap();
        let mut rng = XorShift(0x9E3779B97F4A7C15);
        let mut warm_hits = 0usize;
        for _ in 0..40 {
            let n = csr.n();
            let mut preds = Vec::new();
            for _ in 0..rng.below(4) {
                let u = rng.below(n as u64) as u32;
                if !preds.contains(&u) {
                    preds.push(u);
                }
            }
            csr.apply_delta(&sws_dag::CsrDelta::AddTask {
                preds,
                p: rng.cost(),
                s: rng.cost(),
            })
            .unwrap();
            let rank = Arc::new(index_priority(csr.n()));
            run = run
                .replan(&csr, rank, ReplanDelta::Arrival, &mut ws)
                .unwrap();
            assert_matches_cold(&run, &csr, m, None, "arrival");
            if run.replayed_rounds() < csr.n() {
                warm_hits += 1;
            }
        }
        assert!(
            warm_hits > 0,
            "arrival replans never warm-started over 40 events"
        );
    }

    #[test]
    fn replan_recost_p_replays_from_the_placement_round() {
        let mut csr = replan_base();
        let m = 4;
        let mut ws = KernelWorkspace::new();
        let rank = Arc::new(index_priority(csr.n()));
        let mut run = ReplanRun::cold(&csr, m, Arc::clone(&rank), None, &mut ws).unwrap();
        let mut rng = XorShift(0xA5A5A5A5DEADBEEF);
        for _ in 0..25 {
            let i = rng.below(csr.n() as u64) as u32;
            csr.apply_delta(&sws_dag::CsrDelta::Recost {
                task: i,
                p: Some(rng.cost()),
                s: None,
            })
            .unwrap();
            run = run
                .replan(
                    &csr,
                    Arc::clone(&rank),
                    ReplanDelta::Recost {
                        task: i,
                        p_changed: true,
                        s_shift: CostShift::Unchanged,
                    },
                    &mut ws,
                )
                .unwrap();
            assert_matches_cold(&run, &csr, m, None, "recost-p");
            assert!(
                run.replayed_rounds() <= csr.n(),
                "replay longer than the instance"
            );
        }
    }

    #[test]
    fn uncapped_storage_recost_replays_nothing() {
        let mut csr = replan_base();
        let m = 4;
        let mut ws = KernelWorkspace::new();
        let rank = Arc::new(index_priority(csr.n()));
        let run = ReplanRun::cold(&csr, m, Arc::clone(&rank), None, &mut ws).unwrap();
        csr.apply_delta(&sws_dag::CsrDelta::Recost {
            task: 17,
            p: None,
            s: Some(123.456),
        })
        .unwrap();
        let next = run
            .replan(
                &csr,
                rank,
                ReplanDelta::Recost {
                    task: 17,
                    p_changed: false,
                    s_shift: CostShift::Raised,
                },
                &mut ws,
            )
            .unwrap();
        assert_eq!(next.replayed_rounds(), 0);
        assert_matches_cold(&next, &csr, m, None, "uncapped recost-s");
    }

    #[test]
    fn capped_replan_stream_is_bit_identical_to_cold() {
        let mut csr = replan_base();
        let m = 4;
        let total_s: f64 = (0..csr.n()).map(|i| csr.s(i)).sum();
        let cap = Some(2.25 * (total_s / m as f64));
        let mut ws = KernelWorkspace::new();
        let mut run =
            ReplanRun::cold(&csr, m, Arc::new(index_priority(csr.n())), cap, &mut ws).unwrap();
        let mut rng = XorShift(0xC0FFEE0DDF00D);
        for ev in 0..40 {
            let n = csr.n() as u64;
            let (delta, kdelta) = match rng.below(3) {
                0 => {
                    let mut preds = Vec::new();
                    for _ in 0..rng.below(3) {
                        let u = rng.below(n) as u32;
                        if !preds.contains(&u) {
                            preds.push(u);
                        }
                    }
                    (
                        sws_dag::CsrDelta::AddTask {
                            preds,
                            p: rng.cost(),
                            s: rng.cost(),
                        },
                        ReplanDelta::Arrival,
                    )
                }
                1 => {
                    let i = rng.below(n) as u32;
                    (
                        sws_dag::CsrDelta::Recost {
                            task: i,
                            p: Some(rng.cost()),
                            s: None,
                        },
                        ReplanDelta::Recost {
                            task: i,
                            p_changed: true,
                            s_shift: CostShift::Unchanged,
                        },
                    )
                }
                _ => {
                    let i = rng.below(n) as u32;
                    let old = csr.s(i as usize);
                    let new = old * if rng.below(2) == 0 { 0.75 } else { 1.25 };
                    let shift = if new < old {
                        CostShift::Lowered
                    } else {
                        CostShift::Raised
                    };
                    (
                        sws_dag::CsrDelta::Recost {
                            task: i,
                            p: None,
                            s: Some(new),
                        },
                        ReplanDelta::Recost {
                            task: i,
                            p_changed: false,
                            s_shift: shift,
                        },
                    )
                }
            };
            csr.apply_delta(&delta).unwrap();
            let rank = Arc::new(index_priority(csr.n()));
            match run.replan(&csr, Arc::clone(&rank), kdelta, &mut ws) {
                Ok(next) => {
                    assert_matches_cold(&next, &csr, m, cap, &format!("capped event {ev}"));
                    run = next;
                }
                Err(_) => {
                    // The mutated instance became infeasible at this cap:
                    // the from-scratch oracle must refuse it too.
                    let mut cold_ws = KernelWorkspace::new();
                    assert!(
                        ReplanRun::cold(&csr, m, rank, cap, &mut cold_ws).is_err(),
                        "warm run errored where a cold run succeeds (event {ev})"
                    );
                    return;
                }
            }
        }
    }

    #[test]
    fn replan_with_a_mismatched_rank_falls_back_to_cold() {
        let mut csr = replan_base();
        let m = 4;
        let mut ws = KernelWorkspace::new();
        let run =
            ReplanRun::cold(&csr, m, Arc::new(index_priority(csr.n())), None, &mut ws).unwrap();
        csr.apply_delta(&sws_dag::CsrDelta::Recost {
            task: 3,
            p: Some(50.0),
            s: None,
        })
        .unwrap();
        // A rank the run was not recorded under: reversed indices.
        let n = csr.n();
        let reversed: Arc<PriorityRank> = Arc::new((0..n).map(|i| (n - 1 - i) as u32).collect());
        let next = run
            .replan(
                &csr,
                Arc::clone(&reversed),
                ReplanDelta::Recost {
                    task: 3,
                    p_changed: true,
                    s_shift: CostShift::Unchanged,
                },
                &mut ws,
            )
            .unwrap();
        assert_eq!(next.replayed_rounds(), n, "mismatched rank must run cold");
        let mut cold_ws = KernelWorkspace::new();
        let cold = ReplanRun::cold(&csr, m, reversed, None, &mut cold_ws).unwrap();
        assert_eq!(next.outcome().schedule, cold.outcome().schedule);
    }
}
