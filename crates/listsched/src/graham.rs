//! Graham list scheduling for independent tasks.
//!
//! The algorithm considers the tasks in a given order and assigns each one
//! to the processor with the smallest current total weight. Graham proved
//! it is a `2 − 1/m` approximation of `P ∥ Cmax` for any order; because
//! makespan and cumulative memory are structurally identical objectives on
//! independent tasks (Section 2.1 of the paper), the very same procedure
//! run on the storage requirements `s_i` is a `2 − 1/m` approximation of
//! the optimal `Mmax`.

use sws_model::schedule::Assignment;
use sws_model::Instance;

use crate::kernel::ProcHeap;

/// Assigns tasks (in the given `order`) greedily to the processor with the
/// smallest accumulated weight. `weights[i]` is the weight of task `i`
/// (its processing time for makespan scheduling, its storage requirement
/// for memory scheduling). Tasks not present in `order` keep the default
/// processor 0, but normal callers pass a permutation of `0..n`.
///
/// Runs on the event-driven kernel's indexed processor heap
/// ([`crate::kernel::ProcHeap`]): `O(n·log m)` instead of the naive
/// `O(n·m)` scan (kept as [`crate::naive::list_schedule`]), with the same
/// lowest-index tie-break.
pub fn list_schedule(weights: &[f64], m: usize, order: &[usize]) -> Assignment {
    // Empty heap: `list_schedule_with` sizes it, so the one-shot path
    // initializes the processor state exactly once.
    let mut procs = ProcHeap::empty();
    list_schedule_with(weights, m, order, &mut procs)
}

/// [`list_schedule`] with an explicit reusable processor heap: the heap
/// is reset (not reallocated) per call, so a caller scheduling many
/// task lists — the SBO engine's inner schedules, a batch of instances
/// — reuses one allocation. Bit-identical to [`list_schedule`].
pub fn list_schedule_with(
    weights: &[f64],
    m: usize,
    order: &[usize],
    procs: &mut ProcHeap,
) -> Assignment {
    let mut asg = Assignment::zeroed(weights.len(), m).expect("m >= 1 required");
    procs.reset(m);
    for &i in order {
        let q = procs.min();
        asg.assign(i, q).expect("q < m by construction");
        procs.set_load(q, procs.load(q) + weights[i]);
    }
    asg
}

/// Graham list scheduling of an instance for the makespan objective,
/// processing tasks in index order. Guarantee: `Cmax ≤ (2 − 1/m)·C*max`.
pub fn graham_cmax(inst: &Instance) -> Assignment {
    let weights: Vec<f64> = (0..inst.n()).map(|i| inst.p(i)).collect();
    let order: Vec<usize> = (0..inst.n()).collect();
    list_schedule(&weights, inst.m(), &order)
}

/// Graham list scheduling of an instance for the memory objective,
/// processing tasks in index order. Guarantee: `Mmax ≤ (2 − 1/m)·M*max`.
pub fn graham_mmax(inst: &Instance) -> Assignment {
    let weights: Vec<f64> = (0..inst.n()).map(|i| inst.s(i)).collect();
    let order: Vec<usize> = (0..inst.n()).collect();
    list_schedule(&weights, inst.m(), &order)
}

/// The Graham guarantee `2 − 1/m` for `m` processors.
pub fn graham_guarantee(m: usize) -> f64 {
    2.0 - 1.0 / m as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_model::bounds::{cmax_lower_bound, mmax_lower_bound};
    use sws_model::objectives::{cmax_of_assignment, mmax_of_assignment};
    use sws_model::validate::validate_assignment;

    fn instance() -> Instance {
        Instance::from_ps(
            &[3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0],
            &[2.0, 7.0, 1.0, 8.0, 2.0, 8.0, 1.0, 8.0],
            3,
        )
        .unwrap()
    }

    #[test]
    fn produces_a_complete_valid_assignment() {
        let inst = instance();
        let asg = graham_cmax(&inst);
        assert!(validate_assignment(&inst, &asg, None).is_ok());
    }

    #[test]
    fn respects_the_graham_bound_on_cmax() {
        let inst = instance();
        let asg = graham_cmax(&inst);
        let cmax = cmax_of_assignment(inst.tasks(), &asg);
        let lb = cmax_lower_bound(inst.tasks(), inst.m());
        assert!(cmax <= graham_guarantee(inst.m()) * lb + 1e-9);
    }

    #[test]
    fn respects_the_graham_bound_on_mmax() {
        let inst = instance();
        let asg = graham_mmax(&inst);
        let mmax = mmax_of_assignment(inst.tasks(), &asg);
        let lb = mmax_lower_bound(inst.tasks(), inst.m());
        assert!(mmax <= graham_guarantee(inst.m()) * lb + 1e-9);
    }

    #[test]
    fn least_loaded_processor_receives_the_next_task() {
        // Weights 4, 3, 2 on two machines: 4 -> P0, 3 -> P1, 2 -> P1 (load 3 < 4).
        let asg = list_schedule(&[4.0, 3.0, 2.0], 2, &[0, 1, 2]);
        assert_eq!(asg.proc_of(0), 0);
        assert_eq!(asg.proc_of(1), 1);
        assert_eq!(asg.proc_of(2), 1);
    }

    #[test]
    fn order_changes_the_schedule_but_not_its_feasibility() {
        let inst = instance();
        let weights: Vec<f64> = (0..inst.n()).map(|i| inst.p(i)).collect();
        let forward: Vec<usize> = (0..inst.n()).collect();
        let backward: Vec<usize> = (0..inst.n()).rev().collect();
        let a = list_schedule(&weights, inst.m(), &forward);
        let b = list_schedule(&weights, inst.m(), &backward);
        assert!(validate_assignment(&inst, &a, None).is_ok());
        assert!(validate_assignment(&inst, &b, None).is_ok());
    }

    #[test]
    fn single_processor_schedules_everything_there() {
        let inst = Instance::from_ps(&[1.0, 2.0], &[1.0, 1.0], 1).unwrap();
        let asg = graham_cmax(&inst);
        assert_eq!(asg.proc_of(0), 0);
        assert_eq!(asg.proc_of(1), 0);
        let cmax = cmax_of_assignment(inst.tasks(), &asg);
        assert!((cmax - 3.0).abs() < 1e-12);
    }

    #[test]
    fn classic_graham_anomaly_instance_stays_within_the_bound() {
        // The textbook worst case for list scheduling: m(m-1) unit tasks
        // followed by one task of length m.
        let m = 4usize;
        let mut p = vec![1.0; m * (m - 1)];
        p.push(m as f64);
        let s = vec![1.0; p.len()];
        let inst = Instance::from_ps(&p, &s, m).unwrap();
        let asg = graham_cmax(&inst);
        let cmax = cmax_of_assignment(inst.tasks(), &asg);
        // Optimal is m; list scheduling in this order yields 2m - 1.
        assert!((cmax - (2.0 * m as f64 - 1.0)).abs() < 1e-9);
        assert!(cmax <= graham_guarantee(m) * m as f64 + 1e-9);
    }

    #[test]
    fn empty_instance_yields_empty_assignment() {
        let inst = Instance::from_ps(&[], &[], 2).unwrap();
        let asg = graham_cmax(&inst);
        assert_eq!(asg.n(), 0);
    }

    #[test]
    fn guarantee_value_matches_formula() {
        assert!((graham_guarantee(1) - 1.0).abs() < 1e-12);
        assert!((graham_guarantee(2) - 1.5).abs() < 1e-12);
        assert!((graham_guarantee(4) - 1.75).abs() < 1e-12);
    }
}
