//! MULTIFIT: makespan minimization by binary search over a bin-packing
//! capacity, packing with First Fit Decreasing (FFD).
//!
//! Coffman, Garey and Johnson's MULTIFIT achieves a `13/11`-style bound
//! after enough iterations; it serves here as a stronger polynomial
//! baseline sitting between LPT and the PTAS, and it shares the dual
//! (capacity-search) structure that the PTAS crate generalizes.

use sws_model::schedule::Assignment;
use sws_model::Instance;

/// First Fit Decreasing packing of `weights` into at most `m` bins of the
/// given `capacity`. Returns the assignment if everything fits.
pub fn ffd_pack(weights: &[f64], m: usize, capacity: f64) -> Option<Assignment> {
    let order = crate::lpt::lpt_order(weights);
    let mut remaining = vec![capacity; m];
    let mut asg = Assignment::zeroed(weights.len(), m).ok()?;
    for &i in &order {
        let mut placed = false;
        for (q, room) in remaining.iter_mut().enumerate() {
            if weights[i] <= *room + 1e-12 {
                *room -= weights[i];
                asg.assign(i, q).expect("q < m");
                placed = true;
                break;
            }
        }
        if !placed {
            return None;
        }
    }
    Some(asg)
}

/// MULTIFIT scheduling of `weights` on `m` machines with the given number
/// of binary-search `iterations` (7 is the classical choice and gives a
/// capacity within ~1% of the best FFD-feasible capacity).
pub fn multifit(weights: &[f64], m: usize, iterations: usize) -> Assignment {
    assert!(m > 0, "MULTIFIT needs at least one machine");
    let total: f64 = weights.iter().sum();
    let max_w = weights.iter().copied().fold(0.0, f64::max);
    // Classical initial bracket.
    let mut lo = (total / m as f64).max(max_w);
    let mut hi = (2.0 * total / m as f64).max(max_w);
    let mut best = None;
    for _ in 0..iterations {
        let cap = 0.5 * (lo + hi);
        match ffd_pack(weights, m, cap) {
            Some(asg) => {
                best = Some(asg);
                hi = cap;
            }
            None => lo = cap,
        }
    }
    // `hi` is always FFD-feasible at the end of the loop if any success
    // occurred; otherwise fall back to packing at the upper bracket, which
    // is guaranteed to succeed for FFD (capacity 2·total/m ≥ FFD makespan
    // bound), and as a last resort to plain LPT.
    best.or_else(|| ffd_pack(weights, m, hi))
        .unwrap_or_else(|| {
            let order = crate::lpt::lpt_order(weights);
            crate::graham::list_schedule(weights, m, &order)
        })
}

/// MULTIFIT on the makespan objective of an instance.
pub fn multifit_cmax(inst: &Instance) -> Assignment {
    let weights: Vec<f64> = (0..inst.n()).map(|i| inst.p(i)).collect();
    multifit(&weights, inst.m(), 10)
}

/// MULTIFIT on the memory objective of an instance.
pub fn multifit_mmax(inst: &Instance) -> Assignment {
    let weights: Vec<f64> = (0..inst.n()).map(|i| inst.s(i)).collect();
    multifit(&weights, inst.m(), 10)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_model::bounds::cmax_lower_bound;
    use sws_model::objectives::cmax_of_assignment;
    use sws_model::validate::validate_assignment;

    #[test]
    fn ffd_respects_the_capacity() {
        let weights = [4.0, 3.0, 3.0, 2.0, 2.0];
        let asg = ffd_pack(&weights, 2, 7.0).unwrap();
        let mut loads = [0.0; 2];
        for (i, &w) in weights.iter().enumerate() {
            loads[asg.proc_of(i)] += w;
        }
        assert!(loads.iter().all(|&l| l <= 7.0 + 1e-9));
    }

    #[test]
    fn ffd_fails_when_capacity_is_too_small() {
        assert!(ffd_pack(&[4.0, 4.0, 4.0], 2, 5.0).is_none());
        assert!(ffd_pack(&[4.0, 4.0, 4.0], 2, 8.0).is_some());
    }

    #[test]
    fn multifit_is_feasible_and_at_least_as_good_as_graham_bound() {
        let inst = Instance::from_ps(
            &[7.0, 9.0, 2.0, 4.0, 6.0, 1.0, 8.0, 5.0, 3.0, 4.0, 2.0],
            &[1.0; 11],
            4,
        )
        .unwrap();
        let asg = multifit_cmax(&inst);
        assert!(validate_assignment(&inst, &asg, None).is_ok());
        let cmax = cmax_of_assignment(inst.tasks(), &asg);
        let lb = cmax_lower_bound(inst.tasks(), inst.m());
        assert!(
            cmax <= 1.25 * lb + 1e-9,
            "MULTIFIT should be close to optimal here"
        );
    }

    #[test]
    fn multifit_finds_the_perfect_split() {
        // Two machines, weights that split perfectly into 10 + 10.
        let inst = Instance::from_ps(&[6.0, 4.0, 5.0, 5.0], &[1.0; 4], 2).unwrap();
        let asg = multifit_cmax(&inst);
        let cmax = cmax_of_assignment(inst.tasks(), &asg);
        assert!((cmax - 10.0).abs() < 1e-9);
    }

    #[test]
    fn single_machine_is_trivial() {
        let inst = Instance::from_ps(&[1.0, 2.0, 3.0], &[1.0; 3], 1).unwrap();
        let asg = multifit_cmax(&inst);
        let cmax = cmax_of_assignment(inst.tasks(), &asg);
        assert!((cmax - 6.0).abs() < 1e-9);
    }

    #[test]
    fn memory_variant_packs_by_storage() {
        let inst = Instance::from_ps(&[1.0; 4], &[6.0, 4.0, 5.0, 5.0], 2).unwrap();
        let asg = multifit_mmax(&inst);
        let mmax = sws_model::objectives::mmax_of_assignment(inst.tasks(), &asg);
        assert!((mmax - 10.0).abs() < 1e-9);
    }
}
