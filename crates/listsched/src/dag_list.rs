//! Graham list scheduling under precedence constraints.
//!
//! This is the unconstrained ancestor of the paper's RLS∆ (Algorithm 2):
//! repeatedly pick, among the ready tasks, the one that can start the
//! soonest (ties broken by a priority rank) and place it on the least
//! loaded processor. Graham's classical analysis gives a `2 − 1/m`
//! guarantee on the makespan against `max(Σp_i/m, critical path)`.
//!
//! The implementation runs on the shared event-driven kernel
//! ([`crate::kernel`]), which mirrors the structure of Algorithm 2 in the
//! paper (without the memory restriction) so that RLS∆ in `sws-core`
//! differs from it only by the `memsize[j] + s_i ≤ ∆·LB` admissibility
//! predicate. The original `O(n²·m)` scan survives as the differential
//! oracle [`crate::naive::dag_list_schedule`].

use sws_dag::{CsrDag, DagInstance};
use sws_model::schedule::TimedSchedule;

use crate::kernel::{
    event_driven_schedule, event_driven_schedule_csr, KernelWorkspace, Unrestricted,
};
use crate::priority::PriorityRank;

/// List scheduling with precedence constraints.
///
/// `priority` gives the tie-break rank of every task (lower = preferred);
/// pass [`crate::priority::index_priority`] for the paper's "arbitrary"
/// order or [`crate::priority::hlf_priority`] for critical-path first.
pub fn dag_list_schedule(inst: &DagInstance, priority: &PriorityRank) -> TimedSchedule {
    event_driven_schedule(inst, priority, &mut Unrestricted)
        .expect("unrestricted admission never rejects, the schedule is well formed")
        .schedule
}

/// [`dag_list_schedule`] over a prebuilt CSR instance mirror with a
/// reusable workspace — the allocation-free serving path (the CSR form
/// is built once per instance, the workspace once per worker).
/// Bit-identical to [`dag_list_schedule`].
pub fn dag_list_schedule_csr(
    csr: &CsrDag,
    m: usize,
    priority: &PriorityRank,
    ws: &mut KernelWorkspace,
) -> TimedSchedule {
    event_driven_schedule_csr(csr, m, priority, &mut Unrestricted, ws)
        .expect("unrestricted admission never rejects, the schedule is well formed")
        .schedule
}

/// The Graham guarantee for precedence-constrained list scheduling,
/// measured against `Σp_i/m + critical path ≤ 2·C*max`: the makespan is at
/// most `(2 − 1/m)·C*max`.
pub fn dag_list_guarantee(m: usize) -> f64 {
    2.0 - 1.0 / m as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priority::{hlf_priority, index_priority};
    use sws_dag::prelude::*;
    use sws_model::bounds::cmax_lower_bound_prec;
    use sws_model::validate::validate_timed;

    fn check(inst: &DagInstance, sched: &TimedSchedule) {
        let preds = inst.graph().all_preds();
        validate_timed(inst.tasks(), inst.m(), sched, preds, None)
            .expect("list schedule must be feasible");
    }

    #[test]
    fn chain_is_executed_sequentially() {
        let inst = DagInstance::new(chain(5), 3).unwrap();
        let sched = dag_list_schedule(&inst, &index_priority(5));
        check(&inst, &sched);
        assert!((sched.cmax(inst.tasks()) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn independent_tasks_reduce_to_graham() {
        let inst = DagInstance::new(independent(8), 4).unwrap();
        let sched = dag_list_schedule(&inst, &index_priority(8));
        check(&inst, &sched);
        assert!((sched.cmax(inst.tasks()) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fork_join_uses_the_available_parallelism() {
        // 1 fork + 4 parallel + 1 join on 2 processors: 1 + 2 + 1 = 4.
        let inst = DagInstance::new(fork_join(1, 4), 2).unwrap();
        let sched = dag_list_schedule(&inst, &index_priority(inst.n()));
        check(&inst, &sched);
        assert!((sched.cmax(inst.tasks()) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn respects_graham_bound_on_every_generator_family() {
        let graphs = vec![
            gaussian_elimination(5),
            lu_factorization(3),
            fft_butterfly(3),
            diamond_grid(4, 4),
            out_tree(4, 2),
        ];
        for g in graphs {
            for &m in &[2usize, 4, 8] {
                let inst = DagInstance::new(g.clone(), m).unwrap();
                let priority = hlf_priority(inst.graph());
                let sched = dag_list_schedule(&inst, &priority);
                check(&inst, &sched);
                let cp = inst.graph().critical_path_length();
                let lb = cmax_lower_bound_prec(inst.tasks(), m, cp);
                let cmax = sched.cmax(inst.tasks());
                assert!(
                    cmax <= dag_list_guarantee(m) * lb * (1.0 + 1e-9) + 1e-9,
                    "Graham bound violated: cmax = {cmax}, lb = {lb}, m = {m}"
                );
            }
        }
    }

    #[test]
    fn hlf_priority_never_worse_than_graham_bound_on_diamond() {
        let inst = DagInstance::new(diamond_grid(6, 6), 3).unwrap();
        let sched = dag_list_schedule(&inst, &hlf_priority(inst.graph()));
        check(&inst, &sched);
        let cp = inst.graph().critical_path_length();
        let lb = cmax_lower_bound_prec(inst.tasks(), 3, cp);
        assert!(sched.cmax(inst.tasks()) <= dag_list_guarantee(3) * lb + 1e-9);
    }

    #[test]
    fn no_processor_is_idle_while_work_is_ready() {
        // Structural check of the Graham property on a small instance:
        // with independent tasks and m = 2, both processors must be busy
        // until the last task starts.
        let inst = DagInstance::new(independent(6), 2).unwrap();
        let sched = dag_list_schedule(&inst, &index_priority(6));
        let busy: f64 = sched.busy(inst.tasks()).iter().sum();
        assert!((busy - inst.tasks().total_work()).abs() < 1e-9);
        assert!((sched.cmax(inst.tasks()) - 3.0).abs() < 1e-9);
    }

    /// Regression for the duplicated-argmin wart of the old scan (the
    /// selected task must land on the least loaded processor at the time
    /// of its placement): replay the schedule and check every placement
    /// against the load vector.
    #[test]
    fn every_placement_targets_the_least_loaded_processor() {
        let inst = DagInstance::new(diamond_grid(5, 5), 3).unwrap();
        let sched = dag_list_schedule(&inst, &hlf_priority(inst.graph()));
        // Replay placements in start-time order (ties by task index, the
        // kernel's scheduling order on this instance).
        let mut order: Vec<usize> = (0..inst.n()).collect();
        order.sort_by(|&a, &b| {
            sws_model::numeric::total_cmp(sched.start(a), sched.start(b)).then(a.cmp(&b))
        });
        let mut load = vec![0.0f64; inst.m()];
        for &i in &order {
            let q = sched.proc_of(i);
            let min = load.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(
                load[q] <= min + 1e-9,
                "task {i} placed on processor {q} with load {} > min load {min}",
                load[q]
            );
            load[q] = sched.start(i) + inst.tasks().get(i).p;
        }
    }

    /// The kernel path must agree schedule-for-schedule with the naive
    /// oracle (broader coverage lives in tests/properties.rs).
    #[test]
    fn kernel_matches_the_naive_oracle_on_structured_graphs() {
        for g in [
            gaussian_elimination(6),
            fft_butterfly(4),
            diamond_grid(4, 6),
        ] {
            for &m in &[2usize, 3, 5] {
                let inst = DagInstance::new(g.clone(), m).unwrap();
                for rank in [index_priority(inst.n()), hlf_priority(inst.graph())] {
                    let kernel = dag_list_schedule(&inst, &rank);
                    let naive = crate::naive::dag_list_schedule(&inst, &rank);
                    assert_eq!(kernel, naive, "kernel/naive mismatch at m={m}");
                }
            }
        }
    }
}
