//! Graham list scheduling under precedence constraints.
//!
//! This is the unconstrained ancestor of the paper's RLS∆ (Algorithm 2):
//! repeatedly pick, among the ready tasks, the one that can start the
//! soonest (ties broken by a priority rank) and place it on the least
//! loaded processor. Graham's classical analysis gives a `2 − 1/m`
//! guarantee on the makespan against `max(Σp_i/m, critical path)`.
//!
//! The implementation deliberately mirrors the structure of Algorithm 2 in
//! the paper (without the memory restriction) so that RLS∆ in `sws-core`
//! differs from it only by the `memsize[j] + s_i ≤ ∆·LB` filter.

use sws_dag::DagInstance;
use sws_model::schedule::TimedSchedule;

use crate::priority::PriorityRank;

/// List scheduling with precedence constraints.
///
/// `priority` gives the tie-break rank of every task (lower = preferred);
/// pass [`crate::priority::index_priority`] for the paper's "arbitrary"
/// order or [`crate::priority::hlf_priority`] for critical-path first.
pub fn dag_list_schedule(inst: &DagInstance, priority: &PriorityRank) -> TimedSchedule {
    let graph = inst.graph();
    let n = graph.n();
    let m = inst.m();
    assert_eq!(priority.len(), n, "priority rank must cover every task");

    let mut load = vec![0.0f64; m];
    let mut completion = vec![0.0f64; n];
    let mut scheduled = vec![false; n];
    let mut remaining_preds: Vec<usize> = (0..n).map(|i| graph.in_degree(i)).collect();
    let mut proc_of = vec![0usize; n];
    let mut start = vec![0.0f64; n];

    for _round in 0..n {
        // Among ready (all predecessors completed, not yet scheduled)
        // tasks, compute the earliest possible start on the least loaded
        // processor and keep the task minimizing it.
        let mut best: Option<(f64, usize, usize)> = None; // (start, rank, task)
        for i in 0..n {
            if scheduled[i] || remaining_preds[i] != 0 {
                continue;
            }
            let q = argmin(&load);
            let pred_ready = graph
                .preds(i)
                .iter()
                .map(|&p| completion[p])
                .fold(0.0f64, f64::max);
            let ready = pred_ready.max(load[q]);
            let candidate = (ready, priority[i], i);
            let better = match best {
                None => true,
                Some(cur) => {
                    candidate.0 < cur.0 - 1e-15
                        || (approx(candidate.0, cur.0) && candidate.1 < cur.1)
                }
            };
            if better {
                best = Some(candidate);
            }
        }
        let (ready, _rank, i) = best.expect("an acyclic graph always has a ready task");
        let q = argmin(&load);
        proc_of[i] = q;
        start[i] = ready;
        completion[i] = ready + graph.task(i).p;
        load[q] = completion[i];
        scheduled[i] = true;
        for &v in graph.succs(i) {
            remaining_preds[v] -= 1;
        }
    }

    TimedSchedule::new(proc_of, start, m).expect("constructed schedule is well formed")
}

fn argmin(values: &[f64]) -> usize {
    let mut best = 0usize;
    for (i, &v) in values.iter().enumerate().skip(1) {
        if v < values[best] {
            best = i;
        }
    }
    best
}

fn approx(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0)
}

/// The Graham guarantee for precedence-constrained list scheduling,
/// measured against `Σp_i/m + critical path ≤ 2·C*max`: the makespan is at
/// most `(2 − 1/m)·C*max`.
pub fn dag_list_guarantee(m: usize) -> f64 {
    2.0 - 1.0 / m as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priority::{hlf_priority, index_priority};
    use sws_dag::prelude::*;
    use sws_model::bounds::cmax_lower_bound_prec;
    use sws_model::validate::validate_timed;

    fn check(inst: &DagInstance, sched: &TimedSchedule) {
        let preds = inst.graph().all_preds();
        validate_timed(inst.tasks(), inst.m(), sched, preds, None)
            .expect("list schedule must be feasible");
    }

    #[test]
    fn chain_is_executed_sequentially() {
        let inst = DagInstance::new(chain(5), 3).unwrap();
        let sched = dag_list_schedule(&inst, &index_priority(5));
        check(&inst, &sched);
        assert!((sched.cmax(inst.tasks()) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn independent_tasks_reduce_to_graham() {
        let inst = DagInstance::new(independent(8), 4).unwrap();
        let sched = dag_list_schedule(&inst, &index_priority(8));
        check(&inst, &sched);
        assert!((sched.cmax(inst.tasks()) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fork_join_uses_the_available_parallelism() {
        // 1 fork + 4 parallel + 1 join on 2 processors: 1 + 2 + 1 = 4.
        let inst = DagInstance::new(fork_join(1, 4), 2).unwrap();
        let sched = dag_list_schedule(&inst, &index_priority(inst.n()));
        check(&inst, &sched);
        assert!((sched.cmax(inst.tasks()) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn respects_graham_bound_on_every_generator_family() {
        let graphs = vec![
            gaussian_elimination(5),
            lu_factorization(3),
            fft_butterfly(3),
            diamond_grid(4, 4),
            out_tree(4, 2),
        ];
        for g in graphs {
            for &m in &[2usize, 4, 8] {
                let inst = DagInstance::new(g.clone(), m).unwrap();
                let priority = hlf_priority(inst.graph());
                let sched = dag_list_schedule(&inst, &priority);
                check(&inst, &sched);
                let cp = inst.graph().critical_path_length();
                let lb = cmax_lower_bound_prec(inst.tasks(), m, cp);
                let cmax = sched.cmax(inst.tasks());
                assert!(
                    cmax <= dag_list_guarantee(m) * lb * (1.0 + 1e-9) + 1e-9,
                    "Graham bound violated: cmax = {cmax}, lb = {lb}, m = {m}"
                );
            }
        }
    }

    #[test]
    fn hlf_priority_never_worse_than_graham_bound_on_diamond() {
        let inst = DagInstance::new(diamond_grid(6, 6), 3).unwrap();
        let sched = dag_list_schedule(&inst, &hlf_priority(inst.graph()));
        check(&inst, &sched);
        let cp = inst.graph().critical_path_length();
        let lb = cmax_lower_bound_prec(inst.tasks(), 3, cp);
        assert!(sched.cmax(inst.tasks()) <= dag_list_guarantee(3) * lb + 1e-9);
    }

    #[test]
    fn no_processor_is_idle_while_work_is_ready() {
        // Structural check of the Graham property on a small instance:
        // with independent tasks and m = 2, both processors must be busy
        // until the last task starts.
        let inst = DagInstance::new(independent(6), 2).unwrap();
        let sched = dag_list_schedule(&inst, &index_priority(6));
        let busy: f64 = sched.busy(inst.tasks()).iter().sum();
        assert!((busy - inst.tasks().total_work()).abs() < 1e-9);
        assert!((sched.cmax(inst.tasks()) - 3.0).abs() < 1e-9);
    }
}
