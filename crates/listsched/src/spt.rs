//! Shortest Processing Time first (SPT).
//!
//! List scheduling in SPT order is optimal for `P ∥ ΣC_i` on any number of
//! identical processors — the fact Section 5.2 of the paper builds on
//! ("Recall that a List Scheduling using SPT is optimal on ΣCi").

use sws_model::schedule::{Assignment, TimedSchedule};
use sws_model::Instance;

use crate::graham::list_schedule;

/// Indices of the tasks sorted by increasing weight (ties by index).
pub fn spt_order(weights: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| sws_model::numeric::total_cmp(weights[a], weights[b]).then(a.cmp(&b)));
    order
}

/// SPT assignment (mapping only): Graham list scheduling with tasks in
/// increasing processing-time order.
pub fn spt_assignment(inst: &Instance) -> Assignment {
    let weights: Vec<f64> = (0..inst.n()).map(|i| inst.p(i)).collect();
    let order = spt_order(&weights);
    list_schedule(&weights, inst.m(), &order)
}

/// SPT timed schedule: tasks are executed on their processor in SPT order,
/// which makes the schedule optimal for `ΣC_i`.
pub fn spt_schedule(inst: &Instance) -> TimedSchedule {
    let weights: Vec<f64> = (0..inst.n()).map(|i| inst.p(i)).collect();
    let order = spt_order(&weights);
    let asg = list_schedule(&weights, inst.m(), &order);
    asg.into_timed_ordered(inst.tasks(), &order)
}

/// The optimal `ΣC_i` value for the instance (the value of the SPT
/// schedule).
pub fn optimal_sum_completion(inst: &Instance) -> f64 {
    spt_schedule(inst).sum_completion(inst.tasks())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_model::bounds::sum_ci_lower_bound;
    use sws_model::validate::validate_timed;

    #[test]
    fn order_is_increasing() {
        let order = spt_order(&[3.0, 1.0, 2.0, 1.0]);
        assert_eq!(order, vec![1, 3, 2, 0]);
    }

    #[test]
    fn single_machine_spt_is_the_classic_optimum() {
        let inst = Instance::from_ps(&[3.0, 1.0, 2.0], &[1.0; 3], 1).unwrap();
        let sched = spt_schedule(&inst);
        // Completions: task1 at 1, task2 at 3, task0 at 6 -> 10.
        assert!((sched.sum_completion(inst.tasks()) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn spt_value_matches_the_model_lower_bound_formula() {
        let inst = Instance::from_ps(&[4.0, 2.0, 7.0, 1.0, 3.0, 5.0, 6.0], &[1.0; 7], 3).unwrap();
        let spt_value = optimal_sum_completion(&inst);
        let bound = sum_ci_lower_bound(inst.tasks(), inst.m());
        assert!((spt_value - bound).abs() < 1e-9);
    }

    #[test]
    fn schedules_are_feasible_timed_schedules() {
        let inst = Instance::from_ps(&[4.0, 2.0, 7.0, 1.0, 3.0], &[1.0; 5], 2).unwrap();
        let sched = spt_schedule(&inst);
        let preds: Vec<Vec<usize>> = vec![Vec::new(); inst.n()];
        assert!(validate_timed(inst.tasks(), inst.m(), &sched, &preds, None).is_ok());
    }

    #[test]
    fn more_processors_never_hurt_sum_completion() {
        let inst2 = Instance::from_ps(&[4.0, 2.0, 7.0, 1.0, 3.0], &[1.0; 5], 2).unwrap();
        let inst3 = inst2.with_processors(3).unwrap();
        assert!(optimal_sum_completion(&inst3) <= optimal_sum_completion(&inst2) + 1e-12);
    }

    #[test]
    fn empty_instance_has_zero_sum_completion() {
        let inst = Instance::from_ps(&[], &[], 2).unwrap();
        assert_eq!(optimal_sum_completion(&inst), 0.0);
    }
}
