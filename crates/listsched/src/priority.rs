//! Priority orders for list scheduling under precedence constraints.
//!
//! The paper's RLS∆ uses "an arbitrary total ordering of tasks to break
//! ties"; this module provides the classical choices so the evaluation can
//! compare them (and so the Section 5.2 tri-objective variant can plug in
//! SPT).

use sws_dag::TaskGraph;

/// A total order over tasks, expressed as a rank per task: the task with
/// the *smallest* rank wins ties.
pub type PriorityRank = Vec<usize>;

/// Converts an explicit order (first = highest priority) into ranks.
pub fn rank_of_order(order: &[usize]) -> PriorityRank {
    let mut rank = vec![usize::MAX; order.len()];
    for (r, &task) in order.iter().enumerate() {
        rank[task] = r;
    }
    rank
}

/// Index order: task 0 first. This is the "arbitrary" order of the paper.
pub fn index_priority(n: usize) -> PriorityRank {
    (0..n).collect()
}

/// Highest Level First (critical-path priority): tasks with the largest
/// bottom level first — the classical DAG list-scheduling heuristic.
pub fn hlf_priority(graph: &TaskGraph) -> PriorityRank {
    let bottom = sws_dag::levels::bottom_levels(graph);
    let mut order: Vec<usize> = (0..graph.n()).collect();
    order.sort_by(|&a, &b| sws_model::numeric::total_cmp(bottom[b], bottom[a]).then(a.cmp(&b)));
    rank_of_order(&order)
}

/// Shortest Processing Time priority (used by the tri-objective extension
/// on independent tasks, Corollary 4).
pub fn spt_priority(graph: &TaskGraph) -> PriorityRank {
    let mut order: Vec<usize> = (0..graph.n()).collect();
    order.sort_by(|&a, &b| {
        sws_model::numeric::total_cmp(graph.task(a).p, graph.task(b).p).then(a.cmp(&b))
    });
    rank_of_order(&order)
}

/// Longest Processing Time priority.
pub fn lpt_priority(graph: &TaskGraph) -> PriorityRank {
    let mut order: Vec<usize> = (0..graph.n()).collect();
    order.sort_by(|&a, &b| {
        sws_model::numeric::total_cmp(graph.task(b).p, graph.task(a).p).then(a.cmp(&b))
    });
    rank_of_order(&order)
}

/// Largest storage requirement first — a memory-aware tie break that tends
/// to spread big-memory tasks before processors fill up.
pub fn largest_storage_priority(graph: &TaskGraph) -> PriorityRank {
    let mut order: Vec<usize> = (0..graph.n()).collect();
    order.sort_by(|&a, &b| {
        sws_model::numeric::total_cmp(graph.task(b).s, graph.task(a).s).then(a.cmp(&b))
    });
    rank_of_order(&order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_model::task::{Task, TaskSet};

    fn weighted_chain() -> TaskGraph {
        let tasks = TaskSet::new(vec![
            Task::new_unchecked(1.0, 5.0),
            Task::new_unchecked(3.0, 1.0),
            Task::new_unchecked(2.0, 3.0),
        ])
        .unwrap();
        TaskGraph::from_edges(tasks, &[(0, 1), (1, 2)]).unwrap()
    }

    #[test]
    fn rank_of_order_inverts_the_permutation() {
        let rank = rank_of_order(&[2, 0, 1]);
        assert_eq!(rank, vec![1, 2, 0]);
    }

    #[test]
    fn index_priority_is_identity() {
        assert_eq!(index_priority(4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn hlf_priority_follows_bottom_levels() {
        let g = weighted_chain();
        // Bottom levels: task0 = 6, task1 = 5, task2 = 2 -> order 0, 1, 2.
        let rank = hlf_priority(&g);
        assert_eq!(rank, vec![0, 1, 2]);
    }

    #[test]
    fn spt_and_lpt_priorities_are_reversed() {
        let g = weighted_chain();
        let spt = spt_priority(&g);
        let lpt = lpt_priority(&g);
        // p = [1, 3, 2]: SPT order 0, 2, 1 -> ranks [0, 2, 1];
        // LPT order 1, 2, 0 -> ranks [2, 0, 1].
        assert_eq!(spt, vec![0, 2, 1]);
        assert_eq!(lpt, vec![2, 0, 1]);
    }

    #[test]
    fn storage_priority_prefers_heavy_tasks() {
        let g = weighted_chain();
        // s = [5, 1, 3] -> order 0, 2, 1 -> ranks [0, 2, 1].
        assert_eq!(largest_storage_priority(&g), vec![0, 2, 1]);
    }
}
