//! Priority orders for list scheduling under precedence constraints.
//!
//! The paper's RLS∆ uses "an arbitrary total ordering of tasks to break
//! ties"; this module provides the classical choices so the evaluation can
//! compare them (and so the Section 5.2 tri-objective variant can plug in
//! SPT).
//!
//! Ranks are `u32` (the CSR layer guarantees `n < u32::MAX`), which
//! halves the rank-array cache traffic in the kernel's hot loop. The
//! cost-keyed orders (SPT/LPT/largest-storage) have `*_csr` variants
//! that sort by the instance's quantized `u32` cost ranks
//! ([`sws_dag::CsrDag::p_ranks`]) instead of `f64` comparators — the
//! rank table is order-preserving, so the resulting permutation is
//! identical, just cheaper to compute (integer sort keys packed with the
//! tie-break index into one `u64`).

use sws_dag::{CsrDag, TaskGraph};

/// A total order over tasks, expressed as a rank per task: the task with
/// the *smallest* rank wins ties.
pub type PriorityRank = Vec<u32>;

/// Converts an explicit order (first = highest priority) into ranks.
/// Tasks missing from the order get the sentinel `u32::MAX` (lowest
/// priority).
pub fn rank_of_order(order: &[usize]) -> PriorityRank {
    assert!(order.len() < u32::MAX as usize, "ranks fit in u32");
    let mut rank = vec![u32::MAX; order.len()];
    for (r, &task) in order.iter().enumerate() {
        rank[task] = r as u32;
    }
    rank
}

/// Index order: task 0 first. This is the "arbitrary" order of the paper.
pub fn index_priority(n: usize) -> PriorityRank {
    assert!(n < u32::MAX as usize, "ranks fit in u32");
    (0..n as u32).collect()
}

/// Highest Level First (critical-path priority): tasks with the largest
/// bottom level first — the classical DAG list-scheduling heuristic.
/// (Bottom levels are derived sums, not tabled instance costs, so there
/// is no quantized variant of this order.)
pub fn hlf_priority(graph: &TaskGraph) -> PriorityRank {
    let bottom = sws_dag::levels::bottom_levels(graph);
    let mut order: Vec<usize> = (0..graph.n()).collect();
    order.sort_by(|&a, &b| sws_model::numeric::total_cmp(bottom[b], bottom[a]).then(a.cmp(&b)));
    rank_of_order(&order)
}

/// Shortest Processing Time priority (used by the tri-objective extension
/// on independent tasks, Corollary 4).
pub fn spt_priority(graph: &TaskGraph) -> PriorityRank {
    let mut order: Vec<usize> = (0..graph.n()).collect();
    order.sort_by(|&a, &b| {
        sws_model::numeric::total_cmp(graph.task(a).p, graph.task(b).p).then(a.cmp(&b))
    });
    rank_of_order(&order)
}

/// Longest Processing Time priority.
pub fn lpt_priority(graph: &TaskGraph) -> PriorityRank {
    let mut order: Vec<usize> = (0..graph.n()).collect();
    order.sort_by(|&a, &b| {
        sws_model::numeric::total_cmp(graph.task(b).p, graph.task(a).p).then(a.cmp(&b))
    });
    rank_of_order(&order)
}

/// Largest storage requirement first — a memory-aware tie break that tends
/// to spread big-memory tasks before processors fill up.
pub fn largest_storage_priority(graph: &TaskGraph) -> PriorityRank {
    let mut order: Vec<usize> = (0..graph.n()).collect();
    order.sort_by(|&a, &b| {
        sws_model::numeric::total_cmp(graph.task(b).s, graph.task(a).s).then(a.cmp(&b))
    });
    rank_of_order(&order)
}

/// Ranks tasks by packed `((key << 32) | task)` integer sort keys: one
/// `u64` sort, ties broken towards the lower task index.
fn rank_by_packed_keys(keys: impl Iterator<Item = u32>) -> PriorityRank {
    let mut packed: Vec<u64> = keys
        .enumerate()
        .map(|(i, k)| ((k as u64) << 32) | i as u64)
        .collect();
    assert!(packed.len() < u32::MAX as usize, "ranks fit in u32");
    packed.sort_unstable();
    let mut rank = vec![u32::MAX; packed.len()];
    for (r, &pk) in packed.iter().enumerate() {
        rank[pk as u32 as usize] = r as u32;
    }
    rank
}

/// [`spt_priority`] over the flat instance mirror: sorts by the
/// quantized `u32` processing-time ranks when the instance has a cost
/// table, falling back to the `f64` comparator when saturated. Produces
/// the same permutation either way.
pub fn spt_priority_csr(csr: &CsrDag) -> PriorityRank {
    match csr.p_ranks() {
        Some(pr) => rank_by_packed_keys(pr.iter().copied()),
        None => {
            let mut order: Vec<usize> = (0..csr.n()).collect();
            order.sort_by(|&a, &b| {
                sws_model::numeric::total_cmp(csr.p(a), csr.p(b)).then(a.cmp(&b))
            });
            rank_of_order(&order)
        }
    }
}

/// [`lpt_priority`] over the flat instance mirror (see
/// [`spt_priority_csr`]). A descending cost order is an ascending order
/// on the complemented rank — table ranks never reach `u32::MAX`, so
/// the complement stays order-preserving.
pub fn lpt_priority_csr(csr: &CsrDag) -> PriorityRank {
    match csr.p_ranks() {
        Some(pr) => rank_by_packed_keys(pr.iter().map(|&r| u32::MAX - r)),
        None => {
            let mut order: Vec<usize> = (0..csr.n()).collect();
            order.sort_by(|&a, &b| {
                sws_model::numeric::total_cmp(csr.p(b), csr.p(a)).then(a.cmp(&b))
            });
            rank_of_order(&order)
        }
    }
}

/// [`largest_storage_priority`] over the flat instance mirror (see
/// [`lpt_priority_csr`] for the descending-order encoding).
pub fn largest_storage_priority_csr(csr: &CsrDag) -> PriorityRank {
    match csr.s_ranks() {
        Some(sr) => rank_by_packed_keys(sr.iter().map(|&r| u32::MAX - r)),
        None => {
            let mut order: Vec<usize> = (0..csr.n()).collect();
            order.sort_by(|&a, &b| {
                sws_model::numeric::total_cmp(csr.s(b), csr.s(a)).then(a.cmp(&b))
            });
            rank_of_order(&order)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_model::task::{Task, TaskSet};

    fn weighted_chain() -> TaskGraph {
        let tasks = TaskSet::new(vec![
            Task::new_unchecked(1.0, 5.0),
            Task::new_unchecked(3.0, 1.0),
            Task::new_unchecked(2.0, 3.0),
        ])
        .unwrap();
        TaskGraph::from_edges(tasks, &[(0, 1), (1, 2)]).unwrap()
    }

    #[test]
    fn rank_of_order_inverts_the_permutation() {
        let rank = rank_of_order(&[2, 0, 1]);
        assert_eq!(rank, vec![1, 2, 0]);
    }

    #[test]
    fn index_priority_is_identity() {
        assert_eq!(index_priority(4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn hlf_priority_follows_bottom_levels() {
        let g = weighted_chain();
        // Bottom levels: task0 = 6, task1 = 5, task2 = 2 -> order 0, 1, 2.
        let rank = hlf_priority(&g);
        assert_eq!(rank, vec![0, 1, 2]);
    }

    #[test]
    fn spt_and_lpt_priorities_are_reversed() {
        let g = weighted_chain();
        let spt = spt_priority(&g);
        let lpt = lpt_priority(&g);
        // p = [1, 3, 2]: SPT order 0, 2, 1 -> ranks [0, 2, 1];
        // LPT order 1, 2, 0 -> ranks [2, 0, 1].
        assert_eq!(spt, vec![0, 2, 1]);
        assert_eq!(lpt, vec![2, 0, 1]);
    }

    #[test]
    fn storage_priority_prefers_heavy_tasks() {
        let g = weighted_chain();
        // s = [5, 1, 3] -> order 0, 2, 1 -> ranks [0, 2, 1].
        assert_eq!(largest_storage_priority(&g), vec![0, 2, 1]);
    }

    #[test]
    fn csr_priorities_match_the_graph_versions() {
        let g = weighted_chain();
        let csr = g.csr();
        assert_eq!(spt_priority_csr(&csr), spt_priority(&g));
        assert_eq!(lpt_priority_csr(&csr), lpt_priority(&g));
        assert_eq!(
            largest_storage_priority_csr(&csr),
            largest_storage_priority(&g)
        );
    }

    #[test]
    fn csr_priorities_match_on_duplicate_costs_and_saturated_tables() {
        // Duplicate p/s values force index tie-breaks through both paths;
        // a lowered key limit forces the f64 fallback.
        let tasks = TaskSet::new(
            (0..16)
                .map(|i| Task::new_unchecked(1.0 + (i % 3) as f64, 4.0 - (i % 2) as f64))
                .collect(),
        )
        .unwrap();
        let g = TaskGraph::new(tasks);
        let full = g.csr();
        let saturated = sws_dag::CsrDag::from_graph_with_key_limit(&g, 1);
        assert!(saturated.cost_keys().is_none());
        for csr in [&full, &saturated] {
            assert_eq!(spt_priority_csr(csr), spt_priority(&g));
            assert_eq!(lpt_priority_csr(csr), lpt_priority(&g));
            assert_eq!(
                largest_storage_priority_csr(csr),
                largest_storage_priority(&g)
            );
        }
    }
}
