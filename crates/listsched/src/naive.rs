//! Naive reference oracles for the event-driven kernel.
//!
//! These are the original `O(n²·m)` implementations: every round rescans
//! all unscheduled tasks and all processors. They are kept verbatim (only
//! the ad-hoc float tolerances were replaced by the shared
//! [`sws_model::numeric`] helpers) as *differential-testing oracles* for
//! [`crate::kernel`]: the kernel must produce schedule-for-schedule
//! identical results. Production callers should use
//! [`crate::dag_list_schedule`] / [`crate::list_schedule`], which run on
//! the kernel.

use sws_dag::DagInstance;
use sws_model::numeric::better_candidate;
use sws_model::schedule::{Assignment, TimedSchedule};

use crate::priority::PriorityRank;

/// Index of the minimum element (ties broken by the lowest index, which
/// keeps the algorithm deterministic).
pub(crate) fn argmin(values: &[f64]) -> usize {
    let mut best = 0usize;
    for (i, &v) in values.iter().enumerate().skip(1) {
        if v < values[best] {
            best = i;
        }
    }
    best
}

/// Naive Graham list scheduling of independent weighted tasks: a full
/// `O(m)` `argmin` scan per task.
pub fn list_schedule(weights: &[f64], m: usize, order: &[usize]) -> Assignment {
    let mut asg = Assignment::zeroed(weights.len(), m).expect("m >= 1 required");
    let mut load = vec![0.0f64; m];
    for &i in order {
        let q = argmin(&load);
        asg.assign(i, q).expect("q < m by construction");
        load[q] += weights[i];
    }
    asg
}

/// Naive DAG list scheduling: each of the `n` rounds rescans every
/// unscheduled task (`O(n)`) and every processor (`O(m)`), yielding
/// `O(n²·m)` total.
pub fn dag_list_schedule(inst: &DagInstance, priority: &PriorityRank) -> TimedSchedule {
    let graph = inst.graph();
    let n = graph.n();
    let m = inst.m();
    assert_eq!(priority.len(), n, "priority rank must cover every task");

    let mut load = vec![0.0f64; m];
    let mut completion = vec![0.0f64; n];
    let mut scheduled = vec![false; n];
    let mut remaining_preds: Vec<usize> = (0..n).map(|i| graph.in_degree(i)).collect();
    let mut proc_of = vec![0usize; n];
    let mut start = vec![0.0f64; n];

    for _round in 0..n {
        // Among ready (all predecessors completed, not yet scheduled)
        // tasks, compute the earliest possible start on the least loaded
        // processor and keep the task minimizing it.
        let mut best: Option<(f64, u32, usize)> = None; // (start, rank, task)
        for i in 0..n {
            if scheduled[i] || remaining_preds[i] != 0 {
                continue;
            }
            let q = argmin(&load);
            let pred_ready = graph
                .preds(i)
                .iter()
                .map(|&p| completion[p])
                .fold(0.0f64, f64::max);
            let ready = pred_ready.max(load[q]);
            let candidate = (ready, priority[i], i);
            let better = match best {
                None => true,
                Some(cur) => {
                    better_candidate(candidate.0, candidate.1 as usize, cur.0, cur.1 as usize)
                }
            };
            if better {
                best = Some(candidate);
            }
        }
        let (ready, _rank, i) = best.expect("an acyclic graph always has a ready task");
        let q = argmin(&load);
        proc_of[i] = q;
        start[i] = ready;
        completion[i] = ready + graph.task(i).p;
        load[q] = completion[i];
        scheduled[i] = true;
        for &v in graph.succs(i) {
            remaining_preds[v] -= 1;
        }
    }

    TimedSchedule::new(proc_of, start, m).expect("constructed schedule is well formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priority::index_priority;
    use sws_dag::prelude::*;

    #[test]
    fn argmin_prefers_the_lowest_index_on_ties() {
        assert_eq!(argmin(&[2.0, 1.0, 1.0]), 1);
        assert_eq!(argmin(&[0.0]), 0);
        assert_eq!(argmin(&[3.0, 3.0, 3.0]), 0);
    }

    #[test]
    fn naive_oracle_matches_known_small_results() {
        let asg = list_schedule(&[4.0, 3.0, 2.0], 2, &[0, 1, 2]);
        assert_eq!(asg.proc_of(0), 0);
        assert_eq!(asg.proc_of(1), 1);
        assert_eq!(asg.proc_of(2), 1);

        let inst = DagInstance::new(chain(4), 2).unwrap();
        let sched = dag_list_schedule(&inst, &index_priority(4));
        assert!((sched.cmax(inst.tasks()) - 4.0).abs() < 1e-9);
    }
}
