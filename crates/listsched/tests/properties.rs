//! Property-based tests of the classical schedulers: Graham list
//! scheduling, LPT, SPT, MULTIFIT and precedence-constrained list
//! scheduling, checked against their textbook guarantees and against a
//! brute-force optimum on small instances.

use proptest::collection::vec;
use proptest::prelude::*;

use sws_dag::DagInstance;
use sws_dag::TaskGraph;
use sws_listsched::dag_list::{dag_list_guarantee, dag_list_schedule};
use sws_listsched::graham::{graham_cmax, graham_guarantee, graham_mmax, list_schedule};
use sws_listsched::lpt::{lpt_cmax, lpt_guarantee, lpt_order};
use sws_listsched::multifit::{ffd_pack, multifit_cmax};
use sws_listsched::priority::{hlf_priority, index_priority, rank_of_order};
use sws_listsched::spt::{optimal_sum_completion, spt_order, spt_schedule};
use sws_model::bounds::{cmax_lower_bound, cmax_lower_bound_prec};
use sws_model::objectives::{cmax_of_assignment, mmax_of_assignment};
use sws_model::validate::{validate_assignment, validate_timed};
use sws_model::Instance;

/// Exhaustive optimal makespan for tiny instances (used as the reference
/// for the LPT and MULTIFIT ratio checks).
fn brute_force_cmax(weights: &[f64], m: usize) -> f64 {
    fn recurse(weights: &[f64], k: usize, loads: &mut Vec<f64>, best: &mut f64) {
        if k == weights.len() {
            let cmax = loads.iter().cloned().fold(0.0, f64::max);
            if cmax < *best {
                *best = cmax;
            }
            return;
        }
        let current = loads.iter().cloned().fold(0.0, f64::max);
        if current >= *best {
            return; // prune
        }
        for q in 0..loads.len() {
            loads[q] += weights[k];
            recurse(weights, k + 1, loads, best);
            loads[q] -= weights[k];
            if k == 0 {
                break; // symmetry: the first task's machine is irrelevant
            }
        }
    }
    let mut loads = vec![0.0; m];
    let mut best = f64::INFINITY;
    recurse(weights, 0, &mut loads, &mut best);
    best
}

fn small_instance() -> impl Strategy<Value = Instance> {
    (2usize..=3, 2usize..=9).prop_flat_map(|(m, n)| {
        (vec(0.5f64..20.0, n), Just(m)).prop_map(|(p, m)| {
            let s: Vec<f64> = p.iter().rev().cloned().collect();
            Instance::from_ps(&p, &s, m).expect("valid draws")
        })
    })
}

fn medium_instance() -> impl Strategy<Value = Instance> {
    (2usize..=8, 2usize..=60).prop_flat_map(|(m, n)| {
        (vec(0.1f64..100.0, n), vec(0.1f64..100.0, n), Just(m))
            .prop_map(|(p, s, m)| Instance::from_ps(&p, &s, m).expect("valid draws"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Graham's bound: any list schedule is within 2 − 1/m of the Graham
    /// lower bound (and hence of the optimum).
    #[test]
    fn graham_respects_its_guarantee(inst in medium_instance()) {
        let asg = graham_cmax(&inst);
        validate_assignment(&inst, &asg, None).unwrap();
        let cmax = cmax_of_assignment(inst.tasks(), &asg);
        let lb = cmax_lower_bound(inst.tasks(), inst.m());
        prop_assert!(cmax <= graham_guarantee(inst.m()) * lb + 1e-9);
        // The memory-oriented twin optimizes the other dimension with the
        // same guarantee structure.
        let asg_m = graham_mmax(&inst);
        let mmax = mmax_of_assignment(inst.tasks(), &asg_m);
        let lb_m = sws_model::bounds::mmax_lower_bound(inst.tasks(), inst.m());
        prop_assert!(mmax <= graham_guarantee(inst.m()) * lb_m + 1e-9);
    }

    /// LPT never does worse than plain Graham's bound and respects its own
    /// 4/3 − 1/(3m) guarantee against the exact optimum on small inputs.
    #[test]
    fn lpt_respects_its_guarantee(inst in small_instance()) {
        let asg = lpt_cmax(&inst);
        let cmax = cmax_of_assignment(inst.tasks(), &asg);
        let weights: Vec<f64> = (0..inst.n()).map(|i| inst.p(i)).collect();
        let opt = brute_force_cmax(&weights, inst.m());
        prop_assert!(cmax <= lpt_guarantee(inst.m()) * opt + 1e-9,
            "LPT {} > {} × OPT {}", cmax, lpt_guarantee(inst.m()), opt);
        prop_assert!(cmax + 1e-9 >= opt);
    }

    /// MULTIFIT respects the classical 13/11 bound against the exact
    /// optimum on small inputs, and FFD packing never overfills a bin.
    #[test]
    fn multifit_respects_its_guarantee(inst in small_instance()) {
        let asg = multifit_cmax(&inst);
        validate_assignment(&inst, &asg, None).unwrap();
        let cmax = cmax_of_assignment(inst.tasks(), &asg);
        let weights: Vec<f64> = (0..inst.n()).map(|i| inst.p(i)).collect();
        let opt = brute_force_cmax(&weights, inst.m());
        // 13/11 plus the residual of the finitely many bisection rounds.
        prop_assert!(cmax <= (13.0 / 11.0 + 1e-2) * opt + 1e-9,
            "MULTIFIT {} > 13/11 × OPT {}", cmax, opt);
        // FFD with capacity equal to the achieved Cmax must succeed and
        // respect the capacity.
        if let Some(packed) = ffd_pack(&weights, inst.m(), cmax + 1e-9) {
            let packed_cmax = cmax_of_assignment(inst.tasks(), &packed);
            prop_assert!(packed_cmax <= cmax + 1e-6);
        }
    }

    /// SPT list scheduling minimizes ΣCi: no other priority order we try
    /// can do better, and the closed-form optimum matches the schedule.
    #[test]
    fn spt_minimizes_sum_completion(inst in medium_instance()) {
        let spt = spt_schedule(&inst);
        let preds: Vec<Vec<usize>> = vec![Vec::new(); inst.n()];
        validate_timed(inst.tasks(), inst.m(), &spt, &preds, None).unwrap();
        let spt_value = spt.sum_completion(inst.tasks());
        prop_assert!((spt_value - optimal_sum_completion(&inst)).abs() < 1e-6);
        // Any list schedule in a different order is no better.
        let weights: Vec<f64> = (0..inst.n()).map(|i| inst.p(i)).collect();
        let lpt = list_schedule(&weights, inst.m(), &lpt_order(&weights));
        let lpt_timed = lpt.into_timed_ordered(inst.tasks(), &lpt_order(&weights));
        prop_assert!(lpt_timed.sum_completion(inst.tasks()) + 1e-9 >= spt_value);
        // The SPT order really is sorted by processing time.
        let order = spt_order(&weights);
        for w in order.windows(2) {
            prop_assert!(weights[w[0]] <= weights[w[1]] + 1e-12);
        }
    }

    /// Precedence-constrained list scheduling respects Graham's bound
    /// against the critical-path-aware lower bound for every priority
    /// order, and its schedules are always feasible.
    #[test]
    fn dag_list_scheduling_respects_grahams_bound(
        p in vec(0.5f64..10.0, 3..25),
        m in 2usize..5,
        seed in 0u64..500,
    ) {
        let mut rng = sws_workloads::rng::seeded_rng(seed);
        let n = p.len();
        let graph = sws_dag::generators::layered::layered_random(n, (n / 3).max(1), 0.3, &mut rng)
            .with_costs(|i| sws_model::task::Task { p: p[i], s: 1.0 });
        let inst = DagInstance::new(graph, m).unwrap();
        for priority in [index_priority(n), hlf_priority(inst.graph())] {
            let sched = dag_list_schedule(&inst, &priority);
            validate_timed(inst.tasks(), m, &sched, inst.graph().all_preds(), None).unwrap();
            let cp = inst.graph().critical_path_length();
            let lb = cmax_lower_bound_prec(inst.tasks(), m, cp);
            prop_assert!(sched.cmax(inst.tasks()) <= dag_list_guarantee(m) * lb + 1e-9);
        }
    }

    /// Buffer-reuse correctness (the allocation-free kernel rework): a
    /// single `KernelWorkspace` threaded through an interleaved stream of
    /// runs — different DAG families, task counts, processor counts,
    /// admission predicates and memory caps — must produce exactly the
    /// schedules fresh-workspace runs produce. Any state leaking from one
    /// run into the next (a stale heap entry, an unreset load, a dirty
    /// scratch buffer) changes some placement and fails the comparison.
    #[test]
    fn kernel_workspace_reuse_is_bit_identical_across_interleaved_instances(
        runs in vec(
            (0usize..7, 6usize..40, 1usize..7, 2.1f64..10.0, any::<bool>()),
            2..7,
        ),
        seed in 0u64..10_000,
    ) {
        use sws_listsched::kernel::{
            event_driven_schedule, event_driven_schedule_csr, KernelWorkspace,
            MemoryCapAdmission, Unrestricted,
        };
        use sws_workloads::dagsets::{dag_workload, DagFamily};
        use sws_workloads::TaskDistribution;

        let mut ws = KernelWorkspace::new();
        let mut rng = sws_workloads::rng::seeded_rng(seed);
        for (family_idx, n, m, delta, capped) in runs {
            let family = DagFamily::all()[family_idx];
            let inst = dag_workload(family, n, m, TaskDistribution::AntiCorrelated, &mut rng);
            let rank = index_priority(inst.n());
            let csr = inst.csr();
            if capped {
                let lb = sws_model::bounds::mmax_lower_bound(inst.tasks(), inst.m());
                let cap = delta * lb;
                let mut adm_reused = MemoryCapAdmission::new(inst.m(), cap);
                let reused = event_driven_schedule_csr(
                    &csr, inst.m(), &rank, &mut adm_reused, &mut ws,
                ).unwrap();
                let mut adm_fresh = MemoryCapAdmission::new(inst.m(), cap);
                let fresh = event_driven_schedule(&inst, &rank, &mut adm_fresh).unwrap();
                prop_assert_eq!(&reused.schedule, &fresh.schedule,
                    "{} n={} m={} ∆={}: capped schedules differ",
                    family.label(), inst.n(), inst.m(), delta);
                prop_assert_eq!(&reused.marked, &fresh.marked);
            } else {
                let reused = event_driven_schedule_csr(
                    &csr, inst.m(), &rank, &mut Unrestricted, &mut ws,
                ).unwrap();
                let fresh = event_driven_schedule(&inst, &rank, &mut Unrestricted).unwrap();
                prop_assert_eq!(&reused.schedule, &fresh.schedule,
                    "{} n={} m={}: unrestricted schedules differ",
                    family.label(), inst.n(), inst.m());
                prop_assert_eq!(&reused.marked, &fresh.marked);
            }
        }
    }

    /// Priority-rank helpers are consistent: ranking an order and applying
    /// it round-trips, and all ranks are permutations of 0..n.
    #[test]
    fn priority_ranks_are_permutations(weights in vec(0.1f64..50.0, 1..40)) {
        let order = spt_order(&weights);
        let rank = rank_of_order(&order);
        prop_assert_eq!(rank.len(), weights.len());
        let mut seen = vec![false; weights.len()];
        for &r in &rank {
            prop_assert!((r as usize) < weights.len());
            prop_assert!(!seen[r as usize]);
            seen[r as usize] = true;
        }
        // The task ranked 0 is the first of the order.
        prop_assert_eq!(rank[order[0]], 0);
        let graph = TaskGraph::new(
            sws_model::task::TaskSet::from_ps(&weights, &weights).unwrap(),
        );
        let index = index_priority(graph.n());
        prop_assert_eq!(index, (0..weights.len() as u32).collect::<Vec<_>>());
    }
}

#[test]
fn graham_anomaly_instance_from_the_literature() {
    // The classical Graham instance showing list scheduling can reach the
    // 2 − 1/m bound: m machines, m(m−1) unit tasks followed by one task of
    // length m. List scheduling in index order yields 2m − 1 while the
    // optimum is m.
    let m = 4usize;
    let mut p = vec![1.0; m * (m - 1)];
    p.push(m as f64);
    let s = vec![1.0; p.len()];
    let inst = Instance::from_ps(&p, &s, m).unwrap();
    let asg = graham_cmax(&inst);
    let cmax = cmax_of_assignment(inst.tasks(), &asg);
    assert!((cmax - (2 * m - 1) as f64).abs() < 1e-9);
    // LPT fixes it.
    let lpt = lpt_cmax(&inst);
    assert!((cmax_of_assignment(inst.tasks(), &lpt) - m as f64).abs() < 1e-9);
}
