//! The shared per-worker dispatch core of the serving paths.
//!
//! Two layers serve [`SolveRequest`] streams through the portfolio: the
//! batch path ([`crate::batch::BatchScheduler::run_requests`], one
//! contiguous chunk per rayon worker) and the queue-fed service runtime
//! (the `sws_service` crate, one long-lived worker thread per core).
//! Before this module existed each re-implemented the same discipline —
//! per-item backend selection through [`Portfolio::solve_in`] with one
//! reusable [`KernelWorkspace`] per worker — and the two copies could
//! drift. [`DispatchWorker`] is that discipline in one place:
//!
//! * construct one per worker ([`DispatchWorker::new`]);
//! * feed it requests ([`DispatchWorker::solve`]); selection happens per
//!   request, kernel-backed backends draw their buffers from the
//!   worker's workspace, everything else ignores it;
//! * results are **bit-identical** to one-shot [`Portfolio::solve`]
//!   calls (`tests/differential_portfolio.rs` and the service suite
//!   both enforce routed ≡ direct).

use sws_listsched::kernel::KernelWorkspace;
use sws_model::cancel::CancelProbe;
use sws_model::error::ModelError;
use sws_model::solve::{Solution, SolveRequest};

use crate::portfolio::{Portfolio, SolvePlan};

/// One serving worker's dispatch state: a borrowed portfolio and the
/// worker's reusable kernel workspace. See the module docs.
pub struct DispatchWorker<'p> {
    portfolio: &'p Portfolio,
    ws: KernelWorkspace,
}

impl<'p> DispatchWorker<'p> {
    /// A worker over the given portfolio with a fresh workspace.
    pub fn new(portfolio: &'p Portfolio) -> Self {
        DispatchWorker {
            portfolio,
            ws: KernelWorkspace::new(),
        }
    }

    /// The portfolio this worker dispatches into.
    pub fn portfolio(&self) -> &'p Portfolio {
        self.portfolio
    }

    /// Arms a cooperative cancellation/deadline probe on this worker's
    /// workspace: subsequent solves poll it at round boundaries and stop
    /// with `ModelError::Interrupted` once it trips. Clear it with
    /// [`DispatchWorker::clear_probe`] before serving the next request.
    pub fn set_probe(&mut self, probe: CancelProbe) {
        self.ws.set_probe(probe);
    }

    /// Disarms the cancellation probe.
    pub fn clear_probe(&mut self) {
        self.ws.clear_probe();
    }

    /// Replaces the workspace with a fresh one. The panic-isolation path
    /// calls this after catching a backend panic: an unwound solve may
    /// have left the buffers mid-run, and although every run re-inits
    /// them from scratch, quarantining the state is cheap certainty.
    pub fn reset_workspace(&mut self) {
        self.ws = KernelWorkspace::new();
    }

    /// Resolves the backend and pre-dispatch cost for a request without
    /// solving it (delegates to [`Portfolio::plan`]).
    pub fn plan(&self, req: &SolveRequest) -> Result<SolvePlan, ModelError> {
        self.portfolio.plan(req)
    }

    /// Serves one request: per-item backend selection, kernel buffers
    /// drawn from this worker's reusable workspace. Bit-identical to
    /// [`Portfolio::solve`] on the same request (modulo the
    /// `workspace_reused` stats flag).
    pub fn solve(&mut self, req: &SolveRequest) -> Result<Solution, ModelError> {
        self.portfolio.solve_in(req, &mut self.ws)
    }

    /// Serves one request whose backend was already planned (at
    /// admission): dispatches straight to `plan.backend` through this
    /// worker's workspace. Bit-identical to [`DispatchWorker::solve`]
    /// when `plan` came from [`Portfolio::plan`] on the same request —
    /// see [`Portfolio::solve_planned_in`].
    pub fn solve_planned(
        &mut self,
        req: &SolveRequest,
        plan: &SolvePlan,
    ) -> Result<Solution, ModelError> {
        self.portfolio.solve_planned_in(req, plan, &mut self.ws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_model::solve::{Guarantee, ObjectiveMode};
    use sws_workloads::random::random_instance;
    use sws_workloads::rng::seeded_rng;
    use sws_workloads::TaskDistribution;

    #[test]
    fn dispatch_worker_is_bit_identical_to_direct_portfolio_solves() {
        let portfolio = Portfolio::standard();
        let mut worker = DispatchWorker::new(&portfolio);
        for seed in 0..6u64 {
            let inst = random_instance(
                30 + seed as usize,
                3,
                TaskDistribution::AntiCorrelated,
                &mut seeded_rng(seed),
            );
            for objective in [
                ObjectiveMode::CmaxOnly,
                ObjectiveMode::BiObjective { delta: 2.5 },
                ObjectiveMode::TriObjective { delta: 3.0 },
            ] {
                let req = sws_model::solve::SolveRequest::independent(&inst, objective)
                    .with_guarantee(Guarantee::None);
                let routed = worker.solve(&req).unwrap();
                let direct = portfolio.solve(&req).unwrap();
                assert_eq!(routed.schedule, direct.schedule);
                assert_eq!(routed.point, direct.point);
                assert_eq!(routed.stats.backend, direct.stats.backend);
                assert_eq!(routed.stats.cost, direct.stats.cost);
                // The worker's plan names the backend that actually ran.
                let plan = worker.plan(&req).unwrap();
                assert_eq!(plan.backend, routed.stats.backend);
                assert_eq!(Some(plan.cost), routed.stats.cost);
            }
        }
    }
}
