//! Solving the original constrained problem (Section 7 of the paper):
//! minimize `Cmax` subject to `Mmax ≤ M`.
//!
//! Deciding whether *any* schedule satisfies `Mmax ≤ M` is the decision
//! version of `P ∥ Cmax` and therefore strongly NP-complete, so the
//! constrained problem admits no polynomial approximation algorithm
//! (Section 2.2). The paper's concluding remarks describe how the
//! bi-objective machinery still gives a practical procedure:
//!
//! * **Precedence constraints** — compute the Graham memory lower bound
//!   `LB`, set `∆ = M / LB` and run RLS∆. The result is guaranteed to use
//!   at most `∆·LB = M` memory and, when `∆ > 2`, its makespan is within
//!   `2 + 1/(∆−2) − (∆−1)/(m(∆−2))` of the optimum. Because RLS∆ is a
//!   thresholding algorithm, no other parameter value can produce a
//!   better feasible schedule.
//! * **Independent tasks** — a parameter that always yields a feasible
//!   solution can be computed, and the solution can then be tentatively
//!   improved by a binary search on the parameter. This module implements
//!   that search on top of SBO∆ (larger `∆` favours memory), keeping the
//!   feasible schedule with the smallest makespan.
//!
//! The only instances the procedure cannot handle are those where the
//! budget is so tight that fitting the tasks at all is the hard part —
//! exactly the cases the paper says are hopeless to guarantee.

use sws_dag::DagInstance;
use sws_model::bounds::mmax_lower_bound;
use sws_model::error::ModelError;
use sws_model::numeric::{approx_le, at_most, exceeds};
use sws_model::objectives::ObjectivePoint;
use sws_model::schedule::{Assignment, TimedSchedule};
use sws_model::Instance;

use crate::rls::{rls_guarantee, rls_in, RlsConfig};
use crate::sbo::{sbo, InnerAlgorithm, SboConfig};

/// Number of refinement steps of the binary search on `∆`.
pub(crate) const BINARY_SEARCH_STEPS: usize = 40;

/// Outcome of the constrained procedure on independent tasks.
#[derive(Debug, Clone)]
pub enum ConstrainedOutcome {
    /// A schedule meeting the memory budget was found.
    Feasible {
        /// The assignment meeting `Mmax ≤ budget`.
        assignment: Assignment,
        /// Its objective values.
        point: ObjectivePoint,
        /// The `∆` that produced it (`f64::INFINITY` when only the pure
        /// memory-oriented schedule fits).
        delta: f64,
        /// Number of SBO∆ evaluations performed by the search.
        evaluations: usize,
    },
    /// The budget is below the largest single task: no schedule can ever
    /// fit, on any number of processors.
    ProvablyInfeasible {
        /// The largest storage requirement of a single task.
        max_storage: f64,
    },
    /// The heuristics could not meet the budget. Feasibility is left open:
    /// deciding it exactly is NP-complete, which is precisely why the
    /// paper turns the constraint into an objective.
    NotFound {
        /// The smallest `Mmax` any evaluated schedule achieved.
        best_mmax: f64,
        /// Number of SBO∆ evaluations performed by the search.
        evaluations: usize,
    },
}

impl ConstrainedOutcome {
    /// True for the [`ConstrainedOutcome::Feasible`] variant.
    pub fn is_feasible(&self) -> bool {
        matches!(self, ConstrainedOutcome::Feasible { .. })
    }

    /// The achieved makespan, when feasible.
    pub fn makespan(&self) -> Option<f64> {
        match self {
            ConstrainedOutcome::Feasible { point, .. } => Some(point.cmax),
            _ => None,
        }
    }
}

/// Outcome of the constrained procedure on precedence-constrained tasks.
#[derive(Debug, Clone)]
pub enum DagConstrainedOutcome {
    /// RLS∆ produced a schedule meeting the budget, with a proven
    /// makespan guarantee.
    Feasible {
        /// The schedule meeting `Mmax ≤ budget`.
        schedule: TimedSchedule,
        /// Its objective values.
        point: ObjectivePoint,
        /// The derived parameter `∆ = budget / LB`.
        delta: f64,
        /// The proven makespan ratio `2 + 1/(∆−2) − (∆−1)/(m(∆−2))`.
        makespan_guarantee: f64,
    },
    /// The budget is below the largest single task: provably infeasible.
    ProvablyInfeasible {
        /// The largest storage requirement of a single task.
        max_storage: f64,
    },
    /// The derived `∆ = budget / LB` is at most 2, so RLS∆ cannot run and
    /// the paper's procedure offers no guarantee (the "difficult to fit"
    /// regime of Section 7).
    NoGuarantee {
        /// The derived parameter `budget / LB ≤ 2`.
        delta: f64,
    },
}

impl DagConstrainedOutcome {
    /// True for the [`DagConstrainedOutcome::Feasible`] variant.
    pub fn is_feasible(&self) -> bool {
        matches!(self, DagConstrainedOutcome::Feasible { .. })
    }

    /// The achieved makespan, when feasible.
    pub fn makespan(&self) -> Option<f64> {
        match self {
            DagConstrainedOutcome::Feasible { point, .. } => Some(point.cmax),
            _ => None,
        }
    }
}

/// Solves `min Cmax  s.t.  Mmax ≤ budget` on independent tasks by a
/// binary search on the SBO∆ parameter (Section 7).
///
/// `inner` is the single-objective scheduler handed to SBO∆; LPT is a good
/// default. Returns an error only for invalid inner-algorithm parameters.
pub fn solve_with_memory_budget(
    inst: &Instance,
    budget: f64,
    inner: InnerAlgorithm,
) -> Result<ConstrainedOutcome, ModelError> {
    if inst.n() == 0 {
        let assignment = Assignment::zeroed(0, inst.m())?;
        return Ok(ConstrainedOutcome::Feasible {
            point: ObjectivePoint::of_assignment(inst, &assignment),
            assignment,
            delta: 1.0,
            evaluations: 0,
        });
    }
    let max_storage = inst.tasks().max_storage();
    if !approx_le(max_storage, budget) {
        return Ok(ConstrainedOutcome::ProvablyInfeasible { max_storage });
    }

    let mut evaluations = 0usize;
    let mut best: Option<(f64, ObjectivePoint, Assignment)> = None; // (delta, point, assignment)
    let mut best_mmax = f64::INFINITY;

    let consider = |delta: f64,
                    point: ObjectivePoint,
                    assignment: Assignment,
                    best: &mut Option<(f64, ObjectivePoint, Assignment)>,
                    best_mmax: &mut f64| {
        *best_mmax = best_mmax.min(point.mmax);
        if approx_le(point.mmax, budget) {
            let better = match best {
                None => true,
                Some((_, bp, _)) => point.cmax < bp.cmax,
            };
            if better {
                *best = Some((delta, point, assignment));
            }
        }
    };

    // The pure memory-oriented schedule (∆ → ∞) is the feasibility
    // fallback the paper alludes to: if even it exceeds the budget the
    // procedure gives up.
    let fallback = sbo(inst, &SboConfig::new(1e12, inner))?;
    evaluations += 1;
    let fallback_point = fallback.objective(inst);
    consider(
        f64::INFINITY,
        fallback_point,
        fallback.assignment,
        &mut best,
        &mut best_mmax,
    );
    if best.is_none() {
        return Ok(ConstrainedOutcome::NotFound {
            best_mmax,
            evaluations,
        });
    }

    // Binary search for the smallest ∆ whose SBO∆ schedule still fits the
    // budget: smaller ∆ favours the makespan, larger ∆ favours memory.
    let mut lo = 1e-6f64;
    let mut hi = 1e6f64;
    for _ in 0..BINARY_SEARCH_STEPS {
        let mid = (lo * hi).sqrt();
        let result = sbo(inst, &SboConfig::new(mid, inner))?;
        evaluations += 1;
        let point = result.objective(inst);
        consider(mid, point, result.assignment, &mut best, &mut best_mmax);
        if approx_le(point.mmax, budget) {
            // Feasible at mid: try smaller ∆ for a better makespan.
            hi = mid;
        } else {
            lo = mid;
        }
    }

    let (delta, point, assignment) = best.expect("fallback guaranteed one feasible schedule");
    Ok(ConstrainedOutcome::Feasible {
        assignment,
        point,
        delta,
        evaluations,
    })
}

/// Solves `min Cmax  s.t.  Mmax ≤ budget` on a precedence-constrained
/// instance by deriving `∆ = budget / LB` and running RLS∆ (Section 7).
pub fn solve_dag_with_memory_budget(
    inst: &DagInstance,
    budget: f64,
) -> Result<DagConstrainedOutcome, ModelError> {
    solve_dag_with_memory_budget_in(inst, budget, &mut sws_listsched::KernelWorkspace::new())
}

/// [`solve_dag_with_memory_budget`] with an explicit reusable kernel
/// workspace for the underlying RLS∆ run — the variant the portfolio's
/// constrained backend threads the per-worker workspace through.
/// Bit-identical to [`solve_dag_with_memory_budget`].
pub fn solve_dag_with_memory_budget_in(
    inst: &DagInstance,
    budget: f64,
    ws: &mut sws_listsched::KernelWorkspace,
) -> Result<DagConstrainedOutcome, ModelError> {
    if inst.n() == 0 {
        let schedule = TimedSchedule::new(vec![], vec![], inst.m())?;
        return Ok(DagConstrainedOutcome::Feasible {
            point: ObjectivePoint::of_timed_tasks(inst.tasks(), &schedule),
            schedule,
            delta: f64::INFINITY,
            makespan_guarantee: 1.0,
        });
    }
    let max_storage = inst.tasks().max_storage();
    if !approx_le(max_storage, budget) {
        return Ok(DagConstrainedOutcome::ProvablyInfeasible { max_storage });
    }

    let lb = mmax_lower_bound(inst.tasks(), inst.m());
    let delta = if exceeds(lb, 0.0) {
        budget / lb
    } else {
        f64::INFINITY
    };
    if at_most(delta, 2.0) {
        return Ok(DagConstrainedOutcome::NoGuarantee { delta });
    }
    // Guard against non-finite ∆ for all-zero storage instances: any
    // comfortably large finite value leaves the restriction inactive.
    let delta = if delta.is_finite() { delta } else { 1e12 };
    let result = rls_in(inst, &RlsConfig::new(delta), ws)?;
    let point = ObjectivePoint::of_timed_tasks(inst.tasks(), &result.schedule);
    debug_assert!(approx_le(point.mmax, budget));
    Ok(DagConstrainedOutcome::Feasible {
        schedule: result.schedule,
        point,
        delta,
        makespan_guarantee: rls_guarantee(delta, inst.m()).0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_dag::TaskGraph;
    use sws_exact::pareto_enum::best_cmax_under_memory_budget;
    use sws_model::bounds::cmax_lower_bound;
    use sws_model::validate::validate_assignment;
    use sws_workloads::dagsets::{dag_workload, DagFamily};
    use sws_workloads::random::random_instance;
    use sws_workloads::rng::seeded_rng;
    use sws_workloads::TaskDistribution;

    fn workload(n: usize, m: usize, seed: u64) -> Instance {
        random_instance(
            n,
            m,
            TaskDistribution::AntiCorrelated,
            &mut seeded_rng(seed),
        )
    }

    #[test]
    fn budget_below_the_largest_task_is_provably_infeasible() {
        let inst = Instance::from_ps(&[1.0, 1.0], &[5.0, 3.0], 2).unwrap();
        let out = solve_with_memory_budget(&inst, 4.0, InnerAlgorithm::Lpt).unwrap();
        match out {
            ConstrainedOutcome::ProvablyInfeasible { max_storage } => {
                assert_eq!(max_storage, 5.0)
            }
            other => panic!("expected ProvablyInfeasible, got {other:?}"),
        }
    }

    #[test]
    fn generous_budgets_recover_the_unconstrained_makespan_schedule() {
        let inst = workload(30, 4, 1);
        let total = inst.total_storage();
        let out = solve_with_memory_budget(&inst, total, InnerAlgorithm::Lpt).unwrap();
        let lpt_point = ObjectivePoint::of_assignment(&inst, &sws_listsched::lpt_cmax(&inst));
        match out {
            ConstrainedOutcome::Feasible { point, .. } => {
                // With the budget = Σ s_i every schedule fits, so the search
                // should find a makespan at least as good as plain LPT.
                assert!(point.cmax <= lpt_point.cmax + 1e-9);
                assert!(point.mmax <= total + 1e-9);
            }
            other => panic!("expected Feasible, got {other:?}"),
        }
    }

    #[test]
    fn feasible_solutions_respect_the_budget_and_are_valid() {
        for seed in 0..6u64 {
            let inst = workload(24, 3, seed);
            let lb = mmax_lower_bound(inst.tasks(), inst.m());
            for beta in [1.2, 1.5, 2.0, 3.0] {
                let budget = beta * lb;
                let out = solve_with_memory_budget(&inst, budget, InnerAlgorithm::Lpt).unwrap();
                if let ConstrainedOutcome::Feasible {
                    assignment, point, ..
                } = out
                {
                    validate_assignment(&inst, &assignment, Some(budget)).unwrap();
                    assert!(point.mmax <= budget + 1e-9);
                }
            }
        }
    }

    #[test]
    fn never_beats_the_exact_constrained_optimum() {
        // On an instance small enough for exhaustive enumeration, the
        // heuristic's makespan can never undercut the true constrained
        // optimum, and its memory always fits the budget.
        let inst = workload(9, 2, 7);
        let lb = mmax_lower_bound(inst.tasks(), inst.m());
        for beta in [1.1, 1.3, 1.6, 2.0, 3.0] {
            let budget = beta * lb;
            let exact = best_cmax_under_memory_budget(&inst, budget);
            let out = solve_with_memory_budget(&inst, budget, InnerAlgorithm::Lpt).unwrap();
            if let ConstrainedOutcome::Feasible { point, .. } = out {
                assert!(point.mmax <= budget + 1e-9);
                let exact = exact.expect("a heuristic-feasible budget is exactly feasible");
                assert!(
                    point.cmax + 1e-9 >= exact,
                    "budget {beta}·LB: heuristic {} beat the optimum {exact}",
                    point.cmax
                );
            }
        }
    }

    #[test]
    fn matches_the_exact_trade_off_on_a_tiny_instance() {
        // Figure 1 instance: budget 1.5 forces the (3/2, 1 + ε) point.
        let inst = sws_workloads::lemma1_instance(1e-3);
        let exact = best_cmax_under_memory_budget(&inst, 1.5).unwrap();
        let out = solve_with_memory_budget(&inst, 1.5, InnerAlgorithm::Lpt).unwrap();
        match out {
            ConstrainedOutcome::Feasible { point, .. } => {
                assert!(point.mmax <= 1.5 + 1e-9);
                // The heuristic cannot beat the exact optimum.
                assert!(point.cmax + 1e-9 >= exact);
            }
            other => panic!("expected Feasible, got {other:?}"),
        }
    }

    #[test]
    fn impossible_budgets_are_reported_not_found_or_infeasible() {
        // Budget above max s_i but below the Graham lower bound Σs_i/m:
        // no schedule exists, but proving it is NP-hard — the procedure
        // must simply report failure.
        let inst = Instance::from_ps(&[1.0; 4], &[3.0, 3.0, 3.0, 3.0], 2).unwrap();
        let out = solve_with_memory_budget(&inst, 4.0, InnerAlgorithm::Lpt).unwrap();
        match out {
            ConstrainedOutcome::NotFound { best_mmax, .. } => assert!(best_mmax > 4.0),
            ConstrainedOutcome::ProvablyInfeasible { .. } => {
                panic!("budget exceeds max task size, not provably infeasible")
            }
            ConstrainedOutcome::Feasible { point, .. } => {
                panic!("no schedule fits 4.0, yet got Mmax = {}", point.mmax)
            }
        }
    }

    #[test]
    fn dag_budget_derives_delta_and_meets_the_budget() {
        let mut rng = seeded_rng(3);
        for family in [DagFamily::LayeredRandom, DagFamily::GaussianElimination] {
            let inst = dag_workload(family, 80, 4, TaskDistribution::Uncorrelated, &mut rng);
            let lb = mmax_lower_bound(inst.tasks(), inst.m());
            let budget = 3.0 * lb;
            let out = solve_dag_with_memory_budget(&inst, budget).unwrap();
            match out {
                DagConstrainedOutcome::Feasible {
                    point,
                    delta,
                    makespan_guarantee,
                    ..
                } => {
                    assert!((delta - 3.0).abs() < 1e-9);
                    assert!(point.mmax <= budget + 1e-9);
                    let lb_c =
                        cmax_lower_bound(inst.tasks(), inst.m()).max(inst.critical_path_length());
                    assert!(point.cmax <= makespan_guarantee * lb_c + 1e-9);
                }
                other => panic!("expected Feasible, got {other:?}"),
            }
        }
    }

    #[test]
    fn dag_budget_at_or_below_twice_the_bound_gives_no_guarantee() {
        let inst = DagInstance::new(
            TaskGraph::from_edges(
                sws_model::task::TaskSet::from_ps(&[1.0, 2.0, 3.0], &[2.0, 2.0, 2.0]).unwrap(),
                &[(0, 1), (1, 2)],
            )
            .unwrap(),
            2,
        )
        .unwrap();
        let lb = mmax_lower_bound(inst.tasks(), 2);
        let out = solve_dag_with_memory_budget(&inst, 1.5 * lb).unwrap();
        assert!(matches!(out, DagConstrainedOutcome::NoGuarantee { .. }));
        let out = solve_dag_with_memory_budget(&inst, 1.0).unwrap();
        assert!(matches!(
            out,
            DagConstrainedOutcome::ProvablyInfeasible { .. }
        ));
    }

    #[test]
    fn empty_instances_are_trivially_feasible() {
        let inst = Instance::from_ps(&[], &[], 2).unwrap();
        let out = solve_with_memory_budget(&inst, 0.0, InnerAlgorithm::Graham).unwrap();
        assert!(out.is_feasible());
        assert_eq!(out.makespan(), Some(0.0));
        let dag = DagInstance::new(TaskGraph::new(inst.tasks().clone()), 2).unwrap();
        let out = solve_dag_with_memory_budget(&dag, 0.0).unwrap();
        assert!(out.is_feasible());
    }

    #[test]
    fn outcome_accessors() {
        let inst = workload(10, 2, 9);
        let out =
            solve_with_memory_budget(&inst, inst.total_storage(), InnerAlgorithm::Graham).unwrap();
        assert!(out.is_feasible());
        assert!(out.makespan().unwrap() > 0.0);
        let none = ConstrainedOutcome::NotFound {
            best_mmax: 1.0,
            evaluations: 3,
        };
        assert!(!none.is_feasible());
        assert_eq!(none.makespan(), None);
    }
}
