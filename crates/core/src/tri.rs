//! The tri-objective extension of Section 5.2: RLS∆ with SPT
//! tie-breaking on independent tasks.
//!
//! On independent tasks the list-scheduling structure of RLS∆ allows the
//! tasks to be considered in the Shortest Processing Time order. Lemma 6
//! bounds the degradation of `ΣC_i` when a fraction of the processors is
//! forbidden: an SPT schedule on `ρm` processors is within `(1/ρ + 1)` of
//! the SPT schedule on `m` processors. Since RLS∆ always keeps
//! `m(∆−2)/(∆−1)` processors unconstrained and SPT is optimal for
//! `P ∥ ΣC_i`, Corollary 4 follows:
//!
//! ```text
//! RLS∆ with SPT ties is (2 + 1/(∆−2) − (∆−1)/(m(∆−2)), ∆, 2 + 1/(∆−2))-
//! approximate on (Cmax, Mmax, ΣC_i).
//! ```

use sws_model::bounds::LowerBounds;
use sws_model::error::ModelError;
use sws_model::numeric::{at_most, exceeds};
use sws_model::objectives::TriObjectivePoint;
use sws_model::ratio::{Reference, TriRatioReport};
use sws_model::solve::{BackendId, BoundReport, Guarantee, Solution, SolveStats};
use sws_model::Instance;

use sws_listsched::KernelWorkspace;

use crate::rls::{rls_guarantee, rls_independent, rls_independent_in, RlsConfig, RlsResult};

/// The output of the tri-objective algorithm.
#[derive(Debug, Clone)]
pub struct TriObjectiveResult {
    /// The underlying RLS∆ run (SPT tie-breaking).
    pub rls: RlsResult,
    /// The achieved `(Cmax, Mmax, ΣC_i)` point.
    pub point: TriObjectivePoint,
    /// The Corollary 4 guarantee
    /// `(2 + 1/(∆−2) − (∆−1)/(m(∆−2)), ∆, 2 + 1/(∆−2))`.
    pub guarantee: (f64, f64, f64),
    /// The parameter the result was produced with.
    pub delta: f64,
}

impl TriObjectiveResult {
    /// Achieved-versus-guaranteed report against the instance's lower
    /// bounds (`ΣC_i` uses the exact SPT optimum).
    pub fn ratio_report(&self, inst: &Instance) -> TriRatioReport {
        let lb = LowerBounds::of_instance(inst);
        TriRatioReport::new(
            self.point,
            TriObjectivePoint::new(lb.cmax, lb.mmax, lb.sum_ci),
            Reference::LowerBound,
            Some(self.guarantee),
        )
    }

    /// Packages the run in the unified solver vocabulary
    /// (`sws_model::solve`); `ΣC_i` travels in [`Solution::sum_ci`] and
    /// the Corollary 4 `(Cmax, Mmax)` factors in the ratio bound.
    /// Consumes the result so the schedule moves instead of cloning
    /// (see [`crate::rls::RlsResult::into_solution`]).
    pub fn into_solution(self, inst: &Instance, workspace_reused: bool) -> Solution {
        Solution {
            point: self.point.bi(),
            sum_ci: Some(self.point.sum_ci),
            achieved: Guarantee::PaperRatio,
            ratio_bound: Some((self.guarantee.0, self.guarantee.1)),
            stats: SolveStats {
                backend: BackendId::KernelTriRls,
                rounds: self.rls.schedule.n(),
                workspace_reused,
                bounds: BoundReport::identical(inst.tasks(), inst.m()),
                cost: None,
                attempts: 1,
            },
            schedule: self.rls.schedule,
        }
    }
}

/// The Corollary 4 guarantee on `m` processors:
/// `(2 + 1/(∆−2) − (∆−1)/(m(∆−2)), ∆, 2 + 1/(∆−2))` for `∆ > 2`.
pub fn corollary4_guarantee(delta: f64, m: usize) -> (f64, f64, f64) {
    let (gc, gm) = rls_guarantee(delta, m);
    (gc, gm, 2.0 + 1.0 / (delta - 2.0))
}

/// Runs RLS∆ with SPT tie-breaking on an independent-task instance and
/// evaluates all three objectives (Corollary 4).
pub fn tri_objective_rls(inst: &Instance, delta: f64) -> Result<TriObjectiveResult, ModelError> {
    let config = RlsConfig::spt(delta);
    let rls = rls_independent(inst, &config)?;
    finish_tri(inst, delta, rls)
}

/// [`tri_objective_rls`] with an explicit reusable kernel workspace (the
/// E3 driver streams many instances through one). Bit-identical to
/// [`tri_objective_rls`].
pub fn tri_objective_rls_in(
    inst: &Instance,
    delta: f64,
    ws: &mut KernelWorkspace,
) -> Result<TriObjectiveResult, ModelError> {
    let config = RlsConfig::spt(delta);
    let rls = rls_independent_in(inst, &config, ws)?;
    finish_tri(inst, delta, rls)
}

fn finish_tri(
    inst: &Instance,
    delta: f64,
    rls: RlsResult,
) -> Result<TriObjectiveResult, ModelError> {
    let point = TriObjectivePoint::of_timed(inst, &rls.schedule);
    Ok(TriObjectiveResult {
        point,
        guarantee: corollary4_guarantee(delta, inst.m()),
        delta,
        rls,
    })
}

/// The Lemma 6 degradation factor: an SPT schedule restricted to a
/// fraction `ρ ∈ (0, 1]` of the processors is within `1/ρ + 1` of the SPT
/// value on all processors (and SPT is optimal for `P ∥ ΣC_i`).
pub fn lemma6_degradation(rho: f64) -> f64 {
    assert!(
        exceeds(rho, 0.0) && at_most(rho, 1.0),
        "Lemma 6 requires 0 < ρ ≤ 1"
    );
    1.0 / rho + 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_listsched::spt::{optimal_sum_completion, spt_schedule};
    use sws_model::validate::validate_timed;
    use sws_workloads::random::random_instance;
    use sws_workloads::rng::seeded_rng;
    use sws_workloads::TaskDistribution;

    fn workload(n: usize, m: usize, seed: u64) -> Instance {
        random_instance(
            n,
            m,
            TaskDistribution::AntiCorrelated,
            &mut seeded_rng(seed),
        )
    }

    #[test]
    fn guarantee_formula_matches_corollary_4() {
        let (gc, gm, gs) = corollary4_guarantee(3.0, 4);
        assert!((gc - 2.5).abs() < 1e-12);
        assert_eq!(gm, 3.0);
        assert!((gs - 3.0).abs() < 1e-12);
        // ∆ = 4: ΣCi guarantee 2 + 1/2 = 2.5.
        assert!((corollary4_guarantee(4.0, 8).2 - 2.5).abs() < 1e-12);
    }

    #[test]
    fn delta_must_exceed_two() {
        let inst = workload(10, 2, 1);
        assert!(tri_objective_rls(&inst, 2.0).is_err());
        assert!(tri_objective_rls(&inst, 2.1).is_ok());
    }

    #[test]
    fn all_three_guarantees_hold_against_their_references() {
        for seed in 0..5u64 {
            let inst = workload(40, 4, seed);
            for &delta in &[2.5, 3.0, 4.0, 6.0] {
                let result = tri_objective_rls(&inst, delta).unwrap();
                let report = result.ratio_report(&inst);
                assert!(report.within_guarantee(), "seed {seed} ∆ {delta}: {report}");
            }
        }
    }

    #[test]
    fn sum_completion_guarantee_holds_against_the_exact_spt_optimum() {
        // ΣCi's reference is exact (SPT is optimal for P ∥ ΣCi), so the
        // 2 + 1/(∆−2) bound is a true approximation-ratio check.
        for seed in 10..15u64 {
            let inst = random_instance(30, 3, TaskDistribution::Bimodal, &mut seeded_rng(seed));
            let opt = optimal_sum_completion(&inst);
            let result = tri_objective_rls(&inst, 3.0).unwrap();
            assert!(
                result.point.sum_ci <= (2.0 + 1.0) * opt + 1e-9,
                "seed {seed}: ΣCi {} > 3·{opt}",
                result.point.sum_ci
            );
        }
    }

    #[test]
    fn produced_schedule_is_feasible_and_caps_memory() {
        let inst = workload(25, 3, 42);
        let result = tri_objective_rls(&inst, 2.5).unwrap();
        let preds: Vec<Vec<usize>> = vec![Vec::new(); inst.n()];
        validate_timed(
            inst.tasks(),
            inst.m(),
            &result.rls.schedule,
            &preds,
            Some(result.rls.memory_cap),
        )
        .unwrap();
        assert!(result.point.mmax <= delta_cap(&result) + 1e-9);
    }

    fn delta_cap(result: &TriObjectiveResult) -> f64 {
        result.delta * result.rls.lb
    }

    #[test]
    fn with_a_huge_cap_sum_ci_matches_plain_spt_list_scheduling() {
        // When the memory restriction never bites, RLS with SPT ties is an
        // SPT list schedule, which is optimal for ΣCi.
        let inst =
            Instance::from_ps(&[4.0, 2.0, 7.0, 1.0, 3.0], &[1.0, 1.0, 1.0, 1.0, 1.0], 2).unwrap();
        let result = tri_objective_rls(&inst, 1e6).unwrap();
        let spt = spt_schedule(&inst);
        assert!((result.point.sum_ci - spt.sum_completion(inst.tasks())).abs() < 1e-9);
        assert!((result.point.sum_ci - optimal_sum_completion(&inst)).abs() < 1e-9);
    }

    #[test]
    fn lemma6_factor() {
        assert!((lemma6_degradation(1.0) - 2.0).abs() < 1e-12);
        assert!((lemma6_degradation(0.5) - 3.0).abs() < 1e-12);
        assert!(std::panic::catch_unwind(|| lemma6_degradation(0.0)).is_err());
        assert!(std::panic::catch_unwind(|| lemma6_degradation(1.5)).is_err());
    }
}
