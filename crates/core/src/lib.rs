//! # sws-core — Scheduling with Storage Constraints
//!
//! Reproduction of the algorithms and bounds of
//! *Scheduling with Storage Constraints* (Érik Saule, Pierre-François
//! Dutot, Grégory Mounié — IPDPS 2008, hal-00396303).
//!
//! The problem is `P | p_j, s_j | Cmax, Mmax`: schedule `n` tasks, each
//! with a processing time `p_i` and a storage requirement `s_i`, on `m`
//! identical processors while minimizing simultaneously the makespan and
//! the maximum per-processor *cumulative* memory occupation. The strictly
//! constrained variant ("`Cmax` subject to `Mmax ≤ M`") cannot be
//! approximated at all (its feasibility question is the NP-complete
//! decision version of `P ∥ Cmax`), which is why the paper turns the
//! constraint into a second objective.
//!
//! This crate provides:
//!
//! * [`sbo`] — **SBO∆** (Algorithm 1), the symmetric bi-objective
//!   combination of a makespan schedule and a memory schedule through the
//!   threshold rule `p_i/C < ∆·s_i/M`, with the
//!   `((1 + ∆)ρ₁, (1 + 1/∆)ρ₂)` guarantee and the `(1 + ∆ + ε, 1 + 1/∆ + ε)`
//!   instantiation on top of the Hochbaum–Shmoys PTAS (Corollary 1);
//! * [`rls`] — **RLS∆** (Algorithm 2), Restricted List Scheduling for
//!   precedence-constrained tasks, which forbids any processor from
//!   exceeding `∆ · LB` memory and achieves
//!   `(2 + 1/(∆−2) − (∆−1)/(m(∆−2)), ∆)` for `∆ > 2` (Corollary 3);
//! * [`tri`] — the Section 5.2 tri-objective extension: RLS∆ with SPT
//!   tie-breaking on independent tasks is additionally
//!   `(2 + 1/(∆−2))`-approximate on `ΣC_i` (Corollary 4);
//! * [`bounds`] — the inapproximability results of Section 4 (Lemmas
//!   1–3) as executable point families, the impossibility frontier of
//!   Figure 3 and the SBO∆ trade-off curve drawn on the same figure;
//! * [`constrained`] — the Section 7 procedure for the original
//!   industrial problem: derive the largest usable `∆` from a memory
//!   budget (precedence case) or binary-search `∆` (independent case);
//! * [`pipeline`] — end-to-end runners that schedule, simulate, validate
//!   and report achieved-versus-guaranteed ratios, shared by the
//!   examples, the integration tests and the benchmark harness.
//!
//! # Quick start
//!
//! ```
//! use sws_core::prelude::*;
//!
//! // An instance with anti-correlated time and memory requirements.
//! let inst = Instance::from_ps(
//!     &[8.0, 6.0, 1.0, 1.0, 4.0, 2.0],
//!     &[1.0, 2.0, 7.0, 9.0, 3.0, 5.0],
//!     2,
//! ).unwrap();
//!
//! // Trade the two objectives with ∆ = 1 on top of LPT schedules.
//! let result = sbo(&inst, &SboConfig::new(1.0, InnerAlgorithm::Lpt)).unwrap();
//! let point = ObjectivePoint::of_assignment(&inst, &result.assignment);
//! let (gc, gm) = result.guarantee;
//! assert!(point.cmax <= gc * result.reference_cmax + 1e-9);
//! assert!(point.mmax <= gm * result.reference_mmax + 1e-9);
//! ```

#![forbid(unsafe_code)]

pub mod batch;
pub mod bounds;
pub mod constrained;
pub mod dispatch;
pub mod heterogeneous;
pub mod pareto_sweep;
pub mod pipeline;
pub mod portfolio;
pub mod replan;
pub mod rls;
pub mod sbo;
pub mod tri;

pub use batch::{BatchAlgorithm, BatchReport, BatchScheduler, BatchSpec};
pub use bounds::{impossibility_frontier, lemma3_point, sbo_tradeoff_curve};
pub use constrained::{solve_dag_with_memory_budget, solve_with_memory_budget};
pub use dispatch::DispatchWorker;
pub use pareto_sweep::{
    rls_sweep, rls_sweep_cold, sbo_sweep, sbo_sweep_cold, SweepEngine, SweepProvenance,
};
pub use portfolio::{KernelWorkspace, Portfolio, SolvePlan, Solver};
pub use replan::{solve_from_scratch, ReplanEngine};
pub use rls::{
    rls, rls_guarantee, rls_in, rls_independent, rls_independent_in, PriorityOrder, RlsConfig,
    RlsEngine, RlsResult,
};
pub use sbo::{
    corollary1_guarantee, sbo, sbo_guarantee, InnerAlgorithm, SboConfig, SboEngine, SboResult,
};
pub use tri::{corollary4_guarantee, tri_objective_rls, tri_objective_rls_in};

/// Frequently used items, including the model-layer vocabulary.
pub mod prelude {
    pub use crate::batch::{BatchAlgorithm, BatchReport, BatchScheduler, BatchSpec};
    pub use crate::bounds::{
        impossibility_frontier, lemma1_points, lemma2_point, lemma3_point, sbo_tradeoff_curve,
        violates_impossibility,
    };
    pub use crate::constrained::{
        solve_dag_with_memory_budget, solve_with_memory_budget, ConstrainedOutcome,
    };
    pub use crate::dispatch::DispatchWorker;
    pub use crate::heterogeneous::{uniform_rls, uniform_rls_lpt, UniformMachines};
    pub use crate::pareto_sweep::{
        delta_grid, rls_sweep, rls_sweep_cold, sbo_sweep, sbo_sweep_cold, SweepEngine, SweepPoint,
        SweepProvenance,
    };
    pub use crate::pipeline::{
        evaluate_request, evaluate_rls, evaluate_rls_result, evaluate_routed, evaluate_sbo,
        evaluate_sbo_result, evaluate_solution, EvaluationReport,
    };
    pub use crate::portfolio::{Portfolio, SolvePlan, Solver};
    pub use crate::replan::{solve_from_scratch, ReplanEngine};
    pub use crate::rls::{
        rls, rls_guarantee, rls_in, rls_independent, rls_independent_in, PriorityOrder, RlsConfig,
        RlsEngine, RlsResult,
    };
    pub use crate::sbo::{
        corollary1_guarantee, sbo, sbo_guarantee, InnerAlgorithm, SboConfig, SboEngine, SboResult,
    };
    pub use crate::tri::{corollary4_guarantee, tri_objective_rls, TriObjectiveResult};
    pub use sws_model::prelude::*;
}
