//! Approximate Pareto-front generation by sweeping the trade-off
//! parameter ∆.
//!
//! The paper deliberately chooses the *absolute approximation* route over
//! Pareto-set approximation (Section 6), arguing that a human decision
//! maker is needed to pick from a Pareto set but that "all algorithms we
//! provide can be tuned using the ∆ parameter". This module operationalizes
//! that remark: it sweeps ∆ over a geometric grid, runs SBO∆ (independent
//! tasks) or RLS∆ (DAGs) for every value, and keeps the non-dominated
//! objective points. The result is a practical approximate trade-off
//! curve a user can pick from — exactly the decision-support tool the
//! paper's discussion implies, without any additional theory.
//!
//! The per-∆ runs are independent, so both sweeps fan the grid out
//! across all cores with rayon and merge the resulting points into the
//! [`ParetoFront`] at the barrier, in grid order — the produced curve is
//! bit-identical to the old serial loop's.

use rayon::prelude::*;

use sws_dag::DagInstance;
use sws_model::error::ModelError;
use sws_model::objectives::ObjectivePoint;
use sws_model::pareto::ParetoFront;
use sws_model::schedule::{Assignment, TimedSchedule};
use sws_model::Instance;

use crate::rls::{rls, RlsConfig};
use crate::sbo::{sbo, InnerAlgorithm, SboConfig};

/// One point of an approximate trade-off curve, tagged with the parameter
/// that produced it.
#[derive(Debug, Clone)]
pub struct SweepPoint<S> {
    /// The ∆ value that produced this schedule.
    pub delta: f64,
    /// The achieved objective values.
    pub point: ObjectivePoint,
    /// The schedule itself (an [`Assignment`] for independent tasks, a
    /// [`TimedSchedule`] for DAGs).
    pub schedule: S,
}

/// A geometric grid of `samples` values of ∆ spanning
/// `[delta_min, delta_max]`.
pub fn delta_grid(delta_min: f64, delta_max: f64, samples: usize) -> Vec<f64> {
    assert!(
        delta_min > 0.0 && delta_max >= delta_min,
        "need 0 < ∆min ≤ ∆max"
    );
    assert!(samples >= 1, "need at least one sample");
    if samples == 1 {
        return vec![delta_min];
    }
    let lo = delta_min.ln();
    let hi = delta_max.ln();
    (0..samples)
        .map(|j| (lo + j as f64 / (samples - 1) as f64 * (hi - lo)).exp())
        .collect()
}

/// Sweeps SBO∆ over a geometric ∆ grid and returns the non-dominated
/// achieved points, sorted by increasing makespan.
///
/// The two pure single-objective schedules (`∆ → 0` and `∆ → ∞` limits)
/// are always included, so the curve spans the full trade-off range the
/// inner algorithm can reach.
pub fn sbo_sweep(
    inst: &Instance,
    inner: InnerAlgorithm,
    delta_min: f64,
    delta_max: f64,
    samples: usize,
) -> Result<Vec<SweepPoint<Assignment>>, ModelError> {
    let mut deltas = delta_grid(delta_min, delta_max, samples);
    deltas.push(1e-9); // effectively π₁ only
    deltas.push(1e9); // effectively π₂ only
                      // Fan the ∆ grid out across cores; merge at the barrier in grid
                      // order so the front matches the serial loop exactly.
    let runs: Result<Vec<_>, ModelError> = deltas
        .into_par_iter()
        .map(|delta| {
            let result = sbo(inst, &SboConfig::new(delta, inner))?;
            let point = result.objective(inst);
            Ok((delta, point, result.assignment))
        })
        .collect();
    let mut front: ParetoFront<(f64, Assignment)> = ParetoFront::new();
    for (delta, point, assignment) in runs? {
        front.offer(point, (delta, assignment));
    }
    let mut points: Vec<SweepPoint<Assignment>> = front
        .into_sorted()
        .into_iter()
        .map(|(point, (delta, schedule))| SweepPoint {
            delta,
            point,
            schedule,
        })
        .collect();
    points.sort_by(|a, b| sws_model::numeric::total_cmp(a.point.cmax, b.point.cmax));
    Ok(points)
}

/// Sweeps RLS∆ over a geometric ∆ grid (all values must exceed 2) and
/// returns the non-dominated achieved points, sorted by increasing
/// makespan.
pub fn rls_sweep(
    inst: &DagInstance,
    config: &RlsConfig,
    delta_min: f64,
    delta_max: f64,
    samples: usize,
) -> Result<Vec<SweepPoint<TimedSchedule>>, ModelError> {
    if delta_min.partial_cmp(&2.0) != Some(std::cmp::Ordering::Greater) {
        return Err(ModelError::InvalidParameter {
            name: "delta_min",
            value: delta_min,
            constraint: "∆ > 2",
        });
    }
    let order = config.order;
    let runs: Result<Vec<_>, ModelError> = delta_grid(delta_min, delta_max, samples)
        .into_par_iter()
        .map(|delta| {
            let result = rls(inst, &RlsConfig { delta, order })?;
            let point = ObjectivePoint::of_timed_tasks(inst.tasks(), &result.schedule);
            Ok((delta, point, result.schedule))
        })
        .collect();
    let mut front: ParetoFront<(f64, TimedSchedule)> = ParetoFront::new();
    for (delta, point, schedule) in runs? {
        front.offer(point, (delta, schedule));
    }
    let mut points: Vec<SweepPoint<TimedSchedule>> = front
        .into_sorted()
        .into_iter()
        .map(|(point, (delta, schedule))| SweepPoint {
            delta,
            point,
            schedule,
        })
        .collect();
    points.sort_by(|a, b| sws_model::numeric::total_cmp(a.point.cmax, b.point.cmax));
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_exact::pareto_enum::pareto_front;
    use sws_model::validate::validate_assignment;
    use sws_workloads::dagsets::{dag_workload, DagFamily};
    use sws_workloads::random::random_instance;
    use sws_workloads::rng::seeded_rng;
    use sws_workloads::TaskDistribution;

    #[test]
    fn delta_grid_spans_the_requested_range_geometrically() {
        let grid = delta_grid(0.25, 4.0, 5);
        assert_eq!(grid.len(), 5);
        assert!((grid[0] - 0.25).abs() < 1e-9);
        assert!((grid[4] - 4.0).abs() < 1e-9);
        assert!((grid[2] - 1.0).abs() < 1e-9);
        assert_eq!(delta_grid(3.0, 8.0, 1), vec![3.0]);
        assert!(std::panic::catch_unwind(|| delta_grid(2.0, 1.0, 3)).is_err());
    }

    #[test]
    fn sbo_sweep_returns_a_mutually_non_dominated_curve() {
        let inst = random_instance(30, 4, TaskDistribution::AntiCorrelated, &mut seeded_rng(51));
        let curve = sbo_sweep(&inst, InnerAlgorithm::Lpt, 0.125, 8.0, 9).unwrap();
        assert!(!curve.is_empty());
        for w in curve.windows(2) {
            assert!(w[0].point.cmax <= w[1].point.cmax + 1e-9);
            if w[1].point.cmax > w[0].point.cmax + 1e-9 {
                assert!(
                    w[0].point.mmax + 1e-9 >= w[1].point.mmax,
                    "curve must trade memory for time"
                );
            }
        }
        for p in &curve {
            validate_assignment(&inst, &p.schedule, None).unwrap();
        }
    }

    #[test]
    fn sbo_sweep_endpoints_match_the_single_objective_schedules() {
        let inst = random_instance(25, 3, TaskDistribution::Uncorrelated, &mut seeded_rng(52));
        let curve = sbo_sweep(&inst, InnerAlgorithm::Lpt, 0.25, 4.0, 7).unwrap();
        let lpt_c = ObjectivePoint::of_assignment(&inst, &sws_listsched::lpt_cmax(&inst));
        let lpt_m = ObjectivePoint::of_assignment(&inst, &sws_listsched::lpt_mmax(&inst));
        // The best makespan on the curve is at least as good as the pure
        // makespan schedule's (it is included in the sweep), and likewise
        // for memory.
        assert!(curve.first().unwrap().point.cmax <= lpt_c.cmax + 1e-9);
        assert!(curve.last().unwrap().point.mmax <= lpt_m.mmax + 1e-9);
    }

    #[test]
    fn sbo_sweep_is_dominated_by_the_exact_front_but_not_absurdly_far() {
        let inst = random_instance(10, 2, TaskDistribution::AntiCorrelated, &mut seeded_rng(53));
        let exact = pareto_front(&inst);
        let curve = sbo_sweep(&inst, InnerAlgorithm::Lpt, 0.125, 8.0, 17).unwrap();
        for p in &curve {
            // Every heuristic point is covered by (weakly dominated by a
            // member of) the exact front.
            assert!(exact.covers(&p.point));
        }
    }

    #[test]
    fn rls_sweep_produces_feasible_trade_offs_on_dags() {
        let mut rng = seeded_rng(54);
        let inst = dag_workload(
            DagFamily::GaussianElimination,
            80,
            4,
            TaskDistribution::Bimodal,
            &mut rng,
        );
        let curve = rls_sweep(&inst, &RlsConfig::new(3.0), 2.1, 10.0, 8).unwrap();
        assert!(!curve.is_empty());
        for w in curve.windows(2) {
            assert!(w[0].point.cmax <= w[1].point.cmax + 1e-9);
            if w[1].point.cmax > w[0].point.cmax + 1e-9 {
                assert!(w[0].point.mmax + 1e-9 >= w[1].point.mmax);
            }
        }
        // Every point came from an admissible parameter value.
        assert!(curve.iter().all(|p| p.delta > 2.0));
    }

    #[test]
    fn rls_sweep_rejects_delta_min_at_or_below_two() {
        let mut rng = seeded_rng(55);
        let inst = dag_workload(
            DagFamily::Diamond,
            30,
            3,
            TaskDistribution::Correlated,
            &mut rng,
        );
        assert!(rls_sweep(&inst, &RlsConfig::new(3.0), 2.0, 5.0, 4).is_err());
    }
}
