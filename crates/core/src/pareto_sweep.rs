//! Approximate Pareto-front generation by sweeping the trade-off
//! parameter ∆ — **incrementally**.
//!
//! The paper deliberately chooses the *absolute approximation* route over
//! Pareto-set approximation (Section 6), arguing that a human decision
//! maker is needed to pick from a Pareto set but that "all algorithms we
//! provide can be tuned using the ∆ parameter". This module operationalizes
//! that remark: it sweeps ∆ over a geometric grid, runs SBO∆ (independent
//! tasks) or RLS∆ (DAGs) for every value, and keeps the non-dominated
//! objective points. The result is a practical approximate trade-off
//! curve a user can pick from — exactly the decision-support tool the
//! paper's discussion implies, without any additional theory.
//!
//! Since the incremental rework, adjacent grid points share their work
//! instead of re-running the schedulers from scratch:
//!
//! * **RLS∆** — the memory cap `∆·LB` grows monotonically along the
//!   sorted grid, so [`SweepEngine`] walks each chunk of consecutive ∆
//!   values as a warm chain ([`crate::rls::RlsEngine`] on top of the
//!   kernel's checkpoint/resume support): every run replays the previous
//!   one only from the first scheduling round whose admissibility
//!   verdict changes, and replays nothing once the cap stops binding.
//! * **SBO∆** — the two inner schedules `π₁`/`π₂` do not depend on ∆ at
//!   all, so [`crate::sbo::SboEngine`] computes them once and each grid
//!   point costs only the `O(n)` threshold routing.
//!
//! The rayon fan-out distributes **chunks of consecutive ∆ values** (one
//! warm chain per worker) and merges the chunk results at the barrier in
//! grid order, so the produced curve is bit-identical to the serial
//! from-scratch loop — the retained [`rls_sweep_cold`]/[`sbo_sweep_cold`]
//! oracles, which the differential suite checks point for point.
//!
//! Relation to the portfolio layer (`crate::portfolio`): a sweep is a
//! *chain* of bi-objective solves sharing warm state, so it deliberately
//! stays on the engines instead of issuing one `SolveRequest` per grid
//! point — per-request routing would forfeit the checkpoint/resume
//! speedups. One-shot callers should go through the portfolio; sweep
//! callers come here.
//!
//! **Front merge policy:** points are merged through
//! [`ParetoFront::offer_with`] with the tie-break "prefer the smaller ∆"
//! — among runs achieving the same objective point (up to tolerance) the
//! curve reports the smallest parameter. Merging always happens in grid
//! order (then the limit runs), so the curve is reproducible even in
//! sub-tolerance corner cases where the tolerant equivalence relation is
//! not transitive. The
//! π₁-only/π₂-only limit schedules are recorded as explicit
//! [`SweepProvenance`] limit runs with ∆ = 0 / ∆ = ∞, never as fake grid
//! values that could collide with a user-supplied range.

use rayon::prelude::*;

use sws_dag::DagInstance;
use sws_model::error::ModelError;
use sws_model::numeric::finite_gt;
use sws_model::objectives::ObjectivePoint;
use sws_model::pareto::ParetoFront;
use sws_model::schedule::{Assignment, TimedSchedule};
use sws_model::Instance;

use crate::rls::{rls, PriorityOrder, RlsConfig, RlsEngine, RlsResult};
use crate::sbo::{sbo, InnerAlgorithm, SboConfig, SboEngine};

/// How a sweep point was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepProvenance {
    /// A regular run at a ∆ value of the requested grid.
    Grid,
    /// The `∆ → 0⁺` limit run (π₁ only, reported with ∆ = 0).
    CmaxLimit,
    /// The `∆ → ∞` limit run (π₂ only, reported with ∆ = ∞).
    MmaxLimit,
}

/// One point of an approximate trade-off curve, tagged with the parameter
/// that produced it.
#[derive(Debug, Clone)]
pub struct SweepPoint<S> {
    /// The ∆ value that produced this schedule (`0` / `∞` for the two
    /// limit runs — see [`SweepPoint::provenance`]). Among runs achieving
    /// the same objective point, the smallest ∆ is reported.
    pub delta: f64,
    /// Whether the point came from the grid or from a limit run.
    pub provenance: SweepProvenance,
    /// The achieved objective values.
    pub point: ObjectivePoint,
    /// The schedule itself (an [`Assignment`] for independent tasks, a
    /// [`TimedSchedule`] for DAGs).
    pub schedule: S,
}

/// Validates that `[delta_min, delta_max]` is a finite positive range.
fn validate_bounds(delta_min: f64, delta_max: f64) -> Result<(), ModelError> {
    if !finite_gt(delta_min, 0.0) {
        return Err(ModelError::InvalidParameter {
            name: "delta_min",
            value: delta_min,
            constraint: "finite and > 0",
        });
    }
    if !delta_max.is_finite() || delta_max < delta_min {
        return Err(ModelError::InvalidParameter {
            name: "delta_max",
            value: delta_max,
            constraint: "finite and ≥ ∆min",
        });
    }
    Ok(())
}

/// A geometric grid of at most `samples` strictly increasing values of ∆
/// spanning `[delta_min, delta_max]`.
///
/// The endpoints are pinned to **exactly** `delta_min` and `delta_max`
/// (the interior points go through `ln`/`exp`, whose round-trip error
/// must not leak into the bounds), and adjacent equal values — possible
/// when the range is so tight the geometric spacing underflows — are
/// deduplicated. Rejects non-finite or non-positive bounds, an inverted
/// range, and `samples == 0`.
pub fn delta_grid(delta_min: f64, delta_max: f64, samples: usize) -> Result<Vec<f64>, ModelError> {
    validate_bounds(delta_min, delta_max)?;
    if samples == 0 {
        return Err(ModelError::InvalidParameter {
            name: "samples",
            value: samples as f64,
            constraint: "≥ 1",
        });
    }
    if samples == 1 {
        return Ok(vec![delta_min]);
    }
    let lo = delta_min.ln();
    let hi = delta_max.ln();
    let mut grid: Vec<f64> = (0..samples)
        .map(|j| {
            if j == 0 {
                delta_min
            } else if j == samples - 1 {
                delta_max
            } else {
                (lo + j as f64 / (samples - 1) as f64 * (hi - lo))
                    .exp()
                    .clamp(delta_min, delta_max)
            }
        })
        .collect();
    grid.dedup();
    Ok(grid)
}

/// Runs `run_chunk` over every chunk and flattens the results in input
/// order — inline on the calling thread when there is at most one chunk
/// (zero rayon dispatch overhead for single-worker runs), across the
/// rayon pool otherwise. Shared by the sweep engines and the batch
/// scheduler so the dispatch policy lives in one place.
pub(crate) fn run_chunks<T, R, F>(chunks: Vec<T>, run_chunk: F) -> Result<Vec<R>, ModelError>
where
    T: Send,
    R: Send,
    F: Fn(T) -> Result<Vec<R>, ModelError> + Sync,
{
    let per_chunk: Result<Vec<Vec<R>>, ModelError> = if chunks.len() <= 1 {
        chunks.into_iter().map(&run_chunk).collect()
    } else {
        chunks.into_par_iter().map(run_chunk).collect()
    };
    Ok(per_chunk?.into_iter().flatten().collect())
}

/// Warm-started ∆-sweep runner: splits a sorted ∆ grid into chunks of
/// consecutive values — one warm chain per rayon worker — runs every
/// chain independently, and returns the per-∆ results **in grid order**,
/// bit-identical to a serial from-scratch loop over the same grid.
#[derive(Debug, Clone, Copy)]
pub struct SweepEngine {
    workers: usize,
}

impl Default for SweepEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepEngine {
    /// One chunk per rayon worker thread.
    pub fn new() -> Self {
        Self::with_workers(rayon::current_num_threads().max(1))
    }

    /// Explicit chunk count (≥ 1); the produced results do not depend on
    /// it, only the wall-clock does.
    pub fn with_workers(workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        SweepEngine { workers }
    }

    /// Contiguous chunks of the grid, one per worker.
    fn chunked(&self, deltas: &[f64]) -> Vec<Vec<f64>> {
        if deltas.is_empty() {
            return Vec::new();
        }
        let chunk_len = deltas.len().div_ceil(self.workers);
        deltas.chunks(chunk_len).map(<[f64]>::to_vec).collect()
    }

    /// Runs RLS∆ for every ∆ of `deltas`, warm-starting within each
    /// chunk of consecutive values. Ascending grids warm-start every
    /// step; a descending step silently falls back to a cold run, so any
    /// grid is valid.
    ///
    /// One chunk runs **inline** on the calling thread — no rayon
    /// dispatch — so a single-worker sweep has zero fan-out overhead.
    /// Each worker chain owns one kernel workspace (inside its
    /// [`RlsEngine`]); the priority rank and the CSR instance mirror are
    /// computed once and shared by every chain.
    pub fn run_rls(
        &self,
        inst: &DagInstance,
        order: PriorityOrder,
        deltas: &[f64],
    ) -> Result<Vec<(f64, RlsResult)>, ModelError> {
        // One rank computation and one CSR flattening for the whole
        // sweep, shared by every per-worker chain.
        let csr = std::sync::Arc::new(inst.csr());
        let rank = std::sync::Arc::new(order.rank_csr(inst.graph(), &csr));
        run_chunks(self.chunked(deltas), |chunk| {
            let mut engine = RlsEngine::with_parts(
                inst,
                order,
                std::sync::Arc::clone(&rank),
                std::sync::Arc::clone(&csr),
            );
            chunk
                .into_iter()
                .map(|delta| Ok((delta, engine.run(delta)?)))
                .collect()
        })
    }

    /// Runs SBO∆'s threshold routing for every ∆ of `deltas` on a shared
    /// [`SboEngine`] (inner schedules already computed). Returns the
    /// combined assignments only — one `O(n)` routing pass per point,
    /// no per-point `π₁`/`π₂` clones. One chunk runs inline without
    /// rayon dispatch, like [`SweepEngine::run_rls`].
    pub fn run_sbo(
        &self,
        engine: &SboEngine<'_>,
        deltas: &[f64],
    ) -> Result<Vec<(f64, Assignment)>, ModelError> {
        run_chunks(self.chunked(deltas), |chunk| {
            chunk
                .into_iter()
                .map(|delta| Ok((delta, engine.assignment_at(delta)?)))
                .collect()
        })
    }
}

/// Payload stored in the sweep fronts: the producing ∆, its provenance
/// and the schedule.
type Tagged<S> = (f64, SweepProvenance, S);

/// Offers a run to the front under the documented merge policy: among
/// equivalent points the smaller ∆ wins (limit runs use 0 / ∞).
fn offer_run<S>(
    front: &mut ParetoFront<Tagged<S>>,
    delta: f64,
    provenance: SweepProvenance,
    point: ObjectivePoint,
    schedule: S,
) {
    front.offer_with(point, (delta, provenance, schedule), |new, old| {
        new.0 < old.0
    });
}

/// Offers the two SBO limit runs (π₁-only / π₂-only, the exact ∆ limits
/// of the threshold rule) to a sweep front. Shared by the warm and cold
/// entry points so they cannot drift apart.
fn offer_sbo_limit_runs(
    front: &mut ParetoFront<Tagged<Assignment>>,
    inst: &Instance,
    engine: &SboEngine<'_>,
) -> Result<(), ModelError> {
    for (delta, provenance, assignment) in [
        (0.0, SweepProvenance::CmaxLimit, engine.cmax_limit()?),
        (
            f64::INFINITY,
            SweepProvenance::MmaxLimit,
            engine.mmax_limit()?,
        ),
    ] {
        let point = ObjectivePoint::of_assignment(inst, &assignment);
        offer_run(front, delta, provenance, point, assignment);
    }
    Ok(())
}

/// Consumes a sweep front into the curve, sorted by increasing makespan.
fn into_curve<S>(front: ParetoFront<Tagged<S>>) -> Vec<SweepPoint<S>> {
    front
        .into_sorted()
        .into_iter()
        .map(|(point, (delta, provenance, schedule))| SweepPoint {
            delta,
            provenance,
            point,
            schedule,
        })
        .collect()
}

/// Sweeps SBO∆ over a geometric ∆ grid and returns the non-dominated
/// achieved points, sorted by increasing makespan.
///
/// The two pure single-objective schedules (the exact `∆ → 0` and
/// `∆ → ∞` limits of the threshold rule) are always included as explicit
/// limit runs — tagged [`SweepProvenance::CmaxLimit`] /
/// [`SweepProvenance::MmaxLimit`] with ∆ = 0 / ∆ = ∞ — so the curve
/// spans the full trade-off range the inner algorithm can reach without
/// injecting sentinel ∆ values that could collide with (or invert) the
/// user-supplied range.
pub fn sbo_sweep(
    inst: &Instance,
    inner: InnerAlgorithm,
    delta_min: f64,
    delta_max: f64,
    samples: usize,
) -> Result<Vec<SweepPoint<Assignment>>, ModelError> {
    let grid = delta_grid(delta_min, delta_max, samples)?;
    let engine = SboEngine::new(inst, inner)?;
    // Fan chunks of the ∆ grid out across cores; merge at the barrier in
    // grid order so the front matches the serial loop exactly.
    let runs = SweepEngine::new().run_sbo(&engine, &grid)?;
    let mut front: ParetoFront<Tagged<Assignment>> = ParetoFront::new();
    for (delta, assignment) in runs {
        let point = ObjectivePoint::of_assignment(inst, &assignment);
        offer_run(&mut front, delta, SweepProvenance::Grid, point, assignment);
    }
    offer_sbo_limit_runs(&mut front, inst, &engine)?;
    Ok(into_curve(front))
}

/// From-scratch serial SBO∆ sweep: one full [`sbo`] run per grid point,
/// merged in grid order. Differential oracle (and bench baseline) for
/// the engine-backed [`sbo_sweep`] — produces bit-identical curves while
/// recomputing the inner schedules for every point.
pub fn sbo_sweep_cold(
    inst: &Instance,
    inner: InnerAlgorithm,
    delta_min: f64,
    delta_max: f64,
    samples: usize,
) -> Result<Vec<SweepPoint<Assignment>>, ModelError> {
    let grid = delta_grid(delta_min, delta_max, samples)?;
    let mut front: ParetoFront<Tagged<Assignment>> = ParetoFront::new();
    for &delta in &grid {
        let result = sbo(inst, &SboConfig::new(delta, inner))?;
        let point = result.objective(inst);
        offer_run(
            &mut front,
            delta,
            SweepProvenance::Grid,
            point,
            result.assignment,
        );
    }
    let engine = SboEngine::new(inst, inner)?;
    offer_sbo_limit_runs(&mut front, inst, &engine)?;
    Ok(into_curve(front))
}

/// Validates the RLS-specific lower bound `∆min > 2`.
fn validate_rls_delta_min(delta_min: f64) -> Result<(), ModelError> {
    if !finite_gt(delta_min, 2.0) {
        return Err(ModelError::InvalidParameter {
            name: "delta_min",
            value: delta_min,
            constraint: "finite and ∆ > 2",
        });
    }
    Ok(())
}

/// Sweeps RLS∆ over a geometric ∆ grid (all values must exceed 2) and
/// returns the non-dominated achieved points, sorted by increasing
/// makespan. Adjacent grid points are warm-started through the kernel's
/// checkpoint/resume support; the curve is bit-identical to
/// [`rls_sweep_cold`]'s.
pub fn rls_sweep(
    inst: &DagInstance,
    config: &RlsConfig,
    delta_min: f64,
    delta_max: f64,
    samples: usize,
) -> Result<Vec<SweepPoint<TimedSchedule>>, ModelError> {
    validate_rls_delta_min(delta_min)?;
    let grid = delta_grid(delta_min, delta_max, samples)?;
    let runs = SweepEngine::new().run_rls(inst, config.order, &grid)?;
    let mut front: ParetoFront<Tagged<TimedSchedule>> = ParetoFront::new();
    for (delta, result) in runs {
        let point = ObjectivePoint::of_timed_tasks(inst.tasks(), &result.schedule);
        offer_run(
            &mut front,
            delta,
            SweepProvenance::Grid,
            point,
            result.schedule,
        );
    }
    Ok(into_curve(front))
}

/// From-scratch serial RLS∆ sweep: one cold [`rls`] run per grid point,
/// merged in grid order. Differential oracle (and bench baseline) for
/// the warm-started [`rls_sweep`].
pub fn rls_sweep_cold(
    inst: &DagInstance,
    config: &RlsConfig,
    delta_min: f64,
    delta_max: f64,
    samples: usize,
) -> Result<Vec<SweepPoint<TimedSchedule>>, ModelError> {
    validate_rls_delta_min(delta_min)?;
    let grid = delta_grid(delta_min, delta_max, samples)?;
    let order = config.order;
    let mut front: ParetoFront<Tagged<TimedSchedule>> = ParetoFront::new();
    for &delta in &grid {
        let result = rls(inst, &RlsConfig { delta, order })?;
        let point = ObjectivePoint::of_timed_tasks(inst.tasks(), &result.schedule);
        offer_run(
            &mut front,
            delta,
            SweepProvenance::Grid,
            point,
            result.schedule,
        );
    }
    Ok(into_curve(front))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_exact::pareto_enum::pareto_front;
    use sws_model::validate::validate_assignment;
    use sws_workloads::dagsets::{dag_workload, DagFamily};
    use sws_workloads::random::random_instance;
    use sws_workloads::rng::seeded_rng;
    use sws_workloads::TaskDistribution;

    #[test]
    fn delta_grid_spans_the_requested_range_geometrically() {
        let grid = delta_grid(0.25, 4.0, 5).unwrap();
        assert_eq!(grid.len(), 5);
        // Endpoints are *exact*, not ln/exp round-trips.
        assert_eq!(grid[0], 0.25);
        assert_eq!(grid[4], 4.0);
        assert!((grid[2] - 1.0).abs() < 1e-9);
        assert!(grid.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(delta_grid(3.0, 8.0, 1).unwrap(), vec![3.0]);
        assert!(delta_grid(2.0, 1.0, 3).is_err());
    }

    #[test]
    fn delta_grid_dedupes_a_degenerate_range() {
        let grid = delta_grid(3.0, 3.0, 9).unwrap();
        assert_eq!(grid, vec![3.0]);
    }

    #[test]
    fn delta_grid_rejects_invalid_parameters() {
        for (lo, hi) in [
            (f64::NAN, 4.0),
            (1.0, f64::NAN),
            (0.0, 4.0),
            (-1.0, 4.0),
            (f64::INFINITY, 4.0),
            (1.0, f64::INFINITY),
            (4.0, 1.0),
        ] {
            match delta_grid(lo, hi, 5) {
                Err(ModelError::InvalidParameter { .. }) => {}
                other => panic!("({lo}, {hi}) must be rejected, got {other:?}"),
            }
        }
        assert!(matches!(
            delta_grid(1.0, 2.0, 0),
            Err(ModelError::InvalidParameter {
                name: "samples",
                ..
            })
        ));
    }

    #[test]
    fn sbo_sweep_returns_a_mutually_non_dominated_curve() {
        let inst = random_instance(30, 4, TaskDistribution::AntiCorrelated, &mut seeded_rng(51));
        let curve = sbo_sweep(&inst, InnerAlgorithm::Lpt, 0.125, 8.0, 9).unwrap();
        assert!(!curve.is_empty());
        for w in curve.windows(2) {
            assert!(w[0].point.cmax <= w[1].point.cmax + 1e-9);
            if w[1].point.cmax > w[0].point.cmax + 1e-9 {
                assert!(
                    w[0].point.mmax + 1e-9 >= w[1].point.mmax,
                    "curve must trade memory for time"
                );
            }
        }
        for p in &curve {
            validate_assignment(&inst, &p.schedule, None).unwrap();
        }
    }

    #[test]
    fn sbo_sweep_endpoints_match_the_single_objective_schedules() {
        let inst = random_instance(25, 3, TaskDistribution::Uncorrelated, &mut seeded_rng(52));
        let curve = sbo_sweep(&inst, InnerAlgorithm::Lpt, 0.25, 4.0, 7).unwrap();
        let lpt_c = ObjectivePoint::of_assignment(&inst, &sws_listsched::lpt_cmax(&inst));
        let lpt_m = ObjectivePoint::of_assignment(&inst, &sws_listsched::lpt_mmax(&inst));
        // The best makespan on the curve is at least as good as the pure
        // makespan schedule's (it is included in the sweep), and likewise
        // for memory.
        assert!(curve.first().unwrap().point.cmax <= lpt_c.cmax + 1e-9);
        assert!(curve.last().unwrap().point.mmax <= lpt_m.mmax + 1e-9);
    }

    #[test]
    fn sbo_sweep_limit_runs_are_recorded_as_such() {
        let inst = random_instance(20, 3, TaskDistribution::AntiCorrelated, &mut seeded_rng(56));
        let curve = sbo_sweep(&inst, InnerAlgorithm::Lpt, 0.25, 4.0, 7).unwrap();
        for p in &curve {
            match p.provenance {
                SweepProvenance::Grid => {
                    assert!(
                        (0.25..=4.0).contains(&p.delta),
                        "grid ∆ {} off-range",
                        p.delta
                    )
                }
                SweepProvenance::CmaxLimit => assert_eq!(p.delta, 0.0),
                SweepProvenance::MmaxLimit => assert_eq!(p.delta, f64::INFINITY),
            }
        }
    }

    /// The old implementation appended sentinel ∆s `1e-9`/`1e9` to the
    /// grid, colliding with (or inverting) user ranges around `1e9`; the
    /// explicit limit runs must keep such ranges valid.
    #[test]
    fn sbo_sweep_supports_extreme_user_ranges() {
        let inst = random_instance(15, 3, TaskDistribution::Uncorrelated, &mut seeded_rng(57));
        let curve = sbo_sweep(&inst, InnerAlgorithm::Lpt, 1e-10, 1e12, 5).unwrap();
        assert!(!curve.is_empty());
        for p in &curve {
            if p.provenance == SweepProvenance::Grid {
                assert!((1e-10..=1e12).contains(&p.delta));
            }
        }
    }

    #[test]
    fn sweeps_reject_non_finite_bounds() {
        let inst = random_instance(10, 2, TaskDistribution::Uncorrelated, &mut seeded_rng(58));
        for (lo, hi) in [(f64::NAN, 8.0), (0.125, f64::NAN), (0.125, f64::INFINITY)] {
            assert!(
                sbo_sweep(&inst, InnerAlgorithm::Lpt, lo, hi, 5).is_err(),
                "({lo}, {hi}) must be rejected"
            );
        }
        let mut rng = seeded_rng(59);
        let dag = dag_workload(
            DagFamily::Diamond,
            20,
            2,
            TaskDistribution::Correlated,
            &mut rng,
        );
        for (lo, hi) in [
            (f64::NAN, 8.0),
            (f64::INFINITY, 8.0),
            (2.5, f64::NAN),
            (2.5, f64::INFINITY),
        ] {
            assert!(
                rls_sweep(&dag, &RlsConfig::new(3.0), lo, hi, 5).is_err(),
                "({lo}, {hi}) must be rejected"
            );
        }
    }

    #[test]
    fn sbo_sweep_is_dominated_by_the_exact_front_but_not_absurdly_far() {
        let inst = random_instance(10, 2, TaskDistribution::AntiCorrelated, &mut seeded_rng(53));
        let exact = pareto_front(&inst);
        let curve = sbo_sweep(&inst, InnerAlgorithm::Lpt, 0.125, 8.0, 17).unwrap();
        for p in &curve {
            // Every heuristic point is covered by (weakly dominated by a
            // member of) the exact front.
            assert!(exact.covers(&p.point));
        }
    }

    #[test]
    fn rls_sweep_produces_feasible_trade_offs_on_dags() {
        let mut rng = seeded_rng(54);
        let inst = dag_workload(
            DagFamily::GaussianElimination,
            80,
            4,
            TaskDistribution::Bimodal,
            &mut rng,
        );
        let curve = rls_sweep(&inst, &RlsConfig::new(3.0), 2.1, 10.0, 8).unwrap();
        assert!(!curve.is_empty());
        for w in curve.windows(2) {
            assert!(w[0].point.cmax <= w[1].point.cmax + 1e-9);
            if w[1].point.cmax > w[0].point.cmax + 1e-9 {
                assert!(w[0].point.mmax + 1e-9 >= w[1].point.mmax);
            }
        }
        // Every point came from an admissible parameter value.
        assert!(curve.iter().all(|p| p.delta > 2.0));
        assert!(curve.iter().all(|p| p.provenance == SweepProvenance::Grid));
    }

    #[test]
    fn rls_sweep_rejects_delta_min_at_or_below_two() {
        let mut rng = seeded_rng(55);
        let inst = dag_workload(
            DagFamily::Diamond,
            30,
            3,
            TaskDistribution::Correlated,
            &mut rng,
        );
        assert!(rls_sweep(&inst, &RlsConfig::new(3.0), 2.0, 5.0, 4).is_err());
    }

    /// Fast parity smoke test (the full family × order × m sweep lives in
    /// tests/differential_sweep.rs): the warm-started parallel sweeps
    /// must be bit-identical to the serial from-scratch oracles.
    #[test]
    fn warm_sweeps_match_the_cold_oracles() {
        let mut rng = seeded_rng(60);
        let dag = dag_workload(
            DagFamily::LayeredRandom,
            50,
            4,
            TaskDistribution::AntiCorrelated,
            &mut rng,
        );
        let warm = rls_sweep(&dag, &RlsConfig::new(3.0), 2.1, 12.0, 9).unwrap();
        let cold = rls_sweep_cold(&dag, &RlsConfig::new(3.0), 2.1, 12.0, 9).unwrap();
        assert_eq!(warm.len(), cold.len());
        for (w, c) in warm.iter().zip(&cold) {
            assert_eq!(w.delta, c.delta);
            assert_eq!(w.provenance, c.provenance);
            assert_eq!(w.schedule, c.schedule);
        }

        let inst = random_instance(25, 3, TaskDistribution::AntiCorrelated, &mut rng);
        let warm = sbo_sweep(&inst, InnerAlgorithm::Lpt, 0.125, 8.0, 9).unwrap();
        let cold = sbo_sweep_cold(&inst, InnerAlgorithm::Lpt, 0.125, 8.0, 9).unwrap();
        assert_eq!(warm.len(), cold.len());
        for (w, c) in warm.iter().zip(&cold) {
            assert_eq!(w.delta, c.delta);
            assert_eq!(w.provenance, c.provenance);
            assert_eq!(w.schedule, c.schedule);
        }
    }

    /// Chunking must not leak into the results: one chain over the whole
    /// grid and one chain per point produce the same runs.
    #[test]
    fn sweep_engine_results_do_not_depend_on_the_chunking() {
        let mut rng = seeded_rng(61);
        let dag = dag_workload(
            DagFamily::ForkJoin,
            40,
            4,
            TaskDistribution::Bimodal,
            &mut rng,
        );
        let grid = delta_grid(2.2, 9.0, 7).unwrap();
        let single = SweepEngine::with_workers(1)
            .run_rls(&dag, PriorityOrder::Index, &grid)
            .unwrap();
        let many = SweepEngine::with_workers(grid.len())
            .run_rls(&dag, PriorityOrder::Index, &grid)
            .unwrap();
        assert_eq!(single.len(), many.len());
        for ((da, ra), (db, rb)) in single.iter().zip(&many) {
            assert_eq!(da, db);
            assert_eq!(ra.schedule, rb.schedule);
            assert_eq!(ra.marked, rb.marked);
        }
    }
}
