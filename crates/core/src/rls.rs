//! RLS∆ — Restricted List Scheduling (Algorithm 2 of the paper) for
//! precedence-constrained tasks.
//!
//! The algorithm first computes the Graham lower bound on the optimal
//! memory consumption, `LB = max(max_i s_i, Σ s_i / m)`, and then never
//! lets a processor's cumulative memory exceed `∆·LB`. Subject to that
//! restriction it behaves like Graham list scheduling: among the ready
//! tasks it repeatedly schedules the one that can start the soonest on the
//! least-loaded *admissible* processor.
//!
//! The analysis (Lemmas 4 and 5, Corollaries 2 and 3) shows that for
//! `∆ > 2`
//!
//! * at most `⌊m/(∆−1)⌋` processors are ever "marked" (passed over because
//!   of the memory restriction),
//! * the schedule is `∆`-approximate on `Mmax`, and
//! * the schedule is `(2 + 1/(∆−2) − (∆−1)/(m(∆−2)))`-approximate on
//!   `Cmax`.
//!
//! The paper's pseudo-code leaves the order in which ties between equally
//! ready tasks are broken free ("an arbitrary total ordering of tasks");
//! [`PriorityOrder`] exposes the orderings used by the evaluation,
//! including the SPT order required by the Section 5.2 tri-objective
//! extension.
//!
//! Since the event-driven rework, [`rls`] runs on the shared scheduling
//! kernel (`sws_listsched::kernel`) with the memory restriction supplied
//! as an admissibility predicate — `O((n + E)·log n + n·log m)` as long
//! as memory rejections on the least-loaded processor stay rare (they
//! are, on every measured workload; the kernel's module docs state the
//! worst case) instead of the original `O(n²·m)` scan, which survives
//! as the differential oracle [`naive::rls`].

use sws_dag::{CsrDag, DagInstance, TaskGraph};
use sws_listsched::kernel::{
    event_driven_schedule, event_driven_schedule_csr, CheckpointedRun, KernelWorkspace,
    MemoryCapAdmission,
};
use sws_listsched::priority::{
    hlf_priority, index_priority, largest_storage_priority, largest_storage_priority_csr,
    lpt_priority, lpt_priority_csr, spt_priority, spt_priority_csr, PriorityRank,
};
use sws_model::bounds::mmax_lower_bound;
use sws_model::error::ModelError;
use sws_model::numeric::{exceeds, finite_gt};
use sws_model::objectives::ObjectivePoint;
use sws_model::schedule::TimedSchedule;
use sws_model::solve::{BackendId, BoundReport, Guarantee, Solution, SolveStats};
use sws_model::task::TaskSet;
use sws_model::Instance;

/// Tie-breaking order used by RLS∆ when several tasks can start at the
/// same earliest time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PriorityOrder {
    /// Task index order — the paper's "arbitrary total ordering".
    #[default]
    Index,
    /// Shortest Processing Time first — the order required by the
    /// tri-objective extension (Corollary 4).
    Spt,
    /// Longest Processing Time first.
    Lpt,
    /// Highest (bottom) Level First — critical-path-aware priority,
    /// the classical HLF/HLFET rule.
    BottomLevel,
    /// Largest storage requirement first — packs memory-hungry tasks
    /// early, an ablation of the memory restriction.
    LargestStorage,
}

impl PriorityOrder {
    /// Every order, in the order used by the experiment tables.
    pub fn all() -> [PriorityOrder; 5] {
        [
            PriorityOrder::Index,
            PriorityOrder::Spt,
            PriorityOrder::Lpt,
            PriorityOrder::BottomLevel,
            PriorityOrder::LargestStorage,
        ]
    }

    /// A short label for experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            PriorityOrder::Index => "index",
            PriorityOrder::Spt => "spt",
            PriorityOrder::Lpt => "lpt",
            PriorityOrder::BottomLevel => "bottom-level",
            PriorityOrder::LargestStorage => "largest-storage",
        }
    }

    /// Builds the rank vector (lower rank = preferred) for a graph.
    pub fn rank(&self, graph: &TaskGraph) -> PriorityRank {
        match self {
            PriorityOrder::Index => index_priority(graph.n()),
            PriorityOrder::Spt => spt_priority(graph),
            PriorityOrder::Lpt => lpt_priority(graph),
            PriorityOrder::BottomLevel => hlf_priority(graph),
            PriorityOrder::LargestStorage => largest_storage_priority(graph),
        }
    }

    /// [`PriorityOrder::rank`] from a prebuilt CSR mirror: cost-keyed
    /// orders sort by the instance's quantized `u32` cost ranks instead
    /// of `f64` comparators (same permutation, cheaper sort — see
    /// [`sws_listsched::priority::spt_priority_csr`]). Bottom-level
    /// priorities derive summed levels, which the cost table cannot
    /// represent, so that arm still walks the nested graph.
    pub fn rank_csr(&self, graph: &TaskGraph, csr: &CsrDag) -> PriorityRank {
        match self {
            PriorityOrder::Index => index_priority(csr.n()),
            PriorityOrder::Spt => spt_priority_csr(csr),
            PriorityOrder::Lpt => lpt_priority_csr(csr),
            PriorityOrder::BottomLevel => hlf_priority(graph),
            PriorityOrder::LargestStorage => largest_storage_priority_csr(csr),
        }
    }
}

/// Configuration of one RLS∆ run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RlsConfig {
    /// The memory degradation factor `∆ > 2`: no processor may use more
    /// than `∆·LB` memory.
    pub delta: f64,
    /// Tie-breaking order among equally ready tasks.
    pub order: PriorityOrder,
}

impl RlsConfig {
    /// Creates a configuration with the paper's arbitrary (index) order.
    pub fn new(delta: f64) -> Self {
        RlsConfig {
            delta,
            order: PriorityOrder::Index,
        }
    }

    /// Replaces the tie-breaking order.
    pub fn with_order(mut self, order: PriorityOrder) -> Self {
        self.order = order;
        self
    }

    /// The Corollary 4 configuration: SPT tie-breaking.
    pub fn spt(delta: f64) -> Self {
        RlsConfig {
            delta,
            order: PriorityOrder::Spt,
        }
    }
}

/// The output of RLS∆.
#[derive(Debug, Clone)]
pub struct RlsResult {
    /// The produced schedule `(π, σ)`.
    pub schedule: TimedSchedule,
    /// The Graham memory lower bound `LB = max(max_i s_i, Σ s_i / m)`.
    pub lb: f64,
    /// The memory cap enforced on every processor, `∆·LB`.
    pub memory_cap: f64,
    /// Which processors were marked during the run (passed over at least
    /// once because placing the candidate task would exceed the cap).
    pub marked: Vec<bool>,
    /// The proven guarantee `(2 + 1/(∆−2) − (∆−1)/(m(∆−2)), ∆)` — ratios
    /// to `C*max` and `M*max` (Corollary 3).
    pub guarantee: (f64, f64),
    /// The configuration the result was produced with.
    pub config: RlsConfig,
}

impl RlsResult {
    /// Objective values of the schedule against a task set.
    pub fn objective(&self, tasks: &TaskSet) -> ObjectivePoint {
        ObjectivePoint::of_timed_tasks(tasks, &self.schedule)
    }

    /// Number of marked processors.
    pub fn marked_count(&self) -> usize {
        self.marked.iter().filter(|&&b| b).count()
    }

    /// The Lemma 4 bound on the number of marked processors,
    /// `⌊m/(∆−1)⌋`.
    pub fn marked_bound(&self) -> usize {
        lemma4_marked_bound(self.schedule.m(), self.config.delta)
    }

    /// Packages the run in the unified solver vocabulary
    /// (`sws_model::solve`): schedule, achieved point, the Corollary 3
    /// guarantee and the solve provenance. Consumes the result so the
    /// schedule moves instead of cloning — the portfolio backends build
    /// their `Solution` from a local temporary, and the batch serving
    /// path must stay free of per-item copies.
    pub fn into_solution(
        self,
        tasks: &TaskSet,
        backend: BackendId,
        bounds: BoundReport,
        workspace_reused: bool,
    ) -> Solution {
        let point = self.objective(tasks);
        Solution {
            point,
            sum_ci: None,
            achieved: Guarantee::PaperRatio,
            ratio_bound: Some(self.guarantee),
            stats: SolveStats {
                backend,
                rounds: self.schedule.n(),
                workspace_reused,
                bounds,
                cost: None,
                attempts: 1,
            },
            schedule: self.schedule,
        }
    }
}

/// The Lemma 4 bound on the number of marked processors: `⌊m/(∆−1)⌋`.
pub fn lemma4_marked_bound(m: usize, delta: f64) -> usize {
    (m as f64 / (delta - 1.0)).floor() as usize
}

/// The Corollary 3 guarantee of RLS∆ on `m` processors:
/// `(2 + 1/(∆−2) − (∆−1)/(m(∆−2)), ∆)` for `∆ > 2`.
pub fn rls_guarantee(delta: f64, m: usize) -> (f64, f64) {
    assert!(exceeds(delta, 2.0), "the RLS guarantee requires ∆ > 2");
    let m = m as f64;
    (
        2.0 + 1.0 / (delta - 2.0) - (delta - 1.0) / (m * (delta - 2.0)),
        delta,
    )
}

/// Validates the RLS parameter `∆ > 2` (finite). Shared with the batch
/// serving path so the accepted parameter range can never drift.
pub(crate) fn validate_rls_delta(delta: f64) -> Result<(), ModelError> {
    if !finite_gt(delta, 2.0) {
        return Err(ModelError::InvalidParameter {
            name: "delta",
            value: delta,
            constraint: "∆ > 2",
        });
    }
    Ok(())
}

/// The Graham memory lower bound `LB = max(max_i s_i, Σ s_i / m)`
/// (`0` for an empty instance). Depends only on the instance, so warm
/// engines compute it once. Shared with the batch serving path so the
/// enforced cap can never drift from [`rls`]'s.
pub(crate) fn memory_lb(tasks: &TaskSet, m: usize) -> f64 {
    if tasks.is_empty() {
        0.0
    } else {
        mmax_lower_bound(tasks, m)
    }
}

/// Validates `∆` and computes `(LB, ∆·LB)` for an instance.
fn delta_lb_cap(tasks: &TaskSet, m: usize, config: &RlsConfig) -> Result<(f64, f64), ModelError> {
    validate_rls_delta(config.delta)?;
    let lb = memory_lb(tasks, m);
    Ok((lb, config.delta * lb))
}

/// Runs RLS∆ (Algorithm 2) on a precedence-constrained instance.
///
/// Returns an error when `∆ ≤ 2`: Lemma 4 shows that smaller values may
/// mark every processor, leaving some task impossible to place.
///
/// This is the event-driven implementation: the shared scheduling kernel
/// with the `memsize[q] + s_i ≤ ∆·LB` restriction plugged in as the
/// admissibility predicate. The kernel marks processors from the winning
/// probe only (the paper's "for analysis only" semantics); the retained
/// [`naive::rls`] oracle marks conservatively while evaluating every
/// candidate, so the kernel's marked set is a subset of the oracle's and
/// both satisfy the Lemma 4 bound.
pub fn rls(inst: &DagInstance, config: &RlsConfig) -> Result<RlsResult, ModelError> {
    let m = inst.m();
    validate_rls_delta(config.delta)?;
    // The instance caches its Graham memory bound (serving paths must
    // not pay the task-set pass per request); `delta_lb_cap` computes
    // the same value for callers without a `DagInstance`.
    let lb = inst.mmax_lower_bound();
    let cap = config.delta * lb;
    let rank = config.order.rank(inst.graph());
    let mut admission = MemoryCapAdmission::new(m, cap);
    let outcome = event_driven_schedule(inst, &rank, &mut admission)?;
    Ok(RlsResult {
        schedule: outcome.schedule,
        lb,
        memory_cap: cap,
        marked: outcome.marked,
        guarantee: rls_guarantee(config.delta, m),
        config: *config,
    })
}

/// [`rls`] with an explicit reusable kernel workspace: the CSR instance
/// mirror and the priority rank are still computed per call (they are
/// per-instance), and the admissibility predicate's `O(m)`
/// committed-memory vector is still allocated per call; every *kernel*
/// buffer comes from `ws`. Callers that also want the admission vector
/// reused should go through [`crate::batch::BatchScheduler`] or
/// [`RlsEngine::run_detached`], which hold a resettable
/// [`MemoryCapAdmission`]. Bit-identical to [`rls`].
pub fn rls_in(
    inst: &DagInstance,
    config: &RlsConfig,
    ws: &mut KernelWorkspace,
) -> Result<RlsResult, ModelError> {
    let m = inst.m();
    validate_rls_delta(config.delta)?;
    let lb = inst.mmax_lower_bound();
    let cap = config.delta * lb;
    let csr = inst.csr();
    let rank = config.order.rank_csr(inst.graph(), &csr);
    let mut admission = MemoryCapAdmission::new(m, cap);
    let outcome = event_driven_schedule_csr(&csr, m, &rank, &mut admission, ws)?;
    Ok(RlsResult {
        schedule: outcome.schedule,
        lb,
        memory_cap: cap,
        marked: outcome.marked,
        guarantee: rls_guarantee(config.delta, m),
        config: *config,
    })
}

/// Runs RLS∆ on an *independent-task* instance (the tri-objective setting
/// of Section 5.2 and the constrained-problem procedure of Section 7).
pub fn rls_independent(inst: &Instance, config: &RlsConfig) -> Result<RlsResult, ModelError> {
    let graph = TaskGraph::new(inst.tasks().clone());
    let dag = DagInstance::new(graph, inst.m())?;
    rls(&dag, config)
}

/// [`rls_independent`] with an explicit reusable kernel workspace (see
/// [`rls_in`]). Bit-identical to [`rls_independent`].
pub fn rls_independent_in(
    inst: &Instance,
    config: &RlsConfig,
    ws: &mut KernelWorkspace,
) -> Result<RlsResult, ModelError> {
    let graph = TaskGraph::new(inst.tasks().clone());
    let dag = DagInstance::new(graph, inst.m())?;
    rls_in(&dag, config, ws)
}

/// Warm-startable RLS∆ engine over one instance: runs a *chain* of ∆
/// values, warm-starting each run from the previous one through the
/// kernel's checkpoint/resume support ([`CheckpointedRun`]).
///
/// The memory cap `∆·LB` grows with ∆, so along an ascending ∆ chain the
/// admissible processor sets only grow and each run replays the previous
/// one up to the first scheduling round whose admissibility verdict
/// changes — often zero rounds once the cap stops binding. Every run's
/// output is **bit-identical** to a from-scratch [`rls`] call at the
/// same ∆ (the differential suite checks this schedule for schedule); a
/// descending step is valid too, it just falls back to a cold run.
///
/// This is the per-worker building block of the incremental ∆-sweeps in
/// [`crate::pareto_sweep`].
#[derive(Debug)]
pub struct RlsEngine<'a> {
    inst: &'a DagInstance,
    order: PriorityOrder,
    rank: std::sync::Arc<PriorityRank>,
    /// Flat CSR mirror of the instance, built once per engine and shared
    /// with every checkpointed run of the chain.
    csr: std::sync::Arc<CsrDag>,
    /// The Graham memory lower bound, computed once (it only depends on
    /// the instance).
    lb: f64,
    /// Reusable kernel buffers: every run of this engine — warm or
    /// detached — draws its per-run state from here.
    ws: KernelWorkspace,
    /// Reusable admissibility predicate for detached runs.
    admission: MemoryCapAdmission,
    last: Option<CheckpointedRun<'a>>,
}

impl<'a> RlsEngine<'a> {
    /// An engine with no warm state yet; the first [`RlsEngine::run`]
    /// is a cold run.
    pub fn new(inst: &'a DagInstance, order: PriorityOrder) -> Self {
        let csr = std::sync::Arc::new(inst.csr());
        let rank = std::sync::Arc::new(order.rank_csr(inst.graph(), &csr));
        Self::with_parts(inst, order, rank, csr)
    }

    /// Like [`RlsEngine::new`], but with a precomputed priority rank for
    /// `order` on this instance — lets a sweep share one rank across its
    /// per-worker chains instead of recomputing the same DAG traversal
    /// per worker.
    pub fn with_rank(
        inst: &'a DagInstance,
        order: PriorityOrder,
        rank: std::sync::Arc<PriorityRank>,
    ) -> Self {
        Self::with_parts(inst, order, rank, std::sync::Arc::new(inst.csr()))
    }

    /// Like [`RlsEngine::with_rank`], but additionally sharing a
    /// prebuilt CSR instance mirror — lets a sweep flatten the instance
    /// once for all its per-worker chains.
    pub fn with_parts(
        inst: &'a DagInstance,
        order: PriorityOrder,
        rank: std::sync::Arc<PriorityRank>,
        csr: std::sync::Arc<CsrDag>,
    ) -> Self {
        assert_eq!(csr.n(), inst.n(), "CSR mirror must match the instance");
        let m = inst.m();
        RlsEngine {
            inst,
            order,
            rank,
            csr,
            lb: inst.mmax_lower_bound(),
            ws: KernelWorkspace::with_capacity(inst.n(), m),
            admission: MemoryCapAdmission::new(m, f64::INFINITY),
            last: None,
        }
    }

    /// Runs RLS∆ at `delta`, warm-starting from the previous run of this
    /// engine when one exists.
    pub fn run(&mut self, delta: f64) -> Result<RlsResult, ModelError> {
        validate_rls_delta(delta)?;
        let config = RlsConfig {
            delta,
            order: self.order,
        };
        let cap = delta * self.lb;
        let run = match &self.last {
            Some(prev) => prev.resume_in(cap, &mut self.ws)?,
            None => CheckpointedRun::cold_in(
                self.inst,
                std::sync::Arc::clone(&self.csr),
                std::sync::Arc::clone(&self.rank),
                cap,
                &mut self.ws,
            )?,
        };
        let result = RlsResult {
            schedule: run.outcome().schedule.clone(),
            lb: self.lb,
            memory_cap: cap,
            marked: run.outcome().marked.clone(),
            guarantee: rls_guarantee(delta, self.inst.m()),
            config,
        };
        self.last = Some(run);
        Ok(result)
    }

    /// A **full from-scratch** RLS∆ run at `delta` that reuses the
    /// engine's CSR mirror, priority rank, cached lower bound and kernel
    /// workspace, but neither consults nor records the warm chain (no
    /// checkpointing overhead). This is the steady-state serving path —
    /// every scheduling round executes, with zero per-run buffer
    /// allocation. Bit-identical to a one-shot [`rls`] call.
    pub fn run_detached(&mut self, delta: f64) -> Result<RlsResult, ModelError> {
        validate_rls_delta(delta)?;
        let m = self.inst.m();
        let cap = delta * self.lb;
        self.admission.reset(m, cap);
        let outcome =
            event_driven_schedule_csr(&self.csr, m, &self.rank, &mut self.admission, &mut self.ws)?;
        Ok(RlsResult {
            schedule: outcome.schedule,
            lb: self.lb,
            memory_cap: cap,
            marked: outcome.marked,
            guarantee: rls_guarantee(delta, m),
            config: RlsConfig {
                delta,
                order: self.order,
            },
        })
    }

    /// Rounds the kernel actually executed for the most recent
    /// [`RlsEngine::run`] (`n` for a cold run, `0` for a divergence-free
    /// resume); `None` before the first run. Exposed for tests and sweep
    /// telemetry.
    pub fn replayed_rounds(&self) -> Option<usize> {
        self.last.as_ref().map(CheckpointedRun::replayed_rounds)
    }
}

/// The original `O(n²·m)` implementation of RLS∆, retained verbatim as
/// the differential-testing oracle for the kernel path (only the ad-hoc
/// float tolerances were replaced by the shared
/// [`sws_model::numeric`] helpers).
pub mod naive {
    use sws_model::numeric::{approx_le, better_candidate};

    use super::*;

    /// Naive RLS∆: each round rescans every unscheduled task and every
    /// processor. Produces the same schedule as [`super::rls`]; its
    /// `marked` set is a superset (it marks while evaluating every
    /// candidate, not just the selected one) that still satisfies the
    /// Lemma 4 bound.
    pub fn rls(inst: &DagInstance, config: &RlsConfig) -> Result<RlsResult, ModelError> {
        let graph = inst.graph();
        let tasks = inst.tasks();
        let n = graph.n();
        let m = inst.m();
        let (lb, cap) = delta_lb_cap(tasks, m, config)?;
        let rank = config.order.rank(graph);

        let mut load = vec![0.0f64; m];
        let mut memsize = vec![0.0f64; m];
        let mut marked = vec![false; m];
        let mut scheduled = vec![false; n];
        let mut completion = vec![0.0f64; n];
        let mut remaining_preds: Vec<usize> = (0..n).map(|i| graph.in_degree(i)).collect();
        let mut proc_of = vec![0usize; n];
        let mut start = vec![0.0f64; n];

        for _round in 0..n {
            // For every ready task, find the least-loaded processor whose
            // memory stays within ∆·LB, and the earliest start time
            // there. `best` holds (ready time, tie-break rank, task,
            // processor).
            let mut best: Option<(f64, u32, usize, usize)> = None;
            for i in 0..n {
                if scheduled[i] || remaining_preds[i] != 0 {
                    continue;
                }
                let s_i = tasks.get(i).s;
                let choice = admissible_argmin(&load, &memsize, s_i, cap);
                let j = match choice {
                    Some(j) => j,
                    // Mathematically impossible for ∆ > 2 (the Lemma 4
                    // counting argument), but guard against degenerate
                    // floating-point inputs rather than looping forever.
                    None => {
                        return Err(ModelError::MemoryExceeded {
                            proc: 0,
                            used: memsize.iter().cloned().fold(0.0, f64::max) + s_i,
                            capacity: cap,
                        })
                    }
                };
                // "for analysis only": mark every processor that was less
                // loaded than the chosen one — it was skipped because of
                // the memory restriction.
                for (q, &l) in load.iter().enumerate() {
                    if l < load[j] && !approx_le(memsize[q] + s_i, cap) {
                        marked[q] = true;
                    }
                }
                let pred_ready = graph
                    .preds(i)
                    .iter()
                    .map(|&p| completion[p])
                    .fold(0.0f64, f64::max);
                let ready = pred_ready.max(load[j]);
                let candidate = (ready, rank[i], i, j);
                let better = match best {
                    None => true,
                    Some(cur) => {
                        better_candidate(candidate.0, candidate.1 as usize, cur.0, cur.1 as usize)
                    }
                };
                if better {
                    best = Some(candidate);
                }
            }
            let (ready, _rank, i, j) =
                best.expect("an acyclic graph always has a ready task while tasks remain");
            proc_of[i] = j;
            start[i] = ready;
            completion[i] = ready + tasks.get(i).p;
            load[j] = completion[i];
            memsize[j] += tasks.get(i).s;
            scheduled[i] = true;
            for &v in graph.succs(i) {
                remaining_preds[v] -= 1;
            }
        }

        let schedule = TimedSchedule::new(proc_of, start, m)?;
        Ok(RlsResult {
            schedule,
            lb,
            memory_cap: cap,
            marked,
            guarantee: rls_guarantee(config.delta, m),
            config: *config,
        })
    }

    /// Index of the least-loaded processor whose memory stays within
    /// `cap` after adding `s`; ties broken towards the lowest index.
    /// `None` when no processor is admissible.
    fn admissible_argmin(load: &[f64], memsize: &[f64], s: f64, cap: f64) -> Option<usize> {
        let mut best: Option<usize> = None;
        for q in 0..load.len() {
            if !approx_le(memsize[q] + s, cap) {
                continue;
            }
            match best {
                None => best = Some(q),
                Some(b) => {
                    if load[q] < load[b] {
                        best = Some(q);
                    }
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_dag::generators::{chain::chain, forkjoin::fork_join, gauss::gaussian_elimination};
    use sws_model::bounds::cmax_lower_bound_prec;
    use sws_model::validate::validate_timed;
    use sws_workloads::dagsets::{dag_workload, DagFamily};
    use sws_workloads::rng::seeded_rng;
    use sws_workloads::TaskDistribution;

    fn check_feasible(inst: &DagInstance, result: &RlsResult) {
        validate_timed(
            inst.tasks(),
            inst.m(),
            &result.schedule,
            inst.graph().all_preds(),
            Some(result.memory_cap.max(result.lb)),
        )
        .expect("RLS schedule must be feasible and respect the memory cap");
    }

    #[test]
    fn rejects_delta_at_or_below_two() {
        let inst = DagInstance::new(chain(3), 2).unwrap();
        for delta in [2.0, 1.0, 0.0, -3.0, f64::NAN] {
            assert!(
                rls(&inst, &RlsConfig::new(delta)).is_err(),
                "∆ = {delta} must be rejected"
            );
        }
        assert!(rls(&inst, &RlsConfig::new(2.0 + 1e-9)).is_ok());
    }

    #[test]
    fn chain_is_executed_sequentially_regardless_of_the_cap() {
        let inst = DagInstance::new(chain(6), 3).unwrap();
        let result = rls(&inst, &RlsConfig::new(3.0)).unwrap();
        check_feasible(&inst, &result);
        assert!((result.schedule.cmax(inst.tasks()) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn memory_cap_is_respected_on_every_processor() {
        let mut rng = seeded_rng(11);
        for family in DagFamily::all() {
            let inst = dag_workload(family, 80, 4, TaskDistribution::AntiCorrelated, &mut rng);
            for &delta in &[2.25, 3.0, 4.5] {
                let result = rls(&inst, &RlsConfig::new(delta)).unwrap();
                check_feasible(&inst, &result);
                let mmax = result.objective(inst.tasks()).mmax;
                assert!(
                    mmax <= delta * result.lb + 1e-9,
                    "{}: Mmax {} exceeds ∆·LB {}",
                    family.label(),
                    mmax,
                    delta * result.lb
                );
            }
        }
    }

    #[test]
    fn corollary_3_makespan_bound_holds_against_the_lower_bound() {
        let mut rng = seeded_rng(12);
        for family in [
            DagFamily::LayeredRandom,
            DagFamily::GaussianElimination,
            DagFamily::Fft,
        ] {
            for &m in &[2usize, 4, 8] {
                let inst = dag_workload(family, 120, m, TaskDistribution::Uncorrelated, &mut rng);
                for &delta in &[2.5, 3.0, 5.0] {
                    let result = rls(&inst, &RlsConfig::new(delta)).unwrap();
                    let cp = inst.critical_path_length();
                    let lb_c = cmax_lower_bound_prec(inst.tasks(), m, cp);
                    let cmax = result.schedule.cmax(inst.tasks());
                    let (gc, _gm) = result.guarantee;
                    assert!(
                        cmax <= gc * lb_c * (1.0 + 1e-9) + 1e-9,
                        "{} m={m} ∆={delta}: cmax {cmax} > {gc}·{lb_c}",
                        family.label()
                    );
                }
            }
        }
    }

    #[test]
    fn lemma_4_marked_processor_bound_holds() {
        let mut rng = seeded_rng(13);
        for &m in &[3usize, 6, 12] {
            let inst = dag_workload(
                DagFamily::LayeredRandom,
                150,
                m,
                TaskDistribution::Bimodal,
                &mut rng,
            );
            for &delta in &[2.25, 2.5, 3.0, 4.0] {
                let result = rls(&inst, &RlsConfig::new(delta)).unwrap();
                assert!(
                    result.marked_count() <= result.marked_bound(),
                    "m={m} ∆={delta}: {} marked > bound {}",
                    result.marked_count(),
                    result.marked_bound()
                );
            }
        }
    }

    #[test]
    fn large_delta_reduces_to_plain_list_scheduling() {
        // With an enormous cap the restriction never bites, so the result
        // must match the unrestricted Graham DAG list scheduler.
        let inst = DagInstance::new(gaussian_elimination(6), 3).unwrap();
        let result = rls(&inst, &RlsConfig::new(1e9)).unwrap();
        let unrestricted = sws_listsched::dag_list_schedule(
            &inst,
            &sws_listsched::priority::index_priority(inst.n()),
        );
        assert!(
            (result.schedule.cmax(inst.tasks()) - unrestricted.cmax(inst.tasks())).abs() < 1e-9
        );
        assert_eq!(result.marked_count(), 0);
    }

    #[test]
    fn independent_wrapper_matches_the_dag_path() {
        let inst = Instance::from_ps(
            &[5.0, 3.0, 8.0, 1.0, 2.0, 7.0],
            &[2.0, 9.0, 1.0, 6.0, 4.0, 3.0],
            3,
        )
        .unwrap();
        let via_wrapper = rls_independent(&inst, &RlsConfig::new(3.0)).unwrap();
        let dag = DagInstance::new(TaskGraph::new(inst.tasks().clone()), 3).unwrap();
        let via_dag = rls(&dag, &RlsConfig::new(3.0)).unwrap();
        assert_eq!(via_wrapper.schedule, via_dag.schedule);
        let point = via_wrapper.objective(inst.tasks());
        assert!(point.mmax <= 3.0 * via_wrapper.lb + 1e-9);
    }

    #[test]
    fn spt_order_schedules_short_tasks_first_on_independent_tasks() {
        let inst = Instance::from_ps(&[9.0, 1.0, 5.0], &[1.0, 1.0, 1.0], 1).unwrap();
        let result = rls_independent(&inst, &RlsConfig::spt(4.0)).unwrap();
        // On a single machine SPT starts the shortest task first.
        assert_eq!(result.schedule.start(1), 0.0);
        assert!(result.schedule.start(0) > result.schedule.start(2));
    }

    #[test]
    fn fork_join_respects_precedence_under_a_tight_cap() {
        let graph = fork_join(2, 5).with_costs(|i| sws_model::task::Task {
            p: 1.0 + (i % 3) as f64,
            s: 1.0 + (i % 4) as f64,
        });
        let inst = DagInstance::new(graph, 3).unwrap();
        let result = rls(&inst, &RlsConfig::new(2.25)).unwrap();
        check_feasible(&inst, &result);
    }

    #[test]
    fn guarantee_formula_matches_the_paper() {
        // ∆ = 3, m = 4: 2 + 1 − 2/(4·1) = 2.5.
        let (gc, gm) = rls_guarantee(3.0, 4);
        assert!((gc - 2.5).abs() < 1e-12);
        assert_eq!(gm, 3.0);
        // Substituting ∆ = 2 + ∆' must match the alternative form
        // (2 + 1/∆' − (∆'+1)/(m·∆'), 2 + ∆').
        let dprime = 1.5;
        let (gc2, gm2) = rls_guarantee(2.0 + dprime, 5);
        assert!((gc2 - (2.0 + 1.0 / dprime - (dprime + 1.0) / (5.0 * dprime))).abs() < 1e-12);
        assert!((gm2 - (2.0 + dprime)).abs() < 1e-12);
    }

    #[test]
    fn marked_bound_formula() {
        assert_eq!(lemma4_marked_bound(10, 3.0), 5);
        assert_eq!(lemma4_marked_bound(10, 6.0), 2);
        assert_eq!(lemma4_marked_bound(4, 2.5), 2);
    }

    #[test]
    fn empty_instance_yields_an_empty_schedule() {
        let inst =
            DagInstance::new(TaskGraph::new(TaskSet::from_ps(&[], &[]).unwrap()), 2).unwrap();
        let result = rls(&inst, &RlsConfig::new(3.0)).unwrap();
        assert_eq!(result.schedule.n(), 0);
        assert_eq!(result.lb, 0.0);
    }

    #[test]
    fn all_priority_orders_produce_feasible_schedules() {
        let mut rng = seeded_rng(14);
        let inst = dag_workload(DagFamily::Lu, 60, 4, TaskDistribution::Correlated, &mut rng);
        for order in PriorityOrder::all() {
            let result = rls(&inst, &RlsConfig::new(3.0).with_order(order)).unwrap();
            check_feasible(&inst, &result);
        }
    }

    /// The kernel path must agree schedule-for-schedule with the naive
    /// oracle, and its lazily-computed marked set must be a subset of the
    /// oracle's conservative one (the full family × order × m sweep lives
    /// in tests/differential_kernel.rs).
    #[test]
    fn kernel_matches_the_naive_oracle() {
        let mut rng = seeded_rng(15);
        for family in [
            DagFamily::LayeredRandom,
            DagFamily::ForkJoin,
            DagFamily::Erdos,
        ] {
            let inst = dag_workload(family, 70, 4, TaskDistribution::AntiCorrelated, &mut rng);
            for &delta in &[2.25, 3.0, 6.0] {
                let config = RlsConfig::new(delta);
                let fast = rls(&inst, &config).unwrap();
                let slow = naive::rls(&inst, &config).unwrap();
                assert_eq!(
                    fast.schedule,
                    slow.schedule,
                    "{} ∆={delta}: kernel and naive schedules differ",
                    family.label()
                );
                assert_eq!(fast.lb, slow.lb);
                for q in 0..inst.m() {
                    assert!(
                        !fast.marked[q] || slow.marked[q],
                        "{} ∆={delta}: kernel marked processor {q} the oracle did not",
                        family.label()
                    );
                }
                assert!(fast.marked_count() <= fast.marked_bound());
            }
        }
    }

    /// A warm ∆ chain must reproduce the from-scratch runs bit for bit,
    /// and skip the whole replay once the cap stops binding.
    #[test]
    fn warm_chain_matches_cold_runs_exactly() {
        let mut rng = seeded_rng(16);
        let inst = dag_workload(
            DagFamily::LayeredRandom,
            90,
            4,
            TaskDistribution::AntiCorrelated,
            &mut rng,
        );
        let mut engine = RlsEngine::new(&inst, PriorityOrder::BottomLevel);
        for &delta in &[2.1, 2.25, 2.5, 3.0, 4.0, 8.0, 64.0, 65.0] {
            let warm = engine.run(delta).unwrap();
            let cold = rls(
                &inst,
                &RlsConfig::new(delta).with_order(PriorityOrder::BottomLevel),
            )
            .unwrap();
            assert_eq!(warm.schedule, cold.schedule, "∆={delta}");
            assert_eq!(warm.marked, cold.marked, "∆={delta}");
            assert_eq!(warm.lb, cold.lb);
            assert_eq!(warm.memory_cap, cold.memory_cap);
        }
        // By ∆ = 65 the cap is far beyond any rejection recorded at
        // ∆ = 64, so the final resume replays nothing.
        assert_eq!(engine.replayed_rounds(), Some(0));
    }

    /// The workspace-threaded and detached-engine paths must be
    /// bit-identical to the one-shot entry point, including when one
    /// workspace is shared across runs over different instances.
    #[test]
    fn workspace_paths_match_the_one_shot_entry_point() {
        let mut rng = seeded_rng(17);
        let a = dag_workload(
            DagFamily::LayeredRandom,
            80,
            4,
            TaskDistribution::AntiCorrelated,
            &mut rng,
        );
        let b = dag_workload(
            DagFamily::ForkJoin,
            30,
            6,
            TaskDistribution::Bimodal,
            &mut rng,
        );
        let mut ws = sws_listsched::KernelWorkspace::new();
        for inst in [&a, &b, &a] {
            for &delta in &[2.25, 3.0, 8.0] {
                let config = RlsConfig::new(delta);
                let one_shot = rls(inst, &config).unwrap();
                let via_ws = rls_in(inst, &config, &mut ws).unwrap();
                assert_eq!(via_ws.schedule, one_shot.schedule, "∆={delta}");
                assert_eq!(via_ws.marked, one_shot.marked, "∆={delta}");
                assert_eq!(via_ws.lb, one_shot.lb);
            }
        }
        let mut engine = RlsEngine::new(&a, PriorityOrder::Index);
        for &delta in &[2.25, 3.0, 8.0, 2.5] {
            let detached = engine.run_detached(delta).unwrap();
            let one_shot = rls(&a, &RlsConfig::new(delta)).unwrap();
            assert_eq!(detached.schedule, one_shot.schedule, "∆={delta}");
            assert_eq!(detached.marked, one_shot.marked, "∆={delta}");
        }
        // Detached runs and warm runs can interleave on one engine
        // without corrupting either path.
        let warm = engine.run(3.0).unwrap();
        let detached = engine.run_detached(3.0).unwrap();
        assert_eq!(warm.schedule, detached.schedule);
        let warm2 = engine.run(4.0).unwrap();
        assert_eq!(
            warm2.schedule,
            rls(&a, &RlsConfig::new(4.0)).unwrap().schedule
        );
    }

    #[test]
    fn warm_chain_rejects_invalid_deltas_without_corrupting_state() {
        let inst = DagInstance::new(gaussian_elimination(5), 3).unwrap();
        let mut engine = RlsEngine::new(&inst, PriorityOrder::Index);
        let before = engine.run(3.0).unwrap();
        for bad in [2.0, 0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(engine.run(bad).is_err(), "∆ = {bad} must be rejected");
        }
        // The failed runs left the chain untouched.
        let after = engine.run(3.0).unwrap();
        assert_eq!(before.schedule, after.schedule);
    }
}
