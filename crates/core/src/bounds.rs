//! The inapproximability results of Section 4 as executable data.
//!
//! The paper proves that certain pairs of approximation ratios
//! `(ratio on Cmax, ratio on Mmax)` cannot be achieved by any algorithm
//! producing a single schedule:
//!
//! * **Lemma 1** — nothing better than `(1, 2)` or `(2, 1)`;
//! * **Lemma 2** — for every `m, k ≥ 2` and `i ∈ {0..k}`, nothing better
//!   than `(1 + i/(km), 1 + (m − 1)(1 − i/k))`; the family is continuous
//!   in `i/k` and symmetric under swapping the two objectives;
//! * **Lemma 3** — nothing better than `(3/2, 3/2)`.
//!
//! Figure 3 of the paper plots the impossibility domain for `m = 2..6`
//! together with the trade-off curve `(1 + ∆, 1 + 1/∆)` achieved by SBO∆
//! (Section 3). This module regenerates all of those series and offers a
//! checker that tells whether a claimed ratio pair falls inside the
//! impossible region.

use sws_model::numeric::{at_least, exceeds, strictly_lt};

/// A single impossibility witness: the ratio pair that no algorithm can
/// beat, together with the instance parameters that prove it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImpossibilityWitness {
    /// The ratio pair `(Cmax ratio, Mmax ratio)` that cannot be improved
    /// upon simultaneously.
    pub point: (f64, f64),
    /// Which lemma the witness comes from.
    pub lemma: Lemma,
}

/// The lemma a witness or frontier point originates from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lemma {
    /// Lemma 1: the `(1, 2)` / `(2, 1)` corner points.
    Lemma1,
    /// Lemma 2 with parameters `(m, k, i)`.
    Lemma2 { m: usize, k: usize, i: usize },
    /// Lemma 3: the `(3/2, 3/2)` point.
    Lemma3,
}

/// The two corner points of Lemma 1: no algorithm is better than `(1, 2)`
/// or, symmetrically, `(2, 1)`.
pub fn lemma1_points() -> [(f64, f64); 2] {
    [(1.0, 2.0), (2.0, 1.0)]
}

/// The Lemma 2 ratio pair `(1 + i/(km), 1 + (m − 1)(1 − i/k))`.
///
/// # Panics
/// Panics when `m < 2`, `k < 2` or `i > k` (outside the lemma's domain).
pub fn lemma2_point(m: usize, k: usize, i: usize) -> (f64, f64) {
    assert!(m >= 2 && k >= 2, "Lemma 2 requires m, k ≥ 2");
    assert!(i <= k, "Lemma 2 requires i ∈ {{0..k}}");
    (
        1.0 + i as f64 / (k * m) as f64,
        1.0 + (m - 1) as f64 * (1.0 - i as f64 / k as f64),
    )
}

/// The Lemma 3 point: no algorithm is better than `(3/2, 3/2)`.
pub fn lemma3_point() -> (f64, f64) {
    (1.5, 1.5)
}

/// The Lemma 2 staircase for a fixed number of processors `m`: the ratio
/// pairs for `i = 0..=k`, ordered by increasing `Cmax` ratio. This is one
/// of the solid curves of Figure 3.
pub fn impossibility_frontier(m: usize, k: usize) -> Vec<(f64, f64)> {
    (0..=k).map(|i| lemma2_point(m, k, i)).collect()
}

/// The SBO∆ trade-off curve of Figure 3 (the dashed line): the guarantee
/// pairs `(1 + ∆, 1 + 1/∆)` sampled at `samples` logarithmically spaced
/// values of `∆ ∈ [delta_min, delta_max]`.
pub fn sbo_tradeoff_curve(delta_min: f64, delta_max: f64, samples: usize) -> Vec<(f64, f64)> {
    assert!(
        exceeds(delta_min, 0.0) && at_least(delta_max, delta_min),
        "need 0 < ∆min ≤ ∆max"
    );
    assert!(samples >= 2, "need at least two samples");
    let log_lo = delta_min.ln();
    let log_hi = delta_max.ln();
    (0..samples)
        .map(|j| {
            let t = j as f64 / (samples - 1) as f64;
            let delta = (log_lo + t * (log_hi - log_lo)).exp();
            (1.0 + delta, 1.0 + 1.0 / delta)
        })
        .collect()
}

/// Checks whether a claimed guarantee `(cmax_ratio, mmax_ratio)` is
/// impossible according to Lemmas 1–3, scanning Lemma 2 parameters up to
/// `max_m` processors and granularity `max_k`. Both the pair and its
/// swap are tested (the paper's results are symmetric). Returns the first
/// witness found, or `None` when the pair is not (known to be) impossible.
pub fn impossibility_witness(
    cmax_ratio: f64,
    mmax_ratio: f64,
    max_m: usize,
    max_k: usize,
) -> Option<ImpossibilityWitness> {
    let candidates = [(cmax_ratio, mmax_ratio), (mmax_ratio, cmax_ratio)];
    for &(a, b) in &candidates {
        // Lemma 3: strictly better than (3/2, 3/2) on both objectives.
        if strictly_lt(a, 1.5) && strictly_lt(b, 1.5) {
            return Some(ImpossibilityWitness {
                point: lemma3_point(),
                lemma: Lemma::Lemma3,
            });
        }
        // Lemma 1 is the (m = 2, i = 0) / (i = k) end of Lemma 2 but is
        // kept explicit for clarity of the witnesses.
        if strictly_lt(a, 1.0) && strictly_lt(b, 2.0) {
            return Some(ImpossibilityWitness {
                point: (1.0, 2.0),
                lemma: Lemma::Lemma1,
            });
        }
        // Lemma 2 family.
        for m in 2..=max_m.max(2) {
            for k in 2..=max_k.max(2) {
                for i in 0..=k {
                    let (x, y) = lemma2_point(m, k, i);
                    if strictly_lt(a, x) && strictly_lt(b, y) {
                        return Some(ImpossibilityWitness {
                            point: (x, y),
                            lemma: Lemma::Lemma2 { m, k, i },
                        });
                    }
                }
            }
        }
    }
    None
}

/// True when the claimed guarantee pair is impossible according to
/// Lemmas 1–3 (see [`impossibility_witness`]).
pub fn violates_impossibility(
    cmax_ratio: f64,
    mmax_ratio: f64,
    max_m: usize,
    max_k: usize,
) -> bool {
    impossibility_witness(cmax_ratio, mmax_ratio, max_m, max_k).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sbo::sbo_guarantee;

    #[test]
    fn lemma2_specializes_to_lemma1_on_two_processors() {
        // m = 2, i = 0: (1, 1 + (2-1)·1) = (1, 2).
        assert_eq!(lemma2_point(2, 4, 0), (1.0, 2.0));
        // i = k: (1 + 1/m, 1) — close to but weaker than (2, 1); Lemma 1's
        // symmetric point comes from swapping the objectives.
        let (c, m) = lemma2_point(2, 4, 4);
        assert!((c - 1.5).abs() < 1e-12);
        assert_eq!(m, 1.0);
    }

    #[test]
    fn lemma2_matches_the_adversarial_instance_pareto_points() {
        // The ratio pair must equal the Pareto point of the Section 4.2
        // instance divided by the optimum (C* = 1, M* = k + ε → k as ε→0).
        for &(m, k) in &[(2usize, 3usize), (3, 4), (5, 6)] {
            for i in 0..=k {
                let (rc, rm) = lemma2_point(m, k, i);
                let (pc, pm) = sws_workloads::adversarial::lemma2_pareto_point(m, k, i, 1e-12);
                assert!((rc - pc / 1.0).abs() < 1e-9);
                if i < k {
                    assert!((rm - pm / k as f64).abs() < 1e-9, "m={m} k={k} i={i}");
                }
            }
        }
    }

    #[test]
    fn frontier_is_monotone_in_the_trade_off() {
        let frontier = impossibility_frontier(4, 16);
        assert_eq!(frontier.len(), 17);
        for w in frontier.windows(2) {
            assert!(w[0].0 <= w[1].0, "Cmax ratios must be non-decreasing");
            assert!(w[0].1 >= w[1].1, "Mmax ratios must be non-increasing");
        }
        // Ends: i = 0 gives (1, m) and i = k gives (1 + 1/m, 1).
        assert_eq!(frontier[0], (1.0, 4.0));
        assert!((frontier[16].0 - 1.25).abs() < 1e-12);
        assert_eq!(frontier[16].1, 1.0);
    }

    #[test]
    fn the_three_halves_point_is_impossible_to_beat() {
        let w = impossibility_witness(1.4, 1.4, 6, 8).unwrap();
        assert_eq!(w.lemma, Lemma::Lemma3);
        assert!(violates_impossibility(1.49, 1.49, 2, 2));
        assert!(!violates_impossibility(1.5, 1.5, 6, 64));
    }

    #[test]
    fn lemma1_corners_are_impossible_to_beat() {
        assert!(violates_impossibility(0.999, 1.999, 2, 2));
        // Symmetric check.
        assert!(violates_impossibility(1.999, 0.999, 2, 2));
        // On two processors exactly (1, 2) is on the border, not inside.
        assert!(!violates_impossibility(1.0, 2.0, 2, 64));
        // With more processors Lemma 2 strengthens the bound: even (1, 2)
        // becomes unachievable (the m = 3 staircase reaches (1, 3)).
        assert!(violates_impossibility(1.0, 2.0, 3, 64));
    }

    #[test]
    fn an_exact_algorithm_on_both_objectives_is_impossible() {
        assert!(violates_impossibility(1.0 - 1e-6, 1.0, 6, 16));
        assert!(violates_impossibility(1.0, 1.0 + 1e-6, 6, 16));
    }

    #[test]
    fn large_m_makes_low_cmax_ratios_require_large_memory_ratios() {
        // With m = 6 and a fine staircase (large k) the region near the
        // Cmax-optimal axis requires memory ratios approaching 6: a
        // claimed (0.999, 5.9) guarantee is impossible.
        assert!(violates_impossibility(0.999, 5.9, 6, 64));
        // ... but possible as soon as the memory ratio reaches 6.
        assert!(!violates_impossibility(1.0, 6.0, 6, 64));
    }

    #[test]
    fn sbo_guarantees_never_fall_in_the_impossible_region() {
        // The paper draws the (1 + ∆, 1 + 1/∆) curve strictly outside the
        // impossibility domain; verify over a wide ∆ sweep against a fine
        // Lemma 2 discretization.
        for &delta in &[0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
            let (gc, gm) = sbo_guarantee(delta, 1.0, 1.0);
            assert!(
                !violates_impossibility(gc, gm, 6, 64),
                "SBO guarantee ({gc}, {gm}) for ∆ = {delta} claimed impossible"
            );
        }
    }

    #[test]
    fn tradeoff_curve_spans_the_requested_delta_range() {
        let curve = sbo_tradeoff_curve(0.25, 4.0, 9);
        assert_eq!(curve.len(), 9);
        assert!((curve[0].0 - 1.25).abs() < 1e-9);
        assert!((curve[0].1 - 5.0).abs() < 1e-9);
        assert!((curve[8].0 - 5.0).abs() < 1e-9);
        assert!((curve[8].1 - 1.25).abs() < 1e-9);
        // ∆ = 1 sits in the middle of the symmetric sweep.
        assert!((curve[4].0 - 2.0).abs() < 1e-9);
        assert!((curve[4].1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn tradeoff_curve_rejects_bad_parameters() {
        assert!(std::panic::catch_unwind(|| sbo_tradeoff_curve(0.0, 1.0, 4)).is_err());
        assert!(std::panic::catch_unwind(|| sbo_tradeoff_curve(2.0, 1.0, 4)).is_err());
        assert!(std::panic::catch_unwind(|| sbo_tradeoff_curve(1.0, 2.0, 1)).is_err());
    }

    #[test]
    fn lemma2_domain_is_enforced() {
        assert!(std::panic::catch_unwind(|| lemma2_point(1, 2, 0)).is_err());
        assert!(std::panic::catch_unwind(|| lemma2_point(2, 1, 0)).is_err());
        assert!(std::panic::catch_unwind(|| lemma2_point(2, 2, 3)).is_err());
    }
}
