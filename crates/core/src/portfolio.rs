//! The unified `Solver` backend layer and the portfolio that
//! auto-selects among the workspace's schedulers.
//!
//! Every algorithm in the workspace — the event-driven kernel
//! list-schedulers, the naive differential oracle, the exact solvers,
//! the Hochbaum–Shmoys PTAS and the classic single-objective heuristics —
//! is wrapped as a [`Solver`] speaking the model-layer vocabulary of
//! `sws_model::solve`: a [`SolveRequest`] in, a [`Solution`] out. The
//! [`Portfolio`] routes each request to the *cheapest registered backend
//! that satisfies the required guarantee*, so callers never hardcode an
//! algorithm again.
//!
//! # Selection policy
//!
//! Selection is a two-step filter-then-rank, deterministic and
//! documented (see also `docs/ALGORITHMS.md`):
//!
//! 1. **Filter.** A backend *qualifies* when it structurally serves the
//!    request: objective mode, instance kind (independent / DAG), the
//!    required [`Guarantee`] level, and its own feasibility gates —
//!    `∆ > 2` for the RLS∆ backends, `m^n ≤ 2^20` for the exhaustive
//!    enumerator ([`EXACT_ENUM_WORK_LIMIT`]), `n ≤ 18` for the
//!    branch-and-bound ([`EXACT_BNB_MAX_N`]), and an affordable
//!    configuration-DP estimate for the PTAS
//!    (`sws_ptas::dp_work_affordable`, mirroring `DP_WORK_LIMIT`).
//! 2. **Rank.** Among qualifying backends the lowest rank wins (ties:
//!    registration order). Ranks encode the documented cost ladder:
//!
//!    | rank | backends |
//!    |-----:|----------|
//!    | 10   | exact, when the instance is *tiny* (`m^n ≤ 2^12`, [`EXACT_AUTO_WORK`]) — optimal answers are then cheaper than arguing about ratios |
//!    | 20–28 | classic `O(n log n)` heuristics (LPT, then MULTIFIT, then Graham) |
//!    | 30–35 | kernel schedulers (SBO∆ / RLS∆ / tri-objective RLS / DAG list / constrained search) |
//!    | 50   | PTAS (only route that *proves* `1 + ε` short of exact) |
//!    | 90   | exact, non-tiny but still inside its feasibility gates |
//!    | 240  | the naive RLS oracle — registered for differential testing, never auto-preferred |
//!
//! When no backend qualifies the portfolio returns
//! [`ModelError::NoQualifiedBackend`] — e.g. an `Exact` request on a
//! 1000-task instance, an ε-optimal request whose rounding DP would not
//! fit the work limit, or any guarantee-demanding request on objective
//! modes that are provably inapproximable (the independent-task
//! memory-budget mode, Section 2.2 of the paper).
//!
//! # Zero-cost discipline
//!
//! The trait layer resolves the backend **once per request** (one
//! virtual call), never inside scheduling rounds; the kernel backends
//! delegate to the same monomorphized `rls_in`/`tri_objective_rls_in`
//! entry points the pre-portfolio callers used, threading a
//! caller-supplied [`KernelWorkspace`] through [`Portfolio::solve_in`]
//! exactly like the batch serving path. `tests/differential_portfolio.rs`
//! enforces that the kernel-backend path is bit-identical to calling
//! `rls`/`rls_in` directly.

use sws_dag::{DagInstance, TaskGraph};
use sws_listsched::kernel::Unrestricted;
// Re-exported so downstream crates (e.g. the service layer's fault
// harness) can implement [`Solver`] without depending on the kernel
// crate directly.
pub use sws_listsched::kernel::KernelWorkspace;
use sws_listsched::priority::index_priority;
use sws_listsched::{
    event_driven_schedule_csr, graham_cmax, lpt_cmax, multifit_cmax, spt_schedule,
};
use sws_model::bounds::mmax_lower_bound;
use sws_model::error::ModelError;
use sws_model::numeric::{exceeds, finite_gt};
use sws_model::objectives::ObjectivePoint;
use sws_model::schedule::Assignment;
use sws_model::solve::{
    BackendId, BoundReport, BoundSource, CostEstimate, CostModel, Guarantee, ObjectiveMode,
    PrecedenceInstance, RequestInstance, Solution, SolveRequest, SolveStats,
};
use sws_model::Instance;

use crate::constrained::{
    solve_dag_with_memory_budget_in, solve_with_memory_budget, ConstrainedOutcome,
    DagConstrainedOutcome,
};
use crate::rls::{naive, rls_in, rls_independent_in, RlsConfig};
use crate::sbo::{sbo, InnerAlgorithm, SboConfig};
use crate::tri::tri_objective_rls_in;

/// Exhaustive Pareto enumeration qualifies only while `m^n` stays at or
/// below this bound (`2^20 ≈ 10^6` visited assignments before symmetry
/// pruning).
pub const EXACT_ENUM_WORK_LIMIT: u64 = 1 << 20;

/// Below this `m^n` the exact solvers are preferred over every heuristic
/// (`2^12 = 4096` assignments — cheaper than reasoning about ratios).
pub const EXACT_AUTO_WORK: u64 = 1 << 12;

/// The branch-and-bound single-objective optimum qualifies up to this
/// many tasks (the `sws_exact` crate documents `n ≈ 16–20` as its
/// practical envelope).
pub const EXACT_BNB_MAX_N: usize = 18;

/// The accuracy the PTAS backend uses when a request does not pin one
/// (i.e. the required guarantee is below `EpsilonOptimal`).
pub const DEFAULT_PTAS_EPS: f64 = 0.2;

// Selection ranks — see the module docs table.
const RANK_EXACT_TINY: u32 = 10;
const RANK_LPT: u32 = 20;
const RANK_MULTIFIT: u32 = 24;
const RANK_GRAHAM: u32 = 28;
const RANK_KERNEL: u32 = 30;
const RANK_KERNEL_ALT: u32 = 35;
const RANK_PTAS: u32 = 50;
const RANK_EXACT: u32 = 90;
const RANK_SPT: u32 = 200;
const RANK_ORACLE: u32 = 240;

/// A scheduler backend speaking the unified solver vocabulary.
///
/// [`Solver::solve_in`] is the required entry point: it threads a
/// reusable [`KernelWorkspace`] through kernel-backed algorithms
/// (backends that do not use the kernel simply ignore it and report
/// `workspace_reused = false`). [`Solver::solve`] is the one-shot
/// convenience wrapper.
pub trait Solver: Send + Sync {
    /// The backend's identity, echoed in [`SolveStats::backend`].
    fn id(&self) -> BackendId;

    /// `Some(rank)` when this backend can serve the request at its
    /// required guarantee (lower rank = preferred), `None` otherwise.
    /// Ranks follow the documented selection table; parameter *validity*
    /// (e.g. a negative ∆) is not checked here — the solve reports it.
    fn bid(&self, req: &SolveRequest) -> Option<u32>;

    /// The backend's pre-dispatch work estimate for this request, in the
    /// shared abstract work units of [`CostEstimate`] — the same scale
    /// the documented feasibility gates use (`m^n` for the exact
    /// solvers, `states × configs` for the PTAS configuration DP,
    /// `(n + e)·log n` for the kernel). Admission layers gate and rank
    /// on this *before* dispatch ([`Portfolio::plan`]); the estimate is
    /// meaningful whether or not the backend bid on the request.
    ///
    /// The default is linearithmic in `n` — the honest guess for a
    /// foreign backend that did not override it.
    fn estimate_cost(&self, req: &SolveRequest) -> CostEstimate {
        CostEstimate::linearithmic(req.n())
    }

    /// Solves the request, drawing kernel buffers from `ws`.
    fn solve_in(
        &self,
        req: &SolveRequest,
        ws: &mut KernelWorkspace,
    ) -> Result<Solution, ModelError>;

    /// One-shot [`Solver::solve_in`] with a fresh workspace.
    fn solve(&self, req: &SolveRequest) -> Result<Solution, ModelError> {
        let mut ws = KernelWorkspace::new();
        let mut solution = self.solve_in(req, &mut ws)?;
        solution.stats.workspace_reused = false;
        Ok(solution)
    }
}

/// `m^n`, saturating — the exhaustive-enumeration work estimate the
/// exact gates use.
fn enum_work(n: usize, m: usize) -> u64 {
    let mut work: u64 = 1;
    for _ in 0..n {
        work = work.saturating_mul(m as u64);
    }
    work
}

/// A resolved precedence instance: borrowed when the request carried a
/// `DagInstance` (the common case — zero copies), rebuilt from the
/// predecessor lists for foreign [`PrecedenceInstance`] implementations.
pub(crate) enum DagRef<'a> {
    Borrowed(&'a DagInstance),
    Owned(Box<DagInstance>),
}

impl std::ops::Deref for DagRef<'_> {
    type Target = DagInstance;
    fn deref(&self) -> &DagInstance {
        match self {
            DagRef::Borrowed(d) => d,
            DagRef::Owned(d) => d,
        }
    }
}

/// An independent-task view of a request's instance: borrowed for
/// `Independent` requests, built for *edge-free* precedence requests
/// (the batch path ships independent tasks as edge-free `DagInstance`s;
/// the independent-only backends must still qualify for them, or
/// per-item selection in a mixed batch stream could never reach SBO∆ or
/// the exact solvers).
enum IndependentRef<'a> {
    Borrowed(&'a Instance),
    Owned(Box<Instance>),
}

impl std::ops::Deref for IndependentRef<'_> {
    type Target = Instance;
    fn deref(&self) -> &Instance {
        match self {
            IndependentRef::Borrowed(i) => i,
            IndependentRef::Owned(i) => i,
        }
    }
}

/// Whether the request's instance is independent-task shaped (either
/// genuinely independent or a DAG with no edges). `O(n)` for DAGs.
fn independent_shaped(req: &SolveRequest) -> bool {
    match req.instance {
        RequestInstance::Independent(_) => true,
        RequestInstance::Precedence(p) => p.preds().iter().all(|preds| preds.is_empty()),
    }
}

/// The independent-task view of the request, when one exists (see
/// [`independent_shaped`]). Edge-free DAGs cost one `TaskSet` clone.
fn independent_view<'a>(req: &SolveRequest<'a>) -> Option<IndependentRef<'a>> {
    match req.instance {
        RequestInstance::Independent(inst) => Some(IndependentRef::Borrowed(inst)),
        RequestInstance::Precedence(p) => {
            if !p.preds().iter().all(|preds| preds.is_empty()) {
                return None;
            }
            Instance::new(p.tasks().clone(), p.m())
                .ok()
                .map(|inst| IndependentRef::Owned(Box::new(inst)))
        }
    }
}

/// Number of precedence edges the request carries (`0` for independent
/// instances). `O(n)` — predecessor lists expose their lengths.
fn edge_count(req: &SolveRequest) -> usize {
    match req.instance {
        RequestInstance::Independent(_) => 0,
        RequestInstance::Precedence(p) => p.preds().iter().map(Vec::len).sum(),
    }
}

/// Recovers a concrete [`DagInstance`] from the model-layer trait object
/// (downcast first, rebuild as a fallback). Shared with the pipeline's
/// solver-generic evaluation path.
pub(crate) fn resolve_dag<'a>(p: &'a dyn PrecedenceInstance) -> Result<DagRef<'a>, ModelError> {
    if let Some(dag) = p.as_any().downcast_ref::<DagInstance>() {
        return Ok(DagRef::Borrowed(dag));
    }
    let mut edges = Vec::new();
    for (task, preds) in p.preds().iter().enumerate() {
        for &pred in preds {
            edges.push((pred, task));
        }
    }
    let graph = TaskGraph::from_edges(p.tasks().clone(), &edges)?;
    Ok(DagRef::Owned(Box::new(DagInstance::new(graph, p.m())?)))
}

/// The precedence-aware bound report for a DAG instance (critical-path
/// strengthened makespan bound). Costs one `O(V + E)` traversal per
/// solve on top of the scheduling run — the price of always-correct
/// bound provenance in the returned stats; the committed kernel/batch
/// baselines do not route through here.
fn dag_bounds(dag: &DagInstance) -> BoundReport {
    BoundReport::with_critical_path(dag.tasks(), dag.m(), dag.critical_path_length())
}

/// Packages an assignment-producing backend's output as a [`Solution`].
fn assignment_solution(
    inst: &Instance,
    assignment: &Assignment,
    achieved: Guarantee,
    ratio_bound: Option<(f64, f64)>,
    stats: SolveStats,
) -> Solution {
    Solution {
        schedule: assignment.into_timed(inst.tasks()),
        point: ObjectivePoint::of_assignment(inst, assignment),
        sum_ci: None,
        achieved,
        ratio_bound,
        stats,
    }
}

// ---------------------------------------------------------------------------
// Kernel backends
// ---------------------------------------------------------------------------

/// RLS∆ (Algorithm 2) on the event-driven kernel — the workhorse for
/// bi-objective requests. Serves DAGs natively and independent tasks
/// through the trivial-graph wrapper; requires `∆ > 2` (Lemma 4).
pub struct KernelRlsBackend;

impl Solver for KernelRlsBackend {
    fn id(&self) -> BackendId {
        BackendId::KernelRls
    }

    fn bid(&self, req: &SolveRequest) -> Option<u32> {
        let ObjectiveMode::BiObjective { delta } = req.objective else {
            return None;
        };
        if !exceeds(delta, 2.0) {
            return None;
        }
        if !Guarantee::PaperRatio.satisfies(&req.guarantee) {
            return None;
        }
        // Preferred for real DAGs (SBO∆ cannot serve them); the cheaper
        // SBO∆ routing wins on independent-shaped instances.
        Some(if independent_shaped(req) {
            RANK_KERNEL_ALT
        } else {
            RANK_KERNEL
        })
    }

    fn estimate_cost(&self, req: &SolveRequest) -> CostEstimate {
        CostEstimate::kernel(req.n(), edge_count(req))
    }

    fn solve_in(
        &self,
        req: &SolveRequest,
        ws: &mut KernelWorkspace,
    ) -> Result<Solution, ModelError> {
        let ObjectiveMode::BiObjective { delta } = req.objective else {
            return Err(req.no_backend_error());
        };
        let config = RlsConfig::new(delta);
        match req.instance {
            RequestInstance::Independent(inst) => {
                let result = rls_independent_in(inst, &config, ws)?;
                Ok(result.into_solution(
                    inst.tasks(),
                    self.id(),
                    BoundReport::identical(inst.tasks(), inst.m()),
                    true,
                ))
            }
            RequestInstance::Precedence(p) => {
                let dag = resolve_dag(p)?;
                let result = rls_in(&dag, &config, ws)?;
                Ok(result.into_solution(dag.tasks(), self.id(), dag_bounds(&dag), true))
            }
        }
    }
}

/// The retained `O(n²m)` RLS∆ oracle. Registered so differential tests
/// can request it explicitly; its rank keeps it from ever being
/// auto-selected.
pub struct NaiveRlsBackend;

impl Solver for NaiveRlsBackend {
    fn id(&self) -> BackendId {
        BackendId::NaiveRls
    }

    fn bid(&self, req: &SolveRequest) -> Option<u32> {
        let ObjectiveMode::BiObjective { delta } = req.objective else {
            return None;
        };
        if !exceeds(delta, 2.0) || !Guarantee::PaperRatio.satisfies(&req.guarantee) {
            return None;
        }
        Some(RANK_ORACLE)
    }

    fn estimate_cost(&self, req: &SolveRequest) -> CostEstimate {
        let n = req.n() as f64;
        CostEstimate {
            work: n * n * req.m() as f64,
            model: CostModel::Quadratic,
        }
    }

    fn solve_in(
        &self,
        req: &SolveRequest,
        _ws: &mut KernelWorkspace,
    ) -> Result<Solution, ModelError> {
        let ObjectiveMode::BiObjective { delta } = req.objective else {
            return Err(req.no_backend_error());
        };
        let config = RlsConfig::new(delta);
        match req.instance {
            RequestInstance::Independent(inst) => {
                let graph = TaskGraph::new(inst.tasks().clone());
                let dag = DagInstance::new(graph, inst.m())?;
                let result = naive::rls(&dag, &config)?;
                Ok(result.into_solution(
                    inst.tasks(),
                    self.id(),
                    BoundReport::identical(inst.tasks(), inst.m()),
                    false,
                ))
            }
            RequestInstance::Precedence(p) => {
                let dag = resolve_dag(p)?;
                let result = naive::rls(&dag, &config)?;
                Ok(result.into_solution(dag.tasks(), self.id(), dag_bounds(&dag), false))
            }
        }
    }
}

/// SBO∆ (Algorithm 1) — the preferred bi-objective backend on
/// independent tasks (any `∆ > 0`, guarantee `((1+∆)ρ, (1+1/∆)ρ)`).
pub struct SboBackend {
    /// The single-objective scheduler used for both inner schedules.
    pub inner: InnerAlgorithm,
}

impl SboBackend {
    /// The standard-registry configuration (LPT inner schedules).
    pub fn lpt() -> Self {
        SboBackend {
            inner: InnerAlgorithm::Lpt,
        }
    }
}

impl Solver for SboBackend {
    fn id(&self) -> BackendId {
        BackendId::Sbo
    }

    fn bid(&self, req: &SolveRequest) -> Option<u32> {
        if !matches!(req.objective, ObjectiveMode::BiObjective { .. })
            || !independent_shaped(req)
            || !Guarantee::PaperRatio.satisfies(&req.guarantee)
        {
            return None;
        }
        Some(RANK_KERNEL)
    }

    fn estimate_cost(&self, req: &SolveRequest) -> CostEstimate {
        // Two inner single-objective schedules plus the O(n) threshold
        // routing.
        let inner = CostEstimate::linearithmic(req.n());
        CostEstimate {
            work: 2.0 * inner.work + req.n() as f64,
            model: CostModel::Linearithmic,
        }
    }

    fn solve_in(
        &self,
        req: &SolveRequest,
        _ws: &mut KernelWorkspace,
    ) -> Result<Solution, ModelError> {
        let ObjectiveMode::BiObjective { delta } = req.objective else {
            return Err(req.no_backend_error());
        };
        let inst = independent_view(req).ok_or_else(|| req.no_backend_error())?;
        let result = sbo(&inst, &SboConfig::new(delta, self.inner))?;
        Ok(result.into_solution(&inst))
    }
}

/// RLS∆ with SPT tie-breaking (Section 5.2) — the tri-objective backend
/// on independent tasks (`∆ > 2`, Corollary 4).
pub struct KernelTriBackend;

impl Solver for KernelTriBackend {
    fn id(&self) -> BackendId {
        BackendId::KernelTriRls
    }

    fn bid(&self, req: &SolveRequest) -> Option<u32> {
        let ObjectiveMode::TriObjective { delta } = req.objective else {
            return None;
        };
        if !exceeds(delta, 2.0)
            || !independent_shaped(req)
            || !Guarantee::PaperRatio.satisfies(&req.guarantee)
        {
            return None;
        }
        Some(RANK_KERNEL)
    }

    fn estimate_cost(&self, req: &SolveRequest) -> CostEstimate {
        CostEstimate::kernel(req.n(), edge_count(req))
    }

    fn solve_in(
        &self,
        req: &SolveRequest,
        ws: &mut KernelWorkspace,
    ) -> Result<Solution, ModelError> {
        let ObjectiveMode::TriObjective { delta } = req.objective else {
            return Err(req.no_backend_error());
        };
        let inst = independent_view(req).ok_or_else(|| req.no_backend_error())?;
        let result = tri_objective_rls_in(&inst, delta, ws)?;
        Ok(result.into_solution(&inst, true))
    }
}

/// Unrestricted Graham DAG list scheduling on the event-driven kernel —
/// the makespan-only backend for precedence-constrained instances
/// (`2 − 1/m` holds under precedence constraints).
pub struct KernelDagListBackend;

impl Solver for KernelDagListBackend {
    fn id(&self) -> BackendId {
        BackendId::KernelDagList
    }

    fn bid(&self, req: &SolveRequest) -> Option<u32> {
        if !matches!(req.objective, ObjectiveMode::CmaxOnly)
            || !matches!(req.instance, RequestInstance::Precedence(_))
            || !Guarantee::PaperRatio.satisfies(&req.guarantee)
        {
            return None;
        }
        Some(RANK_KERNEL)
    }

    fn estimate_cost(&self, req: &SolveRequest) -> CostEstimate {
        CostEstimate::kernel(req.n(), edge_count(req))
    }

    fn solve_in(
        &self,
        req: &SolveRequest,
        ws: &mut KernelWorkspace,
    ) -> Result<Solution, ModelError> {
        let RequestInstance::Precedence(p) = req.instance else {
            return Err(req.no_backend_error());
        };
        let dag = resolve_dag(p)?;
        let csr = dag.csr();
        let rank = index_priority(dag.n());
        let outcome = event_driven_schedule_csr(&csr, dag.m(), &rank, &mut Unrestricted, ws)?;
        let m = dag.m() as f64;
        let point = ObjectivePoint::of_timed_tasks(dag.tasks(), &outcome.schedule);
        Ok(Solution {
            point,
            sum_ci: None,
            achieved: Guarantee::PaperRatio,
            ratio_bound: Some((2.0 - 1.0 / m, f64::INFINITY)),
            stats: SolveStats {
                backend: self.id(),
                rounds: outcome.schedule.n(),
                workspace_reused: true,
                bounds: dag_bounds(&dag),
                cost: None,
                attempts: 1,
            },
            schedule: outcome.schedule,
        })
    }
}

// ---------------------------------------------------------------------------
// Classic heuristics
// ---------------------------------------------------------------------------

/// Which classic single-objective heuristic a [`ClassicBackend`] wraps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassicAlgorithm {
    /// Longest Processing Time first, `4/3 − 1/(3m)`.
    Lpt,
    /// Graham list scheduling in index order, `2 − 1/m`.
    Graham,
    /// MULTIFIT, `13/11`.
    Multifit,
    /// Shortest Processing Time first — optimal on `ΣC_i`, no makespan
    /// guarantee (registered for explicit use; never auto-selected).
    Spt,
}

/// The classic `P ∥ Cmax` heuristics as portfolio backends (independent
/// tasks, makespan-only requests).
pub struct ClassicBackend {
    algorithm: ClassicAlgorithm,
}

impl ClassicBackend {
    /// Wraps the given heuristic.
    pub fn new(algorithm: ClassicAlgorithm) -> Self {
        ClassicBackend { algorithm }
    }
}

impl Solver for ClassicBackend {
    fn id(&self) -> BackendId {
        match self.algorithm {
            ClassicAlgorithm::Lpt => BackendId::Lpt,
            ClassicAlgorithm::Graham => BackendId::Graham,
            ClassicAlgorithm::Multifit => BackendId::Multifit,
            ClassicAlgorithm::Spt => BackendId::Spt,
        }
    }

    fn bid(&self, req: &SolveRequest) -> Option<u32> {
        if !matches!(req.objective, ObjectiveMode::CmaxOnly) || !independent_shaped(req) {
            return None;
        }
        let (rank, level) = match self.algorithm {
            ClassicAlgorithm::Lpt => (RANK_LPT, Guarantee::PaperRatio),
            ClassicAlgorithm::Multifit => (RANK_MULTIFIT, Guarantee::PaperRatio),
            ClassicAlgorithm::Graham => (RANK_GRAHAM, Guarantee::PaperRatio),
            ClassicAlgorithm::Spt => (RANK_SPT, Guarantee::None),
        };
        if !level.satisfies(&req.guarantee) {
            return None;
        }
        Some(rank)
    }

    fn estimate_cost(&self, req: &SolveRequest) -> CostEstimate {
        CostEstimate::linearithmic(req.n())
    }

    fn solve_in(
        &self,
        req: &SolveRequest,
        _ws: &mut KernelWorkspace,
    ) -> Result<Solution, ModelError> {
        let inst = independent_view(req).ok_or_else(|| req.no_backend_error())?;
        let inst = &*inst;
        let m = inst.m() as f64;
        let stats = SolveStats::new(self.id(), inst.n(), inst.tasks(), inst.m());
        match self.algorithm {
            ClassicAlgorithm::Lpt => Ok(assignment_solution(
                inst,
                &lpt_cmax(inst),
                Guarantee::PaperRatio,
                Some((4.0 / 3.0 - 1.0 / (3.0 * m), f64::INFINITY)),
                stats,
            )),
            ClassicAlgorithm::Graham => Ok(assignment_solution(
                inst,
                &graham_cmax(inst),
                Guarantee::PaperRatio,
                Some((2.0 - 1.0 / m, f64::INFINITY)),
                stats,
            )),
            ClassicAlgorithm::Multifit => Ok(assignment_solution(
                inst,
                &multifit_cmax(inst),
                Guarantee::PaperRatio,
                Some((13.0 / 11.0, f64::INFINITY)),
                stats,
            )),
            ClassicAlgorithm::Spt => {
                let schedule = spt_schedule(inst);
                let point = ObjectivePoint::of_timed_tasks(inst.tasks(), &schedule);
                let sum_ci = schedule.sum_completion(inst.tasks());
                Ok(Solution {
                    schedule,
                    point,
                    sum_ci: Some(sum_ci),
                    achieved: Guarantee::None,
                    ratio_bound: None,
                    stats,
                })
            }
        }
    }
}

// ---------------------------------------------------------------------------
// PTAS backend
// ---------------------------------------------------------------------------

/// The Hochbaum–Shmoys dual-approximation PTAS — the only polynomial
/// route to a *proven* `1 + ε` on the makespan. Bids for ε-optimal
/// requests only when the configuration-DP work estimate is affordable
/// (otherwise the run would silently fall back to FFD and lose the
/// guarantee — the portfolio reports `NoQualifiedBackend` instead).
pub struct PtasBackend;

impl PtasBackend {
    fn eps_for(req: &SolveRequest) -> f64 {
        match req.guarantee {
            Guarantee::EpsilonOptimal(eps) => eps,
            _ => DEFAULT_PTAS_EPS,
        }
    }
}

impl Solver for PtasBackend {
    fn id(&self) -> BackendId {
        BackendId::Ptas
    }

    fn bid(&self, req: &SolveRequest) -> Option<u32> {
        if !matches!(req.objective, ObjectiveMode::CmaxOnly) || !independent_shaped(req) {
            return None;
        }
        match req.guarantee {
            Guarantee::Exact => None,
            Guarantee::EpsilonOptimal(eps) => {
                if !(exceeds(eps, 0.0) && exceeds(1.0, eps)) {
                    return None;
                }
                let tasks = req.tasks();
                let weights: Vec<f64> = tasks.as_slice().iter().map(|t| t.p).collect();
                if sws_ptas::dp_work_affordable(&weights, req.m(), eps) {
                    Some(RANK_PTAS)
                } else {
                    None
                }
            }
            _ => Some(RANK_PTAS),
        }
    }

    fn estimate_cost(&self, req: &SolveRequest) -> CostEstimate {
        // The same states × configs × classes estimate the feasibility
        // gate uses (at the most conservative deadline d = LB), plus the
        // n log n sort-and-bisection scaffolding around the DP.
        let eps = Self::eps_for(req);
        let tasks = req.tasks();
        let weights: Vec<f64> = tasks.as_slice().iter().map(|t| t.p).collect();
        let dp = sws_ptas::dp_work_estimate_for(&weights, req.m().max(1), eps) as f64;
        CostEstimate {
            work: dp + CostEstimate::linearithmic(req.n()).work,
            model: CostModel::ConfigDp,
        }
    }

    fn solve_in(
        &self,
        req: &SolveRequest,
        ws: &mut KernelWorkspace,
    ) -> Result<Solution, ModelError> {
        let inst = independent_view(req).ok_or_else(|| req.no_backend_error())?;
        let inst = &*inst;
        let eps = Self::eps_for(req);
        // The workspace carries the cancellation probe even though the
        // PTAS draws no buffers from it: the search polls before each
        // dual test.
        let outcome = sws_ptas::ptas_cmax_probed(inst, eps, ws.probe())?;
        // The deadline search certifies Cmax ≤ (1+ε)·d with d found in
        // [LB, 2·LB]; with exact packing throughout, d converges to (a
        // hair above) the optimum and the ε guarantee holds. An FFD
        // fallback keeps only the coarse 2(1+ε) bracket bound.
        let (achieved, ratio) = if outcome.exact_packing {
            (Guarantee::EpsilonOptimal(eps), (1.0 + eps) * (1.0 + 1e-9))
        } else {
            (Guarantee::PaperRatio, 2.0 * (1.0 + eps))
        };
        Ok(assignment_solution(
            inst,
            &outcome.assignment,
            achieved,
            Some((ratio, f64::INFINITY)),
            SolveStats::new(self.id(), inst.n(), inst.tasks(), inst.m()),
        ))
    }
}

// ---------------------------------------------------------------------------
// Exact backend
// ---------------------------------------------------------------------------

/// Exact rank for a request whose enumeration work is `work`: preferred
/// outright on tiny instances, last-resort (but available) otherwise.
fn exact_rank(work: u64) -> u32 {
    if work <= EXACT_AUTO_WORK {
        RANK_EXACT_TINY
    } else {
        RANK_EXACT
    }
}

/// Branch-and-bound optimal partitioning — the exact backend for
/// makespan-only requests on independent tasks, gated at
/// [`EXACT_BNB_MAX_N`] tasks.
pub struct ExactBnbBackend;

impl Solver for ExactBnbBackend {
    fn id(&self) -> BackendId {
        BackendId::ExactBranchBound
    }

    fn bid(&self, req: &SolveRequest) -> Option<u32> {
        if !matches!(req.objective, ObjectiveMode::CmaxOnly)
            || req.n() > EXACT_BNB_MAX_N
            || !independent_shaped(req)
        {
            return None;
        }
        Some(exact_rank(enum_work(req.n(), req.m())))
    }

    fn estimate_cost(&self, req: &SolveRequest) -> CostEstimate {
        CostEstimate::enumeration(enum_work(req.n(), req.m()))
    }

    fn solve_in(
        &self,
        req: &SolveRequest,
        ws: &mut KernelWorkspace,
    ) -> Result<Solution, ModelError> {
        let inst = independent_view(req).ok_or_else(|| req.no_backend_error())?;
        let inst = &*inst;
        let weights: Vec<f64> = (0..inst.n()).map(|i| inst.p(i)).collect();
        let (value, assignment) =
            sws_exact::optimal_partition_probed(&weights, inst.m(), ws.probe())?;
        // The memory optimum is a second branch-and-bound over the
        // storage weights — affordable inside the same n ≤ 18 gate, and
        // it keeps the `ExactOptimum` provenance tag literally true for
        // both components of the report.
        let bounds = BoundReport {
            cmax: value,
            mmax: if inst.n() == 0 {
                0.0
            } else {
                sws_exact::optimal_mmax_probed(inst, ws.probe())?
            },
            source: BoundSource::ExactOptimum,
        };
        Ok(assignment_solution(
            inst,
            &assignment,
            Guarantee::Exact,
            Some((1.0, f64::INFINITY)),
            SolveStats {
                backend: self.id(),
                rounds: enum_work(inst.n(), inst.m()).min(usize::MAX as u64) as usize,
                workspace_reused: false,
                bounds,
                cost: None,
                attempts: 1,
            },
        ))
    }
}

/// Exhaustive bi-objective Pareto enumeration — the exact backend for
/// bi-objective and memory-budget requests on independent tasks, gated
/// at [`EXACT_ENUM_WORK_LIMIT`] assignments.
///
/// Bi-objective semantics mirror RLS∆'s cap: the returned point
/// minimizes `Cmax` subject to `Mmax ≤ ∆·LB`; when even the
/// memory-optimal point exceeds that cap, the memory-optimal point is
/// returned (the closest exact answer to the requested trade-off).
pub struct ExactEnumBackend;

impl Solver for ExactEnumBackend {
    fn id(&self) -> BackendId {
        BackendId::ExactParetoEnum
    }

    fn bid(&self, req: &SolveRequest) -> Option<u32> {
        if !matches!(
            req.objective,
            ObjectiveMode::BiObjective { .. } | ObjectiveMode::MemoryBudget { .. }
        ) {
            return None;
        }
        let work = enum_work(req.n(), req.m());
        if work > EXACT_ENUM_WORK_LIMIT || !independent_shaped(req) {
            return None;
        }
        Some(exact_rank(work))
    }

    fn estimate_cost(&self, req: &SolveRequest) -> CostEstimate {
        CostEstimate::enumeration(enum_work(req.n(), req.m()))
    }

    fn solve_in(
        &self,
        req: &SolveRequest,
        ws: &mut KernelWorkspace,
    ) -> Result<Solution, ModelError> {
        let inst = independent_view(req).ok_or_else(|| req.no_backend_error())?;
        let inst = &*inst;
        // One enumeration serves both the budget query and the bound
        // report below.
        let front = sws_exact::pareto_front_probed(inst, ws.probe())?;
        // The per-objective exact optima are the extreme points of the
        // front — these are the bounds an exact solution reports, so
        // the `ExactOptimum` provenance tag is literally true.
        let bounds = BoundReport {
            cmax: front.best_cmax().map_or(0.0, |(pt, _)| pt.cmax),
            mmax: front.best_mmax().map_or(0.0, |(pt, _)| pt.mmax),
            source: BoundSource::ExactOptimum,
        };
        let stats = SolveStats {
            backend: BackendId::ExactParetoEnum,
            rounds: enum_work(inst.n(), inst.m()).min(usize::MAX as u64) as usize,
            workspace_reused: false,
            bounds,
            cost: None,
            attempts: 1,
        };
        match req.objective {
            ObjectiveMode::BiObjective { delta } => {
                if !finite_gt(delta, 0.0) {
                    return Err(ModelError::InvalidParameter {
                        name: "delta",
                        value: delta,
                        constraint: "∆ > 0",
                    });
                }
                let cap = delta * mmax_lower_bound_or_zero(inst);
                // Best Cmax within the cap, falling back to the
                // memory-optimal point when even it exceeds the cap.
                let chosen = sws_exact::best_in_front(&front, cap)
                    .or_else(|| front.best_mmax().map(|(pt, asg)| (*pt, asg.clone())));
                // The solution's point is recomputed from the assignment
                // (the front's accumulated point can differ in the last
                // ulps from the recomputed sums).
                let (_, assignment) = chosen.ok_or(ModelError::NoTasks)?;
                Ok(assignment_solution(
                    inst,
                    &assignment,
                    Guarantee::Exact,
                    None,
                    stats,
                ))
            }
            ObjectiveMode::MemoryBudget { budget } => {
                match sws_exact::best_in_front(&front, budget) {
                    Some((_, assignment)) => Ok(assignment_solution(
                        inst,
                        &assignment,
                        Guarantee::Exact,
                        None,
                        stats,
                    )),
                    None => Err(ModelError::BudgetNotMet {
                        best_mmax: front.best_mmax().map_or(f64::INFINITY, |(pt, _)| pt.mmax),
                        budget,
                    }),
                }
            }
            ObjectiveMode::CmaxOnly | ObjectiveMode::TriObjective { .. } => {
                Err(req.no_backend_error())
            }
        }
    }
}

/// The Graham memory bound, `0` for empty instances.
fn mmax_lower_bound_or_zero(inst: &Instance) -> f64 {
    if inst.n() == 0 {
        0.0
    } else {
        mmax_lower_bound(inst.tasks(), inst.m())
    }
}

// ---------------------------------------------------------------------------
// Constrained-search backend
// ---------------------------------------------------------------------------

/// The Section 7 budget procedures: `∆ = budget/LB` + RLS∆ on DAGs
/// (paper-ratio makespan guarantee when `budget > 2·LB`), the SBO∆
/// binary search on independent tasks (best effort — the constrained
/// problem is inapproximable, Section 2.2). Infeasibility surfaces as
/// [`ModelError::MemoryExceeded`] (provably impossible) or
/// [`ModelError::BudgetNotMet`] (not found / `∆ ≤ 2`).
pub struct ConstrainedBackend;

impl Solver for ConstrainedBackend {
    fn id(&self) -> BackendId {
        BackendId::ConstrainedSearch
    }

    fn bid(&self, req: &SolveRequest) -> Option<u32> {
        let ObjectiveMode::MemoryBudget { budget } = req.objective else {
            return None;
        };
        let level = match req.instance {
            // The derived ∆ = budget/LB must exceed 2 for Corollary 3 to
            // apply; below that the procedure is best effort only.
            RequestInstance::Precedence(p) => {
                let tasks = p.tasks();
                let lb = if tasks.is_empty() {
                    0.0
                } else {
                    mmax_lower_bound(tasks, p.m())
                };
                if exceeds(budget, 2.0 * lb) {
                    Guarantee::PaperRatio
                } else {
                    Guarantee::None
                }
            }
            RequestInstance::Independent(_) => Guarantee::None,
        };
        if !level.satisfies(&req.guarantee) {
            return None;
        }
        Some(RANK_KERNEL)
    }

    fn estimate_cost(&self, req: &SolveRequest) -> CostEstimate {
        match req.instance {
            // The ∆ binary search evaluates one SBO∆ run per step.
            RequestInstance::Independent(_) => {
                let per_eval = 2.0 * CostEstimate::linearithmic(req.n()).work;
                CostEstimate {
                    work: (1 + crate::constrained::BINARY_SEARCH_STEPS) as f64 * per_eval,
                    model: CostModel::InnerSearch,
                }
            }
            // The DAG procedure derives ∆ = budget/LB and runs RLS∆ once.
            RequestInstance::Precedence(_) => CostEstimate::kernel(req.n(), edge_count(req)),
        }
    }

    fn solve_in(
        &self,
        req: &SolveRequest,
        ws: &mut KernelWorkspace,
    ) -> Result<Solution, ModelError> {
        let ObjectiveMode::MemoryBudget { budget } = req.objective else {
            return Err(req.no_backend_error());
        };
        match req.instance {
            RequestInstance::Independent(inst) => {
                match solve_with_memory_budget(inst, budget, InnerAlgorithm::Lpt)? {
                    ConstrainedOutcome::Feasible {
                        assignment,
                        evaluations,
                        ..
                    } => Ok(assignment_solution(
                        inst,
                        &assignment,
                        Guarantee::None,
                        None,
                        SolveStats {
                            backend: self.id(),
                            rounds: evaluations,
                            workspace_reused: false,
                            bounds: BoundReport::identical(inst.tasks(), inst.m()),
                            cost: None,
                            attempts: 1,
                        },
                    )),
                    ConstrainedOutcome::ProvablyInfeasible { max_storage } => {
                        Err(ModelError::MemoryExceeded {
                            proc: 0,
                            used: max_storage,
                            capacity: budget,
                        })
                    }
                    ConstrainedOutcome::NotFound { best_mmax, .. } => {
                        Err(ModelError::BudgetNotMet { best_mmax, budget })
                    }
                }
            }
            RequestInstance::Precedence(p) => {
                let dag = resolve_dag(p)?;
                match solve_dag_with_memory_budget_in(&dag, budget, ws)? {
                    DagConstrainedOutcome::Feasible {
                        schedule,
                        point,
                        delta,
                        makespan_guarantee,
                    } => Ok(Solution {
                        point,
                        sum_ci: None,
                        achieved: Guarantee::PaperRatio,
                        ratio_bound: Some((makespan_guarantee, delta)),
                        stats: SolveStats {
                            backend: self.id(),
                            rounds: schedule.n(),
                            workspace_reused: true,
                            bounds: dag_bounds(&dag),
                            cost: None,
                            attempts: 1,
                        },
                        schedule,
                    }),
                    DagConstrainedOutcome::ProvablyInfeasible { max_storage } => {
                        Err(ModelError::MemoryExceeded {
                            proc: 0,
                            used: max_storage,
                            capacity: budget,
                        })
                    }
                    // ∆ = budget/LB ≤ 2: RLS∆ cannot even run (Lemma 4);
                    // no schedule was evaluated.
                    DagConstrainedOutcome::NoGuarantee { .. } => Err(ModelError::BudgetNotMet {
                        best_mmax: f64::INFINITY,
                        budget,
                    }),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The portfolio
// ---------------------------------------------------------------------------

/// The routing layer's resolved plan for one request: which backend will
/// serve it, at what selection rank, and at what estimated pre-dispatch
/// cost. This is what admission layers gate on *before* any scheduling
/// work is spent (see `sws_model::policy` and the `sws_service` crate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolvePlan {
    /// The backend [`Portfolio::select`] resolves for the request.
    pub backend: BackendId,
    /// Its selection rank (the documented cost-ladder position).
    pub rank: u32,
    /// Its pre-dispatch work estimate ([`Solver::estimate_cost`]).
    pub cost: CostEstimate,
}

/// A registry of [`Solver`] backends with guarantee-aware auto-selection
/// (see the module docs for the policy).
pub struct Portfolio {
    backends: Vec<Box<dyn Solver>>,
}

impl Default for Portfolio {
    fn default() -> Self {
        Self::standard()
    }
}

impl Portfolio {
    /// An empty registry (for custom builds).
    pub fn empty() -> Self {
        Portfolio {
            backends: Vec::new(),
        }
    }

    /// The standard registry: every scheduler of the workspace, in the
    /// documented rank order.
    pub fn standard() -> Self {
        let mut p = Portfolio::empty();
        p.register(Box::new(ExactBnbBackend));
        p.register(Box::new(ExactEnumBackend));
        p.register(Box::new(ClassicBackend::new(ClassicAlgorithm::Lpt)));
        p.register(Box::new(ClassicBackend::new(ClassicAlgorithm::Multifit)));
        p.register(Box::new(ClassicBackend::new(ClassicAlgorithm::Graham)));
        p.register(Box::new(ClassicBackend::new(ClassicAlgorithm::Spt)));
        p.register(Box::new(SboBackend::lpt()));
        p.register(Box::new(KernelRlsBackend));
        p.register(Box::new(KernelTriBackend));
        p.register(Box::new(KernelDagListBackend));
        p.register(Box::new(ConstrainedBackend));
        p.register(Box::new(PtasBackend));
        p.register(Box::new(NaiveRlsBackend));
        p
    }

    /// Adds a backend to the registry.
    pub fn register(&mut self, backend: Box<dyn Solver>) {
        self.backends.push(backend);
    }

    /// Rebuilds the portfolio with every backend passed through `f`,
    /// preserving registration order (selection ties keep breaking the
    /// same way). This is the instrumentation hook: wrap each backend in
    /// a decorator — e.g. the fault-injecting `FaultySolver` of the
    /// service layer's chaos harness — without re-deriving the registry.
    pub fn map_backends(self, f: impl Fn(Box<dyn Solver>) -> Box<dyn Solver>) -> Portfolio {
        Portfolio {
            backends: self.backends.into_iter().map(f).collect(),
        }
    }

    /// The registered backend with the given id, if any.
    pub fn backend(&self, id: BackendId) -> Option<&dyn Solver> {
        self.backends
            .iter()
            .map(|b| b.as_ref())
            .find(|b| b.id() == id)
    }

    /// Ids of every registered backend, in registration order.
    pub fn backend_ids(&self) -> Vec<BackendId> {
        self.backends.iter().map(|b| b.id()).collect()
    }

    /// Selects the backend that will serve `req`: the lowest-ranked
    /// qualifying bid, ties broken by registration order. Errors with
    /// [`ModelError::NoQualifiedBackend`] when nothing qualifies.
    pub fn select(&self, req: &SolveRequest) -> Result<&dyn Solver, ModelError> {
        self.select_with_rank(req).map(|(_, b)| b)
    }

    /// [`Portfolio::select`] plus the winning rank.
    fn select_with_rank(&self, req: &SolveRequest) -> Result<(u32, &dyn Solver), ModelError> {
        let mut best: Option<(u32, &dyn Solver)> = None;
        for backend in &self.backends {
            if let Some(rank) = backend.bid(req) {
                let better = match best {
                    None => true,
                    Some((best_rank, _)) => rank < best_rank,
                };
                if better {
                    best = Some((rank, backend.as_ref()));
                }
            }
        }
        best.ok_or_else(|| req.no_backend_error())
    }

    /// The id of the backend [`Portfolio::select`] would pick.
    pub fn selected(&self, req: &SolveRequest) -> Result<BackendId, ModelError> {
        self.select(req).map(|b| b.id())
    }

    /// Resolves the request **without solving it**: the selected backend
    /// plus its pre-dispatch cost estimate. This is the admission hook —
    /// a serving front calls it to gate or degrade a request before any
    /// scheduling work is spent, and the estimate is later echoed in the
    /// routed solution's [`SolveStats::cost`].
    pub fn plan(&self, req: &SolveRequest) -> Result<SolvePlan, ModelError> {
        let (rank, solver) = self.select_with_rank(req)?;
        Ok(SolvePlan {
            backend: solver.id(),
            rank,
            cost: solver.estimate_cost(req),
        })
    }

    /// Every qualifying backend for the request, sorted by estimated
    /// cost (ties: selection rank, then registration order). The head of
    /// the list is the cheapest way to serve the request at its required
    /// guarantee — which may differ from [`Portfolio::select`]'s pick,
    /// whose ranks also encode solution *quality* preferences (e.g. tiny
    /// instances prefer exact answers over a marginally cheaper
    /// heuristic). Empty when nothing qualifies.
    pub fn cost_ranking(&self, req: &SolveRequest) -> Vec<SolvePlan> {
        let mut plans: Vec<SolvePlan> = self
            .backends
            .iter()
            .filter_map(|b| {
                b.bid(req).map(|rank| SolvePlan {
                    backend: b.id(),
                    rank,
                    cost: b.estimate_cost(req),
                })
            })
            .collect();
        plans.sort_by(|a, b| {
            a.cost
                .work
                // sws-lint: allow(float-discipline, reason = "IEEE-754 total order over cost estimates: deterministic ranking that must not panic mid-serve; no schedule tie-break flows through it")
                .total_cmp(&b.cost.work)
                .then(a.rank.cmp(&b.rank))
        });
        plans
    }

    /// Routes the request to the selected backend (one-shot workspace).
    /// The schedule is bit-identical to `self.select(req)?.solve(req)`;
    /// the routed path additionally stamps the pre-dispatch
    /// [`SolvePlan::cost`] into [`SolveStats::cost`].
    pub fn solve(&self, req: &SolveRequest) -> Result<Solution, ModelError> {
        let (_, solver) = self.select_with_rank(req)?;
        let cost = solver.estimate_cost(req);
        let mut solution = solver.solve(req)?;
        solution.stats.cost = Some(cost);
        Ok(solution)
    }

    /// Routes the request to the selected backend, threading a reusable
    /// kernel workspace — the allocation-free serving path. The schedule
    /// is bit-identical to `self.select(req)?.solve_in(req, ws)`; the
    /// routed path additionally stamps the pre-dispatch
    /// [`SolvePlan::cost`] into [`SolveStats::cost`].
    pub fn solve_in(
        &self,
        req: &SolveRequest,
        ws: &mut KernelWorkspace,
    ) -> Result<Solution, ModelError> {
        let (_, solver) = self.select_with_rank(req)?;
        let cost = solver.estimate_cost(req);
        let mut solution = solver.solve_in(req, ws)?;
        solution.stats.cost = Some(cost);
        Ok(solution)
    }

    /// [`Portfolio::solve_in`] with the selection already resolved:
    /// dispatches straight to `plan.backend` and stamps `plan.cost`,
    /// skipping the bid and estimate passes. For a `plan` produced by
    /// [`Portfolio::plan`] on the *same* request this is bit-identical
    /// to [`Portfolio::solve_in`] (selection is deterministic) — it is
    /// the admission-then-dispatch path of the service runtime, which
    /// plans every request once at admission and must not pay selection
    /// twice. Errors with the request's `NoQualifiedBackend` when the
    /// planned backend is not registered.
    pub fn solve_planned_in(
        &self,
        req: &SolveRequest,
        plan: &SolvePlan,
        ws: &mut KernelWorkspace,
    ) -> Result<Solution, ModelError> {
        let solver = self
            .backend(plan.backend)
            .ok_or_else(|| req.no_backend_error())?;
        let mut solution = solver.solve_in(req, ws)?;
        solution.stats.cost = Some(plan.cost);
        Ok(solution)
    }

    /// Opens an incremental replanning session over `csr` (see
    /// [`crate::replan::ReplanEngine`]): the cold solve happens here,
    /// and every subsequent `CsrDelta` is served by warm-starting the
    /// kernel from the first affected round instead of re-routing a
    /// from-scratch request through the registry. The session's cap is
    /// fixed at open (`None` = unrestricted Graham list scheduling).
    pub fn open_replan(
        &self,
        csr: sws_dag::CsrDag,
        m: usize,
        cap: Option<f64>,
    ) -> Result<crate::replan::ReplanEngine, ModelError> {
        crate::replan::ReplanEngine::open(csr, m, cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_workloads::dagsets::{dag_workload, DagFamily};
    use sws_workloads::random::random_instance;
    use sws_workloads::rng::seeded_rng;
    use sws_workloads::TaskDistribution;

    fn independent(n: usize, m: usize, seed: u64) -> Instance {
        random_instance(
            n,
            m,
            TaskDistribution::AntiCorrelated,
            &mut seeded_rng(seed),
        )
    }

    #[test]
    fn selection_follows_the_documented_thresholds() {
        let portfolio = Portfolio::standard();
        let small = independent(6, 2, 1); // 2^6 = 64 ≤ EXACT_AUTO_WORK
        let mid = independent(40, 4, 2);
        let big = independent(400, 8, 3);

        // Tiny instances route to exact even without a demanded guarantee.
        let req = SolveRequest::independent(&small, ObjectiveMode::CmaxOnly);
        assert_eq!(
            portfolio.selected(&req).unwrap(),
            BackendId::ExactBranchBound
        );

        // Mid-size makespan requests take the cheapest proven heuristic.
        let req = SolveRequest::independent(&mid, ObjectiveMode::CmaxOnly);
        assert_eq!(portfolio.selected(&req).unwrap(), BackendId::Lpt);

        // ε-optimal demands route to the PTAS when the DP is affordable.
        let req = SolveRequest::independent(&mid, ObjectiveMode::CmaxOnly)
            .with_guarantee(Guarantee::EpsilonOptimal(0.25));
        assert_eq!(portfolio.selected(&req).unwrap(), BackendId::Ptas);

        // Exact demands outside the gates are refused.
        let req = SolveRequest::independent(&big, ObjectiveMode::CmaxOnly)
            .with_guarantee(Guarantee::Exact);
        assert!(matches!(
            portfolio.selected(&req),
            Err(ModelError::NoQualifiedBackend { .. })
        ));

        // Bi-objective independent requests take SBO∆; ∆ > 2 keeps SBO
        // (rank 30) ahead of the independent RLS route (rank 35).
        let req = SolveRequest::independent(&mid, ObjectiveMode::BiObjective { delta: 1.0 });
        assert_eq!(portfolio.selected(&req).unwrap(), BackendId::Sbo);
        let req = SolveRequest::independent(&mid, ObjectiveMode::BiObjective { delta: 3.0 });
        assert_eq!(portfolio.selected(&req).unwrap(), BackendId::Sbo);

        // Tri-objective routes to the SPT-tie RLS kernel.
        let req = SolveRequest::independent(&mid, ObjectiveMode::TriObjective { delta: 3.0 });
        assert_eq!(portfolio.selected(&req).unwrap(), BackendId::KernelTriRls);
    }

    #[test]
    fn dag_requests_route_to_the_kernel() {
        let portfolio = Portfolio::standard();
        let mut rng = seeded_rng(7);
        let dag = dag_workload(
            DagFamily::LayeredRandom,
            80,
            4,
            TaskDistribution::AntiCorrelated,
            &mut rng,
        );
        let req = SolveRequest::precedence(&dag, ObjectiveMode::BiObjective { delta: 3.0 });
        assert_eq!(portfolio.selected(&req).unwrap(), BackendId::KernelRls);
        let req = SolveRequest::precedence(&dag, ObjectiveMode::CmaxOnly);
        assert_eq!(portfolio.selected(&req).unwrap(), BackendId::KernelDagList);
        // DAG bi-objective below ∆ = 2 has no algorithm (Lemma 4).
        let req = SolveRequest::precedence(&dag, ObjectiveMode::BiObjective { delta: 1.5 });
        assert!(portfolio.selected(&req).is_err());
        // Exact demands on DAGs are refused.
        let req = SolveRequest::precedence(&dag, ObjectiveMode::CmaxOnly)
            .with_guarantee(Guarantee::Exact);
        assert!(portfolio.selected(&req).is_err());
    }

    #[test]
    fn portfolio_solve_matches_the_selected_backend() {
        let portfolio = Portfolio::standard();
        let inst = independent(30, 3, 11);
        for objective in [
            ObjectiveMode::CmaxOnly,
            ObjectiveMode::BiObjective { delta: 1.0 },
            ObjectiveMode::TriObjective { delta: 3.0 },
        ] {
            let req = SolveRequest::independent(&inst, objective);
            let via_portfolio = portfolio.solve(&req).unwrap();
            let direct = portfolio.select(&req).unwrap().solve(&req).unwrap();
            assert_eq!(via_portfolio.schedule, direct.schedule);
            assert_eq!(via_portfolio.point, direct.point);
            assert_eq!(via_portfolio.stats.backend, direct.stats.backend);
        }
    }

    #[test]
    fn memory_budget_requests_route_by_size_and_guarantee() {
        let portfolio = Portfolio::standard();
        let tiny = independent(6, 2, 21);
        let large = independent(60, 4, 22);
        let budget = 10.0 * mmax_lower_bound(large.tasks(), large.m());

        let req = SolveRequest::independent(&tiny, ObjectiveMode::MemoryBudget { budget });
        assert_eq!(
            portfolio.selected(&req).unwrap(),
            BackendId::ExactParetoEnum
        );

        let req = SolveRequest::independent(&large, ObjectiveMode::MemoryBudget { budget });
        assert_eq!(
            portfolio.selected(&req).unwrap(),
            BackendId::ConstrainedSearch
        );

        // The independent constrained problem is inapproximable: a
        // paper-ratio demand must be refused on non-tiny instances.
        let req = SolveRequest::independent(&large, ObjectiveMode::MemoryBudget { budget })
            .with_guarantee(Guarantee::PaperRatio);
        assert!(portfolio.selected(&req).is_err());
    }

    #[test]
    fn every_standard_solution_validates() {
        use sws_model::validate::validate_timed;
        let portfolio = Portfolio::standard();
        let inst = independent(24, 3, 31);
        let preds: Vec<Vec<usize>> = vec![Vec::new(); inst.n()];
        for (objective, guarantee) in [
            (ObjectiveMode::CmaxOnly, Guarantee::None),
            (ObjectiveMode::CmaxOnly, Guarantee::EpsilonOptimal(0.3)),
            (ObjectiveMode::BiObjective { delta: 1.0 }, Guarantee::None),
            (
                ObjectiveMode::BiObjective { delta: 2.5 },
                Guarantee::PaperRatio,
            ),
            (ObjectiveMode::TriObjective { delta: 3.0 }, Guarantee::None),
        ] {
            let req = SolveRequest::independent(&inst, objective).with_guarantee(guarantee);
            let solution = portfolio.solve(&req).unwrap();
            validate_timed(inst.tasks(), inst.m(), &solution.schedule, &preds, None)
                .unwrap_or_else(|e| panic!("{}: invalid schedule: {e}", solution.stats.backend));
            assert!(solution.achieved.satisfies(&guarantee));
        }
    }
}
