//! Batched multi-instance scheduling — the serving-scale entry point.
//!
//! The paper's experiments (and any deployment of these schedulers as a
//! service) are throughput workloads: *many instances*, each scheduled
//! once or a few times, where the metric that matters is schedules per
//! second, not the latency of one run. [`BatchScheduler`] is the
//! allocation-free kernel core packaged for that shape:
//!
//! * the instance stream is split into contiguous chunks, one per rayon
//!   worker, preserving input order in the output;
//! * each worker owns **one** [`KernelWorkspace`] and one reusable
//!   admissibility predicate, so in steady state a scheduled instance
//!   costs exactly its CSR flattening + rank computation (both
//!   per-instance by nature) and the kernel's `O((n + E)·log n)` loop —
//!   zero per-run buffer allocation;
//! * results are **bit-identical** to the one-shot entry points
//!   ([`crate::rls::rls`] / `sws_listsched::dag_list_schedule`), which
//!   the differential suite checks instance for instance.
//!
//! [`BatchScheduler::run_many`] returns the raw kernel outcomes;
//! [`BatchScheduler::run_many_report`] additionally wraps them in a
//! [`BatchReport`] with the wall-clock and the achieved schedules/sec —
//! the number the committed `BENCH_batch.json` baseline tracks.

use std::time::{Duration, Instant};

use sws_dag::DagInstance;
use sws_listsched::kernel::{
    event_driven_schedule_csr, KernelOutcome, KernelWorkspace, MemoryCapAdmission, Unrestricted,
};
use sws_model::error::ModelError;
use sws_model::numeric::exceeds;
use sws_model::solve::{Solution, SolveRequest};

use crate::dispatch::DispatchWorker;
use crate::pareto_sweep::run_chunks;
use crate::portfolio::Portfolio;
use crate::rls::PriorityOrder;

/// Which scheduler a batch runs on every instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchAlgorithm {
    /// Unrestricted Graham DAG list scheduling.
    DagList,
    /// The paper's RLS∆ with the given memory degradation factor
    /// (`∆ > 2`); the cap is `∆·LB` per instance.
    Rls {
        /// The memory degradation factor `∆ > 2`.
        delta: f64,
    },
}

/// Configuration shared by every instance of a batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchSpec {
    /// The scheduler to run.
    pub algorithm: BatchAlgorithm,
    /// Tie-breaking priority order (ranks are derived per instance).
    pub order: PriorityOrder,
}

impl BatchSpec {
    /// Unrestricted DAG list scheduling with the given order.
    pub fn dag_list(order: PriorityOrder) -> Self {
        BatchSpec {
            algorithm: BatchAlgorithm::DagList,
            order,
        }
    }

    /// RLS∆ at `delta` with the given order.
    pub fn rls(delta: f64, order: PriorityOrder) -> Self {
        BatchSpec {
            algorithm: BatchAlgorithm::Rls { delta },
            order,
        }
    }
}

/// A completed batch: the per-instance outcomes (input order) plus the
/// observed throughput.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// One kernel outcome per input instance, in input order.
    pub outcomes: Vec<KernelOutcome>,
    /// Wall-clock time of the scheduling pass (excludes input
    /// construction, includes per-instance CSR/rank preparation).
    pub elapsed: Duration,
    /// `outcomes.len() / elapsed` in schedules per second (`0` for an
    /// empty batch).
    pub schedules_per_sec: f64,
}

/// Schedules a stream of instances across the rayon pool with one
/// reusable [`KernelWorkspace`] per worker. See the module docs.
#[derive(Debug, Clone, Copy)]
pub struct BatchScheduler {
    workers: usize,
}

impl Default for BatchScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchScheduler {
    /// One chunk per rayon worker thread.
    pub fn new() -> Self {
        Self::with_workers(rayon::current_num_threads().max(1))
    }

    /// Explicit worker/chunk count (≥ 1); the produced outcomes do not
    /// depend on it, only the wall-clock does.
    pub fn with_workers(workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        BatchScheduler { workers }
    }

    /// Schedules every instance under `spec`, returning one
    /// [`KernelOutcome`] per instance in input order. Bit-identical to
    /// running the one-shot scheduler on each instance separately.
    pub fn run_many(
        &self,
        instances: &[DagInstance],
        spec: &BatchSpec,
    ) -> Result<Vec<KernelOutcome>, ModelError> {
        self.run_many_report(instances, spec).map(|r| r.outcomes)
    }

    /// [`BatchScheduler::run_many`] plus wall-clock and schedules/sec.
    pub fn run_many_report(
        &self,
        instances: &[DagInstance],
        spec: &BatchSpec,
    ) -> Result<BatchReport, ModelError> {
        if let BatchAlgorithm::Rls { delta } = spec.algorithm {
            // Same validation as crate::rls — shared so the accepted
            // range cannot drift from the one-shot entry point's.
            crate::rls::validate_rls_delta(delta)?;
        }
        let spec = *spec;
        let t0 = Instant::now();
        let run_chunk = |chunk: Vec<&DagInstance>| -> Result<Vec<KernelOutcome>, ModelError> {
            // One workspace and one admission predicate per worker,
            // reused across every instance of the chunk.
            let mut ws = KernelWorkspace::new();
            let mut admission = MemoryCapAdmission::new(1, f64::INFINITY);
            chunk
                .into_iter()
                .map(|inst| run_one(inst, &spec, &mut ws, &mut admission))
                .collect()
        };
        let outcomes: Vec<KernelOutcome> = run_chunks(self.chunked(instances), run_chunk)?;
        let elapsed = t0.elapsed();
        let secs = elapsed.as_secs_f64();
        let schedules_per_sec = if exceeds(secs, 0.0) && !outcomes.is_empty() {
            outcomes.len() as f64 / secs
        } else {
            0.0
        };
        Ok(BatchReport {
            outcomes,
            elapsed,
            schedules_per_sec,
        })
    }

    /// Contiguous chunks of the instance stream, one per worker.
    fn chunked<'i>(&self, instances: &'i [DagInstance]) -> Vec<Vec<&'i DagInstance>> {
        if instances.is_empty() {
            return Vec::new();
        }
        let chunk_len = instances.len().div_ceil(self.workers);
        instances
            .chunks(chunk_len)
            .map(|c| c.iter().collect())
            .collect()
    }

    /// Serves a **mixed-guarantee request stream** through the portfolio:
    /// each [`SolveRequest`] names its own instance, objective mode and
    /// required guarantee, so backend selection happens *per item* —
    /// exact for the tiny instances in the stream, kernel RLS∆ for the
    /// big ones, a refusal (`Err` in that slot) where nothing qualifies.
    /// The stream is split into contiguous chunks exactly like
    /// [`BatchScheduler::run_many`]; each chunk is served by one
    /// [`DispatchWorker`] (the per-worker selection + workspace routine
    /// shared with the `sws_service` queue runtime), so the batch and
    /// service paths cannot drift; results come back in input order.
    ///
    /// Kernel-backed items are bit-identical to calling the one-shot
    /// entry points (`rls`, `tri_objective_rls`, …) on each instance
    /// separately — the same guarantee `run_many` gives, extended to the
    /// portfolio vocabulary.
    pub fn run_requests(
        &self,
        portfolio: &Portfolio,
        items: &[SolveRequest<'_>],
    ) -> Result<Vec<Result<Solution, ModelError>>, ModelError> {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        let chunk_len = items.len().div_ceil(self.workers);
        let chunks: Vec<&[SolveRequest]> = items.chunks(chunk_len).collect();
        let run_chunk =
            |chunk: &[SolveRequest]| -> Result<Vec<Result<Solution, ModelError>>, ModelError> {
                let mut worker = DispatchWorker::new(portfolio);
                Ok(chunk.iter().map(|req| worker.solve(req)).collect())
            };
        run_chunks(chunks, run_chunk)
    }
}

/// Schedules one instance through the worker's reusable buffers.
fn run_one(
    inst: &DagInstance,
    spec: &BatchSpec,
    ws: &mut KernelWorkspace,
    admission: &mut MemoryCapAdmission,
) -> Result<KernelOutcome, ModelError> {
    // Per-instance by nature: the flat mirror and the priority ranks.
    let csr = inst.csr();
    let rank = spec.order.rank_csr(inst.graph(), &csr);
    let m = inst.m();
    match spec.algorithm {
        BatchAlgorithm::DagList => event_driven_schedule_csr(&csr, m, &rank, &mut Unrestricted, ws),
        BatchAlgorithm::Rls { delta } => {
            let lb = inst.mmax_lower_bound();
            admission.reset(m, delta * lb);
            event_driven_schedule_csr(&csr, m, &rank, admission, ws)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rls::{rls, RlsConfig};
    use sws_listsched::dag_list_schedule;
    use sws_workloads::dagsets::{dag_workload, DagFamily};
    use sws_workloads::rng::seeded_rng;
    use sws_workloads::TaskDistribution;

    fn mixed_instances() -> Vec<DagInstance> {
        let mut rng = seeded_rng(71);
        let mut out = Vec::new();
        for (family, n, m) in [
            (DagFamily::LayeredRandom, 60usize, 4usize),
            (DagFamily::ForkJoin, 25, 2),
            (DagFamily::GaussianElimination, 45, 8),
            (DagFamily::Diamond, 36, 3),
            (DagFamily::Fft, 24, 5),
        ] {
            out.push(dag_workload(
                family,
                n,
                m,
                TaskDistribution::AntiCorrelated,
                &mut rng,
            ));
        }
        out
    }

    #[test]
    fn batch_rls_matches_per_instance_runs_bit_for_bit() {
        let instances = mixed_instances();
        let spec = BatchSpec::rls(3.0, PriorityOrder::Index);
        for workers in [1usize, 2, instances.len() + 3] {
            let outcomes = BatchScheduler::with_workers(workers)
                .run_many(&instances, &spec)
                .unwrap();
            assert_eq!(outcomes.len(), instances.len());
            for (inst, out) in instances.iter().zip(&outcomes) {
                let direct = rls(inst, &RlsConfig::new(3.0)).unwrap();
                assert_eq!(out.schedule, direct.schedule, "workers={workers}");
                assert_eq!(out.marked, direct.marked, "workers={workers}");
            }
        }
    }

    #[test]
    fn batch_dag_list_matches_per_instance_runs_bit_for_bit() {
        let instances = mixed_instances();
        let spec = BatchSpec::dag_list(PriorityOrder::BottomLevel);
        let outcomes = BatchScheduler::new().run_many(&instances, &spec).unwrap();
        for (inst, out) in instances.iter().zip(&outcomes) {
            let rank = PriorityOrder::BottomLevel.rank(inst.graph());
            assert_eq!(out.schedule, dag_list_schedule(inst, &rank));
        }
    }

    #[test]
    fn batch_report_counts_throughput() {
        let instances = mixed_instances();
        let report = BatchScheduler::new()
            .run_many_report(&instances, &BatchSpec::rls(4.0, PriorityOrder::Spt))
            .unwrap();
        assert_eq!(report.outcomes.len(), instances.len());
        assert!(report.schedules_per_sec > 0.0);
    }

    #[test]
    fn mixed_guarantee_request_stream_selects_per_item() {
        use sws_dag::TaskGraph;
        use sws_model::solve::{BackendId, Guarantee, ObjectiveMode};
        use sws_model::validate::validate_timed;

        let portfolio = Portfolio::standard();
        let mut instances = mixed_instances();
        // A tiny edge-free instance: per-item selection must route it to
        // the exact enumerator even inside a kernel-dominated stream.
        let tiny = DagInstance::new(
            TaskGraph::new(
                sws_model::task::TaskSet::from_ps(
                    &[3.0, 1.0, 4.0, 1.0, 5.0],
                    &[2.0, 7.0, 1.0, 8.0, 2.0],
                )
                .unwrap(),
            ),
            2,
        )
        .unwrap();
        instances.push(tiny);

        let mut items: Vec<SolveRequest> = instances
            .iter()
            .map(|inst| SolveRequest::precedence(inst, ObjectiveMode::BiObjective { delta: 3.0 }))
            .collect();
        // One item demands the impossible: an exact answer on a real DAG.
        items[1] = items[1].with_guarantee(Guarantee::Exact);

        for workers in [1usize, 3] {
            let results = BatchScheduler::with_workers(workers)
                .run_requests(&portfolio, &items)
                .unwrap();
            assert_eq!(results.len(), items.len());

            // Kernel-served DAG items are bit-identical to one-shot rls().
            for (idx, (inst, result)) in instances.iter().zip(&results).enumerate() {
                if idx == 1 {
                    assert!(
                        matches!(
                            result,
                            Err(sws_model::ModelError::NoQualifiedBackend { .. })
                        ),
                        "workers={workers}: exact demand on a DAG must be refused"
                    );
                    continue;
                }
                let solution = result.as_ref().unwrap();
                validate_timed(
                    inst.tasks(),
                    inst.m(),
                    &solution.schedule,
                    inst.graph().all_preds(),
                    None,
                )
                .unwrap();
                if idx + 1 == instances.len() {
                    // The tiny edge-free instance went to the enumerator.
                    assert_eq!(solution.stats.backend, BackendId::ExactParetoEnum);
                } else {
                    assert_eq!(solution.stats.backend, BackendId::KernelRls);
                    let direct = rls(inst, &RlsConfig::new(3.0)).unwrap();
                    assert_eq!(solution.schedule, direct.schedule, "workers={workers}");
                }
            }
        }
    }

    #[test]
    fn batch_rejects_invalid_delta_and_handles_empty_input() {
        let instances = mixed_instances();
        for bad in [2.0, 0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(BatchScheduler::new()
                .run_many(&instances, &BatchSpec::rls(bad, PriorityOrder::Index))
                .is_err());
        }
        let empty: Vec<DagInstance> = Vec::new();
        let report = BatchScheduler::new()
            .run_many_report(&empty, &BatchSpec::dag_list(PriorityOrder::Index))
            .unwrap();
        assert!(report.outcomes.is_empty());
        assert_eq!(report.schedules_per_sec, 0.0);
    }
}
