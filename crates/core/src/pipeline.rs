//! End-to-end evaluation pipelines shared by the examples, the
//! integration tests and the benchmark harness.
//!
//! A pipeline runs an algorithm, replays the produced schedule through the
//! discrete-event simulator (which independently re-checks feasibility,
//! precedence and memory accounting), computes the reference point —
//! exact optimum when the instance is small enough for the exhaustive
//! solvers, Graham lower bounds otherwise — and packages everything into
//! an [`EvaluationReport`] with achieved-versus-guaranteed ratios.
//!
//! Since PR 4 every scheduler is also a portfolio [`Solver`], so the
//! pipeline no longer needs one hardcoded entry point per algorithm:
//! [`evaluate_request`] evaluates *any* backend (or the auto-selecting
//! [`Portfolio`](crate::portfolio::Portfolio) itself, via
//! [`evaluate_routed`]) on a [`SolveRequest`], producing the same
//! [`EvaluationReport`] the fixed-algorithm runners build. The
//! `evaluate_sbo`/`evaluate_rls` conveniences are kept for callers that
//! also want the algorithm-specific result types; their reports are
//! bit-identical to what they produced before the solver-generic path
//! existed.

use sws_dag::DagInstance;
use sws_exact::branch_bound::optimal_point;
use sws_model::bounds::LowerBounds;
use sws_model::error::ModelError;
use sws_model::objectives::{ObjectivePoint, TriObjectivePoint};
use sws_model::ratio::{RatioReport, Reference};
use sws_model::solve::{RequestInstance, Solution, SolveRequest};
use sws_model::Instance;
use sws_simulator::{simulate_assignment, simulate_dag_schedule, simulate_timed};

use crate::portfolio::{resolve_dag, Portfolio, Solver};
use crate::rls::{rls, RlsConfig, RlsResult};
use crate::sbo::{sbo, SboConfig, SboResult};

/// Instances with at most this many tasks (and a manageable `m^n`) use
/// the exact branch-and-bound optimum as the reference point.
const EXACT_REFERENCE_MAX_N: usize = 14;
/// Upper limit on `m^n` for the exact reference.
const EXACT_REFERENCE_MAX_STATES: f64 = 1e7;

/// The aggregate outcome of one evaluated algorithm run.
#[derive(Debug, Clone)]
pub struct EvaluationReport {
    /// Short algorithm label (`"sbo"`, `"rls"`, …) plus its parameters.
    pub algorithm: String,
    /// Achieved objective values.
    pub point: ObjectivePoint,
    /// Achieved tri-objective values (sum of completion times included)
    /// when the schedule carries timing information.
    pub tri: Option<TriObjectivePoint>,
    /// Lower bounds of the instance (`ΣC_i` entry is the exact SPT value
    /// for independent tasks).
    pub lower_bounds: LowerBounds,
    /// Achieved-versus-reference ratios with the proven guarantee attached.
    pub ratio: RatioReport,
    /// Average processor utilization reported by the simulator.
    pub utilization: f64,
    /// Peak memory reported by the simulator (must equal `point.mmax`).
    pub simulated_peak_memory: f64,
    /// Number of tasks and processors, for experiment logs.
    pub n: usize,
    /// Number of processors.
    pub m: usize,
}

impl EvaluationReport {
    /// True when the achieved ratios respect the proven guarantee.
    pub fn within_guarantee(&self) -> bool {
        self.ratio.within_guarantee()
    }

    /// One CSV-ish line for experiment logs.
    pub fn summary_line(&self) -> String {
        format!(
            "{}, n={}, m={}, Cmax={:.4}, Mmax={:.4}, ratios=({:.4}, {:.4}), guarantee={}",
            self.algorithm,
            self.n,
            self.m,
            self.point.cmax,
            self.point.mmax,
            self.ratio.cmax_ratio,
            self.ratio.mmax_ratio,
            match self.ratio.guarantee {
                Some((gc, gm)) => format!("({gc:.4}, {gm:.4})"),
                None => "none".to_string(),
            }
        )
    }
}

/// Chooses the reference point of an independent-task instance: the exact
/// per-objective optimum when the exhaustive solver is affordable, the
/// Graham lower bounds otherwise.
pub fn reference_point(inst: &Instance) -> (ObjectivePoint, Reference) {
    let states = (inst.m() as f64).powi(inst.n() as i32);
    if inst.n() <= EXACT_REFERENCE_MAX_N && states <= EXACT_REFERENCE_MAX_STATES {
        (optimal_point(inst), Reference::Optimum)
    } else {
        let lb = LowerBounds::of_instance(inst);
        (ObjectivePoint::new(lb.cmax, lb.mmax), Reference::LowerBound)
    }
}

/// Evaluates a [`Solution`] produced by any portfolio [`Solver`] for
/// `req`: replays the schedule through the discrete-event simulator
/// (re-checking feasibility — and precedence, for DAG requests),
/// computes the reference point the same way the fixed-algorithm
/// runners do (independent tasks: exact optimum when affordable, Graham
/// lower bounds otherwise; DAGs: critical-path-aware lower bounds) and
/// packages everything into an [`EvaluationReport`] whose ratio
/// guarantee is the solution's proven [`Solution::ratio_bound`].
pub fn evaluate_solution(
    req: &SolveRequest,
    solution: &Solution,
) -> Result<EvaluationReport, ModelError> {
    let algorithm = format!(
        "{}({})",
        solution.stats.backend.label(),
        req.objective.label()
    );
    match req.instance {
        RequestInstance::Independent(inst) => {
            let sim = simulate_timed(inst, &solution.schedule, None)?;
            let (reference, kind) = reference_point(inst);
            let ratio = RatioReport::new(solution.point, reference, kind, solution.ratio_bound);
            Ok(EvaluationReport {
                algorithm,
                point: solution.point,
                tri: Some(TriObjectivePoint::new(
                    solution.point.cmax,
                    solution.point.mmax,
                    sim.sum_completion,
                )),
                lower_bounds: LowerBounds::of_instance(inst),
                ratio,
                utilization: sim.utilization,
                simulated_peak_memory: sim.peak_memory,
                n: inst.n(),
                m: inst.m(),
            })
        }
        RequestInstance::Precedence(p) => {
            let dag = resolve_dag(p)?;
            let sim = simulate_dag_schedule(&dag, &solution.schedule, None)?;
            let cp = dag.critical_path_length();
            let lower_bounds = LowerBounds::with_critical_path(dag.tasks(), dag.m(), cp);
            let reference = ObjectivePoint::new(lower_bounds.cmax, lower_bounds.mmax);
            let ratio = RatioReport::new(
                solution.point,
                reference,
                Reference::LowerBound,
                solution.ratio_bound,
            );
            Ok(EvaluationReport {
                algorithm,
                point: solution.point,
                tri: Some(TriObjectivePoint::new(
                    solution.point.cmax,
                    solution.point.mmax,
                    sim.sum_completion,
                )),
                lower_bounds,
                ratio,
                utilization: sim.utilization,
                simulated_peak_memory: sim.peak_memory,
                n: dag.n(),
                m: dag.m(),
            })
        }
    }
}

/// Runs any portfolio [`Solver`] on a [`SolveRequest`] and evaluates the
/// outcome end to end — the solver-generic replacement for the
/// per-algorithm `evaluate_*` entry points.
pub fn evaluate_request(
    solver: &dyn Solver,
    req: &SolveRequest,
) -> Result<(EvaluationReport, Solution), ModelError> {
    let solution = solver.solve(req)?;
    let report = evaluate_solution(req, &solution)?;
    Ok((report, solution))
}

/// [`evaluate_request`] through the portfolio's auto-selection: the
/// evaluated backend is whatever [`Portfolio::select`] resolves for the
/// request.
pub fn evaluate_routed(
    portfolio: &Portfolio,
    req: &SolveRequest,
) -> Result<(EvaluationReport, Solution), ModelError> {
    let solution = portfolio.solve(req)?;
    let report = evaluate_solution(req, &solution)?;
    Ok((report, solution))
}

/// Runs SBO∆, simulates the resulting assignment and reports
/// achieved-versus-guaranteed ratios.
pub fn evaluate_sbo(
    inst: &Instance,
    config: &SboConfig,
) -> Result<(EvaluationReport, SboResult), ModelError> {
    evaluate_sbo_result(inst, sbo(inst, config)?)
}

/// Evaluates an already-computed SBO∆ result (e.g. one produced by a
/// shared [`crate::sbo::SboEngine`] across a ∆ sweep) exactly as
/// [`evaluate_sbo`] would.
pub fn evaluate_sbo_result(
    inst: &Instance,
    result: SboResult,
) -> Result<(EvaluationReport, SboResult), ModelError> {
    let config = result.config;
    let sim = simulate_assignment(inst, &result.assignment, None)?;
    let point = result.objective(inst);
    let (reference, kind) = reference_point(inst);
    let ratio = RatioReport::new(point, reference, kind, Some(result.guarantee));
    let lower_bounds = LowerBounds::of_instance(inst);
    let report = EvaluationReport {
        algorithm: format!("sbo(∆={}, inner={})", config.delta, config.inner.label()),
        point,
        tri: Some(TriObjectivePoint::new(
            point.cmax,
            point.mmax,
            sim.sum_completion,
        )),
        lower_bounds,
        ratio,
        utilization: sim.utilization,
        simulated_peak_memory: sim.peak_memory,
        n: inst.n(),
        m: inst.m(),
    };
    Ok((report, result))
}

/// Runs RLS∆ on a precedence-constrained instance, simulates the schedule
/// (re-checking precedence and the memory cap) and reports
/// achieved-versus-guaranteed ratios against the critical-path-aware
/// lower bounds.
pub fn evaluate_rls(
    inst: &DagInstance,
    config: &RlsConfig,
) -> Result<(EvaluationReport, RlsResult), ModelError> {
    evaluate_rls_result(inst, rls(inst, config)?)
}

/// Evaluates an already-computed RLS∆ result (e.g. one produced by a
/// warm-started [`crate::rls::RlsEngine`] chain) exactly as
/// [`evaluate_rls`] would.
pub fn evaluate_rls_result(
    inst: &DagInstance,
    result: RlsResult,
) -> Result<(EvaluationReport, RlsResult), ModelError> {
    let config = result.config;
    let sim = simulate_dag_schedule(
        inst,
        &result.schedule,
        Some(result.memory_cap.max(result.lb)),
    )?;
    let point = result.objective(inst.tasks());
    let cp = inst.critical_path_length();
    let lower_bounds = LowerBounds::with_critical_path(inst.tasks(), inst.m(), cp);
    let reference = ObjectivePoint::new(lower_bounds.cmax, lower_bounds.mmax);
    let ratio = RatioReport::new(
        point,
        reference,
        Reference::LowerBound,
        Some(result.guarantee),
    );
    let report = EvaluationReport {
        algorithm: format!("rls(∆={}, order={})", config.delta, config.order.label()),
        point,
        tri: Some(TriObjectivePoint::new(
            point.cmax,
            point.mmax,
            sim.sum_completion,
        )),
        lower_bounds,
        ratio,
        utilization: sim.utilization,
        simulated_peak_memory: sim.peak_memory,
        n: inst.n(),
        m: inst.m(),
    };
    Ok((report, result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sbo::InnerAlgorithm;
    use sws_workloads::dagsets::{dag_workload, DagFamily};
    use sws_workloads::random::random_instance;
    use sws_workloads::rng::seeded_rng;
    use sws_workloads::TaskDistribution;

    #[test]
    fn small_instances_get_an_exact_reference() {
        let inst = random_instance(8, 2, TaskDistribution::Uncorrelated, &mut seeded_rng(1));
        let (_, kind) = reference_point(&inst);
        assert_eq!(kind, Reference::Optimum);
        let big = random_instance(200, 8, TaskDistribution::Uncorrelated, &mut seeded_rng(1));
        let (_, kind) = reference_point(&big);
        assert_eq!(kind, Reference::LowerBound);
    }

    #[test]
    fn sbo_report_is_internally_consistent() {
        let inst = random_instance(10, 3, TaskDistribution::AntiCorrelated, &mut seeded_rng(2));
        let (report, result) =
            evaluate_sbo(&inst, &SboConfig::new(1.0, InnerAlgorithm::Lpt)).unwrap();
        // Simulator and analytic evaluation must agree.
        assert!((report.simulated_peak_memory - report.point.mmax).abs() < 1e-9);
        assert_eq!(report.n, 10);
        assert_eq!(report.m, 3);
        assert!(report.utilization > 0.0 && report.utilization <= 1.0 + 1e-12);
        assert_eq!(report.point, result.objective(&inst));
        assert!(report.summary_line().contains("sbo"));
    }

    #[test]
    fn sbo_guarantee_is_respected_against_the_exact_optimum() {
        // With the exact reference the within_guarantee check is a true
        // approximation-ratio verification of Properties 1 and 2.
        for seed in 0..8u64 {
            let inst = random_instance(
                9,
                3,
                TaskDistribution::AntiCorrelated,
                &mut seeded_rng(seed),
            );
            for &delta in &[0.5, 1.0, 2.0] {
                let (report, _) =
                    evaluate_sbo(&inst, &SboConfig::new(delta, InnerAlgorithm::Lpt)).unwrap();
                assert_eq!(report.ratio.reference_kind, Reference::Optimum);
                assert!(
                    report.within_guarantee(),
                    "seed {seed}, ∆ {delta}: {}",
                    report.summary_line()
                );
            }
        }
    }

    #[test]
    fn rls_report_checks_the_memory_cap_through_the_simulator() {
        let mut rng = seeded_rng(3);
        let inst = dag_workload(
            DagFamily::ForkJoin,
            60,
            4,
            TaskDistribution::Bimodal,
            &mut rng,
        );
        let (report, result) = evaluate_rls(&inst, &RlsConfig::new(2.5)).unwrap();
        assert!(report.point.mmax <= 2.5 * result.lb + 1e-9);
        assert!(report.within_guarantee(), "{}", report.summary_line());
        assert!(report.tri.unwrap().sum_ci > 0.0);
    }

    #[test]
    fn rls_reports_hold_across_dag_families() {
        let mut rng = seeded_rng(4);
        for family in DagFamily::all() {
            let inst = dag_workload(family, 50, 3, TaskDistribution::Uncorrelated, &mut rng);
            let (report, _) = evaluate_rls(&inst, &RlsConfig::new(3.0)).unwrap();
            assert!(
                report.within_guarantee(),
                "{}: {}",
                family.label(),
                report.summary_line()
            );
        }
    }

    #[test]
    fn solver_generic_path_matches_the_fixed_sbo_runner() {
        use sws_model::solve::{Guarantee, ObjectiveMode};

        let portfolio = crate::portfolio::Portfolio::standard();
        // Large enough that the reference point is the lower bound on
        // both paths (the fixed runner would otherwise switch to the
        // exact reference at n ≤ 14, as would the generic path).
        let inst = random_instance(40, 3, TaskDistribution::AntiCorrelated, &mut seeded_rng(9));
        let delta = 1.5;
        let req = sws_model::solve::SolveRequest::independent(
            &inst,
            ObjectiveMode::BiObjective { delta },
        )
        .with_guarantee(Guarantee::PaperRatio);
        let solver = portfolio
            .backend(sws_model::solve::BackendId::Sbo)
            .expect("sbo registered");
        let (generic, solution) = evaluate_request(solver, &req).unwrap();
        let (fixed, _) = evaluate_sbo(&inst, &SboConfig::new(delta, InnerAlgorithm::Lpt)).unwrap();
        assert_eq!(generic.point, fixed.point);
        assert_eq!(generic.ratio.cmax_ratio, fixed.ratio.cmax_ratio);
        assert_eq!(generic.ratio.mmax_ratio, fixed.ratio.mmax_ratio);
        assert_eq!(generic.ratio.guarantee, fixed.ratio.guarantee);
        assert_eq!(generic.simulated_peak_memory, fixed.simulated_peak_memory);
        assert_eq!(generic.utilization, fixed.utilization);
        assert_eq!(generic.tri.unwrap().sum_ci, fixed.tri.unwrap().sum_ci);
        assert_eq!(solution.stats.backend, sws_model::solve::BackendId::Sbo);
    }

    #[test]
    fn solver_generic_path_matches_the_fixed_rls_runner() {
        use sws_model::solve::{Guarantee, ObjectiveMode};

        let portfolio = crate::portfolio::Portfolio::standard();
        let mut rng = seeded_rng(10);
        let dag = dag_workload(
            DagFamily::LayeredRandom,
            70,
            4,
            TaskDistribution::AntiCorrelated,
            &mut rng,
        );
        let delta = 3.0;
        let req =
            sws_model::solve::SolveRequest::precedence(&dag, ObjectiveMode::BiObjective { delta })
                .with_guarantee(Guarantee::PaperRatio);
        let (generic, solution) = evaluate_routed(&portfolio, &req).unwrap();
        assert_eq!(
            solution.stats.backend,
            sws_model::solve::BackendId::KernelRls
        );
        let (fixed, _) = evaluate_rls(&dag, &RlsConfig::new(delta)).unwrap();
        assert_eq!(generic.point, fixed.point);
        assert_eq!(generic.ratio.cmax_ratio, fixed.ratio.cmax_ratio);
        assert_eq!(generic.ratio.mmax_ratio, fixed.ratio.mmax_ratio);
        assert_eq!(generic.ratio.guarantee, fixed.ratio.guarantee);
        assert_eq!(generic.lower_bounds.cmax, fixed.lower_bounds.cmax);
        assert_eq!(generic.simulated_peak_memory, fixed.simulated_peak_memory);
        assert_eq!(generic.utilization, fixed.utilization);
        assert!(generic.within_guarantee());
    }

    #[test]
    fn invalid_parameters_propagate_as_errors() {
        let inst = random_instance(6, 2, TaskDistribution::Correlated, &mut seeded_rng(5));
        assert!(evaluate_sbo(&inst, &SboConfig::new(0.0, InnerAlgorithm::Graham)).is_err());
        let mut rng = seeded_rng(6);
        let dag = dag_workload(
            DagFamily::Diamond,
            20,
            2,
            TaskDistribution::Correlated,
            &mut rng,
        );
        assert!(evaluate_rls(&dag, &RlsConfig::new(2.0)).is_err());
    }
}
