//! SBO∆ — the Symmetric Bi-Objective algorithm (Algorithm 1 of the
//! paper) for independent tasks.
//!
//! The algorithm runs two single-objective schedulers on the *whole* task
//! set: `π₁` optimizes the makespan (within a factor `ρ₁`) and `π₂`
//! optimizes the memory consumption (within a factor `ρ₂`). Writing `C`
//! for the makespan of `π₁` and `M` for the memory of `π₂`, each task is
//! then routed by the threshold rule
//!
//! ```text
//! if p_i / C < ∆ · s_i / M   then  π∆(i) = π₂(i)   else  π∆(i) = π₁(i)
//! ```
//!
//! Intuitively, a task that needs a lot of memory per unit of execution
//! time is placed where the memory schedule wanted it, and conversely.
//! Properties 1 and 2 of the paper show the combined schedule is
//! `((1 + ∆)·ρ₁, (1 + 1/∆)·ρ₂)`-approximate; with the PTAS of
//! Hochbaum–Shmoys as both inner algorithms this gives the
//! `(1 + ∆ + ε, 1 + 1/∆ + ε)` family of Corollary 1.

use sws_model::error::ModelError;
use sws_model::numeric::{exactly_zero, exceeds, finite_gt};
use sws_model::objectives::{cmax_of_assignment, mmax_of_assignment};
use sws_model::schedule::Assignment;
use sws_model::solve::{BackendId, BoundReport, Guarantee, Solution, SolveStats};
use sws_model::Instance;

/// The single-objective scheduler used for the two inner schedules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InnerAlgorithm {
    /// Graham list scheduling in index order, `ρ = 2 − 1/m`.
    Graham,
    /// Longest Processing Time first, `ρ = 4/3 − 1/(3m)`.
    Lpt,
    /// MULTIFIT with 10 bisection rounds, `ρ = 13/11` (classical bound).
    Multifit,
    /// Hochbaum–Shmoys dual-approximation PTAS, `ρ = 1 + ε`.
    Ptas {
        /// Accuracy parameter `ε ∈ (0, 1)`.
        eps: f64,
    },
}

impl InnerAlgorithm {
    /// The proven approximation factor of the inner algorithm on `m`
    /// machines.
    pub fn rho(&self, m: usize) -> f64 {
        match self {
            InnerAlgorithm::Graham => 2.0 - 1.0 / m as f64,
            InnerAlgorithm::Lpt => 4.0 / 3.0 - 1.0 / (3.0 * m as f64),
            InnerAlgorithm::Multifit => 13.0 / 11.0,
            InnerAlgorithm::Ptas { eps } => 1.0 + eps,
        }
    }

    /// A short label for experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            InnerAlgorithm::Graham => "graham",
            InnerAlgorithm::Lpt => "lpt",
            InnerAlgorithm::Multifit => "multifit",
            InnerAlgorithm::Ptas { .. } => "ptas",
        }
    }

    /// Schedules the instance for the makespan objective.
    fn schedule_cmax(&self, inst: &Instance) -> Assignment {
        match self {
            InnerAlgorithm::Graham => sws_listsched::graham_cmax(inst),
            InnerAlgorithm::Lpt => sws_listsched::lpt_cmax(inst),
            InnerAlgorithm::Multifit => sws_listsched::multifit_cmax(inst),
            InnerAlgorithm::Ptas { eps } => sws_ptas::ptas_cmax(inst, *eps).assignment,
        }
    }

    /// Schedules the instance for the memory objective.
    fn schedule_mmax(&self, inst: &Instance) -> Assignment {
        match self {
            InnerAlgorithm::Graham => sws_listsched::graham_mmax(inst),
            InnerAlgorithm::Lpt => sws_listsched::lpt_mmax(inst),
            InnerAlgorithm::Multifit => sws_listsched::multifit::multifit_mmax(inst),
            InnerAlgorithm::Ptas { eps } => sws_ptas::ptas_mmax(inst, *eps).assignment,
        }
    }
}

/// Configuration of one SBO∆ run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SboConfig {
    /// The trade-off parameter `∆ > 0`: small values favour memory, large
    /// values favour the makespan.
    pub delta: f64,
    /// The single-objective scheduler used for both inner schedules.
    pub inner: InnerAlgorithm,
}

impl SboConfig {
    /// Creates a configuration.
    pub fn new(delta: f64, inner: InnerAlgorithm) -> Self {
        SboConfig { delta, inner }
    }

    /// The Corollary 1 configuration: PTAS inner algorithms with accuracy
    /// `ε`.
    pub fn corollary1(delta: f64, eps: f64) -> Self {
        SboConfig {
            delta,
            inner: InnerAlgorithm::Ptas { eps },
        }
    }
}

/// The output of SBO∆.
#[derive(Debug, Clone)]
pub struct SboResult {
    /// The combined assignment `π∆`.
    pub assignment: Assignment,
    /// The makespan-oriented inner schedule `π₁`.
    pub pi1: Assignment,
    /// The memory-oriented inner schedule `π₂`.
    pub pi2: Assignment,
    /// `C = Cmax(π₁)`, the reference makespan of the threshold rule.
    pub reference_cmax: f64,
    /// `M = Mmax(π₂)`, the reference memory of the threshold rule.
    pub reference_mmax: f64,
    /// For each task, whether it was routed to `π₂` (the set `S₂` of the
    /// proofs).
    pub routed_to_memory: Vec<bool>,
    /// The proven guarantee `((1 + ∆)·ρ₁, (1 + 1/∆)·ρ₂)` — ratios to the
    /// *optimal* `C*max` and `M*max`.
    pub guarantee: (f64, f64),
    /// The parameter the result was produced with.
    pub config: SboConfig,
}

impl SboResult {
    /// Objective values of the combined schedule.
    pub fn objective(&self, inst: &Instance) -> sws_model::ObjectivePoint {
        sws_model::ObjectivePoint::of_assignment(inst, &self.assignment)
    }

    /// Number of tasks routed to the memory schedule.
    pub fn memory_routed_count(&self) -> usize {
        self.routed_to_memory.iter().filter(|&&b| b).count()
    }

    /// Packages the run in the unified solver vocabulary
    /// (`sws_model::solve`): the combined assignment packed into start
    /// times, the achieved point, the Properties 1–2 guarantee and the
    /// solve provenance (`rounds` counts the two inner schedules).
    /// Consumes the result, mirroring the other backends' conversions.
    pub fn into_solution(self, inst: &Instance) -> Solution {
        Solution {
            schedule: self.assignment.into_timed(inst.tasks()),
            point: self.objective(inst),
            sum_ci: None,
            achieved: Guarantee::PaperRatio,
            ratio_bound: Some(self.guarantee),
            stats: SolveStats {
                backend: BackendId::Sbo,
                rounds: 2,
                workspace_reused: false,
                bounds: BoundReport::identical(inst.tasks(), inst.m()),
                cost: None,
                attempts: 1,
            },
        }
    }
}

/// The guarantee of Properties 1 and 2: `((1 + ∆)·ρ₁, (1 + 1/∆)·ρ₂)`.
pub fn sbo_guarantee(delta: f64, rho1: f64, rho2: f64) -> (f64, f64) {
    ((1.0 + delta) * rho1, (1.0 + 1.0 / delta) * rho2)
}

/// The guarantee of Corollary 1 (PTAS inner algorithms):
/// `(1 + ∆ + ε, 1 + 1/∆ + ε)` — the paper absorbs the cross terms into
/// `ε`, which is valid for any fixed `∆` by rescaling the PTAS accuracy;
/// this function reports the paper's headline form.
pub fn corollary1_guarantee(delta: f64, eps: f64) -> (f64, f64) {
    (1.0 + delta + eps, 1.0 + 1.0 / delta + eps)
}

/// Reusable SBO∆ engine over one instance: computes the two inner
/// schedules `π₁` and `π₂` **once** and re-runs only the `O(n)`
/// threshold routing per ∆ value.
///
/// The inner schedules do not depend on ∆, so a ∆-sweep that calls
/// [`sbo`] per grid point re-solves the same two single-objective
/// problems over and over — with the PTAS inner algorithm that is
/// essentially the entire cost. [`SboEngine::run`] produces output
/// bit-identical to [`sbo`] at the same ∆; the engine additionally
/// exposes the exact `∆ → 0⁺` / `∆ → ∞` limit schedules the sweeps
/// record as explicit single-objective runs.
///
/// Unlike the DAG kernel, the engine needs no separate reusable
/// workspace: the inner schedules are computed once at construction,
/// and the only per-∆ buffer of [`SboEngine::assignment_at`] is the
/// returned assignment itself.
#[derive(Debug, Clone)]
pub struct SboEngine<'a> {
    inst: &'a Instance,
    inner: InnerAlgorithm,
    pi1: Assignment,
    pi2: Assignment,
    reference_cmax: f64,
    reference_mmax: f64,
}

impl<'a> SboEngine<'a> {
    /// Builds the engine: validates the inner algorithm's parameters and
    /// computes the two reference schedules.
    pub fn new(inst: &'a Instance, inner: InnerAlgorithm) -> Result<Self, ModelError> {
        if let InnerAlgorithm::Ptas { eps } = inner {
            if !(exceeds(eps, 0.0) && exceeds(1.0, eps)) {
                return Err(ModelError::InvalidParameter {
                    name: "eps",
                    value: eps,
                    constraint: "0 < ε < 1",
                });
            }
        }
        let pi1 = inner.schedule_cmax(inst);
        let pi2 = inner.schedule_mmax(inst);
        let reference_cmax = cmax_of_assignment(inst.tasks(), &pi1);
        let reference_mmax = mmax_of_assignment(inst.tasks(), &pi2);
        Ok(SboEngine {
            inst,
            inner,
            pi1,
            pi2,
            reference_cmax,
            reference_mmax,
        })
    }

    /// The makespan-oriented inner schedule `π₁`.
    pub fn pi1(&self) -> &Assignment {
        &self.pi1
    }

    /// The memory-oriented inner schedule `π₂`.
    pub fn pi2(&self) -> &Assignment {
        &self.pi2
    }

    /// Runs the threshold routing at `delta` on the precomputed inner
    /// schedules. Bit-identical to [`sbo`] with the same configuration.
    pub fn run(&self, delta: f64) -> Result<SboResult, ModelError> {
        validate_delta(delta)?;
        // The paper's test is p_i/C < ∆·s_i/M. Cross-multiplying keeps it
        // well defined when C or M is zero (a zero reference means the
        // corresponding objective is already trivially optimal).
        let (assignment, routed_to_memory) = self.route(|inst, i| {
            inst.p(i) * self.reference_mmax < delta * inst.s(i) * self.reference_cmax
        })?;
        let rho = self.inner.rho(self.inst.m());
        Ok(SboResult {
            assignment,
            pi1: self.pi1.clone(),
            pi2: self.pi2.clone(),
            reference_cmax: self.reference_cmax,
            reference_mmax: self.reference_mmax,
            routed_to_memory,
            guarantee: sbo_guarantee(delta, rho, rho),
            config: SboConfig {
                delta,
                inner: self.inner,
            },
        })
    }

    /// The combined assignment at `delta`, without materializing a full
    /// [`SboResult`] (no `π₁`/`π₂` clones, no routing-flag vector): the
    /// sweep hot path, where each grid point must cost exactly one
    /// `O(n)` routing pass. Identical to `run(delta)?.assignment`.
    pub fn assignment_at(&self, delta: f64) -> Result<Assignment, ModelError> {
        validate_delta(delta)?;
        let (assignment, _) = self.route(|inst, i| {
            inst.p(i) * self.reference_mmax < delta * inst.s(i) * self.reference_cmax
        })?;
        Ok(assignment)
    }

    /// The exact `∆ → 0⁺` limit of the threshold rule: a task follows
    /// `π₂` only when the rule routes it there for *every* positive ∆
    /// (`p_i·M = 0 < s_i·C`), and `π₁` otherwise. This is the π₁-only
    /// schedule of the sweep endpoints — computed as a limit, not by
    /// abusing a tiny sentinel ∆ that could collide with a user grid.
    pub fn cmax_limit(&self) -> Result<Assignment, ModelError> {
        let (assignment, _) = self.route(|inst, i| {
            exactly_zero(inst.p(i) * self.reference_mmax)
                && exceeds(inst.s(i) * self.reference_cmax, 0.0)
        })?;
        Ok(assignment)
    }

    /// The exact `∆ → ∞` limit of the threshold rule: a task follows
    /// `π₂` whenever `s_i·C > 0` (for large enough ∆ the rule routes it
    /// there), and `π₁` otherwise. The π₂-only sweep endpoint.
    pub fn mmax_limit(&self) -> Result<Assignment, ModelError> {
        let (assignment, _) =
            self.route(|inst, i| exceeds(inst.s(i) * self.reference_cmax, 0.0))?;
        Ok(assignment)
    }

    /// Routes every task by `to_memory(inst, i)` over the precomputed
    /// inner schedules, returning the combined assignment and the routing
    /// flags (the set `S₂` of the proofs).
    fn route<F: Fn(&Instance, usize) -> bool>(
        &self,
        to_memory: F,
    ) -> Result<(Assignment, Vec<bool>), ModelError> {
        let inst = self.inst;
        let mut assignment = Assignment::zeroed(inst.n(), inst.m())?;
        let mut routed_to_memory = vec![false; inst.n()];
        for (i, routed) in routed_to_memory.iter_mut().enumerate() {
            let to_mem = to_memory(inst, i);
            let target = if to_mem {
                self.pi2.proc_of(i)
            } else {
                self.pi1.proc_of(i)
            };
            assignment.assign(i, target)?;
            *routed = to_mem;
        }
        Ok((assignment, routed_to_memory))
    }
}

/// Validates the threshold-rule parameter `∆ > 0` (finite).
fn validate_delta(delta: f64) -> Result<(), ModelError> {
    if !finite_gt(delta, 0.0) {
        return Err(ModelError::InvalidParameter {
            name: "delta",
            value: delta,
            constraint: "∆ > 0",
        });
    }
    Ok(())
}

/// Runs SBO∆ (Algorithm 1).
///
/// Returns an error when `∆ ≤ 0` (the threshold rule needs a positive
/// parameter). One-shot wrapper over [`SboEngine`]; sweeps reuse the
/// engine so the inner schedules are computed once per instance.
pub fn sbo(inst: &Instance, config: &SboConfig) -> Result<SboResult, ModelError> {
    // Validate ∆ before the (possibly expensive) inner schedules are
    // computed, and so the ∆ error takes precedence over the ε one.
    validate_delta(config.delta)?;
    SboEngine::new(inst, config.inner)?.run(config.delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_model::bounds::{cmax_lower_bound, mmax_lower_bound};
    use sws_model::validate::validate_assignment;

    fn anti_correlated_instance() -> Instance {
        Instance::from_ps(
            &[8.0, 6.0, 1.0, 1.0, 4.0, 2.0, 7.0, 3.0],
            &[1.0, 2.0, 7.0, 9.0, 3.0, 5.0, 1.5, 6.0],
            3,
        )
        .unwrap()
    }

    #[test]
    fn rejects_non_positive_delta() {
        let inst = anti_correlated_instance();
        assert!(sbo(&inst, &SboConfig::new(0.0, InnerAlgorithm::Graham)).is_err());
        assert!(sbo(&inst, &SboConfig::new(-1.0, InnerAlgorithm::Graham)).is_err());
        assert!(sbo(&inst, &SboConfig::new(f64::NAN, InnerAlgorithm::Graham)).is_err());
    }

    #[test]
    fn rejects_invalid_ptas_accuracy() {
        let inst = anti_correlated_instance();
        assert!(sbo(&inst, &SboConfig::corollary1(1.0, 0.0)).is_err());
        assert!(sbo(&inst, &SboConfig::corollary1(1.0, 1.5)).is_err());
    }

    #[test]
    fn produces_a_complete_valid_assignment() {
        let inst = anti_correlated_instance();
        for inner in [
            InnerAlgorithm::Graham,
            InnerAlgorithm::Lpt,
            InnerAlgorithm::Multifit,
            InnerAlgorithm::Ptas { eps: 0.25 },
        ] {
            let result = sbo(&inst, &SboConfig::new(1.0, inner)).unwrap();
            assert!(validate_assignment(&inst, &result.assignment, None).is_ok());
        }
    }

    #[test]
    fn property_1_and_2_hold_against_the_inner_references() {
        // The proofs actually establish Cmax(π∆) ≤ (1 + ∆)·C and
        // Mmax(π∆) ≤ (1 + 1/∆)·M, which is what we verify here; ratios to
        // the optimum follow because C ≤ ρ₁·C*max and M ≤ ρ₂·M*max.
        let inst = anti_correlated_instance();
        for &delta in &[0.25, 0.5, 1.0, 2.0, 4.0] {
            let result = sbo(&inst, &SboConfig::new(delta, InnerAlgorithm::Lpt)).unwrap();
            let point = result.objective(&inst);
            assert!(
                point.cmax <= (1.0 + delta) * result.reference_cmax + 1e-9,
                "∆ = {delta}: Cmax {} > (1+∆)·C {}",
                point.cmax,
                (1.0 + delta) * result.reference_cmax
            );
            assert!(
                point.mmax <= (1.0 + 1.0 / delta) * result.reference_mmax + 1e-9,
                "∆ = {delta}: Mmax {} > (1+1/∆)·M {}",
                point.mmax,
                (1.0 + 1.0 / delta) * result.reference_mmax
            );
        }
    }

    #[test]
    fn guarantee_holds_against_the_graham_lower_bounds() {
        let inst = anti_correlated_instance();
        let lb_c = cmax_lower_bound(inst.tasks(), inst.m());
        let lb_m = mmax_lower_bound(inst.tasks(), inst.m());
        for &delta in &[0.5, 1.0, 2.0] {
            let result = sbo(&inst, &SboConfig::new(delta, InnerAlgorithm::Graham)).unwrap();
            let point = result.objective(&inst);
            let (gc, gm) = result.guarantee;
            // The guarantee is against the optimum, which is at least the
            // lower bound, so achieved / LB may exceed achieved / OPT —
            // but achieved must still be below guarantee · OPT ≤ guarantee
            // · (anything ≥ OPT). Use the LB-relative check only as a
            // sanity ceiling with the LB in the right place:
            assert!(point.cmax <= gc * lb_c.max(1e-12) * 2.0 + 1e-9);
            assert!(point.mmax <= gm * lb_m.max(1e-12) * 2.0 + 1e-9);
        }
    }

    #[test]
    fn extreme_deltas_degenerate_to_the_single_objective_schedules() {
        let inst = anti_correlated_instance();
        // Tiny ∆: the threshold p_i/C < ∆·s_i/M is almost never satisfied,
        // so (almost) every task follows π₁.
        let tiny = sbo(&inst, &SboConfig::new(1e-9, InnerAlgorithm::Lpt)).unwrap();
        assert_eq!(tiny.memory_routed_count(), 0);
        assert_eq!(tiny.assignment, tiny.pi1);
        // Huge ∆: every task with positive s follows π₂.
        let huge = sbo(&inst, &SboConfig::new(1e9, InnerAlgorithm::Lpt)).unwrap();
        assert_eq!(huge.memory_routed_count(), inst.n());
        assert_eq!(huge.assignment, huge.pi2);
    }

    #[test]
    fn symmetry_swapping_p_and_s_swaps_the_roles() {
        // With the instance's p/s swapped and ∆ replaced by 1/∆, the
        // objective point of SBO is the mirror of the original (the paper
        // notes all independent-task results are symmetric).
        let inst = anti_correlated_instance();
        let delta = 0.5;
        let a = sbo(&inst, &SboConfig::new(delta, InnerAlgorithm::Graham)).unwrap();
        let b = sbo(
            &inst.swapped(),
            &SboConfig::new(1.0 / delta, InnerAlgorithm::Graham),
        )
        .unwrap();
        let pa = a.objective(&inst);
        let pb = b.objective(&inst.swapped());
        // Graham index-order scheduling is itself symmetric under the swap,
        // so the points mirror exactly.
        assert!((pa.cmax - pb.mmax).abs() < 1e-9);
        assert!((pa.mmax - pb.cmax).abs() < 1e-9);
    }

    #[test]
    fn guarantee_formulas() {
        let (gc, gm) = sbo_guarantee(2.0, 1.5, 1.5);
        assert!((gc - 4.5).abs() < 1e-12);
        assert!((gm - 2.25).abs() < 1e-12);
        let (c1, m1) = corollary1_guarantee(1.0, 0.1);
        assert!((c1 - 2.1).abs() < 1e-12);
        assert!((m1 - 2.1).abs() < 1e-12);
    }

    #[test]
    fn zero_memory_tasks_always_follow_the_makespan_schedule() {
        let inst = Instance::from_ps(&[3.0, 2.0, 1.0], &[0.0, 0.0, 0.0], 2).unwrap();
        let result = sbo(&inst, &SboConfig::new(1.0, InnerAlgorithm::Graham)).unwrap();
        assert_eq!(result.memory_routed_count(), 0);
        assert_eq!(result.assignment, result.pi1);
    }

    #[test]
    fn engine_matches_the_one_shot_entry_point_exactly() {
        let inst = anti_correlated_instance();
        for inner in [InnerAlgorithm::Graham, InnerAlgorithm::Lpt] {
            let engine = SboEngine::new(&inst, inner).unwrap();
            for &delta in &[0.25, 0.5, 1.0, 2.0, 4.0] {
                let via_engine = engine.run(delta).unwrap();
                let one_shot = sbo(&inst, &SboConfig::new(delta, inner)).unwrap();
                assert_eq!(via_engine.assignment, one_shot.assignment);
                assert_eq!(engine.assignment_at(delta).unwrap(), one_shot.assignment);
                assert_eq!(via_engine.routed_to_memory, one_shot.routed_to_memory);
                assert_eq!(via_engine.reference_cmax, one_shot.reference_cmax);
                assert_eq!(via_engine.reference_mmax, one_shot.reference_mmax);
            }
        }
    }

    #[test]
    fn engine_limits_bound_the_threshold_rule() {
        let inst = anti_correlated_instance();
        let engine = SboEngine::new(&inst, InnerAlgorithm::Lpt).unwrap();
        // All storage requirements are positive, so the ∆ limits are the
        // two inner schedules themselves.
        assert_eq!(engine.cmax_limit().unwrap(), *engine.pi1());
        assert_eq!(engine.mmax_limit().unwrap(), *engine.pi2());
        // Zero-storage tasks stay on π₁ even in the ∆ → ∞ limit.
        let zero_s = Instance::from_ps(&[3.0, 2.0, 1.0], &[0.0, 0.0, 0.0], 2).unwrap();
        let engine = SboEngine::new(&zero_s, InnerAlgorithm::Graham).unwrap();
        assert_eq!(engine.mmax_limit().unwrap(), *engine.pi1());
    }

    #[test]
    fn engine_rejects_invalid_parameters() {
        let inst = anti_correlated_instance();
        assert!(SboEngine::new(&inst, InnerAlgorithm::Ptas { eps: 0.0 }).is_err());
        let engine = SboEngine::new(&inst, InnerAlgorithm::Lpt).unwrap();
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(engine.run(bad).is_err(), "∆ = {bad} must be rejected");
        }
    }

    #[test]
    fn works_on_the_paper_lemma_instances() {
        let inst = sws_workloads::lemma1_instance(1e-3);
        for &delta in &[0.5, 1.0, 2.0] {
            let result = sbo(&inst, &SboConfig::new(delta, InnerAlgorithm::Lpt)).unwrap();
            assert!(validate_assignment(&inst, &result.assignment, None).is_ok());
            let point = result.objective(&inst);
            assert!(point.cmax <= (1.0 + delta) * result.reference_cmax + 1e-9);
            assert!(point.mmax <= (1.0 + 1.0 / delta) * result.reference_mmax + 1e-9);
        }
    }
}
