//! Extension beyond the paper: storage-constrained scheduling on
//! *uniform* (related) machines.
//!
//! The paper's concluding remarks list "non identical processors" as
//! future work. This module provides a careful but clearly-marked
//! extension of the two algorithmic ideas to uniform machines, where
//! processor `q` has a speed `v_q > 0` and task `i` takes `p_i / v_q`
//! time units on it while its storage requirement `s_i` is unchanged
//! (code or result size does not depend on where it runs).
//!
//! What carries over, and what does not:
//!
//! * The memory side is untouched by speeds: the Graham memory lower
//!   bound `LB = max(max_i s_i, Σ s_i / m)` and the `Mmax ≤ ∆·LB`
//!   restriction of RLS∆ remain exactly as in the paper, so
//!   [`uniform_rls`] keeps the `∆`-approximation on `Mmax` (Corollary 2).
//! * The makespan side changes: the list-scheduling analysis on uniform
//!   machines no longer gives the clean `2 + 1/(∆−2) − …` constant. We
//!   therefore report the achieved value together with the generalized
//!   lower bound
//!   `LB_C = max(max_i p_i / v_max, Σ p_i / Σ v_q)` but claim no constant
//!   factor; the experiments measure the empirical ratio instead.
//!
//! This module is an *extension experiment*; nothing here is used by the
//! reproduction of the paper's own claims.

use sws_model::error::ModelError;
use sws_model::numeric::{approx_le, finite_gt};
use sws_model::objectives::ObjectivePoint;
use sws_model::schedule::TimedSchedule;
use sws_model::solve::{BackendId, BoundReport, SolveStats};
use sws_model::Instance;

/// A set of uniform (related) machines: identical except for speed.
#[derive(Debug, Clone, PartialEq)]
pub struct UniformMachines {
    speeds: Vec<f64>,
}

impl UniformMachines {
    /// Builds a machine set from per-machine speeds (all must be positive
    /// and finite).
    pub fn new(speeds: Vec<f64>) -> Result<Self, ModelError> {
        if speeds.is_empty() {
            return Err(ModelError::NoProcessors);
        }
        for (q, &v) in speeds.iter().enumerate() {
            if !finite_gt(v, 0.0) {
                return Err(ModelError::InvalidParameter {
                    name: "speed",
                    value: v,
                    constraint: "v_q > 0 and finite",
                });
            }
            let _ = q;
        }
        Ok(UniformMachines { speeds })
    }

    /// Identical machines of unit speed — the paper's own model.
    pub fn identical(m: usize) -> Result<Self, ModelError> {
        UniformMachines::new(vec![1.0; m])
    }

    /// Number of machines.
    pub fn m(&self) -> usize {
        self.speeds.len()
    }

    /// Speed of machine `q`.
    pub fn speed(&self, q: usize) -> f64 {
        self.speeds[q]
    }

    /// Sum of the speeds (the capacity of the whole platform).
    pub fn total_speed(&self) -> f64 {
        self.speeds.iter().sum()
    }

    /// The fastest machine's speed.
    pub fn max_speed(&self) -> f64 {
        self.speeds.iter().cloned().fold(0.0, f64::max)
    }

    /// The lower bounds of an instance on these machines, with their
    /// provenance: `Cmax ≥ max(max_i p_i / v_max, Σ p_i / Σ v_q)`, the
    /// speed-independent Graham memory bound. This routes through the
    /// shared [`BoundReport`] derivation, so identical-machine runs
    /// (`v_q ≡ 1`) report exactly the same numbers as the paper path —
    /// not a private re-derivation.
    pub fn bounds(&self, inst: &Instance) -> BoundReport {
        BoundReport::uniform(inst.tasks(), self.m(), self.max_speed(), self.total_speed())
    }

    /// Lower bound on the optimal makespan of an instance on these
    /// machines: `max(max_i p_i / v_max, Σ p_i / Σ v_q)`.
    pub fn cmax_lower_bound(&self, inst: &Instance) -> f64 {
        self.bounds(inst).cmax
    }
}

/// The output of the uniform-machine restricted list scheduler.
#[derive(Debug, Clone)]
pub struct UniformRlsResult {
    /// The produced schedule (start times in real time units).
    pub schedule: TimedSchedule,
    /// The memory cap `∆·LB` enforced on every machine.
    pub memory_cap: f64,
    /// Achieved objective values.
    pub point: ObjectivePoint,
    /// The parameter the result was produced with.
    pub delta: f64,
    /// Solve provenance; [`SolveStats::bounds`] carries the uniform
    /// lower bounds (`Cmax` side speed-aware, memory side the plain
    /// Graham bound) through the same [`BoundReport`] vocabulary the
    /// identical-machine backends report.
    pub stats: SolveStats,
}

impl UniformRlsResult {
    /// The Graham memory lower bound (speed independent).
    pub fn lb_memory(&self) -> f64 {
        self.stats.bounds.mmax
    }

    /// The uniform-machine makespan lower bound used for reporting.
    pub fn lb_cmax(&self) -> f64 {
        self.stats.bounds.cmax
    }

    /// Achieved makespan over the uniform lower bound — the empirical
    /// ratio reported by the extension experiment (no constant factor is
    /// claimed).
    pub fn cmax_ratio(&self) -> f64 {
        self.stats.bounds.cmax_ratio(self.point.cmax)
    }

    /// Achieved memory over the Graham bound; guaranteed `≤ ∆`.
    pub fn mmax_ratio(&self) -> f64 {
        self.stats.bounds.mmax_ratio(self.point.mmax)
    }
}

/// Memory-restricted list scheduling of independent tasks on uniform
/// machines.
///
/// Tasks are considered in the given `order` (e.g. LPT for makespan
/// quality, SPT for mean completion time); each task is placed on the
/// machine that *finishes it earliest* among those whose cumulative
/// memory stays within `∆·LB`. The memory guarantee `Mmax ≤ ∆·LB` holds
/// exactly as in the paper (Corollary 2) because the counting argument of
/// Lemma 4 does not involve speeds; the makespan is reported against
/// [`UniformMachines::cmax_lower_bound`] without a proven constant.
pub fn uniform_rls(
    inst: &Instance,
    machines: &UniformMachines,
    delta: f64,
    order: &[usize],
) -> Result<UniformRlsResult, ModelError> {
    if !finite_gt(delta, 2.0) {
        return Err(ModelError::InvalidParameter {
            name: "delta",
            value: delta,
            constraint: "∆ > 2",
        });
    }
    if order.len() != inst.n() {
        return Err(ModelError::LengthMismatch {
            left: order.len(),
            right: inst.n(),
        });
    }
    let m = machines.m();
    let tasks = inst.tasks();
    let bounds = machines.bounds(inst);
    let cap = delta * bounds.mmax;

    let mut finish = vec![0.0f64; m];
    let mut memsize = vec![0.0f64; m];
    let mut proc_of = vec![0usize; inst.n()];
    let mut start = vec![0.0f64; inst.n()];

    for &i in order {
        let task = tasks.get(i);
        // Earliest-finish-time rule over the admissible machines.
        let mut best: Option<(f64, usize)> = None;
        for q in 0..m {
            if !approx_le(memsize[q] + task.s, cap) {
                continue;
            }
            let finish_time = finish[q] + task.p / machines.speed(q);
            let better = match best {
                None => true,
                Some((bf, _)) => finish_time < bf,
            };
            if better {
                best = Some((finish_time, q));
            }
        }
        let (finish_time, q) = best.ok_or(ModelError::MemoryExceeded {
            proc: 0,
            used: memsize.iter().cloned().fold(0.0, f64::max) + task.s,
            capacity: cap,
        })?;
        proc_of[i] = q;
        start[i] = finish[q];
        finish[q] = finish_time;
        memsize[q] += task.s;
    }

    // Note: start times are in real time but task durations differ per
    // machine, so the standard `TimedSchedule` evaluation (which assumes
    // unit speeds) is not used for Cmax; we report the true values here.
    let schedule = TimedSchedule::new(proc_of, start, m)?;
    let cmax = finish.iter().cloned().fold(0.0, f64::max);
    let mmax = memsize.iter().cloned().fold(0.0, f64::max);
    let stats = SolveStats {
        backend: BackendId::UniformRls,
        rounds: inst.n(),
        workspace_reused: false,
        bounds,
        cost: None,
        attempts: 1,
    };
    Ok(UniformRlsResult {
        schedule,
        memory_cap: cap,
        point: ObjectivePoint::new(cmax, mmax),
        delta,
        stats,
    })
}

/// Convenience: LPT-ordered uniform-machine restricted scheduling.
pub fn uniform_rls_lpt(
    inst: &Instance,
    machines: &UniformMachines,
    delta: f64,
) -> Result<UniformRlsResult, ModelError> {
    let weights: Vec<f64> = (0..inst.n()).map(|i| inst.p(i)).collect();
    let order = sws_listsched::lpt::lpt_order(&weights);
    uniform_rls(inst, machines, delta, &order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_model::validate::check_memory;
    use sws_workloads::random::random_instance;
    use sws_workloads::rng::seeded_rng;
    use sws_workloads::TaskDistribution;

    fn workload(n: usize, m: usize, seed: u64) -> Instance {
        random_instance(
            n,
            m,
            TaskDistribution::AntiCorrelated,
            &mut seeded_rng(seed),
        )
    }

    #[test]
    fn rejects_invalid_speeds_and_parameters() {
        assert!(UniformMachines::new(vec![]).is_err());
        assert!(UniformMachines::new(vec![1.0, 0.0]).is_err());
        assert!(UniformMachines::new(vec![1.0, f64::NAN]).is_err());
        let machines = UniformMachines::new(vec![1.0, 2.0]).unwrap();
        let inst = workload(10, 2, 1);
        assert!(uniform_rls_lpt(&inst, &machines, 2.0).is_err());
        assert!(uniform_rls(&inst, &machines, 3.0, &[0, 1]).is_err());
    }

    #[test]
    fn identical_unit_speeds_recover_the_paper_model_bounds() {
        let inst = workload(30, 4, 2);
        let machines = UniformMachines::identical(4).unwrap();
        assert!(
            (machines.cmax_lower_bound(&inst)
                - sws_model::bounds::cmax_lower_bound(inst.tasks(), 4))
            .abs()
                < 1e-9
        );
        let result = uniform_rls_lpt(&inst, &machines, 3.0).unwrap();
        assert!(result.mmax_ratio() <= 3.0 + 1e-9);
        // On identical machines LPT list scheduling respects Graham's
        // factor against the lower bound.
        assert!(result.cmax_ratio() <= 2.0 - 1.0 / 4.0 + 1e-9);
    }

    #[test]
    fn memory_cap_holds_for_any_speed_vector() {
        let inst = workload(40, 4, 3);
        for speeds in [vec![1.0, 2.0, 4.0, 8.0], vec![0.5, 0.5, 3.0, 1.0]] {
            let machines = UniformMachines::new(speeds).unwrap();
            for &delta in &[2.25, 3.0, 5.0] {
                let result = uniform_rls_lpt(&inst, &machines, delta).unwrap();
                assert!(result.point.mmax <= delta * result.lb_memory() + 1e-9);
                let asg = result.schedule.assignment();
                check_memory(inst.tasks(), &asg, result.memory_cap).unwrap();
                assert!(result.point.cmax + 1e-9 >= result.lb_cmax());
            }
        }
    }

    #[test]
    fn faster_machines_never_hurt_the_makespan() {
        let inst = workload(30, 3, 4);
        let slow = UniformMachines::new(vec![1.0, 1.0, 1.0]).unwrap();
        let fast = UniformMachines::new(vec![2.0, 2.0, 2.0]).unwrap();
        let a = uniform_rls_lpt(&inst, &slow, 3.0).unwrap();
        let b = uniform_rls_lpt(&inst, &fast, 3.0).unwrap();
        // Doubling every speed exactly halves the makespan of the
        // earliest-finish-time rule (same placement decisions).
        assert!((b.point.cmax - a.point.cmax / 2.0).abs() < 1e-9);
        assert!((b.point.mmax - a.point.mmax).abs() < 1e-9);
    }

    #[test]
    fn single_fast_machine_attracts_the_long_tasks() {
        // One machine 10× faster: with a loose memory cap it should absorb
        // most of the work and the makespan should beat the identical case.
        let inst = workload(25, 3, 5);
        let identical = UniformMachines::identical(3).unwrap();
        let skewed = UniformMachines::new(vec![10.0, 1.0, 1.0]).unwrap();
        let a = uniform_rls_lpt(&inst, &identical, 10.0).unwrap();
        let b = uniform_rls_lpt(&inst, &skewed, 10.0).unwrap();
        assert!(b.point.cmax < a.point.cmax);
    }

    #[test]
    fn empty_instances_are_handled() {
        let inst = Instance::from_ps(&[], &[], 3).unwrap();
        let machines = UniformMachines::new(vec![1.0, 2.0, 3.0]).unwrap();
        let result = uniform_rls(&inst, &machines, 3.0, &[]).unwrap();
        assert_eq!(result.point, ObjectivePoint::new(0.0, 0.0));
    }
}
