//! Incremental replanning: warm-starting the scheduling kernel across
//! **instance mutations**, not just cap changes.
//!
//! Everything below this module solves a frozen DAG: any task arrival,
//! completion or cost re-estimate forces a from-scratch solve. The
//! checkpoint/replay machinery of `sws_listsched::kernel` already
//! proves (for cap deltas) that replaying only from the first affected
//! round is bit-identical and an order of magnitude cheaper; a
//! [`ReplanEngine`] carries that machinery across
//! [`CsrDelta`](sws_dag::CsrDelta) streams:
//!
//! * the instance mutates **in place** (`CsrDag::apply_delta` — no
//!   graph rebuild, no re-flattening),
//! * the kernel run warm-starts from the first affected round
//!   ([`ReplanRun::replan`] — see its docs for the round math),
//! * the produced [`Solution`] is **bit-identical** to a from-scratch
//!   solve of the mutated instance ([`solve_from_scratch`], the
//!   differential oracle the simulator suite replays against).
//!
//! Graham's classic anomaly results are exactly about what happens to
//! list schedules under such perturbations — a shorter task list or a
//! faster task can *lengthen* the schedule. The engine sidesteps
//! anomaly reasoning entirely by contract: the replanned schedule is
//! the schedule the full solver would have produced, so every guarantee
//! the backend carries (the `2 − 1/m` Graham ratio for open sessions)
//! transfers verbatim to the replanned front.
//!
//! The engine reports its work honestly: `stats.rounds` of each
//! returned `Solution` is the number of *replayed* rounds, and
//! [`ReplanEngine::replay_fraction`] exposes the running average the
//! serving layer uses to admission-cost replan events as incremental
//! work rather than full solves.

use std::sync::Arc;

use sws_dag::{CsrDag, CsrDelta};
use sws_listsched::kernel::{CostShift, KernelWorkspace, ReplanDelta, ReplanRun};
use sws_listsched::priority::{index_priority, PriorityRank};
use sws_model::error::ModelError;
use sws_model::numeric::max_or_zero;
use sws_model::objectives::ObjectivePoint;
use sws_model::solve::{
    BackendId, BoundReport, BoundSource, CostEstimate, Guarantee, Solution, SolveStats,
};

/// A live incremental-replanning session over one mutating instance.
///
/// Holds the instance (`Arc<CsrDag>`, mutated in place between solves),
/// the latest [`ReplanRun`] (checkpoints + per-round records) and one
/// reusable [`KernelWorkspace`]; [`ReplanEngine::apply`] folds one
/// [`CsrDelta`] into all three and returns the schedule of the mutated
/// instance.
///
/// The session's admission policy is **fixed at open**: `None` caps
/// nothing (Graham DAG list scheduling), `Some(cap)` enforces the
/// paper's per-processor memory cap. Machines do not grow RAM mid-run;
/// cap *sweeps* stay with `sws_core::pareto_sweep`.
#[derive(Debug)]
pub struct ReplanEngine {
    csr: Arc<CsrDag>,
    m: usize,
    cap: Option<f64>,
    rank: Arc<PriorityRank>,
    ws: KernelWorkspace,
    run: ReplanRun,
    /// `completed[i]`: task `i` finished executing — pinned against
    /// later re-estimates.
    completed: Vec<bool>,
    /// Scratch for the per-processor memory fold of the objective.
    memory: Vec<f64>,
    /// The cached run no longer matches the instance: a capped apply
    /// mutated the CSR and then failed (infeasible). The next event
    /// re-solves cold instead of replaying.
    stale: bool,
    /// Deltas applied so far (completions included).
    events: u64,
    /// Rounds replayed across all applies.
    replayed_rounds: u64,
    /// Rounds a from-scratch solve would have run across all applies.
    total_rounds: u64,
}

impl ReplanEngine {
    /// Opens a session over `csr` on `m` processors with the given
    /// fixed cap, performing the initial cold solve.
    pub fn open(csr: CsrDag, m: usize, cap: Option<f64>) -> Result<Self, ModelError> {
        if m == 0 {
            return Err(ModelError::NoProcessors);
        }
        let n = csr.n();
        let rank = Arc::new(index_priority(n));
        let mut ws = KernelWorkspace::with_capacity(n, m);
        let run = ReplanRun::cold(&csr, m, Arc::clone(&rank), cap, &mut ws)?;
        Ok(ReplanEngine {
            csr: Arc::new(csr),
            m,
            cap,
            rank,
            ws,
            run,
            completed: vec![false; n],
            memory: Vec::with_capacity(m),
            stale: false,
            events: 0,
            replayed_rounds: 0,
            total_rounds: 0,
        })
    }

    /// Applies one delta to the live instance and returns the schedule
    /// of the mutated instance — bit-identical to
    /// [`solve_from_scratch`] on the same instance, at a fraction of
    /// the rounds (`stats.rounds` reports how many were replayed).
    ///
    /// On a validation error the instance and the cached run are
    /// untouched. A kernel error can only arise from a capped session
    /// turning infeasible; the delta has already been applied then, and
    /// [`solve_from_scratch`] on the mutated instance fails with the
    /// same error — infeasibility is part of the bit-identity contract.
    /// The session keeps serving if a later delta (say a re-estimate
    /// shrinking the offending task) restores feasibility.
    pub fn apply(&mut self, delta: &CsrDelta) -> Result<Solution, ModelError> {
        delta.validate(self.csr.n())?;
        let kdelta = match *delta {
            CsrDelta::CompleteTask { task } => {
                self.completed[task as usize] = true;
                self.events += 1;
                self.total_rounds += self.csr.n() as u64;
                if self.stale {
                    // A failed capped apply left the cached run behind
                    // the instance: refresh cold before answering.
                    let run = ReplanRun::cold(
                        &self.csr,
                        self.m,
                        Arc::clone(&self.rank),
                        self.cap,
                        &mut self.ws,
                    )?;
                    self.stale = false;
                    self.replayed_rounds += run.replayed_rounds() as u64;
                    let solution = self.solution_of(&run);
                    self.run = run;
                    return Ok(solution);
                }
                // Completion mutates neither instance nor schedule:
                // answer from the cached run, zero rounds replayed.
                return Ok(self.solution_of(&self.run.reuse()));
            }
            CsrDelta::Recost { task, p, s } => {
                let i = task as usize;
                if self.completed[i] {
                    return Err(ModelError::InvalidParameter {
                        name: "task",
                        value: i as f64,
                        constraint: "completed tasks cannot be re-estimated",
                    });
                }
                let p_changed = p.is_some_and(|v| v != self.csr.p(i));
                let s_shift = match s {
                    Some(v) if v < self.csr.s(i) => CostShift::Lowered,
                    Some(v) if v > self.csr.s(i) => CostShift::Raised,
                    _ => CostShift::Unchanged,
                };
                ReplanDelta::Recost {
                    task,
                    p_changed,
                    s_shift,
                }
            }
            CsrDelta::AddTask { .. } => ReplanDelta::Arrival,
        };
        Arc::make_mut(&mut self.csr).apply_delta(delta)?;
        if matches!(kdelta, ReplanDelta::Arrival) {
            self.completed.push(false);
            self.rank = Arc::new(index_priority(self.csr.n()));
        }
        let next = if self.stale {
            // The cached run predates a failed capped apply — it cannot
            // seed a replay of the twice-mutated instance; solve cold.
            ReplanRun::cold(
                &self.csr,
                self.m,
                Arc::clone(&self.rank),
                self.cap,
                &mut self.ws,
            )
        } else {
            self.run
                .replan(&self.csr, Arc::clone(&self.rank), kdelta, &mut self.ws)
        };
        let next = match next {
            Ok(run) => run,
            Err(e) => {
                self.stale = true;
                return Err(e);
            }
        };
        self.stale = false;
        self.events += 1;
        self.replayed_rounds += next.replayed_rounds() as u64;
        self.total_rounds += self.csr.n() as u64;
        let solution = self.solution_of(&next);
        self.run = next;
        Ok(solution)
    }

    /// The schedule of the current (mutated) instance, from the cached
    /// run — no rounds replayed.
    pub fn solution(&mut self) -> Solution {
        self.solution_of(&self.run.reuse())
    }

    /// The live instance.
    pub fn csr(&self) -> &Arc<CsrDag> {
        &self.csr
    }

    /// Number of tasks currently in the instance.
    pub fn n(&self) -> usize {
        self.csr.n()
    }

    /// Number of processors.
    pub fn m(&self) -> usize {
        self.m
    }

    /// The session's fixed cap (`None` = unrestricted).
    pub fn cap(&self) -> Option<f64> {
        self.cap
    }

    /// Deltas applied so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Kernel rounds replayed across all applies — the session's
    /// cumulative measured work, next to the `events × n` a
    /// from-scratch-per-event server would have run.
    pub fn replayed_rounds(&self) -> u64 {
        self.replayed_rounds
    }

    /// Fraction of scheduling rounds actually replayed, over everything
    /// a from-scratch-per-event server would have run (1.0 before any
    /// event). The serving layer admission-costs replan events with it.
    pub fn replay_fraction(&self) -> f64 {
        if self.total_rounds == 0 {
            1.0
        } else {
            self.replayed_rounds as f64 / self.total_rounds as f64
        }
    }

    /// The work estimate for the *next* event: the kernel estimate of
    /// the full instance scaled by the observed replay fraction — the
    /// "incremental work, not a full solve" number the service layer
    /// gates session events on.
    pub fn estimated_event_cost(&self) -> CostEstimate {
        let full = CostEstimate::kernel(self.csr.n(), self.csr.edge_count());
        CostEstimate {
            work: full.work * self.replay_fraction(),
            model: full.model,
        }
    }

    /// Packages a run as a [`Solution`]. Shared with nothing: the
    /// from-scratch oracle goes through [`solve_from_scratch`], which
    /// calls the same [`solution_parts`] so the two are bit-identical
    /// field by field.
    fn solution_of(&mut self, run: &ReplanRun) -> Solution {
        solution_parts(&self.csr, self.m, self.cap, run, &mut self.memory)
    }
}

/// Builds the replan backend's `Solution` from a finished run — the
/// single assembly path both [`ReplanEngine::apply`] and the
/// [`solve_from_scratch`] oracle use, so warm and cold agree bit for
/// bit on every field.
fn solution_parts(
    csr: &CsrDag,
    m: usize,
    cap: Option<f64>,
    run: &ReplanRun,
    memory: &mut Vec<f64>,
) -> Solution {
    let schedule = run.outcome().schedule.clone();
    let n = csr.n();
    memory.clear();
    memory.resize(m, 0.0);
    let mut cmax = 0.0f64;
    for i in 0..n {
        cmax = cmax.max(schedule.start(i) + csr.p(i));
        memory[schedule.proc_of(i)] += csr.s(i);
    }
    let point = ObjectivePoint::new(cmax, max_or_zero(memory.iter().copied()));
    let (achieved, ratio_bound) = match cap {
        // Graham's `2 − 1/m` holds under precedence constraints for
        // unrestricted list scheduling; replanning preserves it by
        // bit-identity with the from-scratch schedule.
        None => (
            Guarantee::PaperRatio,
            Some((2.0 - 1.0 / m as f64, f64::INFINITY)),
        ),
        // A session cap is an operational limit, not the paper's
        // `∆·LB` parameterization: enforced, but no ratio is claimed.
        Some(_) => (Guarantee::None, None),
    };
    Solution {
        point,
        sum_ci: None,
        achieved,
        ratio_bound,
        stats: SolveStats {
            backend: BackendId::KernelReplan,
            rounds: run.replayed_rounds(),
            workspace_reused: true,
            bounds: graham_bounds(csr, m),
            cost: None,
            attempts: 1,
        },
        schedule,
    }
}

/// The Graham identical-machine bounds computed directly from the CSR
/// (`Cmax ≥ max(max p, Σp/m)`, `Mmax ≥ max(max s, Σs/m)`) — one flat
/// pass, no task-set materialization on the per-event path.
fn graham_bounds(csr: &CsrDag, m: usize) -> BoundReport {
    let mut p_max = 0.0f64;
    let mut p_sum = 0.0f64;
    let mut s_max = 0.0f64;
    let mut s_sum = 0.0f64;
    for i in 0..csr.n() {
        p_max = p_max.max(csr.p(i));
        p_sum += csr.p(i);
        s_max = s_max.max(csr.s(i));
        s_sum += csr.s(i);
    }
    BoundReport {
        cmax: p_max.max(p_sum / m as f64),
        mmax: s_max.max(s_sum / m as f64),
        source: BoundSource::GrahamIdentical,
    }
}

/// The differential oracle: a from-scratch solve of (the current state
/// of) a mutating instance, producing exactly the `Solution` a
/// [`ReplanEngine`] session at the same cap returns — the bit-identity
/// contract the simulator replays event streams against.
pub fn solve_from_scratch(
    csr: &CsrDag,
    m: usize,
    cap: Option<f64>,
    ws: &mut KernelWorkspace,
) -> Result<Solution, ModelError> {
    let rank = Arc::new(index_priority(csr.n()));
    let run = ReplanRun::cold(csr, m, rank, cap, ws)?;
    let mut memory = Vec::with_capacity(m);
    Ok(solution_parts(csr, m, cap, &run, &mut memory))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_dag::TaskGraph;
    use sws_model::task::TaskSet;

    fn diamond_csr() -> CsrDag {
        let tasks = TaskSet::from_ps(&[2.0, 3.0, 1.0, 4.0], &[1.0, 2.0, 3.0, 1.0]).unwrap();
        TaskGraph::from_edges(tasks, &[(0, 1), (0, 2), (1, 3), (2, 3)])
            .unwrap()
            .csr()
    }

    #[test]
    fn open_session_matches_the_oracle() {
        let csr = diamond_csr();
        let mut engine = ReplanEngine::open(csr.clone(), 2, None).unwrap();
        let mut ws = KernelWorkspace::new();
        let oracle = solve_from_scratch(&csr, 2, None, &mut ws).unwrap();
        let sol = engine.solution();
        assert_eq!(sol.schedule, oracle.schedule);
        assert_eq!(sol.point.cmax.to_bits(), oracle.point.cmax.to_bits());
        assert_eq!(sol.point.mmax.to_bits(), oracle.point.mmax.to_bits());
        assert_eq!(sol.stats.backend, BackendId::KernelReplan);
    }

    #[test]
    fn deltas_track_the_oracle_bit_for_bit() {
        let mut engine = ReplanEngine::open(diamond_csr(), 2, None).unwrap();
        let mut ws = KernelWorkspace::new();
        let stream = [
            CsrDelta::AddTask {
                preds: vec![1, 2],
                p: 2.5,
                s: 0.5,
            },
            CsrDelta::CompleteTask { task: 0 },
            CsrDelta::Recost {
                task: 3,
                p: Some(8.0),
                s: None,
            },
            CsrDelta::AddTask {
                preds: vec![4],
                p: 1.0,
                s: 1.0,
            },
            CsrDelta::Recost {
                task: 4,
                p: None,
                s: Some(9.0),
            },
        ];
        for (k, delta) in stream.iter().enumerate() {
            let sol = engine.apply(delta).unwrap();
            let oracle = solve_from_scratch(engine.csr(), 2, None, &mut ws).unwrap();
            assert_eq!(sol.schedule, oracle.schedule, "event {k}");
            for i in 0..engine.n() {
                assert_eq!(
                    sol.schedule.start(i).to_bits(),
                    oracle.schedule.start(i).to_bits(),
                    "event {k}, task {i}"
                );
            }
            assert_eq!(sol.point.cmax.to_bits(), oracle.point.cmax.to_bits());
            assert_eq!(sol.point.mmax.to_bits(), oracle.point.mmax.to_bits());
        }
        assert!(engine.replay_fraction() <= 1.0);
    }

    #[test]
    fn completions_pin_tasks_and_cost_nothing() {
        let mut engine = ReplanEngine::open(diamond_csr(), 2, None).unwrap();
        let sol = engine.apply(&CsrDelta::CompleteTask { task: 1 }).unwrap();
        assert_eq!(sol.stats.rounds, 0, "completions replay nothing");
        let err = engine.apply(&CsrDelta::Recost {
            task: 1,
            p: Some(10.0),
            s: None,
        });
        assert!(err.is_err(), "recosting a completed task must refuse");
        // The failed delta left the instance untouched.
        assert_eq!(engine.csr().p(1), 3.0);
    }

    #[test]
    fn capped_sessions_keep_the_cap_and_claim_no_ratio() {
        let csr = diamond_csr();
        let mut engine = ReplanEngine::open(csr, 2, Some(5.0)).unwrap();
        let sol = engine
            .apply(&CsrDelta::AddTask {
                preds: vec![0],
                p: 1.0,
                s: 1.0,
            })
            .unwrap();
        assert!(sol.point.mmax <= 5.0 + 1e-9);
        assert_eq!(sol.achieved, Guarantee::None);
        assert!(sol.ratio_bound.is_none());
        let mut ws = KernelWorkspace::new();
        let oracle = solve_from_scratch(engine.csr(), 2, Some(5.0), &mut ws).unwrap();
        assert_eq!(sol.schedule, oracle.schedule);
    }

    #[test]
    fn estimated_event_cost_shrinks_with_observed_replays() {
        let mut engine = ReplanEngine::open(diamond_csr(), 2, None).unwrap();
        let full = CostEstimate::kernel(engine.n(), engine.csr().edge_count()).work;
        assert_eq!(engine.estimated_event_cost().work, full);
        engine.apply(&CsrDelta::CompleteTask { task: 0 }).unwrap();
        assert!(
            engine.estimated_event_cost().work < full,
            "a zero-replay event must lower the incremental estimate"
        );
    }
}
