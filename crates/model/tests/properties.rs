//! Property-based tests of the model layer: objective evaluation, Pareto
//! dominance, lower bounds, schedule validation and the numeric helpers.

use proptest::collection::vec;
use proptest::prelude::*;

use sws_model::bounds::{cmax_lower_bound, mmax_lower_bound, sum_ci_lower_bound, LowerBounds};
use sws_model::numeric::{approx_eq, approx_le, kahan_sum, max_or_zero};
use sws_model::objectives::ObjectivePoint;
use sws_model::pareto::{ideal_point, nadir_point, ParetoFront};
use sws_model::schedule::Assignment;
use sws_model::task::TaskSet;
use sws_model::validate::{check_memory, validate_assignment, validate_timed};
use sws_model::Instance;

/// An instance together with an arbitrary complete assignment of its
/// tasks.
fn instance_and_assignment(
    max_n: usize,
    max_m: usize,
) -> impl Strategy<Value = (Instance, Assignment)> {
    (1usize..=max_m, 1usize..=max_n).prop_flat_map(move |(m, n)| {
        (
            vec(0.0f64..100.0, n),
            vec(0.0f64..100.0, n),
            vec(0usize..m, n),
            Just(m),
        )
            .prop_map(|(p, s, procs, m)| {
                let inst = Instance::from_ps(&p, &s, m).expect("valid draws");
                let asg = Assignment::new(procs, m).expect("procs < m");
                (inst, asg)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Cmax/Mmax of an assignment are the max over per-processor sums, so
    /// they are bounded by the total and by any single processor's load.
    #[test]
    fn objectives_are_maxima_of_per_processor_sums((inst, asg) in instance_and_assignment(30, 5)) {
        let loads = asg.loads(inst.tasks());
        let mems = asg.memory(inst.tasks());
        let point = ObjectivePoint::of_assignment(&inst, &asg);
        prop_assert!(approx_eq(point.cmax, loads.iter().cloned().fold(0.0, f64::max)));
        prop_assert!(approx_eq(point.mmax, mems.iter().cloned().fold(0.0, f64::max)));
        prop_assert!(approx_le(point.cmax, inst.total_work()));
        prop_assert!(approx_le(point.mmax, inst.total_storage()));
        // Per-processor sums account every task exactly once.
        prop_assert!(approx_eq(loads.iter().sum::<f64>(), inst.total_work()));
        prop_assert!(approx_eq(mems.iter().sum::<f64>(), inst.total_storage()));
    }

    /// The Graham lower bounds never exceed the value of any actual
    /// schedule, and they are monotone in the number of processors.
    #[test]
    fn lower_bounds_are_sound_and_monotone((inst, asg) in instance_and_assignment(25, 5)) {
        let point = ObjectivePoint::of_assignment(&inst, &asg);
        let lb = LowerBounds::of_instance(&inst);
        prop_assert!(approx_le(lb.cmax, point.cmax) || inst.n() == 0);
        prop_assert!(approx_le(lb.mmax, point.mmax) || inst.n() == 0);
        if inst.m() > 1 {
            let fewer = inst.with_processors(inst.m() - 1).unwrap();
            prop_assert!(cmax_lower_bound(fewer.tasks(), fewer.m()) + 1e-12
                >= cmax_lower_bound(inst.tasks(), inst.m()));
            prop_assert!(mmax_lower_bound(fewer.tasks(), fewer.m()) + 1e-12
                >= mmax_lower_bound(inst.tasks(), inst.m()));
            prop_assert!(sum_ci_lower_bound(fewer.tasks(), fewer.m()) + 1e-9
                >= sum_ci_lower_bound(inst.tasks(), inst.m()));
        }
    }

    /// The ΣCi bound equals the ΣCi of the schedule that places tasks in
    /// SPT order round-robin style, and it is at least the total work.
    #[test]
    fn sum_ci_bound_is_at_least_total_work((inst, _) in instance_and_assignment(25, 5)) {
        let bound = sum_ci_lower_bound(inst.tasks(), inst.m());
        prop_assert!(bound + 1e-9 >= inst.total_work());
        // With a single machine it equals the sorted prefix-sum value.
        let single = sum_ci_lower_bound(inst.tasks(), 1);
        let mut ps: Vec<f64> = (0..inst.n()).map(|i| inst.p(i)).collect();
        ps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut acc = 0.0;
        let mut manual = 0.0;
        for p in ps {
            acc += p;
            manual += acc;
        }
        prop_assert!(approx_eq(single, manual));
    }

    /// Swapping the two task dimensions swaps the objective point and
    /// leaves validation unaffected.
    #[test]
    fn swapping_dimensions_swaps_objectives((inst, asg) in instance_and_assignment(20, 4)) {
        let p = ObjectivePoint::of_assignment(&inst, &asg);
        let q = ObjectivePoint::of_assignment(&inst.swapped(), &asg);
        prop_assert!(approx_eq(p.cmax, q.mmax));
        prop_assert!(approx_eq(p.mmax, q.cmax));
        prop_assert!(validate_assignment(&inst.swapped(), &asg, None).is_ok());
    }

    /// The timed schedule built from an assignment reproduces the same
    /// objective values and passes full validation (no overlap, no
    /// precedence constraints, memory within Mmax itself).
    #[test]
    fn into_timed_round_trips_objectives((inst, asg) in instance_and_assignment(25, 4)) {
        let timed = asg.into_timed(inst.tasks());
        let pa = ObjectivePoint::of_assignment(&inst, &asg);
        let pt = ObjectivePoint::of_timed(&inst, &timed);
        prop_assert!(approx_eq(pa.cmax, pt.cmax));
        prop_assert!(approx_eq(pa.mmax, pt.mmax));
        let preds: Vec<Vec<usize>> = vec![Vec::new(); inst.n()];
        prop_assert!(validate_timed(inst.tasks(), inst.m(), &timed, &preds, Some(pa.mmax)).is_ok());
        // The memory check fails as soon as the capacity drops strictly
        // below the achieved maximum (when it is positive).
        if pa.mmax > 1e-6 {
            prop_assert!(check_memory(inst.tasks(), &asg, pa.mmax * 0.99).is_err());
        }
        prop_assert_eq!(timed.assignment(), asg);
    }

    /// Pareto-front invariants: no element dominates another, every offered
    /// point is covered, and the ideal/nadir points bracket the front.
    #[test]
    fn pareto_front_is_mutually_non_dominated(
        points in vec((0.1f64..100.0, 0.1f64..100.0), 1..40)
    ) {
        let mut front: ParetoFront<usize> = ParetoFront::new();
        let objective_points: Vec<ObjectivePoint> =
            points.iter().map(|&(c, m)| ObjectivePoint::new(c, m)).collect();
        for (i, pt) in objective_points.iter().enumerate() {
            front.offer(*pt, i);
        }
        prop_assert!(!front.is_empty());
        let kept = front.points();
        for a in &kept {
            for b in &kept {
                // No kept point may be strictly better than another on
                // both objectives.
                prop_assert!(!(a.cmax < b.cmax - 1e-9 && a.mmax < b.mmax - 1e-9));
            }
        }
        // Every input point is weakly dominated by some front member.
        for pt in &objective_points {
            prop_assert!(front.covers(pt), "front does not cover {pt}");
        }
        // Ideal and nadir points bracket every front point.
        let ideal = ideal_point(&kept).unwrap();
        let nadir = nadir_point(&kept).unwrap();
        for pt in &kept {
            prop_assert!(ideal.cmax <= pt.cmax + 1e-12 && ideal.mmax <= pt.mmax + 1e-12);
            prop_assert!(nadir.cmax + 1e-12 >= pt.cmax && nadir.mmax + 1e-12 >= pt.mmax);
        }
        // The best-Cmax and best-Mmax entries agree with the ideal point.
        prop_assert!(approx_eq(front.best_cmax().unwrap().0.cmax, ideal.cmax));
        prop_assert!(approx_eq(front.best_mmax().unwrap().0.mmax, ideal.mmax));
    }

    /// Numeric helpers: Kahan summation matches naive summation within
    /// tolerance on benign inputs and max_or_zero never goes negative.
    #[test]
    fn numeric_helpers_behave(values in vec(0.0f64..1e6, 0..200)) {
        let kahan = kahan_sum(values.iter().copied());
        let naive: f64 = values.iter().sum();
        prop_assert!((kahan - naive).abs() <= 1e-6 * naive.max(1.0));
        prop_assert!(max_or_zero(values.iter().copied()) >= 0.0);
        prop_assert!(max_or_zero(std::iter::empty()) == 0.0);
    }
}

#[test]
fn validate_rejects_wrong_processor_counts_and_incomplete_assignments() {
    let inst = Instance::from_ps(&[1.0, 2.0], &[1.0, 1.0], 2).unwrap();
    let short = Assignment::new(vec![0], 2).unwrap();
    assert!(validate_assignment(&inst, &short, None).is_err());
    let wrong_m = Assignment::new(vec![0, 1, 2], 3).unwrap();
    assert!(validate_assignment(&inst, &wrong_m, None).is_err());
}

#[test]
fn task_set_rejects_invalid_costs() {
    assert!(TaskSet::from_ps(&[1.0, -1.0], &[1.0, 1.0]).is_err());
    assert!(TaskSet::from_ps(&[1.0, f64::NAN], &[1.0, 1.0]).is_err());
    assert!(TaskSet::from_ps(&[1.0], &[f64::INFINITY]).is_err());
    assert!(TaskSet::from_ps(&[1.0, 2.0], &[1.0]).is_err());
}
