//! Feasibility checks for assignments and timed schedules.
//!
//! Every scheduling algorithm in the reproduction is checked through these
//! functions in unit, property and integration tests: completeness of the
//! assignment, non-overlap of tasks sharing a processor, precedence
//! feasibility and optional per-processor memory capacity.

use crate::error::ModelError;
use crate::instance::Instance;
use crate::numeric::{approx_ge, approx_le};
use crate::schedule::{Assignment, TimedSchedule};
use crate::task::TaskSet;

/// Abstraction over "the predecessor lists of `n` tasks", so the
/// precedence checks accept both the classic nested `&[Vec<usize>]`
/// shape and a borrowed CSR view ([`CsrPreds`]) without materializing
/// one from the other.
pub trait PredecessorLists {
    /// Number of tasks covered.
    fn len(&self) -> usize;

    /// Whether no tasks are covered.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The predecessors of task `i`.
    fn preds_of(&self, i: usize) -> impl Iterator<Item = usize> + '_;
}

impl PredecessorLists for &[Vec<usize>] {
    #[inline]
    fn len(&self) -> usize {
        (**self).len()
    }

    #[inline]
    fn preds_of(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self[i].iter().copied()
    }
}

impl PredecessorLists for &Vec<Vec<usize>> {
    #[inline]
    fn len(&self) -> usize {
        (**self).len()
    }

    #[inline]
    fn preds_of(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self[i].iter().copied()
    }
}

/// Borrowed CSR predecessor lists: `edges[offsets[i]..offsets[i+1]]` are
/// the predecessors of task `i`. This is the shape `sws_dag::CsrDag`
/// stores, re-declared here (the model crate sits below the DAG crate)
/// so validation can consume it directly.
#[derive(Debug, Clone, Copy)]
pub struct CsrPreds<'a> {
    offsets: &'a [u32],
    edges: &'a [u32],
}

impl<'a> CsrPreds<'a> {
    /// Wraps raw CSR arrays. `offsets` must hold `n + 1` monotonically
    /// non-decreasing entries ending at `edges.len()`.
    pub fn new(offsets: &'a [u32], edges: &'a [u32]) -> Self {
        assert!(
            !offsets.is_empty(),
            "CSR offsets need at least the closing sentinel"
        );
        assert_eq!(
            *offsets.last().unwrap() as usize,
            edges.len(),
            "CSR offsets must close over the edge array"
        );
        CsrPreds { offsets, edges }
    }
}

impl PredecessorLists for CsrPreds<'_> {
    #[inline]
    fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    #[inline]
    fn preds_of(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.edges[self.offsets[i] as usize..self.offsets[i + 1] as usize]
            .iter()
            .map(|&u| u as usize)
    }
}

/// Validates an assignment of independent tasks:
/// * every task is mapped to a processor `< m`,
/// * the assignment covers exactly the instance's tasks,
/// * if `memory_capacity` is given, no processor exceeds it.
pub fn validate_assignment(
    inst: &Instance,
    asg: &Assignment,
    memory_capacity: Option<f64>,
) -> Result<(), ModelError> {
    if asg.n() != inst.n() {
        return Err(ModelError::IncompleteAssignment {
            expected: inst.n(),
            got: asg.n(),
        });
    }
    if asg.m() != inst.m() {
        return Err(ModelError::ProcessorOutOfRange {
            task: 0,
            proc: asg.m().saturating_sub(1),
            m: inst.m(),
        });
    }
    if let Some(cap) = memory_capacity {
        check_memory(inst.tasks(), asg, cap)?;
    }
    Ok(())
}

/// Checks the per-processor memory capacity of an assignment.
pub fn check_memory(tasks: &TaskSet, asg: &Assignment, capacity: f64) -> Result<(), ModelError> {
    for (proc, used) in asg.memory(tasks).into_iter().enumerate() {
        if !approx_le(used, capacity) {
            return Err(ModelError::MemoryExceeded {
                proc,
                used,
                capacity,
            });
        }
    }
    Ok(())
}

/// Validates a timed schedule:
/// * covers exactly the instance's tasks,
/// * no two tasks overlap on the same processor,
/// * every precedence constraint `pred → succ` in `preds` is respected
///   (`σ(succ) ≥ σ(pred) + p_pred`),
/// * if `memory_capacity` is given, no processor's cumulative memory
///   exceeds it.
///
/// `preds[i]` lists the predecessors of task `i`; pass empty lists (or an
/// empty slice) for independent tasks.
pub fn validate_timed(
    tasks: &TaskSet,
    m: usize,
    sched: &TimedSchedule,
    preds: &[Vec<usize>],
    memory_capacity: Option<f64>,
) -> Result<(), ModelError> {
    validate_timed_preds(tasks, m, sched, preds, memory_capacity)
}

/// [`validate_timed`] over any [`PredecessorLists`] shape — in
/// particular the CSR view (`sws_dag::CsrDag::pred_lists()`), which the
/// nested-slice signature would force to materialize `Vec<Vec<usize>>`
/// lists first.
pub fn validate_timed_preds<P: PredecessorLists>(
    tasks: &TaskSet,
    m: usize,
    sched: &TimedSchedule,
    preds: P,
    memory_capacity: Option<f64>,
) -> Result<(), ModelError> {
    if sched.n() != tasks.len() {
        return Err(ModelError::IncompleteAssignment {
            expected: tasks.len(),
            got: sched.n(),
        });
    }
    if sched.m() != m {
        return Err(ModelError::ProcessorOutOfRange {
            task: 0,
            proc: sched.m().saturating_sub(1),
            m,
        });
    }
    check_no_overlap(tasks, sched)?;
    check_precedence_preds(tasks, sched, preds)?;
    if let Some(cap) = memory_capacity {
        check_memory(tasks, &sched.assignment(), cap)?;
    }
    Ok(())
}

/// Checks that no two tasks mapped to the same processor overlap in time.
pub fn check_no_overlap(tasks: &TaskSet, sched: &TimedSchedule) -> Result<(), ModelError> {
    for (proc, lane) in sched.timeline().into_iter().enumerate() {
        for window in lane.windows(2) {
            let (a, b) = (window[0], window[1]);
            let end_a = sched.start(a) + tasks.get(a).p;
            if !approx_le(end_a, sched.start(b)) {
                return Err(ModelError::Overlap {
                    proc,
                    first: a,
                    second: b,
                });
            }
        }
    }
    Ok(())
}

/// Checks that every task starts after all of its predecessors complete.
pub fn check_precedence(
    tasks: &TaskSet,
    sched: &TimedSchedule,
    preds: &[Vec<usize>],
) -> Result<(), ModelError> {
    check_precedence_preds(tasks, sched, preds)
}

/// [`check_precedence`] over any [`PredecessorLists`] shape.
pub fn check_precedence_preds<P: PredecessorLists>(
    tasks: &TaskSet,
    sched: &TimedSchedule,
    preds: P,
) -> Result<(), ModelError> {
    for task in 0..preds.len() {
        for pred in preds.preds_of(task) {
            let pred_end = sched.start(pred) + tasks.get(pred).p;
            if !approx_ge(sched.start(task), pred_end) {
                return Err(ModelError::PrecedenceViolation { pred, task });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> Instance {
        Instance::from_ps(&[1.0, 2.0, 1.0], &[1.0, 1.0, 2.0], 2).unwrap()
    }

    #[test]
    fn assignment_must_cover_every_task() {
        let inst = inst();
        let asg = Assignment::new(vec![0, 1], 2).unwrap();
        let err = validate_assignment(&inst, &asg, None).unwrap_err();
        assert_eq!(
            err,
            ModelError::IncompleteAssignment {
                expected: 3,
                got: 2
            }
        );
    }

    #[test]
    fn assignment_processor_count_must_match_instance() {
        let inst = inst();
        let asg = Assignment::new(vec![0, 0, 0], 3).unwrap();
        assert!(validate_assignment(&inst, &asg, None).is_err());
    }

    #[test]
    fn memory_capacity_is_enforced() {
        let inst = inst();
        // Tasks 1 and 2 on processor 1: memory = 3.
        let asg = Assignment::new(vec![0, 1, 1], 2).unwrap();
        assert!(validate_assignment(&inst, &asg, Some(3.0)).is_ok());
        let err = validate_assignment(&inst, &asg, Some(2.5)).unwrap_err();
        match err {
            ModelError::MemoryExceeded { proc, .. } => assert_eq!(proc, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn overlap_on_a_processor_is_detected() {
        let inst = inst();
        // Tasks 0 and 1 both start at 0 on processor 0.
        let sched = TimedSchedule::new(vec![0, 0, 1], vec![0.0, 0.0, 0.0], 2).unwrap();
        let err =
            validate_timed(inst.tasks(), 2, &sched, &[vec![], vec![], vec![]], None).unwrap_err();
        match err {
            ModelError::Overlap { proc, .. } => assert_eq!(proc, 0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn back_to_back_execution_is_not_an_overlap() {
        let inst = inst();
        let sched = TimedSchedule::new(vec![0, 0, 1], vec![0.0, 1.0, 0.0], 2).unwrap();
        assert!(validate_timed(inst.tasks(), 2, &sched, &[vec![], vec![], vec![]], None).is_ok());
    }

    #[test]
    fn precedence_violations_are_detected() {
        let inst = inst();
        // Precedence 0 -> 1 but task 1 starts at 0.5 < C_0 = 1.
        let sched = TimedSchedule::new(vec![0, 1, 1], vec![0.0, 0.5, 2.5], 2).unwrap();
        let preds = vec![vec![], vec![0], vec![1]];
        let err = validate_timed(inst.tasks(), 2, &sched, &preds, None).unwrap_err();
        assert_eq!(err, ModelError::PrecedenceViolation { pred: 0, task: 1 });
    }

    #[test]
    fn respected_precedence_passes() {
        let inst = inst();
        let sched = TimedSchedule::new(vec![0, 1, 1], vec![0.0, 1.0, 3.0], 2).unwrap();
        let preds = vec![vec![], vec![0], vec![1]];
        assert!(validate_timed(inst.tasks(), 2, &sched, &preds, None).is_ok());
    }

    #[test]
    fn valid_assignment_with_capacity_passes() {
        let inst = inst();
        let asg = Assignment::new(vec![0, 1, 0], 2).unwrap();
        assert!(validate_assignment(&inst, &asg, Some(3.0)).is_ok());
    }

    #[test]
    fn csr_view_checks_precedence_like_nested_lists() {
        let inst = inst();
        // Precedence 0 -> 1, 1 -> 2 as CSR: offsets [0,0,1,2], edges [0,1].
        let offsets = [0u32, 0, 1, 2];
        let edges = [0u32, 1];
        let good = TimedSchedule::new(vec![0, 1, 1], vec![0.0, 1.0, 3.0], 2).unwrap();
        validate_timed_preds(
            inst.tasks(),
            2,
            &good,
            CsrPreds::new(&offsets, &edges),
            None,
        )
        .unwrap();
        let bad = TimedSchedule::new(vec![0, 1, 1], vec![0.0, 0.5, 2.5], 2).unwrap();
        let err =
            validate_timed_preds(inst.tasks(), 2, &bad, CsrPreds::new(&offsets, &edges), None)
                .unwrap_err();
        assert_eq!(err, ModelError::PrecedenceViolation { pred: 0, task: 1 });
        // The nested-list path reports exactly the same violation.
        let nested = vec![vec![], vec![0], vec![1]];
        assert_eq!(
            validate_timed(inst.tasks(), 2, &bad, &nested, None).unwrap_err(),
            err
        );
    }

    #[test]
    fn empty_instance_validates_trivially() {
        let inst = Instance::from_ps(&[], &[], 2).unwrap();
        let asg = Assignment::new(vec![], 2).unwrap();
        assert!(validate_assignment(&inst, &asg, Some(0.0)).is_ok());
        let sched = TimedSchedule::new(vec![], vec![], 2).unwrap();
        assert!(validate_timed(inst.tasks(), 2, &sched, &[], Some(0.0)).is_ok());
    }
}
