//! Lower bounds on the optimal makespan and memory consumption.
//!
//! The paper uses the classical Graham lower bounds throughout:
//!
//! * `C*max ≥ max(max_i p_i, Σ p_i / m)` (and additionally the critical
//!   path length with precedence constraints),
//! * `M*max ≥ LB = max(max_i s_i, Σ s_i / m)` — the quantity computed at
//!   the start of RLS∆ (Algorithm 2).

use serde::{Deserialize, Serialize};

use crate::instance::Instance;
use crate::task::TaskSet;

/// Graham lower bound on the optimal makespan for independent tasks:
/// `max(max_i p_i, Σ p_i / m)`.
pub fn cmax_lower_bound(tasks: &TaskSet, m: usize) -> f64 {
    assert!(m > 0, "lower bound needs at least one processor");
    tasks.max_processing().max(tasks.total_work() / m as f64)
}

/// Graham lower bound on the optimal memory consumption:
/// `LB = max(max_i s_i, Σ s_i / m)` — exactly the `LB` computed by RLS∆.
pub fn mmax_lower_bound(tasks: &TaskSet, m: usize) -> f64 {
    assert!(m > 0, "lower bound needs at least one processor");
    tasks.max_storage().max(tasks.total_storage() / m as f64)
}

/// Lower bound on the optimal makespan with precedence constraints:
/// `max(critical_path, max_i p_i, Σ p_i / m)`. The critical path length is
/// supplied by the caller (computed by `sws-dag`); passing `0.0` recovers
/// the independent-task bound.
pub fn cmax_lower_bound_prec(tasks: &TaskSet, m: usize, critical_path: f64) -> f64 {
    cmax_lower_bound(tasks, m).max(critical_path)
}

/// Lower bound on the optimal sum of completion times for independent
/// tasks: the SPT completion profile on `m` machines is optimal for
/// `P ∥ ΣC_i`, so its value is used as the exact reference by the
/// tri-objective experiments (Section 5.2).
///
/// This function computes the *bound value* directly without building the
/// schedule: sort by SPT and assign greedily round-robin over the machines
/// in SPT order (which is exactly what list scheduling in SPT order does
/// for the sum-of-completion-times objective).
pub fn sum_ci_lower_bound(tasks: &TaskSet, m: usize) -> f64 {
    assert!(m > 0, "lower bound needs at least one processor");
    let mut p: Vec<f64> = tasks.as_slice().iter().map(|t| t.p).collect();
    p.sort_by(|a, b| crate::numeric::total_cmp(*a, *b));
    // In an SPT list schedule on identical machines, the j-th shortest task
    // (0-based) completes after the sum of every ⌈(j+1)/m⌉-th positional
    // contribution; equivalently each task's processing time is counted
    // once for itself and once for every later task placed on the same
    // machine. The standard closed form: task at sorted position j is
    // multiplied by ⌈(n - j) / m⌉.
    let n = p.len();
    let mut total = 0.0;
    for (j, &pj) in p.iter().enumerate() {
        let remaining = n - j;
        let mult = remaining.div_ceil(m);
        total += mult as f64 * pj;
    }
    total
}

/// All lower bounds of an instance, bundled for reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LowerBounds {
    /// Lower bound on `C*max`.
    pub cmax: f64,
    /// Lower bound on `M*max` (the `LB` of RLS∆).
    pub mmax: f64,
    /// Exact optimum of `ΣC_i` for independent tasks (SPT value).
    pub sum_ci: f64,
}

impl LowerBounds {
    /// Computes all bounds for an independent-task instance.
    pub fn of_instance(inst: &Instance) -> Self {
        LowerBounds {
            cmax: cmax_lower_bound(inst.tasks(), inst.m()),
            mmax: mmax_lower_bound(inst.tasks(), inst.m()),
            sum_ci: sum_ci_lower_bound(inst.tasks(), inst.m()),
        }
    }

    /// Computes all bounds when a critical-path length is known
    /// (precedence-constrained case).
    pub fn with_critical_path(tasks: &TaskSet, m: usize, critical_path: f64) -> Self {
        LowerBounds {
            cmax: cmax_lower_bound_prec(tasks, m, critical_path),
            mmax: mmax_lower_bound(tasks, m),
            sum_ci: sum_ci_lower_bound(tasks, m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tasks(p: &[f64], s: &[f64]) -> TaskSet {
        TaskSet::from_ps(p, s).unwrap()
    }

    #[test]
    fn cmax_bound_is_max_of_average_and_largest_task() {
        let ts = tasks(&[4.0, 1.0, 1.0], &[1.0, 1.0, 1.0]);
        // average = 2, largest = 4.
        assert_eq!(cmax_lower_bound(&ts, 3), 4.0);
        // With one machine the average dominates.
        assert_eq!(cmax_lower_bound(&ts, 1), 6.0);
    }

    #[test]
    fn mmax_bound_matches_rls_lb_definition() {
        let ts = tasks(&[1.0, 1.0, 1.0, 1.0], &[3.0, 1.0, 1.0, 1.0]);
        // sum s = 6, m = 2 -> average 3; max s = 3 -> LB = 3.
        assert_eq!(mmax_lower_bound(&ts, 2), 3.0);
        // m = 4 -> average 1.5 < max 3 -> LB = 3.
        assert_eq!(mmax_lower_bound(&ts, 4), 3.0);
    }

    #[test]
    fn precedence_bound_includes_critical_path() {
        let ts = tasks(&[1.0, 1.0], &[1.0, 1.0]);
        assert_eq!(cmax_lower_bound_prec(&ts, 2, 5.0), 5.0);
        assert_eq!(cmax_lower_bound_prec(&ts, 2, 0.5), 1.0);
    }

    #[test]
    fn sum_ci_bound_single_machine_is_spt_value() {
        let ts = tasks(&[3.0, 1.0, 2.0], &[0.0, 0.0, 0.0]);
        // SPT on one machine: completions 1, 3, 6 -> 10.
        assert!((sum_ci_lower_bound(&ts, 1) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn sum_ci_bound_many_machines_is_total_work() {
        let ts = tasks(&[3.0, 1.0, 2.0], &[0.0, 0.0, 0.0]);
        // With at least n machines every task runs at time 0: ΣCi = Σ pi.
        assert!((sum_ci_lower_bound(&ts, 3) - 6.0).abs() < 1e-12);
        assert!((sum_ci_lower_bound(&ts, 10) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn sum_ci_bound_two_machines_matches_manual_value() {
        let ts = tasks(&[1.0, 2.0, 3.0, 4.0], &[0.0; 4]);
        // SPT on two machines: M1 gets 1 then 3, M2 gets 2 then 4.
        // Completions: 1, 2, 4, 6 -> sum = 13.
        assert!((sum_ci_lower_bound(&ts, 2) - 13.0).abs() < 1e-12);
    }

    #[test]
    fn bundled_bounds_match_individual_functions() {
        let inst = Instance::from_ps(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0], 2).unwrap();
        let lb = LowerBounds::of_instance(&inst);
        assert_eq!(lb.cmax, cmax_lower_bound(inst.tasks(), 2));
        assert_eq!(lb.mmax, mmax_lower_bound(inst.tasks(), 2));
        assert_eq!(lb.sum_ci, sum_ci_lower_bound(inst.tasks(), 2));
    }

    #[test]
    #[should_panic]
    fn zero_processors_is_a_programming_error() {
        let ts = tasks(&[1.0], &[1.0]);
        let _ = cmax_lower_bound(&ts, 0);
    }
}
