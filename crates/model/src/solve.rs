//! The unified solver vocabulary: one request type in, one solution type
//! out, regardless of which algorithm serves it.
//!
//! Three PRs of kernel work left the workspace with a dozen bespoke entry
//! points (`rls`/`rls_in`/`rls_independent_in`/`tri_objective_rls_in`,
//! `sbo`, the exact solvers, the PTAS, the classic heuristics), each with
//! its own signature. Serving heterogeneous request streams requires a
//! shared vocabulary instead: a [`SolveRequest`] names the instance, the
//! objective mode and the *required* [`Guarantee`]; a [`Solution`] carries
//! the schedule, the achieved objective point, the guarantee that was
//! actually delivered and the [`SolveStats`] provenance (which backend
//! ran, how many rounds, whether a caller-supplied workspace was reused,
//! and which lower bounds the ratios are reported against).
//!
//! This module is deliberately *model-level*: it depends on nothing but
//! the problem vocabulary, so every algorithm crate can speak it. The
//! portfolio layer that routes requests to backends lives in
//! `sws_core::portfolio`; precedence-constrained instances reach this
//! layer through the [`PrecedenceInstance`] trait (implemented by
//! `sws_dag::DagInstance`) so the model crate never needs to know the
//! concrete DAG types.

use std::any::Any;
use std::fmt;

use crate::bounds::{cmax_lower_bound, cmax_lower_bound_prec, mmax_lower_bound};
use crate::error::ModelError;
use crate::instance::Instance;
use crate::objectives::ObjectivePoint;
use crate::schedule::TimedSchedule;
use crate::task::TaskSet;

/// Which objectives a request asks the solver to optimize.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ObjectiveMode {
    /// Minimize the makespan only (`P ∥ Cmax` / `P | prec | Cmax`).
    CmaxOnly,
    /// The paper's bi-objective trade-off `(Cmax, Mmax)`, tuned by the
    /// trade-off parameter ∆ (SBO∆ needs `∆ > 0`, RLS∆ needs `∆ > 2`).
    BiObjective {
        /// The trade-off parameter ∆.
        delta: f64,
    },
    /// The Section 5.2 tri-objective extension `(Cmax, Mmax, ΣC_i)`,
    /// tuned by ∆ (`∆ > 2`).
    TriObjective {
        /// The trade-off parameter ∆.
        delta: f64,
    },
    /// The original industrial problem of Section 7: minimize `Cmax`
    /// subject to `Mmax ≤ budget`.
    MemoryBudget {
        /// The hard per-processor memory budget.
        budget: f64,
    },
}

impl ObjectiveMode {
    /// A short label for reports and error messages.
    pub fn label(&self) -> &'static str {
        match self {
            ObjectiveMode::CmaxOnly => "cmax",
            ObjectiveMode::BiObjective { .. } => "bi-objective",
            ObjectiveMode::TriObjective { .. } => "tri-objective",
            ObjectiveMode::MemoryBudget { .. } => "memory-budget",
        }
    }
}

/// The guarantee level a request requires — and the level a solution
/// actually achieved.
///
/// Levels form a ladder: [`Guarantee::Exact`] satisfies every request,
/// [`Guarantee::EpsilonOptimal`] satisfies any request for a looser (or
/// equal) ε as well as `PaperRatio` and `None`, [`Guarantee::PaperRatio`]
/// satisfies `PaperRatio` and `None`, and [`Guarantee::None`] only
/// satisfies `None`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Guarantee {
    /// Best effort: no proven bound required (or delivered).
    None,
    /// The paper's proven constant-factor bounds (e.g. Corollary 1 for
    /// SBO∆, Corollary 3 for RLS∆, `4/3 − 1/(3m)` for LPT).
    PaperRatio,
    /// Within `1 + ε` of the optimum on every optimized objective.
    EpsilonOptimal(f64),
    /// Provably optimal.
    Exact,
}

impl Guarantee {
    /// Whether a solution at level `self` satisfies a request demanding
    /// `required`.
    pub fn satisfies(&self, required: &Guarantee) -> bool {
        match (self, required) {
            (_, Guarantee::None) => true,
            (Guarantee::Exact, _) => true,
            (Guarantee::PaperRatio, Guarantee::PaperRatio) => true,
            (Guarantee::EpsilonOptimal(_), Guarantee::PaperRatio) => true,
            (Guarantee::EpsilonOptimal(got), Guarantee::EpsilonOptimal(want)) => got <= want,
            _ => false,
        }
    }

    /// A short label for reports and error messages.
    pub fn label(&self) -> &'static str {
        match self {
            Guarantee::None => "none",
            Guarantee::PaperRatio => "paper-ratio",
            Guarantee::EpsilonOptimal(_) => "epsilon-optimal",
            Guarantee::Exact => "exact",
        }
    }
}

/// A precedence-constrained instance, as seen by the solver layer.
///
/// `sws_dag::DagInstance` implements this; [`PrecedenceInstance::as_any`]
/// lets DAG-aware backends downcast back to the concrete type and reuse
/// its CSR mirror instead of rebuilding the graph from the predecessor
/// lists (foreign implementations fall back to the rebuild path).
///
/// `Sync` is a supertrait so that requests over borrowed instances can
/// be fanned out across worker threads (the batch serving path chunks
/// `&[SolveRequest]` across a thread pool); implementors are immutable
/// views, so this costs nothing.
pub trait PrecedenceInstance: Sync {
    /// The task set.
    fn tasks(&self) -> &TaskSet;
    /// Number of processors.
    fn m(&self) -> usize;
    /// Predecessor lists, indexed by task.
    fn preds(&self) -> &[Vec<usize>];
    /// Escape hatch for concrete-type recovery (see trait docs).
    fn as_any(&self) -> &dyn Any;
}

/// The instance a request names: independent tasks or a task DAG.
#[derive(Clone, Copy)]
pub enum RequestInstance<'a> {
    /// Independent tasks on identical processors.
    Independent(&'a Instance),
    /// Precedence-constrained tasks (see [`PrecedenceInstance`]).
    Precedence(&'a dyn PrecedenceInstance),
}

impl fmt::Debug for RequestInstance<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestInstance::Independent(inst) => f
                .debug_struct("Independent")
                .field("n", &inst.n())
                .field("m", &inst.m())
                .finish(),
            RequestInstance::Precedence(dag) => f
                .debug_struct("Precedence")
                .field("n", &dag.tasks().len())
                .field("m", &dag.m())
                .finish(),
        }
    }
}

impl<'a> RequestInstance<'a> {
    /// The task set.
    pub fn tasks(&self) -> &'a TaskSet {
        match self {
            RequestInstance::Independent(inst) => inst.tasks(),
            RequestInstance::Precedence(dag) => dag.tasks(),
        }
    }

    /// Number of tasks.
    pub fn n(&self) -> usize {
        self.tasks().len()
    }

    /// Number of processors.
    pub fn m(&self) -> usize {
        match self {
            RequestInstance::Independent(inst) => inst.m(),
            RequestInstance::Precedence(dag) => dag.m(),
        }
    }

    /// Whether the instance carries precedence constraints.
    pub fn has_precedence(&self) -> bool {
        matches!(self, RequestInstance::Precedence(_))
    }
}

/// One solve request: the instance, the objective mode and the required
/// guarantee. This is the single entry vocabulary of the portfolio layer.
#[derive(Debug, Clone, Copy)]
pub struct SolveRequest<'a> {
    /// The instance to schedule.
    pub instance: RequestInstance<'a>,
    /// Which objectives to optimize.
    pub objective: ObjectiveMode,
    /// The minimum guarantee level the caller accepts.
    pub guarantee: Guarantee,
}

impl<'a> SolveRequest<'a> {
    /// A request over independent tasks, with no required guarantee.
    pub fn independent(inst: &'a Instance, objective: ObjectiveMode) -> Self {
        SolveRequest {
            instance: RequestInstance::Independent(inst),
            objective,
            guarantee: Guarantee::None,
        }
    }

    /// A request over a precedence-constrained instance, with no required
    /// guarantee.
    pub fn precedence(dag: &'a dyn PrecedenceInstance, objective: ObjectiveMode) -> Self {
        SolveRequest {
            instance: RequestInstance::Precedence(dag),
            objective,
            guarantee: Guarantee::None,
        }
    }

    /// Replaces the required guarantee.
    pub fn with_guarantee(mut self, guarantee: Guarantee) -> Self {
        self.guarantee = guarantee;
        self
    }

    /// Number of tasks.
    pub fn n(&self) -> usize {
        self.instance.n()
    }

    /// Number of processors.
    pub fn m(&self) -> usize {
        self.instance.m()
    }

    /// The task set.
    pub fn tasks(&self) -> &'a TaskSet {
        self.instance.tasks()
    }

    /// The [`ModelError`] reported when no registered backend can serve
    /// this request at the required guarantee.
    pub fn no_backend_error(&self) -> ModelError {
        ModelError::NoQualifiedBackend {
            objective: self.objective.label(),
            guarantee: self.guarantee.label(),
            n: self.n(),
            m: self.m(),
        }
    }
}

/// Identifies the algorithm backend that produced a solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendId {
    /// Event-driven kernel, unrestricted Graham DAG list scheduling.
    KernelDagList,
    /// Event-driven kernel, RLS∆ (Algorithm 2).
    KernelRls,
    /// Event-driven kernel, RLS∆ with SPT ties (Section 5.2).
    KernelTriRls,
    /// Event-driven kernel warm-started across instance deltas (the
    /// incremental replanning engine, `sws_core::replan`).
    KernelReplan,
    /// The retained `O(n²m)` RLS∆ differential oracle.
    NaiveRls,
    /// SBO∆ (Algorithm 1) over single-objective inner schedules.
    Sbo,
    /// Longest Processing Time first.
    Lpt,
    /// Graham list scheduling in index order.
    Graham,
    /// MULTIFIT.
    Multifit,
    /// Shortest Processing Time first (optimal for `P ∥ ΣC_i`).
    Spt,
    /// Hochbaum–Shmoys dual-approximation PTAS.
    Ptas,
    /// Branch-and-bound single-objective optimum.
    ExactBranchBound,
    /// Exhaustive bi-objective Pareto enumeration.
    ExactParetoEnum,
    /// Section 7 budget procedure (RLS∆ with derived ∆, or the SBO∆
    /// binary search).
    ConstrainedSearch,
    /// The uniform-machine restricted list scheduler (the beyond-paper
    /// extension in `sws_core::heterogeneous`).
    UniformRls,
}

impl BackendId {
    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            BackendId::KernelDagList => "kernel-dag-list",
            BackendId::KernelRls => "kernel-rls",
            BackendId::KernelTriRls => "kernel-tri-rls",
            BackendId::KernelReplan => "kernel-replan",
            BackendId::NaiveRls => "naive-rls",
            BackendId::Sbo => "sbo",
            BackendId::Lpt => "lpt",
            BackendId::Graham => "graham",
            BackendId::Multifit => "multifit",
            BackendId::Spt => "spt",
            BackendId::Ptas => "ptas",
            BackendId::ExactBranchBound => "exact-branch-bound",
            BackendId::ExactParetoEnum => "exact-pareto-enum",
            BackendId::ConstrainedSearch => "constrained-search",
            BackendId::UniformRls => "uniform-rls",
        }
    }
}

impl fmt::Display for BackendId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Where a reported lower bound comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundSource {
    /// The Graham bounds on identical machines:
    /// `Cmax ≥ max(max p_i, Σp_i/m)`, `Mmax ≥ max(max s_i, Σs_i/m)`.
    GrahamIdentical,
    /// Identical machines with the critical-path strengthening
    /// `Cmax ≥ critical path length`.
    CriticalPath,
    /// Uniform (related) machines:
    /// `Cmax ≥ max(max p_i / v_max, Σp_i / Σv_q)`; the memory side is
    /// speed-independent and stays the Graham bound.
    UniformSpeeds,
    /// The bound is the exact optimum (exact backends).
    ExactOptimum,
}

impl BoundSource {
    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            BoundSource::GrahamIdentical => "graham-identical",
            BoundSource::CriticalPath => "critical-path",
            BoundSource::UniformSpeeds => "uniform-speeds",
            BoundSource::ExactOptimum => "exact-optimum",
        }
    }
}

/// The lower bounds a solution's ratios are reported against, tagged with
/// their provenance so identical-machine and heterogeneous runs report
/// comparable numbers through one code path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundReport {
    /// Lower bound on the optimal makespan.
    pub cmax: f64,
    /// Lower bound on the optimal maximum memory.
    pub mmax: f64,
    /// How the bounds were derived.
    pub source: BoundSource,
}

impl BoundReport {
    /// The Graham bounds on `m` identical machines.
    pub fn identical(tasks: &TaskSet, m: usize) -> Self {
        if tasks.is_empty() {
            return BoundReport {
                cmax: 0.0,
                mmax: 0.0,
                source: BoundSource::GrahamIdentical,
            };
        }
        BoundReport {
            cmax: cmax_lower_bound(tasks, m),
            mmax: mmax_lower_bound(tasks, m),
            source: BoundSource::GrahamIdentical,
        }
    }

    /// The identical-machine bounds strengthened by a known critical-path
    /// length (precedence-constrained instances).
    pub fn with_critical_path(tasks: &TaskSet, m: usize, critical_path: f64) -> Self {
        if tasks.is_empty() {
            return BoundReport {
                cmax: 0.0,
                mmax: 0.0,
                source: BoundSource::CriticalPath,
            };
        }
        BoundReport {
            cmax: cmax_lower_bound_prec(tasks, m, critical_path),
            mmax: mmax_lower_bound(tasks, m),
            source: BoundSource::CriticalPath,
        }
    }

    /// The uniform-machine generalization: `Cmax ≥ max(max_i p_i / v_max,
    /// Σ_i p_i / Σ_q v_q)`; the memory bound is speed-independent.
    ///
    /// This is the single derivation both the identical-machine path
    /// (`v_q ≡ 1` reduces it to [`BoundReport::identical`]) and
    /// `sws_core::heterogeneous` report through.
    pub fn uniform(tasks: &TaskSet, m: usize, max_speed: f64, total_speed: f64) -> Self {
        if tasks.is_empty() {
            return BoundReport {
                cmax: 0.0,
                mmax: 0.0,
                source: BoundSource::UniformSpeeds,
            };
        }
        BoundReport {
            cmax: (tasks.max_processing() / max_speed).max(tasks.total_work() / total_speed),
            mmax: mmax_lower_bound(tasks, m),
            source: BoundSource::UniformSpeeds,
        }
    }

    /// Achieved makespan over the reported bound (`1` when the bound is
    /// zero — an empty or zero-work instance is trivially optimal).
    pub fn cmax_ratio(&self, achieved_cmax: f64) -> f64 {
        if self.cmax > 0.0 {
            achieved_cmax / self.cmax
        } else {
            1.0
        }
    }

    /// Achieved maximum memory over the reported bound (`1` when the
    /// bound is zero).
    pub fn mmax_ratio(&self, achieved_mmax: f64) -> f64 {
        if self.mmax > 0.0 {
            achieved_mmax / self.mmax
        } else {
            1.0
        }
    }
}

/// The asymptotic cost model behind a [`CostEstimate`], tagged so
/// admission logs can explain *why* a request was considered cheap or
/// expensive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostModel {
    /// `O(n log n)` sort-and-place heuristics (LPT, MULTIFIT, Graham,
    /// SPT) and the default for foreign backends.
    Linearithmic,
    /// The event-driven kernel's `O((n + e) log n)` loop.
    KernelEventDriven,
    /// Exhaustive assignment enumeration, `m^n` states (the exact
    /// backends' gate).
    Enumeration,
    /// The Hochbaum–Shmoys configuration DP, `states × configs`
    /// (`sws_ptas::Rounding::dp_work_estimate`).
    ConfigDp,
    /// An outer search multiplying an inner schedule cost (the SBO∆
    /// binary search of Section 7).
    InnerSearch,
    /// The retained `O(n²m)` naive oracle.
    Quadratic,
}

impl CostModel {
    /// A short label for reports and admission logs.
    pub fn label(&self) -> &'static str {
        match self {
            CostModel::Linearithmic => "linearithmic",
            CostModel::KernelEventDriven => "kernel-event-driven",
            CostModel::Enumeration => "enumeration",
            CostModel::ConfigDp => "config-dp",
            CostModel::InnerSearch => "inner-search",
            CostModel::Quadratic => "quadratic",
        }
    }
}

/// A backend's pre-dispatch work estimate for one request, in abstract
/// *work units* (roughly: elementary scheduling operations). Estimates
/// are comparable **across backends** — the same scale the documented
/// feasibility gates already use (`m^n` for the exact solvers,
/// `states × configs` for the PTAS configuration DP, `(n + e)·log n` for
/// the kernel) — which is what lets a service front rank backends by
/// cost and refuse or degrade a request *before* dispatching it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Estimated work units.
    pub work: f64,
    /// The asymptotic model the estimate comes from.
    pub model: CostModel,
}

impl CostEstimate {
    /// An `n log n` estimate (the classic heuristics and the default for
    /// foreign backends).
    pub fn linearithmic(n: usize) -> Self {
        let n = n as f64;
        CostEstimate {
            work: n * (n.max(2.0)).log2(),
            model: CostModel::Linearithmic,
        }
    }

    /// The kernel's `(n + e)·log n` estimate.
    pub fn kernel(n: usize, edges: usize) -> Self {
        let size = (n + edges) as f64;
        CostEstimate {
            work: size * ((n as f64).max(2.0)).log2(),
            model: CostModel::KernelEventDriven,
        }
    }

    /// An `m^n` enumeration estimate (saturating, as the exact gates
    /// compute it).
    pub fn enumeration(states: u64) -> Self {
        CostEstimate {
            work: states as f64,
            model: CostModel::Enumeration,
        }
    }
}

/// Provenance of one solve: which backend ran and how.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// The backend that produced the solution.
    pub backend: BackendId,
    /// Units of work the backend reports: scheduling rounds for the
    /// kernel backends, inner-algorithm evaluations for SBO and the
    /// constrained search, dual tests for the PTAS, visited assignments
    /// for the exact solvers.
    pub rounds: usize,
    /// Whether the run drew its buffers from a caller-supplied reusable
    /// workspace (the allocation-free serving discipline of the kernel).
    pub workspace_reused: bool,
    /// The lower bounds (and their provenance) ratios are reported
    /// against.
    pub bounds: BoundReport,
    /// The pre-dispatch work estimate the routing layer gated this solve
    /// on (`None` when the backend was called directly, outside any
    /// routed path).
    pub cost: Option<CostEstimate>,
    /// How many dispatch attempts this solution took, counting the
    /// first: `1` everywhere except on a service path whose
    /// `RetryPolicy` recovered from a transient failure.
    pub attempts: u32,
}

impl SolveStats {
    /// Stats for a backend run with identical-machine Graham bounds and
    /// no reused workspace.
    pub fn new(backend: BackendId, rounds: usize, tasks: &TaskSet, m: usize) -> Self {
        SolveStats {
            backend,
            rounds,
            workspace_reused: false,
            bounds: BoundReport::identical(tasks, m),
            cost: None,
            attempts: 1,
        }
    }
}

/// The unified output: schedule, objective values, achieved guarantee and
/// provenance — regardless of which backend produced it.
#[derive(Debug, Clone)]
pub struct Solution {
    /// The produced schedule. Assignment-only backends (SBO, the exact
    /// solvers, the classic heuristics) pack their assignment into start
    /// times processor by processor; the objective values are unaffected.
    pub schedule: TimedSchedule,
    /// Achieved `(Cmax, Mmax)`.
    pub point: ObjectivePoint,
    /// Achieved `ΣC_i`, reported by tri-objective runs.
    pub sum_ci: Option<f64>,
    /// The guarantee level the backend actually delivered (e.g. a PTAS
    /// run that had to fall back to FFD packing reports
    /// [`Guarantee::PaperRatio`] instead of the requested ε).
    pub achieved: Guarantee,
    /// The proven `(Cmax, Mmax)` approximation factors backing
    /// [`Solution::achieved`], when a ratio-style bound exists. An
    /// unconstrained objective reports `f64::INFINITY`.
    pub ratio_bound: Option<(f64, f64)>,
    /// Provenance: backend, work, workspace reuse, lower bounds.
    pub stats: SolveStats,
}

impl Solution {
    /// Achieved makespan over the reported lower bound.
    pub fn cmax_over_lb(&self) -> f64 {
        self.stats.bounds.cmax_ratio(self.point.cmax)
    }

    /// Achieved maximum memory over the reported lower bound.
    pub fn mmax_over_lb(&self) -> f64 {
        self.stats.bounds.mmax_ratio(self.point.mmax)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guarantee_ladder_is_ordered() {
        let exact = Guarantee::Exact;
        let eps1 = Guarantee::EpsilonOptimal(0.1);
        let eps2 = Guarantee::EpsilonOptimal(0.3);
        let paper = Guarantee::PaperRatio;
        let none = Guarantee::None;
        for g in [exact, eps1, eps2, paper, none] {
            assert!(g.satisfies(&none), "{} must satisfy none", g.label());
        }
        assert!(exact.satisfies(&eps1) && exact.satisfies(&paper) && exact.satisfies(&exact));
        assert!(eps1.satisfies(&eps2) && !eps2.satisfies(&eps1));
        assert!(eps1.satisfies(&paper) && !paper.satisfies(&eps1));
        assert!(!paper.satisfies(&exact) && !eps1.satisfies(&exact));
        assert!(!none.satisfies(&paper));
    }

    #[test]
    fn uniform_bounds_with_unit_speeds_match_the_identical_bounds() {
        let tasks = TaskSet::from_ps(&[3.0, 5.0, 2.0, 8.0], &[1.0, 4.0, 2.0, 3.0]).unwrap();
        let ident = BoundReport::identical(&tasks, 3);
        let unif = BoundReport::uniform(&tasks, 3, 1.0, 3.0);
        assert_eq!(ident.cmax, unif.cmax);
        assert_eq!(ident.mmax, unif.mmax);
        assert_eq!(ident.source, BoundSource::GrahamIdentical);
        assert_eq!(unif.source, BoundSource::UniformSpeeds);
    }

    #[test]
    fn ratios_guard_zero_bounds() {
        let tasks = TaskSet::from_ps(&[], &[]).unwrap();
        let report = BoundReport::identical(&tasks, 2);
        assert_eq!(report.cmax_ratio(0.0), 1.0);
        assert_eq!(report.mmax_ratio(0.0), 1.0);
        let tasks = TaskSet::from_ps(&[2.0], &[3.0]).unwrap();
        let report = BoundReport::identical(&tasks, 2);
        assert!((report.cmax_ratio(4.0) - 2.0).abs() < 1e-12);
        assert!((report.mmax_ratio(3.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn request_accessors_and_error() {
        let inst = Instance::from_ps(&[1.0, 2.0], &[3.0, 4.0], 2).unwrap();
        let req = SolveRequest::independent(&inst, ObjectiveMode::CmaxOnly)
            .with_guarantee(Guarantee::Exact);
        assert_eq!(req.n(), 2);
        assert_eq!(req.m(), 2);
        assert!(!req.instance.has_precedence());
        match req.no_backend_error() {
            ModelError::NoQualifiedBackend {
                objective,
                guarantee,
                n,
                m,
            } => {
                assert_eq!(objective, "cmax");
                assert_eq!(guarantee, "exact");
                assert_eq!(n, 2);
                assert_eq!(m, 2);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }
}
