//! Tasks and task identifiers.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;

/// Index of a task inside an instance.
///
/// Tasks are always stored densely (`0..n`), so the identifier is simply a
/// wrapper around the index; the newtype prevents accidentally mixing task
/// and processor indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub usize);

impl TaskId {
    /// Returns the underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for TaskId {
    fn from(i: usize) -> Self {
        TaskId(i)
    }
}

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A task of the problem `P | p_j, s_j | Cmax, Mmax`.
///
/// * `p` — processing time (`p_i` in the paper),
/// * `s` — storage requirement (`s_i` in the paper), e.g. instruction code
///   size on a multi-SoC system or result size in a scientific workflow.
///
/// The paper explicitly assumes the processing time of a task is *not*
/// related to the memory it uses, so the two fields are independent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Processing time `p_i ≥ 0`.
    pub p: f64,
    /// Storage requirement `s_i ≥ 0`.
    pub s: f64,
}

impl Task {
    /// Creates a task, validating that both quantities are finite and
    /// non-negative.
    pub fn new(p: f64, s: f64) -> Result<Self, ModelError> {
        if !p.is_finite() || p < 0.0 {
            return Err(ModelError::InvalidProcessingTime {
                task: usize::MAX,
                value: p,
            });
        }
        if !s.is_finite() || s < 0.0 {
            return Err(ModelError::InvalidStorage {
                task: usize::MAX,
                value: s,
            });
        }
        Ok(Task { p, s })
    }

    /// Creates a task without validation. Only use with values known to be
    /// finite and non-negative (e.g. from a generator).
    #[inline]
    pub fn new_unchecked(p: f64, s: f64) -> Self {
        Task { p, s }
    }

    /// The ratio `p_i / s_i` that drives the SBO∆ threshold rule. Returns
    /// `+∞` when the task uses no memory (such a task should always be
    /// scheduled by the makespan-oriented schedule).
    #[inline]
    pub fn time_per_memory(&self) -> f64 {
        if self.s == 0.0 {
            f64::INFINITY
        } else {
            self.p / self.s
        }
    }

    /// Returns the task with processing time and storage swapped. The paper
    /// notes that with independent tasks the two objectives are strictly
    /// symmetric; swapping lets tests exploit that symmetry.
    #[inline]
    pub fn swapped(&self) -> Task {
        Task {
            p: self.s,
            s: self.p,
        }
    }
}

/// A non-empty collection of tasks with dense identifiers `0..n`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TaskSet {
    tasks: Vec<Task>,
}

impl TaskSet {
    /// Builds a task set from a vector of tasks, validating each entry.
    pub fn new(tasks: Vec<Task>) -> Result<Self, ModelError> {
        for (i, t) in tasks.iter().enumerate() {
            if !t.p.is_finite() || t.p < 0.0 {
                return Err(ModelError::InvalidProcessingTime {
                    task: i,
                    value: t.p,
                });
            }
            if !t.s.is_finite() || t.s < 0.0 {
                return Err(ModelError::InvalidStorage {
                    task: i,
                    value: t.s,
                });
            }
        }
        Ok(TaskSet { tasks })
    }

    /// Builds a task set from parallel arrays of processing times and
    /// storage requirements.
    pub fn from_ps(p: &[f64], s: &[f64]) -> Result<Self, ModelError> {
        if p.len() != s.len() {
            return Err(ModelError::LengthMismatch {
                left: p.len(),
                right: s.len(),
            });
        }
        let tasks = p
            .iter()
            .zip(s.iter())
            .map(|(&p, &s)| Task { p, s })
            .collect();
        TaskSet::new(tasks)
    }

    /// Number of tasks.
    #[inline]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Immutable access to the underlying tasks.
    #[inline]
    pub fn as_slice(&self) -> &[Task] {
        &self.tasks
    }

    /// Task by index. Panics when out of range.
    #[inline]
    pub fn get(&self, id: usize) -> Task {
        self.tasks[id]
    }

    /// Iterates over `(TaskId, Task)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, Task)> + '_ {
        self.tasks.iter().enumerate().map(|(i, &t)| (TaskId(i), t))
    }

    /// Total processing requirement `Σ p_i`.
    pub fn total_work(&self) -> f64 {
        crate::numeric::kahan_sum(self.tasks.iter().map(|t| t.p))
    }

    /// Total storage requirement `Σ s_i`.
    pub fn total_storage(&self) -> f64 {
        crate::numeric::kahan_sum(self.tasks.iter().map(|t| t.s))
    }

    /// Largest single processing time `max_i p_i`.
    pub fn max_processing(&self) -> f64 {
        crate::numeric::max_or_zero(self.tasks.iter().map(|t| t.p))
    }

    /// Largest single storage requirement `max_i s_i`.
    pub fn max_storage(&self) -> f64 {
        crate::numeric::max_or_zero(self.tasks.iter().map(|t| t.s))
    }

    /// Returns the task set with every task's `p` and `s` swapped.
    pub fn swapped(&self) -> TaskSet {
        TaskSet {
            tasks: self.tasks.iter().map(Task::swapped).collect(),
        }
    }

    /// Adds a task and returns its identifier.
    pub fn push(&mut self, task: Task) -> TaskId {
        self.tasks.push(task);
        TaskId(self.tasks.len() - 1)
    }
}

impl std::ops::Index<usize> for TaskSet {
    type Output = Task;
    fn index(&self, index: usize) -> &Task {
        &self.tasks[index]
    }
}

impl std::ops::Index<TaskId> for TaskSet {
    type Output = Task;
    fn index(&self, index: TaskId) -> &Task {
        &self.tasks[index.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_rejects_negative_and_non_finite_values() {
        assert!(Task::new(-1.0, 1.0).is_err());
        assert!(Task::new(1.0, -1.0).is_err());
        assert!(Task::new(f64::NAN, 1.0).is_err());
        assert!(Task::new(1.0, f64::INFINITY).is_err());
        assert!(Task::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn time_per_memory_handles_zero_storage() {
        let t = Task::new(2.0, 0.0).unwrap();
        assert!(t.time_per_memory().is_infinite());
        let u = Task::new(2.0, 4.0).unwrap();
        assert!((u.time_per_memory() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn swapped_exchanges_objectives() {
        let t = Task::new(3.0, 7.0).unwrap();
        let u = t.swapped();
        assert_eq!(u.p, 7.0);
        assert_eq!(u.s, 3.0);
        assert_eq!(u.swapped(), t);
    }

    #[test]
    fn task_set_from_parallel_arrays() {
        let ts = TaskSet::from_ps(&[1.0, 2.0, 3.0], &[0.5, 0.25, 0.125]).unwrap();
        assert_eq!(ts.len(), 3);
        assert!((ts.total_work() - 6.0).abs() < 1e-12);
        assert!((ts.total_storage() - 0.875).abs() < 1e-12);
        assert_eq!(ts.max_processing(), 3.0);
        assert_eq!(ts.max_storage(), 0.5);
    }

    #[test]
    fn task_set_rejects_mismatched_lengths() {
        let err = TaskSet::from_ps(&[1.0, 2.0], &[1.0]).unwrap_err();
        assert_eq!(err, ModelError::LengthMismatch { left: 2, right: 1 });
    }

    #[test]
    fn task_set_reports_offending_index() {
        let err = TaskSet::from_ps(&[1.0, -2.0], &[1.0, 1.0]).unwrap_err();
        match err {
            ModelError::InvalidProcessingTime { task, .. } => assert_eq!(task, 1),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn indexing_by_id_and_usize_agree() {
        let ts = TaskSet::from_ps(&[1.0, 2.0], &[3.0, 4.0]).unwrap();
        assert_eq!(ts[TaskId(1)], ts[1usize]);
        assert_eq!(ts.get(0), ts[0]);
    }

    #[test]
    fn swapped_set_swaps_aggregates() {
        let ts = TaskSet::from_ps(&[1.0, 2.0], &[3.0, 5.0]).unwrap();
        let sw = ts.swapped();
        assert_eq!(sw.total_work(), ts.total_storage());
        assert_eq!(sw.max_storage(), ts.max_processing());
    }

    #[test]
    fn push_returns_dense_ids() {
        let mut ts = TaskSet::default();
        assert!(ts.is_empty());
        let a = ts.push(Task::new_unchecked(1.0, 1.0));
        let b = ts.push(Task::new_unchecked(2.0, 2.0));
        assert_eq!(a, TaskId(0));
        assert_eq!(b, TaskId(1));
        assert_eq!(ts.len(), 2);
    }
}
