//! Objective evaluation: `Cmax`, `Mmax` and `ΣC_i`.

use serde::{Deserialize, Serialize};

use crate::instance::Instance;
use crate::numeric::{approx_le, max_or_zero};
use crate::schedule::{Assignment, TimedSchedule};
use crate::task::TaskSet;

/// Maximum per-processor load of an assignment (independent tasks):
/// `Cmax = max_q Σ_{π(i)=q} p_i`.
pub fn cmax_of_assignment(tasks: &TaskSet, asg: &Assignment) -> f64 {
    max_or_zero(asg.loads(tasks))
}

/// Maximum per-processor cumulative memory of an assignment:
/// `Mmax = max_q Σ_{π(i)=q} s_i`.
pub fn mmax_of_assignment(tasks: &TaskSet, asg: &Assignment) -> f64 {
    max_or_zero(asg.memory(tasks))
}

/// Makespan of a timed schedule: `Cmax = max_i (σ(i) + p_i)`.
pub fn cmax_of_timed(tasks: &TaskSet, sched: &TimedSchedule) -> f64 {
    sched.cmax(tasks)
}

/// Maximum per-processor cumulative memory of a timed schedule (identical
/// to the assignment definition: memory is cumulative over the whole run).
pub fn mmax_of_timed(tasks: &TaskSet, sched: &TimedSchedule) -> f64 {
    max_or_zero(sched.memory(tasks))
}

/// Sum of completion times `Σ C_i` of a timed schedule.
pub fn sum_completion(tasks: &TaskSet, sched: &TimedSchedule) -> f64 {
    sched.sum_completion(tasks)
}

/// A point in the bi-objective space `(Cmax, Mmax)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectivePoint {
    /// Makespan.
    pub cmax: f64,
    /// Maximum cumulative memory.
    pub mmax: f64,
}

impl ObjectivePoint {
    /// Builds a point directly.
    pub fn new(cmax: f64, mmax: f64) -> Self {
        ObjectivePoint { cmax, mmax }
    }

    /// Evaluates an assignment on an instance.
    pub fn of_assignment(inst: &Instance, asg: &Assignment) -> Self {
        ObjectivePoint {
            cmax: cmax_of_assignment(inst.tasks(), asg),
            mmax: mmax_of_assignment(inst.tasks(), asg),
        }
    }

    /// Evaluates a timed schedule on an instance.
    pub fn of_timed(inst: &Instance, sched: &TimedSchedule) -> Self {
        ObjectivePoint {
            cmax: cmax_of_timed(inst.tasks(), sched),
            mmax: mmax_of_timed(inst.tasks(), sched),
        }
    }

    /// Evaluates a timed schedule against an explicit task set (used for
    /// DAG instances whose task set lives in `sws-dag`).
    pub fn of_timed_tasks(tasks: &TaskSet, sched: &TimedSchedule) -> Self {
        ObjectivePoint {
            cmax: cmax_of_timed(tasks, sched),
            mmax: mmax_of_timed(tasks, sched),
        }
    }

    /// True when `self` is at least as good as `other` on both objectives
    /// (up to floating-point tolerance).
    pub fn weakly_dominates(&self, other: &ObjectivePoint) -> bool {
        approx_le(self.cmax, other.cmax) && approx_le(self.mmax, other.mmax)
    }

    /// The point with the two objectives swapped, matching the symmetry of
    /// the independent-task problem.
    pub fn swapped(&self) -> ObjectivePoint {
        ObjectivePoint {
            cmax: self.mmax,
            mmax: self.cmax,
        }
    }

    /// Component-wise ratio to a reference point (typically the optimum or
    /// a lower-bound point). Returns `(cmax_ratio, mmax_ratio)`; a ratio is
    /// reported as 1 when the reference component is zero and the achieved
    /// component is also zero, and as `+∞` when only the reference is zero.
    pub fn ratio_to(&self, reference: &ObjectivePoint) -> (f64, f64) {
        (
            ratio(self.cmax, reference.cmax),
            ratio(self.mmax, reference.mmax),
        )
    }
}

impl std::fmt::Display for ObjectivePoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(Cmax = {:.6}, Mmax = {:.6})", self.cmax, self.mmax)
    }
}

/// A point in the tri-objective space `(Cmax, Mmax, ΣC_i)` used by the
/// Section 5.2 extension.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TriObjectivePoint {
    /// Makespan.
    pub cmax: f64,
    /// Maximum cumulative memory.
    pub mmax: f64,
    /// Sum of completion times.
    pub sum_ci: f64,
}

impl TriObjectivePoint {
    /// Builds a point directly.
    pub fn new(cmax: f64, mmax: f64, sum_ci: f64) -> Self {
        TriObjectivePoint { cmax, mmax, sum_ci }
    }

    /// Evaluates a timed schedule on an instance.
    pub fn of_timed(inst: &Instance, sched: &TimedSchedule) -> Self {
        TriObjectivePoint {
            cmax: cmax_of_timed(inst.tasks(), sched),
            mmax: mmax_of_timed(inst.tasks(), sched),
            sum_ci: sum_completion(inst.tasks(), sched),
        }
    }

    /// The bi-objective projection.
    pub fn bi(&self) -> ObjectivePoint {
        ObjectivePoint {
            cmax: self.cmax,
            mmax: self.mmax,
        }
    }

    /// Component-wise ratio to a reference point.
    pub fn ratio_to(&self, reference: &TriObjectivePoint) -> (f64, f64, f64) {
        (
            ratio(self.cmax, reference.cmax),
            ratio(self.mmax, reference.mmax),
            ratio(self.sum_ci, reference.sum_ci),
        )
    }
}

impl std::fmt::Display for TriObjectivePoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "(Cmax = {:.6}, Mmax = {:.6}, ΣCi = {:.6})",
            self.cmax, self.mmax, self.sum_ci
        )
    }
}

fn ratio(achieved: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        if achieved == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        achieved / reference
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_first_instance() -> Instance {
        // Section 4.1: p = [1, 1/2, 1/2], s = [eps, 1, 1], m = 2.
        Instance::from_ps(&[1.0, 0.5, 0.5], &[0.001, 1.0, 1.0], 2).unwrap()
    }

    #[test]
    fn objective_values_of_the_paper_first_instance() {
        let inst = paper_first_instance();
        // Schedule 1: task 0 alone -> (1, 2).
        let s1 = Assignment::new(vec![0, 1, 1], 2).unwrap();
        let p1 = ObjectivePoint::of_assignment(&inst, &s1);
        assert!((p1.cmax - 1.0).abs() < 1e-9);
        assert!((p1.mmax - 2.0).abs() < 1e-9);
        // Schedule 2: tasks 0 and 1 together -> (3/2, 1 + eps).
        let s2 = Assignment::new(vec![0, 0, 1], 2).unwrap();
        let p2 = ObjectivePoint::of_assignment(&inst, &s2);
        assert!((p2.cmax - 1.5).abs() < 1e-9);
        assert!((p2.mmax - 1.001).abs() < 1e-9);
        // Schedule 3: everything on one processor -> (2, 2 + eps), dominated.
        let s3 = Assignment::new(vec![0, 0, 0], 2).unwrap();
        let p3 = ObjectivePoint::of_assignment(&inst, &s3);
        assert!(p1.weakly_dominates(&p3));
    }

    #[test]
    fn timed_and_assignment_objectives_agree_for_independent_tasks() {
        let inst = paper_first_instance();
        let asg = Assignment::new(vec![0, 1, 1], 2).unwrap();
        let timed = asg.into_timed(inst.tasks());
        let pa = ObjectivePoint::of_assignment(&inst, &asg);
        let pt = ObjectivePoint::of_timed(&inst, &timed);
        assert!((pa.cmax - pt.cmax).abs() < 1e-12);
        assert!((pa.mmax - pt.mmax).abs() < 1e-12);
    }

    #[test]
    fn swapping_the_instance_swaps_the_objective_point() {
        let inst = paper_first_instance();
        let asg = Assignment::new(vec![0, 1, 1], 2).unwrap();
        let p = ObjectivePoint::of_assignment(&inst, &asg);
        let ps = ObjectivePoint::of_assignment(&inst.swapped(), &asg);
        assert!((ps.cmax - p.mmax).abs() < 1e-12);
        assert!((ps.mmax - p.cmax).abs() < 1e-12);
        assert_eq!(p.swapped(), ps);
    }

    #[test]
    fn sum_completion_counts_every_task() {
        let inst = Instance::from_ps(&[1.0, 2.0, 3.0], &[1.0, 1.0, 1.0], 1).unwrap();
        let asg = Assignment::new(vec![0, 0, 0], 1).unwrap();
        let timed = asg.into_timed(inst.tasks());
        // Completions: 1, 3, 6 -> sum 10.
        let tri = TriObjectivePoint::of_timed(&inst, &timed);
        assert!((tri.sum_ci - 10.0).abs() < 1e-12);
        assert!((tri.cmax - 6.0).abs() < 1e-12);
    }

    #[test]
    fn ratios_handle_zero_reference_components() {
        let a = ObjectivePoint::new(1.0, 0.0);
        let r = ObjectivePoint::new(0.0, 0.0);
        let (rc, rm) = a.ratio_to(&r);
        assert!(rc.is_infinite());
        assert_eq!(rm, 1.0);
    }

    #[test]
    fn tri_point_projects_to_bi_point() {
        let t = TriObjectivePoint::new(2.0, 3.0, 10.0);
        assert_eq!(t.bi(), ObjectivePoint::new(2.0, 3.0));
        let (rc, rm, rs) = t.ratio_to(&TriObjectivePoint::new(1.0, 1.0, 5.0));
        assert_eq!((rc, rm, rs), (2.0, 3.0, 2.0));
    }

    #[test]
    fn display_is_human_readable() {
        let p = ObjectivePoint::new(1.5, 2.0);
        assert!(p.to_string().contains("Cmax"));
        let t = TriObjectivePoint::new(1.0, 2.0, 3.0);
        assert!(t.to_string().contains("ΣCi"));
    }
}
