//! Tolerant floating-point comparisons.
//!
//! Processing times and storage requirements are modelled as `f64` so that
//! the paper's `ε`-instances (Section 4) can be expressed directly. All
//! feasibility checks and guarantee checks therefore need a small relative
//! tolerance; this module centralizes it so every crate compares numbers
//! the same way.

/// Default relative tolerance used by the comparison helpers.
pub const REL_TOL: f64 = 1e-9;

/// Default absolute tolerance used when both operands are close to zero.
pub const ABS_TOL: f64 = 1e-12;

/// Scale factor applied to the larger magnitude operand when deriving the
/// comparison slack.
#[inline]
fn slack(a: f64, b: f64) -> f64 {
    let mag = a.abs().max(b.abs());
    ABS_TOL.max(REL_TOL * mag)
}

/// `a == b` up to the module tolerance. Exact equality — the common
/// case in tie-heavy scheduling comparisons — short-circuits the slack
/// computation.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    a == b || (a - b).abs() <= slack(a, b)
}

/// `a <= b` up to the module tolerance.
///
/// The exact comparison short-circuits the slack computation: `slack` is
/// strictly positive, so `a ≤ b` already implies the tolerant result.
/// (NaN operands fail both comparisons, as before.) This is the kernel's
/// hottest predicate — admissibility checks and ready-queue migrations
/// run through it every scheduling round.
#[inline]
pub fn approx_le(a: f64, b: f64) -> bool {
    a <= b || a <= b + slack(a, b)
}

/// `a >= b` up to the module tolerance (same fast path as
/// [`approx_le`]).
#[inline]
pub fn approx_ge(a: f64, b: f64) -> bool {
    a >= b || a + slack(a, b) >= b
}

/// `a < b` strictly, i.e. not even approximately equal.
#[inline]
pub fn strictly_lt(a: f64, b: f64) -> bool {
    a < b && !approx_eq(a, b)
}

/// `a > b` strictly, i.e. not even approximately equal.
#[inline]
pub fn strictly_gt(a: f64, b: f64) -> bool {
    a > b && !approx_eq(a, b)
}

/// The list-scheduling selection comparator shared by the event-driven
/// kernel (`sws_listsched::kernel`) and the retained naive oracles: the
/// candidate that can start at `t_a` with tie-break rank `rank_a` beats
/// the incumbent `(t_b, rank_b)` iff it starts strictly earlier (beyond
/// the module tolerance) or ties approximately with a smaller rank.
///
/// Centralizing this here is what makes kernel and naive schedules
/// bit-identical: both paths used to carry their own literal tolerances
/// (`1e-15`/`1e-12` ad-hoc epsilons in `dag_list` and `rls`), which this
/// helper replaces.
#[inline]
pub fn better_candidate(t_a: f64, rank_a: usize, t_b: f64, rank_b: usize) -> bool {
    strictly_lt(t_a, t_b) || (approx_eq(t_a, t_b) && rank_a < rank_b)
}

// ---------------------------------------------------------------------------
// Exact comparison vocabulary.
//
// Validation guards and sentinel checks must NOT carry the module
// tolerance: `∆ > 2` is a hard parameter boundary, not a tie-heavy
// scheduling comparison, and widening it by `slack` would admit
// out-of-contract inputs. These helpers are deliberately exact IEEE-754
// comparisons (NaN fails every one), named so the intent survives at
// the call site. Routing them through this module keeps every f64
// comparison in the workspace in one place — enforced statically by
// sws-lint's float-discipline rule.
// ---------------------------------------------------------------------------

/// Exact `a > b`; NaN operands yield `false`. The helper form of the
/// `partial_cmp(&b) == Some(Ordering::Greater)` validation idiom.
#[inline]
pub fn exceeds(a: f64, b: f64) -> bool {
    a > b
}

/// Exact `a <= b`; NaN operands yield `false`.
#[inline]
pub fn at_most(a: f64, b: f64) -> bool {
    a <= b
}

/// Exact `a >= b`; NaN operands yield `false`.
#[inline]
pub fn at_least(a: f64, b: f64) -> bool {
    a >= b
}

/// Exact `v == 0.0` (matches `-0.0` too); the zero-sentinel check used
/// by degenerate-instance routing.
#[inline]
pub fn exactly_zero(v: f64) -> bool {
    v == 0.0
}

/// `a` is finite **and** exactly greater than `b` — the shared shape of
/// parameter validation (`∆ > 2 and finite`): NaN and ±∞ both fail.
#[inline]
pub fn finite_gt(a: f64, b: f64) -> bool {
    a.is_finite() && a > b
}

/// `a` is finite **and** exactly at least `b`.
#[inline]
pub fn finite_ge(a: f64, b: f64) -> bool {
    a.is_finite() && a >= b
}

/// Total order for finite floats (panics on NaN); used to sort tasks by
/// processing time or storage requirement.
#[inline]
pub fn total_cmp(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b)
        .expect("NaN encountered in scheduling data")
}

/// Non-panicking total order over *all* floats, for `Ord` impls that
/// must hold unconditionally (e.g. simulation event queues): the
/// IEEE-754 `totalOrder` predicate, so `-0.0 < +0.0` and NaNs sort
/// above `+∞` instead of poisoning the comparison. Prefer
/// [`total_cmp`] where a NaN is a data corruption worth halting on;
/// use this where the comparison sits under a `BinaryHeap`/sort whose
/// contract (`Ord`) a panic would break mid-collection.
#[inline]
pub fn order_all(a: f64, b: f64) -> std::cmp::Ordering {
    a.total_cmp(&b)
}

/// Returns the maximum of a non-empty iterator of finite floats, or `0.0`
/// for an empty iterator (the natural identity for makespan-style maxima).
pub fn max_or_zero<I: IntoIterator<Item = f64>>(iter: I) -> f64 {
    iter.into_iter().fold(0.0, f64::max)
}

/// Kahan-compensated summation: the per-processor load sums feed directly
/// into approximation-ratio checks, so we avoid naive accumulation error on
/// long task lists.
pub fn kahan_sum<I: IntoIterator<Item = f64>>(iter: I) -> f64 {
    let mut sum = 0.0;
    let mut c = 0.0;
    for x in iter {
        let y = x - c;
        let t = sum + y;
        c = (t - sum) - y;
        sum = t;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_within_relative_tolerance() {
        assert!(approx_eq(1.0, 1.0 + 1e-12));
        assert!(approx_eq(1e6, 1e6 * (1.0 + 1e-10)));
        assert!(!approx_eq(1.0, 1.0001));
    }

    #[test]
    fn le_and_ge_are_tolerant_at_the_boundary() {
        assert!(approx_le(1.0 + 1e-12, 1.0));
        assert!(approx_ge(1.0 - 1e-12, 1.0));
        assert!(!approx_le(1.01, 1.0));
        assert!(!approx_ge(0.99, 1.0));
    }

    #[test]
    fn strict_comparisons_exclude_near_equality() {
        assert!(strictly_lt(0.5, 1.0));
        assert!(!strictly_lt(1.0, 1.0 + 1e-13));
        assert!(strictly_gt(2.0, 1.0));
        assert!(!strictly_gt(1.0 + 1e-13, 1.0));
    }

    #[test]
    fn kahan_sum_matches_exact_sum_on_adversarial_input() {
        // 1.0 followed by many tiny values that naive summation would drop.
        let mut values = vec![1.0];
        values.extend(std::iter::repeat_n(1e-16, 10_000));
        let s = kahan_sum(values.iter().copied());
        assert!((s - (1.0 + 1e-12)).abs() < 1e-13);
    }

    #[test]
    fn max_or_zero_handles_empty_input() {
        assert_eq!(max_or_zero(std::iter::empty()), 0.0);
        assert_eq!(max_or_zero(vec![0.25, 3.0, 1.5]), 3.0);
    }

    #[test]
    #[should_panic]
    fn total_cmp_rejects_nan() {
        let _ = total_cmp(f64::NAN, 1.0);
    }

    #[test]
    fn order_all_is_total_even_over_nan() {
        use std::cmp::Ordering;
        assert_eq!(order_all(1.0, 2.0), Ordering::Less);
        assert_eq!(order_all(2.0, 2.0), Ordering::Equal);
        // IEEE-754 totalOrder: -0.0 sorts below +0.0, NaN above +∞ —
        // no input can make the comparison panic.
        assert_eq!(order_all(-0.0, 0.0), Ordering::Less);
        assert_eq!(order_all(f64::NAN, f64::INFINITY), Ordering::Greater);
        assert_eq!(order_all(f64::NAN, f64::NAN), Ordering::Equal);
        // Agrees with total_cmp wherever total_cmp is defined (finite,
        // non-signed-zero-distinguished inputs).
        for (a, b) in [(1.0, 3.0), (3.0, 1.0), (2.0, 2.0), (-1.5, 1.5)] {
            assert_eq!(order_all(a, b), total_cmp(a, b));
        }
    }

    #[test]
    fn exact_helpers_reject_nan_and_respect_boundaries() {
        assert!(exceeds(2.1, 2.0));
        assert!(!exceeds(2.0, 2.0));
        assert!(!exceeds(f64::NAN, 2.0));
        assert!(exceeds(f64::INFINITY, 2.0));
        assert!(at_most(2.0, 2.0));
        assert!(!at_most(f64::NAN, 2.0));
        assert!(at_least(2.0, 2.0));
        assert!(!at_least(f64::NAN, 2.0));
        assert!(exactly_zero(0.0));
        assert!(exactly_zero(-0.0));
        assert!(!exactly_zero(1e-300));
    }

    #[test]
    fn finite_helpers_reject_nan_and_infinity() {
        assert!(finite_gt(2.5, 2.0));
        assert!(!finite_gt(2.0, 2.0));
        assert!(!finite_gt(f64::INFINITY, 2.0));
        assert!(!finite_gt(f64::NAN, 2.0));
        assert!(finite_ge(0.0, 0.0));
        assert!(!finite_ge(f64::INFINITY, 0.0));
        assert!(!finite_ge(-1.0, 0.0));
        // The validation idiom it replaces, bit for bit:
        for v in [2.0, 2.5, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let old = v.partial_cmp(&2.0) == Some(std::cmp::Ordering::Greater) && v.is_finite();
            assert_eq!(finite_gt(v, 2.0), old, "v = {v}");
        }
    }

    #[test]
    fn better_candidate_orders_by_time_then_rank() {
        // Strictly earlier start wins regardless of rank.
        assert!(better_candidate(1.0, 9, 2.0, 0));
        assert!(!better_candidate(2.0, 0, 1.0, 9));
        // Approximate tie: the smaller rank wins.
        assert!(better_candidate(1.0 + 1e-12, 0, 1.0, 1));
        assert!(!better_candidate(1.0, 1, 1.0 + 1e-12, 0));
        // Exact tie with equal rank: incumbent stays.
        assert!(!better_candidate(1.0, 3, 1.0, 3));
    }
}
