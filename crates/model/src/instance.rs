//! Independent-task instances of `P | p_j, s_j | Cmax, Mmax`.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::task::{Task, TaskSet};

/// An instance of the independent-task problem: a task set plus the number
/// of identical processors `m`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    tasks: TaskSet,
    m: usize,
}

impl Instance {
    /// Builds an instance from a task set and a processor count.
    pub fn new(tasks: TaskSet, m: usize) -> Result<Self, ModelError> {
        if m == 0 {
            return Err(ModelError::NoProcessors);
        }
        Ok(Instance { tasks, m })
    }

    /// Builds an instance from parallel arrays of processing times and
    /// storage requirements.
    pub fn from_ps(p: &[f64], s: &[f64], m: usize) -> Result<Self, ModelError> {
        Instance::new(TaskSet::from_ps(p, s)?, m)
    }

    /// Number of tasks `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.tasks.len()
    }

    /// Number of processors `m`.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// The task set.
    #[inline]
    pub fn tasks(&self) -> &TaskSet {
        &self.tasks
    }

    /// Task by index.
    #[inline]
    pub fn task(&self, i: usize) -> Task {
        self.tasks.get(i)
    }

    /// Processing time of task `i`.
    #[inline]
    pub fn p(&self, i: usize) -> f64 {
        self.tasks.get(i).p
    }

    /// Storage requirement of task `i`.
    #[inline]
    pub fn s(&self, i: usize) -> f64 {
        self.tasks.get(i).s
    }

    /// Total processing requirement `Σ p_i`.
    pub fn total_work(&self) -> f64 {
        self.tasks.total_work()
    }

    /// Total storage requirement `Σ s_i`.
    pub fn total_storage(&self) -> f64 {
        self.tasks.total_storage()
    }

    /// The symmetric instance obtained by exchanging processing times and
    /// storage requirements. The paper (Section 2.1) notes that with
    /// independent tasks `Cmax` and `Mmax` are strictly equivalent under
    /// this exchange; tests use it to verify symmetric behaviour of the
    /// algorithms.
    pub fn swapped(&self) -> Instance {
        Instance {
            tasks: self.tasks.swapped(),
            m: self.m,
        }
    }

    /// Returns a copy with a different processor count.
    pub fn with_processors(&self, m: usize) -> Result<Instance, ModelError> {
        Instance::new(self.tasks.clone(), m)
    }

    /// Basic descriptive statistics of the instance, mainly for experiment
    /// logs.
    pub fn stats(&self) -> InstanceStats {
        let n = self.n() as f64;
        let mean_p = if self.n() == 0 {
            0.0
        } else {
            self.total_work() / n
        };
        let mean_s = if self.n() == 0 {
            0.0
        } else {
            self.total_storage() / n
        };
        InstanceStats {
            n: self.n(),
            m: self.m,
            total_work: self.total_work(),
            total_storage: self.total_storage(),
            max_p: self.tasks.max_processing(),
            max_s: self.tasks.max_storage(),
            mean_p,
            mean_s,
        }
    }
}

/// Descriptive statistics of an instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstanceStats {
    /// Number of tasks.
    pub n: usize,
    /// Number of processors.
    pub m: usize,
    /// `Σ p_i`.
    pub total_work: f64,
    /// `Σ s_i`.
    pub total_storage: f64,
    /// `max_i p_i`.
    pub max_p: f64,
    /// `max_i s_i`.
    pub max_s: f64,
    /// Mean processing time.
    pub mean_p: f64,
    /// Mean storage requirement.
    pub mean_s: f64,
}

/// Incremental builder for instances, convenient in examples and tests.
#[derive(Debug, Clone, Default)]
pub struct InstanceBuilder {
    tasks: Vec<Task>,
    m: usize,
}

impl InstanceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        InstanceBuilder {
            tasks: Vec::new(),
            m: 1,
        }
    }

    /// Sets the number of processors.
    pub fn processors(mut self, m: usize) -> Self {
        self.m = m;
        self
    }

    /// Adds one task with processing time `p` and storage requirement `s`.
    pub fn task(mut self, p: f64, s: f64) -> Self {
        self.tasks.push(Task { p, s });
        self
    }

    /// Adds `count` identical tasks.
    pub fn tasks(mut self, count: usize, p: f64, s: f64) -> Self {
        self.tasks.extend(std::iter::repeat_n(Task { p, s }, count));
        self
    }

    /// Finalizes the instance.
    pub fn build(self) -> Result<Instance, ModelError> {
        Instance::new(TaskSet::new(self.tasks)?, self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_processors() {
        let err = Instance::from_ps(&[1.0], &[1.0], 0).unwrap_err();
        assert_eq!(err, ModelError::NoProcessors);
    }

    #[test]
    fn accessors_report_the_right_values() {
        let inst = Instance::from_ps(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], 2).unwrap();
        assert_eq!(inst.n(), 3);
        assert_eq!(inst.m(), 2);
        assert_eq!(inst.p(1), 2.0);
        assert_eq!(inst.s(2), 6.0);
        assert!((inst.total_work() - 6.0).abs() < 1e-12);
        assert!((inst.total_storage() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn swapped_instance_exchanges_the_two_dimensions() {
        let inst = Instance::from_ps(&[1.0, 2.0], &[3.0, 4.0], 3).unwrap();
        let sw = inst.swapped();
        assert_eq!(sw.p(0), 3.0);
        assert_eq!(sw.s(0), 1.0);
        assert_eq!(sw.m(), 3);
        assert_eq!(sw.swapped(), inst);
    }

    #[test]
    fn builder_constructs_the_expected_instance() {
        let inst = InstanceBuilder::new()
            .processors(4)
            .task(1.0, 2.0)
            .tasks(3, 0.5, 1.0)
            .build()
            .unwrap();
        assert_eq!(inst.n(), 4);
        assert_eq!(inst.m(), 4);
        assert!((inst.total_work() - 2.5).abs() < 1e-12);
        assert!((inst.total_storage() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn stats_summarize_the_instance() {
        let inst = Instance::from_ps(&[1.0, 3.0], &[2.0, 6.0], 2).unwrap();
        let st = inst.stats();
        assert_eq!(st.n, 2);
        assert_eq!(st.max_p, 3.0);
        assert_eq!(st.max_s, 6.0);
        assert!((st.mean_p - 2.0).abs() < 1e-12);
        assert!((st.mean_s - 4.0).abs() < 1e-12);
    }

    #[test]
    fn with_processors_changes_only_m() {
        let inst = Instance::from_ps(&[1.0], &[1.0], 2).unwrap();
        let inst4 = inst.with_processors(4).unwrap();
        assert_eq!(inst4.m(), 4);
        assert_eq!(inst4.tasks(), inst.tasks());
        assert!(inst.with_processors(0).is_err());
    }

    #[test]
    fn empty_instance_is_allowed_and_has_zero_aggregates() {
        let inst = Instance::from_ps(&[], &[], 3).unwrap();
        assert_eq!(inst.n(), 0);
        assert_eq!(inst.total_work(), 0.0);
        assert_eq!(inst.stats().mean_p, 0.0);
    }
}
