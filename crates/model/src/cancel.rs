//! Cooperative cancellation for long-running solves.
//!
//! A [`CancelProbe`] is a cheap, cloneable handle that a solver polls
//! at natural round boundaries (kernel rounds, PTAS dual-test steps,
//! enumeration nodes). It carries at most two signals: a shared atomic
//! flag (set by `Ticket::cancel` in the service layer, or by any owner
//! of the flag) and an absolute deadline. Polling an *unarmed* probe is
//! two predictable branches on immediate data — cheap enough to sit
//! inside the kernel's event loop without measurable overhead.
//!
//! A tripped probe surfaces as
//! [`ModelError::Interrupted`](crate::error::ModelError::Interrupted),
//! which propagates through the ordinary `Result` plumbing of every
//! solver: no unwinding, no poisoned state, and the workspace remains
//! reusable afterwards.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::error::ModelError;

/// Why an interrupted solve stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterruptReason {
    /// The caller revoked the request (e.g. `Ticket::cancel`).
    Cancelled,
    /// The request's absolute deadline passed mid-solve.
    DeadlineExpired,
}

impl InterruptReason {
    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            InterruptReason::Cancelled => "cancelled",
            InterruptReason::DeadlineExpired => "deadline-expired",
        }
    }
}

/// A cooperative cancellation/deadline probe. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct CancelProbe {
    flag: Option<Arc<AtomicBool>>,
    deadline: Option<Instant>,
}

impl CancelProbe {
    /// A probe that never trips — the default for direct solves.
    pub fn never() -> Self {
        CancelProbe::default()
    }

    /// A probe tripped by setting `flag` to `true`.
    pub fn with_flag(flag: Arc<AtomicBool>) -> Self {
        CancelProbe {
            flag: Some(flag),
            deadline: None,
        }
    }

    /// A probe tripped once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelProbe {
            flag: None,
            deadline: Some(deadline),
        }
    }

    /// Adds a cancellation flag to this probe.
    pub fn and_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.flag = Some(flag);
        self
    }

    /// Adds an absolute deadline to this probe.
    pub fn and_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Whether this probe can ever trip. Unarmed probes make `poll` a
    /// pair of branch checks, so solvers never need to special-case.
    pub fn is_armed(&self) -> bool {
        self.flag.is_some() || self.deadline.is_some()
    }

    /// Checks both signals; `Err(ModelError::Interrupted { .. })` once
    /// either has tripped. The cancellation flag wins ties.
    pub fn poll(&self) -> Result<(), ModelError> {
        if let Some(flag) = &self.flag {
            if flag.load(Ordering::Relaxed) {
                return Err(ModelError::Interrupted {
                    reason: InterruptReason::Cancelled,
                });
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(ModelError::Interrupted {
                    reason: InterruptReason::DeadlineExpired,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unarmed_probe_never_trips() {
        let probe = CancelProbe::never();
        assert!(!probe.is_armed());
        for _ in 0..1000 {
            assert_eq!(probe.poll(), Ok(()));
        }
    }

    #[test]
    fn flag_probe_trips_exactly_when_set() {
        let flag = Arc::new(AtomicBool::new(false));
        let probe = CancelProbe::with_flag(Arc::clone(&flag));
        assert!(probe.is_armed());
        assert_eq!(probe.poll(), Ok(()));
        flag.store(true, Ordering::Relaxed);
        assert_eq!(
            probe.poll(),
            Err(ModelError::Interrupted {
                reason: InterruptReason::Cancelled
            })
        );
    }

    #[test]
    fn deadline_probe_trips_once_past_due() {
        let probe = CancelProbe::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert_eq!(probe.poll(), Ok(()));
        let past = CancelProbe::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(
            past.poll(),
            Err(ModelError::Interrupted {
                reason: InterruptReason::DeadlineExpired
            })
        );
    }

    #[test]
    fn cancellation_wins_over_an_expired_deadline() {
        let flag = Arc::new(AtomicBool::new(true));
        let probe =
            CancelProbe::with_flag(flag).and_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(
            probe.poll(),
            Err(ModelError::Interrupted {
                reason: InterruptReason::Cancelled
            })
        );
    }

    #[test]
    fn clones_share_the_flag() {
        let flag = Arc::new(AtomicBool::new(false));
        let probe = CancelProbe::with_flag(Arc::clone(&flag));
        let clone = probe.clone();
        flag.store(true, Ordering::Relaxed);
        assert!(clone.poll().is_err());
    }
}
