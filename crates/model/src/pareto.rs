//! Pareto dominance and Pareto-front maintenance in the `(Cmax, Mmax)`
//! objective space.
//!
//! The paper's inapproximability arguments (Section 4) enumerate the
//! Pareto-optimal schedules of small adversarial instances; the exact
//! solver uses this module to maintain those fronts, and the figure
//! harness uses it to emit them.

use serde::{Deserialize, Serialize};

use crate::numeric::{approx_eq, approx_le, strictly_lt};
use crate::objectives::ObjectivePoint;

/// Returns `true` when `a` dominates `b`: `a` is no worse on both
/// objectives and strictly better on at least one.
pub fn dominates(a: &ObjectivePoint, b: &ObjectivePoint) -> bool {
    let no_worse = approx_le(a.cmax, b.cmax) && approx_le(a.mmax, b.mmax);
    let strictly_better = strictly_lt(a.cmax, b.cmax) || strictly_lt(a.mmax, b.mmax);
    no_worse && strictly_better
}

/// Returns `true` when the two points are equal up to tolerance.
pub fn equivalent(a: &ObjectivePoint, b: &ObjectivePoint) -> bool {
    approx_eq(a.cmax, b.cmax) && approx_eq(a.mmax, b.mmax)
}

/// A Pareto front of objective points, each optionally tagged with a
/// payload (e.g. the schedule that achieved it).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParetoFront<T = ()> {
    entries: Vec<(ObjectivePoint, T)>,
}

impl<T> Default for ParetoFront<T> {
    fn default() -> Self {
        ParetoFront {
            entries: Vec::new(),
        }
    }
}

impl<T> ParetoFront<T> {
    /// Creates an empty front.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of non-dominated points currently stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the front is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Offers a point to the front. The point is inserted iff no stored
    /// point dominates it (or equals it); stored points dominated by the
    /// new point are removed. Returns `true` when the point was inserted.
    ///
    /// Among `equivalent` ties the **incumbent wins** — the payload kept
    /// for a front point is the first one offered, so the result depends
    /// on offer order. When that matters (the ∆-sweeps tag points with
    /// the parameter that produced them), use [`ParetoFront::offer_with`]
    /// and supply an explicit, order-independent tie-break.
    pub fn offer(&mut self, point: ObjectivePoint, payload: T) -> bool {
        self.offer_with(point, payload, |_, _| false)
    }

    /// Like [`ParetoFront::offer`], but with an explicit tie-break among
    /// `equivalent` points: when the offered point ties an incumbent
    /// (equal on both objectives up to tolerance), `replace_tie(new
    /// payload, incumbent payload)` decides whether the incumbent is
    /// replaced (`true`) or the offer is rejected (`false`). A hook that
    /// imposes a strict total order on payloads (e.g. "prefer the
    /// smaller ∆") makes the payload kept for a front point independent
    /// of the order in which its tied runs were offered.
    ///
    /// The tolerant equivalence relation is not transitive, so a point
    /// may tie *several* mutually non-equivalent incumbents; the offer is
    /// accepted only when it beats **all** of them (and then replaces all
    /// of them), so no two equivalent points ever coexist on the front.
    /// Because such tolerance chains make acceptance depend on which
    /// points are already stored, the *surviving point set* can still
    /// vary with offer order in sub-tolerance scenarios — callers that
    /// need reproducible curves must offer in a fixed order (the ∆-sweeps
    /// always merge in grid order). Dominance always takes precedence
    /// over the tie-break: a point dominated by any incumbent is rejected
    /// outright.
    pub fn offer_with<F>(&mut self, point: ObjectivePoint, payload: T, replace_tie: F) -> bool
    where
        F: FnMut(&T, &T) -> bool,
    {
        let mut replace_tie = replace_tie;
        if self
            .entries
            .iter()
            .any(|(existing, _)| dominates(existing, &point))
        {
            return false;
        }
        let ties: Vec<usize> = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, (existing, _))| equivalent(existing, &point))
            .map(|(idx, _)| idx)
            .collect();
        if ties
            .iter()
            .any(|&idx| !replace_tie(&payload, &self.entries[idx].1))
        {
            return false;
        }
        for &idx in ties.iter().rev() {
            self.entries.remove(idx);
        }
        self.entries
            .retain(|(existing, _)| !dominates(&point, existing));
        self.entries.push((point, payload));
        true
    }

    /// Iterates over the stored `(point, payload)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&ObjectivePoint, &T)> {
        self.entries.iter().map(|(p, t)| (p, t))
    }

    /// The stored points, sorted by increasing makespan.
    pub fn points(&self) -> Vec<ObjectivePoint> {
        let mut pts: Vec<ObjectivePoint> = self.entries.iter().map(|(p, _)| *p).collect();
        pts.sort_by(|a, b| crate::numeric::total_cmp(a.cmax, b.cmax));
        pts
    }

    /// Consumes the front and returns `(point, payload)` pairs sorted by
    /// increasing makespan.
    pub fn into_sorted(mut self) -> Vec<(ObjectivePoint, T)> {
        self.entries
            .sort_by(|a, b| crate::numeric::total_cmp(a.0.cmax, b.0.cmax));
        self.entries
    }

    /// Returns the entry minimizing `Cmax` (ties broken by `Mmax`).
    pub fn best_cmax(&self) -> Option<&(ObjectivePoint, T)> {
        self.entries.iter().min_by(|a, b| {
            crate::numeric::total_cmp(a.0.cmax, b.0.cmax)
                .then(crate::numeric::total_cmp(a.0.mmax, b.0.mmax))
        })
    }

    /// Returns the entry minimizing `Mmax` (ties broken by `Cmax`).
    pub fn best_mmax(&self) -> Option<&(ObjectivePoint, T)> {
        self.entries.iter().min_by(|a, b| {
            crate::numeric::total_cmp(a.0.mmax, b.0.mmax)
                .then(crate::numeric::total_cmp(a.0.cmax, b.0.cmax))
        })
    }

    /// True when some stored point weakly dominates `point`.
    pub fn covers(&self, point: &ObjectivePoint) -> bool {
        self.entries
            .iter()
            .any(|(p, _)| p.weakly_dominates(point) || equivalent(p, point))
    }
}

impl<T> FromIterator<(ObjectivePoint, T)> for ParetoFront<T> {
    fn from_iter<I: IntoIterator<Item = (ObjectivePoint, T)>>(iter: I) -> Self {
        let mut front = ParetoFront::new();
        for (p, t) in iter {
            front.offer(p, t);
        }
        front
    }
}

/// The ideal (utopia) point of a set of points: component-wise minimum.
/// Used to normalize empirical trade-off curves.
pub fn ideal_point(points: &[ObjectivePoint]) -> Option<ObjectivePoint> {
    if points.is_empty() {
        return None;
    }
    Some(ObjectivePoint {
        cmax: points.iter().map(|p| p.cmax).fold(f64::INFINITY, f64::min),
        mmax: points.iter().map(|p| p.mmax).fold(f64::INFINITY, f64::min),
    })
}

/// The nadir point of a set of points: component-wise maximum over the
/// Pareto-optimal subset.
pub fn nadir_point(points: &[ObjectivePoint]) -> Option<ObjectivePoint> {
    let front: ParetoFront<()> = points.iter().map(|&p| (p, ())).collect();
    if front.is_empty() {
        return None;
    }
    let pts = front.points();
    Some(ObjectivePoint {
        cmax: pts.iter().map(|p| p.cmax).fold(0.0, f64::max),
        mmax: pts.iter().map(|p| p.mmax).fold(0.0, f64::max),
    })
}

/// Hypervolume indicator of a point set with respect to a reference
/// point: the area of the objective-space region dominated by the set and
/// dominating the reference (larger is better). Points that do not
/// dominate the reference contribute nothing; an empty set has
/// hypervolume 0. Used by the experiments to compare ∆-sweep trade-off
/// curves against exact Pareto fronts with a single scalar.
pub fn hypervolume(points: &[ObjectivePoint], reference: &ObjectivePoint) -> f64 {
    // Reduce to the non-dominated subset, sorted by increasing Cmax (and
    // therefore decreasing Mmax).
    let front: ParetoFront<()> = points.iter().map(|&p| (p, ())).collect();
    let mut pts: Vec<ObjectivePoint> = front
        .points()
        .into_iter()
        .filter(|p| p.cmax < reference.cmax && p.mmax < reference.mmax)
        .collect();
    pts.sort_by(|a, b| crate::numeric::total_cmp(a.cmax, b.cmax));
    let mut area = 0.0;
    let mut prev_mmax = reference.mmax;
    for p in pts {
        let width = reference.cmax - p.cmax;
        let height = prev_mmax - p.mmax;
        if height > 0.0 && width > 0.0 {
            area += width * height;
            prev_mmax = p.mmax;
        }
    }
    area
}

/// Multiplicative coverage of a candidate point set by a reference front:
/// the smallest factor `α ≥ 1` such that scaling every reference point by
/// `α` on both objectives makes it dominate some candidate point — i.e.
/// how far the candidate set is from being an `α`-approximate Pareto set
/// of the reference. Returns `None` when either set is empty.
pub fn approximation_factor(
    candidates: &[ObjectivePoint],
    reference: &[ObjectivePoint],
) -> Option<f64> {
    if candidates.is_empty() || reference.is_empty() {
        return None;
    }
    let mut worst: f64 = 1.0;
    for r in reference {
        // The candidate that approximates r best (smallest needed factor).
        let best = candidates
            .iter()
            .map(|c| {
                let fc = if r.cmax > 0.0 {
                    c.cmax / r.cmax
                } else if c.cmax > 0.0 {
                    f64::INFINITY
                } else {
                    1.0
                };
                let fm = if r.mmax > 0.0 {
                    c.mmax / r.mmax
                } else if c.mmax > 0.0 {
                    f64::INFINITY
                } else {
                    1.0
                };
                fc.max(fm).max(1.0)
            })
            .fold(f64::INFINITY, f64::min);
        worst = worst.max(best);
    }
    Some(worst)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(c: f64, m: f64) -> ObjectivePoint {
        ObjectivePoint::new(c, m)
    }

    #[test]
    fn dominance_requires_strict_improvement_somewhere() {
        assert!(dominates(&p(1.0, 1.0), &p(2.0, 1.0)));
        assert!(dominates(&p(1.0, 1.0), &p(1.0, 2.0)));
        assert!(!dominates(&p(1.0, 1.0), &p(1.0, 1.0)));
        assert!(!dominates(&p(1.0, 3.0), &p(2.0, 1.0)));
    }

    #[test]
    fn front_keeps_only_non_dominated_points() {
        let mut front = ParetoFront::new();
        assert!(front.offer(p(1.0, 2.0), "a"));
        assert!(front.offer(p(1.5, 1.0), "b"));
        // Dominated by "a".
        assert!(!front.offer(p(2.0, 2.5), "c"));
        // Dominates "a".
        assert!(front.offer(p(0.5, 1.5), "d"));
        let points = front.points();
        assert_eq!(front.len(), 2);
        assert!(points.iter().any(|q| equivalent(q, &p(0.5, 1.5))));
        assert!(points.iter().any(|q| equivalent(q, &p(1.5, 1.0))));
    }

    #[test]
    fn duplicate_points_are_not_inserted_twice() {
        let mut front = ParetoFront::new();
        assert!(front.offer(p(1.0, 1.0), ()));
        assert!(!front.offer(p(1.0, 1.0 + 1e-13), ()));
        assert_eq!(front.len(), 1);
    }

    #[test]
    fn offer_keeps_the_first_payload_among_ties() {
        let mut front = ParetoFront::new();
        assert!(front.offer(p(1.0, 1.0), 7usize));
        assert!(!front.offer(p(1.0, 1.0), 3usize));
        assert_eq!(front.iter().next().unwrap().1, &7);
    }

    #[test]
    fn offer_with_resolves_ties_by_the_supplied_hook() {
        // "Prefer the smaller payload" makes the stored payload
        // independent of offer order.
        let prefer_smaller = |new: &usize, old: &usize| new < old;
        for payloads in [[7usize, 3, 5], [3, 5, 7], [5, 7, 3]] {
            let mut front = ParetoFront::new();
            for payload in payloads {
                front.offer_with(p(1.0, 1.0), payload, prefer_smaller);
            }
            assert_eq!(front.len(), 1);
            assert_eq!(front.iter().next().unwrap().1, &3);
        }
    }

    #[test]
    fn offer_with_handles_non_transitive_tolerance_chains() {
        // A and B are mutually non-dominated and NOT equivalent (each
        // coordinate gap exceeds the 1e-9 relative tolerance), yet X sits
        // between them and is equivalent to both.
        let a = p(1.0, 1.0);
        let b = p(1.0 + 1.6e-9, 1.0 - 1.6e-9);
        let x = p(1.0 + 0.8e-9, 1.0 - 0.8e-9);
        assert!(!equivalent(&a, &b) && !dominates(&a, &b) && !dominates(&b, &a));
        assert!(equivalent(&x, &a) && equivalent(&x, &b));

        let prefer_smaller = |new: &f64, old: &f64| new < old;
        let mut front = ParetoFront::new();
        assert!(front.offer_with(a, 3.0, prefer_smaller));
        assert!(front.offer_with(b, 2.0, prefer_smaller));
        assert_eq!(front.len(), 2);
        // X loses to one of its two tied incumbents: rejected outright.
        let mut rejected = front.clone();
        assert!(!rejected.offer_with(x, 2.5, prefer_smaller));
        assert_eq!(rejected.len(), 2);
        // X beats both: replaces both, so no two equivalent points ever
        // coexist on the front.
        assert!(front.offer_with(x, 1.0, prefer_smaller));
        assert_eq!(front.len(), 1);
        assert_eq!(front.iter().next().unwrap().1, &1.0);
    }

    #[test]
    fn offer_with_still_rejects_dominated_points() {
        let mut front = ParetoFront::new();
        assert!(front.offer_with(p(1.0, 1.0), 1usize, |n, o| n < o));
        assert!(!front.offer_with(p(2.0, 2.0), 0usize, |n, o| n < o));
        assert_eq!(front.len(), 1);
        assert_eq!(front.iter().next().unwrap().1, &1);
    }

    #[test]
    fn paper_first_instance_front_has_two_points() {
        // Section 4.1: candidate points (1,2), (3/2, 1+eps), (2, 2+eps).
        let eps = 1e-3;
        let front: ParetoFront<()> = vec![
            (p(1.0, 2.0), ()),
            (p(1.5, 1.0 + eps), ()),
            (p(2.0, 2.0 + eps), ()),
        ]
        .into_iter()
        .collect();
        assert_eq!(front.len(), 2);
        assert!(front.covers(&p(2.0, 2.0 + eps)));
    }

    #[test]
    fn best_cmax_and_best_mmax_pick_the_extremes() {
        let front: ParetoFront<&str> = vec![
            (p(1.0, 3.0), "fast"),
            (p(2.0, 1.0), "lean"),
            (p(1.5, 1.5), "balanced"),
        ]
        .into_iter()
        .collect();
        assert_eq!(front.best_cmax().unwrap().1, "fast");
        assert_eq!(front.best_mmax().unwrap().1, "lean");
    }

    #[test]
    fn sorted_output_is_ordered_by_makespan() {
        let front: ParetoFront<usize> = vec![(p(3.0, 1.0), 3), (p(1.0, 3.0), 1), (p(2.0, 2.0), 2)]
            .into_iter()
            .collect();
        let sorted = front.into_sorted();
        let ids: Vec<usize> = sorted.iter().map(|(_, id)| *id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn hypervolume_of_a_simple_front() {
        // Two points (1,3) and (2,1) with reference (4,4):
        // area = (4-1)*(4-3) + (4-2)*(3-1) = 3 + 4 = 7.
        let pts = [p(1.0, 3.0), p(2.0, 1.0)];
        let hv = hypervolume(&pts, &p(4.0, 4.0));
        assert!((hv - 7.0).abs() < 1e-12);
        // Dominated points do not change the value.
        let with_dominated = [p(1.0, 3.0), p(2.0, 1.0), p(3.0, 3.5)];
        assert!((hypervolume(&with_dominated, &p(4.0, 4.0)) - 7.0).abs() < 1e-12);
        // Points beyond the reference contribute nothing.
        assert_eq!(hypervolume(&[p(5.0, 5.0)], &p(4.0, 4.0)), 0.0);
        assert_eq!(hypervolume(&[], &p(4.0, 4.0)), 0.0);
    }

    #[test]
    fn approximation_factor_measures_front_coverage() {
        let exact = [p(1.0, 2.0), p(2.0, 1.0)];
        // The exact front approximates itself with factor 1.
        assert!((approximation_factor(&exact, &exact).unwrap() - 1.0).abs() < 1e-12);
        // A candidate set 20% worse everywhere needs factor 1.2.
        let worse = [p(1.2, 2.4), p(2.4, 1.2)];
        assert!((approximation_factor(&worse, &exact).unwrap() - 1.2).abs() < 1e-12);
        // A single balanced point covers one corner poorly.
        let single = [p(1.5, 1.5)];
        assert!((approximation_factor(&single, &exact).unwrap() - 1.5).abs() < 1e-12);
        assert!(approximation_factor(&[], &exact).is_none());
    }

    #[test]
    fn ideal_and_nadir_points() {
        let pts = vec![p(1.0, 3.0), p(2.0, 1.0), p(5.0, 5.0)];
        let ideal = ideal_point(&pts).unwrap();
        assert_eq!((ideal.cmax, ideal.mmax), (1.0, 1.0));
        let nadir = nadir_point(&pts).unwrap();
        // (5,5) is dominated, so the nadir is taken over the front only.
        assert_eq!((nadir.cmax, nadir.mmax), (2.0, 3.0));
        assert!(ideal_point(&[]).is_none());
        assert!(nadir_point(&[]).is_none());
    }
}
