//! # sws-model
//!
//! Problem model for *Scheduling with Storage Constraints*
//! (Saule, Dutot, Mounié — IPDPS 2008).
//!
//! The paper studies the bi-objective problem `P | p_j, s_j | Cmax, Mmax`:
//! `n` tasks must be assigned to `m` identical processors, where task `i`
//! has a processing time `p_i` and a storage requirement `s_i`. The two
//! objectives minimized simultaneously are
//!
//! * **makespan** `Cmax` — the largest per-processor sum of processing
//!   times (with precedence constraints: the largest completion time), and
//! * **maximum cumulative memory** `Mmax` — the largest per-processor sum
//!   of storage requirements.
//!
//! This crate provides the shared vocabulary used by every other crate of
//! the reproduction:
//!
//! * [`task`] — tasks and task sets,
//! * [`instance`] — independent-task instances,
//! * [`schedule`] — assignments (mapping only) and timed schedules,
//! * [`objectives`] — objective evaluation and objective-space points,
//! * [`bounds`] — the lower bounds used throughout the paper,
//! * [`pareto`] — Pareto dominance and front maintenance,
//! * [`validate`] — feasibility checks,
//! * [`ratio`] — approximation-ratio accounting,
//! * [`numeric`] — tolerant floating-point comparisons,
//! * [`solve`] — the unified solver vocabulary (requests, solutions,
//!   guarantees, cost estimates),
//! * [`policy`] — tenant policies and the admission vocabulary used by
//!   serving fronts.
//!
//! # Quick example
//!
//! ```
//! use sws_model::prelude::*;
//!
//! // The first adversarial instance of the paper (Section 4.1):
//! // p = [1, 1/2, 1/2], s = [eps, 1, 1], two processors.
//! let eps = 1e-3;
//! let inst = Instance::from_ps(&[1.0, 0.5, 0.5], &[eps, 1.0, 1.0], 2).unwrap();
//!
//! // Schedule task 0 alone on processor 0, tasks 1 and 2 on processor 1.
//! let asg = Assignment::new(vec![0, 1, 1], 2).unwrap();
//! let pt = ObjectivePoint::of_assignment(&inst, &asg);
//! assert!((pt.cmax - 1.0).abs() < 1e-12);
//! assert!((pt.mmax - 2.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]

pub mod bounds;
pub mod cancel;
pub mod error;
pub mod instance;
pub mod numeric;
pub mod objectives;
pub mod pareto;
pub mod policy;
pub mod ratio;
pub mod schedule;
pub mod solve;
pub mod task;
pub mod validate;

pub use cancel::{CancelProbe, InterruptReason};
pub use error::ModelError;
pub use instance::Instance;
pub use objectives::{ObjectivePoint, TriObjectivePoint};
pub use pareto::ParetoFront;
pub use policy::{
    AdmissionVerdict, OverflowPolicy, QuotaError, RetryPolicy, ShedPolicy, TenantPolicy,
};
pub use schedule::{Assignment, TimedSchedule};
pub use solve::{CostEstimate, Guarantee, ObjectiveMode, Solution, SolveRequest, SolveStats};
pub use task::{Task, TaskId};

/// Convenient glob import of the most frequently used items.
pub mod prelude {
    pub use crate::bounds::{cmax_lower_bound, mmax_lower_bound, LowerBounds};
    pub use crate::cancel::{CancelProbe, InterruptReason};
    pub use crate::error::ModelError;
    pub use crate::instance::Instance;
    pub use crate::numeric::{approx_eq, approx_ge, approx_le, better_candidate, REL_TOL};
    pub use crate::objectives::{ObjectivePoint, TriObjectivePoint};
    pub use crate::pareto::{dominates, ParetoFront};
    pub use crate::policy::{
        AdmissionVerdict, OverflowPolicy, QuotaError, RetryPolicy, ShedPolicy, TenantPolicy,
    };
    pub use crate::ratio::{RatioReport, TriRatioReport};
    pub use crate::schedule::{Assignment, TimedSchedule};
    pub use crate::solve::{
        BackendId, BoundReport, BoundSource, CostEstimate, CostModel, Guarantee, ObjectiveMode,
        Solution, SolveRequest, SolveStats,
    };
    pub use crate::task::{Task, TaskId};
    pub use crate::validate::{validate_assignment, validate_timed};
}
