//! Approximation-ratio accounting.
//!
//! Every experiment in EXPERIMENTS.md reports the *achieved* objective
//! values of an algorithm against a reference (the optimum when the exact
//! solver can compute it, the Graham lower bounds otherwise) and against
//! the *guaranteed* ratios proven in the paper. This module bundles that
//! bookkeeping so benches, examples and tests report ratios identically.

use serde::{Deserialize, Serialize};

use crate::numeric::approx_le;
use crate::objectives::{ObjectivePoint, TriObjectivePoint};

/// How the reference point was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Reference {
    /// Exact optimum per objective (each objective optimized separately).
    Optimum,
    /// Lower bounds (Graham bounds / critical path); achieved ratios are
    /// then *upper bounds* on the true approximation ratios.
    LowerBound,
}

/// Achieved-versus-guaranteed report for the bi-objective problem.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatioReport {
    /// The point achieved by the algorithm.
    pub achieved: ObjectivePoint,
    /// The reference point (optimum or lower bound, per objective).
    pub reference: ObjectivePoint,
    /// How the reference was obtained.
    pub reference_kind: Reference,
    /// Achieved `Cmax / reference.cmax`.
    pub cmax_ratio: f64,
    /// Achieved `Mmax / reference.mmax`.
    pub mmax_ratio: f64,
    /// The guarantee proven in the paper, when applicable.
    pub guarantee: Option<(f64, f64)>,
}

impl RatioReport {
    /// Builds a report from an achieved point, a reference point and an
    /// optional proven guarantee.
    pub fn new(
        achieved: ObjectivePoint,
        reference: ObjectivePoint,
        reference_kind: Reference,
        guarantee: Option<(f64, f64)>,
    ) -> Self {
        let (cmax_ratio, mmax_ratio) = achieved.ratio_to(&reference);
        RatioReport {
            achieved,
            reference,
            reference_kind,
            cmax_ratio,
            mmax_ratio,
            guarantee,
        }
    }

    /// True when the achieved ratios respect the proven guarantee (always
    /// true when no guarantee is attached). When the reference is a lower
    /// bound this check is conservative: a violation is a genuine bug.
    pub fn within_guarantee(&self) -> bool {
        match self.guarantee {
            None => true,
            Some((gc, gm)) => approx_le(self.cmax_ratio, gc) && approx_le(self.mmax_ratio, gm),
        }
    }

    /// Margin between the guarantee and the achieved ratios,
    /// `(gc - cmax_ratio, gm - mmax_ratio)`; `None` when no guarantee.
    pub fn slack(&self) -> Option<(f64, f64)> {
        self.guarantee
            .map(|(gc, gm)| (gc - self.cmax_ratio, gm - self.mmax_ratio))
    }
}

impl std::fmt::Display for RatioReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "achieved {} vs reference {} -> ratios ({:.4}, {:.4})",
            self.achieved, self.reference, self.cmax_ratio, self.mmax_ratio
        )?;
        if let Some((gc, gm)) = self.guarantee {
            write!(f, " [guarantee ({gc:.4}, {gm:.4})]")?;
        }
        Ok(())
    }
}

/// Achieved-versus-guaranteed report for the tri-objective extension
/// (Section 5.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TriRatioReport {
    /// The point achieved by the algorithm.
    pub achieved: TriObjectivePoint,
    /// The reference point (optimum or lower bound, per objective).
    pub reference: TriObjectivePoint,
    /// How the reference was obtained.
    pub reference_kind: Reference,
    /// Achieved ratios `(Cmax, Mmax, ΣCi)`.
    pub ratios: (f64, f64, f64),
    /// The guarantee of Corollary 4, when applicable.
    pub guarantee: Option<(f64, f64, f64)>,
}

impl TriRatioReport {
    /// Builds a tri-objective report.
    pub fn new(
        achieved: TriObjectivePoint,
        reference: TriObjectivePoint,
        reference_kind: Reference,
        guarantee: Option<(f64, f64, f64)>,
    ) -> Self {
        let ratios = achieved.ratio_to(&reference);
        TriRatioReport {
            achieved,
            reference,
            reference_kind,
            ratios,
            guarantee,
        }
    }

    /// True when the achieved ratios respect the proven guarantee.
    pub fn within_guarantee(&self) -> bool {
        match self.guarantee {
            None => true,
            Some((gc, gm, gs)) => {
                approx_le(self.ratios.0, gc)
                    && approx_le(self.ratios.1, gm)
                    && approx_le(self.ratios.2, gs)
            }
        }
    }
}

impl std::fmt::Display for TriRatioReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "achieved {} vs reference {} -> ratios ({:.4}, {:.4}, {:.4})",
            self.achieved, self.reference, self.ratios.0, self.ratios.1, self.ratios.2
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_are_achieved_over_reference() {
        let rep = RatioReport::new(
            ObjectivePoint::new(3.0, 4.0),
            ObjectivePoint::new(2.0, 2.0),
            Reference::Optimum,
            None,
        );
        assert_eq!(rep.cmax_ratio, 1.5);
        assert_eq!(rep.mmax_ratio, 2.0);
        assert!(rep.within_guarantee());
        assert!(rep.slack().is_none());
    }

    #[test]
    fn guarantee_violation_is_reported() {
        let rep = RatioReport::new(
            ObjectivePoint::new(3.0, 4.0),
            ObjectivePoint::new(1.0, 1.0),
            Reference::LowerBound,
            Some((2.0, 5.0)),
        );
        assert!(!rep.within_guarantee());
        let (sc, sm) = rep.slack().unwrap();
        assert!(sc < 0.0);
        assert!(sm > 0.0);
    }

    #[test]
    fn guarantee_respected_up_to_tolerance() {
        let rep = RatioReport::new(
            ObjectivePoint::new(2.0 + 1e-13, 1.0),
            ObjectivePoint::new(1.0, 1.0),
            Reference::Optimum,
            Some((2.0, 2.0)),
        );
        assert!(rep.within_guarantee());
    }

    #[test]
    fn tri_report_checks_all_three_objectives() {
        let rep = TriRatioReport::new(
            TriObjectivePoint::new(2.0, 3.0, 10.0),
            TriObjectivePoint::new(1.0, 1.0, 5.0),
            Reference::LowerBound,
            Some((2.5, 3.0, 2.0)),
        );
        assert_eq!(rep.ratios, (2.0, 3.0, 2.0));
        assert!(rep.within_guarantee());
        let bad = TriRatioReport::new(
            TriObjectivePoint::new(2.0, 3.5, 10.0),
            TriObjectivePoint::new(1.0, 1.0, 5.0),
            Reference::LowerBound,
            Some((2.5, 3.0, 2.0)),
        );
        assert!(!bad.within_guarantee());
    }

    #[test]
    fn display_mentions_guarantee_when_present() {
        let rep = RatioReport::new(
            ObjectivePoint::new(1.0, 1.0),
            ObjectivePoint::new(1.0, 1.0),
            Reference::Optimum,
            Some((1.5, 1.5)),
        );
        assert!(rep.to_string().contains("guarantee"));
    }
}
