//! Error types shared by the model layer.

use std::fmt;

/// Errors raised when constructing or validating instances and schedules.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// An instance or schedule was built with zero processors.
    NoProcessors,
    /// An instance was built with no tasks where at least one is required.
    NoTasks,
    /// A task carries a negative or non-finite processing time.
    InvalidProcessingTime { task: usize, value: f64 },
    /// A task carries a negative or non-finite storage requirement.
    InvalidStorage { task: usize, value: f64 },
    /// Mismatched lengths between parallel arrays (e.g. `p` and `s`).
    LengthMismatch { left: usize, right: usize },
    /// An assignment maps a task to a processor index `>= m`.
    ProcessorOutOfRange { task: usize, proc: usize, m: usize },
    /// An assignment or timed schedule does not cover every task exactly once.
    IncompleteAssignment { expected: usize, got: usize },
    /// A timed schedule starts a task at a negative time.
    NegativeStart { task: usize, start: f64 },
    /// Two tasks overlap in time on the same processor.
    Overlap {
        proc: usize,
        first: usize,
        second: usize,
    },
    /// A precedence constraint `pred -> task` is violated.
    PrecedenceViolation { pred: usize, task: usize },
    /// A processor exceeds a given memory capacity.
    MemoryExceeded {
        proc: usize,
        used: f64,
        capacity: f64,
    },
    /// The precedence relation contains a cycle.
    CyclicPrecedence,
    /// A parameter is outside its admissible domain (e.g. `∆ ≤ 2` for RLS).
    InvalidParameter {
        name: &'static str,
        value: f64,
        constraint: &'static str,
    },
    /// No registered solver backend can serve a request at the required
    /// guarantee level (see `sws_model::solve` and the portfolio layer).
    NoQualifiedBackend {
        objective: &'static str,
        guarantee: &'static str,
        n: usize,
        m: usize,
    },
    /// A memory-budget request could not be met: every evaluated schedule
    /// exceeded the budget (deciding feasibility exactly is NP-complete,
    /// so "not found" is the strongest honest answer — see Section 7).
    BudgetNotMet { best_mmax: f64, budget: f64 },
    /// A cooperative [`CancelProbe`](crate::cancel::CancelProbe) tripped
    /// mid-solve: the caller cancelled the request or its deadline
    /// passed. The solver stopped at a round boundary and its workspace
    /// remains reusable.
    Interrupted {
        reason: crate::cancel::InterruptReason,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NoProcessors => write!(f, "instance has no processors"),
            ModelError::NoTasks => write!(f, "instance has no tasks"),
            ModelError::InvalidProcessingTime { task, value } => {
                write!(f, "task {task} has invalid processing time {value}")
            }
            ModelError::InvalidStorage { task, value } => {
                write!(f, "task {task} has invalid storage requirement {value}")
            }
            ModelError::LengthMismatch { left, right } => {
                write!(
                    f,
                    "parallel arrays have mismatched lengths {left} != {right}"
                )
            }
            ModelError::ProcessorOutOfRange { task, proc, m } => {
                write!(
                    f,
                    "task {task} assigned to processor {proc} but only {m} processors exist"
                )
            }
            ModelError::IncompleteAssignment { expected, got } => {
                write!(
                    f,
                    "assignment covers {got} tasks but the instance has {expected}"
                )
            }
            ModelError::NegativeStart { task, start } => {
                write!(f, "task {task} starts at negative time {start}")
            }
            ModelError::Overlap {
                proc,
                first,
                second,
            } => {
                write!(f, "tasks {first} and {second} overlap on processor {proc}")
            }
            ModelError::PrecedenceViolation { pred, task } => {
                write!(
                    f,
                    "task {task} starts before its predecessor {pred} completes"
                )
            }
            ModelError::MemoryExceeded {
                proc,
                used,
                capacity,
            } => {
                write!(
                    f,
                    "processor {proc} uses {used} memory units, capacity is {capacity}"
                )
            }
            ModelError::CyclicPrecedence => write!(f, "precedence relation contains a cycle"),
            ModelError::InvalidParameter {
                name,
                value,
                constraint,
            } => {
                write!(
                    f,
                    "parameter {name} = {value} violates constraint {constraint}"
                )
            }
            ModelError::NoQualifiedBackend {
                objective,
                guarantee,
                n,
                m,
            } => {
                write!(
                    f,
                    "no backend serves a {objective} request at guarantee '{guarantee}' \
                     for n = {n}, m = {m}"
                )
            }
            ModelError::BudgetNotMet { best_mmax, budget } => {
                write!(
                    f,
                    "no evaluated schedule met the memory budget {budget} (best Mmax: {best_mmax})"
                )
            }
            ModelError::Interrupted { reason } => {
                write!(f, "solve interrupted mid-run ({})", reason.label())
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ModelError::MemoryExceeded {
            proc: 3,
            used: 12.5,
            capacity: 10.0,
        };
        let msg = e.to_string();
        assert!(msg.contains("processor 3"));
        assert!(msg.contains("12.5"));
        assert!(msg.contains("10"));
    }

    #[test]
    fn errors_compare_by_value() {
        assert_eq!(ModelError::NoProcessors, ModelError::NoProcessors);
        assert_ne!(
            ModelError::NoProcessors,
            ModelError::IncompleteAssignment {
                expected: 3,
                got: 2
            }
        );
    }

    #[test]
    fn error_trait_object_is_usable() {
        let e: Box<dyn std::error::Error> = Box::new(ModelError::CyclicPrecedence);
        assert!(e.to_string().contains("cycle"));
    }
}
